#!/usr/bin/env python3
"""Summarize a jitml JSONL trace (JITML_TRACE output) per stage.

Usage:
    trace_summarize.py TRACE.jsonl [--stage STAGE] [--by-level]

For every stage (compile, queue_wait, bridge_request, serve.batch,
serve.request, ...) prints event count, total/mean/p50/p95/max duration
in microseconds, and how many events reported ok=false. Stages whose
events carry an item count — e.g. serve.batch, where items is the number
of coalesced entries the batch answered — also get total and mean items
(mean items on serve.batch is the daemon's batch fill). Stdlib only.
"""

import argparse
import json
import sys
from collections import defaultdict


def percentile(sorted_values, p):
    """Nearest-rank percentile of an ascending list (p in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def load_events(stream):
    events = []
    bad_lines = 0
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            bad_lines += 1
            continue
        if isinstance(ev, dict) and "stage" in ev:
            events.append(ev)
        else:
            bad_lines += 1
    return events, bad_lines


def group_key(ev, by_level):
    stage = ev.get("stage", "?")
    if by_level and "level" in ev:
        return "%s/L%s" % (stage, ev["level"])
    return stage


def summarize(events, by_level=False):
    groups = defaultdict(list)
    failures = defaultdict(int)
    items = defaultdict(int)
    items_seen = defaultdict(int)
    for ev in events:
        key = group_key(ev, by_level)
        groups[key].append(float(ev.get("dur_us", 0)))
        if ev.get("ok") is False:
            failures[key] += 1
        if "items" in ev:
            items[key] += int(ev["items"])
            items_seen[key] += 1
    rows = []
    for key in sorted(groups):
        durs = sorted(groups[key])
        total = sum(durs)
        rows.append(
            (
                key,
                len(durs),
                total,
                total / len(durs),
                percentile(durs, 50),
                percentile(durs, 95),
                durs[-1],
                failures[key],
                items[key] if items_seen[key] else None,
                items[key] / items_seen[key] if items_seen[key] else None,
            )
        )
    return rows


def main(argv):
    ap = argparse.ArgumentParser(
        description="Per-stage latency table from a jitml JSONL trace."
    )
    ap.add_argument("trace", help="trace file, or - for stdin")
    ap.add_argument(
        "--stage", help="only show this stage (exact match)", default=None
    )
    ap.add_argument(
        "--by-level",
        action="store_true",
        help="split stages by optimization level",
    )
    args = ap.parse_args(argv)

    if args.trace == "-":
        events, bad = load_events(sys.stdin)
    else:
        try:
            with open(args.trace, "r", encoding="utf-8") as f:
                events, bad = load_events(f)
        except OSError as e:
            print("error: %s" % e, file=sys.stderr)
            return 1

    if args.stage:
        events = [ev for ev in events if ev.get("stage") == args.stage]
    if not events:
        print("no trace events%s" % (" for stage %r" % args.stage
                                     if args.stage else ""))
        return 0 if bad == 0 else 1

    header = ("stage", "count", "total_us", "mean_us", "p50_us", "p95_us",
              "max_us", "failed", "items", "items/ev")
    rows = summarize(events, by_level=args.by_level)
    width = max(len(header[0]), max(len(r[0]) for r in rows))
    fmt = "%-{0}s %8s %12s %10s %10s %10s %10s %7s %9s %9s".format(width)
    print(fmt % header)
    print(fmt % tuple("-" * len(h) for h in header))
    for key, count, total, mean, p50, p95, mx, failed, itot, imean in rows:
        print(
            fmt
            % (
                key,
                count,
                "%.0f" % total,
                "%.1f" % mean,
                "%.0f" % p50,
                "%.0f" % p95,
                "%.0f" % mx,
                failed or "",
                "" if itot is None else itot,
                "" if imean is None else "%.1f" % imean,
            )
        )
    if bad:
        print("(%d unparseable line(s) skipped)" % bad, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
