#!/usr/bin/env bash
# Tier-1 verification: the regular build + full test suite (the ROADMAP
# command), followed by an ASan+UBSan build (-DJITML_SANITIZE=ON) that
# re-runs the bridge and mldata tests — the subsystems that parse
# untrusted bytes off the wire and from model files.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

cmake -B build-asan -S . -DJITML_SANITIZE=ON
cmake --build build-asan -j"$(nproc)" --target jitml_tests
(cd build-asan && ctest --output-on-failure -j"$(nproc)" -R \
  'Message\.|Service\.|Transport\.|Resilient\.|BridgeFuzz\.|Normalizer\.|LabelMap\.|LibLinear\.|Ranker\.|Merger\.|Summaries\.')
