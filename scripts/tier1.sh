#!/usr/bin/env bash
# Tier-1 verification, as a sequence of named suites:
#
#   build        regular configure + build
#   tests        full ctest suite (the ROADMAP command)
#   asan         ASan+UBSan build re-running the byte-parsing subsystems
#                (bridge wire frames, model-file loaders)
#   tsan         ThreadSanitizer build re-running the concurrent subsystems
#                (compilation queue, code cache, async pipeline, shared
#                bridge client, differential interpreter-vs-JIT checks)
#   pipeline     learning-pipeline parallelism: micro_pipeline emits
#                BENCH_pipeline.json (bit-identity enforced by the binary)
#                and the Pipeline/TrainerEquivalence tests re-run under
#                the ThreadSanitizer build
#   telemetry    observability layer: micro_telemetry enforces the <2%
#                disabled-overhead gate (BENCH_telemetry.json) and the
#                ConcurrentTelemetry/TelemetryTrace tests re-run under
#                the ThreadSanitizer build
#
# The script stops at the first failing suite with a non-zero exit, and
# always ends with a summary table of every suite it reached.
set -u
cd "$(dirname "$0")/.."

SUITES=()
RESULTS=()

finish() {
  local code=$1
  echo
  echo "== tier1 summary =="
  printf '%-10s %s\n' "suite" "result"
  printf '%-10s %s\n' "-----" "------"
  for i in "${!SUITES[@]}"; do
    printf '%-10s %s\n' "${SUITES[$i]}" "${RESULTS[$i]}"
  done
  exit "$code"
}

run_suite() {
  local name=$1
  shift
  echo
  echo "== tier1: $name =="
  SUITES+=("$name")
  if "$@"; then
    RESULTS+=("PASS")
  else
    RESULTS+=("FAIL")
    finish 1
  fi
}

build_step() {
  cmake -B build -S . && cmake --build build -j"$(nproc)"
}

tests_step() {
  (cd build && ctest --output-on-failure -j"$(nproc)")
}

asan_step() {
  cmake -B build-asan -S . -DJITML_SANITIZE=ON &&
    cmake --build build-asan -j"$(nproc)" --target jitml_tests &&
    (cd build-asan && ctest --output-on-failure -j"$(nproc)" -R \
      'Message\.|Service\.|Transport\.|Resilient\.|BridgeFuzz\.|Normalizer\.|LabelMap\.|LibLinear\.|Ranker\.|Merger\.|Summaries\.')
}

tsan_step() {
  cmake -B build-tsan -S . -DJITML_TSAN=ON &&
    cmake --build build-tsan -j"$(nproc)" --target jitml_tests &&
    (cd build-tsan && ctest --output-on-failure -j"$(nproc)" -R \
      'CompilationQueue\.|CodeCache\.|AsyncPipeline\.|AsyncVM\.|Differential\.|DifferentialModifier\.|ConcurrentBridge\.')
}

pipeline_step() {
  cmake --build build -j"$(nproc)" --target micro_pipeline &&
    ./build/bench/micro_pipeline BENCH_pipeline.json &&
    cmake --build build-tsan -j"$(nproc)" --target jitml_tests &&
    (cd build-tsan && ctest --output-on-failure -j"$(nproc)" -R \
      'Pipeline\.|TrainerEquivalence\.')
}

telemetry_step() {
  cmake --build build -j"$(nproc)" --target micro_telemetry &&
    ./build/bench/micro_telemetry BENCH_telemetry.json &&
    cmake --build build-tsan -j"$(nproc)" --target jitml_tests &&
    (cd build-tsan && ctest --output-on-failure -j"$(nproc)" -R \
      'ConcurrentTelemetry\.|TelemetryTrace\.')
}

run_suite build build_step
run_suite tests tests_step
run_suite asan asan_step
run_suite tsan tsan_step
run_suite pipeline pipeline_step
run_suite telemetry telemetry_step
finish 0
