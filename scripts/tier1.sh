#!/usr/bin/env bash
# Tier-1 verification, as a sequence of named suites:
#
#   build        regular configure + build
#   tests        full ctest suite (the ROADMAP command)
#   asan         ASan+UBSan build re-running the byte-parsing subsystems
#                (bridge wire frames, fuzzed framing, model-file loaders)
#   tsan         ThreadSanitizer build re-running the concurrent subsystems
#                (compilation queue, code cache, async pipeline, shared
#                bridge client, differential interpreter-vs-JIT checks,
#                chaos scenarios with injected stalls)
#   pipeline     learning-pipeline parallelism: micro_pipeline emits
#                BENCH_pipeline.json (bit-identity enforced by the binary)
#                and the Pipeline/TrainerEquivalence tests re-run under
#                the ThreadSanitizer build
#   telemetry    observability layer: micro_telemetry enforces the <2%
#                disabled-overhead gate (BENCH_telemetry.json) and the
#                ConcurrentTelemetry/TelemetryTrace tests re-run under
#                the ThreadSanitizer build
#   chaos        fault-injection layer: micro_faults enforces the <1%
#                disabled-overhead gate and bit-identical figures under
#                the never-firing `*=p0` schedule (BENCH_faults.json)
#   verify       IL verifier + differential fuzzer: a fixed-seed 30-second
#                fuzz smoke (interpreter vs every opt level vs async, deep
#                verifier interposed — zero divergences), corpus replay,
#                and the <3% disabled-hook overhead gate (BENCH_fuzz.json)
#   opt-perf     compile-path hot loop: micro_compile enforces bit-identical
#                simulated figures with the pass memo on vs off across every
#                (program, method, level) cell plus the >=1.5x scorching-loop
#                speedup gate (BENCH_compile.json), and a short fixed-seed
#                fuzz smoke re-runs with JITML_OPT_MEMO=off to exercise the
#                escape hatch
#   serve        multi-client serving daemon: micro_serve enforces
#                bit-identical client streams vs the single-client loop,
#                the >=1.5x cross-client batching speedup, and exact shed
#                accounting (BENCH_serve.json), plus the Serve ctest suite
#
# The script stops at the first failing suite with a non-zero exit, and
# always ends with a summary table (result + wall time per suite).
set -u
cd "$(dirname "$0")/.."

SUITES=()
RESULTS=()
TIMES=()

finish() {
  local code=$1
  echo
  echo "== tier1 summary =="
  printf '%-10s %-7s %s\n' "suite" "result" "wall"
  printf '%-10s %-7s %s\n' "-----" "------" "----"
  for i in "${!SUITES[@]}"; do
    printf '%-10s %-7s %ss\n' "${SUITES[$i]}" "${RESULTS[$i]}" "${TIMES[$i]}"
  done
  exit "$code"
}

run_suite() {
  local name=$1
  shift
  echo
  echo "== tier1: $name =="
  SUITES+=("$name")
  local start
  start=$(date +%s)
  if "$@"; then
    TIMES+=("$(( $(date +%s) - start ))")
    RESULTS+=("PASS")
  else
    TIMES+=("$(( $(date +%s) - start ))")
    RESULTS+=("FAIL")
    finish 1
  fi
}

# The sanitizer suites reuse persistent build dirs. A stale dir configured
# WITHOUT the sanitizer flag would silently run plain builds and pass
# vacuously, so verify the cached flag before trusting the directory.
require_flag() {
  local dir=$1 flag=$2
  if [ -d "$dir" ] && ! grep -q "^${flag}:BOOL=ON$" "$dir/CMakeCache.txt" 2>/dev/null; then
    echo "error: $dir exists but was not configured with -D${flag}=ON." >&2
    echo "       Delete $dir and re-run (a stale cache would skip the sanitizer)." >&2
    return 1
  fi
}

build_step() {
  cmake -B build -S . && cmake --build build -j"$(nproc)"
}

tests_step() {
  (cd build && ctest --output-on-failure -j"$(nproc)")
}

asan_step() {
  require_flag build-asan JITML_SANITIZE &&
    cmake -B build-asan -S . -DJITML_SANITIZE=ON &&
    cmake --build build-asan -j"$(nproc)" --target jitml_tests &&
    (cd build-asan && ctest --output-on-failure -j"$(nproc)" -R \
      'Message\.|Service\.|Transport\.|Resilient\.|BridgeFuzz\.|FaultInjection\.|Chaos\.|Normalizer\.|LabelMap\.|LibLinear\.|Ranker\.|Merger\.|Summaries\.|Corpus\.|ILVerifierDeep\.|FuzzInput\.|Reducer\.|IlEpoch\.|OptMemo\.|KidList\.|Serve\.')
}

tsan_step() {
  require_flag build-tsan JITML_TSAN &&
    cmake -B build-tsan -S . -DJITML_TSAN=ON &&
    cmake --build build-tsan -j"$(nproc)" --target jitml_tests &&
    (cd build-tsan && ctest --output-on-failure -j"$(nproc)" -R \
      'CompilationQueue\.|CodeCache\.|AsyncPipeline\.|AsyncVM\.|Differential\.|DifferentialModifier\.|ConcurrentBridge\.|Chaos\.|Oracle\.|Campaign\.|OptMemo\.|Serve\.')
}

pipeline_step() {
  cmake --build build -j"$(nproc)" --target micro_pipeline &&
    ./build/bench/micro_pipeline BENCH_pipeline.json &&
    cmake --build build-tsan -j"$(nproc)" --target jitml_tests &&
    (cd build-tsan && ctest --output-on-failure -j"$(nproc)" -R \
      'Pipeline\.|TrainerEquivalence\.')
}

telemetry_step() {
  cmake --build build -j"$(nproc)" --target micro_telemetry &&
    ./build/bench/micro_telemetry BENCH_telemetry.json &&
    cmake --build build-tsan -j"$(nproc)" --target jitml_tests &&
    (cd build-tsan && ctest --output-on-failure -j"$(nproc)" -R \
      'ConcurrentTelemetry\.|TelemetryTrace\.')
}

chaos_step() {
  cmake --build build -j"$(nproc)" --target micro_faults &&
    ./build/bench/micro_faults BENCH_faults.json
}

verify_step() {
  cmake --build build -j"$(nproc)" --target fuzz_differential jitml_tests &&
    ./build/bench/fuzz_differential --seed 1 --seconds 30 --execs 0 &&
    ./build/bench/fuzz_differential --overhead-gate --json BENCH_fuzz.json &&
    (cd build && ctest --output-on-failure -j"$(nproc)" -R \
      'Corpus\.|ILVerifierDeep\.|PassVerifier\.|Oracle\.|Reducer\.|Campaign\.|FuzzInput\.')
}

opt_perf_step() {
  cmake --build build -j"$(nproc)" --target micro_compile fuzz_differential &&
    ./build/bench/micro_compile BENCH_compile.json &&
    JITML_OPT_MEMO=off ./build/bench/fuzz_differential --seed 1 --seconds 10 --execs 0
}

serve_step() {
  cmake --build build -j"$(nproc)" --target micro_serve jitml_tests &&
    ./build/bench/micro_serve BENCH_serve.json &&
    (cd build && ctest --output-on-failure -j"$(nproc)" -R 'Serve\.')
}

run_suite build build_step
run_suite tests tests_step
run_suite asan asan_step
run_suite tsan tsan_step
run_suite pipeline pipeline_step
run_suite telemetry telemetry_step
run_suite chaos chaos_step
run_suite verify verify_step
run_suite opt-perf opt_perf_step
run_suite serve serve_step
finish 0
