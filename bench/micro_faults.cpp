//===- bench/micro_faults.cpp ---------------------------------------------===//
//
// Overhead gate for the fault-injection layer. With JITML_FAULTS unset,
// every JITML_FAULT_POINT must compile down to one relaxed epoch load and
// a predictable branch. This benchmark
//
//   1. measures that disabled-path cost directly (ns/op),
//   2. counts how many fault-point crossings the Figure 6 startup
//      workload actually executes, by arming the never-firing schedule
//      `*=p0` (matches every point, probability zero) and summing hits,
//   3. gates on (crossings x disabled-path cost) / workload wall < 1%,
//   4. verifies the figures are unaffected: the sync-mode workload's
//      checksum and simulated cycles are bit-identical disarmed vs armed
//      with `*=p0` (hit counting never feeds simulated time).
//
// Emits BENCH_faults.json next to the binary. Exit status is the gate.
//
//===----------------------------------------------------------------------===//

#include "runtime/VirtualMachine.h"
#include "support/FaultInjection.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

using namespace jitml;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per operation of \p Fn run \p Iters times (best of 3 reps).
template <typename FnT> double nsPerOp(size_t Iters, FnT &&Fn) {
  double Best = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    double Start = nowSeconds();
    for (size_t I = 0; I < Iters; ++I)
      Fn(I);
    double Elapsed = nowSeconds() - Start;
    Best = std::min(Best, Elapsed * 1e9 / (double)Iters);
  }
  return Best;
}

/// Total fault-point crossings recorded by the registry so far.
uint64_t totalHits() {
  uint64_t Total = 0;
  for (const FaultPointStats &S : FaultRegistry::global().snapshot())
    Total += S.Hits;
  return Total;
}

struct SuiteResult {
  double WallSeconds = 0.0;
  int64_t Checksum = 0;
  double StallCycles = 0.0;
  double WallCycles = 0.0;
};

/// One pass over the Figure 6 suite. Async mode crosses the most fault
/// points (queue, pipeline, cache, pool); sync mode is bit-deterministic
/// run-to-run, so it anchors the armed/disarmed figure comparison.
SuiteResult runFig6Suite(bool Async) {
  SuiteResult R;
  double Start = nowSeconds();
  for (const WorkloadSpec &Spec : specJvm98Suite()) {
    Program P = buildWorkload(Spec);
    VirtualMachine::Config Cfg;
    if (Async) {
      Cfg.Async.Enabled = true;
      Cfg.Async.Workers = 2;
      Cfg.Async.QueueCapacity = 64;
    }
    VirtualMachine VM(P, Cfg);
    ExecResult Res = VM.run({Value::ofI(0)});
    if (Res.Exceptional) {
      std::fprintf(stderr, "%s raised an exception\n", Spec.Code.c_str());
      continue;
    }
    R.Checksum ^= Res.Ret.I;
    VM.drainCompilations();
    R.StallCycles += VM.stats().CompileCycles;
    R.WallCycles += VM.stats().totalCycles();
  }
  R.WallSeconds = nowSeconds() - Start;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_faults.json";
  constexpr size_t Iters = 8 * 1000 * 1000;

  std::printf("Fault-injection overhead: disabled fast path and the "
              "Fig. 6 workload gate\n\n");

  // 1. Disabled-path cost: one relaxed load, branch not taken. The probe
  // point below is never named in any schedule, so this is exactly the
  // cost every production crossing pays when JITML_FAULTS is unset.
  FaultRegistry::global().disarm();
  double DisabledNs = nsPerOp(
      Iters, [&](size_t) { (void)JITML_FAULT_POINT("bench.probe"); });
  // For reference: the armed-but-never-firing slow path (registry mutex).
  FaultRegistry::global().arm("bench.armed=p0", 0);
  double ArmedNs = nsPerOp(
      Iters / 8, [&](size_t) { (void)JITML_FAULT_POINT("bench.armed"); });
  FaultRegistry::global().disarm();
  std::printf("%-34s %8.3f ns/op\n", "fault point (disarmed)", DisabledNs);
  std::printf("%-34s %8.3f ns/op\n", "fault point (armed, p0)", ArmedNs);

  // 2. Crossing census: arm the match-everything, never-fire schedule so
  // the registry hit-counts every crossing the workload performs.
  FaultRegistry::global().arm("*=p0", 0);
  FaultRegistry::global().resetCounters();
  SuiteResult AsyncArmed = runFig6Suite(/*Async=*/true);
  uint64_t Crossings = totalHits();
  FaultRegistry::global().disarm();
  double OverheadFrac =
      AsyncArmed.WallSeconds > 0.0
          ? ((double)Crossings * DisabledNs * 1e-9) / AsyncArmed.WallSeconds
          : 0.0;
  std::printf("\nFig. 6 workload (async): wall %.3fs, %llu fault-point "
              "crossings\n",
              AsyncArmed.WallSeconds, (unsigned long long)Crossings);
  std::printf("estimated disabled-path share of wall clock: %.5f%% "
              "(gate: <1%%)\n",
              100.0 * OverheadFrac);

  // 3. Figures unaffected: sync mode (bit-deterministic) disarmed vs
  // armed-p0 must agree on checksum and every simulated cycle count.
  SuiteResult SyncOff = runFig6Suite(/*Async=*/false);
  FaultRegistry::global().arm("*=p0", 0);
  SuiteResult SyncOn = runFig6Suite(/*Async=*/false);
  FaultRegistry::global().disarm();
  bool ChecksumOk = SyncOn.Checksum == SyncOff.Checksum &&
                    AsyncArmed.Checksum == SyncOff.Checksum;
  bool CyclesOk = SyncOn.StallCycles == SyncOff.StallCycles &&
                  SyncOn.WallCycles == SyncOff.WallCycles;
  std::printf("armed p0: checksum %s, simulated cycles %s\n",
              ChecksumOk ? "identical" : "MISMATCH",
              CyclesOk ? "bit-identical" : "MISMATCH");

  bool GateOk = OverheadFrac < 0.01;
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"fault_point_disarmed_ns\": %.4f,\n"
                 "  \"fault_point_armed_p0_ns\": %.4f,\n"
                 "  \"fig6_wall_s\": %.6f,\n"
                 "  \"fig6_fault_crossings\": %llu,\n"
                 "  \"overhead_fraction\": %.8f,\n"
                 "  \"checksum_identical\": %s,\n"
                 "  \"cycles_identical\": %s,\n"
                 "  \"gate_under_1pct\": %s\n"
                 "}\n",
                 DisabledNs, ArmedNs, AsyncArmed.WallSeconds,
                 (unsigned long long)Crossings, OverheadFrac,
                 ChecksumOk ? "true" : "false", CyclesOk ? "true" : "false",
                 GateOk ? "true" : "false");
    std::fclose(F);
    std::printf("\nwrote %s\n", JsonPath);
  }

  if (!GateOk || !ChecksumOk || !CyclesOk) {
    std::fprintf(stderr, "FAIL: fault-injection overhead gate\n");
    return 1;
  }
  std::printf("PASS: disabled fault points cost <1%% of the Fig. 6 "
              "workload\n");
  return 0;
}
