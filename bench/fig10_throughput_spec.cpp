//===- bench/fig10_throughput_spec.cpp ------------------------------------===//
//
// Figure 10: "Throughput performance results (10 iterations) for
// SPECjvm98." Expected shape: the learned models are "not as successful":
// the hand-tuned adaptive baseline wins on most benchmarks (bars around or
// below 1.0), with occasional exceptions (the paper singles out javac),
// and less variation between models than in the start-up results.
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 10: SPECjvm98 throughput performance (10 iterations)",
      jitml::FigureMetric::ThroughputPerformance, jitml::Suite::SpecJvm98,
      /*Iterations=*/10, /*DefaultRuns=*/12);
}
