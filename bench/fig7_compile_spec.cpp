//===- bench/fig7_compile_spec.cpp ----------------------------------------===//
//
// Figure 7: "Start-up compilation time (single iteration) for SPECjvm98
// relative to Testarossa, where lower bars are better." Expected shape:
// roughly half the baseline compilation time ("the compilation time is
// less than half of the compilation time in the unmodified Testarossa. In
// some instances, such as jess, a five-fold reduction ... is observed").
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 7: SPECjvm98 start-up compilation time (1 iteration)",
      jitml::FigureMetric::CompileTime, jitml::Suite::SpecJvm98,
      /*Iterations=*/1, /*DefaultRuns=*/30);
}
