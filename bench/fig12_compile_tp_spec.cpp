//===- bench/fig12_compile_tp_spec.cpp ------------------------------------===//
//
// Figure 12: "Relative compilation time for SPECjvm98" under throughput
// (10 iteration) runs. Expected shape: "the significant reduction in the
// compilation time is consistent when throughput performance is measured".
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 12: SPECjvm98 relative compilation time (10 iterations)",
      jitml::FigureMetric::CompileTime, jitml::Suite::SpecJvm98,
      /*Iterations=*/10, /*DefaultRuns=*/12);
}
