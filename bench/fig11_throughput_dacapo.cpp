//===- bench/fig11_throughput_dacapo.cpp ----------------------------------===//
//
// Figure 11: DaCapo throughput performance (10 iterations). Expected
// shape: mostly at or below 1.0 (the baseline's hand-tuned plans win once
// compilation is amortized), with isolated exceptions (the paper singles
// out tomcat).
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 11: DaCapo throughput performance (10 iterations)",
      jitml::FigureMetric::ThroughputPerformance, jitml::Suite::DaCapo,
      /*Iterations=*/10, /*DefaultRuns=*/12);
}
