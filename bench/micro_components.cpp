//===- bench/micro_components.cpp -----------------------------------------===//
//
// google-benchmark micro set: the per-component costs that matter for the
// framework's overhead story — feature extraction (runs on every JIT
// compilation), archive encode/decode (the custom binary format),
// linear-model prediction (must stay far below a compilation: "it should
// not take longer to find out which transformations to apply to a method
// than to compile that method"), IL generation, plan optimization at every
// level, and both execution engines.
//
//===----------------------------------------------------------------------===//

#include "collect/Archive.h"
#include "features/FeatureExtractor.h"
#include "harness/Experiment.h"
#include "il/ILGenerator.h"
#include "svm/Trainer.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

using namespace jitml;

namespace {

const Program &benchProgram() {
  static const Program P = buildWorkload(workloadByCode("co"));
  return P;
}

uint32_t firstKernel(const Program &P) {
  for (uint32_t M = 0; M < P.numMethods(); ++M)
    if (P.methodAt(M).Name.find("Kernel") != std::string::npos)
      return M;
  return 0;
}

void BM_ILGeneration(benchmark::State &State) {
  const Program &P = benchProgram();
  uint32_t M = firstKernel(P);
  for (auto _ : State) {
    auto IL = generateIL(P, M);
    benchmark::DoNotOptimize(IL->numNodes());
  }
}
BENCHMARK(BM_ILGeneration);

void BM_FeatureExtraction(benchmark::State &State) {
  const Program &P = benchProgram();
  auto IL = generateIL(P, firstKernel(P));
  for (auto _ : State) {
    FeatureVector F = extractFeatures(*IL);
    benchmark::DoNotOptimize(F.hash());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_OptimizePlan(benchmark::State &State) {
  const Program &P = benchProgram();
  uint32_t M = firstKernel(P);
  OptLevel Level = (OptLevel)State.range(0);
  double Cycles = 0;
  for (auto _ : State) {
    auto IL = generateIL(P, M);
    OptimizeResult R = optimize(*IL, planForLevel(Level),
                                BitSet64::allOne(NumTransformations));
    Cycles = R.CompileCycles;
    benchmark::DoNotOptimize(R.EntriesRun);
  }
  State.counters["sim_cycles"] = Cycles;
}
BENCHMARK(BM_OptimizePlan)->DenseRange(0, 4, 1);

void BM_ArchiveRoundTrip(benchmark::State &State) {
  // A representative archive: 512 records over 64 signatures.
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  Rng R(99);
  for (unsigned I = 0; I < 512; ++I) {
    CollectionRecord Rec;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "Class.method%u(int)int", I % 64);
    Rec.SignatureId = Dict.intern(Name);
    Rec.Level = (OptLevel)(I % 3);
    Rec.ModifierBits = R.next() & ((1ull << NumTransformations) - 1);
    Rec.CompileCycles = (double)R.nextBelow(1u << 20);
    Rec.RunCycles = (double)R.nextBelow(1u << 24);
    Rec.Invocations = 1 + R.nextBelow(1000);
    for (unsigned F = 0; F < NumFeatures; ++F)
      Rec.Features.set(F, (uint32_t)R.nextBelow(40));
    Records.push_back(std::move(Rec));
  }
  size_t Bytes = 0;
  for (auto _ : State) {
    std::vector<uint8_t> Buf = encodeArchive(Dict, Records);
    Bytes = Buf.size();
    ArchiveData Out;
    bool Ok = decodeArchive(Buf, Out);
    benchmark::DoNotOptimize(Ok);
  }
  State.counters["archive_bytes"] = (double)Bytes;
  State.counters["bytes_per_record"] = (double)Bytes / 512.0;
}
BENCHMARK(BM_ArchiveRoundTrip);

void BM_LinearPredict(benchmark::State &State) {
  // p x L sized like the paper's models: 71 features, L classes.
  unsigned L = (unsigned)State.range(0);
  std::vector<NormalizedInstance> Data;
  Rng R(7);
  for (unsigned I = 0; I < 256; ++I) {
    NormalizedInstance N;
    N.Label = 1 + (int32_t)(I % L);
    N.Components.resize(NumFeatures);
    for (unsigned F = 0; F < NumFeatures; ++F)
      N.Components[F] = R.nextDouble();
    Data.push_back(std::move(N));
  }
  TrainOptions TO;
  TO.MaxIters = 5;
  LinearModel Model = trainCrammerSinger(Data, TO);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Model.predict(Data[I % Data.size()].Components));
    ++I;
  }
}
BENCHMARK(BM_LinearPredict)->Arg(8)->Arg(64)->Arg(256);

void BM_InterpretKernel(benchmark::State &State) {
  const Program &P = benchProgram();
  uint32_t M = firstKernel(P);
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  for (auto _ : State) {
    VirtualMachine VM(P, Cfg);
    ExecResult R = VM.invoke(M, {Value::ofI(7)});
    benchmark::DoNotOptimize(R.Ret.I);
  }
}
BENCHMARK(BM_InterpretKernel);

void BM_ExecuteNativeKernel(benchmark::State &State) {
  const Program &P = benchProgram();
  uint32_t M = firstKernel(P);
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  VM.compileMethod(M, OptLevel::Hot);
  for (auto _ : State) {
    ExecResult R = VM.invoke(M, {Value::ofI(7)});
    benchmark::DoNotOptimize(R.Ret.I);
  }
}
BENCHMARK(BM_ExecuteNativeKernel);

void BM_FullStartupRun(benchmark::State &State) {
  const Program &P = benchProgram();
  for (auto _ : State) {
    RunResult R = runOnce(P, 1, nullptr, 42);
    benchmark::DoNotOptimize(R.WallCycles);
  }
}
BENCHMARK(BM_FullStartupRun);

} // namespace

BENCHMARK_MAIN();
