//===- bench/ablation_ranking.cpp -----------------------------------------===//
//
// Ablation: the modifier-selection strategies of section 6 — (i) best
// modifier only, (ii) top-N, (iii) top-M%, and the paper's evaluation
// setting (<= 3 within 95% of best) — plus a no-normalization variant
// that motivates Eq. 3.
//
// Metric: geometric-mean start-up performance over the SPECjvm98
// reservation set (jess, javac, jack) using the H-fold whose training data
// is the full five-benchmark merge.
//
//===----------------------------------------------------------------------===//

#include "harness/FigureReport.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace jitml;

namespace {

/// Trains a model set from \p Data with \p Policy, optionally skipping
/// the Eq. 3 normalization (raw counters straight into the SVM).
ModelSet trainVariant(const IntermediateDataSet &Data,
                      const SelectionPolicy &Policy, bool Normalize) {
  TrainConfig TC = ModelStore::trainConfig();
  TC.Selection = Policy;
  ModelSet Set = trainModelSet(Data, "variant", TC);
  if (!Normalize) {
    // Retrain each level on RAW feature values (no Eq. 3). The provider
    // always applies the stored scaling at prediction time, so the raw
    // regime is encoded as scale = v / 2^20 with all weights multiplied
    // by 2^20 — score-identical to training on raw values, and counters
    // never reach 2^20 so the clamp stays inactive.
    constexpr double Wide = (double)(1u << 20);
    std::vector<RankedInstance> Fit(2);
    for (unsigned I = 0; I < NumFeatures; ++I)
      Fit[1].Features.set(I, 1u << 20);
    Scaling WideScale = Scaling::fit(Fit);
    for (unsigned L = 0; L < NumOptLevels; ++L) {
      if (!Set.Levels[L].Valid)
        continue;
      std::vector<RankedInstance> Ranked =
          rankRecords(Data, (OptLevel)L, Policy, TC.Triggers);
      LevelModel &LM = Set.Levels[L];
      LabelMap Labels;
      std::vector<NormalizedInstance> Raw;
      Raw.reserve(Ranked.size());
      for (const RankedInstance &R : Ranked) {
        NormalizedInstance N;
        N.Label = Labels.labelFor(R.ModifierBits);
        N.Components.resize(NumFeatures);
        for (unsigned I = 0; I < NumFeatures; ++I)
          N.Components[I] = (double)R.Features.get(I);
        Raw.push_back(std::move(N));
      }
      LM.Labels = Labels;
      LM.Model = trainCrammerSinger(Raw, TC.Svm);
      for (unsigned C = 0; C < LM.Model.numClasses(); ++C)
        for (unsigned F = 0; F < NumFeatures; ++F)
          LM.Model.weight(C, F) *= Wide;
      LM.Scale = WideScale;
    }
  }
  return Set;
}

double geomeanStartup(ModelSet &Set) {
  unsigned Runs = configuredRuns(10);
  std::vector<double> Values;
  for (const char *Code : {"js", "jc", "jk"}) {
    Program P = buildWorkload(workloadByCode(Code));
    ExperimentConfig EC;
    EC.Iterations = 1;
    EC.Runs = Runs;
    Series Baseline = measureSeries(P, EC, nullptr);
    LearnedStrategyProvider Provider(Set);
    Series Learned = measureSeries(P, EC, &Provider);
    Values.push_back(relativePerformance(Baseline, Learned).Value);
  }
  return geometricMean(Values);
}

} // namespace

int main() {
  ModelStore::Artifacts A = ModelStore::getOrBuild(true);
  IntermediateDataSet Merged = mergeAll(A.PerBenchmark);

  struct Variant {
    const char *Name;
    SelectionPolicy Policy;
    bool Normalize;
  };
  SelectionPolicy Best;
  Best.Mode = SelectionPolicy::Kind::BestOnly;
  SelectionPolicy Top5;
  Top5.Mode = SelectionPolicy::Kind::TopN;
  Top5.N = 5;
  SelectionPolicy Pct25;
  Pct25.Mode = SelectionPolicy::Kind::TopPercent;
  Pct25.Percent = 25.0;
  SelectionPolicy Paper; // default: <=3 within 95% of best

  std::vector<Variant> Variants = {
      {"best modifier only", Best, true},
      {"top-5 modifiers", Top5, true},
      {"top 25% modifiers", Pct25, true},
      {"<=3 within 95% of best (paper)", Paper, true},
      {"paper selection, NO Eq.3 normalization", Paper, false},
  };

  TablePrinter Table;
  Table.setHeader({"selection strategy", "startup geomean"});
  for (Variant &V : Variants) {
    std::printf("[ablation] training + measuring: %s\n", V.Name);
    std::fflush(stdout);
    ModelSet Set = trainVariant(Merged, V.Policy, V.Normalize);
    Table.addRow({V.Name, TablePrinter::fmt(geomeanStartup(Set))});
  }
  std::printf("== Ablation: ranking selection strategies (section 6) ==\n"
              "geometric-mean start-up performance vs baseline over the "
              "SPECjvm98 reservation set\n%s",
              Table.render().c_str());
  return 0;
}
