//===- bench/fig8_startup_dacapo.cpp --------------------------------------===//
//
// Figure 8: DaCapo start-up performance with models trained ONLY on
// SPECjvm98 — the generalization study. Expected shape: "even when
// presented with a significantly different set of benchmarks, the models
// delivered a modest performance gain for start-up performance"; every
// benchmark shows all five models (DaCapo is entirely a reservation set).
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 8: DaCapo start-up performance (1 iteration)",
      jitml::FigureMetric::StartupPerformance, jitml::Suite::DaCapo,
      /*Iterations=*/1, /*DefaultRuns=*/30);
}
