//===- bench/fig6_startup_spec.cpp ----------------------------------------===//
//
// Figure 6: "Start-up performance results (single iteration) for SPECjvm98
// relative to Testarossa, where higher bars are better." Expected shape:
// the learned models win on average (the paper reports 10-22% average
// improvement depending on the model), with visible variance across the
// five leave-one-out models on the reservation-set benchmarks.
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 6: SPECjvm98 start-up performance (1 iteration)",
      jitml::FigureMetric::StartupPerformance, jitml::Suite::SpecJvm98,
      /*Iterations=*/1, /*DefaultRuns=*/30);
}
