//===- bench/ablation_search.cpp ------------------------------------------===//
//
// Ablation: the two modifier-generation strategies of section 5 —
// pure randomized search vs progressive randomized search (Eq. 1) vs the
// merged data the paper settled on: "Separate models for each search
// strategy were also trained and measured, but they did not perform as
// well as the models that combine both strategies."
//
//===----------------------------------------------------------------------===//

#include "harness/FigureReport.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace jitml;

namespace {

double geomeanStartup(ModelSet &Set, unsigned Runs) {
  std::vector<double> Values;
  for (const char *Code : {"js", "jc", "jk"}) {
    Program P = buildWorkload(workloadByCode(Code));
    ExperimentConfig EC;
    EC.Iterations = 1;
    EC.Runs = Runs;
    Series Baseline = measureSeries(P, EC, nullptr);
    LearnedStrategyProvider Provider(Set);
    Series Learned = measureSeries(P, EC, &Provider);
    Values.push_back(relativePerformance(Baseline, Learned).Value);
  }
  return geometricMean(Values);
}

} // namespace

int main() {
  unsigned Runs = configuredRuns(10);
  CollectConfig CC = ModelStore::collectConfig();
  TrainConfig TC = ModelStore::trainConfig();

  // Collect per-strategy data for the five training benchmarks, including
  // the guided search the paper left as future work.
  std::vector<IntermediateDataSet> RandOnly, ProgOnly, GuidedOnly;
  for (const WorkloadSpec &Spec : trainingBenchmarks()) {
    std::printf("[ablation] collecting %s (all strategies)...\n",
                Spec.Name.c_str());
    std::fflush(stdout);
    RandOnly.push_back(
        collectWithStrategy(Spec, CC, SearchStrategy::Randomized));
    ProgOnly.push_back(
        collectWithStrategy(Spec, CC, SearchStrategy::Progressive));
    GuidedOnly.push_back(
        collectWithStrategy(Spec, CC, SearchStrategy::Guided));
  }
  IntermediateDataSet Rand = mergeAll(RandOnly);
  IntermediateDataSet Prog = mergeAll(ProgOnly);
  IntermediateDataSet Guided = mergeAll(GuidedOnly);
  IntermediateDataSet Both = Rand;
  Both.append(Prog);

  TablePrinter Table;
  Table.setHeader({"search strategy", "records", "startup geomean"});
  struct Row {
    const char *Name;
    IntermediateDataSet *Data;
  };
  for (Row R : {Row{"randomized only", &Rand}, Row{"progressive only", &Prog},
                Row{"guided (future work, sec. 5)", &Guided},
                Row{"merged rand+prog (paper)", &Both}}) {
    ModelSet Set = trainModelSet(*R.Data, R.Name, TC);
    Table.addRow({R.Name, std::to_string(R.Data->size()),
                  TablePrinter::fmt(geomeanStartup(Set, Runs))});
  }
  std::printf("== Ablation: modifier search strategies (section 5) ==\n%s",
              Table.render().c_str());
  return 0;
}
