//===- bench/fuzz_differential.cpp ----------------------------------------===//
//
// Driver for the coverage-guided differential fuzzer (src/verify/). Two
// modes:
//
//   default          run a seeded campaign: mutate generated programs,
//                    execute each through the interpreter, every sync opt
//                    level (twice, for clock determinism) and the async
//                    pipeline, with the deep IL verifier interposed after
//                    every pass. Any divergence is auto-reduced and, when
//                    --corpus is given, written as a .repro file. Exit
//                    status 1 when a divergence was found.
//
//   --overhead-gate  prove the interposition hook is free when
//                    JITML_VERIFY_IL is off: measure the disabled-path
//                    cost (one relaxed mode load + branch), count the
//                    hook crossings the Figure 6 workload performs (Count
//                    mode), and gate on crossings x cost / wall < 3%,
//                    plus bit-identical checksums and simulated cycles
//                    Off vs Count.
//
// Knobs (flags override env):
//   JITML_GEN_SEED     / --seed N      campaign + generator seed
//   JITML_FUZZ_BUDGET  / --execs N     max oracle executions
//                        --seconds N   wall-clock budget
//                        --faults SPEC --fault-seed N   inject bugs
//                        --corpus DIR  write reduced repros here
//
//===----------------------------------------------------------------------===//

#include "runtime/VirtualMachine.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "verify/DifferentialFuzzer.h"
#include "verify/PassVerifier.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace jitml;
using namespace jitml::verify;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::strtoull(V, nullptr, 10);
}

struct SuiteResult {
  double WallSeconds = 0.0;
  int64_t Checksum = 0;
  double WallCycles = 0.0;
};

/// One sync pass over the Figure 6 suite (bit-deterministic run-to-run,
/// so Off vs Count must agree exactly).
SuiteResult runFig6Suite() {
  SuiteResult R;
  double Start = nowSeconds();
  for (const WorkloadSpec &Spec : specJvm98Suite()) {
    Program P = buildWorkload(Spec);
    VirtualMachine::Config Cfg;
    VirtualMachine VM(P, Cfg);
    ExecResult Res = VM.run({Value::ofI(0)});
    if (Res.Exceptional) {
      std::fprintf(stderr, "%s raised an exception\n", Spec.Code.c_str());
      continue;
    }
    R.Checksum ^= Res.Ret.I;
    R.WallCycles += VM.stats().totalCycles();
  }
  R.WallSeconds = nowSeconds() - Start;
  return R;
}

int runOverheadGate(const char *JsonPath) {
  std::printf("IL-verifier overhead: disabled interposition hook and the "
              "Fig. 6 workload gate\n\n");

  // 1. Disabled-path cost. This is exactly what every pass pays when
  // JITML_VERIFY_IL is unset: one relaxed load of the mode cell plus a
  // predicted-not-taken branch.
  setVerifyIlMode(VerifyIlMode::Off);
  constexpr size_t Iters = 8 * 1000 * 1000;
  double Best = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    double Start = nowSeconds();
    uint64_t Sink = 0;
    for (size_t I = 0; I < Iters; ++I)
      Sink += verifyIlMode() != VerifyIlMode::Off;
    double Elapsed = nowSeconds() - Start;
    if (Sink != 0)
      std::abort(); // defeat dead-code elimination
    Best = std::min(Best, Elapsed * 1e9 / (double)Iters);
  }
  std::printf("%-34s %8.3f ns/op\n", "mode check (off)", Best);

  // 2. Baseline run with the hook disabled, then a Count-mode run: same
  // workload, every crossing bumps verify.checks but nothing is verified.
  SuiteResult Off = runFig6Suite();
  TelemetryCounter &Checks = MetricRegistry::global().counter("verify.checks");
  uint64_t ChecksBefore = Checks.value();
  setVerifyIlMode(VerifyIlMode::Count);
  SuiteResult Count = runFig6Suite();
  setVerifyIlMode(VerifyIlMode::Off);
  uint64_t Crossings = Checks.value() - ChecksBefore;

  double OverheadFrac =
      Off.WallSeconds > 0.0
          ? ((double)Crossings * Best * 1e-9) / Off.WallSeconds
          : 0.0;
  std::printf("\nFig. 6 workload: wall %.3fs, %llu verifier-hook "
              "crossings\n",
              Off.WallSeconds, (unsigned long long)Crossings);
  std::printf("estimated disabled-path share of wall clock: %.5f%% "
              "(gate: <3%%)\n",
              100.0 * OverheadFrac);

  // 3. Figures unaffected: counting crossings must not perturb results or
  // simulated time.
  bool ChecksumOk = Off.Checksum == Count.Checksum;
  bool CyclesOk = Off.WallCycles == Count.WallCycles;
  std::printf("count mode: checksum %s, simulated cycles %s\n",
              ChecksumOk ? "identical" : "MISMATCH",
              CyclesOk ? "bit-identical" : "MISMATCH");

  bool GateOk = OverheadFrac < 0.03;
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"mode_check_off_ns\": %.4f,\n"
                 "  \"fig6_wall_s\": %.6f,\n"
                 "  \"fig6_verify_crossings\": %llu,\n"
                 "  \"overhead_fraction\": %.8f,\n"
                 "  \"checksum_identical\": %s,\n"
                 "  \"cycles_identical\": %s,\n"
                 "  \"gate_under_3pct\": %s\n"
                 "}\n",
                 Best, Off.WallSeconds, (unsigned long long)Crossings,
                 OverheadFrac, ChecksumOk ? "true" : "false",
                 CyclesOk ? "true" : "false", GateOk ? "true" : "false");
    std::fclose(F);
    std::printf("\nwrote %s\n", JsonPath);
  }
  if (!GateOk || !ChecksumOk || !CyclesOk) {
    std::fprintf(stderr, "FAIL: IL-verifier overhead gate\n");
    return 1;
  }
  std::printf("PASS: disabled verifier hook costs <3%% of the Fig. 6 "
              "workload\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  FuzzCampaignConfig Cfg;
  Cfg.Seed = envU64("JITML_GEN_SEED", 1);
  Cfg.MaxExecs = envU64("JITML_FUZZ_BUDGET", 1000);
  const char *JsonPath = "BENCH_fuzz.json";
  bool Gate = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--overhead-gate")
      Gate = true;
    else if (Arg == "--seed")
      Cfg.Seed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--execs")
      Cfg.MaxExecs = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--seconds")
      Cfg.MaxSeconds = std::strtod(Next(), nullptr);
    else if (Arg == "--faults")
      Cfg.FaultSpec = Next();
    else if (Arg == "--fault-seed")
      Cfg.FaultSeed = std::strtoull(Next(), nullptr, 10);
    else if (Arg == "--corpus")
      Cfg.CorpusDir = Next();
    else if (Arg == "--no-reduce")
      Cfg.Reduce = false;
    else if (Arg == "--max-divergences")
      Cfg.MaxDivergences = (unsigned)std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--json")
      JsonPath = Next();
    else if (Arg == "-v" || Arg == "--verbose")
      Cfg.Verbose = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--overhead-gate] [--seed N] [--execs N] "
                   "[--seconds S] [--faults SPEC [--fault-seed N]] "
                   "[--corpus DIR] [--no-reduce] [--max-divergences N] "
                   "[--json PATH] [-v]\n",
                   argv[0]);
      return 2;
    }
  }

  if (Gate)
    return runOverheadGate(JsonPath);

  if (!Cfg.FaultSpec.empty() &&
      !FaultRegistry::global().arm(Cfg.FaultSpec, Cfg.FaultSeed)) {
    std::fprintf(stderr, "bad fault spec '%s'\n", Cfg.FaultSpec.c_str());
    return 2;
  }

  std::printf("differential fuzz: seed %llu, budget %llu execs%s\n",
              (unsigned long long)Cfg.Seed,
              (unsigned long long)Cfg.MaxExecs,
              Cfg.FaultSpec.empty()
                  ? ""
                  : (" (faults: " + Cfg.FaultSpec + ")").c_str());
  double Start = nowSeconds();
  FuzzCampaignResult Res = runFuzzCampaign(Cfg);
  double Wall = nowSeconds() - Start;
  FaultRegistry::global().disarm();

  std::printf("%llu execs in %.2fs (%.0f/s), %u coverage bits, pool %u, "
              "%zu divergence(s)\n",
              (unsigned long long)Res.Execs, Wall,
              Wall > 0 ? (double)Res.Execs / Wall : 0.0, Res.CoverageBits,
              Res.PoolSize, Res.Divergences.size());
  for (const Divergence &D : Res.Divergences) {
    std::printf("  [%s] %s\n", divergenceKindName(D.Result.Kind),
                D.Result.Detail.c_str());
    if (D.WasReduced)
      std::printf("    reduced: %s\n",
                  serializeFuzzInput(D.Reduced).c_str());
    if (!D.CorpusFile.empty())
      std::printf("    corpus:  %s\n", D.CorpusFile.c_str());
  }

  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"seed\": %llu,\n"
                 "  \"execs\": %llu,\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"coverage_bits\": %u,\n"
                 "  \"pool\": %u,\n"
                 "  \"divergences\": %zu\n"
                 "}\n",
                 (unsigned long long)Cfg.Seed,
                 (unsigned long long)Res.Execs, Wall, Res.CoverageBits,
                 Res.PoolSize, Res.Divergences.size());
    std::fclose(F);
  }
  return Res.Divergences.empty() ? 0 : 1;
}
