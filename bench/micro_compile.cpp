//===- bench/micro_compile.cpp --------------------------------------------===//
//
// Compile-path hot-loop benchmark and bit-identity gate for the epoch
// memoization layer (pass memo + cached CFG analyses + cached live-node
// counts, all keyed on MethodIL::modEpoch; JITML_OPT_MEMO=off disables).
//
//   1. Bit-identity: for every SPECjvm98 workload method and every one of
//      the five plans, optimize() with memoization on and off must agree
//      on simulated CompileCycles to the last bit, on every entry counter,
//      and on the shape of the resulting IL. The simulated-clock figures
//      must not know the caches exist.
//   2. Speed: wall-clock the optimize() loop on the scorching plan (the
//      170+-entry plan where cleanup passes repeat heavily) with memo on
//      vs off. IL generation is excluded from the timed region; each
//      optimize() run gets freshly generated IL. Gate: >= 1.5x.
//
// Emits BENCH_compile.json next to the binary. Exit status is the gate.
//
//===----------------------------------------------------------------------===//

#include "il/ILGenerator.h"
#include "opt/Optimizer.h"
#include "support/Memo.h"
#include "support/Telemetry.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

using namespace jitml;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A cheap structural fingerprint of post-optimization IL: enough to catch
/// any divergence the memo layer could plausibly introduce.
uint64_t ilFingerprint(const MethodIL &IL) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(IL.numNodes());
  Mix(IL.numBlocks());
  Mix(IL.countLiveNodes());
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    Mix(Blk.Trees.size());
    Mix(Blk.Succs.size());
    Mix(Blk.Reachable ? 7 : 3);
    for (NodeId Root : Blk.Trees) {
      const Node &N = IL.node(Root);
      Mix(((uint64_t)N.Op << 32) | (uint32_t)N.A);
    }
  }
  return H;
}

struct CellResult {
  double CompileCycles = 0.0;
  uint32_t EntriesRun = 0;
  uint32_t EntriesSkipped = 0;
  uint64_t Fingerprint = 0;
};

CellResult optimizeFresh(const Program &P, uint32_t Method, OptLevel L) {
  std::unique_ptr<MethodIL> IL = generateIL(P, Method);
  OptimizeResult R = optimize(*IL, planForLevel(L),
                              BitSet64::allOne(NumTransformations));
  CellResult C;
  C.CompileCycles = R.CompileCycles;
  C.EntriesRun = R.EntriesRun;
  C.EntriesSkipped = R.EntriesSkippedInapplicable;
  C.Fingerprint = ilFingerprint(*IL);
  return C;
}

/// Wall seconds spent inside optimize() on the scorching plan over every
/// method of every suite program. IL generation happens outside the timer.
double timeScorchingLoop(const std::vector<Program> &Programs) {
  const CompilationPlan &Plan = planForLevel(OptLevel::Scorching);
  BitSet64 Mask = BitSet64::allOne(NumTransformations);
  double Total = 0.0;
  for (const Program &P : Programs) {
    for (uint32_t M = 0; M < P.numMethods(); ++M) {
      std::unique_ptr<MethodIL> IL = generateIL(P, M);
      double Start = nowSeconds();
      (void)optimize(*IL, Plan, Mask);
      Total += nowSeconds() - Start;
    }
  }
  return Total;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_compile.json";

  std::printf("Compile-path hot loop: epoch memoization on vs off\n\n");

  std::vector<Program> Programs;
  for (const WorkloadSpec &Spec : specJvm98Suite())
    Programs.push_back(buildWorkload(Spec));

  // 1. Bit-identity across every (program, method, level) cell.
  uint32_t Cells = 0, Mismatches = 0;
  for (const Program &P : Programs) {
    for (uint32_t M = 0; M < P.numMethods(); ++M) {
      for (unsigned L = 0; L < NumOptLevels; ++L) {
        setMemoEnabled(true);
        CellResult On = optimizeFresh(P, M, (OptLevel)L);
        setMemoEnabled(false);
        CellResult Off = optimizeFresh(P, M, (OptLevel)L);
        setMemoEnabled(true);
        ++Cells;
        if (On.CompileCycles != Off.CompileCycles ||
            On.EntriesRun != Off.EntriesRun ||
            On.EntriesSkipped != Off.EntriesSkipped ||
            On.Fingerprint != Off.Fingerprint) {
          ++Mismatches;
          std::fprintf(stderr,
                       "MISMATCH method %u level %u: cycles %.17g vs %.17g, "
                       "run %u/%u, skipped %u/%u, fp %llx vs %llx\n",
                       M, L, On.CompileCycles, Off.CompileCycles,
                       On.EntriesRun, Off.EntriesRun, On.EntriesSkipped,
                       Off.EntriesSkipped,
                       (unsigned long long)On.Fingerprint,
                       (unsigned long long)Off.Fingerprint);
        }
      }
    }
  }
  bool IdentityOk = Mismatches == 0;
  std::printf("bit-identity: %u cells (method x level), %u mismatches\n",
              Cells, Mismatches);

  // 2. Wall-clock speedup on the scorching-plan compile loop (best of 3).
  MetricRegistry &Reg = MetricRegistry::global();
  uint64_t Hits0 = Reg.counter("opt.memo.hits").value();
  uint64_t Misses0 = Reg.counter("opt.memo.misses").value();
  double OnBest = 1e30, OffBest = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    setMemoEnabled(true);
    OnBest = std::min(OnBest, timeScorchingLoop(Programs));
    if (Rep == 0) { // hit rate of one memo-on sweep
      Hits0 = Reg.counter("opt.memo.hits").value() - Hits0;
      Misses0 = Reg.counter("opt.memo.misses").value() - Misses0;
    }
    setMemoEnabled(false);
    OffBest = std::min(OffBest, timeScorchingLoop(Programs));
  }
  setMemoEnabled(true);
  double Speedup = OnBest > 0.0 ? OffBest / OnBest : 0.0;
  double HitRate =
      Hits0 + Misses0 ? (double)Hits0 / (double)(Hits0 + Misses0) : 0.0;
  std::printf("scorching loop: memo off %.4fs, memo on %.4fs, "
              "speedup %.2fx (gate: >= 1.5x)\n",
              OffBest, OnBest, Speedup);
  std::printf("memo hit rate: %.1f%% (%llu hits / %llu bodies)\n",
              100.0 * HitRate, (unsigned long long)Hits0,
              (unsigned long long)(Hits0 + Misses0));

  bool SpeedOk = Speedup >= 1.5;
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"identity_cells\": %u,\n"
                 "  \"identity_mismatches\": %u,\n"
                 "  \"scorching_memo_off_s\": %.6f,\n"
                 "  \"scorching_memo_on_s\": %.6f,\n"
                 "  \"speedup\": %.4f,\n"
                 "  \"memo_hit_rate\": %.4f,\n"
                 "  \"gate_identity\": %s,\n"
                 "  \"gate_speedup_1_5x\": %s\n"
                 "}\n",
                 Cells, Mismatches, OffBest, OnBest, Speedup, HitRate,
                 IdentityOk ? "true" : "false", SpeedOk ? "true" : "false");
    std::fclose(F);
    std::printf("\nwrote %s\n", JsonPath);
  }

  if (!IdentityOk || !SpeedOk) {
    std::fprintf(stderr, "FAIL: compile-path memoization gate\n");
    return 1;
  }
  std::printf("PASS: memoized compile loop is bit-identical and >= 1.5x "
              "faster\n");
  return 0;
}
