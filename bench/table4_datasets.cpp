//===- bench/table4_datasets.cpp ------------------------------------------===//
//
// Table 4: "Average data set sizes used for training the machine-learned
// models" — merged vs ranked instances, unique classes (modifiers), unique
// feature vectors, and the vector:instance ratio, per optimization level
// (cold/warm/hot).
//
// Expected shape (the paper collected ~1.5-2.5M instances per level with
// L = 2000 over a 16-node cluster; this harness uses a scaled exploration
// budget): merged instances >> ranked instances; the merged
// vector:instance ratio is orders of magnitude larger than the ranked
// ratio, which lands near 1:2 because the ranking keeps at most 3
// modifiers per unique feature vector within 95% of the best.
//
//===----------------------------------------------------------------------===//

#include "harness/ModelStore.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace jitml;

int main() {
  ModelStore::Artifacts A = ModelStore::getOrBuild(true);
  IntermediateDataSet Merged = mergeAll(A.PerBenchmark);
  TrainConfig TC = ModelStore::trainConfig();

  TablePrinter Table;
  Table.setHeader({"Level", "Merged:Instances", "Merged:Classes",
                   "Merged:Vectors", "Merged:Ratio", "Ranked:Instances",
                   "Ranked:Classes", "Ranked:Vectors", "Ranked:Ratio"});
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    OptLevel Level = (OptLevel)L;
    if (!isLearnedLevel(Level))
      continue;
    DataSetSummary M = summarizeMerged(Merged, Level);
    std::vector<RankedInstance> Ranked =
        rankRecords(Merged, Level, TC.Selection, TC.Triggers);
    DataSetSummary R = summarizeRanked(Ranked);
    Table.addRow({optLevelName(Level), std::to_string(M.Instances),
                  std::to_string(M.UniqueClasses),
                  std::to_string(M.UniqueFeatureVectors),
                  "1:" + TablePrinter::fmt(M.vectorInstanceRatio(), 2),
                  std::to_string(R.Instances),
                  std::to_string(R.UniqueClasses),
                  std::to_string(R.UniqueFeatureVectors),
                  "1:" + TablePrinter::fmt(R.vectorInstanceRatio(), 2)});
  }
  std::printf("== Table 4: data set sizes used for training ==\n"
              "(scaled exploration budget: L=%u modifiers/level, "
              "%u uses/modifier; the paper used L=2000 on a cluster)\n%s",
              ModelStore::collectConfig().ModifiersPerLevel,
              ModelStore::collectConfig().UsesPerModifier,
              Table.render().c_str());
  return 0;
}
