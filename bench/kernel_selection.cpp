//===- bench/kernel_selection.cpp -----------------------------------------===//
//
// The section 6 kernel-selection study: linear vs RBF.
//
// Paper findings to reproduce in shape:
//  * the RBF kernel trains quickly ("around 20% of the training time of
//    the linear model"),
//  * but predicts orders of magnitude slower ("up to 660 ms ... 4 orders
//    of magnitude" slower than the linear kernel's ~48 us), because RBF
//    prediction touches every support vector while linear prediction is
//    one p x L matrix product;
//  * "It should not take longer to find out which transformations to
//    apply to a method than to compile that method at the highest
//    optimization level."
//
//===----------------------------------------------------------------------===//

#include "harness/ModelStore.h"
#include "support/TablePrinter.h"
#include "svm/KernelModel.h"

#include <chrono>
#include <cstdio>

using namespace jitml;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main() {
  ModelStore::Artifacts A = ModelStore::getOrBuild(true);
  IntermediateDataSet Merged = mergeAll(A.PerBenchmark);
  TrainConfig TC = ModelStore::trainConfig();

  // The timing shape depends on data-set scale (the paper's sets held
  // ~2000 instances over ~1000 classes), so this study trains on every
  // merged warm-level record rather than only the ranked selection.
  std::vector<RankedInstance> All;
  for (const TaggedRecord &T : Merged.Records) {
    if (T.Record.Level != OptLevel::Warm || T.Record.Invocations == 0)
      continue;
    RankedInstance R;
    R.Features = T.Record.Features;
    R.ModifierBits = T.Record.ModifierBits;
    All.push_back(std::move(R));
    if (All.size() >= 1600)
      break;
  }
  Scaling S = Scaling::fit(All);
  LabelMap Labels;
  std::vector<NormalizedInstance> Data = normalizeInstances(All, S, Labels);
  std::printf("warm-level training set: %zu instances, %zu classes, %u "
              "features\n",
              Data.size(), Labels.size(), NumFeatures);

  // Linear (Crammer-Singer) training + prediction timing.
  auto T0 = std::chrono::steady_clock::now();
  TrainReport LinReport;
  LinearModel Linear = trainCrammerSinger(Data, TC.Svm, &LinReport);
  double LinearTrain = secondsSince(T0);

  // RBF training + prediction timing.
  T0 = std::chrono::steady_clock::now();
  KernelTrainOptions KO;
  KO.C = TC.Svm.C;
  KO.MaxIters = 8;
  RbfModel Rbf = trainRbf(Data, KO);
  double RbfTrain = secondsSince(T0);

  // Prediction latency: average over the training inputs, many repeats
  // for the (fast) linear model.
  volatile int32_t Sink = 0;
  T0 = std::chrono::steady_clock::now();
  unsigned LinearReps = 200;
  for (unsigned R = 0; R < LinearReps; ++R)
    for (const NormalizedInstance &N : Data)
      Sink = Sink + Linear.predict(N.Components);
  double LinearPredict =
      secondsSince(T0) / ((double)LinearReps * (double)Data.size());

  T0 = std::chrono::steady_clock::now();
  unsigned RbfReps = 1;
  for (unsigned R = 0; R < RbfReps; ++R)
    for (const NormalizedInstance &N : Data)
      Sink = Sink + Rbf.predict(N.Components);
  double RbfPredict =
      secondsSince(T0) / ((double)RbfReps * (double)Data.size());

  TablePrinter Table;
  Table.setHeader({"kernel", "train (s)", "predict (us)", "train acc",
                   "model size"});
  char Size[64];
  std::snprintf(Size, sizeof(Size), "%ux%u weights", Linear.numClasses(),
                Linear.numFeatures());
  Table.addRow({"linear (Crammer-Singer)", TablePrinter::fmt(LinearTrain),
                TablePrinter::fmt(LinearPredict * 1e6, 2),
                TablePrinter::fmt(modelAccuracy(Linear, Data), 3), Size});
  std::snprintf(Size, sizeof(Size), "%zu support vectors x %u classes",
                Rbf.numVectors(), Rbf.numClasses());
  Table.addRow({"RBF (one-vs-rest)", TablePrinter::fmt(RbfTrain),
                TablePrinter::fmt(RbfPredict * 1e6, 2),
                TablePrinter::fmt(rbfAccuracy(Rbf, Data), 3), Size});
  std::printf("== Section 6: kernel selection trade-off ==\n%s",
              Table.render().c_str());
  std::printf("prediction slowdown RBF/linear: %.0fx "
              "(paper: ~4 orders of magnitude at production scale)\n",
              RbfPredict / LinearPredict);
  std::printf("training speedup RBF/linear: %.2fx "
              "(paper: RBF trained ~5x faster)\n",
              LinearTrain / RbfTrain);
  (void)Sink;
  return 0;
}
