//===- bench/micro_async_compile.cpp --------------------------------------===//
//
// Startup cost of synchronous vs asynchronous compilation on the Figure 6
// workload (SPECjvm98-like suite, single iteration). In sync mode the
// compiler shares the interpreter's core, so every compile stalls the
// application; in async mode the background workers compile on their own
// core and the interpreter-thread stall should collapse to (near) zero,
// shrinking wall-clock startup by the compile share. Results are verified
// against the pure interpreter's checksum in both modes.
//
//===----------------------------------------------------------------------===//

#include "runtime/VirtualMachine.h"
#include "support/Telemetry.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <string>

using namespace jitml;

namespace {

struct ModeResult {
  int64_t Checksum = 0;
  double StallCycles = 0.0; ///< interpreter-thread compile cycles
  double WallCycles = 0.0;  ///< what the application experiences
  uint64_t Compilations = 0;
  uint64_t Overflows = 0;
};

ModeResult runMode(const Program &P, bool Async, unsigned Iterations) {
  VirtualMachine::Config Cfg;
  if (Async) {
    Cfg.Async.Enabled = true;
    Cfg.Async.Workers = 2;
    Cfg.Async.QueueCapacity = 64;
  }
  VirtualMachine VM(P, Cfg);
  ModeResult R;
  for (unsigned I = 0; I < Iterations; ++I) {
    ExecResult Res = VM.run({Value::ofI((int64_t)I)});
    if (Res.Exceptional) {
      std::fprintf(stderr, "workload raised an exception\n");
      return R;
    }
    R.Checksum ^= Res.Ret.I + (int64_t)I * 1315423911;
  }
  VM.drainCompilations();
  const VirtualMachine::Stats &S = VM.stats();
  R.StallCycles = S.CompileCycles;
  R.WallCycles = S.totalCycles();
  R.Compilations = S.Compilations;
  R.Overflows = S.AsyncQueueOverflows;
  return R;
}

int64_t interpChecksum(const Program &P, unsigned Iterations) {
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  int64_t Sum = 0;
  for (unsigned I = 0; I < Iterations; ++I) {
    ExecResult Res = VM.run({Value::ofI((int64_t)I)});
    if (Res.Exceptional)
      return ~0ll;
    Sum ^= Res.Ret.I + (int64_t)I * 1315423911;
  }
  return Sum;
}

} // namespace

int main() {
  const unsigned Iterations = 1; // Figure 6 measures startup: 1 iteration
  std::printf("Async background compilation: interpreter-thread stall, "
              "SPECjvm98 startup (%u iteration)\n\n",
              Iterations);
  std::printf("%-12s %14s %14s %8s %14s %14s %8s\n", "bench",
              "sync stall", "async stall", "stall-%", "sync wall",
              "async wall", "speedup");

  double SyncStallTotal = 0.0, AsyncStallTotal = 0.0;
  double SyncWallTotal = 0.0, AsyncWallTotal = 0.0;
  unsigned Mismatches = 0;
  uint64_t OverflowTotal = 0;

  for (const WorkloadSpec &Spec : specJvm98Suite()) {
    Program P = buildWorkload(Spec);
    int64_t Ref = interpChecksum(P, Iterations);
    ModeResult Sync = runMode(P, /*Async=*/false, Iterations);
    ModeResult Async = runMode(P, /*Async=*/true, Iterations);
    if (Sync.Checksum != Ref || Async.Checksum != Ref) {
      ++Mismatches;
      std::printf("%-12s CHECKSUM MISMATCH (interp %lld sync %lld async "
                  "%lld)\n",
                  Spec.Code.c_str(), (long long)Ref,
                  (long long)Sync.Checksum, (long long)Async.Checksum);
      continue;
    }
    double StallCut = Sync.StallCycles > 0.0
                          ? 100.0 * (1.0 - Async.StallCycles /
                                               Sync.StallCycles)
                          : 0.0;
    double Speedup = Async.WallCycles > 0.0
                         ? Sync.WallCycles / Async.WallCycles
                         : 1.0;
    std::printf("%-12s %14.0f %14.0f %7.1f%% %14.0f %14.0f %7.3fx\n",
                Spec.Code.c_str(), Sync.StallCycles, Async.StallCycles,
                StallCut, Sync.WallCycles, Async.WallCycles, Speedup);
    SyncStallTotal += Sync.StallCycles;
    AsyncStallTotal += Async.StallCycles;
    SyncWallTotal += Sync.WallCycles;
    AsyncWallTotal += Async.WallCycles;
    OverflowTotal += Async.Overflows;
  }

  std::printf("\nsuite totals: sync stall %.0f, async stall %.0f "
              "(%.1f%% less), wall speedup %.3fx, queue overflows %llu\n",
              SyncStallTotal, AsyncStallTotal,
              SyncStallTotal > 0.0
                  ? 100.0 * (1.0 - AsyncStallTotal / SyncStallTotal)
                  : 0.0,
              AsyncWallTotal > 0.0 ? SyncWallTotal / AsyncWallTotal : 1.0,
              (unsigned long long)OverflowTotal);
  // The unified registry view of the run: queue, pipeline, cache, and VM
  // all report here. With JITML_TRACE set, the JSONL trace's compile
  // spans can be reconciled against these totals (scripts/
  // trace_summarize.py renders the per-stage table).
  std::printf("\n== telemetry registry ==\n%s",
              MetricRegistry::global().toText().c_str());
  TraceEmitter &Trace = TraceEmitter::global();
  if (Trace.enabled() || Trace.eventsWritten()) {
    Trace.flushNow();
    std::printf("trace: %llu events written, %llu dropped\n",
                (unsigned long long)Trace.eventsWritten(),
                (unsigned long long)Trace.eventsDropped());
  }

  if (Mismatches) {
    std::fprintf(stderr, "%u benchmark(s) had checksum mismatches\n",
                 Mismatches);
    return 1;
  }
  if (AsyncStallTotal >= SyncStallTotal && SyncStallTotal > 0.0) {
    std::fprintf(stderr,
                 "async mode did not reduce interpreter-thread stall\n");
    return 1;
  }
  return 0;
}
