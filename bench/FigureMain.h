//===- bench/FigureMain.h - Shared driver for the figure benches -*-C++-*-===//
///
/// \file
/// Each Figure 6-13 bench binary parameterizes this driver: it loads (or
/// builds) the trained model artifacts, measures the suite under the
/// baseline and the five leave-one-out model sets, and prints the figure's
/// rows. Set JITML_RUNS to override the repetition count (the paper used
/// 30 runs per configuration) and JITML_CACHE_DIR to relocate the
/// collection cache.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BENCH_FIGUREMAIN_H
#define JITML_BENCH_FIGUREMAIN_H

#include "harness/FigureReport.h"

#include <cstdio>

namespace jitml {

inline int runFigureBench(const char *Title, FigureMetric Metric,
                          Suite BenchSuite, unsigned Iterations,
                          unsigned DefaultRuns) {
  FigureRequest Request;
  Request.Title = Title;
  Request.Metric = Metric;
  Request.BenchSuite = BenchSuite;
  Request.Iterations = Iterations;
  Request.Runs = configuredRuns(DefaultRuns);

  ModelStore::Artifacts Artifacts = ModelStore::getOrBuild(true);
  FigureData Data = runFigure(Request, Artifacts);
  std::string Report = formatFigure(Request, Data);
  std::fputs(Report.c_str(), stdout);
  return 0;
}

} // namespace jitml

#endif // JITML_BENCH_FIGUREMAIN_H
