//===- bench/ablation_c.cpp -----------------------------------------------===//
//
// Ablation: the SVM misclassification cost C. The paper empirically
// selected C = 10 "to balance the quality of the model generated and the
// training time". This sweep reports training time, training accuracy and
// end-to-end start-up quality across C values.
//
//===----------------------------------------------------------------------===//

#include "harness/FigureReport.h"
#include "harness/ModelStore.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdio>

using namespace jitml;

int main() {
  ModelStore::Artifacts A = ModelStore::getOrBuild(true);
  IntermediateDataSet Merged = mergeAll(A.PerBenchmark);
  TrainConfig TC = ModelStore::trainConfig();

  std::vector<RankedInstance> Ranked =
      rankRecords(Merged, OptLevel::Warm, TC.Selection, TC.Triggers);
  Scaling S = Scaling::fit(Ranked);
  LabelMap Labels;
  std::vector<NormalizedInstance> Data =
      normalizeInstances(Ranked, S, Labels);
  std::printf("warm-level data: %zu instances, %zu classes\n", Data.size(),
              Labels.size());

  TablePrinter Table;
  Table.setHeader({"C", "train (ms)", "iterations", "train acc",
                   "startup geomean"});
  unsigned Runs = configuredRuns(8);
  for (double C : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    TrainOptions TO = TC.Svm;
    TO.C = C;
    auto T0 = std::chrono::steady_clock::now();
    TrainReport Report;
    LinearModel Model = trainCrammerSinger(Data, TO, &Report);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    (void)Model;
    // End-to-end quality: train a full model set at this C and measure
    // start-up on two reservation benchmarks.
    TrainConfig Variant = TC;
    Variant.Svm.C = C;
    ModelSet Set = trainModelSet(Merged, "c-sweep", Variant);
    std::vector<double> Values;
    for (const char *Code : {"js", "jc"}) {
      Program P = buildWorkload(workloadByCode(Code));
      ExperimentConfig EC;
      EC.Iterations = 1;
      EC.Runs = Runs;
      Series Baseline = measureSeries(P, EC, nullptr);
      LearnedStrategyProvider Provider(Set);
      Series Learned = measureSeries(P, EC, &Provider);
      Values.push_back(relativePerformance(Baseline, Learned).Value);
    }
    Table.addRow({TablePrinter::fmt(C, 1), TablePrinter::fmt(Ms, 1),
                  std::to_string(Report.Iterations),
                  TablePrinter::fmt(Report.TrainAccuracy, 3),
                  TablePrinter::fmt(geometricMean(Values), 3)});
  }
  std::printf("== Ablation: misclassification cost C (paper: C = 10) ==\n%s",
              Table.render().c_str());
  return 0;
}
