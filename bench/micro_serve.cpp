//===- bench/micro_serve.cpp ----------------------------------------------===//
//
// Gates for the multi-client serving daemon (src/serve), at 8 concurrent
// clients over real Unix-domain sockets:
//
//   1. Correctness: every client's modifier stream through the daemon is
//      bit-identical to the same stream served by a private single-client
//      serveModel loop (the paper's one-pipe deployment).
//   2. Throughput: the daemon's cross-client micro-batching must beat the
//      serial-loop baseline — 8 threads sharing one mutex-serialized
//      client in front of one blocking serveModel loop — by >= 1.5x.
//   3. Shed correctness: under a deliberately tiny admission bound, shed
//      requests surface as client fallbacks, NEVER as wrong bits, and
//      client-side fallbacks equal the daemon's shed count exactly.
//
// Emits BENCH_serve.json (throughput, p99 latency, cache hit rate, shed
// count) next to the binary. Exit status is the conjunction of the gates.
//
//===----------------------------------------------------------------------===//

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "bridge/Transports.h"
#include "serve/Server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace jitml;

namespace {

constexpr unsigned NumClients = 8;
constexpr unsigned PerClientCorrect = 200;
constexpr unsigned PerClientThroughput = 400;
constexpr unsigned PerClientShed = 100;

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t nowUs() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string socketPath(const char *Tag) {
  return "/tmp/jitml-serve-bench-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

/// Identity scaling + a realistically-sized multi-class model per learned
/// level: the paper's label space spans hundreds of distinct modifier
/// combinations, so prediction cost is a real p x L weight-matrix walk —
/// exactly what the daemon's shared cache skips on repeats and its dense
/// predictBatch kernels amortize across clients. Weights are a
/// deterministic pseudo-random pattern; answers only need to be
/// self-consistent between the daemon and the private baseline.
constexpr unsigned BenchClasses = 512;

ModelSet benchModelSet() {
  std::string ScalingText;
  for (unsigned I = 0; I < NumFeatures; ++I)
    ScalingText += std::to_string(I) + " 0 1\n";
  ModelSet Set;
  for (unsigned L = 0; L < 3; ++L) {
    LevelModel &LM = Set.Levels[L];
    Scaling::fromText(ScalingText, LM.Scale);
    for (unsigned C = 0; C < BenchClasses; ++C)
      LM.Labels.labelFor(1000 + 1000 * L + C);
    LM.Model = LinearModel(BenchClasses, NumFeatures);
    for (unsigned C = 0; C < BenchClasses; ++C)
      for (unsigned F = 0; F < NumFeatures; ++F)
        LM.Model.weight(C, F) =
            (double)((C * 31 + F * 17 + L * 7) % 101) / 101.0;
    LM.Valid = true;
  }
  return Set;
}

/// The request stream of client \p Tag: (level, features) with shapes that
/// repeat every 150 requests, so the daemon's shared cache sees hits.
/// Tag is mixed into the features, which makes every client's stream
/// distinct — the correctness phase uses that to prove per-connection
/// reply routing. The throughput phase passes Tag 0 for every client
/// instead: a fleet of VMs running the same workload compiles the same
/// hot methods, which is exactly the redundancy the daemon's shared cache
/// and in-batch coalescing exist to exploit.
void requestAt(unsigned Tag, unsigned I, OptLevel &Level, FeatureVector &F) {
  unsigned Shape = I % 150;
  Level = (OptLevel)(Shape % 3);
  F = FeatureVector();
  F.set(0, (Tag + Shape) % 2 ? 4 + Shape : 1);
  F.set(1, (Tag + Shape) % 2 ? 1 : 4 + Shape);
  F.set(2, 1 + Tag);
  F.set(3, Shape);
}

/// serveModel backend answering through the registry's scalar chain — the
/// private baseline the daemon must match bit for bit.
class RegistryBackend : public ModelBackend {
public:
  explicit RegistryBackend(ModelRegistry &R) : R(R) {}
  std::optional<uint64_t>
  predictModifier(OptLevel Level, const std::vector<double> &Raw) override {
    std::shared_ptr<const ServeModel> M = R.snapshot();
    if (!M || Raw.size() != NumFeatures)
      return std::nullopt;
    FeatureVector FV;
    for (unsigned I = 0; I < NumFeatures; ++I)
      FV.set(I, (uint32_t)Raw[I]);
    return M->predict(Level, FV);
  }

private:
  ModelRegistry &R;
};

ResilientModelClient::Config clientConfig() {
  ResilientModelClient::Config C;
  C.RequestTimeoutMs = 10000;
  C.CacheCapacity = 0;        // every request hits the wire
  C.CacheErrorReplies = false; // a transient shed must not poison later
                               // identical requests
  return C;
}

std::unique_ptr<ResilientModelClient> socketClient(const std::string &Path) {
  return std::make_unique<ResilientModelClient>(
      [Path]() -> std::unique_ptr<Transport> {
        return SocketTransport::connect(Path);
      },
      clientConfig());
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_serve.json";
  std::printf("Serving daemon: %u clients, correctness + throughput + shed "
              "gates\n\n",
              NumClients);

  ModelRegistry Registry;
  Registry.install(benchModelSet());

  //==========================================================================
  // Phase 1 — correctness: daemon streams vs private serveModel streams.
  //==========================================================================
  std::vector<std::vector<std::optional<uint64_t>>> Daemon(NumClients),
      Priv(NumClients);
  uint64_t CacheHits = 0, CacheMisses = 0;
  {
    ServeConfig Cfg;
    Cfg.SocketPath = socketPath("correct");
    ModelServer Server(Registry, Cfg);
    if (!Server.start()) {
      std::fprintf(stderr, "FAIL: cannot start daemon on %s\n",
                   Cfg.SocketPath.c_str());
      return 1;
    }
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumClients; ++T)
      Threads.emplace_back([&, T] {
        auto Client = socketClient(Cfg.SocketPath);
        OptLevel Level;
        FeatureVector F;
        for (unsigned I = 0; I < PerClientCorrect; ++I) {
          requestAt(T, I, Level, F);
          Daemon[T].push_back(Client->requestModifier(Level, F));
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
    ModelServer::Stats S = Server.stats();
    PredictionCache::Stats CS = Server.cache().stats();
    CacheHits = CS.Hits;
    CacheMisses = CS.Misses;
    Server.stop();
    if (S.Shed != 0) {
      // Ample MaxInflight: the identity gate must be unconditional.
      std::fprintf(stderr, "FAIL: unexpected sheds in correctness phase\n");
      return 1;
    }
  }
  for (unsigned T = 0; T < NumClients; ++T) {
    auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
    RegistryBackend Backend(Registry);
    InProcessPipe *Raw = ServerEnd.release();
    std::thread Server([&, Raw] {
      serveModel(*Raw, Backend);
      delete Raw;
    });
    ResilientModelClient Client(std::move(ClientEnd), clientConfig());
    OptLevel Level;
    FeatureVector F;
    for (unsigned I = 0; I < PerClientCorrect; ++I) {
      requestAt(T, I, Level, F);
      Priv[T].push_back(Client.requestModifier(Level, F));
    }
    Client.bye();
    Server.join();
  }
  unsigned MismatchedClients = 0;
  for (unsigned T = 0; T < NumClients; ++T)
    if (Daemon[T] != Priv[T])
      ++MismatchedClients;
  bool CorrectnessOk = MismatchedClients == 0;
  double CacheHitRate =
      CacheHits + CacheMisses
          ? (double)CacheHits / (double)(CacheHits + CacheMisses)
          : 0.0;
  std::printf("correctness: %u/%u client streams bit-identical to the "
              "private server (cache hit rate %.2f)\n",
              NumClients - MismatchedClients, NumClients, CacheHitRate);

  //==========================================================================
  // Phase 2 — throughput: daemon vs the serial-loop baseline. One core and
  // nine runnable threads make single runs scheduling-noisy, so each side
  // reports the median of three repetitions.
  //==========================================================================
  constexpr unsigned Reps = 3;
  auto median3 = [](std::vector<double> V) {
    std::sort(V.begin(), V.end());
    return V[V.size() / 2];
  };

  std::vector<double> SerialRuns;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    std::string Path = socketPath(("serial" + std::to_string(Rep)).c_str());
    auto Listener = SocketListener::listen(Path);
    if (!Listener) {
      std::fprintf(stderr, "FAIL: cannot listen on %s\n", Path.c_str());
      return 1;
    }
    RegistryBackend Backend(Registry);
    SocketListener *L = Listener.get();
    std::thread Server([L, &Backend] {
      std::unique_ptr<SocketTransport> Conn = L->accept();
      if (Conn)
        serveModel(*Conn, Backend);
    });
    // The paper's deployment shape: ONE connection, one blocking
    // request/reply loop; concurrent compilations serialize on the
    // client's mutex.
    auto Shared = socketClient(Path);
    double Start = nowSeconds();
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumClients; ++T)
      Threads.emplace_back([&] {
        OptLevel Level;
        FeatureVector F;
        for (unsigned I = 0; I < PerClientThroughput; ++I) {
          requestAt(0, I, Level, F); // fleet workload: shared hot methods
          (void)Shared->requestModifier(Level, F);
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
    double Wall = nowSeconds() - Start;
    SerialRuns.push_back((double)(NumClients * PerClientThroughput) / Wall);
    Shared->bye();
    Server.join();
  }
  double SerialRps = median3(SerialRuns);
  std::printf("serial loop:  %9.0f requests/s (%u threads, one connection; "
              "median of %u)\n",
              SerialRps, NumClients, Reps);

  double DaemonRps = 0.0, P99Us = 0.0, MeanUs = 0.0, BatchFill = 0.0;
  {
    MetricRegistry &MR = MetricRegistry::global();
    uint64_t Batches0 = MR.counter("serve.batches").value();
    uint64_t Entries0 = MR.counter("serve.batch_entries").value();
    uint64_t Coalesced0 = MR.counter("serve.coalesced").value();
    uint64_t InlineHits = 0;
    std::vector<double> DaemonRuns;
    std::vector<uint64_t> All; // latencies pooled across repetitions
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      ServeConfig Cfg;
      Cfg.SocketPath = socketPath(("tput" + std::to_string(Rep)).c_str());
      ModelServer Server(Registry, Cfg);
      if (!Server.start()) {
        std::fprintf(stderr, "FAIL: cannot start daemon\n");
        return 1;
      }
      std::vector<std::vector<uint64_t>> LatUs(NumClients);
      double Start = nowSeconds();
      std::vector<std::thread> Threads;
      for (unsigned T = 0; T < NumClients; ++T)
        Threads.emplace_back([&, T] {
          auto Client = socketClient(Cfg.SocketPath);
          OptLevel Level;
          FeatureVector F;
          LatUs[T].reserve(PerClientThroughput);
          for (unsigned I = 0; I < PerClientThroughput; ++I) {
            requestAt(0, I, Level, F); // fleet workload: shared hot methods
            uint64_t T0 = nowUs();
            (void)Client->requestModifier(Level, F);
            LatUs[T].push_back(nowUs() - T0);
          }
        });
      for (std::thread &Th : Threads)
        Th.join();
      double Wall = nowSeconds() - Start;
      DaemonRuns.push_back((double)(NumClients * PerClientThroughput) / Wall);
      InlineHits += Server.cache().stats().Hits;
      Server.stop();
      for (auto &V : LatUs)
        All.insert(All.end(), V.begin(), V.end());
    }
    DaemonRps = median3(DaemonRuns);

    std::sort(All.begin(), All.end());
    uint64_t Sum = 0;
    for (uint64_t V : All)
      Sum += V;
    MeanUs = All.empty() ? 0.0 : (double)Sum / (double)All.size();
    P99Us = All.empty() ? 0.0 : (double)All[All.size() * 99 / 100];
    uint64_t Batches = MR.counter("serve.batches").value() - Batches0;
    uint64_t Entries = MR.counter("serve.batch_entries").value() - Entries0;
    uint64_t Coalesced = MR.counter("serve.coalesced").value() - Coalesced0;
    BatchFill = Batches ? (double)Entries / (double)Batches : 0.0;
    std::printf("daemon:       %9.0f requests/s (%u connections, "
                "cross-client batching; median of %u); p99 %.0f us, "
                "mean %.1f us\n"
                "              %llu batches, mean fill %.1f entries, "
                "%llu coalesced, %llu cache hits answered inline\n",
                DaemonRps, NumClients, Reps, P99Us, MeanUs,
                (unsigned long long)Batches, BatchFill,
                (unsigned long long)Coalesced,
                (unsigned long long)InlineHits);
  }
  double Speedup = SerialRps > 0.0 ? DaemonRps / SerialRps : 0.0;
  bool SpeedupOk = Speedup >= 1.5;
  std::printf("speedup: %.2fx (gate: >= 1.5x)\n\n", Speedup);

  //==========================================================================
  // Phase 3 — shed correctness under a tiny admission bound.
  //==========================================================================
  uint64_t ShedCount = 0, ShedFallbacks = 0, ShedWrong = 0;
  bool ShedOk = false;
  {
    ServeConfig Cfg;
    Cfg.SocketPath = socketPath("shed");
    Cfg.MaxInflight = 1; // 8 racing clients: constant overload
    Cfg.CacheCapacity = 0;
    ModelServer Server(Registry, Cfg);
    if (!Server.start()) {
      std::fprintf(stderr, "FAIL: cannot start daemon\n");
      return 1;
    }
    std::shared_ptr<const ServeModel> M = Registry.snapshot();
    std::atomic<uint64_t> Fallbacks{0}, Wrong{0};
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumClients; ++T)
      Threads.emplace_back([&, T] {
        auto Client = socketClient(Cfg.SocketPath);
        OptLevel Level;
        FeatureVector F;
        for (unsigned I = 0; I < PerClientShed; ++I) {
          requestAt(T, I, Level, F);
          std::optional<uint64_t> Got = Client->requestModifier(Level, F);
          if (!Got)
            ++Fallbacks; // a shed degrades; it never lies
          else if (*Got != *M->predict(Level, F))
            ++Wrong;
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
    ModelServer::Stats S = Server.stats();
    Server.stop();
    ShedCount = S.Shed;
    ShedFallbacks = Fallbacks.load();
    ShedWrong = Wrong.load();
    // Covered levels + generous deadline: a fallback can ONLY be a shed,
    // so the two counts must agree exactly — and nothing may be wrong.
    ShedOk = ShedWrong == 0 && ShedFallbacks == ShedCount;
    std::printf("shed run: %llu sheds, %llu client fallbacks, %llu wrong "
                "bits (gate: fallbacks == sheds, wrong == 0)\n",
                (unsigned long long)ShedCount,
                (unsigned long long)ShedFallbacks,
                (unsigned long long)ShedWrong);
  }

  bool AllOk = CorrectnessOk && SpeedupOk && ShedOk;
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"clients\": %u,\n"
                 "  \"daemon_rps\": %.1f,\n"
                 "  \"serial_rps\": %.1f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"p99_us\": %.1f,\n"
                 "  \"mean_us\": %.2f,\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"shed_count\": %llu,\n"
                 "  \"shed_fallbacks\": %llu,\n"
                 "  \"shed_wrong_bits\": %llu,\n"
                 "  \"gate_bit_identical\": %s,\n"
                 "  \"gate_speedup_1_5x\": %s,\n"
                 "  \"gate_shed_correct\": %s\n"
                 "}\n",
                 NumClients, DaemonRps, SerialRps, Speedup, P99Us, MeanUs,
                 CacheHitRate, (unsigned long long)ShedCount,
                 (unsigned long long)ShedFallbacks,
                 (unsigned long long)ShedWrong,
                 CorrectnessOk ? "true" : "false",
                 SpeedupOk ? "true" : "false", ShedOk ? "true" : "false");
    std::fclose(F);
    std::printf("\nwrote %s\n", JsonPath);
  }

  if (!AllOk) {
    std::fprintf(stderr, "FAIL: serve gates (identical=%d speedup=%d "
                 "shed=%d)\n",
                 CorrectnessOk, SpeedupOk, ShedOk);
    return 1;
  }
  std::printf("PASS: bit-identical streams, %.2fx over the serial loop, "
              "sheds degrade cleanly\n",
              Speedup);
  return 0;
}
