//===- bench/table_features.cpp -------------------------------------------===//
//
// Tables 1-3: the feature inventory. Prints the 19 scalar features
// (4 counters + 15 binary attributes), the 14 type distributions and the
// 38 operation distributions — 71 features total — together with a sample
// extraction from a real workload method so the counters can be seen live.
//
//===----------------------------------------------------------------------===//

#include "features/FeatureExtractor.h"
#include "il/ILGenerator.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace jitml;

int main() {
  std::printf("== Tables 1-3: the %u method features ==\n", NumFeatures);
  TablePrinter Table;
  Table.setHeader({"index", "group", "feature"});
  for (unsigned I = 0; I < NumFeatures; ++I)
    Table.addRow({std::to_string(I), featureGroup(I), featureName(I)});
  std::fputs(Table.render().c_str(), stdout);

  // Live extraction on a representative method of each archetype.
  Program P = buildWorkload(workloadByCode("h2"));
  std::printf("\nSample extraction (benchmark h2):\n");
  for (uint32_t M = 0; M < P.numMethods(); ++M) {
    const std::string &Name = P.methodAt(M).Name;
    if (Name.find("Kernel") == std::string::npos && Name != "main")
      continue;
    auto IL = generateIL(P, M);
    FeatureVector F = extractFeatures(*IL);
    std::printf("  %-40s treeNodes=%-4u loops=%d alloc=%d fp=%d bcd=%u "
                "sync=%u calls=%u\n",
                P.signatureOf(M).c_str(), F.counter(CF_TreeNodes),
                F.attr(AF_MayHaveLoops) ? 1 : 0,
                F.attr(AF_AllocatesDynamicMemory) ? 1 : 0,
                F.attr(AF_UsesFloatingPoint) ? 1 : 0,
                F.typeCount(DataType::PackedDecimal),
                F.opCount(OF_Synchronization), F.opCount(OF_Call));
  }
  return 0;
}
