//===- bench/micro_pipeline.cpp -------------------------------------------===//
//
// Wall-clock of the learn-and-measure cycle, sequential (JITML_JOBS=1)
// versus parallel (JITML_JOBS=N): the per-(benchmark, strategy) collection
// runs, the five leave-one-out trainings, and a scaled-down figure
// measurement. Every stage must produce bit-identical artifacts at both
// job counts — the fan-out buys wall-clock only, never different numbers.
// Also reports the trainer's throughput (subproblem solves/second) with
// and without the shrinking heuristic.
//
// Emits BENCH_pipeline.json next to the binary so the perf trajectory of
// the pipeline is tracked run over run.
//
//===----------------------------------------------------------------------===//

#include "harness/FigureReport.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace jitml;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

CollectConfig benchCollectConfig() {
  CollectConfig CC;
  CC.Iterations = 16; // scaled so the sequential leg stays in seconds
  CC.ModifiersPerLevel = 32;
  CC.UsesPerModifier = 2;
  CC.MaxRecompilesPerMethod = 60;
  return CC;
}

struct CycleResult {
  double CollectSeconds = 0.0;
  double TrainSeconds = 0.0;
  double MeasureSeconds = 0.0;
  std::vector<IntermediateDataSet> PerBenchmark;
  std::vector<ModelSet> Sets;
  FigureData Figure;

  double total() const {
    return CollectSeconds + TrainSeconds + MeasureSeconds;
  }
};

/// One full collect -> train -> measure cycle at the current JITML_JOBS.
CycleResult runCycle(unsigned Runs) {
  CycleResult R;
  CollectConfig CC = benchCollectConfig();

  auto T0 = std::chrono::steady_clock::now();
  const std::vector<WorkloadSpec> &Training = trainingBenchmarks();
  R.PerBenchmark.resize(Training.size());
  static constexpr SearchStrategy Strategies[2] = {
      SearchStrategy::Randomized, SearchStrategy::Progressive};
  std::vector<IntermediateDataSet> Parts(Training.size() * 2);
  parallelFor(Parts.size(), [&](size_t Task) {
    Parts[Task] = collectWithStrategy(Training[Task / 2], CC,
                                      Strategies[Task % 2]);
  });
  for (size_t B = 0; B < Training.size(); ++B) {
    R.PerBenchmark[B] = std::move(Parts[B * 2]);
    R.PerBenchmark[B].append(Parts[B * 2 + 1]);
  }
  R.CollectSeconds = secondsSince(T0);

  T0 = std::chrono::steady_clock::now();
  R.Sets = trainLeaveOneOut(R.PerBenchmark, TrainConfig());
  R.TrainSeconds = secondsSince(T0);

  T0 = std::chrono::steady_clock::now();
  ModelStore::Artifacts Artifacts;
  Artifacts.PerBenchmark = std::move(R.PerBenchmark);
  Artifacts.Sets = std::move(R.Sets);
  FigureRequest Request;
  Request.Title = "micro_pipeline";
  Request.Metric = FigureMetric::StartupPerformance;
  Request.BenchSuite = Suite::SpecJvm98;
  Request.Iterations = 1;
  Request.Runs = Runs;
  R.Figure = runFigure(Request, Artifacts);
  R.MeasureSeconds = secondsSince(T0);
  R.PerBenchmark = std::move(Artifacts.PerBenchmark);
  R.Sets = std::move(Artifacts.Sets);
  return R;
}

bool sameRecords(const std::vector<IntermediateDataSet> &A,
                 const std::vector<IntermediateDataSet> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t S = 0; S < A.size(); ++S) {
    if (A[S].size() != B[S].size())
      return false;
    for (size_t I = 0; I < A[S].Records.size(); ++I) {
      const TaggedRecord &X = A[S].Records[I];
      const TaggedRecord &Y = B[S].Records[I];
      if (X.SourceTag != Y.SourceTag || X.Signature != Y.Signature ||
          X.Record.ModifierBits != Y.Record.ModifierBits ||
          X.Record.Level != Y.Record.Level ||
          X.Record.RunCycles != Y.Record.RunCycles ||
          X.Record.CompileCycles != Y.Record.CompileCycles ||
          !(X.Record.Features == Y.Record.Features))
        return false;
    }
  }
  return true;
}

bool sameModels(const std::vector<ModelSet> &A,
                const std::vector<ModelSet> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t S = 0; S < A.size(); ++S)
    for (unsigned L = 0; L < NumOptLevels; ++L) {
      const LevelModel &X = A[S].Levels[L];
      const LevelModel &Y = B[S].Levels[L];
      if (X.Valid != Y.Valid)
        return false;
      if (X.Valid && X.Model.toText() != Y.Model.toText())
        return false;
    }
  return true;
}

bool sameFigure(const FigureData &A, const FigureData &B) {
  if (A.Rows.size() != B.Rows.size() ||
      A.ModelGeoMean != B.ModelGeoMean)
    return false;
  for (size_t R = 0; R < A.Rows.size(); ++R) {
    const FigureData::Row &X = A.Rows[R];
    const FigureData::Row &Y = B.Rows[R];
    if (X.Benchmark != Y.Benchmark || X.LeaveOneOut != Y.LeaveOneOut ||
        X.PerModel.size() != Y.PerModel.size())
      return false;
    for (size_t M = 0; M < X.PerModel.size(); ++M)
      if (X.PerModel[M].Value != Y.PerModel[M].Value ||
          X.PerModel[M].Ci != Y.PerModel[M].Ci)
        return false;
  }
  return true;
}

/// Trainer throughput on the largest level-0 training problem.
struct TrainerBench {
  double SeedSolverSeconds = 0.0;
  double ShrinkSolverSeconds = 0.0;
  uint64_t SeedSolves = 0;
  uint64_t ShrinkSolves = 0;
  double SeedAccuracy = 0.0;
  double ShrinkAccuracy = 0.0;
};

TrainerBench benchTrainer(const std::vector<IntermediateDataSet> &Per) {
  TrainerBench TB;
  IntermediateDataSet Merged = mergeAll(Per);
  TrainConfig TC;
  std::vector<RankedInstance> Ranked =
      rankRecords(Merged, OptLevel::Cold, TC.Selection, TC.Triggers);
  if (Ranked.size() < 8)
    return TB;
  Scaling Scale = Scaling::fit(Ranked);
  LabelMap Labels;
  std::vector<NormalizedInstance> Instances =
      normalizeInstances(Ranked, Scale, Labels);

  TrainOptions Reference = TC.Svm;
  Reference.Shrinking = false;
  TrainOptions Shrinking = TC.Svm;
  Shrinking.Shrinking = true;

  TrainReport Report;
  auto T0 = std::chrono::steady_clock::now();
  LinearModel Seed = trainCrammerSinger(Instances, Reference, &Report);
  TB.SeedSolverSeconds = secondsSince(T0);
  TB.SeedSolves = Report.SubproblemSolves;
  TB.SeedAccuracy = Report.TrainAccuracy;

  T0 = std::chrono::steady_clock::now();
  LinearModel Fast = trainCrammerSinger(Instances, Shrinking, &Report);
  TB.ShrinkSolverSeconds = secondsSince(T0);
  TB.ShrinkSolves = Report.SubproblemSolves;
  TB.ShrinkAccuracy = Report.TrainAccuracy;
  return TB;
}

void setJobs(unsigned Jobs) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%u", Jobs);
  ::setenv("JITML_JOBS", Buf, 1);
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  unsigned Runs = configuredRuns(8);
  unsigned HW = std::thread::hardware_concurrency();
  const char *PrevJobs = std::getenv("JITML_JOBS");
  unsigned ParJobs = PrevJobs && *PrevJobs ? configuredJobs()
                                           : (HW >= 4 ? 4 : (HW ? HW : 1));

  std::printf("Learning-pipeline wall clock: sequential vs parallel "
              "(%u hardware threads, parallel leg uses %u jobs, %u runs "
              "per figure cell)\n\n",
              HW, ParJobs, Runs);

  setJobs(1);
  auto T0 = std::chrono::steady_clock::now();
  CycleResult Seq = runCycle(Runs);
  double SeqTotal = secondsSince(T0);

  setJobs(ParJobs);
  T0 = std::chrono::steady_clock::now();
  CycleResult Par = runCycle(Runs);
  double ParTotal = secondsSince(T0);

  bool RecordsOk = sameRecords(Seq.PerBenchmark, Par.PerBenchmark);
  bool ModelsOk = sameModels(Seq.Sets, Par.Sets);
  bool FigureOk = sameFigure(Seq.Figure, Par.Figure);

  TrainerBench TB = benchTrainer(Seq.PerBenchmark);
  ::unsetenv("JITML_JOBS");
  if (PrevJobs)
    ::setenv("JITML_JOBS", PrevJobs, 1);

  auto Row = [](const char *Stage, double S, double P) {
    std::printf("%-12s %12.3fs %12.3fs %10.2fx\n", Stage, S, P,
                P > 0.0 ? S / P : 0.0);
  };
  std::printf("%-12s %13s %13s %11s\n", "stage", "JITML_JOBS=1",
              "parallel", "speedup");
  Row("collect", Seq.CollectSeconds, Par.CollectSeconds);
  Row("train", Seq.TrainSeconds, Par.TrainSeconds);
  Row("measure", Seq.MeasureSeconds, Par.MeasureSeconds);
  Row("cycle", SeqTotal, ParTotal);

  double SeedRate = TB.SeedSolverSeconds > 0.0
                        ? (double)TB.SeedSolves / TB.SeedSolverSeconds
                        : 0.0;
  double ShrinkRate = TB.ShrinkSolverSeconds > 0.0
                          ? (double)TB.ShrinkSolves / TB.ShrinkSolverSeconds
                          : 0.0;
  std::printf("\ntrainer (cold-level problem): reference %.0f solves/s "
              "(acc %.3f), shrinking %.0f solves/s over %.1f%% of the "
              "solves (acc %.3f), wall %.3fs -> %.3fs\n",
              SeedRate, TB.SeedAccuracy, ShrinkRate,
              TB.SeedSolves
                  ? 100.0 * (double)TB.ShrinkSolves / (double)TB.SeedSolves
                  : 0.0,
              TB.ShrinkAccuracy, TB.SeedSolverSeconds,
              TB.ShrinkSolverSeconds);
  std::printf("determinism: records %s, models %s, figure %s\n",
              RecordsOk ? "identical" : "MISMATCH",
              ModelsOk ? "identical" : "MISMATCH",
              FigureOk ? "identical" : "MISMATCH");

  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(
        F,
        "{\n"
        "  \"hardware_threads\": %u,\n"
        "  \"parallel_jobs\": %u,\n"
        "  \"figure_runs\": %u,\n"
        "  \"sequential\": {\"collect_s\": %.6f, \"train_s\": %.6f, "
        "\"measure_s\": %.6f, \"total_s\": %.6f},\n"
        "  \"parallel\": {\"collect_s\": %.6f, \"train_s\": %.6f, "
        "\"measure_s\": %.6f, \"total_s\": %.6f},\n"
        "  \"speedup\": %.4f,\n"
        "  \"trainer\": {\"reference_solves_per_s\": %.1f, "
        "\"shrinking_solves_per_s\": %.1f, \"reference_accuracy\": %.4f, "
        "\"shrinking_accuracy\": %.4f, \"solve_ratio\": %.4f},\n"
        "  \"bit_identical\": {\"records\": %s, \"models\": %s, "
        "\"figure\": %s}\n"
        "}\n",
        HW, ParJobs, Runs, Seq.CollectSeconds, Seq.TrainSeconds,
        Seq.MeasureSeconds, SeqTotal, Par.CollectSeconds, Par.TrainSeconds,
        Par.MeasureSeconds, ParTotal, ParTotal > 0.0 ? SeqTotal / ParTotal : 0.0,
        SeedRate, ShrinkRate, TB.SeedAccuracy, TB.ShrinkAccuracy,
        TB.SeedSolves ? (double)TB.ShrinkSolves / (double)TB.SeedSolves : 0.0,
        RecordsOk ? "true" : "false", ModelsOk ? "true" : "false",
        FigureOk ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", JsonPath);
  }

  if (!RecordsOk || !ModelsOk || !FigureOk) {
    std::fprintf(stderr,
                 "parallel pipeline diverged from the sequential one\n");
    return 1;
  }
  // The >= 3x wall-clock criterion only binds where the cores exist.
  if (HW >= 4 && ParTotal > 0.0 && SeqTotal / ParTotal < 3.0) {
    std::fprintf(stderr,
                 "expected >= 3x speedup at %u jobs on %u hardware "
                 "threads, got %.2fx\n",
                 ParJobs, HW, SeqTotal / ParTotal);
    return 1;
  }
  return 0;
}
