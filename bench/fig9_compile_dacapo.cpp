//===- bench/fig9_compile_dacapo.cpp --------------------------------------===//
//
// Figure 9: DaCapo start-up compilation time. Expected shape: significant
// reductions, correlated with the Figure 8 performance gains ("a
// correlation between the performance improvements and the
// compilation-time reductions ... suggests that the learned models are
// disabling unproductive transformations").
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 9: DaCapo start-up compilation time (1 iteration)",
      jitml::FigureMetric::CompileTime, jitml::Suite::DaCapo,
      /*Iterations=*/1, /*DefaultRuns=*/30);
}
