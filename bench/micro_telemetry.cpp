//===- bench/micro_telemetry.cpp ------------------------------------------===//
//
// Overhead gate for the unified observability layer. Telemetry must be
// near-free when tracing is off: the hot paths are one relaxed fetch_add
// per counter bump, a handful per histogram record, and a single relaxed
// load for the trace-enabled check. This benchmark
//
//   1. measures those primitive costs directly (ns/op),
//   2. runs the Figure 6 startup workload (async mode) and counts how
//      many registry events it generates, and
//   3. gates on (events x per-event cost) / workload wall time < 2%,
//      i.e. the instrumentation the workload actually executes must cost
//      under 2% of the workload's own wall clock.
//
// It also re-runs the workload with tracing enabled into a null sink and
// verifies the simulated-cycle statistics are bit-identical: telemetry
// reads the wall clock but never feeds it back into simulated time.
//
// Emits BENCH_telemetry.json next to the binary.
//
//===----------------------------------------------------------------------===//

#include "runtime/VirtualMachine.h"
#include "support/Telemetry.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace jitml;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per operation of \p Fn run \p Iters times (best of 3 reps).
template <typename FnT> double nsPerOp(size_t Iters, FnT &&Fn) {
  double Best = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    double Start = nowSeconds();
    for (size_t I = 0; I < Iters; ++I)
      Fn(I);
    double Elapsed = nowSeconds() - Start;
    Best = std::min(Best, Elapsed * 1e9 / (double)Iters);
  }
  return Best;
}

/// Total event count across the global registry: every counter bump and
/// histogram record the process has performed. Gauges are excluded (set()
/// overwrites, so their value is not an event count).
uint64_t registryEventTotal() {
  uint64_t Total = 0;
  for (const MetricSample &M : MetricRegistry::global().snapshot()) {
    const std::string &N = M.Name;
    bool HistRow = N.size() > 6 && N.compare(N.size() - 6, 6, ".count") == 0;
    bool HistDetail =
        (N.size() > 8 && N.compare(N.size() - 8, 8, ".mean_us") == 0) ||
        (N.size() > 7 && (N.compare(N.size() - 7, 7, ".p95_us") == 0 ||
                          N.compare(N.size() - 7, 7, ".max_us") == 0));
    if (HistDetail)
      continue; // derived rows, not events
    if (N == "pool.workers")
      continue; // gauge
    (void)HistRow; // histogram .count rows and plain counters both count
    Total += M.Value;
  }
  return Total;
}

struct SuiteResult {
  double WallSeconds = 0.0;
  int64_t Checksum = 0;
  double StallCycles = 0.0;
  double WallCycles = 0.0;
};

/// One pass over the Figure 6 suite. Async mode exercises the most
/// instrumented subsystems (queue, pipeline, cache, VM); sync mode is
/// bit-deterministic run-to-run, so it anchors the tracing-on/off
/// comparison.
SuiteResult runFig6Suite(bool Async) {
  SuiteResult R;
  double Start = nowSeconds();
  for (const WorkloadSpec &Spec : specJvm98Suite()) {
    Program P = buildWorkload(Spec);
    VirtualMachine::Config Cfg;
    if (Async) {
      Cfg.Async.Enabled = true;
      Cfg.Async.Workers = 2;
      Cfg.Async.QueueCapacity = 64;
    }
    VirtualMachine VM(P, Cfg);
    ExecResult Res = VM.run({Value::ofI(0)});
    if (Res.Exceptional) {
      std::fprintf(stderr, "%s raised an exception\n", Spec.Code.c_str());
      continue;
    }
    R.Checksum ^= Res.Ret.I;
    VM.drainCompilations();
    R.StallCycles += VM.stats().CompileCycles;
    R.WallCycles += VM.stats().totalCycles();
  }
  R.WallSeconds = nowSeconds() - Start;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_telemetry.json";
  constexpr size_t Iters = 4 * 1000 * 1000;

  std::printf("Telemetry overhead: hot-path primitives and the Fig. 6 "
              "workload gate\n\n");

  // 1. Primitive costs.
  MetricRegistry &R = MetricRegistry::global();
  TelemetryCounter &C = R.counter("bench.counter");
  TelemetryHistogram &H = R.histogram("bench.hist");
  double CounterNs = nsPerOp(Iters, [&](size_t) { C.add(); });
  double HistNs = nsPerOp(Iters, [&](size_t I) { H.record(I & 1023); });
  TraceEmitter Disabled;
  TraceEvent Ev;
  Ev.Stage = "bench";
  double DisabledTraceNs =
      nsPerOp(Iters, [&](size_t) { Disabled.record(Ev); });
  TraceEmitter NullSink;
  NullSink.openWithSink([](const char *, size_t) { return true; });
  double EnabledTraceNs =
      nsPerOp(Iters, [&](size_t I) {
        Ev.StartUs = I;
        NullSink.record(Ev);
      });
  NullSink.close();
  std::printf("%-34s %8.2f ns/op\n", "counter add (relaxed fetch_add)",
              CounterNs);
  std::printf("%-34s %8.2f ns/op\n", "histogram record", HistNs);
  std::printf("%-34s %8.2f ns/op\n", "trace record (disabled)",
              DisabledTraceNs);
  std::printf("%-34s %8.2f ns/op\n", "trace record (enabled, null sink)",
              EnabledTraceNs);

  // 2. Workload event census. The per-event cost charged to the gate is
  // the dearest disabled-path primitive (histograms dominate counters and
  // the disabled trace check).
  C.reset();
  H.reset();
  uint64_t EventsBefore = registryEventTotal();
  SuiteResult Baseline = runFig6Suite(/*Async=*/true);
  uint64_t Events = registryEventTotal() - EventsBefore;
  double PerEventNs = std::max({CounterNs, HistNs, DisabledTraceNs});
  double OverheadFrac =
      Baseline.WallSeconds > 0.0
          ? ((double)Events * PerEventNs * 1e-9) / Baseline.WallSeconds
          : 0.0;
  std::printf("\nFig. 6 workload (async): wall %.3fs, %llu registry "
              "events, %.2f ns/event worst case\n",
              Baseline.WallSeconds, (unsigned long long)Events, PerEventNs);
  std::printf("estimated telemetry share of wall clock: %.4f%% "
              "(gate: <2%%)\n",
              100.0 * OverheadFrac);

  // 3. Determinism: tracing on must not change any simulated statistic.
  // Sync mode is the bit-deterministic configuration (async install
  // timing legitimately depends on real thread scheduling).
  SuiteResult SyncOff = runFig6Suite(/*Async=*/false);
  TraceEmitter &Global = TraceEmitter::global();
  bool TraceWasEnabled = Global.enabled();
  if (!TraceWasEnabled)
    Global.openWithSink([](const char *, size_t) { return true; });
  SuiteResult SyncOn = runFig6Suite(/*Async=*/false);
  if (!TraceWasEnabled)
    Global.close();
  bool ChecksumOk = SyncOn.Checksum == SyncOff.Checksum &&
                    Baseline.Checksum == SyncOff.Checksum;
  bool CyclesOk = SyncOn.StallCycles == SyncOff.StallCycles &&
                  SyncOn.WallCycles == SyncOff.WallCycles;
  std::printf("tracing on: checksum %s, simulated cycles %s\n",
              ChecksumOk ? "identical" : "MISMATCH",
              CyclesOk ? "bit-identical" : "MISMATCH");

  bool GateOk = OverheadFrac < 0.02;
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"counter_add_ns\": %.3f,\n"
                 "  \"histogram_record_ns\": %.3f,\n"
                 "  \"trace_disabled_ns\": %.3f,\n"
                 "  \"trace_enabled_null_sink_ns\": %.3f,\n"
                 "  \"fig6_wall_s\": %.6f,\n"
                 "  \"fig6_registry_events\": %llu,\n"
                 "  \"overhead_fraction\": %.8f,\n"
                 "  \"overhead_gate_2pct\": %s,\n"
                 "  \"trace_checksum_identical\": %s,\n"
                 "  \"trace_cycles_identical\": %s\n"
                 "}\n",
                 CounterNs, HistNs, DisabledTraceNs, EnabledTraceNs,
                 Baseline.WallSeconds, (unsigned long long)Events,
                 OverheadFrac, GateOk ? "true" : "false",
                 ChecksumOk ? "true" : "false", CyclesOk ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }

  if (!GateOk) {
    std::fprintf(stderr,
                 "telemetry overhead gate FAILED: %.4f%% >= 2%%\n",
                 100.0 * OverheadFrac);
    return 1;
  }
  if (!ChecksumOk || !CyclesOk) {
    std::fprintf(stderr, "tracing changed workload results\n");
    return 1;
  }
  return 0;
}
