//===- bench/fig13_compile_tp_dacapo.cpp ----------------------------------===//
//
// Figure 13: relative compilation time for DaCapo under throughput runs.
//
//===----------------------------------------------------------------------===//

#include "FigureMain.h"

int main() {
  return jitml::runFigureBench(
      "Figure 13: DaCapo relative compilation time (10 iterations)",
      jitml::FigureMetric::CompileTime, jitml::Suite::DaCapo,
      /*Iterations=*/10, /*DefaultRuns=*/12);
}
