//===- examples/learned_pipeline.cpp --------------------------------------===//
//
// The complete Figure 5 pipeline, end to end, with the model behind the
// named-pipe bridge — the paper's actual deployment architecture:
//
//   1. collect training data on four SPECjvm98 benchmarks (strategy
//      control + instrumentation + binary archives),
//   2. rank (Eq. 2), normalize (Eq. 3) and train three linear SVMs
//      (cold/warm/hot) with C = 10,
//   3. start a model *server* on the other end of a pair of POSIX named
//      pipes and run the held-out benchmark with the learning-enabled
//      compiler asking the server for a modifier at every compilation —
//      through the hardened ResilientModelClient (deadline, retry,
//      prediction cache, fallback),
//   4. compare start-up wall time and compile time against the baseline,
//      print the bridge counters, then stop the model service and show
//      that compilation still completes via fallback.
//
//   $ ./build/examples/learned_pipeline
//
//===----------------------------------------------------------------------===//

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "harness/Experiment.h"
#include "jitml/Training.h"

#include <cstdio>
#include <thread>
#include <unistd.h>

using namespace jitml;

int main() {
  // 1. Collect on four of the five training benchmarks (hold out "co").
  CollectConfig CC;
  CC.Iterations = 20; // quick demo scale
  std::vector<IntermediateDataSet> Sets;
  for (const WorkloadSpec &Spec : trainingBenchmarks()) {
    if (Spec.Code == "co")
      continue;
    std::printf("[collect] %s ...\n", Spec.Name.c_str());
    std::fflush(stdout);
    Sets.push_back(collectFromWorkload(Spec, CC));
    std::printf("[collect] %s: %zu records\n", Spec.Name.c_str(),
                Sets.back().size());
  }

  // 2. Train the model set.
  TrainConfig TC;
  ModelSet Models = trainModelSet(mergeAll(Sets), "demo", TC);
  for (unsigned L = 0; L < NumOptLevels; ++L)
    if (Models.Levels[L].Valid)
      std::printf("[train] %s model: %u classes x %u features\n",
                  optLevelName((OptLevel)L),
                  Models.Levels[L].Model.numClasses(),
                  Models.Levels[L].Model.numFeatures());

  // 3. Serve the model over named pipes (a separate thread stands in for
  //    the separate process; the bytes really flow through two FIFOs).
  char Template[] = "/tmp/jitml_pipes_XXXXXX";
  std::string Dir = mkdtemp(Template);
  std::string ToServer = Dir + "/to_model";
  std::string ToClient = Dir + "/to_compiler";
  if (!FifoTransport::createPipes(ToServer, ToClient)) {
    std::fprintf(stderr, "mkfifo failed\n");
    return 1;
  }
  LearnedStrategyProvider Backend(Models);
  std::thread Server([&] {
    auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/true);
    if (T)
      serveModel(*T, Backend);
  });
  auto ClientTransport =
      FifoTransport::open(ToServer, ToClient, /*IsServer=*/false);
  if (!ClientTransport) {
    std::fprintf(stderr, "fifo open failed\n");
    Server.join();
    return 1;
  }
  // The hardened client: 100ms deadline per round trip, prediction cache
  // keyed by (level, feature hash), fallback to the hand-tuned plan when
  // the service cannot answer.
  ResilientModelClient Client(std::move(ClientTransport));

  // 4. Evaluate on the held-out benchmark.
  Program P = buildWorkload(workloadByCode("co"));
  auto RunStartup = [&](const char *Tag, bool Learned) {
    VirtualMachine::Config Cfg;
    VirtualMachine VM(P, Cfg);
    if (Learned)
      VM.setModifierHook(makeResilientHook(Client));
    ExecResult R = VM.run({Value::ofI(0)});
    std::printf("  %-8s checksum=%-11lld wall=%-9.0f app=%-9.0f "
                "compile=%.0f fallbackCompiles=%llu\n",
                Tag, (long long)R.Ret.I, VM.stats().totalCycles(),
                VM.stats().AppCycles, VM.stats().CompileCycles,
                (unsigned long long)VM.stats().NullModifierCompilations);
    return VM.stats();
  };
  std::printf("[evaluate] start-up run of held-out benchmark "
              "'compress':\n");
  VirtualMachine::Stats Base = RunStartup("baseline", false);
  VirtualMachine::Stats Learned = RunStartup("learned", true);
  std::printf("[evaluate] start-up speedup %.3fx, compile-time ratio "
              "%.3f (%llu bridged predictions)\n",
              Base.totalCycles() / Learned.totalCycles(),
              Learned.CompileCycles / Base.CompileCycles,
              (unsigned long long)Backend.predictions());

  // 5. Model-service overhead, as an experiment would report it.
  BridgeCounters Counters = Client.counters();
  std::printf("[bridge] counters after the learned run:\n%s",
              Counters.toText().c_str());

  // 6. Stop the model service and run again: the prediction cache keeps
  //    serving the repeated feature vectors without a live service.
  Client.bye();
  Server.join();
  std::printf("[degrade] model service stopped; rerunning (cache keeps "
              "serving repeated vectors):\n");
  RunStartup("cached", true);
  std::printf("[degrade] cache hits now %llu of %llu requests\n",
              (unsigned long long)Client.counters().CacheHits,
              (unsigned long long)Client.counters().Requests);

  // 7. A cold client against an unreachable service: every compilation
  //    falls back to the unmodified hand-tuned plan — degraded, never
  //    hung or aborted.
  ResilientModelClient Down(
      []() -> std::unique_ptr<Transport> { return nullptr; });
  {
    VirtualMachine::Config Cfg;
    VirtualMachine VM(P, Cfg);
    VM.setModifierHook(makeResilientHook(Down));
    ExecResult R = VM.run({Value::ofI(0)});
    std::printf("[degrade] unreachable service: checksum=%lld, %llu of "
                "%llu compilations used the hand-tuned fallback plan\n",
                (long long)R.Ret.I,
                (unsigned long long)VM.stats().NullModifierCompilations,
                (unsigned long long)VM.stats().Compilations);
  }
  ::unlink(ToServer.c_str());
  ::unlink(ToClient.c_str());
  ::rmdir(Dir.c_str());
  return 0;
}
