//===- examples/learned_pipeline.cpp --------------------------------------===//
//
// The complete Figure 5 pipeline, end to end, with the model behind the
// named-pipe bridge — the paper's actual deployment architecture:
//
//   1. collect training data on four SPECjvm98 benchmarks (strategy
//      control + instrumentation + binary archives),
//   2. rank (Eq. 2), normalize (Eq. 3) and train three linear SVMs
//      (cold/warm/hot) with C = 10,
//   3. start a model *server* on the other end of a pair of POSIX named
//      pipes and run the held-out benchmark with the learning-enabled
//      compiler asking the server for a modifier at every compilation,
//   4. compare start-up wall time and compile time against the baseline.
//
//   $ ./build/examples/learned_pipeline
//
//===----------------------------------------------------------------------===//

#include "bridge/ModelService.h"
#include "harness/Experiment.h"
#include "jitml/Training.h"

#include <cstdio>
#include <thread>
#include <unistd.h>

using namespace jitml;

int main() {
  // 1. Collect on four of the five training benchmarks (hold out "co").
  CollectConfig CC;
  CC.Iterations = 20; // quick demo scale
  std::vector<IntermediateDataSet> Sets;
  for (const WorkloadSpec &Spec : trainingBenchmarks()) {
    if (Spec.Code == "co")
      continue;
    std::printf("[collect] %s ...\n", Spec.Name.c_str());
    std::fflush(stdout);
    Sets.push_back(collectFromWorkload(Spec, CC));
    std::printf("[collect] %s: %zu records\n", Spec.Name.c_str(),
                Sets.back().size());
  }

  // 2. Train the model set.
  TrainConfig TC;
  ModelSet Models = trainModelSet(mergeAll(Sets), "demo", TC);
  for (unsigned L = 0; L < NumOptLevels; ++L)
    if (Models.Levels[L].Valid)
      std::printf("[train] %s model: %u classes x %u features\n",
                  optLevelName((OptLevel)L),
                  Models.Levels[L].Model.numClasses(),
                  Models.Levels[L].Model.numFeatures());

  // 3. Serve the model over named pipes (a separate thread stands in for
  //    the separate process; the bytes really flow through two FIFOs).
  char Template[] = "/tmp/jitml_pipes_XXXXXX";
  std::string Dir = mkdtemp(Template);
  std::string ToServer = Dir + "/to_model";
  std::string ToClient = Dir + "/to_compiler";
  if (!FifoTransport::createPipes(ToServer, ToClient)) {
    std::fprintf(stderr, "mkfifo failed\n");
    return 1;
  }
  LearnedStrategyProvider Backend(Models);
  std::thread Server([&] {
    auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/true);
    if (T)
      serveModel(*T, Backend);
  });
  auto ClientTransport =
      FifoTransport::open(ToServer, ToClient, /*IsServer=*/false);
  if (!ClientTransport) {
    std::fprintf(stderr, "fifo open failed\n");
    Server.join();
    return 1;
  }
  ModelClient Client(*ClientTransport);
  if (!Client.hello()) {
    std::fprintf(stderr, "model handshake failed\n");
    Server.join();
    return 1;
  }
  std::printf("[bridge] handshake complete over %s\n", Dir.c_str());

  // 4. Evaluate on the held-out benchmark.
  Program P = buildWorkload(workloadByCode("co"));
  auto RunStartup = [&](bool Learned) {
    VirtualMachine::Config Cfg;
    VirtualMachine VM(P, Cfg);
    if (Learned)
      VM.setModifierHook(makeBridgedHook(Client));
    ExecResult R = VM.run({Value::ofI(0)});
    std::printf("  %-8s checksum=%-11lld wall=%-9.0f app=%-9.0f "
                "compile=%.0f\n",
                Learned ? "learned" : "baseline", (long long)R.Ret.I,
                VM.stats().totalCycles(), VM.stats().AppCycles,
                VM.stats().CompileCycles);
    return VM.stats();
  };
  std::printf("[evaluate] start-up run of held-out benchmark "
              "'compress':\n");
  VirtualMachine::Stats Base = RunStartup(false);
  VirtualMachine::Stats Learned = RunStartup(true);
  std::printf("[evaluate] start-up speedup %.3fx, compile-time ratio "
              "%.3f (%llu bridged predictions)\n",
              Base.totalCycles() / Learned.totalCycles(),
              Learned.CompileCycles / Base.CompileCycles,
              (unsigned long long)Backend.predictions());

  Client.bye();
  Server.join();
  ::unlink(ToServer.c_str());
  ::unlink(ToClient.c_str());
  ::rmdir(Dir.c_str());
  return 0;
}
