//===- examples/adaptive_jit.cpp ------------------------------------------===//
//
// Watch the adaptive compilation control at work: run a synthetic
// SPECjvm98-style benchmark for several application iterations and log
// every compilation event (method, level, compile effort) exactly as the
// VM's profiling sees it — the "when to compile and at which level"
// behaviour the paper's Figure 1 control unit owns.
//
//   $ ./build/examples/adaptive_jit [benchmark-code] [iterations]
//
//===----------------------------------------------------------------------===//

#include "runtime/VirtualMachine.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace jitml;

namespace {

class EventLogger : public JitEventListener {
public:
  explicit EventLogger(const Program &P, VirtualMachine &VM)
      : Prog(P), VM(VM) {}

  void onMethodEnter(uint32_t, const TscSample &) override {}
  void onMethodExit(uint32_t, const TscSample &, bool) override {}
  void onCompile(const CompileEvent &E) override {
    std::printf("  [compile #%2llu] t=%-10.0f %-9s %-40s nodes=%-4u "
                "effort=%.0f cycles\n",
                (unsigned long long)++Count, VM.clock().cycles(),
                optLevelName(E.Level),
                Prog.signatureOf(E.MethodIndex).c_str(),
                E.Features.counter(CF_TreeNodes), E.CompileCycles);
    ++PerLevel[E.Level];
  }

  uint64_t Count = 0;
  std::map<OptLevel, unsigned> PerLevel;

private:
  const Program &Prog;
  VirtualMachine &VM;
};

} // namespace

int main(int Argc, char **Argv) {
  const char *Code = Argc > 1 ? Argv[1] : "mt";
  unsigned Iterations = Argc > 2 ? (unsigned)std::atoi(Argv[2]) : 6;
  const WorkloadSpec &Spec = workloadByCode(Code);
  std::printf("benchmark %s (%s suite), %u iterations\n",
              Spec.Name.c_str(),
              Spec.BenchSuite == Suite::SpecJvm98 ? "SPECjvm98" : "DaCapo",
              Iterations);

  Program P = buildWorkload(Spec);
  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  EventLogger Logger(P, VM);
  VM.setListener(&Logger);

  for (unsigned I = 0; I < Iterations; ++I) {
    double Before = VM.clock().cycles();
    ExecResult R = VM.run({Value::ofI((int64_t)I)});
    std::printf("iteration %u: checksum=%lld cycles=%.0f\n", I,
                (long long)R.Ret.I, VM.clock().cycles() - Before);
  }

  std::printf("\nsummary: %llu invocations, %llu interpreted, "
              "%llu compilations (app=%.0f cycles, compile=%.0f cycles)\n",
              (unsigned long long)VM.stats().Invocations,
              (unsigned long long)VM.stats().InterpretedInvocations,
              (unsigned long long)VM.stats().Compilations,
              VM.stats().AppCycles, VM.stats().CompileCycles);
  for (auto [Level, N] : Logger.PerLevel)
    std::printf("  %-9s x%u\n", optLevelName(Level), N);
  return 0;
}
