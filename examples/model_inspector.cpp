//===- examples/model_inspector.cpp ---------------------------------------===//
//
// Interpretability tool: what did the models actually learn?
//
// The paper infers from the compile-time/performance correlation that
// "the learned models are disabling unproductive transformations". This
// tool makes that inspectable: it trains the full leave-one-out model
// sets, replays every training-time feature vector through each level's
// model, and reports how often each of the 58 transformations ends up
// disabled — split by method classes (loopy vs loop-free, allocating vs
// not) so the *method-specific* part of the strategy is visible.
//
//   $ ./build/examples/model_inspector [fold 1-5]
//
//===----------------------------------------------------------------------===//

#include "harness/ModelStore.h"
#include "jitml/LearnedStrategy.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <set>

using namespace jitml;

namespace {

struct BitUsage {
  uint64_t Disabled = 0;
  uint64_t Total = 0;
  double rate() const {
    return Total ? (double)Disabled / (double)Total : 0.0;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned Fold = Argc > 1 ? (unsigned)std::atoi(Argv[1]) : 3;
  if (Fold < 1 || Fold > 5)
    Fold = 3;

  ModelStore::Artifacts A = ModelStore::getOrBuild(true);
  const ModelSet &Set = A.Sets[Fold - 1];
  LearnedStrategyProvider Provider(Set);
  std::printf("\ninspecting model set %s (leaves out %s)\n",
              Set.Name.c_str(), Set.LeftOutBenchmark.c_str());

  // Replay every distinct feature vector seen during collection through
  // the model of its level.
  std::map<unsigned, BitUsage> PerBit[NumOptLevels];
  std::map<unsigned, BitUsage> LoopSplit[2]; // [0]=loop-free, [1]=loopy
  uint64_t Predictions = 0;
  std::set<uint64_t> SeenVectors;
  IntermediateDataSet All = mergeAll(A.PerBenchmark);
  for (const TaggedRecord &T : All.Records) {
    if (!isLearnedLevel(T.Record.Level))
      continue;
    if (!SeenVectors.insert(T.Record.Features.hash() ^
                            ((uint64_t)T.Record.Level << 60))
             .second)
      continue;
    PlanModifier M = Provider.modifierFor(T.Record.Level, T.Record.Features);
    ++Predictions;
    bool Loopy = T.Record.Features.attr(AF_MayHaveLoops);
    for (unsigned K = 0; K < NumTransformations; ++K) {
      bool D = M.disables((TransformationKind)K);
      BitUsage &U = PerBit[(unsigned)T.Record.Level][K];
      U.Disabled += D;
      ++U.Total;
      BitUsage &S = LoopSplit[Loopy ? 1 : 0][K];
      S.Disabled += D;
      ++S.Total;
    }
  }
  std::printf("replayed %llu distinct (vector, level) pairs\n\n",
              (unsigned long long)Predictions);

  // Top disabled transformations per level.
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    if (!Set.hasModelFor((OptLevel)L))
      continue;
    std::vector<std::pair<double, unsigned>> Ranked;
    for (const auto &[K, U] : PerBit[L])
      if (U.rate() > 0.0)
        Ranked.push_back({U.rate(), K});
    std::sort(Ranked.rbegin(), Ranked.rend());
    std::printf("-- %s model: most-disabled transformations --\n",
                optLevelName((OptLevel)L));
    TablePrinter Table;
    Table.setHeader({"transformation", "disable rate"});
    for (size_t I = 0; I < Ranked.size() && I < 8; ++I)
      Table.addRow(
          {transformationName((TransformationKind)Ranked[I].second),
           TablePrinter::fmt(Ranked[I].first, 2)});
    std::fputs(Table.render().c_str(), stdout);
  }

  // Method-specific behaviour: bits whose disable rate differs most
  // between loop-free and loopy methods.
  std::printf("\n-- method-specific decisions: loop-free vs loopy --\n");
  std::vector<std::pair<double, unsigned>> Diffs;
  for (unsigned K = 0; K < NumTransformations; ++K) {
    double Flat = LoopSplit[0][K].rate();
    double Loopy = LoopSplit[1][K].rate();
    if (LoopSplit[0][K].Total && LoopSplit[1][K].Total)
      Diffs.push_back({std::abs(Flat - Loopy), K});
  }
  std::sort(Diffs.rbegin(), Diffs.rend());
  TablePrinter Table;
  Table.setHeader({"transformation", "loop-free", "loopy"});
  for (size_t I = 0; I < Diffs.size() && I < 10; ++I) {
    unsigned K = Diffs[I].second;
    Table.addRow({transformationName((TransformationKind)K),
                  TablePrinter::fmt(LoopSplit[0][K].rate(), 2),
                  TablePrinter::fmt(LoopSplit[1][K].rate(), 2)});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\n(differing rates are the method-specific strategies the "
              "paper's title promises)\n");
  return 0;
}
