//===- examples/quickstart.cpp --------------------------------------------===//
//
// Quickstart: build a tiny program with the bytecode builder, look at its
// tree IL and feature vector, compile it at every optimization level, and
// compare interpreted vs compiled execution under the simulated cycle
// model.
//
//   $ ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Disasm.h"
#include "bytecode/Verifier.h"
#include "codegen/NativeInst.h"
#include "features/FeatureExtractor.h"
#include "il/ILGenerator.h"
#include "il/ILPrinter.h"
#include "runtime/VirtualMachine.h"

#include <cstdio>

using namespace jitml;

int main() {
  // dot(n): sum of i * (i + 3) for i in [0, n) — a small counted loop.
  Program P;
  MethodBuilder MB(P, "dot", -1, MF_Static | MF_Public, {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(Acc);
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).load(0).ifCmp(BcCond::Ge, Exit);
  MB.load(Acc);
  MB.load(I).load(I).constI(DataType::Int32, 3)
      .binop(BcOp::Add, DataType::Int32)
      .binop(BcOp::Mul, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32).store(Acc);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(Acc).retValue(DataType::Int32);
  uint32_t Dot = MB.finish();
  P.setEntryMethod(Dot);

  VerifyResult VR = verifyProgram(P);
  std::printf("bytecode verification: %s\n", VR.ok() ? "ok" : "FAILED");
  std::printf("\n--- bytecode ---\n%s\n",
              disassembleMethod(P, Dot).c_str());

  // The tree IL the optimizer works on, and the 71-feature vector the
  // machine-learned model would see.
  auto IL = generateIL(P, Dot);
  std::printf("--- tree IL (pre-optimization) ---\n%s\n",
              printMethodIL(*IL).c_str());
  FeatureVector F = extractFeatures(*IL);
  std::printf("--- features (nonzero of %u) ---\n", NumFeatures);
  for (unsigned K = 0; K < NumFeatures; ++K)
    if (F.get(K))
      std::printf("  %-28s = %u\n", featureName(K), F.get(K));

  // Compile at every level and time one call of dot(1000).
  std::printf("\n--- execution: dot(1000) ---\n");
  {
    VirtualMachine::Config Cfg;
    Cfg.EnableJit = false;
    VirtualMachine VM(P, Cfg);
    double Before = VM.clock().cycles();
    ExecResult R = VM.invoke(Dot, {Value::ofI(1000)});
    std::printf("  %-10s result=%-10lld cycles=%.0f\n", "interpreted",
                (long long)R.Ret.I, VM.clock().cycles() - Before);
  }
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    VirtualMachine::Config Cfg;
    Cfg.Control.Enabled = false;
    VirtualMachine VM(P, Cfg);
    VM.compileMethod(Dot, (OptLevel)L);
    const NativeMethod *Code = VM.nativeOf(Dot);
    double Before = VM.clock().cycles();
    ExecResult R = VM.invoke(Dot, {Value::ofI(1000)});
    std::printf("  %-10s result=%-10lld cycles=%-8.0f compile=%-8.0f "
                "insts=%u\n",
                optLevelName((OptLevel)L), (long long)R.Ret.I,
                VM.clock().cycles() - Before, Code->CompileCycles,
                Code->totalInsts());
  }
  return 0;
}
