//===- examples/plan_explorer.cpp -----------------------------------------===//
//
// Explore the compilation-plan modifier space for one method, the way the
// data-collection campaign does (section 5): generate modifiers with both
// search strategies, compile the method with each, measure run and
// compile time under the cycle model, and rank the plans with Eq. 2
// (V = R/I + C/T_h). Prints the best plans found, which transformations
// they disabled, and where the null modifier (the hand-tuned plan) landed.
//
//   $ ./build/examples/plan_explorer [benchmark-code] [level 0-4] [count]
//
//===----------------------------------------------------------------------===//

#include "modifiers/StrategyControl.h"
#include "runtime/VirtualMachine.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <set>
#include <cstdio>
#include <cstdlib>

using namespace jitml;

int main(int Argc, char **Argv) {
  const char *Code = Argc > 1 ? Argv[1] : "co";
  OptLevel Level = Argc > 2 ? (OptLevel)std::atoi(Argv[2]) : OptLevel::Hot;
  unsigned Count = Argc > 3 ? (unsigned)std::atoi(Argv[3]) : 60;

  Program P = buildWorkload(workloadByCode(Code));
  // Pick the first loop kernel: the most interesting plan-space subject.
  uint32_t Method = UINT32_MAX;
  for (uint32_t M = 0; M < P.numMethods(); ++M)
    if (P.methodAt(M).Name.find("Kernel") != std::string::npos) {
      Method = M;
      break;
    }
  if (Method == UINT32_MAX) {
    std::fprintf(stderr, "no kernel method found\n");
    return 1;
  }
  std::printf("exploring %u modifiers for %s at level %s\n", Count,
              P.signatureOf(Method).c_str(), optLevelName(Level));

  // Candidate modifiers: null + half randomized + half progressive,
  // deduplicated (the progressive sequence starts at the null modifier).
  Rng R(0x5eeded);
  std::vector<PlanModifier> Candidates{PlanModifier()};
  std::set<uint64_t> Seen{PlanModifier().raw()};
  auto AddAll = [&](std::vector<PlanModifier> Mods) {
    for (PlanModifier &M : Mods)
      if (Seen.insert(M.raw()).second)
        Candidates.push_back(M);
  };
  AddAll(generateRandomizedModifiers(R, Count / 2));
  AddAll(generateProgressiveModifiers(R, Count / 2));

  struct Outcome {
    PlanModifier Mod;
    double RunPerInvocation;
    double CompileCycles;
    double V;
  };
  std::vector<Outcome> Outcomes;
  const unsigned Invocations = 6;
  const double Th = 300.0; // warm-tier trigger: amortization horizon

  for (const PlanModifier &Mod : Candidates) {
    VirtualMachine::Config Cfg;
    Cfg.Control.Enabled = false;
    VirtualMachine VM(P, Cfg);
    VM.compileWithPlan(Method, planForLevel(Level), Mod);
    double Compile = VM.nativeOf(Method)->CompileCycles;
    double Before = VM.clock().cycles();
    bool Ok = true;
    for (unsigned I = 0; I < Invocations && Ok; ++I) {
      ExecResult Res = VM.invoke(Method, {Value::ofI((int64_t)(40 + I))});
      Ok = !Res.Exceptional;
    }
    if (!Ok)
      continue;
    double Run = (VM.clock().cycles() - Before) / Invocations;
    Outcomes.push_back({Mod, Run, Compile, Run + Compile / Th});
  }

  std::sort(Outcomes.begin(), Outcomes.end(),
            [](const Outcome &A, const Outcome &B) { return A.V < B.V; });
  size_t NullRank = 0;
  for (size_t I = 0; I < Outcomes.size(); ++I)
    if (Outcomes[I].Mod.isNull())
      NullRank = I + 1;

  TablePrinter Table;
  Table.setHeader({"rank", "V (Eq.2)", "run/invoc", "compile", "#disabled",
                   "disabled transformations"});
  for (size_t I = 0; I < Outcomes.size() && I < 8; ++I) {
    const Outcome &O = Outcomes[I];
    std::string Disabled;
    unsigned Shown = 0;
    for (unsigned K = 0; K < NumTransformations; ++K)
      if (O.Mod.disables((TransformationKind)K)) {
        if (Shown++ == 4) {
          Disabled += ", ...";
          break;
        }
        if (!Disabled.empty())
          Disabled += ", ";
        Disabled += transformationName((TransformationKind)K);
      }
    if (O.Mod.isNull())
      Disabled = "(null modifier: original plan)";
    Table.addRow({std::to_string(I + 1), TablePrinter::fmt(O.V, 1),
                  TablePrinter::fmt(O.RunPerInvocation, 1),
                  TablePrinter::fmt(O.CompileCycles, 0),
                  std::to_string(O.Mod.numDisabled()), Disabled});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nnull modifier ranked %zu of %zu evaluated plans\n",
              NullRank, Outcomes.size());
  return 0;
}
