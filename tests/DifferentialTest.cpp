//===- tests/DifferentialTest.cpp - interpreter vs sync vs async JIT ------===//
//
// Differential safety net for the background compiler: seeded random
// programs executed three ways — pure interpreter, adaptive synchronous
// JIT, adaptive asynchronous JIT — must agree on every invocation,
// including while compilations are still in flight and after a drain. A
// second sweep disables each of the 58 transformations one at a time
// through the modifier hook and re-checks both JIT modes against the
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

/// Emits a random Int32 expression of \p Depth onto the stack, reading
/// locals [0, NumLocals). Mirrors the shape (but not the seed stream) of
/// the RandomProgramTest generator, with extra comparison nodes.
void emitExpr(MethodBuilder &MB, Rng &R, unsigned NumLocals, unsigned Depth) {
  if (Depth == 0 || R.nextBool(0.3)) {
    if (R.nextBool(0.5))
      MB.load((uint32_t)R.nextBelow(NumLocals));
    else
      MB.constI(DataType::Int32, R.nextInRange(-100, 100));
    return;
  }
  switch (R.nextBelow(6)) {
  case 0: {
    static const BcOp Ops[] = {BcOp::Add, BcOp::Sub, BcOp::Mul,
                               BcOp::Or,  BcOp::And, BcOp::Xor};
    emitExpr(MB, R, NumLocals, Depth - 1);
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.binop(Ops[R.nextBelow(6)], DataType::Int32);
    return;
  }
  case 1: // division by a guaranteed nonzero constant
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.constI(DataType::Int32, R.nextInRange(1, 23));
    MB.binop(R.nextBool(0.5) ? BcOp::Div : BcOp::Rem, DataType::Int32);
    return;
  case 2: // shifts by small constants
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.constI(DataType::Int32, R.nextInRange(0, 7));
    MB.binop(R.nextBool(0.5) ? BcOp::Shl : BcOp::Shr, DataType::Int32);
    return;
  case 3: { // narrowing/widening round trip
    DataType Narrow = R.nextBool(0.5) ? DataType::Int16 : DataType::Int8;
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.conv(DataType::Int32, Narrow);
    MB.conv(Narrow, DataType::Int32);
    return;
  }
  case 4: // a double detour
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.conv(DataType::Int32, DataType::Double);
    MB.constF(DataType::Double, 0.5 + (double)R.nextBelow(5));
    MB.binop(BcOp::Mul, DataType::Double);
    MB.conv(DataType::Double, DataType::Int32);
    return;
  default: // negation
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.neg(DataType::Int32);
    return;
  }
}

/// A random method with a loop around a branch diamond, so the adaptive
/// triggers see loopy code and the optimizer has real control flow:
///   for (i = 0; i < 8; ++i) { t = expr; if (cond) a = expr else b = expr }
///   return mix(a, b, t)
uint32_t buildRandomMethod(Program &P, uint64_t Seed) {
  Rng R(1000003 * Seed + 17);
  MethodBuilder MB(P, "diff", -1, MF_Static | MF_Public,
                   {DataType::Int32, DataType::Int32}, DataType::Int32);
  unsigned NumLocals = 2;
  for (unsigned I = 0; I < 3; ++I) {
    uint32_t T = MB.addLocal(DataType::Int32);
    ++NumLocals;
    emitExpr(MB, R, NumLocals - 1, 3);
    MB.store(T);
  }
  uint32_t Iv = MB.addLocal(DataType::Int32);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(Iv);
  MB.place(Head);
  MB.load(Iv).constI(DataType::Int32, 8).ifCmp(BcCond::Ge, Exit);
  {
    auto Else = MB.newLabel();
    auto Join = MB.newLabel();
    emitExpr(MB, R, NumLocals, 2);
    MB.ifZero((BcCond)R.nextBelow(6), Else);
    emitExpr(MB, R, NumLocals, 3);
    MB.store(2);
    MB.gotoLabel(Join);
    MB.place(Else);
    emitExpr(MB, R, NumLocals, 3);
    MB.store(3);
    MB.place(Join);
  }
  emitExpr(MB, R, NumLocals, 2);
  MB.store(4);
  MB.inc(Iv, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(2).load(3).binop(BcOp::Xor, DataType::Int32);
  MB.load(4).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  return MB.finish();
}

/// Low invocation triggers (promotion through hot after a few calls) with
/// time sampling off, so adaptive compilation happens fast and the same
/// way in every configuration.
VirtualMachine::Config adaptiveConfig(bool Async) {
  VirtualMachine::Config Cfg;
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    for (unsigned K = 0; K < 3; ++K)
      Cfg.Control.InvocationTriggers[L][K] = (L < 3) ? 2 : 1000000;
    Cfg.Control.CycleTriggers[L] = 1e18;
  }
  if (Async) {
    Cfg.Async.Enabled = true;
    Cfg.Async.Workers = 2;
  }
  return Cfg;
}

} // namespace

class Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Differential, InterpreterSyncJitAsyncJitAgree) {
  Program P;
  uint32_t M = buildRandomMethod(P, GetParam());
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();

  VirtualMachine::Config InterpCfg;
  InterpCfg.EnableJit = false;

  for (int64_t A : {1ll, -7ll}) {
    std::vector<Value> Args{Value::ofI(A), Value::ofI(A ^ 0x2a)};

    VirtualMachine Interp(P, InterpCfg);
    ExecResult Ref = Interp.invoke(M, Args);
    ASSERT_FALSE(Ref.Exceptional);

    // Adaptive sync JIT: the method gets promoted between invocations;
    // every invocation must still agree with the interpreter.
    VirtualMachine Sync(P, adaptiveConfig(/*Async=*/false));
    for (int I = 0; I < 8; ++I) {
      ExecResult Got = Sync.invoke(M, Args);
      ASSERT_FALSE(Got.Exceptional);
      ASSERT_EQ(Got.Ret.I, Ref.Ret.I)
          << "sync, seed " << GetParam() << " arg " << A << " invocation "
          << I;
    }
    EXPECT_GT(Sync.stats().Compilations, 0u);

    // Adaptive async JIT: results must agree while compilations are in
    // flight, right after a drain, and on the compiled body.
    VirtualMachine Async(P, adaptiveConfig(/*Async=*/true));
    for (int I = 0; I < 8; ++I) {
      ExecResult Got = Async.invoke(M, Args);
      ASSERT_FALSE(Got.Exceptional);
      ASSERT_EQ(Got.Ret.I, Ref.Ret.I)
          << "async, seed " << GetParam() << " arg " << A << " invocation "
          << I;
      if (I == 3)
        Async.drainCompilations();
    }
    Async.drainCompilations();
    EXPECT_NE(Async.nativeOf(M), nullptr);
    ExecResult Got = Async.invoke(M, Args);
    ASSERT_FALSE(Got.Exceptional);
    ASSERT_EQ(Got.Ret.I, Ref.Ret.I)
        << "async post-drain, seed " << GetParam() << " arg " << A;
  }
}

// ~50 random programs (the satellite's floor for the differential net).
INSTANTIATE_TEST_SUITE_P(FuzzSeeds, Differential,
                         ::testing::Range<uint64_t>(1, 51));

class DifferentialModifier : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialModifier, DisablingEachTransformationPreservesResults) {
  Program P;
  uint32_t M = buildRandomMethod(P, GetParam());
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  std::vector<Value> Args{Value::ofI(5), Value::ofI(-3)};

  VirtualMachine::Config InterpCfg;
  InterpCfg.EnableJit = false;
  VirtualMachine Interp(P, InterpCfg);
  ExecResult Ref = Interp.invoke(M, Args);
  ASSERT_FALSE(Ref.Exceptional);

  for (unsigned K = 0; K < NumTransformations; ++K) {
    PlanModifier Mod;
    Mod.disable((TransformationKind)K);
    auto Hook = [Mod](uint32_t, OptLevel, const FeatureVector &) {
      return Mod;
    };

    // Sync: force-compile hot with the transformation disabled.
    {
      VirtualMachine::Config Cfg;
      Cfg.Control.Enabled = false;
      VirtualMachine VM(P, Cfg);
      VM.setModifierHook(Hook);
      VM.compileMethod(M, OptLevel::Hot);
      ExecResult Got = VM.invoke(M, Args);
      ASSERT_FALSE(Got.Exceptional);
      ASSERT_EQ(Got.Ret.I, Ref.Ret.I)
          << "sync, seed " << GetParam() << " disabled kind " << K;
    }

    // Async: the worker compiles with the same modifier; results must
    // match before and after the install becomes visible.
    {
      VirtualMachine::Config Cfg = adaptiveConfig(/*Async=*/true);
      // One promotion is enough for the sweep; keep it to cold.
      for (unsigned L = 1; L < NumOptLevels; ++L)
        for (unsigned C = 0; C < 3; ++C)
          Cfg.Control.InvocationTriggers[L][C] = 1000000;
      VirtualMachine VM(P, Cfg);
      VM.setModifierHook(Hook);
      for (int I = 0; I < 4; ++I) {
        ExecResult Got = VM.invoke(M, Args);
        ASSERT_FALSE(Got.Exceptional);
        ASSERT_EQ(Got.Ret.I, Ref.Ret.I)
            << "async, seed " << GetParam() << " disabled kind " << K;
      }
      VM.drainCompilations();
      ExecResult Got = VM.invoke(M, Args);
      ASSERT_FALSE(Got.Exceptional);
      ASSERT_EQ(Got.Ret.I, Ref.Ret.I)
          << "async post-drain, seed " << GetParam() << " disabled kind "
          << K;
      EXPECT_NE(VM.nativeOf(M), nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SweepSeeds, DifferentialModifier,
                         ::testing::Values<uint64_t>(5, 9));
