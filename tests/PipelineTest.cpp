//===- tests/PipelineTest.cpp - parallel-pipeline determinism tests -------===//
//
// The learning pipeline's contract under JITML_JOBS: parallel execution
// may only change wall-clock, never a produced number. These tests run
// the same stage at JITML_JOBS=1 and JITML_JOBS=4 and require the
// artifacts — series statistics, collection records, trained models,
// whole figures — to be bit-identical. The TrainerEquivalence suite pins
// the shrinking solver to the reference (non-shrinking) schedule's
// quality on freshly collected fixtures.
//
// The suite runs under ThreadSanitizer in tier1's `pipeline` stage, so it
// doubles as the data-race check for the fan-out paths.
//
//===----------------------------------------------------------------------===//

#include "harness/FigureReport.h"
#include "jitml/Training.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace jitml;

namespace {

/// Scoped JITML_JOBS override (restored on destruction). Only used from
/// the main thread, matching the pipeline's read-on-main-thread contract.
class ScopedJobs {
public:
  explicit ScopedJobs(unsigned Jobs) {
    const char *Prev = ::getenv("JITML_JOBS");
    HadPrev = Prev != nullptr;
    if (Prev)
      Saved = Prev;
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%u", Jobs);
    ::setenv("JITML_JOBS", Buf, 1);
  }
  ~ScopedJobs() {
    if (HadPrev)
      ::setenv("JITML_JOBS", Saved.c_str(), 1);
    else
      ::unsetenv("JITML_JOBS");
  }

private:
  std::string Saved;
  bool HadPrev = false;
};

CollectConfig quickConfig() {
  CollectConfig CC;
  CC.Iterations = 10;
  CC.ModifiersPerLevel = 20;
  CC.UsesPerModifier = 2;
  CC.MaxRecompilesPerMethod = 32;
  return CC;
}

void expectSeriesIdentical(const Series &A, const Series &B) {
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.Wall.count(), B.Wall.count());
  // Bit-identical, not merely close: the fold order is fixed.
  EXPECT_EQ(A.Wall.mean(), B.Wall.mean());
  EXPECT_EQ(A.Wall.variance(), B.Wall.variance());
  EXPECT_EQ(A.Wall.min(), B.Wall.min());
  EXPECT_EQ(A.Wall.max(), B.Wall.max());
  EXPECT_EQ(A.Compile.mean(), B.Compile.mean());
  EXPECT_EQ(A.Compile.variance(), B.Compile.variance());
}

void expectDataSetsIdentical(const IntermediateDataSet &A,
                             const IntermediateDataSet &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.Records.size(); ++I) {
    const TaggedRecord &X = A.Records[I];
    const TaggedRecord &Y = B.Records[I];
    ASSERT_EQ(X.SourceTag, Y.SourceTag);
    ASSERT_EQ(X.Signature, Y.Signature);
    ASSERT_EQ(X.Record.ModifierBits, Y.Record.ModifierBits);
    ASSERT_EQ(X.Record.Level, Y.Record.Level);
    ASSERT_EQ(X.Record.Invocations, Y.Record.Invocations);
    ASSERT_EQ(X.Record.RunCycles, Y.Record.RunCycles);
    ASSERT_EQ(X.Record.CompileCycles, Y.Record.CompileCycles);
    ASSERT_EQ(X.Record.Features.hash(), Y.Record.Features.hash());
  }
}

/// Crammer-Singer primal objective of \p M on \p Data:
///   1/2 sum_m ||w_m||^2 + C sum_i max_m (delta(m != y_i) + (w_m - w_y).x_i)
/// Both solver schedules stop at Epsilon-accurate points of the same
/// strictly convex problem, so their objectives must agree far more
/// tightly than their raw weights do.
double primalObjective(const LinearModel &M,
                       const std::vector<NormalizedInstance> &Data,
                       double C) {
  double Reg = 0.0;
  for (unsigned Cls = 0; Cls < M.numClasses(); ++Cls)
    for (unsigned F = 0; F < M.numFeatures(); ++F)
      Reg += M.weight(Cls, F) * M.weight(Cls, F);
  double Loss = 0.0;
  for (const NormalizedInstance &N : Data) {
    std::vector<double> S = M.scores(N.Components);
    double Sy = S[(size_t)N.Label - 1];
    double Worst = 0.0; // m == y contributes 0
    for (unsigned Cls = 0; Cls < M.numClasses(); ++Cls)
      if ((int32_t)Cls + 1 != N.Label)
        Worst = std::max(Worst, 1.0 + S[Cls] - Sy);
    Loss += Worst;
  }
  return 0.5 * Reg + C * Loss;
}

} // namespace

TEST(Pipeline, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> Hits(257);
  for (auto &H : Hits)
    H = 0;
  parallelFor(Hits.size(), [&](size_t I) { ++Hits[I]; }, 4);
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(Pipeline, NestedParallelForRunsInlineInOrder) {
  std::atomic<bool> InnerOrdered{true};
  parallelFor(
      8,
      [&](size_t) {
        // From a worker, a nested loop must run inline and in index order.
        size_t Expect = 0;
        bool Ordered = true;
        parallelFor(
            16, [&](size_t I) { Ordered = Ordered && I == Expect++; }, 4);
        if (!Ordered)
          InnerOrdered = false;
      },
      4);
  EXPECT_TRUE(InnerOrdered.load());
}

TEST(Pipeline, ConfiguredJobsParsesEnvironment) {
  {
    ScopedJobs Jobs(3);
    EXPECT_EQ(configuredJobs(), 3u);
  }
  {
    ScopedJobs Jobs(1);
    EXPECT_EQ(configuredJobs(), 1u);
  }
  ::setenv("JITML_JOBS", "garbage", 1);
  EXPECT_GE(configuredJobs(), 1u); // falls back to hardware concurrency
  ::unsetenv("JITML_JOBS");
}

TEST(Pipeline, ParallelSeriesIsBitIdenticalToSequential) {
  Program P = buildWorkload(workloadByCode("js"));
  ExperimentConfig EC;
  EC.Runs = 8;
  Series Seq, Par;
  {
    ScopedJobs Jobs(1);
    Seq = measureSeries(P, EC, nullptr);
  }
  {
    ScopedJobs Jobs(4);
    Par = measureSeries(P, EC, nullptr);
  }
  expectSeriesIdentical(Seq, Par);
}

TEST(Pipeline, ParallelCollectionIsBitIdenticalToSequential) {
  IntermediateDataSet Seq, Par;
  {
    ScopedJobs Jobs(1);
    Seq = collectFromWorkload(workloadByCode("mt"), quickConfig());
  }
  {
    ScopedJobs Jobs(4);
    Par = collectFromWorkload(workloadByCode("mt"), quickConfig());
  }
  ASSERT_GT(Seq.size(), 0u);
  expectDataSetsIdentical(Seq, Par);
}

TEST(Pipeline, ParallelTrainingProducesIdenticalModelSets) {
  IntermediateDataSet Data;
  {
    ScopedJobs Jobs(1);
    CollectConfig CC = quickConfig();
    CC.Iterations = 20;
    Data = collectFromWorkload(workloadByCode("co"), CC);
  }
  ModelSet Seq, Par;
  {
    ScopedJobs Jobs(1);
    Seq = trainModelSet(Data, "det", TrainConfig());
  }
  {
    ScopedJobs Jobs(4);
    Par = trainModelSet(Data, "det", TrainConfig());
  }
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    ASSERT_EQ(Seq.Levels[L].Valid, Par.Levels[L].Valid);
    if (!Seq.Levels[L].Valid)
      continue;
    EXPECT_EQ(Seq.Levels[L].Model.toText(), Par.Levels[L].Model.toText());
    EXPECT_EQ(Seq.Levels[L].Scale.toText(), Par.Levels[L].Scale.toText());
    EXPECT_EQ(Seq.Levels[L].Labels.toText(), Par.Levels[L].Labels.toText());
  }
}

TEST(Pipeline, ParallelFigureIsBitIdenticalToSequential) {
  // Small but complete figure: whole suite, two leave-one-out folds, and
  // reservation-set rows that exercise the geomean path.
  ModelStore::Artifacts Artifacts;
  {
    ScopedJobs Jobs(1);
    CollectConfig CC = quickConfig();
    for (const char *Code : {"co", "db"})
      Artifacts.PerBenchmark.push_back(
          collectFromWorkload(workloadByCode(Code), CC));
    ModelSet A = trainModelSet(Artifacts.PerBenchmark[0], "HA", TrainConfig());
    A.LeftOutBenchmark = "db";
    ModelSet B = trainModelSet(Artifacts.PerBenchmark[1], "HB", TrainConfig());
    B.LeftOutBenchmark = "co";
    Artifacts.Sets.push_back(std::move(A));
    Artifacts.Sets.push_back(std::move(B));
  }
  FigureRequest Request;
  Request.Title = "determinism";
  Request.Metric = FigureMetric::StartupPerformance;
  Request.BenchSuite = Suite::SpecJvm98;
  Request.Iterations = 1;
  Request.Runs = 4;

  FigureData Seq, Par;
  {
    ScopedJobs Jobs(1);
    Seq = runFigure(Request, Artifacts);
  }
  {
    ScopedJobs Jobs(4);
    Par = runFigure(Request, Artifacts);
  }
  ASSERT_EQ(Seq.Rows.size(), Par.Rows.size());
  for (size_t R = 0; R < Seq.Rows.size(); ++R) {
    EXPECT_EQ(Seq.Rows[R].Benchmark, Par.Rows[R].Benchmark);
    EXPECT_EQ(Seq.Rows[R].LeaveOneOut, Par.Rows[R].LeaveOneOut);
    ASSERT_EQ(Seq.Rows[R].PerModel.size(), Par.Rows[R].PerModel.size());
    for (size_t M = 0; M < Seq.Rows[R].PerModel.size(); ++M) {
      EXPECT_EQ(Seq.Rows[R].PerModel[M].Value, Par.Rows[R].PerModel[M].Value);
      EXPECT_EQ(Seq.Rows[R].PerModel[M].Ci, Par.Rows[R].PerModel[M].Ci);
    }
  }
  ASSERT_EQ(Seq.ModelGeoMean.size(), Par.ModelGeoMean.size());
  for (size_t M = 0; M < Seq.ModelGeoMean.size(); ++M)
    EXPECT_EQ(Seq.ModelGeoMean[M], Par.ModelGeoMean[M]);
  // And the rendered report string matches character for character.
  EXPECT_EQ(formatFigure(Request, Seq), formatFigure(Request, Par));
}

TEST(TrainerEquivalence, ShrinkingMatchesReferenceOnCollectedFixtures) {
  // TrainingTest-style fixtures: freshly collected data per training
  // benchmark, ranked and normalized per learned level, trained with and
  // without the active-set heuristic. Both solvers optimize the same
  // strictly convex problem to the same epsilon, and shrinking re-verifies
  // the stopping criterion over the full set, so the optima must agree:
  // same training accuracy (up to margin-grazing instances) and close
  // weights, for no more total subproblem work.
  ScopedJobs Jobs(1);
  CollectConfig CC = quickConfig();
  CC.Iterations = 16;
  TrainConfig TC;
  // Train to convergence: two Epsilon-accurate points of the same convex
  // problem are comparable; two budget-truncated trajectories are not.
  TC.Svm.MaxIters = 400;
  unsigned Problems = 0, Converged = 0;
  uint64_t RefSolves = 0, ShrinkSolves = 0;
  for (const WorkloadSpec &Spec : trainingBenchmarks()) {
    IntermediateDataSet Data = collectFromWorkload(Spec, CC);
    for (unsigned L = 0; L < NumOptLevels; ++L) {
      OptLevel Level = (OptLevel)L;
      if (!isLearnedLevel(Level))
        continue;
      std::vector<RankedInstance> Ranked =
          rankRecords(Data, Level, TC.Selection, TC.Triggers);
      if (Ranked.size() < 8)
        continue;
      Scaling Scale = Scaling::fit(Ranked);
      LabelMap Labels;
      std::vector<NormalizedInstance> Instances =
          normalizeInstances(Ranked, Scale, Labels);

      TrainOptions Reference = TC.Svm;
      Reference.Shrinking = false;
      TrainOptions Shrink = TC.Svm;
      Shrink.Shrinking = true;
      TrainReport RefReport, ShrinkReport;
      LinearModel RefModel =
          trainCrammerSinger(Instances, Reference, &RefReport);
      LinearModel ShrinkModel =
          trainCrammerSinger(Instances, Shrink, &ShrinkReport);
      ++Problems;
      RefSolves += RefReport.SubproblemSolves;
      ShrinkSolves += ShrinkReport.SubproblemSolves;

      EXPECT_NEAR(ShrinkReport.TrainAccuracy, RefReport.TrainAccuracy,
                  2.0 / (double)Instances.size() + 1e-12)
          << Spec.Code << " level " << L
          << ": shrinking diverged from the reference accuracy";
      // Same optimum within the solver tolerance. The raw weights of two
      // Epsilon-accurate points can differ noticeably, but the objective
      // value they achieve cannot: compare objectives tightly (on the
      // problems both schedules fully converged on) and weights loosely.
      ASSERT_EQ(RefModel.numClasses(), ShrinkModel.numClasses());
      ASSERT_EQ(RefModel.numFeatures(), ShrinkModel.numFeatures());
      if (RefReport.Iterations < TC.Svm.MaxIters &&
          ShrinkReport.Iterations < TC.Svm.MaxIters) {
        ++Converged;
        double RefObj = primalObjective(RefModel, Instances, TC.Svm.C);
        double ShrinkObj = primalObjective(ShrinkModel, Instances, TC.Svm.C);
        EXPECT_NEAR(ShrinkObj, RefObj, 0.01 * std::max(RefObj, 1.0))
            << Spec.Code << " level " << L
            << ": shrinking converged to a different objective value";
        double MaxAbs = 0.0, MaxDiff = 0.0;
        for (unsigned C = 0; C < RefModel.numClasses(); ++C)
          for (unsigned F = 0; F < RefModel.numFeatures(); ++F) {
            MaxAbs = std::max(MaxAbs, std::fabs(RefModel.weight(C, F)));
            MaxDiff = std::max(MaxDiff, std::fabs(RefModel.weight(C, F) -
                                                  ShrinkModel.weight(C, F)));
          }
        EXPECT_LE(MaxDiff, 0.3 * std::max(MaxAbs, 1.0))
            << Spec.Code << " level " << L
            << ": shrinking drifted from the reference optimum";
      }
    }
  }
  EXPECT_GE(Problems, 10u) << "fixtures must cover most (benchmark, level) "
                              "training problems";
  EXPECT_GE(Converged, Problems / 2)
      << "too few problems converged for the objective comparison to bite";
  // The heuristic's point: across the fixture set, shrinking does no more
  // subproblem work than the every-instance-every-pass schedule (small
  // slack for full-set re-verification passes).
  EXPECT_LE(ShrinkSolves, RefSolves + RefSolves / 10)
      << "shrinking should not increase total subproblem work";
}

TEST(TrainerEquivalence, ShrinkingSolverIsDeterministic) {
  ScopedJobs Jobs(1);
  IntermediateDataSet Data =
      collectFromWorkload(workloadByCode("rt"), quickConfig());
  TrainConfig TC;
  std::vector<RankedInstance> Ranked =
      rankRecords(Data, OptLevel::Cold, TC.Selection, TC.Triggers);
  ASSERT_GE(Ranked.size(), 8u);
  Scaling Scale = Scaling::fit(Ranked);
  LabelMap Labels;
  std::vector<NormalizedInstance> Instances =
      normalizeInstances(Ranked, Scale, Labels);
  LinearModel A = trainCrammerSinger(Instances, TC.Svm);
  LinearModel B = trainCrammerSinger(Instances, TC.Svm);
  EXPECT_EQ(A.toText(), B.toText());
}

TEST(TrainerEquivalence, BatchPredictionMatchesScalar) {
  ScopedJobs Jobs(1);
  IntermediateDataSet Data =
      collectFromWorkload(workloadByCode("db"), quickConfig());
  TrainConfig TC;
  std::vector<RankedInstance> Ranked =
      rankRecords(Data, OptLevel::Warm, TC.Selection, TC.Triggers);
  ASSERT_GE(Ranked.size(), 8u);
  Scaling Scale = Scaling::fit(Ranked);
  LabelMap Labels;
  std::vector<NormalizedInstance> Instances =
      normalizeInstances(Ranked, Scale, Labels);
  LinearModel M = trainCrammerSinger(Instances, TC.Svm);

  unsigned P = M.numFeatures();
  std::vector<double> Flat(Instances.size() * (size_t)P);
  for (size_t I = 0; I < Instances.size(); ++I)
    std::copy(Instances[I].Components.begin(), Instances[I].Components.end(),
              Flat.begin() + I * P);
  std::vector<int32_t> Batch(Instances.size());
  M.predictBatch(Flat.data(), Instances.size(), P, Batch.data());
  for (size_t I = 0; I < Instances.size(); ++I)
    EXPECT_EQ(Batch[I], M.predict(Instances[I].Components));
}
