//===- tests/ModifierPropertyTest.cpp - the central correctness property --===//
//
// THE invariant the whole framework rests on: *any* compilation-plan
// modifier applied at *any* optimization level produces code that computes
// exactly what the interpreter computes. Data collection compiles methods
// with thousands of random modifiers; a single semantics-changing
// transformation combination would poison the training data (the paper had
// to discard crashing sessions — our compiler must simply be correct).
//
// Parameterized sweep: (training benchmark) x (level) x seeded random
// modifiers, plus the all-disabled and null modifiers.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "runtime/VirtualMachine.h"
#include "verify/PassVerifier.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

struct SweepCase {
  std::string Code;
  OptLevel Level;
};

std::string caseName(const ::testing::TestParamInfo<SweepCase> &Info) {
  return Info.param.Code + "_" + optLevelName(Info.param.Level);
}

} // namespace

class ModifierSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModifierSweep, AnyModifierPreservesSemantics) {
  const SweepCase &Param = GetParam();
  Program P = buildWorkload(workloadByCode(Param.Code));

  // Reference checksum from the pure interpreter.
  int64_t Reference = workloadChecksum(P, 1);

  // Kernels to force-compile with each modifier: every generated kernel
  // plus the driver.
  std::vector<uint32_t> Methods;
  for (uint32_t M = 0; M < P.numMethods(); ++M)
    if (P.methodAt(M).Name.find("Kernel") != std::string::npos ||
        P.methodAt(M).Name == "main")
      Methods.push_back(M);

  Rng R(mix64(0xabcdef ^ (uint64_t)Param.Level ^ P.numMethods()));
  std::vector<PlanModifier> Modifiers{
      PlanModifier(), // null: the original plan
      PlanModifier(BitSet64::allZero(NumTransformations)), // everything off
  };
  for (PlanModifier &M : generateRandomizedModifiers(R, 6))
    Modifiers.push_back(M);
  for (PlanModifier &M : generateProgressiveModifiers(R, 4))
    Modifiers.push_back(M);

  for (const PlanModifier &Mod : Modifiers) {
    VirtualMachine::Config Cfg;
    Cfg.Control.Enabled = false; // plans pinned by us
    VirtualMachine VM(P, Cfg);
    for (uint32_t M : Methods)
      VM.compileWithPlan(M, planForLevel(Param.Level), Mod);
    ExecResult Res = VM.run({Value::ofI(0)});
    ASSERT_FALSE(Res.Exceptional)
        << "modifier " << Mod.enabledMask().toString() << " threw";
    int64_t Got = (int64_t)mix64((uint64_t)Res.Ret.I);
    EXPECT_EQ(Got, Reference)
        << "modifier " << Mod.enabledMask().toString() << " at "
        << optLevelName(Param.Level) << " changed semantics";
  }
}

namespace {

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> Cases;
  for (const WorkloadSpec &S : trainingBenchmarks())
    for (unsigned L = 0; L < NumOptLevels; ++L)
      Cases.push_back({S.Code, (OptLevel)L});
  // Two DaCapo-style benchmarks stress BCD and heavy dispatch.
  for (const char *Code : {"h2", "ec"})
    for (OptLevel L : {OptLevel::Warm, OptLevel::Scorching})
      Cases.push_back({Code, L});
  return Cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(TrainingSuite, ModifierSweep,
                         ::testing::ValuesIn(sweepCases()), caseName);

// --- Degenerate plans and methods ----------------------------------------
//
// The sweep above covers realistic plans; these pin the boundary shapes.
// All of them compile with the deep IL verifier interposed after every
// pass (the default handler aborts the process on a violation, so merely
// finishing is the assertion).

namespace {

/// Scope guard: Full verify mode with the abort-on-failure default
/// handler, restored on exit.
struct FullVerifyScope {
  verify::VerifyIlMode Saved = verify::verifyIlMode();
  FullVerifyScope() { verify::setVerifyIlMode(verify::VerifyIlMode::Full); }
  ~FullVerifyScope() { verify::setVerifyIlMode(Saved); }
};

/// Methods with one-instruction bodies: `return 7` and `return arg`.
std::vector<uint32_t> addSingleInstructionMethods(Program &P) {
  std::vector<uint32_t> Out;
  {
    MethodBuilder MB(P, "retConst", -1, MF_Static | MF_Public, {},
                     DataType::Int32);
    MB.constI(DataType::Int32, 7).retValue(DataType::Int32);
    Out.push_back(MB.finish());
  }
  {
    MethodBuilder MB(P, "retArg", -1, MF_Static | MF_Public,
                     {DataType::Int32}, DataType::Int32);
    MB.load(0).retValue(DataType::Int32);
    Out.push_back(MB.finish());
  }
  return Out;
}

int64_t invokeCompiled(Program &P, uint32_t M, const CompilationPlan &Plan,
                       const PlanModifier &Mod, int64_t Arg) {
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  VM.compileWithPlan(M, Plan, Mod);
  std::vector<Value> Args;
  for (size_t I = 0; I < P.methodAt(M).ArgTypes.size(); ++I)
    Args.push_back(Value::ofI(Arg));
  ExecResult R = VM.invoke(M, Args);
  EXPECT_FALSE(R.Exceptional);
  return R.Ret.I;
}

} // namespace

TEST(ModifierEdge, EmptyPlanThroughVerifiedPipeline) {
  // A plan with zero entries: codegen consumes exactly what ilgen
  // produced. Every level tag is legal on an empty plan.
  FullVerifyScope Scope;
  Program P;
  std::vector<uint32_t> Methods = addSingleInstructionMethods(P);
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    CompilationPlan Empty;
    Empty.Level = (OptLevel)L;
    EXPECT_EQ(invokeCompiled(P, Methods[0], Empty, PlanModifier(), 0), 7);
    EXPECT_EQ(invokeCompiled(P, Methods[1], Empty, PlanModifier(), -13),
              -13);
  }
}

TEST(ModifierEdge, AllBitsSetPlanThroughVerifiedPipeline) {
  // The densest configuration: the scorching plan (172 entries) with every
  // one of the 58 transformation bits enabled, on both a degenerate method
  // and a real workload kernel.
  FullVerifyScope Scope;
  PlanModifier AllOn =
      PlanModifier::fromRaw((1ULL << NumTransformations) - 1);
  ASSERT_TRUE(AllOn.isNull());
  Program P;
  std::vector<uint32_t> Methods = addSingleInstructionMethods(P);
  const CompilationPlan &Plan = planForLevel(OptLevel::Scorching);
  EXPECT_EQ(invokeCompiled(P, Methods[0], Plan, AllOn, 0), 7);
  EXPECT_EQ(invokeCompiled(P, Methods[1], Plan, AllOn, 42), 42);

  Program W = buildWorkload(workloadByCode("cp"));
  int64_t Reference = workloadChecksum(W, 1);
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(W, Cfg);
  for (uint32_t M = 0; M < W.numMethods(); ++M)
    if (W.methodAt(M).Name.find("Kernel") != std::string::npos)
      VM.compileWithPlan(M, Plan, AllOn);
  ExecResult Res = VM.run({Value::ofI(0)});
  ASSERT_FALSE(Res.Exceptional);
  EXPECT_EQ((int64_t)mix64((uint64_t)Res.Ret.I), Reference);
}

TEST(ModifierEdge, SingleInstructionMethodsSweepAllLevels) {
  // One-instruction bodies hit the degenerate ends of every pass's scan
  // loops (no loops, one block, no kills). Sweep all levels x {null,
  // all-disabled} under the interposed verifier.
  FullVerifyScope Scope;
  Program P;
  std::vector<uint32_t> Methods = addSingleInstructionMethods(P);
  PlanModifier AllOff{BitSet64::allZero(NumTransformations)};
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    for (const PlanModifier &Mod : {PlanModifier(), AllOff}) {
      EXPECT_EQ(
          invokeCompiled(P, Methods[0], planForLevel((OptLevel)L), Mod, 0),
          7);
      EXPECT_EQ(invokeCompiled(P, Methods[1], planForLevel((OptLevel)L),
                               Mod, 1234),
                1234);
    }
  }
}
