//===- tests/ModifierPropertyTest.cpp - the central correctness property --===//
//
// THE invariant the whole framework rests on: *any* compilation-plan
// modifier applied at *any* optimization level produces code that computes
// exactly what the interpreter computes. Data collection compiles methods
// with thousands of random modifiers; a single semantics-changing
// transformation combination would poison the training data (the paper had
// to discard crashing sessions — our compiler must simply be correct).
//
// Parameterized sweep: (training benchmark) x (level) x seeded random
// modifiers, plus the all-disabled and null modifiers.
//
//===----------------------------------------------------------------------===//

#include "runtime/VirtualMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

struct SweepCase {
  std::string Code;
  OptLevel Level;
};

std::string caseName(const ::testing::TestParamInfo<SweepCase> &Info) {
  return Info.param.Code + "_" + optLevelName(Info.param.Level);
}

} // namespace

class ModifierSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModifierSweep, AnyModifierPreservesSemantics) {
  const SweepCase &Param = GetParam();
  Program P = buildWorkload(workloadByCode(Param.Code));

  // Reference checksum from the pure interpreter.
  int64_t Reference = workloadChecksum(P, 1);

  // Kernels to force-compile with each modifier: every generated kernel
  // plus the driver.
  std::vector<uint32_t> Methods;
  for (uint32_t M = 0; M < P.numMethods(); ++M)
    if (P.methodAt(M).Name.find("Kernel") != std::string::npos ||
        P.methodAt(M).Name == "main")
      Methods.push_back(M);

  Rng R(mix64(0xabcdef ^ (uint64_t)Param.Level ^ P.numMethods()));
  std::vector<PlanModifier> Modifiers{
      PlanModifier(), // null: the original plan
      PlanModifier(BitSet64::allZero(NumTransformations)), // everything off
  };
  for (PlanModifier &M : generateRandomizedModifiers(R, 6))
    Modifiers.push_back(M);
  for (PlanModifier &M : generateProgressiveModifiers(R, 4))
    Modifiers.push_back(M);

  for (const PlanModifier &Mod : Modifiers) {
    VirtualMachine::Config Cfg;
    Cfg.Control.Enabled = false; // plans pinned by us
    VirtualMachine VM(P, Cfg);
    for (uint32_t M : Methods)
      VM.compileWithPlan(M, planForLevel(Param.Level), Mod);
    ExecResult Res = VM.run({Value::ofI(0)});
    ASSERT_FALSE(Res.Exceptional)
        << "modifier " << Mod.enabledMask().toString() << " threw";
    int64_t Got = (int64_t)mix64((uint64_t)Res.Ret.I);
    EXPECT_EQ(Got, Reference)
        << "modifier " << Mod.enabledMask().toString() << " at "
        << optLevelName(Param.Level) << " changed semantics";
  }
}

namespace {

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> Cases;
  for (const WorkloadSpec &S : trainingBenchmarks())
    for (unsigned L = 0; L < NumOptLevels; ++L)
      Cases.push_back({S.Code, (OptLevel)L});
  // Two DaCapo-style benchmarks stress BCD and heavy dispatch.
  for (const char *Code : {"h2", "ec"})
    for (OptLevel L : {OptLevel::Warm, OptLevel::Scorching})
      Cases.push_back({Code, L});
  return Cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(TrainingSuite, ModifierSweep,
                         ::testing::ValuesIn(sweepCases()), caseName);
