//===- tests/SmokeTest.cpp - End-to-end pipeline smoke tests --------------===//
//
// Exercises the entire stack on small programs: build bytecode, verify,
// interpret, generate IL, optimize at every level, lower to native code,
// execute, and compare against the interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "il/ILGenerator.h"
#include "il/ILVerifier.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

TEST(Smoke, SumLoopInterpreted) {
  Program P = makeSumProgram();
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  ExecResult R = VM.run({Value::ofI(100)});
  ASSERT_FALSE(R.Exceptional);
  EXPECT_EQ(R.Ret.I, 4950);
  EXPECT_GT(VM.stats().AppCycles, 0.0);
  EXPECT_EQ(VM.stats().CompileCycles, 0.0);
}

TEST(Smoke, SumLoopEveryLevelMatchesInterpreter) {
  Program P = makeSumProgram();
  uint32_t Sum = 0; // sumToN is the first method added
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    int64_t Got = runBothEngines(P, Sum, 137, (OptLevel)L);
    EXPECT_EQ(Got, 137 * 136 / 2) << "level " << optLevelName((OptLevel)L);
  }
}

TEST(Smoke, RecursiveFibBothEngines) {
  Program P;
  uint32_t Fib = addFib(P);
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();
  EXPECT_EQ(runBothEngines(P, Fib, 15), 610);
}

TEST(Smoke, ILGeneratesAndVerifiesForAllMethods) {
  Program P = makeSumProgram();
  addFib(P);
  for (uint32_t M = 0; M < P.numMethods(); ++M) {
    auto IL = generateIL(P, M);
    std::vector<std::string> Errors = verifyIL(*IL);
    EXPECT_TRUE(Errors.empty())
        << P.signatureOf(M) << ": " << Errors.front();
  }
}

TEST(Smoke, AdaptiveJitCompilesHotMethod) {
  Program P = makeSumProgram();
  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  // Drive sumToN hot through repeated entry invocations.
  for (int I = 0; I < 300; ++I) {
    ExecResult R = VM.run({Value::ofI(50)});
    ASSERT_FALSE(R.Exceptional);
    ASSERT_EQ(R.Ret.I, 1225);
  }
  EXPECT_GT(VM.stats().Compilations, 0u);
  EXPECT_GT(VM.stats().CompileCycles, 0.0);
  const NativeMethod *Code = VM.nativeOf(0);
  ASSERT_NE(Code, nullptr);
  // The loop should have pushed it past cold.
  EXPECT_GE((unsigned)Code->Level, (unsigned)OptLevel::Warm);
}

TEST(Smoke, OptimizedCodeIsFasterThanColdCode) {
  Program P;
  uint32_t Kernel = addConstKernel(P);
  P.setEntryMethod(Kernel);
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();
  int64_t Expected = 0;
  for (int I = 0; I < 256; ++I)
    Expected += (7 * 9 + 11) + I * 3;
  auto TimeAt = [&](OptLevel L, double &Cycles) {
    VirtualMachine::Config Cfg;
    Cfg.Control.Enabled = false;
    VirtualMachine VM(P, Cfg);
    VM.compileMethod(Kernel, L);
    double Before = VM.clock().cycles();
    ExecResult R = VM.invoke(Kernel, {Value::ofI(7), Value::ofI(9)});
    EXPECT_FALSE(R.Exceptional);
    Cycles = VM.clock().cycles() - Before;
    return R.Ret.I;
  };
  double Cold = 0, Hot = 0;
  EXPECT_EQ(TimeAt(OptLevel::Cold, Cold), Expected);
  EXPECT_EQ(TimeAt(OptLevel::Hot, Hot), Expected);
  EXPECT_LT(Hot, Cold)
      << "LICM/LSR/unrolling should beat the cold plan on this kernel";
}

TEST(Smoke, JitBeatsInterpreterOnLoops) {
  Program P = makeSumProgram();
  VirtualMachine::Config NoJit;
  NoJit.EnableJit = false;
  VirtualMachine Interp(P, NoJit);
  Interp.run({Value::ofI(2000)});
  double InterpCycles = Interp.stats().AppCycles;

  VirtualMachine::Config Jit;
  Jit.Control.Enabled = false;
  VirtualMachine Compiled(P, Jit);
  Compiled.compileMethod(0, OptLevel::Warm);
  Compiled.compileMethod(1, OptLevel::Warm);
  double Before = Compiled.stats().AppCycles;
  Compiled.run({Value::ofI(2000)});
  double JitCycles = Compiled.stats().AppCycles - Before;
  EXPECT_LT(JitCycles, InterpCycles / 2.0);
}
