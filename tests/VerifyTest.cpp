//===- tests/VerifyTest.cpp - verify/ subsystem unit tests ----------------===//
//
// Covers the three cooperating parts of src/verify/: the deep IL verifier
// (accepts everything the compiler legitimately produces, rejects every
// planted invariant violation, terminates on cyclic node graphs), the
// pass-interposed checker with its fault-injected broken-pass scenario,
// the differential oracle + campaign, the ddmin reducer, and the corpus
// file format.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "bytecode/Verifier.h"
#include "il/ILGenerator.h"
#include "il/ILVerifier.h"
#include "opt/Optimizer.h"
#include "support/FaultInjection.h"
#include "verify/Corpus.h"
#include "verify/DifferentialFuzzer.h"
#include "verify/PassVerifier.h"
#include "verify/Reducer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace jitml;
using namespace jitml::verify;

namespace {

/// RAII guard: whatever a test does to the process-wide verify state is
/// undone on scope exit, so tests stay order-independent.
struct VerifyStateGuard {
  VerifyIlMode Saved = verifyIlMode();
  ~VerifyStateGuard() {
    setVerifyFailureHandler(nullptr);
    setVerifyIlMode(Saved);
    setCoverageEnabled(false);
    FaultRegistry::global().disarm();
  }
};

std::unique_ptr<MethodIL> ilFor(Program &P, uint32_t M) {
  EXPECT_TRUE(verifyMethod(P, M).ok());
  return generateIL(P, M);
}

} // namespace

// --- Deep verifier: acceptance ------------------------------------------

TEST(ILVerifierDeep, AcceptsGeneratedILOfEveryTestProgram) {
  Program P;
  std::vector<uint32_t> Methods = {jitml::testing::addSumToN(P),
                                   jitml::testing::addFib(P),
                                   jitml::testing::addConstKernel(P)};
  for (uint32_t M : Methods) {
    auto IL = ilFor(P, M);
    EXPECT_TRUE(verifyILDeep(*IL).empty())
        << "method " << M << ": " << verifyILDeep(*IL).front();
  }
}

TEST(ILVerifierDeep, AcceptsEveryPassOutputAtEveryLevel) {
  // The strongest acceptance statement: run the full plan of every level
  // over representative methods with the verifier interposed after every
  // pass; zero failures expected.
  VerifyStateGuard Guard;
  setVerifyIlMode(VerifyIlMode::Full);
  std::vector<std::string> Seen;
  setVerifyFailureHandler([&Seen](const PassCheckFailure &F) {
    Seen.push_back(formatFailure(F));
  });
  Program P;
  std::vector<uint32_t> Methods = {jitml::testing::addSumToN(P),
                                   jitml::testing::addFib(P),
                                   jitml::testing::addConstKernel(P)};
  for (uint32_t M : Methods) {
    for (unsigned L = 0; L < NumOptLevels; ++L) {
      auto IL = ilFor(P, M);
      optimize(*IL, planForLevel((OptLevel)L),
               BitSet64::allOne(NumTransformations));
    }
  }
  EXPECT_TRUE(Seen.empty()) << Seen.front();
}

// --- Deep verifier: planted violations ----------------------------------

TEST(ILVerifierDeep, RejectsCyclicNodeGraphWithoutHanging) {
  Program P;
  uint32_t M = jitml::testing::addSumToN(P);
  auto IL = ilFor(P, M);
  // Redirect a grandchild edge back at the grandparent: a cycle no
  // def-before-use order can satisfy. Replacing (not appending) keeps
  // every node's arity legal so only the cycle check can object — and the
  // old structural walk looped forever on exactly this shape.
  bool Planted = false;
  for (NodeId Id = 0; Id < IL->numNodes() && !Planted; ++Id) {
    Node &N = IL->node(Id);
    for (NodeId Kid : N.Kids) {
      if (!IL->node(Kid).Kids.empty()) {
        IL->node(Kid).Kids[0] = Id;
        Planted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(Planted);
  std::vector<std::string> Errors = verifyILDeep(*IL);
  ASSERT_FALSE(Errors.empty());
  bool FoundCycle = false;
  for (const std::string &E : Errors)
    FoundCycle |= E.find("cycle") != std::string::npos;
  EXPECT_TRUE(FoundCycle) << Errors.front();
}

TEST(ILVerifierDeep, RejectsSuccPredMirrorBreak) {
  Program P;
  uint32_t M = jitml::testing::addSumToN(P);
  auto IL = ilFor(P, M);
  // Drop one pred edge without touching the successor side.
  for (BlockId B = 0; B < IL->numBlocks(); ++B) {
    if (!IL->block(B).Preds.empty()) {
      IL->block(B).Preds.pop_back();
      break;
    }
  }
  EXPECT_FALSE(verifyILDeep(*IL).empty());
}

TEST(ILVerifierDeep, RejectsUnsoundReachableFlag) {
  Program P;
  uint32_t M = jitml::testing::addSumToN(P);
  auto IL = ilFor(P, M);
  // Lie about a reachable non-entry block; codegen would skip it.
  BlockId Victim = InvalidBlock;
  for (BlockId B = 0; B < IL->numBlocks(); ++B)
    if (B != IL->entryBlock() && IL->block(B).Reachable &&
        !IL->block(B).Preds.empty()) {
      Victim = B;
      break;
    }
  ASSERT_NE(Victim, InvalidBlock);
  IL->block(Victim).Reachable = false;
  EXPECT_FALSE(verifyILDeep(*IL).empty());
}

TEST(ILVerifierDeep, RejectsCrossBlockSideEffectSharing) {
  Program P;
  uint32_t M = jitml::testing::addFib(P);
  auto IL = ilFor(P, M);
  // Find a Call expression and reference it from a second block's tree:
  // codegen materializes shared nodes per block, so the call would run
  // twice.
  NodeId CallNode = InvalidNode;
  BlockId Owner = InvalidBlock;
  for (BlockId B = 0; B < IL->numBlocks() && CallNode == InvalidNode; ++B) {
    if (!IL->block(B).Reachable)
      continue;
    for (NodeId Root : IL->block(B).Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        const Node &N = IL->node(Id);
        if (N.Op == ILOp::Call && N.Type != DataType::Void) {
          CallNode = Id;
          Owner = B;
          break;
        }
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
      if (CallNode != InvalidNode)
        break;
    }
  }
  ASSERT_NE(CallNode, InvalidNode);
  for (BlockId B = 0; B < IL->numBlocks(); ++B) {
    Block &Blk = IL->block(B);
    if (B == Owner || !Blk.Reachable || Blk.Trees.empty())
      continue;
    // Wrap the shared call in a store treetop prepended to another block.
    uint32_t Slot = IL->addLocal(DataType::Int32);
    NodeId St = IL->makeNode(ILOp::StoreLocal, DataType::Void, {CallNode});
    IL->node(St).A = (int32_t)Slot;
    Blk.Trees.insert(Blk.Trees.begin(), St);
    break;
  }
  std::vector<std::string> Errors = verifyILDeep(*IL);
  ASSERT_FALSE(Errors.empty());
  bool Found = false;
  for (const std::string &E : Errors)
    Found |= E.find("once per block") != std::string::npos;
  EXPECT_TRUE(Found) << Errors.front();
}

TEST(ILVerifierDeep, RejectsCategoryTypeMismatch) {
  Program P;
  uint32_t M = jitml::testing::addSumToN(P);
  auto IL = ilFor(P, M);
  // Retype one integer constant under an integer op as Double.
  bool Planted = false;
  for (NodeId Id = 0; Id < IL->numNodes() && !Planted; ++Id) {
    Node &N = IL->node(Id);
    if (!isArithOp(N.Op) || N.Kids.size() != 2)
      continue;
    Node &K = IL->node(N.Kids[1]);
    if (K.Op == ILOp::Const && isIntegerType(K.Type)) {
      K.Type = DataType::Double;
      Planted = true;
    }
  }
  ASSERT_TRUE(Planted);
  EXPECT_FALSE(verifyILDeep(*IL).empty());
}

TEST(ILVerifierDeep, RejectsBareExpressionTreetop) {
  Program P;
  uint32_t M = jitml::testing::addSumToN(P);
  auto IL = ilFor(P, M);
  // Plant a value-computing root that nothing consumes (a dropped
  // ExprStmt wrapper).
  NodeId C = IL->makeConstI(DataType::Int32, 42);
  Block &Entry = IL->block(IL->entryBlock());
  Entry.Trees.insert(Entry.Trees.begin(), C);
  std::vector<std::string> Errors = verifyILDeep(*IL);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors.front().find("never"), std::string::npos);
}

// --- Pass interposition + fault injection -------------------------------

TEST(PassVerifier, BrokenPassIsCaughtByInterposedVerifier) {
  // Acceptance criterion: a deliberately broken pass (structural damage
  // injected under JITML_FAULTS) is caught by the ILVerifier, with the
  // failing pass named in the diagnostic.
  VerifyStateGuard Guard;
  setVerifyIlMode(VerifyIlMode::Full);
  std::vector<PassCheckFailure> Seen;
  setVerifyFailureHandler(
      [&Seen](const PassCheckFailure &F) { Seen.push_back(F); });
  ASSERT_TRUE(
      FaultRegistry::global().arm("opt.pass.corrupt=k1", /*Seed=*/7));

  Program P;
  uint32_t M = jitml::testing::addConstKernel(P);
  auto IL = generateIL(P, M);
  optimize(*IL, planForLevel(OptLevel::Hot),
           BitSet64::allOne(NumTransformations));

  ASSERT_FALSE(Seen.empty());
  EXPECT_EQ(Seen.front().MethodIndex, M);
  EXPECT_GE(Seen.front().PlanIndex, 0);
  EXPECT_FALSE(Seen.front().Errors.empty());
  EXPECT_EQ(FaultRegistry::global().fires("opt.pass.corrupt"), 1u);
  // The formatted diagnostic names the pass and the invariant.
  std::string Msg = formatFailure(Seen.front());
  EXPECT_NE(Msg.find(Seen.front().PassName), std::string::npos);
}

TEST(PassVerifier, CountModeCountsCrossingsWithoutChecking) {
  VerifyStateGuard Guard;
  MetricRegistry &R = MetricRegistry::global();
  uint64_t Before = R.counter("verify.checks").value();
  uint64_t FailsBefore = R.counter("verify.failures").value();
  setVerifyIlMode(VerifyIlMode::Count);

  Program P;
  uint32_t M = jitml::testing::addSumToN(P);
  auto IL = generateIL(P, M);
  OptimizeResult Res = optimize(*IL, planForLevel(OptLevel::Warm),
                                BitSet64::allOne(NumTransformations));
  uint64_t Crossings = R.counter("verify.checks").value() - Before;
  // One crossing per executed tree-stage entry (codegen-stage entries and
  // guard-skipped entries never reach the checker).
  EXPECT_GT(Crossings, 0u);
  EXPECT_LE(Crossings, Res.EntriesRun);
  EXPECT_EQ(R.counter("verify.failures").value(), FailsBefore);
}

TEST(PassVerifier, CoverageMapReportsNewBitsOnce) {
  VerifyStateGuard Guard;
  resetCoverage();
  EXPECT_EQ(coverageBitCount(), 0u);
  EXPECT_TRUE(notePassCoverage(2, 5));
  EXPECT_FALSE(notePassCoverage(2, 5));
  EXPECT_TRUE(notePassCoverage(3, 5));
  EXPECT_EQ(coverageBitCount(), 2u);
  resetCoverage();
  EXPECT_EQ(coverageBitCount(), 0u);
}

TEST(PassVerifier, OptimizerRecordsChangedPassesAsCoverage) {
  VerifyStateGuard Guard;
  resetCoverage();
  setCoverageEnabled(true);
  Program P;
  uint32_t M = jitml::testing::addConstKernel(P);
  auto IL = generateIL(P, M);
  OptimizeResult Res = optimize(*IL, planForLevel(OptLevel::Scorching),
                                BitSet64::allOne(NumTransformations));
  EXPECT_TRUE(Res.ChangedPasses.bits().any());
  EXPECT_EQ(coverageBitCount(), Res.ChangedPasses.bits().popCount());
}

// --- FuzzInput plumbing ---------------------------------------------------

TEST(FuzzInput, SerializeRoundTrips) {
  ProgramMutator Mut(99);
  for (int I = 0; I < 20; ++I) {
    FuzzInput In = Mut.seedInput(1 + (size_t)I * 3);
    In.ModifierRaw ^= (uint64_t)I * 0x1234567;
    In.ModifierRaw &= (1ULL << NumTransformations) - 1;
    FuzzInput Out;
    ASSERT_TRUE(deserializeFuzzInput(serializeFuzzInput(In), Out));
    EXPECT_TRUE(In == Out);
  }
  // Empty byte string round-trips through the explicit marker.
  FuzzInput Empty, Got;
  Empty.Bytes.clear();
  ASSERT_TRUE(deserializeFuzzInput(serializeFuzzInput(Empty), Got));
  EXPECT_TRUE(Empty == Got);
  EXPECT_FALSE(deserializeFuzzInput("9 0 0 -", Got)) << "level out of range";
  EXPECT_FALSE(deserializeFuzzInput("1 0 0 xyz", Got)) << "bad hex";
}

TEST(FuzzInput, GeneratorIsTotalAndVerifierValid) {
  // Every byte string — including empty and adversarial ones — must build
  // a method that passes the bytecode verifier AND whose generated IL
  // passes the deep verifier.
  ProgramMutator Mut(1234);
  std::vector<FuzzInput> Pool;
  FuzzInput In = Mut.seedInput(32);
  for (int I = 0; I < 60; ++I) {
    Program P;
    uint32_t M = buildFuzzProgram(P, In);
    ASSERT_TRUE(verifyMethod(P, M).ok())
        << "input " << serializeFuzzInput(In) << ": "
        << verifyMethod(P, M).message();
    auto IL = generateIL(P, M);
    EXPECT_TRUE(verifyILDeep(*IL).empty())
        << "input " << serializeFuzzInput(In);
    Pool.push_back(In);
    In = Mut.mutate(In, Pool);
  }
}

TEST(FuzzInput, SameBytesSameProgram) {
  ProgramMutator Mut(5);
  FuzzInput In = Mut.seedInput(40);
  Program P1, P2;
  uint32_t M1 = buildFuzzProgram(P1, In);
  uint32_t M2 = buildFuzzProgram(P2, In);
  ASSERT_EQ(P1.methodAt(M1).Code.size(), P2.methodAt(M2).Code.size());
  // Same decision stream must run to the same result.
  EXPECT_EQ(jitml::testing::runBothEngines(P1, M1, 17),
            jitml::testing::runBothEngines(P2, M2, 17));
}

// --- Oracle ---------------------------------------------------------------

TEST(Oracle, CleanCompilerShowsNoDivergence) {
  VerifyStateGuard Guard;
  ProgramMutator Mut(2024);
  for (int I = 0; I < 3; ++I) {
    FuzzInput In = Mut.seedInput(24 + (size_t)I * 16);
    OracleResult R = runOracle(In);
    EXPECT_FALSE(R.diverged())
        << divergenceKindName(R.Kind) << ": " << R.Detail;
  }
}

TEST(Oracle, InjectedMiscompileDiverges) {
  // Acceptance criterion: semantic damage the verifier cannot see (an
  // off-by-one constant) is flagged by differential execution.
  VerifyStateGuard Guard;
  ASSERT_TRUE(
      FaultRegistry::global().arm("opt.pass.miscompile=always", /*Seed=*/11));
  ProgramMutator Mut(77);
  FuzzInput In = Mut.seedInput(48);
  OracleResult R = runOracle(In);
  EXPECT_TRUE(R.diverged());
  EXPECT_EQ(R.Kind, DivergenceKind::Output) << R.Detail;

  // Replay contract: disarming restores agreement.
  FaultRegistry::global().disarm();
  OracleResult Clean = runOracle(In);
  EXPECT_FALSE(Clean.diverged()) << Clean.Detail;
}

TEST(Oracle, InjectedCorruptionReportsVerifierDivergence) {
  VerifyStateGuard Guard;
  ASSERT_TRUE(
      FaultRegistry::global().arm("opt.pass.corrupt=always", /*Seed=*/3));
  ProgramMutator Mut(78);
  OracleResult R = runOracle(Mut.seedInput(48));
  EXPECT_TRUE(R.diverged());
  EXPECT_EQ(R.Kind, DivergenceKind::Verifier) << R.Detail;
}

// --- Reducer --------------------------------------------------------------

TEST(Reducer, ShrinksToSyntheticMinimum) {
  // Predicate: fails iff any byte == 0xAB and transformation bit 7 is
  // disabled. The minimum is one byte and one cleared bit.
  auto Fails = [](const FuzzInput &In) {
    bool Marker = false;
    for (uint8_t B : In.Bytes)
      Marker |= B == 0xAB;
    return Marker && !(In.ModifierRaw & (1ULL << 7));
  };
  FuzzInput Big;
  Big.Bytes.assign(64, 0x11);
  Big.Bytes[40] = 0xAB;
  Big.ModifierRaw = ((1ULL << NumTransformations) - 1) &
                    ~((1ULL << 7) | (1ULL << 9) | (1ULL << 30));
  Big.ArgSeed = 987;
  Big.Level = 3;
  ASSERT_TRUE(Fails(Big));
  ReduceStats Stats;
  FuzzInput Min = reduceInput(Big, Fails, 600, &Stats);
  EXPECT_TRUE(Fails(Min));
  EXPECT_EQ(Min.Bytes.size(), 1u);
  EXPECT_EQ(Min.Bytes[0], 0xAB);
  // Only the load-bearing bit stays cleared; 9 and 30 were re-enabled.
  EXPECT_EQ(Min.ModifierRaw,
            ((1ULL << NumTransformations) - 1) & ~(1ULL << 7));
  EXPECT_EQ(Min.ArgSeed, 1u);
  EXPECT_EQ(Min.Level, 0);
  EXPECT_GT(Stats.Probes, 0u);
}

TEST(Reducer, InjectedMiscompileReducesAndReplays) {
  // Acceptance criterion: an injected divergence is auto-reduced and the
  // reduction still replays deterministically under the same fault spec.
  VerifyStateGuard Guard;
  ASSERT_TRUE(
      FaultRegistry::global().arm("opt.pass.miscompile=always", /*Seed=*/11));
  ProgramMutator Mut(77);
  FuzzInput In = Mut.seedInput(48);
  ASSERT_EQ(runOracle(In).Kind, DivergenceKind::Output);
  FuzzInput Reduced = reduceInput(In, [](const FuzzInput &X) {
    return runOracle(X).Kind == DivergenceKind::Output;
  }, /*MaxProbes=*/120);
  EXPECT_LE(Reduced.Bytes.size(), In.Bytes.size());
  // Deterministic replay, twice.
  EXPECT_EQ(runOracle(Reduced).Kind, DivergenceKind::Output);
  EXPECT_EQ(runOracle(Reduced).Kind, DivergenceKind::Output);
}

// --- Campaign + corpus ----------------------------------------------------

TEST(Campaign, FindsInjectedBugAndWritesReducedCorpusFile) {
  VerifyStateGuard Guard;
  std::string Dir =
      (std::filesystem::temp_directory_path() / "jitml-corpus-test").string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  ASSERT_TRUE(
      FaultRegistry::global().arm("opt.pass.miscompile=always", /*Seed=*/5));
  FuzzCampaignConfig Cfg;
  Cfg.Seed = 42;
  Cfg.MaxExecs = 40; // the very first exec should trip the fault
  Cfg.MaxDivergences = 1;
  Cfg.Reduce = true;
  Cfg.CorpusDir = Dir;
  Cfg.FaultSpec = "opt.pass.miscompile=always";
  Cfg.FaultSeed = 5;
  FuzzCampaignResult Res = runFuzzCampaign(Cfg);
  ASSERT_EQ(Res.Divergences.size(), 1u);
  const Divergence &D = Res.Divergences.front();
  EXPECT_TRUE(D.WasReduced);
  ASSERT_FALSE(D.CorpusFile.empty());

  // The written file parses and replays: armed -> diverges, disarmed ->
  // clean.
  CorpusEntry E;
  std::string Err;
  ASSERT_TRUE(readCorpusFile(D.CorpusFile, E, &Err)) << Err;
  EXPECT_EQ(E.Kind, "differential");
  EXPECT_EQ(E.FaultSpec, "opt.pass.miscompile=always");
  ASSERT_TRUE(FaultRegistry::global().arm(E.FaultSpec, E.FaultSeed));
  EXPECT_TRUE(runOracle(E.Input).diverged());
  FaultRegistry::global().disarm();
  EXPECT_FALSE(runOracle(E.Input).diverged());
  std::filesystem::remove_all(Dir);
}

TEST(Campaign, CleanRunFindsNoDivergencesAndGrowsCoverage) {
  VerifyStateGuard Guard;
  FuzzCampaignConfig Cfg;
  Cfg.Seed = 7;
  Cfg.MaxExecs = 25;
  Cfg.Reduce = false;
  resetCoverage();
  FuzzCampaignResult Res = runFuzzCampaign(Cfg);
  EXPECT_EQ(Res.Divergences.size(), 0u);
  EXPECT_EQ(Res.Execs, 25u);
  EXPECT_GT(Res.CoverageBits, 0u);
}

TEST(Corpus, FileFormatRoundTripsAndRejectsGarbage) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "jitml-corpus-fmt").string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  CorpusEntry E;
  E.Kind = "differential";
  E.Note = "round trip";
  E.FaultSpec = "opt.pass.miscompile=k1";
  E.FaultSeed = 99;
  ProgramMutator Mut(3);
  E.Input = Mut.seedInput(17);
  std::string Path = Dir + "/a.repro";
  ASSERT_TRUE(writeCorpusFile(Path, E));
  CorpusEntry Got;
  std::string Err;
  ASSERT_TRUE(readCorpusFile(Path, Got, &Err)) << Err;
  EXPECT_EQ(Got.Kind, E.Kind);
  EXPECT_EQ(Got.Note, E.Note);
  EXPECT_EQ(Got.FaultSpec, E.FaultSpec);
  EXPECT_EQ(Got.FaultSeed, E.FaultSeed);
  EXPECT_TRUE(Got.Input == E.Input);

  CorpusEntry S;
  S.Kind = "scenario";
  S.Scenario = "stale-install";
  ASSERT_TRUE(writeCorpusFile(Dir + "/b.repro", S));
  ASSERT_TRUE(readCorpusFile(Dir + "/b.repro", Got, &Err)) << Err;
  EXPECT_EQ(Got.Scenario, "stale-install");

  // listCorpusFiles: sorted, .repro only, tolerant of a missing dir.
  { std::ofstream(Dir + "/ignored.txt") << "x\n"; }
  std::vector<std::string> Files = listCorpusFiles(Dir);
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_LT(Files[0], Files[1]);
  EXPECT_TRUE(listCorpusFiles(Dir + "/missing").empty());

  // Malformed inputs are diagnosed, not crashed on.
  { std::ofstream(Dir + "/bad.repro") << "kind: differential\n"; }
  EXPECT_FALSE(readCorpusFile(Dir + "/bad.repro", Got, &Err));
  EXPECT_NE(Err.find("without input"), std::string::npos);
  { std::ofstream(Dir + "/bad2.repro") << "garbage line\n"; }
  EXPECT_FALSE(readCorpusFile(Dir + "/bad2.repro", Got, &Err));
  std::filesystem::remove_all(Dir);
}
