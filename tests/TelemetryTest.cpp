//===- tests/TelemetryTest.cpp --------------------------------------------===//
//
// The unified observability layer: registry semantics, lock-free hot-path
// behavior under contention (the ConcurrentTelemetry suite runs under TSan
// in tier-1), and the trace emitter's failure contract — unwritable path,
// short writes, shutdown with a non-empty ring — which must always degrade
// to counters-only, never crash or block.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace jitml;

namespace {

//===----------------------------------------------------------------------===//
// Registry basics
//===----------------------------------------------------------------------===//

TEST(Telemetry, CounterAddValueReset) {
  TelemetryCounter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Telemetry, GaugeSetAndAdd) {
  TelemetryGauge G;
  G.set(7);
  EXPECT_EQ(G.value(), 7);
  G.add(-10);
  EXPECT_EQ(G.value(), -3);
}

TEST(Telemetry, HistogramStatsAndPercentile) {
  TelemetryHistogram H;
  for (uint64_t V : {1u, 2u, 4u, 100u, 1000u})
    H.record(V);
  TelemetryHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 1107u);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, 1000u);
  EXPECT_DOUBLE_EQ(S.mean(), 1107.0 / 5.0);
  // Power-of-two bucket upper bounds: the median of {1,2,4,100,1000}
  // lands in [4,8), the p100 in [512,1024).
  EXPECT_EQ(S.percentile(0.5), 4u);
  EXPECT_EQ(S.percentile(1.0), 1024u);
  H.reset();
  EXPECT_EQ(H.snapshot().Count, 0u);
  EXPECT_EQ(H.snapshot().percentile(0.5), 0u);
}

TEST(Telemetry, HistogramZeroAndHugeValues) {
  TelemetryHistogram H;
  H.record(0);
  H.record(UINT64_MAX);
  TelemetryHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_EQ(S.Min, 0u);
  EXPECT_EQ(S.Max, UINT64_MAX);
  EXPECT_EQ(S.Buckets[0], 1u);
  EXPECT_EQ(S.Buckets[TelemetryHistogram::NumBuckets - 1], 1u);
}

TEST(Telemetry, RegistryReturnsStableReferences) {
  MetricRegistry R;
  TelemetryCounter &A = R.counter("x.a");
  A.add(3);
  // Same name -> same metric, even after later registrations.
  for (int I = 0; I < 100; ++I)
    R.counter("x.fill" + std::to_string(I));
  EXPECT_EQ(&R.counter("x.a"), &A);
  EXPECT_EQ(R.counter("x.a").value(), 3u);
  // Counters, gauges, and histograms are separate namespaces.
  R.gauge("x.a").set(9);
  EXPECT_EQ(R.counter("x.a").value(), 3u);
}

TEST(Telemetry, SnapshotIsSortedAndFlattensHistograms) {
  MetricRegistry R;
  R.counter("b.count").add(2);
  R.counter("a.count").add(1);
  R.gauge("c.level").set(5);
  R.histogram("d.lat").record(7);
  std::vector<MetricSample> S = R.snapshot();
  ASSERT_GE(S.size(), 7u);
  for (size_t I = 1; I < S.size(); ++I)
    EXPECT_LT(S[I - 1].Name, S[I].Name);
  bool SawHistCount = false;
  for (const MetricSample &M : S)
    if (M.Name == "d.lat.count") {
      SawHistCount = true;
      EXPECT_EQ(M.Value, 1u);
    }
  EXPECT_TRUE(SawHistCount);
  // toText renders every row.
  std::string Text = R.toText();
  EXPECT_NE(Text.find("a.count"), std::string::npos);
  EXPECT_NE(Text.find("d.lat.p95_us"), std::string::npos);
}

TEST(Telemetry, ResetAllZeroesButKeepsNames) {
  MetricRegistry R;
  R.counter("r.c").add(10);
  R.histogram("r.h").record(10);
  R.resetAll();
  EXPECT_EQ(R.counter("r.c").value(), 0u);
  EXPECT_EQ(R.histogram("r.h").snapshot().Count, 0u);
  // The names survive a reset (still present in the snapshot).
  bool Saw = false;
  for (const MetricSample &M : R.snapshot())
    if (M.Name == "r.c")
      Saw = true;
  EXPECT_TRUE(Saw);
}

TEST(Telemetry, GlobalRegistryHasSubsystemMetrics) {
  // Constructing the instrumented subsystems registers their names; at
  // minimum the pool (exercised by every parallelFor) must be present in
  // the process-wide table.
  MetricRegistry::global().counter("pool.tasks");
  parallelFor(4, [](size_t) {}, 2);
  bool SawPool = false;
  for (const MetricSample &M : MetricRegistry::global().snapshot())
    if (M.Name == "pool.tasks")
      SawPool = true;
  EXPECT_TRUE(SawPool);
}

//===----------------------------------------------------------------------===//
// ConcurrentTelemetry — run under TSan in tier-1
//===----------------------------------------------------------------------===//

TEST(ConcurrentTelemetry, CountersSumExactlyAcrossThreads) {
  MetricRegistry R;
  TelemetryCounter &C = R.counter("cc.hits");
  TelemetryHistogram &H = R.histogram("cc.lat");
  constexpr int Threads = 8, PerThread = 20000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        C.add();
        H.record((uint64_t)(T + 1));
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), (uint64_t)Threads * PerThread);
  TelemetryHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, (uint64_t)Threads * PerThread);
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, (uint64_t)Threads);
}

TEST(ConcurrentTelemetry, RegistrationRacesAreSafe) {
  // Many threads resolving the same and different names concurrently must
  // agree on the same metric object per name.
  MetricRegistry R;
  constexpr int Threads = 8;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < 500; ++I) {
        R.counter("race.shared").add();
        R.counter("race.t" + std::to_string(T)).add();
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(R.counter("race.shared").value(), (uint64_t)Threads * 500);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(R.counter("race.t" + std::to_string(T)).value(), 500u);
}

TEST(ConcurrentTelemetry, SnapshotDuringIncrementsIsConsistent) {
  MetricRegistry R;
  TelemetryCounter &C = R.counter("snap.c");
  std::atomic<bool> Stop{false};
  std::thread Bumper([&] {
    while (!Stop.load(std::memory_order_relaxed))
      C.add();
  });
  uint64_t Last = 0;
  for (int I = 0; I < 200; ++I) {
    for (const MetricSample &M : R.snapshot())
      if (M.Name == "snap.c") {
        EXPECT_GE(M.Value, Last); // monotonic across snapshots
        Last = M.Value;
      }
  }
  Stop.store(true, std::memory_order_relaxed);
  Bumper.join();
}

TEST(ConcurrentTelemetry, PoolWorkersBumpSharedCountersExactly) {
  // Regression for the counter race this PR fixes: subsystem counters
  // surfaced as CounterRow used to be plain uint64_t ("Counters.X++")
  // while async-compile and pool workers bumped them concurrently. On the
  // atomic registry the total must be exact — and TSan-clean.
  MetricRegistry &R = MetricRegistry::global();
  TelemetryCounter &C = R.counter("test.pool_race");
  C.reset();
  TelemetryHistogram &H = R.histogram("test.pool_race_lat");
  H.reset();
  constexpr size_t N = 64, PerIndex = 5000;
  parallelFor(
      N,
      [&](size_t I) {
        for (size_t K = 0; K < PerIndex; ++K)
          C.add();
        H.record((uint64_t)I);
      },
      8);
  EXPECT_EQ(C.value(), (uint64_t)N * PerIndex);
  EXPECT_EQ(H.snapshot().Count, (uint64_t)N);
}

TEST(ConcurrentTelemetry, TraceRecordFromManyThreads) {
  // record() must stay wait-free w.r.t. the sink: threads hammer the ring
  // while the writer drains it; written + dropped accounts for every
  // recorded event after close().
  std::mutex Mu;
  std::string Out;
  TraceEmitter E(64);
  ASSERT_TRUE(E.openWithSink([&](const char *D, size_t S) {
    std::lock_guard<std::mutex> Lock(Mu);
    Out.append(D, S);
    return true;
  }));
  constexpr int Threads = 4, PerThread = 3000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      TraceEvent Ev;
      Ev.Stage = "span";
      Ev.Worker = T;
      for (int I = 0; I < PerThread; ++I) {
        Ev.StartUs = telemetryNowUs();
        E.record(Ev);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  E.close();
  EXPECT_EQ(E.eventsWritten() + E.eventsDropped(),
            (uint64_t)Threads * PerThread);
  EXPECT_GT(E.eventsWritten(), 0u);
  // Every written line is a complete JSON object.
  size_t Lines = 0;
  for (char Ch : Out)
    if (Ch == '\n')
      ++Lines;
  EXPECT_EQ(Lines, E.eventsWritten());
}

//===----------------------------------------------------------------------===//
// TelemetryTrace — failure paths
//===----------------------------------------------------------------------===//

TEST(TelemetryTrace, SerializesAllFields) {
  std::string Out;
  TraceEmitter E;
  ASSERT_TRUE(E.openWithSink([&](const char *D, size_t S) {
    Out.append(D, S);
    return true;
  }));
  TraceEvent Ev;
  Ev.Stage = "compile";
  Ev.StartUs = 10;
  Ev.DurUs = 5;
  Ev.Method = 42;
  Ev.Level = 2;
  Ev.Worker = 1;
  Ev.Items = 3;
  Ev.Cycles = 1234.5;
  Ev.Detail = "installed";
  Ev.Ok = false;
  E.record(Ev);
  E.flushNow();
  EXPECT_NE(Out.find("\"stage\":\"compile\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"start_us\":10"), std::string::npos);
  EXPECT_NE(Out.find("\"dur_us\":5"), std::string::npos);
  EXPECT_NE(Out.find("\"method\":42"), std::string::npos);
  EXPECT_NE(Out.find("\"level\":2"), std::string::npos);
  EXPECT_NE(Out.find("\"worker\":1"), std::string::npos);
  EXPECT_NE(Out.find("\"items\":3"), std::string::npos);
  EXPECT_NE(Out.find("\"cycles\":1234.5"), std::string::npos);
  EXPECT_NE(Out.find("\"detail\":\"installed\""), std::string::npos);
  EXPECT_NE(Out.find("\"ok\":false"), std::string::npos);
  E.close();

  // Unset optional fields are omitted entirely.
  Out.clear();
  ASSERT_TRUE(E.openWithSink([&](const char *D, size_t S) {
    Out.append(D, S);
    return true;
  }));
  TraceEvent Bare;
  Bare.Stage = "tick";
  E.record(Bare);
  E.flushNow();
  EXPECT_NE(Out.find("\"stage\":\"tick\""), std::string::npos);
  EXPECT_EQ(Out.find("\"method\""), std::string::npos);
  EXPECT_EQ(Out.find("\"items\""), std::string::npos);
  EXPECT_EQ(Out.find("\"cycles\""), std::string::npos);
  EXPECT_EQ(Out.find("\"detail\""), std::string::npos);
  E.close();
}

TEST(TelemetryTrace, UnwritablePathDegradesWithOneWarning) {
  TraceEmitter E;
  testing::internal::CaptureStderr();
  EXPECT_FALSE(E.open("/nonexistent-dir-jitml/trace.jsonl"));
  // A second failure must not warn again (one warning per emitter).
  EXPECT_FALSE(E.open("/nonexistent-dir-jitml/trace2.jsonl"));
  std::string Err = testing::internal::GetCapturedStderr();
  size_t First = Err.find("telemetry trace disabled");
  ASSERT_NE(First, std::string::npos) << Err;
  EXPECT_EQ(Err.find("telemetry trace disabled", First + 1),
            std::string::npos)
      << "warned more than once: " << Err;
  // The emitter stays disabled; record() is a harmless no-op.
  EXPECT_FALSE(E.enabled());
  TraceEvent Ev;
  Ev.Stage = "ignored";
  E.record(Ev);
  E.close(); // never crashes on a never-opened emitter
  EXPECT_EQ(E.eventsWritten(), 0u);
}

TEST(TelemetryTrace, ShortWriteDisablesOnceAndKeepsCounters) {
  // A sink that fails (disk full / short write) must disable tracing with
  // one warning; the metric registry keeps working untouched.
  TraceEmitter E;
  std::atomic<int> SinkCalls{0};
  testing::internal::CaptureStderr();
  ASSERT_TRUE(E.openWithSink([&](const char *, size_t) {
    SinkCalls.fetch_add(1);
    return false; // every write fails
  }));
  TraceEvent Ev;
  Ev.Stage = "doomed";
  E.record(Ev);
  E.flushNow(); // the event fails here or on the writer thread
  // close() joins the writer, so by now the (single) warning is printed
  // and no further sink activity is possible.
  E.close();
  std::string Err = testing::internal::GetCapturedStderr();
  size_t First = Err.find("telemetry trace disabled");
  ASSERT_NE(First, std::string::npos) << Err;
  EXPECT_EQ(Err.find("telemetry trace disabled", First + 1),
            std::string::npos)
      << "warned more than once: " << Err;
  EXPECT_FALSE(E.enabled());
  EXPECT_EQ(E.eventsWritten(), 0u);
  // Tracing is dead but counters still work.
  MetricRegistry::global().counter("test.after_trace_failure").add();
  EXPECT_EQ(
      MetricRegistry::global().counter("test.after_trace_failure").value(),
      1u);
  // Later records are no-ops that never touch the failed sink again.
  int CallsAfterFailure = SinkCalls.load();
  E.record(Ev);
  E.flushNow();
  EXPECT_EQ(SinkCalls.load(), CallsAfterFailure);
}

TEST(TelemetryTrace, CloseFlushesNonEmptyRing) {
  // Shutdown with buffered events must write them all, then close cleanly.
  std::string Out;
  TraceEmitter E(1024);
  ASSERT_TRUE(E.openWithSink([&](const char *D, size_t S) {
    Out.append(D, S);
    return true;
  }));
  TraceEvent Ev;
  Ev.Stage = "pending";
  for (int I = 0; I < 100; ++I) {
    Ev.StartUs = (uint64_t)I;
    E.record(Ev);
  }
  E.close();
  EXPECT_EQ(E.eventsWritten(), 100u);
  EXPECT_EQ(E.eventsDropped(), 0u);
  size_t Lines = 0;
  for (char Ch : Out)
    if (Ch == '\n')
      ++Lines;
  EXPECT_EQ(Lines, 100u);
  // close() is idempotent and record() after close is a no-op.
  E.close();
  E.record(Ev);
  EXPECT_EQ(E.eventsWritten(), 100u);
}

TEST(TelemetryTrace, FullRingDropsInsteadOfBlocking) {
  // Block the sink so the writer cannot drain, then overfill the ring:
  // record() must return immediately and count drops, never wait.
  std::mutex Gate;
  std::condition_variable Cv;
  bool Release = false;
  constexpr size_t Cap = 16;
  TraceEmitter E(Cap);
  ASSERT_TRUE(E.openWithSink([&](const char *, size_t) {
    std::unique_lock<std::mutex> Lock(Gate);
    Cv.wait(Lock, [&] { return Release; });
    return true;
  }));
  TraceEvent Ev;
  Ev.Stage = "flood";
  // 4x capacity: at most one ringful is in flight inside the blocked
  // writer, at most one fits in the ring, the rest must drop.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (size_t I = 0; I < Cap * 4; ++I) {
    E.record(Ev);
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "record() appears to block";
  }
  EXPECT_GT(E.eventsDropped(), 0u);
  {
    std::lock_guard<std::mutex> Lock(Gate);
    Release = true;
  }
  Cv.notify_all();
  E.close();
  EXPECT_EQ(E.eventsWritten() + E.eventsDropped(), Cap * 4);
}

TEST(TelemetryTrace, ReopenAfterCloseWorks) {
  std::string A, B;
  TraceEmitter E;
  ASSERT_TRUE(E.openWithSink([&](const char *D, size_t S) {
    A.append(D, S);
    return true;
  }));
  // A second open while running is rejected; close first.
  EXPECT_FALSE(E.openWithSink([](const char *, size_t) { return true; }));
  TraceEvent Ev;
  Ev.Stage = "first";
  E.record(Ev);
  E.close();
  ASSERT_TRUE(E.openWithSink([&](const char *D, size_t S) {
    B.append(D, S);
    return true;
  }));
  Ev.Stage = "second";
  E.record(Ev);
  E.close();
  EXPECT_NE(A.find("first"), std::string::npos);
  EXPECT_EQ(A.find("second"), std::string::npos);
  EXPECT_NE(B.find("second"), std::string::npos);
}

TEST(TelemetryTrace, FileSinkWritesJsonl) {
  std::string Path = testing::TempDir() + "/jitml_trace_test.jsonl";
  TraceEmitter E;
  ASSERT_TRUE(E.open(Path));
  EXPECT_TRUE(E.enabled());
  TraceEvent Ev;
  Ev.Stage = "file";
  Ev.Method = 7;
  E.record(Ev);
  E.close();
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[512] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  std::string Content(Buf, N);
  EXPECT_NE(Content.find("\"stage\":\"file\""), std::string::npos);
  EXPECT_NE(Content.find("\"method\":7"), std::string::npos);
}

} // namespace
