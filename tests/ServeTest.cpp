//===- tests/ServeTest.cpp - multi-client serving daemon ------------------===//
//
// The src/serve daemon must be a drop-in replacement for a private
// serveModel loop: same wire protocol, bit-identical answers, graceful
// degradation under overload and during hot model reloads. These tests
// drive it through real Unix-domain sockets with the production
// ResilientModelClient and compare every answer against the scalar
// prediction chain. The suite runs under both sanitizers via
// scripts/tier1.sh.
//
//===----------------------------------------------------------------------===//

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "bridge/Transports.h"
#include "serve/Server.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace jitml;

namespace {

std::string uniqueSocketPath(const char *Tag) {
  return "/tmp/jitml-serve-test-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

std::string identityScalingText() {
  std::string S;
  for (unsigned I = 0; I < NumFeatures; ++I)
    S += std::to_string(I) + " 0 1\n";
  return S;
}

/// A real ModelSet covering Cold/Warm/Hot with identity scaling and a
/// 2-class linear model: label 1 wins when feature0 > feature1, label 2
/// otherwise. \p BitsBase keys the label->modifier map so two sets built
/// from different bases have disjoint answer sets (the reload tests tell
/// versions apart by bits alone).
ModelSet makeModelSet(uint64_t BitsBase) {
  ModelSet Set;
  for (unsigned L = 0; L < 3; ++L) { // Cold, Warm, Hot
    LevelModel &LM = Set.Levels[L];
    EXPECT_TRUE(Scaling::fromText(identityScalingText(), LM.Scale));
    LM.Labels.labelFor(BitsBase + 10 * L + 1); // label 1
    LM.Labels.labelFor(BitsBase + 10 * L + 2); // label 2
    LM.Model = LinearModel(2, NumFeatures);
    LM.Model.weight(0, 0) = 1.0;
    LM.Model.weight(1, 1) = 1.0;
    LM.Valid = true;
  }
  return Set;
}

/// A feature vector unique to (Tag, I); Tag parity decides which label
/// wins so both classes are exercised.
FeatureVector uniqueFeatures(unsigned Tag, unsigned I) {
  FeatureVector F;
  F.set(0, (Tag + I) % 2 ? 3 + I : 1);
  F.set(1, (Tag + I) % 2 ? 1 : 3 + I);
  F.set(2, 1 + Tag);
  F.set(3, I);
  return F;
}

/// serveModel backend that answers through the registry's scalar
/// prediction chain — the private single-client baseline the daemon must
/// match bit for bit.
class RegistryBackend : public ModelBackend {
public:
  explicit RegistryBackend(ModelRegistry &R) : R(R) {}
  std::optional<uint64_t>
  predictModifier(OptLevel Level,
                  const std::vector<double> &Raw) override {
    std::shared_ptr<const ServeModel> M = R.snapshot();
    if (!M || Raw.size() != NumFeatures)
      return std::nullopt;
    FeatureVector FV;
    for (unsigned I = 0; I < NumFeatures; ++I)
      FV.set(I, (uint32_t)Raw[I]);
    return M->predict(Level, FV);
  }

private:
  ModelRegistry &R;
};

/// Daemon + registry with one installed model, plus client factories.
struct ServeHarness {
  ModelRegistry Registry;
  ServeConfig Cfg;
  std::unique_ptr<ModelServer> Server;

  explicit ServeHarness(const char *Tag, uint64_t BitsBase = 100,
                        size_t MaxInflight = 4096, size_t CacheCap = 4096) {
    Registry.install(makeModelSet(BitsBase));
    Cfg.SocketPath = uniqueSocketPath(Tag);
    Cfg.MaxInflight = MaxInflight;
    Cfg.CacheCapacity = CacheCap;
    Cfg.BatchDeadlineUs = 200;
    Server = std::make_unique<ModelServer>(Registry, Cfg);
  }
  ~ServeHarness() {
    if (Server)
      Server->stop();
  }

  ResilientModelClient::TransportFactory factory() {
    std::string Path = Cfg.SocketPath;
    return [Path]() -> std::unique_ptr<Transport> {
      return SocketTransport::connect(Path);
    };
  }

  std::unique_ptr<ResilientModelClient>
  client(size_t CacheCapacity = 0, bool CacheErrors = false) {
    ResilientModelClient::Config C;
    C.RequestTimeoutMs = 10000; // generous: sanitizer builds are slow
    C.CacheCapacity = CacheCapacity;
    C.CacheErrorReplies = CacheErrors;
    return std::make_unique<ResilientModelClient>(factory(), C);
  }
};

} // namespace

TEST(Serve, StartStopIdempotent) {
  ServeHarness H("startstop");
  ASSERT_TRUE(H.Server->start());
  EXPECT_TRUE(H.Server->running());
  H.Server->stop();
  EXPECT_FALSE(H.Server->running());
  H.Server->stop(); // second stop is a no-op
}

TEST(Serve, StartFailsOnUnbindablePath) {
  ModelRegistry R;
  ServeConfig C;
  C.SocketPath = "/nonexistent-dir/jitml.sock";
  ModelServer S(R, C);
  EXPECT_FALSE(S.start());
  EXPECT_FALSE(S.running());
}

TEST(Serve, SingleClientMatchesScalarChain) {
  ServeHarness H("single");
  ASSERT_TRUE(H.Server->start());
  auto Client = H.client();
  std::shared_ptr<const ServeModel> M = H.Registry.snapshot();
  for (unsigned I = 0; I < 30; ++I) {
    OptLevel Level = (OptLevel)(I % 3);
    FeatureVector F = uniqueFeatures(1, I);
    std::optional<uint64_t> Want = M->predict(Level, F);
    std::optional<uint64_t> Got = Client->requestModifier(Level, F);
    ASSERT_TRUE(Want.has_value());
    ASSERT_TRUE(Got.has_value()) << "request " << I;
    EXPECT_EQ(*Got, *Want) << "request " << I;
  }
  // Uncovered level: definitive Error reply, client falls back.
  EXPECT_FALSE(
      Client->requestModifier(OptLevel::Scorching, uniqueFeatures(1, 0))
          .has_value());
  ModelServer::Stats S = H.Server->stats();
  EXPECT_GE(S.Served, 30u); // cache-hit answers count as served too
  EXPECT_GE(S.Degraded, 1u);
  EXPECT_EQ(S.Shed, 0u);
}

TEST(Serve, MultiClientBitIdenticalToPrivateServer) {
  // K clients, each its own socket connection, racing through the daemon's
  // shared batcher — every client's modifier stream must be bit-identical
  // to the same stream served by a private single-client serveModel loop.
  constexpr unsigned K = 8, M = 40;
  ServeHarness H("identical");
  ASSERT_TRUE(H.Server->start());

  std::vector<std::vector<std::optional<uint64_t>>> Daemon(K), Priv(K);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < K; ++T)
    Threads.emplace_back([&, T] {
      auto Client = H.client();
      for (unsigned I = 0; I < M; ++I)
        Daemon[T].push_back(Client->requestModifier(
            (OptLevel)(I % 3), uniqueFeatures(T, I)));
    });
  for (std::thread &Th : Threads)
    Th.join();

  // The private baseline: one serveModel loop per client over an
  // in-process pipe, scalar prediction chain.
  for (unsigned T = 0; T < K; ++T) {
    auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
    RegistryBackend Backend(H.Registry);
    InProcessPipe *Raw = ServerEnd.release();
    std::thread Server([&, Raw] {
      serveModel(*Raw, Backend);
      delete Raw;
    });
    ResilientModelClient::Config C;
    C.RequestTimeoutMs = 10000;
    C.CacheCapacity = 0;
    ResilientModelClient Client(std::move(ClientEnd), C);
    for (unsigned I = 0; I < M; ++I)
      Priv[T].push_back(Client.requestModifier((OptLevel)(I % 3),
                                               uniqueFeatures(T, I)));
    Client.bye();
    Server.join();
  }

  ModelServer::Stats S = H.Server->stats();
  EXPECT_EQ(S.Shed, 0u); // ample MaxInflight: identity is unconditional
  for (unsigned T = 0; T < K; ++T)
    EXPECT_EQ(Daemon[T], Priv[T]) << "client " << T;
  EXPECT_EQ(S.Entries, (uint64_t)K * M);
  EXPECT_EQ(S.Served, (uint64_t)K * M); // every entry answered for real
}

TEST(Serve, BatchFrameAnswersEveryEntryInOrder) {
  ServeHarness H("batch");
  ASSERT_TRUE(H.Server->start());
  auto Client = H.client();
  std::shared_ptr<const ServeModel> M = H.Registry.snapshot();

  std::vector<ResilientModelClient::BatchRequest> Items;
  for (unsigned I = 0; I < 12; ++I)
    Items.push_back({I % 4 == 3 ? OptLevel::Scorching : (OptLevel)(I % 3),
                     uniqueFeatures(5, I)});
  std::vector<std::optional<uint64_t>> Got =
      Client->requestModifierBatch(Items);
  ASSERT_EQ(Got.size(), Items.size());
  for (unsigned I = 0; I < Items.size(); ++I) {
    std::optional<uint64_t> Want = M->predict(Items[I].Level,
                                              Items[I].Features);
    EXPECT_EQ(Got[I], Want) << "entry " << I;
    if (I % 4 == 3) {
      EXPECT_FALSE(Got[I].has_value()) << "entry " << I;
    }
  }
  ModelServer::Stats S = H.Server->stats();
  EXPECT_EQ(S.BatchRequests, 1u);
  EXPECT_EQ(S.Entries, Items.size());
}

TEST(Serve, SharedCacheServesRepeatAcrossClients) {
  ServeHarness H("cache");
  ASSERT_TRUE(H.Server->start());
  FeatureVector F = uniqueFeatures(9, 9);

  auto A = H.client();
  std::optional<uint64_t> First = A->requestModifier(OptLevel::Warm, F);
  ASSERT_TRUE(First.has_value());

  // A different client, different connection, same shape: the daemon's
  // shared cache answers without another batcher trip.
  auto B = H.client();
  std::optional<uint64_t> Second = B->requestModifier(OptLevel::Warm, F);
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(*Second, *First);
  ModelServer::Stats S = H.Server->stats();
  EXPECT_GE(S.CacheHits, 1u);
  PredictionCache::Stats CS = H.Server->cache().stats();
  EXPECT_GE(CS.Hits, 1u);
}

TEST(Serve, HotReloadMidTrafficNeverTearsAnswers) {
  // Version A maps labels to bits in [100, 130); version B to [500, 530).
  // While traffic hammers the daemon, install B mid-stream: every answer
  // must be a complete A answer or a complete B answer — never zero,
  // never a mix — and the registry must finish on B.
  ServeHarness H("reload", /*BitsBase=*/100);
  ASSERT_TRUE(H.Server->start());

  constexpr unsigned K = 4, M = 60;
  std::atomic<unsigned> Wrong{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < K; ++T)
    Threads.emplace_back([&, T] {
      auto Client = H.client();
      for (unsigned I = 0; I < M; ++I) {
        std::optional<uint64_t> Got = Client->requestModifier(
            (OptLevel)(I % 3), uniqueFeatures(T, I));
        if (!Got || !((*Got >= 100 && *Got < 130) ||
                      (*Got >= 500 && *Got < 530)))
          ++Wrong;
      }
    });
  // Let traffic start, then hot-swap the model.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  uint64_t V2 = H.Registry.install(makeModelSet(/*BitsBase=*/500));
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(Wrong.load(), 0u);
  EXPECT_EQ(H.Registry.version(), V2);

  // Post-reload requests answer exclusively from version B (the cache is
  // version-keyed, so no stale A bits can leak through).
  auto Client = H.client();
  for (unsigned I = 0; I < 10; ++I) {
    std::optional<uint64_t> Got =
        Client->requestModifier(OptLevel::Cold, uniqueFeatures(77, I));
    ASSERT_TRUE(Got.has_value());
    EXPECT_TRUE(*Got >= 500 && *Got < 530) << *Got;
  }
}

TEST(Serve, TornReloadKeepsPriorVersionServing) {
  ServeHarness H("torn", /*BitsBase=*/100);
  ASSERT_TRUE(H.Server->start());
  uint64_t V1 = H.Registry.version();

  // Write a truncated bundle (no trailing @end): the classic torn file.
  std::string Full = ModelRegistry::bundleText(makeModelSet(500));
  std::string Torn = Full.substr(0, Full.size() - 5); // drops "@end\n"
  std::string Path = uniqueSocketPath("torn-bundle") + ".txt";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fwrite(Torn.data(), 1, Torn.size(), F);
  std::fclose(F);

  EXPECT_FALSE(H.Registry.reloadFromFile(Path));
  EXPECT_EQ(H.Registry.version(), V1);
  EXPECT_EQ(H.Registry.reloadFailures(), 1u);

  // Still serving version A bits.
  auto Client = H.client();
  std::optional<uint64_t> Got =
      Client->requestModifier(OptLevel::Warm, uniqueFeatures(2, 2));
  ASSERT_TRUE(Got.has_value());
  EXPECT_TRUE(*Got >= 100 && *Got < 130);

  // The intact bundle installs fine.
  F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fwrite(Full.data(), 1, Full.size(), F);
  std::fclose(F);
  EXPECT_TRUE(H.Registry.reloadFromFile(Path));
  EXPECT_GT(H.Registry.version(), V1);
  std::remove(Path.c_str());
}

TEST(Serve, ShedOverCapacityDegradesToFallback) {
  // MaxInflight=0: every prediction that would need the batcher is shed
  // with an Error reply, which the client treats as a definitive
  // fallback. Wrong bits are impossible; only degraded answers.
  ServeHarness H("shed", /*BitsBase=*/100, /*MaxInflight=*/0,
                 /*CacheCap=*/0);
  ASSERT_TRUE(H.Server->start());
  auto Client = H.client();
  constexpr unsigned N = 20;
  for (unsigned I = 0; I < N; ++I)
    EXPECT_FALSE(
        Client->requestModifier(OptLevel::Warm, uniqueFeatures(4, I))
            .has_value());
  ModelServer::Stats S = H.Server->stats();
  EXPECT_EQ(S.Shed, (uint64_t)N);
  EXPECT_EQ(S.ShedEntries, (uint64_t)N);
  EXPECT_EQ(S.Served, 0u);
  BridgeCounters C = Client->counters();
  EXPECT_EQ(C.Fallbacks, (uint64_t)N);
  EXPECT_EQ(C.ErrorReplies, (uint64_t)N);
}

TEST(Serve, DrainAnswersAdmittedRequestsBeforeShutdown) {
  ServeHarness H("drain");
  ASSERT_TRUE(H.Server->start());
  // A slow backend keeps the request inflight long enough for stop() to
  // land mid-flight; drain must still deliver the real answer.
  FaultRegistry::global().arm("serve.backend.slow=always:100", 1);
  std::shared_ptr<const ServeModel> M = H.Registry.snapshot();
  FeatureVector F = uniqueFeatures(6, 6);
  std::optional<uint64_t> Want = M->predict(OptLevel::Hot, F);

  std::optional<uint64_t> Got;
  auto Client = H.client();
  std::thread Requester(
      [&] { Got = Client->requestModifier(OptLevel::Hot, F); });
  // Wait until the daemon has admitted the request (the 100ms slow-model
  // window makes missing it implausible, but correctness below does not
  // depend on winning the race)...
  for (unsigned Spin = 0; Spin < 2000 && H.Server->stats().Inflight == 0;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // ...then stop mid-flight: the drain must answer it, not orphan it.
  H.Server->stop();
  Requester.join();
  FaultRegistry::global().disarm();

  ASSERT_TRUE(Want.has_value());
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, *Want);
  EXPECT_EQ(H.Server->stats().Inflight, 0u);
}

TEST(Serve, DaemonRejectsMismatchedHelloVersion) {
  ServeHarness H("hello");
  ASSERT_TRUE(H.Server->start());
  auto T = SocketTransport::connect(H.Cfg.SocketPath);
  ASSERT_NE(T, nullptr);

  Message M;
  M.Type = MsgType::Hello;
  M.Version = ProtocolVersion + 1;
  ASSERT_TRUE(sendMessage(*T, M));
  Message Reply;
  ASSERT_TRUE(recvMessage(*T, Reply));
  EXPECT_EQ(Reply.Type, MsgType::Error);

  // The session survives the rejection: a correct Hello then succeeds.
  M.Version = ProtocolVersion;
  ASSERT_TRUE(sendMessage(*T, M));
  ASSERT_TRUE(recvMessage(*T, Reply));
  EXPECT_EQ(Reply.Type, MsgType::Hello);
  EXPECT_EQ(Reply.Version, ProtocolVersion);
  EXPECT_GE(H.Server->stats().HelloRejects, 1u);
}

TEST(Serve, ServeModelRejectsMismatchedHelloVersion) {
  // Satellite fix: the single-client serveModel loop must reject a
  // mismatched Hello with an Error reply instead of silently answering.
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  ModelRegistry R;
  R.install(makeModelSet(100));
  RegistryBackend Backend(R);
  InProcessPipe *Raw = ServerEnd.release();
  ServeStats Stats;
  std::thread Server([&, Raw] {
    Stats = serveModel(*Raw, Backend);
    delete Raw;
  });

  Message M;
  M.Type = MsgType::Hello;
  M.Version = ProtocolVersion + 1;
  ASSERT_TRUE(sendMessage(*ClientEnd, M));
  Message Reply;
  ASSERT_TRUE(recvMessage(*ClientEnd, Reply));
  EXPECT_EQ(Reply.Type, MsgType::Error);

  M.Type = MsgType::Bye;
  sendMessage(*ClientEnd, M);
  Server.join();
  EXPECT_EQ(Stats.HelloRejects, 1u);
  EXPECT_EQ(Stats.answered(), 0u);
}

TEST(Serve, ServeModelReportsServedVersusDegraded) {
  // Satellite fix: serveModel's return value breaks answers down into
  // real Modifier replies vs degraded ("no model") replies.
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  ModelRegistry R;
  R.install(makeModelSet(100));
  RegistryBackend Backend(R);
  InProcessPipe *Raw = ServerEnd.release();
  ServeStats Stats;
  std::thread Server([&, Raw] {
    Stats = serveModel(*Raw, Backend);
    delete Raw;
  });

  ModelClient Client(*ClientEnd);
  ASSERT_TRUE(Client.hello());
  // 3 covered requests, 2 uncovered (Scorching has no model).
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_TRUE(Client.requestModifier(OptLevel::Warm, uniqueFeatures(1, I))
                    .has_value());
  for (unsigned I = 0; I < 2; ++I)
    EXPECT_FALSE(
        Client.requestModifier(OptLevel::Scorching, uniqueFeatures(1, I))
            .has_value());
  Client.bye();
  Server.join();

  EXPECT_EQ(Stats.Served, 3u);
  EXPECT_EQ(Stats.Degraded, 2u);
  EXPECT_EQ(Stats.answered(), 5u);
  EXPECT_EQ(Stats.HelloRejects, 0u);
}

TEST(Serve, PredictionCacheLruAndVersionIsolation) {
  PredictionCache C(/*Capacity=*/2);
  std::optional<uint64_t> A;
  EXPECT_FALSE(C.lookup(1, OptLevel::Warm, 111, A));
  C.insert(1, OptLevel::Warm, 111, 42);
  C.insert(1, OptLevel::Warm, 222, std::nullopt); // negative answers cache
  ASSERT_TRUE(C.lookup(1, OptLevel::Warm, 111, A));
  EXPECT_EQ(A, std::optional<uint64_t>(42));
  ASSERT_TRUE(C.lookup(1, OptLevel::Warm, 222, A));
  EXPECT_FALSE(A.has_value());

  // A new model version never sees the old version's entries.
  EXPECT_FALSE(C.lookup(2, OptLevel::Warm, 111, A));

  // Touch 111 (most recent), insert a third key: 222 is the LRU victim.
  ASSERT_TRUE(C.lookup(1, OptLevel::Warm, 111, A));
  C.insert(1, OptLevel::Warm, 333, 99);
  EXPECT_TRUE(C.lookup(1, OptLevel::Warm, 111, A));
  EXPECT_FALSE(C.lookup(1, OptLevel::Warm, 222, A));
  PredictionCache::Stats S = C.stats();
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_GE(S.Evictions, 1u);

  // Capacity 0 disables caching entirely.
  PredictionCache Off(0);
  Off.insert(1, OptLevel::Warm, 1, 1);
  EXPECT_FALSE(Off.lookup(1, OptLevel::Warm, 1, A));
}

TEST(Serve, BundleRoundTripPreservesPredictions) {
  ModelSet Set = makeModelSet(700);
  std::string Text = ModelRegistry::bundleText(Set);
  ModelSet Parsed;
  std::string Error;
  ASSERT_TRUE(ModelRegistry::parseBundle(Text, Parsed, &Error)) << Error;

  ServeModel A, B;
  A.Set = Set;
  B.Set = Parsed;
  for (unsigned I = 0; I < 20; ++I) {
    OptLevel Level = (OptLevel)(I % 3);
    FeatureVector F = uniqueFeatures(8, I);
    EXPECT_EQ(A.predict(Level, F), B.predict(Level, F)) << "request " << I;
  }
  // Uncovered levels stay uncovered through the round trip.
  EXPECT_FALSE(Parsed.Levels[(unsigned)OptLevel::Scorching].Valid);

  // Any truncation point is detected (missing @end, torn sections, bad
  // header) — a torn write can never install.
  for (size_t Cut : {Text.size() - 5, Text.size() / 2, (size_t)10}) {
    ModelSet T;
    EXPECT_FALSE(ModelRegistry::parseBundle(Text.substr(0, Cut), T))
        << "cut at " << Cut;
  }
}
