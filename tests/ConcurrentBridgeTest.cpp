//===- tests/ConcurrentBridgeTest.cpp - shared-client thread safety -------===//
//
// The async pipeline's workers share ONE ResilientModelClient. The bridge
// protocol is strictly request/reply over a single connection, so the
// client serializes all public entry points on an internal mutex —
// interleaved frames from two unserialized threads would corrupt the
// stream. These tests drive a shared client from several threads (single
// requests, batches, and a mix) against an in-process model service and
// check that every answer is correct and the counters stay consistent.
// The suite runs under ThreadSanitizer via scripts/tier1.sh.
//
//===----------------------------------------------------------------------===//

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "bridge/Transports.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace jitml;

namespace {

/// Deterministic backend: modifier = level + sum(features); Scorching is
/// an uncovered level (Error reply → client-side fallback).
class SumBackend : public ModelBackend {
public:
  std::optional<uint64_t>
  predictModifier(OptLevel Level,
                  const std::vector<double> &RawFeatures) override {
    if (Level == OptLevel::Scorching)
      return std::nullopt;
    uint64_t Sum = (uint64_t)Level;
    for (double V : RawFeatures)
      Sum += (uint64_t)V;
    return Sum;
  }
};

/// The answer SumBackend gives for (Level, F).
uint64_t expectedBits(OptLevel Level, const FeatureVector &F) {
  uint64_t Sum = (uint64_t)Level;
  for (unsigned I = 0; I < NumFeatures; ++I)
    Sum += F.get(I);
  return Sum;
}

/// A feature vector unique to (Tag, I): no accidental cache hits between
/// threads unless a test wants them.
FeatureVector uniqueFeatures(unsigned Tag, unsigned I) {
  FeatureVector F;
  F.set(0, 1 + Tag);
  F.set(1, I);
  F.set(2, Tag * 1000 + I);
  return F;
}

struct ServedClient {
  std::unique_ptr<ResilientModelClient> Client;
  std::thread Server;
  SumBackend Backend;

  explicit ServedClient(size_t CacheCapacity) {
    auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
    InProcessPipe *Raw = ServerEnd.release();
    Server = std::thread([Raw, this] {
      serveModel(*Raw, Backend);
      delete Raw;
    });
    ResilientModelClient::Config Cfg;
    Cfg.RequestTimeoutMs = 10000; // generous: sanitizer builds are slow
    Cfg.CacheCapacity = CacheCapacity;
    Client = std::make_unique<ResilientModelClient>(std::move(ClientEnd),
                                                    Cfg);
  }
  ~ServedClient() {
    Client->bye(); // server sees Bye (or EOF) and exits
    Server.join();
  }
};

} // namespace

TEST(ConcurrentBridge, SharedClientParallelSingleRequests) {
  ServedClient S(/*CacheCapacity=*/0); // every request hits the wire
  constexpr unsigned NumThreads = 4;
  constexpr unsigned PerThread = 40;

  std::vector<std::thread> Threads;
  std::vector<unsigned> Wrong(NumThreads, 0);
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I) {
        FeatureVector F = uniqueFeatures(T, I);
        OptLevel Level = (OptLevel)(I % 3); // covered levels only
        std::optional<uint64_t> Got = S.Client->requestModifier(Level, F);
        if (!Got || *Got != expectedBits(Level, F))
          ++Wrong[T];
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (unsigned T = 0; T < NumThreads; ++T)
    EXPECT_EQ(Wrong[T], 0u) << "thread " << T;

  BridgeCounters C = S.Client->counters();
  EXPECT_EQ(C.Requests, (uint64_t)NumThreads * PerThread);
  EXPECT_EQ(C.WireRequests, (uint64_t)NumThreads * PerThread);
  // Serialization means no torn frames: nothing timed out, nothing was
  // retried, nothing fell back.
  EXPECT_EQ(C.Timeouts, 0u);
  EXPECT_EQ(C.Retries, 0u);
  EXPECT_EQ(C.Fallbacks, 0u);
  EXPECT_TRUE(S.Client->usable());
}

TEST(ConcurrentBridge, BatchAnswersEveryEntryInOrder) {
  ServedClient S(/*CacheCapacity=*/4096);
  std::vector<ResilientModelClient::BatchRequest> Items;
  for (unsigned I = 0; I < 10; ++I)
    Items.push_back({(OptLevel)(I % 3), uniqueFeatures(7, I)});

  std::vector<std::optional<uint64_t>> Got =
      S.Client->requestModifierBatch(Items);
  ASSERT_EQ(Got.size(), Items.size());
  for (unsigned I = 0; I < Items.size(); ++I) {
    ASSERT_TRUE(Got[I].has_value()) << "entry " << I;
    EXPECT_EQ(*Got[I], expectedBits(Items[I].Level, Items[I].Features))
        << "entry " << I;
  }
  BridgeCounters C = S.Client->counters();
  EXPECT_EQ(C.BatchRequests, 1u);
  EXPECT_EQ(C.BatchItems, 10u);
  EXPECT_EQ(C.WireRequests, 1u); // the whole batch in one round trip

  // The same batch again is answered entirely from the prediction cache.
  std::vector<std::optional<uint64_t>> Again =
      S.Client->requestModifierBatch(Items);
  EXPECT_EQ(Again, Got);
  C = S.Client->counters();
  EXPECT_EQ(C.WireRequests, 1u);
  EXPECT_EQ(C.CacheHits, 10u);
}

TEST(ConcurrentBridge, BatchDegradesUncoveredEntriesIndividually) {
  ServedClient S(/*CacheCapacity=*/0);
  std::vector<ResilientModelClient::BatchRequest> Items;
  for (unsigned I = 0; I < 6; ++I)
    Items.push_back({I % 2 ? OptLevel::Scorching : OptLevel::Warm,
                     uniqueFeatures(3, I)});

  std::vector<std::optional<uint64_t>> Got =
      S.Client->requestModifierBatch(Items);
  ASSERT_EQ(Got.size(), Items.size());
  for (unsigned I = 0; I < Items.size(); ++I) {
    if (I % 2) {
      // Uncovered level: that entry alone falls back to the base plan.
      EXPECT_FALSE(Got[I].has_value()) << "entry " << I;
    } else {
      ASSERT_TRUE(Got[I].has_value()) << "entry " << I;
      EXPECT_EQ(*Got[I], expectedBits(Items[I].Level, Items[I].Features));
    }
  }
  BridgeCounters C = S.Client->counters();
  EXPECT_EQ(C.Fallbacks, 3u);
  EXPECT_EQ(C.WireRequests, 1u); // degradation did not cost extra trips
}

TEST(ConcurrentBridge, MixedSingleAndBatchCallersGetCorrectAnswers) {
  ServedClient S(/*CacheCapacity=*/4096);
  constexpr unsigned PerThread = 25;
  std::vector<std::thread> Threads;
  std::vector<unsigned> Wrong(4, 0);

  // Two threads issuing single requests...
  for (unsigned T = 0; T < 2; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I) {
        FeatureVector F = uniqueFeatures(T, I);
        std::optional<uint64_t> Got =
            S.Client->requestModifier(OptLevel::Hot, F);
        if (!Got || *Got != expectedBits(OptLevel::Hot, F))
          ++Wrong[T];
      }
    });
  // ...racing two threads issuing batches.
  for (unsigned T = 2; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; I += 5) {
        std::vector<ResilientModelClient::BatchRequest> Items;
        for (unsigned J = 0; J < 5; ++J)
          Items.push_back({OptLevel::Warm, uniqueFeatures(T, I + J)});
        std::vector<std::optional<uint64_t>> Got =
            S.Client->requestModifierBatch(Items);
        for (unsigned J = 0; J < Items.size(); ++J)
          if (!Got[J] ||
              *Got[J] != expectedBits(Items[J].Level, Items[J].Features))
            ++Wrong[T];
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (unsigned T = 0; T < 4; ++T)
    EXPECT_EQ(Wrong[T], 0u) << "thread " << T;

  BridgeCounters C = S.Client->counters();
  EXPECT_EQ(C.Fallbacks, 0u);
  EXPECT_EQ(C.Timeouts, 0u);
  EXPECT_TRUE(S.Client->usable());
}
