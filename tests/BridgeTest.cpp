//===- tests/BridgeTest.cpp - protocol + transport tests ------------------===//

#include "bridge/ModelService.h"
#include "bridge/Transports.h"

#include <gtest/gtest.h>

#include <thread>
#include <unistd.h>

using namespace jitml;

namespace {

/// Echo-style backend: modifier = sum of features + level.
class StubBackend : public ModelBackend {
public:
  std::optional<uint64_t>
  predictModifier(OptLevel Level,
                  const std::vector<double> &RawFeatures) override {
    if (FailLevels && Level == OptLevel::Scorching)
      return std::nullopt;
    uint64_t Sum = (uint64_t)Level;
    for (double V : RawFeatures)
      Sum += (uint64_t)V;
    ++Served;
    return Sum;
  }
  bool FailLevels = true;
  uint64_t Served = 0;
};

} // namespace

TEST(Message, RoundTripAllTypes) {
  auto [A, B] = InProcessPipe::makePair();
  {
    Message M;
    M.Type = MsgType::Hello;
    M.Version = 1;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Hello);
    EXPECT_EQ(Out.Version, 1);
  }
  {
    Message M;
    M.Type = MsgType::Features;
    M.Level = OptLevel::Hot;
    for (unsigned I = 0; I < NumFeatures; ++I)
      M.FeatureValues.push_back((double)I * 0.25);
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Features);
    EXPECT_EQ(Out.Level, OptLevel::Hot);
    ASSERT_EQ(Out.FeatureValues.size(), (size_t)NumFeatures);
    EXPECT_DOUBLE_EQ(Out.FeatureValues[70], 70 * 0.25);
  }
  {
    Message M;
    M.Type = MsgType::Modifier;
    M.ModifierBits = 0x123456789abcdefULL;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.ModifierBits, 0x123456789abcdefULL);
  }
  {
    Message M;
    M.Type = MsgType::Error;
    M.Text = "no model for level";
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Error);
    EXPECT_EQ(Out.Text, "no model for level");
  }
  {
    Message M;
    M.Type = MsgType::Bye;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Bye);
  }
}

TEST(Message, RejectsMalformedFrames) {
  auto [A, B] = InProcessPipe::makePair();
  // Oversized length prefix.
  uint8_t Huge[4] = {0xff, 0xff, 0xff, 0x7f};
  A->writeBytes(Huge, 4);
  Message Out;
  EXPECT_FALSE(recvMessage(*B, Out));
  // Bad level inside a Features frame.
  auto [C, D] = InProcessPipe::makePair();
  uint8_t Frame[] = {4, 0, 0, 0, (uint8_t)MsgType::Features, 9, 0, 0};
  C->writeBytes(Frame, sizeof(Frame));
  EXPECT_FALSE(recvMessage(*D, Out));
}

TEST(Message, EofOnClose) {
  auto [A, B] = InProcessPipe::makePair();
  A->close();
  Message Out;
  EXPECT_FALSE(recvMessage(*B, Out));
}

TEST(Service, InProcessClientServerSession) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  std::thread Server([&] { serveModel(*ServerEnd, Backend); });
  ModelClient Client(*ClientEnd);
  ASSERT_TRUE(Client.hello());

  FeatureVector F;
  F.set(CF_TreeNodes, 40);
  F.set(CF_Arguments, 2);
  std::optional<uint64_t> Bits =
      Client.requestModifier(OptLevel::Warm, F);
  ASSERT_TRUE(Bits.has_value());
  EXPECT_EQ(*Bits, 42u + (uint64_t)OptLevel::Warm);

  // Uncovered level: server answers Error, client maps to nullopt.
  EXPECT_FALSE(Client.requestModifier(OptLevel::Scorching, F).has_value());

  Client.bye();
  Server.join();
  EXPECT_EQ(Backend.Served, 1u);
}

TEST(Service, NamedPipeSession) {
  char Template[] = "/tmp/jitml_test_fifo_XXXXXX";
  std::string Dir = mkdtemp(Template);
  std::string ToServer = Dir + "/c2s";
  std::string ToClient = Dir + "/s2c";
  ASSERT_TRUE(FifoTransport::createPipes(ToServer, ToClient));

  StubBackend Backend;
  std::thread Server([&] {
    auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/true);
    ASSERT_NE(T, nullptr);
    serveModel(*T, Backend);
  });
  auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/false);
  ASSERT_NE(T, nullptr);
  ModelClient Client(*T);
  ASSERT_TRUE(Client.hello());
  FeatureVector F;
  F.set(CF_TreeNodes, 7);
  std::optional<uint64_t> Bits = Client.requestModifier(OptLevel::Cold, F);
  ASSERT_TRUE(Bits.has_value());
  EXPECT_EQ(*Bits, 7u);
  Client.bye();
  Server.join();
  ::unlink(ToServer.c_str());
  ::unlink(ToClient.c_str());
  ::rmdir(Dir.c_str());
}

TEST(Service, ManySequentialRequests) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  Backend.FailLevels = false;
  std::thread Server([&] { serveModel(*ServerEnd, Backend); });
  ModelClient Client(*ClientEnd);
  ASSERT_TRUE(Client.hello());
  for (unsigned I = 0; I < 200; ++I) {
    FeatureVector F;
    F.set(CF_TreeNodes, I);
    auto Bits = Client.requestModifier(OptLevel::Cold, F);
    ASSERT_TRUE(Bits.has_value());
    EXPECT_EQ(*Bits, (uint64_t)I);
  }
  Client.bye();
  Server.join();
  EXPECT_EQ(Backend.Served, 200u);
}
