//===- tests/BridgeTest.cpp - protocol + transport tests ------------------===//

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "bridge/Transports.h"
#include "jitml/LearnedStrategy.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <unistd.h>

using namespace jitml;

namespace {

/// Echo-style backend: modifier = sum of features + level.
class StubBackend : public ModelBackend {
public:
  std::optional<uint64_t>
  predictModifier(OptLevel Level,
                  const std::vector<double> &RawFeatures) override {
    if (FailLevels && Level == OptLevel::Scorching)
      return std::nullopt;
    uint64_t Sum = (uint64_t)Level;
    for (double V : RawFeatures)
      Sum += (uint64_t)V;
    ++Served;
    return Sum;
  }
  bool FailLevels = true;
  uint64_t Served = 0;
};

/// Sends one raw frame: length prefix + type byte + payload bytes.
void writeRawFrame(Transport &T, uint8_t Type,
                   const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Frame;
  uint32_t Size = (uint32_t)Payload.size() + 1;
  for (int I = 0; I < 4; ++I)
    Frame.push_back((uint8_t)(Size >> (8 * I)));
  Frame.push_back(Type);
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  ASSERT_TRUE(T.writeBytes(Frame.data(), Frame.size()));
}

double elapsedMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

TEST(Message, RoundTripAllTypes) {
  auto [A, B] = InProcessPipe::makePair();
  {
    Message M;
    M.Type = MsgType::Hello;
    M.Version = 1;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Hello);
    EXPECT_EQ(Out.Version, 1);
  }
  {
    Message M;
    M.Type = MsgType::Features;
    M.Level = OptLevel::Hot;
    for (unsigned I = 0; I < NumFeatures; ++I)
      M.FeatureValues.push_back((double)I * 0.25);
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Features);
    EXPECT_EQ(Out.Level, OptLevel::Hot);
    ASSERT_EQ(Out.FeatureValues.size(), (size_t)NumFeatures);
    EXPECT_DOUBLE_EQ(Out.FeatureValues[70], 70 * 0.25);
  }
  {
    Message M;
    M.Type = MsgType::Modifier;
    M.ModifierBits = 0x123456789abcdefULL;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.ModifierBits, 0x123456789abcdefULL);
  }
  {
    Message M;
    M.Type = MsgType::Error;
    M.Text = "no model for level";
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Error);
    EXPECT_EQ(Out.Text, "no model for level");
  }
  {
    Message M;
    M.Type = MsgType::Bye;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    ASSERT_TRUE(recvMessage(*B, Out));
    EXPECT_EQ(Out.Type, MsgType::Bye);
  }
}

TEST(Message, RejectsMalformedFrames) {
  auto [A, B] = InProcessPipe::makePair();
  // Oversized length prefix.
  uint8_t Huge[4] = {0xff, 0xff, 0xff, 0x7f};
  A->writeBytes(Huge, 4);
  Message Out;
  EXPECT_FALSE(recvMessage(*B, Out));
  // Bad level inside a Features frame.
  auto [C, D] = InProcessPipe::makePair();
  uint8_t Frame[] = {4, 0, 0, 0, (uint8_t)MsgType::Features, 9, 0, 0};
  C->writeBytes(Frame, sizeof(Frame));
  EXPECT_FALSE(recvMessage(*D, Out));
}

TEST(Message, EofOnClose) {
  auto [A, B] = InProcessPipe::makePair();
  A->close();
  Message Out;
  EXPECT_FALSE(recvMessage(*B, Out));
}

TEST(Service, InProcessClientServerSession) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  std::thread Server([&] { serveModel(*ServerEnd, Backend); });
  ModelClient Client(*ClientEnd);
  ASSERT_TRUE(Client.hello());

  FeatureVector F;
  F.set(CF_TreeNodes, 40);
  F.set(CF_Arguments, 2);
  std::optional<uint64_t> Bits =
      Client.requestModifier(OptLevel::Warm, F);
  ASSERT_TRUE(Bits.has_value());
  EXPECT_EQ(*Bits, 42u + (uint64_t)OptLevel::Warm);

  // Uncovered level: server answers Error, client maps to nullopt.
  EXPECT_FALSE(Client.requestModifier(OptLevel::Scorching, F).has_value());

  Client.bye();
  Server.join();
  EXPECT_EQ(Backend.Served, 1u);
}

TEST(Service, NamedPipeSession) {
  char Template[] = "/tmp/jitml_test_fifo_XXXXXX";
  std::string Dir = mkdtemp(Template);
  std::string ToServer = Dir + "/c2s";
  std::string ToClient = Dir + "/s2c";
  ASSERT_TRUE(FifoTransport::createPipes(ToServer, ToClient));

  StubBackend Backend;
  std::thread Server([&] {
    auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/true);
    ASSERT_NE(T, nullptr);
    serveModel(*T, Backend);
  });
  auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/false);
  ASSERT_NE(T, nullptr);
  ModelClient Client(*T);
  ASSERT_TRUE(Client.hello());
  FeatureVector F;
  F.set(CF_TreeNodes, 7);
  std::optional<uint64_t> Bits = Client.requestModifier(OptLevel::Cold, F);
  ASSERT_TRUE(Bits.has_value());
  EXPECT_EQ(*Bits, 7u);
  Client.bye();
  Server.join();
  ::unlink(ToServer.c_str());
  ::unlink(ToClient.c_str());
  ::rmdir(Dir.c_str());
}

TEST(Service, ManySequentialRequests) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  Backend.FailLevels = false;
  std::thread Server([&] { serveModel(*ServerEnd, Backend); });
  ModelClient Client(*ClientEnd);
  ASSERT_TRUE(Client.hello());
  for (unsigned I = 0; I < 200; ++I) {
    FeatureVector F;
    F.set(CF_TreeNodes, I);
    auto Bits = Client.requestModifier(OptLevel::Cold, F);
    ASSERT_TRUE(Bits.has_value());
    EXPECT_EQ(*Bits, (uint64_t)I);
  }
  Client.bye();
  Server.join();
  EXPECT_EQ(Backend.Served, 200u);
}

//===----------------------------------------------------------------------===//
// Deadline-aware transports
//===----------------------------------------------------------------------===//

TEST(Transport, ByteQueueTimeoutConsumesNothing) {
  ByteQueue Q;
  uint8_t Byte = 7;
  Q.push(&Byte, 1);
  uint8_t Buf[4];
  // Not enough bytes: times out without consuming the one that is there.
  EXPECT_EQ(Q.popFor(Buf, 4, 20), IoStatus::Timeout);
  EXPECT_EQ(Q.popFor(Buf, 1, 20), IoStatus::Ok);
  EXPECT_EQ(Buf[0], 7);
  Q.close();
  EXPECT_EQ(Q.popFor(Buf, 1, 20), IoStatus::Closed);
}

TEST(Transport, RecvTimesOutOnSilentPeer) {
  auto [A, B] = InProcessPipe::makePair();
  (void)A;
  Message Out;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(recvMessageFor(*B, Out, 30), RecvStatus::Timeout);
  EXPECT_GE(elapsedMs(Start), 25.0);
  EXPECT_LT(elapsedMs(Start), 5000.0);
}

TEST(Transport, FifoReadTimesOutOnSilentPeer) {
  char Template[] = "/tmp/jitml_test_fifo_XXXXXX";
  std::string Dir = mkdtemp(Template);
  std::string ToServer = Dir + "/c2s";
  std::string ToClient = Dir + "/s2c";
  ASSERT_TRUE(FifoTransport::createPipes(ToServer, ToClient));
  std::unique_ptr<FifoTransport> ServerT;
  std::thread Server([&] {
    ServerT = FifoTransport::open(ToServer, ToClient, /*IsServer=*/true);
  });
  auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/false);
  Server.join();
  ASSERT_NE(T, nullptr);
  ASSERT_NE(ServerT, nullptr);
  uint8_t Buf[8];
  EXPECT_EQ(T->readBytesFor(Buf, 8, 30), IoStatus::Timeout);
  // Bytes already in the pipe are delivered within the deadline.
  uint8_t Data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(ServerT->writeBytes(Data, 8));
  EXPECT_EQ(T->readBytesFor(Buf, 8, 1000), IoStatus::Ok);
  EXPECT_EQ(Buf[7], 8);
  ServerT.reset(); // close both fds -> EOF on the client side
  EXPECT_EQ(T->readBytesFor(Buf, 1, 1000), IoStatus::Closed);
  ::unlink(ToServer.c_str());
  ::unlink(ToClient.c_str());
  ::rmdir(Dir.c_str());
}

//===----------------------------------------------------------------------===//
// Frame-level hardening
//===----------------------------------------------------------------------===//

TEST(Message, TruncatedFrameIsClosedNotHang) {
  auto [A, B] = InProcessPipe::makePair();
  // Header promises 10 payload bytes; only 3 ever arrive.
  uint8_t Partial[] = {10, 0, 0, 0, (uint8_t)MsgType::Error, 'h', 'i'};
  A->writeBytes(Partial, sizeof(Partial));
  A->close();
  Message Out;
  EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Closed);
}

TEST(Message, OversizeAndZeroLengthFramesAreFatal) {
  {
    auto [A, B] = InProcessPipe::makePair();
    uint8_t Huge[4] = {0xff, 0xff, 0xff, 0x7f};
    A->writeBytes(Huge, 4);
    Message Out;
    EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Closed);
  }
  {
    auto [A, B] = InProcessPipe::makePair();
    uint8_t Zero[4] = {0, 0, 0, 0};
    A->writeBytes(Zero, 4);
    Message Out;
    EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Closed);
  }
}

TEST(Message, UnknownTypeAndBadContentAreMalformedNotFatal) {
  auto [A, B] = InProcessPipe::makePair();
  Message Out;
  writeRawFrame(*A, /*Type=*/99, {1, 2, 3});
  EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Malformed);
  // Wrong-size Hello payload: frame consumed, stream still aligned.
  writeRawFrame(*A, (uint8_t)MsgType::Hello, {1, 2});
  EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Malformed);
  // The next well-formed message still decodes.
  Message M;
  M.Type = MsgType::Modifier;
  M.ModifierBits = 5;
  ASSERT_TRUE(sendMessage(*A, M));
  EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Ok);
  EXPECT_EQ(Out.ModifierBits, 5u);
}

TEST(Message, CountingTransportSeesFraming) {
  auto [A, B] = InProcessPipe::makePair();
  CountingTransport CA(*A), CB(*B);
  Message M;
  M.Type = MsgType::Modifier;
  M.ModifierBits = 1;
  ASSERT_TRUE(sendMessage(CA, M));
  Message Out;
  ASSERT_TRUE(recvMessage(CB, Out));
  // 4-byte length + 1-byte type + 8-byte modifier payload.
  EXPECT_EQ(CA.bytesSent(), 13u);
  EXPECT_EQ(CB.bytesReceived(), 13u);
}

//===----------------------------------------------------------------------===//
// Server-side protocol validation
//===----------------------------------------------------------------------===//

TEST(Service, RejectsWrongFeatureCountWithErrorReply) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  std::thread Server([&] { serveModel(*ServerEnd, Backend); });
  // Hand-craft a Features frame with only 3 components.
  std::vector<uint8_t> Payload;
  Payload.push_back(0); // level = cold
  Payload.push_back(3);
  Payload.push_back(0); // count u16le = 3
  Payload.resize(Payload.size() + 3 * 8, 0);
  writeRawFrame(*ClientEnd, (uint8_t)MsgType::Features, Payload);
  Message Reply;
  ASSERT_TRUE(recvMessage(*ClientEnd, Reply));
  EXPECT_EQ(Reply.Type, MsgType::Error);
  EXPECT_EQ(Reply.Text, "feature count mismatch");
  // The malformed request never reached the backend and the session
  // survives: a well-formed request still gets served.
  ModelClient Client(*ClientEnd);
  FeatureVector F;
  F.set(CF_TreeNodes, 4);
  auto Bits = Client.requestModifier(OptLevel::Cold, F);
  ASSERT_TRUE(Bits.has_value());
  EXPECT_EQ(*Bits, 4u);
  Client.bye();
  Server.join();
  EXPECT_EQ(Backend.Served, 1u);
}

TEST(Service, MalformedFrameGetsErrorReplyAndSessionSurvives) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  std::thread Server([&] { serveModel(*ServerEnd, Backend); });
  writeRawFrame(*ClientEnd, /*Type=*/42, {9, 9, 9});
  Message Reply;
  ASSERT_TRUE(recvMessage(*ClientEnd, Reply));
  EXPECT_EQ(Reply.Type, MsgType::Error);
  EXPECT_EQ(Reply.Text, "malformed frame");
  ModelClient Client(*ClientEnd);
  ASSERT_TRUE(Client.hello());
  Client.bye();
  Server.join();
}

//===----------------------------------------------------------------------===//
// ResilientModelClient: timeout, retry, fallback, cache
//===----------------------------------------------------------------------===//

namespace {

ResilientModelClient::Config fastConfig() {
  ResilientModelClient::Config C;
  C.RequestTimeoutMs = 50;
  C.MaxAttempts = 2;
  C.InitialBackoffMs = 1;
  return C;
}

/// Reads frames forever without ever answering — a hung model service.
void silentServer(Transport &T) {
  Message In;
  while (recvMessage(T, In))
    ;
}

} // namespace

TEST(Resilient, TimeoutThenFallbackWithinDeadline) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw] { silentServer(*ServerRaw); });
  ResilientModelClient Client(std::move(ClientEnd), fastConfig());
  FeatureVector F;
  F.set(CF_TreeNodes, 11);
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Client.requestModifier(OptLevel::Cold, F).has_value());
  // 2 attempts x 50ms + 1ms backoff, plus slack: far below a hang.
  EXPECT_LT(elapsedMs(Start), 2000.0);
  BridgeCounters C = Client.counters();
  EXPECT_GE(C.Timeouts, 1u);
  EXPECT_EQ(C.Fallbacks, 1u);
  EXPECT_FALSE(Client.usable()); // poisoned: no reconnect factory
  // Later requests fall back immediately without waiting for the timeout.
  Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Client.requestModifier(OptLevel::Warm, F).has_value());
  EXPECT_LT(elapsedMs(Start), 50.0);
  ServerRaw->close();
  Server.join();
}

TEST(Resilient, RetryReconnectsThroughFactory) {
  // First connection: a server that dies without answering. Second
  // connection: a healthy serveModel. The client must retry through the
  // factory and succeed.
  StubBackend Backend;
  Backend.FailLevels = false;
  std::vector<std::unique_ptr<InProcessPipe>> ServerEnds;
  std::vector<std::thread> Servers;
  int Connects = 0;
  auto Factory = [&]() -> std::unique_ptr<Transport> {
    auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
    ServerEnds.push_back(std::move(ServerEnd));
    InProcessPipe *Raw = ServerEnds.back().get();
    if (Connects++ == 0)
      Servers.emplace_back([Raw] { Raw->close(); }); // dead on arrival
    else
      Servers.emplace_back([Raw, &Backend] { serveModel(*Raw, Backend); });
    return std::move(ClientEnd);
  };
  ResilientModelClient Client(Factory, fastConfig());
  FeatureVector F;
  F.set(CF_TreeNodes, 21);
  auto Bits = Client.requestModifier(OptLevel::Cold, F);
  ASSERT_TRUE(Bits.has_value());
  EXPECT_EQ(*Bits, 21u);
  BridgeCounters C = Client.counters();
  EXPECT_EQ(C.Reconnects, 2u);
  EXPECT_GE(C.Retries, 1u);
  EXPECT_EQ(C.Fallbacks, 0u);
  Client.bye();
  for (auto &S : Servers)
    S.join();
}

TEST(Resilient, CacheSkipsRoundTripsAndCountsHits) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  Backend.FailLevels = false;
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw, &Backend] { serveModel(*ServerRaw, Backend); });
  ResilientModelClient Client(std::move(ClientEnd), fastConfig());
  FeatureVector F;
  F.set(CF_TreeNodes, 33);
  for (int I = 0; I < 5; ++I) {
    auto Bits = Client.requestModifier(OptLevel::Hot, F);
    ASSERT_TRUE(Bits.has_value());
    EXPECT_EQ(*Bits, 33u + (uint64_t)OptLevel::Hot);
  }
  // Same features at another level is a distinct cache entry.
  ASSERT_TRUE(Client.requestModifier(OptLevel::Warm, F).has_value());
  BridgeCounters C = Client.counters();
  EXPECT_EQ(C.Requests, 6u);
  EXPECT_EQ(C.WireRequests, 2u);
  EXPECT_EQ(C.CacheHits, 4u);
  EXPECT_GT(C.BytesSent, 0u);
  EXPECT_GT(C.BytesReceived, 0u);
  EXPECT_EQ(Backend.Served, 2u);
  Client.bye();
  Server.join();
}

TEST(Resilient, ErrorRepliesAreCachedAsFallbacks) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend; // FailLevels: scorching answers Error
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw, &Backend] { serveModel(*ServerRaw, Backend); });
  ResilientModelClient Client(std::move(ClientEnd), fastConfig());
  FeatureVector F;
  F.set(CF_TreeNodes, 9);
  EXPECT_FALSE(Client.requestModifier(OptLevel::Scorching, F).has_value());
  EXPECT_FALSE(Client.requestModifier(OptLevel::Scorching, F).has_value());
  BridgeCounters C = Client.counters();
  EXPECT_EQ(C.WireRequests, 1u); // second answer came from the cache
  EXPECT_EQ(C.ErrorReplies, 1u);
  EXPECT_EQ(C.CacheHits, 1u);
  EXPECT_EQ(C.Fallbacks, 2u);
  EXPECT_TRUE(Client.usable()); // an Error reply is not a failure
  Client.bye();
  Server.join();
}

//===----------------------------------------------------------------------===//
// VM-level degradation: the acceptance scenarios
//===----------------------------------------------------------------------===//

TEST(Resilient, VmCompletesCompilationWhenServiceDiesMidRun) {
  Program P;
  uint32_t Method = jitml::testing::addSumToN(P);
  ASSERT_TRUE(verifyProgram(P).ok());

  // A server that answers exactly one prediction, then drops dead.
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw] {
    Message In;
    uint64_t Answered = 0;
    while (recvMessage(*ServerRaw, In)) {
      Message Reply;
      if (In.Type == MsgType::Hello) {
        Reply.Type = MsgType::Hello;
        Reply.Version = 1;
      } else if (In.Type == MsgType::Features) {
        if (Answered++ > 0)
          break; // die mid-run without replying
        Reply.Type = MsgType::Modifier;
        Reply.ModifierBits = PlanModifier().raw();
      } else {
        break;
      }
      if (!sendMessage(*ServerRaw, Reply))
        break;
    }
    ServerRaw->close();
  });

  ResilientModelClient Client(std::move(ClientEnd), fastConfig());
  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  VM.setModifierHook(makeResilientHook(Client));

  auto Start = std::chrono::steady_clock::now();
  VM.compileMethod(Method, OptLevel::Cold);  // served by the model
  VM.compileMethod(Method, OptLevel::Warm);  // server dies: fallback
  VM.compileMethod(Method, OptLevel::Hot);   // poisoned: instant fallback
  EXPECT_LT(elapsedMs(Start), 5000.0) << "compilation must not hang";

  // All three compilations completed and the method still runs.
  EXPECT_NE(VM.nativeOf(Method), nullptr);
  ExecResult R = VM.invoke(Method, {Value::ofI(10)});
  ASSERT_FALSE(R.Exceptional);
  EXPECT_EQ(R.Ret.I, 45);
  EXPECT_EQ(VM.stats().Compilations, 3u);

  BridgeCounters C = Client.counters();
  EXPECT_GE(C.Fallbacks, 1u);
  EXPECT_GE(C.Timeouts + C.Fallbacks, 2u);
  Server.join();
}

TEST(Resilient, RepeatedCompilationsHitTheCache) {
  Program P;
  uint32_t Method = jitml::testing::addSumToN(P);
  ASSERT_TRUE(verifyProgram(P).ok());

  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  Backend.FailLevels = false;
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw, &Backend] { serveModel(*ServerRaw, Backend); });
  ResilientModelClient Client(std::move(ClientEnd), fastConfig());
  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  VM.setModifierHook(makeResilientHook(Client));

  // The collection mode's recompile-every-N policy re-sends the same
  // feature vector; only the first round trip should hit the wire.
  for (int I = 0; I < 8; ++I)
    VM.compileMethod(Method, OptLevel::Warm);

  BridgeCounters C = Client.counters();
  EXPECT_EQ(C.Requests, 8u);
  EXPECT_GT(C.CacheHits, 0u);
  EXPECT_LT(C.WireRequests, C.Requests);
  EXPECT_EQ(C.WireRequests, 1u);
  Client.bye();
  Server.join();
  EXPECT_EQ(Backend.Served, 1u);
}

TEST(Vm, ThrowingModifierHookFallsBackToBasePlan) {
  Program P;
  uint32_t Method = jitml::testing::addSumToN(P);
  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  VM.setModifierHook([](uint32_t, OptLevel, const FeatureVector &)
                         -> PlanModifier {
    throw std::runtime_error("model exploded");
  });
  VM.compileMethod(Method, OptLevel::Warm);
  EXPECT_NE(VM.nativeOf(Method), nullptr);
  EXPECT_EQ(VM.stats().HookFailures, 1u);
  EXPECT_EQ(VM.stats().NullModifierCompilations, 1u);
  ExecResult R = VM.invoke(Method, {Value::ofI(5)});
  ASSERT_FALSE(R.Exceptional);
  EXPECT_EQ(R.Ret.I, 10);
}

TEST(Resilient, CountersRenderAsTable) {
  BridgeCounters C;
  C.Requests = 3;
  C.CacheHits = 2;
  std::string Text = C.toText();
  EXPECT_NE(Text.find("requests"), std::string::npos);
  EXPECT_NE(Text.find("cacheHits"), std::string::npos);
}
