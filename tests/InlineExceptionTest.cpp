//===- tests/InlineExceptionTest.cpp - inlining x exceptions --------------===//
//
// The trickiest inliner obligations: a spliced callee must keep its own
// try regions working, its throws must still reach the caller's handlers,
// and the caller's handler scope must wrap the inlined body.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "il/ILGenerator.h"
#include "il/ILVerifier.h"
#include "opt/Optimizer.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

unsigned countCalls(const MethodIL &IL) {
  unsigned Count = 0;
  for (NodeId Id = 0; Id < IL.numNodes(); ++Id)
    if (IL.node(Id).Op == ILOp::Call)
      ++Count;
  // Over-approximates (dead nodes), so only use on freshly-inlined IL
  // where the caller had exactly one call.
  return Count;
}

} // namespace

TEST(InlineExceptions, CalleeWithOwnHandlerInlines) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  // callee(x): try { if (x < 0) throw; return x * 2; } catch { return -1 }
  MethodBuilder Callee(P, "callee", -1, MF_Static, {DataType::Int32},
                       DataType::Int32);
  {
    auto Handler = Callee.newLabel();
    auto Ok = Callee.newLabel();
    uint32_t Start = Callee.beginTry();
    Callee.load(0).ifZero(BcCond::Ge, Ok);
    Callee.newObject(Exc).throwRef();
    Callee.place(Ok);
    Callee.endTry(Start, Handler, (int32_t)Exc);
    Callee.load(0).constI(DataType::Int32, 2)
        .binop(BcOp::Mul, DataType::Int32);
    Callee.retValue(DataType::Int32);
    Callee.place(Handler);
    Callee.pop(DataType::Object);
    Callee.constI(DataType::Int32, -1).retValue(DataType::Int32);
  }
  uint32_t CalleeIdx = Callee.finish();

  MethodBuilder Caller(P, "caller", -1, MF_Static, {DataType::Int32},
                       DataType::Int32);
  Caller.load(0).call(CalleeIdx);
  Caller.constI(DataType::Int32, 100).binop(BcOp::Add, DataType::Int32);
  Caller.retValue(DataType::Int32);
  uint32_t CallerIdx = Caller.finish();
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();

  // Force the inline and check the splice is structurally sound.
  auto IL = generateIL(P, CallerIdx);
  PassContext Ctx(*IL);
  bool Inlined = runInlining(Ctx, /*CalleeNodeBudget=*/64,
                             /*GrowthBudget=*/256);
  EXPECT_TRUE(Inlined);
  EXPECT_EQ(countCalls(*IL), 0u);
  std::vector<std::string> Errors = verifyIL(*IL);
  ASSERT_TRUE(Errors.empty()) << Errors.front();

  // Semantics at every level (plans inline on their own).
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    EXPECT_EQ(runBothEngines(P, CallerIdx, 21, (OptLevel)L), 142);
    EXPECT_EQ(runBothEngines(P, CallerIdx, -3, (OptLevel)L), 99);
  }
}

TEST(InlineExceptions, CalleeThrowReachesCallerHandler) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  // callee(x): if (x == 0) throw new E; return x + 1;   (no local handler)
  MethodBuilder Callee(P, "callee", -1, MF_Static, {DataType::Int32},
                       DataType::Int32);
  {
    auto Ok = Callee.newLabel();
    Callee.load(0).ifZero(BcCond::Ne, Ok);
    Callee.newObject(Exc).throwRef();
    Callee.place(Ok);
    Callee.load(0).constI(DataType::Int32, 1)
        .binop(BcOp::Add, DataType::Int32);
    Callee.retValue(DataType::Int32);
  }
  uint32_t CalleeIdx = Callee.finish();

  // caller(x): try { return callee(x) * 10; } catch (E) { return -5; }
  MethodBuilder Caller(P, "caller", -1, MF_Static, {DataType::Int32},
                       DataType::Int32);
  {
    auto Handler = Caller.newLabel();
    auto Done = Caller.newLabel();
    uint32_t Start = Caller.beginTry();
    Caller.load(0).call(CalleeIdx);
    Caller.constI(DataType::Int32, 10).binop(BcOp::Mul, DataType::Int32);
    Caller.endTry(Start, Handler, (int32_t)Exc);
    Caller.gotoLabel(Done);
    Caller.place(Handler);
    Caller.pop(DataType::Object);
    Caller.constI(DataType::Int32, -5);
    Caller.place(Done);
    Caller.retValue(DataType::Int32);
  }
  uint32_t CallerIdx = Caller.finish();
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();

  // After inlining, the spliced throw must land in the caller's handler:
  // the inlined blocks inherit the caller block's handler scope.
  auto IL = generateIL(P, CallerIdx);
  PassContext Ctx(*IL);
  ASSERT_TRUE(runInlining(Ctx, 64, 256));
  ASSERT_TRUE(verifyIL(*IL).empty()) << verifyIL(*IL).front();
  bool SplicedBlockCovered = false;
  for (BlockId B = 0; B < IL->numBlocks(); ++B) {
    const Block &Blk = IL->block(B);
    if (!Blk.Reachable || Blk.Handlers.empty())
      continue;
    for (NodeId Root : Blk.Trees)
      if (IL->node(Root).Op == ILOp::Throw)
        SplicedBlockCovered = true;
  }
  EXPECT_TRUE(SplicedBlockCovered)
      << "inlined throw block lost the caller's handler scope";

  for (unsigned L = 0; L < NumOptLevels; ++L) {
    EXPECT_EQ(runBothEngines(P, CallerIdx, 4, (OptLevel)L), 50);
    EXPECT_EQ(runBothEngines(P, CallerIdx, 0, (OptLevel)L), -5);
  }
}

TEST(InlineExceptions, NestedInlineChainsKeepSemantics) {
  // a -> b -> c where c divides (can trap) and b adjusts; caller catches
  // the arithmetic trap two inline levels deep.
  Program P;
  MethodBuilder C(P, "c", -1, MF_Static,
                  {DataType::Int32, DataType::Int32}, DataType::Int32);
  C.load(0).load(1).binop(BcOp::Div, DataType::Int32);
  C.retValue(DataType::Int32);
  uint32_t CIdx = C.finish();

  MethodBuilder B(P, "b", -1, MF_Static,
                  {DataType::Int32, DataType::Int32}, DataType::Int32);
  B.load(0).load(1).call(CIdx);
  B.constI(DataType::Int32, 7).binop(BcOp::Add, DataType::Int32);
  B.retValue(DataType::Int32);
  uint32_t BIdx = B.finish();

  MethodBuilder A(P, "a", -1, MF_Static,
                  {DataType::Int32, DataType::Int32}, DataType::Int32);
  {
    auto Handler = A.newLabel();
    auto Done = A.newLabel();
    uint32_t Start = A.beginTry();
    A.load(0).load(1).call(BIdx);
    A.endTry(Start, Handler, -1); // catch-all: builtin traps too
    A.gotoLabel(Done);
    A.place(Handler);
    A.pop(DataType::Object);
    A.constI(DataType::Int32, -99);
    A.place(Done);
    A.retValue(DataType::Int32);
  }
  uint32_t AIdx = A.finish();
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();

  auto RunA = [&](int64_t X, int64_t Y, OptLevel L) {
    VirtualMachine::Config Interp;
    Interp.EnableJit = false;
    VirtualMachine IVM(P, Interp);
    ExecResult Ref = IVM.invoke(AIdx, {Value::ofI(X), Value::ofI(Y)});
    EXPECT_FALSE(Ref.Exceptional);
    VirtualMachine::Config Cfg;
    Cfg.Control.Enabled = false;
    VirtualMachine VM(P, Cfg);
    VM.compileMethod(AIdx, L);
    ExecResult Got = VM.invoke(AIdx, {Value::ofI(X), Value::ofI(Y)});
    EXPECT_FALSE(Got.Exceptional);
    EXPECT_EQ(Got.Ret.I, Ref.Ret.I);
    return Got.Ret.I;
  };
  for (OptLevel L : {OptLevel::Cold, OptLevel::VeryHot, OptLevel::Scorching}) {
    EXPECT_EQ(RunA(20, 5, L), 11);   // 20/5 + 7
    EXPECT_EQ(RunA(20, 0, L), -99);  // trap two inline levels deep
  }
}
