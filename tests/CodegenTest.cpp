//===- tests/CodegenTest.cpp - lowering and codegen pass tests ------------===//

#include "TestPrograms.h"

#include "codegen/CodeGenerator.h"
#include "il/ILGenerator.h"
#include "il/LoopInfo.h"
#include "opt/Optimizer.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

NativeMethod lower(Program &P, uint32_t Method,
                   std::initializer_list<TransformationKind> Options,
                   OptLevel Level = OptLevel::Warm) {
  auto IL = generateIL(P, Method);
  LoopInfo::annotateFrequencies(*IL);
  TransformSet Set;
  for (TransformationKind K : Options)
    Set.insert(K);
  return generateCode(*IL, Set, Level);
}

unsigned countNOps(const NativeMethod &M, NOp Op) {
  unsigned N = 0;
  for (const NativeBlock &B : M.Blocks)
    for (const NativeInst &I : B.Insts)
      if (I.Op == Op)
        ++N;
  return N;
}

} // namespace

TEST(Lowering, SharedNodesEmitOnce) {
  Program P;
  MethodBuilder MB(P, "share", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  // dup makes one multiply feed two adds: must lower to ONE Mul.
  MB.load(0).load(0).binop(BcOp::Mul, DataType::Int32);
  MB.dup(DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  NativeMethod Code = lower(P, M, {});
  EXPECT_EQ(countNOps(Code, NOp::Mul), 1u);
  EXPECT_EQ(runBothEngines(P, M, 6, OptLevel::Cold), 72);
}

TEST(Lowering, BranchSuccessorsMirrorIL) {
  Program P;
  MethodBuilder MB(P, "br", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  auto Else = MB.newLabel();
  MB.load(0).ifZero(BcCond::Lt, Else);
  MB.constI(DataType::Int32, 1).retValue(DataType::Int32);
  MB.place(Else);
  MB.constI(DataType::Int32, 2).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  NativeMethod Code = lower(P, M, {});
  const NativeBlock &Entry = Code.Blocks[Code.Entry];
  EXPECT_EQ(Entry.Insts.back().Op, NOp::Br);
  EXPECT_GE(Entry.SuccTaken, 0);
  EXPECT_GE(Entry.SuccFall, 0);
  EXPECT_NE(Entry.SuccTaken, Entry.SuccFall);
}

TEST(CodegenPass, CoalescingShrinksRegisterFile) {
  Program P;
  addConstKernel(P);
  NativeMethod Plain = lower(P, 0, {});
  NativeMethod Coalesced =
      lower(P, 0, {TransformationKind::RegisterCoalescing});
  EXPECT_LT(Coalesced.NumVRegs, Plain.NumVRegs);
  // And lowers per-block spill penalties.
  double PlainSpill = 0, CoalSpill = 0;
  for (const NativeBlock &B : Plain.Blocks)
    PlainSpill += B.SpillPenalty;
  for (const NativeBlock &B : Coalesced.Blocks)
    CoalSpill += B.SpillPenalty;
  EXPECT_LE(CoalSpill, PlainSpill);
}

TEST(CodegenPass, ConstantEncodingMarksSmallImmediates) {
  Program P;
  MethodBuilder MB(P, "imm", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).constI(DataType::Int32, 100).binop(BcOp::Add, DataType::Int32);
  MB.constI(DataType::Int32, 1 << 20)
      .binop(BcOp::Add, DataType::Int32); // too big to encode
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  NativeMethod Code = lower(P, M, {TransformationKind::ConstantEncoding});
  unsigned Encoded = 0, Plain = 0;
  for (const NativeBlock &B : Code.Blocks)
    for (const NativeInst &I : B.Insts)
      if (I.Op == NOp::ConstI)
        (I.hasFlag(NF_EncodedConst) ? Encoded : Plain) += 1;
  EXPECT_EQ(Encoded, 1u);
  EXPECT_EQ(Plain, 1u);
}

TEST(CodegenPass, PeepholeFusesCompareBranch) {
  Program P;
  MethodBuilder MB(P, "cmp", -1, MF_Static,
                   {DataType::Double, DataType::Double}, DataType::Int32);
  auto Gt = MB.newLabel();
  // cmp yields -1/0/1; branch tests it against zero: fusable.
  MB.load(0).load(1).cmp(DataType::Double);
  MB.ifZero(BcCond::Gt, Gt);
  MB.constI(DataType::Int32, 0).retValue(DataType::Int32);
  MB.place(Gt);
  MB.constI(DataType::Int32, 1).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  NativeMethod Plain = lower(P, M, {});
  NativeMethod Fused = lower(P, M, {TransformationKind::PeepholeOptimization});
  EXPECT_LE(Fused.totalInsts(), Plain.totalInsts());
  EXPECT_EQ(runBothEngines(P, M, 3, OptLevel::Cold), 0); // 3 > 3 false
}

TEST(CodegenPass, SchedulingPreservesSemantics) {
  Program P;
  uint32_t Kernel = addConstKernel(P);
  int64_t Expected = 0;
  for (int I = 0; I < 256; ++I)
    Expected += (2 * 4 + 11) + I * 3;
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  // Warm plan includes scheduling; compare against the interpreter.
  VM.compileMethod(Kernel, OptLevel::Warm);
  ExecResult R = VM.invoke(Kernel, {Value::ofI(2), Value::ofI(4)});
  EXPECT_EQ(R.Ret.I, Expected);
}

TEST(CodegenPass, ColdBlocksOutlinedLast) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  MethodBuilder MB(P, "cold", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  auto Handler = MB.newLabel();
  auto Done = MB.newLabel();
  uint32_t Start = MB.beginTry();
  auto NoThrow = MB.newLabel();
  MB.load(0).ifZero(BcCond::Ne, NoThrow);
  MB.newObject(Exc).throwRef();
  MB.place(NoThrow);
  MB.endTry(Start, Handler, (int32_t)Exc);
  MB.load(0).gotoLabel(Done);
  MB.place(Handler);
  MB.pop(DataType::Object);
  MB.constI(DataType::Int32, -1).gotoLabel(Done);
  MB.place(Done);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();

  auto IL = generateIL(P, M);
  LoopInfo::annotateFrequencies(*IL);
  PassContext Ctx(*IL);
  runTransformation(Ctx, TransformationKind::ColdBlockOutlining);
  TransformSet Set;
  NativeMethod Code = generateCode(*IL, Set, OptLevel::Hot);
  // Layout: once a cold block appears, everything after it is cold too.
  bool SeenCold = false;
  unsigned ColdCount = 0;
  for (uint32_t B : Code.Layout) {
    if (Code.Blocks[B].Cold) {
      SeenCold = true;
      ++ColdCount;
    } else {
      EXPECT_FALSE(SeenCold) << "warm block after cold in layout";
    }
  }
  EXPECT_GE(ColdCount, 1u); // the handler is cold
}

TEST(CodegenPass, LeafFlagOnlyForCallFreeMethods) {
  Program P = makeSumProgram(); // main calls sumToN
  NativeMethod Leaf =
      lower(P, 0, {TransformationKind::LeafRoutineOptimization});
  EXPECT_TRUE(Leaf.Leaf); // sumToN makes no calls
  NativeMethod Caller =
      lower(P, (uint32_t)P.entryMethod(),
            {TransformationKind::LeafRoutineOptimization});
  EXPECT_FALSE(Caller.Leaf);
  NativeMethod NoOpt = lower(P, 0, {});
  EXPECT_FALSE(NoOpt.Leaf); // option off
}

TEST(CostModel, FlagsReduceCosts) {
  const CostModel &CM = CostModel::defaults();
  NativeInst Check;
  Check.Op = NOp::NullChk;
  double Explicit = CM.instCost(Check);
  Check.Flags |= NF_ImplicitCheck;
  EXPECT_LT(CM.instCost(Check), Explicit);

  NativeInst Alloc;
  Alloc.Op = NOp::NewObj;
  double HeapCost = CM.instCost(Alloc);
  Alloc.Flags |= NF_StackAlloc;
  EXPECT_LT(CM.instCost(Alloc), HeapCost);

  NativeInst Load;
  Load.Op = NOp::LdElem;
  double Plain = CM.instCost(Load);
  Load.Flags |= NF_Prefetched;
  EXPECT_LT(CM.instCost(Load), Plain);

  NativeInst Throw;
  Throw.Op = NOp::ThrowR;
  double Slow = CM.instCost(Throw);
  Throw.Flags |= NF_FastThrow;
  EXPECT_LT(CM.instCost(Throw), Slow);
}

TEST(CostModel, ExtensionTypesCostMore) {
  const CostModel &CM = CostModel::defaults();
  NativeInst Mul;
  Mul.Op = NOp::Mul;
  Mul.T = DataType::Int32;
  double IntMul = CM.instCost(Mul);
  Mul.T = DataType::PackedDecimal;
  EXPECT_GT(CM.instCost(Mul), IntMul); // microcoded BCD
  Mul.T = DataType::LongDouble;
  EXPECT_GT(CM.instCost(Mul), IntMul);
}

TEST(CostModel, ICacheFactorKicksInAboveCapacity) {
  const CostModel &CM = CostModel::defaults();
  EXPECT_DOUBLE_EQ(CM.icacheFactor(10), 1.0);
  EXPECT_DOUBLE_EQ(CM.icacheFactor(CM.ICacheWarmCapacity), 1.0);
  EXPECT_GT(CM.icacheFactor(CM.ICacheWarmCapacity * 3), 1.2);
}

TEST(Disasm, NativePrinterShowsFlagsAndLayout) {
  Program P;
  addConstKernel(P);
  NativeMethod Code =
      lower(P, 0, {TransformationKind::ConstantEncoding});
  std::string Text = printNativeMethod(Code);
  EXPECT_NE(Text.find("[entry]"), std::string::npos);
  EXPECT_NE(Text.find("[encoded]"), std::string::npos);
}
