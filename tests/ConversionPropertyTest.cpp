//===- tests/ConversionPropertyTest.cpp - value-semantics properties ------===//
//
// Properties of the shared runtime value semantics (RuntimeOps.h) that the
// fold engine must agree with: folding a constant expression yields
// exactly what the runtime computes. The fold engine normalizes with its
// own copy of the wrap-around rules, so this differential property guards
// against the two drifting apart.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "il/ILGenerator.h"
#include "opt/Optimizer.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

/// Builds `return (a <op> b)` over constants and returns (folded value,
/// runtime value) for comparison.
void checkFoldAgainstRuntime(BcOp Op, DataType T, int64_t A, int64_t B) {
  Program P;
  MethodBuilder MB(P, "k", -1, MF_Static, {}, T);
  MB.constI(T, A).constI(T, B).binop(Op, T).retValue(T);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());

  // Runtime value from the interpreter.
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  ExecResult R = VM.invoke(M, {});
  ASSERT_FALSE(R.Exceptional);

  // Folded value from the optimizer.
  auto IL = generateIL(P, M);
  PassContext Ctx(*IL);
  runConstantFolding(Ctx);
  const Node &Ret = IL->node(IL->block(IL->entryBlock()).Trees.back());
  const Node &V = IL->node(Ret.Kids[0]);
  ASSERT_EQ(V.Op, ILOp::Const)
      << bcOpName(Op) << " did not fold for " << A << "," << B;
  EXPECT_EQ(V.ConstI, R.Ret.I)
      << bcOpName(Op) << "(" << A << ", " << B << ") type "
      << dataTypeName(T);
}

} // namespace

class FoldRuntimeAgreement
    : public ::testing::TestWithParam<std::tuple<BcOp, DataType>> {};

TEST_P(FoldRuntimeAgreement, RandomConstantsAgree) {
  auto [Op, T] = GetParam();
  Rng R((uint64_t)Op * 131 + (uint64_t)T);
  for (int Trial = 0; Trial < 40; ++Trial) {
    int64_t A = (int64_t)R.next();
    int64_t B = (int64_t)R.next();
    // Keep shift amounts conventional and divisors nonzero.
    if (Op == BcOp::Shl || Op == BcOp::Shr)
      B &= 31;
    if ((Op == BcOp::Div || Op == BcOp::Rem) && B == 0)
      B = 3;
    // Narrow the inputs into the type's own range sometimes, leave them
    // wild otherwise (the wrap rules must normalize either way).
    if (R.nextBool(0.5)) {
      A = (int32_t)A;
      B = (int32_t)B;
    }
    checkFoldAgainstRuntime(Op, T, A, B);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndTypes, FoldRuntimeAgreement,
    ::testing::Combine(
        ::testing::Values(BcOp::Add, BcOp::Sub, BcOp::Mul, BcOp::Div,
                          BcOp::Rem, BcOp::And, BcOp::Or, BcOp::Xor,
                          BcOp::Shl, BcOp::Shr),
        ::testing::Values(DataType::Int8, DataType::Char, DataType::Int16,
                          DataType::Int32, DataType::Int64)),
    [](const auto &Info) {
      return std::string(bcOpName(std::get<0>(Info.param))) + "_" +
             dataTypeName(std::get<1>(Info.param));
    });
