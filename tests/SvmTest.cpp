//===- tests/SvmTest.cpp - SVM solver tests -------------------------------===//

#include "svm/KernelModel.h"
#include "svm/Trainer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace jitml;

namespace {

/// Gaussian blobs: one cluster per class at distinct corners of the unit
/// cube; linearly separable with margin.
std::vector<NormalizedInstance> makeBlobs(unsigned Classes, unsigned PerClass,
                                          unsigned Dims, double Spread,
                                          uint64_t Seed) {
  Rng R(Seed);
  std::vector<NormalizedInstance> Data;
  for (unsigned C = 0; C < Classes; ++C) {
    // Center: bits of C pick 0.15 / 0.85 per dimension.
    std::vector<double> Center(Dims, 0.5);
    for (unsigned D = 0; D < Dims; ++D)
      Center[D] = ((C >> (D % 8)) & 1) ? 0.85 : 0.15;
    for (unsigned I = 0; I < PerClass; ++I) {
      NormalizedInstance N;
      N.Label = (int32_t)C + 1;
      N.Components.resize(Dims);
      for (unsigned D = 0; D < Dims; ++D) {
        double V = Center[D] + Spread * R.nextGaussian();
        N.Components[D] = std::clamp(V, 0.0, 1.0);
      }
      Data.push_back(std::move(N));
    }
  }
  return Data;
}

/// The classic linearly-inseparable XOR layout in 2D.
std::vector<NormalizedInstance> makeXor(unsigned PerQuadrant,
                                        uint64_t Seed) {
  Rng R(Seed);
  std::vector<NormalizedInstance> Data;
  for (unsigned Q = 0; Q < 4; ++Q) {
    double X = (Q & 1) ? 0.8 : 0.2;
    double Y = (Q & 2) ? 0.8 : 0.2;
    int32_t Label = ((Q & 1) ^ ((Q >> 1) & 1)) + 1;
    for (unsigned I = 0; I < PerQuadrant; ++I) {
      NormalizedInstance N;
      N.Label = Label;
      N.Components = {std::clamp(X + 0.05 * R.nextGaussian(), 0.0, 1.0),
                      std::clamp(Y + 0.05 * R.nextGaussian(), 0.0, 1.0)};
      Data.push_back(std::move(N));
    }
  }
  return Data;
}

} // namespace

TEST(CrammerSinger, SeparatesLinearBlobs) {
  auto Data = makeBlobs(4, 40, 8, 0.04, 1);
  TrainOptions TO;
  TrainReport Report;
  LinearModel M = trainCrammerSinger(Data, TO, &Report);
  EXPECT_EQ(M.numClasses(), 4u);
  EXPECT_EQ(M.numFeatures(), 8u);
  EXPECT_GE(Report.TrainAccuracy, 0.99);
}

TEST(CrammerSinger, ManyClasses) {
  auto Data = makeBlobs(16, 15, 10, 0.03, 2);
  TrainOptions TO;
  TrainReport Report;
  LinearModel M = trainCrammerSinger(Data, TO, &Report);
  EXPECT_GE(Report.TrainAccuracy, 0.95);
  (void)M;
}

TEST(CrammerSinger, GeneralizesToHeldOutPoints) {
  auto Train = makeBlobs(4, 50, 6, 0.05, 3);
  auto Test = makeBlobs(4, 30, 6, 0.05, 99); // same clusters, new noise
  LinearModel M = trainCrammerSinger(Train, TrainOptions());
  EXPECT_GE(modelAccuracy(M, Test), 0.95);
}

TEST(CrammerSinger, DeterministicForSeed) {
  auto Data = makeBlobs(3, 30, 5, 0.05, 4);
  TrainOptions TO;
  LinearModel A = trainCrammerSinger(Data, TO);
  LinearModel B = trainCrammerSinger(Data, TO);
  for (unsigned C = 0; C < A.numClasses(); ++C)
    for (unsigned F = 0; F < A.numFeatures(); ++F)
      EXPECT_DOUBLE_EQ(A.weight(C, F), B.weight(C, F));
}

TEST(CrammerSinger, LowCUnderfitsRelativeToModerateC) {
  auto Data = makeBlobs(4, 40, 6, 0.12, 5); // overlapping clusters
  TrainOptions Tight;
  Tight.C = 1e-4;
  TrainOptions Paper;
  Paper.C = 10.0;
  double AccTight =
      modelAccuracy(trainCrammerSinger(Data, Tight), Data);
  double AccPaper =
      modelAccuracy(trainCrammerSinger(Data, Paper), Data);
  EXPECT_GE(AccPaper, AccTight);
}

TEST(OneVsRest, SeparatesLinearBlobs) {
  auto Data = makeBlobs(5, 30, 8, 0.04, 6);
  TrainReport Report;
  LinearModel M = trainOneVsRest(Data, TrainOptions(), &Report);
  EXPECT_GE(Report.TrainAccuracy, 0.97);
  (void)M;
}

TEST(LinearModel, PredictIsArgmaxOfScores) {
  auto Data = makeBlobs(3, 20, 4, 0.05, 7);
  LinearModel M = trainCrammerSinger(Data, TrainOptions());
  for (const NormalizedInstance &N : Data) {
    std::vector<double> S = M.scores(N.Components);
    int32_t Best =
        (int32_t)(std::max_element(S.begin(), S.end()) - S.begin()) + 1;
    EXPECT_EQ(M.predict(N.Components), Best);
  }
}

TEST(LinearModel, TextRoundTrip) {
  auto Data = makeBlobs(3, 15, 4, 0.05, 8);
  LinearModel M = trainCrammerSinger(Data, TrainOptions());
  LinearModel Back;
  ASSERT_TRUE(LinearModel::fromText(M.toText(), Back));
  ASSERT_EQ(Back.numClasses(), M.numClasses());
  ASSERT_EQ(Back.numFeatures(), M.numFeatures());
  for (const NormalizedInstance &N : Data)
    EXPECT_EQ(M.predict(N.Components), Back.predict(N.Components));
  LinearModel Bad;
  EXPECT_FALSE(LinearModel::fromText("wrongheader 1 2\n", Bad));
}

TEST(CrossValidation, ReasonableOnSeparableData) {
  auto Data = makeBlobs(3, 40, 6, 0.05, 9);
  double Acc = crossValidate(Data, TrainOptions(), 4);
  EXPECT_GE(Acc, 0.9);
}

TEST(Rbf, SolvesXorWhereLinearFails) {
  auto Data = makeXor(40, 10);
  LinearModel Linear = trainCrammerSinger(Data, TrainOptions());
  double LinearAcc = modelAccuracy(Linear, Data);
  EXPECT_LT(LinearAcc, 0.8) << "XOR should not be linearly separable";

  KernelTrainOptions KO;
  KO.Gamma = 8.0;
  RbfModel Rbf = trainRbf(Data, KO);
  EXPECT_GE(rbfAccuracy(Rbf, Data), 0.95);
}

TEST(Rbf, PredictionCostScalesWithVectors) {
  // The section 6 finding in miniature: RBF prediction walks all support
  // vectors, so doubling the training set roughly doubles its work.
  auto Small = makeBlobs(2, 50, 8, 0.05, 11);
  auto Large = makeBlobs(2, 200, 8, 0.05, 11);
  KernelTrainOptions KO;
  KO.MaxIters = 3;
  RbfModel A = trainRbf(Small, KO);
  RbfModel B = trainRbf(Large, KO);
  EXPECT_EQ(A.numVectors(), Small.size());
  EXPECT_EQ(B.numVectors(), Large.size());
  EXPECT_EQ(B.numVectors(), 4 * A.numVectors());
}

TEST(Trainer, EmptyFeatureInstancesSkipped) {
  // All-zero vectors (A = 0) must not crash the solvers.
  std::vector<NormalizedInstance> Data(4);
  for (auto &N : Data) {
    N.Label = 1;
    N.Components.assign(5, 0.0);
  }
  Data[3].Label = 2;
  Data[3].Components[1] = 1.0;
  LinearModel M = trainCrammerSinger(Data, TrainOptions());
  EXPECT_EQ(M.numClasses(), 2u);
}
