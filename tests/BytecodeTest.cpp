//===- tests/BytecodeTest.cpp - bytecode/ unit tests ----------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Disasm.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

/// Minimal `f(x) = x + 1`.
uint32_t addPlusOne(Program &P) {
  MethodBuilder MB(P, "plusOne", -1, MF_Static | MF_Public,
                   {DataType::Int32}, DataType::Int32);
  MB.load(0).constI(DataType::Int32, 1).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  return MB.finish();
}

} // namespace

TEST(Builder, LabelsPatchBranchTargets) {
  Program P;
  MethodBuilder MB(P, "abs", -1, MF_Static | MF_Public, {DataType::Int32},
                   DataType::Int32);
  auto Neg = MB.newLabel();
  MB.load(0).ifZero(BcCond::Lt, Neg);
  MB.load(0).retValue(DataType::Int32);
  MB.place(Neg);
  MB.load(0).neg(DataType::Int32).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  const MethodInfo &Info = P.methodAt(M);
  // The conditional branch targets the placed label's pc.
  ASSERT_EQ(Info.Code[1].Op, BcOp::If);
  EXPECT_EQ((uint32_t)Info.Code[1].B, 4u);
  EXPECT_TRUE(verifyMethod(P, M).ok());
}

TEST(Builder, LocalTypesTracked) {
  Program P;
  MethodBuilder MB(P, "locals", -1, MF_Static, {DataType::Int32},
                   DataType::Void);
  uint32_t D = MB.addLocal(DataType::Double);
  EXPECT_EQ(D, 1u);
  MB.constF(DataType::Double, 1.5).store(D);
  MB.ret();
  uint32_t M = MB.finish();
  EXPECT_EQ(P.methodAt(M).LocalTypes[1], DataType::Double);
  EXPECT_EQ(P.methodAt(M).NumLocals, 2u);
}

TEST(Builder, PrototypeEnablesRecursion) {
  Program P;
  MethodInfo Proto;
  Proto.Name = "countdown";
  Proto.Flags = MF_Static;
  Proto.ArgTypes = {DataType::Int32};
  Proto.ReturnType = DataType::Int32;
  uint32_t Self = P.declarePrototype(std::move(Proto));
  MethodBuilder MB(P, Self);
  auto Recurse = MB.newLabel();
  MB.load(0).ifZero(BcCond::Gt, Recurse);
  MB.constI(DataType::Int32, 0).retValue(DataType::Int32);
  MB.place(Recurse);
  MB.load(0).constI(DataType::Int32, 1).binop(BcOp::Sub, DataType::Int32);
  MB.call(Self).retValue(DataType::Int32);
  EXPECT_EQ(MB.finish(), Self);
  EXPECT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();
}

TEST(Verifier, AcceptsWellFormedMethod) {
  Program P;
  uint32_t M = addPlusOne(P);
  VerifyResult R = verifyMethod(P, M);
  EXPECT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(P.methodAt(M).MaxStack, 2u);
}

TEST(Verifier, RejectsStackUnderflow) {
  Program P;
  MethodInfo M;
  M.Name = "bad";
  M.Flags = MF_Static;
  M.ReturnType = DataType::Int32;
  BcInst Ret;
  Ret.Op = BcOp::Return;
  Ret.Type = DataType::Int32; // pops a value that was never pushed
  M.Code = {Ret};
  uint32_t Idx = P.addMethod(std::move(M));
  EXPECT_FALSE(verifyMethod(P, Idx).ok());
}

TEST(Verifier, RejectsBranchOutOfRange) {
  Program P;
  MethodInfo M;
  M.Name = "bad";
  M.Flags = MF_Static;
  BcInst G;
  G.Op = BcOp::Goto;
  G.A = 99;
  M.Code = {G};
  uint32_t Idx = P.addMethod(std::move(M));
  EXPECT_FALSE(verifyMethod(P, Idx).ok());
}

TEST(Verifier, RejectsLocalOutOfRange) {
  Program P;
  MethodInfo M;
  M.Name = "bad";
  M.Flags = MF_Static;
  BcInst L;
  L.Op = BcOp::Load;
  L.Type = DataType::Int32;
  L.A = 3; // no such local
  BcInst Ret;
  Ret.Op = BcOp::Return;
  Ret.Type = DataType::Int32;
  M.Code = {L, Ret};
  uint32_t Idx = P.addMethod(std::move(M));
  EXPECT_FALSE(verifyMethod(P, Idx).ok());
}

TEST(Verifier, RejectsInconsistentJoinDepth) {
  Program P;
  MethodInfo M;
  M.Name = "bad";
  M.Flags = MF_Static;
  M.ArgTypes = {DataType::Int32};
  M.LocalTypes = {DataType::Int32};
  M.NumLocals = 1;
  M.ReturnType = DataType::Int32;
  // if (x) goto 3; push const; [join] return  -- depth 0 vs 1 at pc 3.
  BcInst Load{BcOp::Load, DataType::Int32, 0, 0, 0, 0};
  BcInst If{BcOp::If, DataType::Int32, (int32_t)BcCond::Ne, 3, 0, 0};
  BcInst Push{BcOp::Const, DataType::Int32, 0, 0, 7, 0};
  BcInst Ret{BcOp::Return, DataType::Int32, 0, 0, 0, 0};
  M.Code = {Load, If, Push, Ret};
  uint32_t Idx = P.addMethod(std::move(M));
  EXPECT_FALSE(verifyMethod(P, Idx).ok());
}

TEST(Verifier, RejectsShiftOnFloat) {
  Program P;
  MethodBuilder MB(P, "bad", -1, MF_Static, {DataType::Double},
                   DataType::Double);
  MB.load(0).load(0).binop(BcOp::Shl, DataType::Double);
  MB.retValue(DataType::Double);
  uint32_t Idx = MB.finish();
  EXPECT_FALSE(verifyMethod(P, Idx).ok());
}

TEST(Verifier, RejectsEmptyMethod) {
  Program P;
  MethodInfo M;
  M.Name = "empty";
  uint32_t Idx = P.addMethod(std::move(M));
  EXPECT_FALSE(verifyMethod(P, Idx).ok());
}

TEST(Program, ClassHierarchyAndFields) {
  Program P;
  ClassBuilder Base(P, "Base");
  Base.addField(DataType::Int32);
  uint32_t BaseIdx = Base.finish();
  ClassBuilder Derived(P, "Derived", (int32_t)BaseIdx);
  uint32_t F = Derived.addField(DataType::Double);
  uint32_t DerivedIdx = Derived.finish();
  EXPECT_EQ(F, 1u); // inherited field occupies slot 0
  EXPECT_EQ(P.classAt(DerivedIdx).FieldTypes.size(), 2u);
  EXPECT_TRUE(P.isSubclassOf((int32_t)DerivedIdx, (int32_t)BaseIdx));
  EXPECT_FALSE(P.isSubclassOf((int32_t)BaseIdx, (int32_t)DerivedIdx));
  EXPECT_TRUE(P.isSubclassOf((int32_t)BaseIdx, (int32_t)BaseIdx));
}

TEST(Program, VirtualResolutionByName) {
  Program P;
  uint32_t Base = ClassBuilder(P, "Base").finish();
  uint32_t Derived = ClassBuilder(P, "Derived", (int32_t)Base).finish();
  uint32_t Other = ClassBuilder(P, "Other", (int32_t)Base).finish();

  auto AddCalc = [&](uint32_t Cls, int64_t K) {
    MethodBuilder MB(P, "calc", (int32_t)Cls, MF_Public,
                     {DataType::Object}, DataType::Int32);
    MB.constI(DataType::Int32, K).retValue(DataType::Int32);
    return MB.finish();
  };
  uint32_t BaseCalc = AddCalc(Base, 1);
  uint32_t DerivedCalc = AddCalc(Derived, 2);

  EXPECT_EQ(P.resolveVirtual(BaseCalc, Derived), DerivedCalc);
  EXPECT_EQ(P.resolveVirtual(BaseCalc, Base), BaseCalc);
  // Other doesn't override: resolves up to the base implementation.
  EXPECT_EQ(P.resolveVirtual(BaseCalc, Other), BaseCalc);
  EXPECT_TRUE(P.isOverridden(BaseCalc));
  EXPECT_FALSE(P.isOverridden(DerivedCalc));
}

TEST(Program, SignatureFormat) {
  Program P;
  uint32_t Cls = ClassBuilder(P, "Acme").finish();
  MethodBuilder MB(P, "frob", (int32_t)Cls, MF_Public,
                   {DataType::Object, DataType::Int32, DataType::Double},
                   DataType::Int64);
  MB.constI(DataType::Int64, 0).retValue(DataType::Int64);
  uint32_t M = MB.finish();
  EXPECT_EQ(P.signatureOf(M), "Acme.frob(object,int,double)long");
}

TEST(Disasm, RendersKeyInstructions) {
  Program P;
  uint32_t M = addPlusOne(P);
  std::string Text = disassembleMethod(P, M);
  EXPECT_NE(Text.find("load.int #0"), std::string::npos);
  EXPECT_NE(Text.find("const.int 1"), std::string::npos);
  EXPECT_NE(Text.find("add.int"), std::string::npos);
}

TEST(Disasm, RendersTryRegions) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  MethodBuilder MB(P, "t", -1, MF_Static, {}, DataType::Int32);
  auto Handler = MB.newLabel();
  auto Done = MB.newLabel();
  uint32_t Start = MB.beginTry();
  MB.newObject(Exc).throwRef();
  MB.endTry(Start, Handler, (int32_t)Exc);
  MB.place(Handler);
  MB.pop(DataType::Object);
  MB.constI(DataType::Int32, 1).gotoLabel(Done);
  MB.place(Done);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  std::string Text = disassembleMethod(P, M);
  EXPECT_NE(Text.find("try ["), std::string::npos);
  EXPECT_NE(Text.find("catch E"), std::string::npos);
}

TEST(StackEffect, MatchesCallSignatures) {
  Program P;
  uint32_t Callee = addPlusOne(P);
  BcInst Call;
  Call.Op = BcOp::Call;
  Call.A = (int32_t)Callee;
  MethodInfo Dummy;
  unsigned Pops = 0, Pushes = 0;
  EXPECT_TRUE(stackEffect(P, Dummy, Call, Pops, Pushes));
  EXPECT_EQ(Pops, 1u);
  EXPECT_EQ(Pushes, 1u);
}

TEST(StackEffect, RejectsBadMethodIndex) {
  Program P;
  BcInst Call;
  Call.Op = BcOp::Call;
  Call.A = 42;
  MethodInfo Dummy;
  unsigned Pops, Pushes;
  EXPECT_FALSE(stackEffect(P, Dummy, Call, Pops, Pushes));
}

TEST(Opcode, NegateCondIsInvolution) {
  for (BcCond C : {BcCond::Eq, BcCond::Ne, BcCond::Lt, BcCond::Ge,
                   BcCond::Gt, BcCond::Le})
    EXPECT_EQ(negateCond(negateCond(C)), C);
}
