//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/BitSet64.h"
#include "support/Rng.h"
#include "support/SaturatingCounter.h"
#include "support/Statistics.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"
#include "support/VarInt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace jitml;

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  Rng A2(42), C2(43);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyTracksProbability) {
  Rng R(5);
  int Hits = 0;
  for (int I = 0; I < 20000; ++I)
    Hits += R.nextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(Hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng R(9);
  double Sum = 0, Sq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double G = R.nextGaussian();
    Sum += G;
    Sq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(Sq / N, 1.0, 0.05);
}

TEST(Rng, JumpIsDeterministicAndDisjoint) {
  // Same seed, same jump count -> same stream; the fault-schedule replay
  // guarantee rests on this.
  Rng A(42), B(42);
  A.jump();
  B.jump();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  // A jumped stream must not replay the unjumped stream's prefix.
  Rng Base(42), Jumped(42);
  Jumped.jump();
  bool Differs = false;
  for (int I = 0; I < 100 && !Differs; ++I)
    Differs = Base.next() != Jumped.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, DoubleJumpDiffersFromSingle) {
  Rng One(7), Two(7);
  One.jump();
  Two.jump();
  Two.jump();
  bool Differs = false;
  for (int I = 0; I < 100 && !Differs; ++I)
    Differs = One.next() != Two.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng A(123), B(123);
  Rng ChildA = A.split();
  Rng ChildB = B.split();
  // Same parent state -> identical children, and identical parents after.
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(ChildA.next(), ChildB.next());
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  // Consecutive splits of one parent give distinct children.
  Rng Parent(9);
  Rng First = Parent.split();
  Rng Second = Parent.split();
  bool Differs = false;
  for (int I = 0; I < 100 && !Differs; ++I)
    Differs = First.next() != Second.next();
  EXPECT_TRUE(Differs);
}

TEST(Statistics, MeanAndVariance) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12); // sample variance
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
}

TEST(Statistics, CiShrinksWithSamples) {
  RunningStat Small, Large;
  Rng R(1);
  for (int I = 0; I < 5; ++I)
    Small.add(R.nextDouble());
  for (int I = 0; I < 500; ++I)
    Large.add(R.nextDouble());
  EXPECT_GT(Small.ci95HalfWidth(), Large.ci95HalfWidth());
}

TEST(Statistics, CiZeroForConstantData) {
  RunningStat S;
  for (int I = 0; I < 30; ++I)
    S.add(3.25);
  EXPECT_DOUBLE_EQ(S.ci95HalfWidth(), 0.0);
}

TEST(Statistics, EmptyStatHasNoExtremesOrCi) {
  // n=0: min/max/CI are undefined — NaN, not a 0.0 that could be mistaken
  // for a real sample.
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_TRUE(std::isnan(S.min()));
  EXPECT_TRUE(std::isnan(S.max()));
  EXPECT_TRUE(std::isnan(S.ci95HalfWidth()));

  RunningStat FromEmpty = summarize({});
  EXPECT_TRUE(std::isnan(FromEmpty.min()));
  EXPECT_TRUE(std::isnan(FromEmpty.ci95HalfWidth()));
}

TEST(Statistics, SingleSampleHasExtremesButNoCi) {
  // n=1: the sample is its own min/max/mean, but there is no dispersion
  // estimate, so the CI half-width is NaN rather than a false 0.
  RunningStat S = summarize({-4.5});
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), -4.5);
  EXPECT_DOUBLE_EQ(S.min(), -4.5);
  EXPECT_DOUBLE_EQ(S.max(), -4.5);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_TRUE(std::isnan(S.ci95HalfWidth()));
}

TEST(Statistics, TwoSamplesProduceFiniteCi) {
  // n=2: the first df=1 row of the t-table kicks in.
  RunningStat S = summarize({1.0, 3.0});
  EXPECT_EQ(S.count(), 2u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  EXPECT_DOUBLE_EQ(S.variance(), 2.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
  // t(df=1, 97.5%) * s / sqrt(2) = 12.706 * sqrt(2) / sqrt(2).
  EXPECT_NEAR(S.ci95HalfWidth(), 12.706, 1e-9);
  EXPECT_TRUE(std::isfinite(S.ci95HalfWidth()));
}

TEST(Statistics, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(BitSet64, BasicOps) {
  BitSet64 B = BitSet64::allZero(58);
  EXPECT_TRUE(B.none());
  B.set(0);
  B.set(57);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(57));
  EXPECT_FALSE(B.test(31));
  EXPECT_EQ(B.popCount(), 2u);
  B.reset(0);
  EXPECT_FALSE(B.test(0));
  EXPECT_EQ(BitSet64::allOne(58).popCount(), 58u);
}

TEST(BitSet64, ToStringMsbFirst) {
  BitSet64 B(4, 0b0001);
  EXPECT_EQ(B.toString(), "0001");
  B.set(3);
  EXPECT_EQ(B.toString(), "1001");
}

TEST(BitSet64, EqualityAndOrdering) {
  EXPECT_EQ(BitSet64(8, 5), BitSet64(8, 5));
  EXPECT_NE(BitSet64(8, 5), BitSet64(8, 6));
  EXPECT_LT(BitSet64(8, 5), BitSet64(8, 6));
  EXPECT_NE(BitSet64(8, 5), BitSet64(9, 5)); // width matters
}

TEST(SaturatingCounter, Saturates) {
  Sat8 C;
  for (int I = 0; I < 300; ++I)
    C.increment();
  EXPECT_EQ(C.value(), 255);
  EXPECT_TRUE(C.saturated());
  Sat16 W;
  W.increment(70000);
  EXPECT_EQ(W.value(), 65535);
}

TEST(SaturatingCounter, IncrementByAmount) {
  Sat8 C;
  C.increment(250);
  EXPECT_EQ(C.value(), 250);
  C.increment(3);
  EXPECT_EQ(C.value(), 253);
  C.increment(10);
  EXPECT_EQ(C.value(), 255);
}

TEST(VarInt, UnsignedRoundTripProperty) {
  Rng R(77);
  std::vector<uint64_t> Values{0, 1, 127, 128, 16383, 16384, UINT64_MAX};
  for (int I = 0; I < 200; ++I)
    Values.push_back(R.next() >> (R.nextBelow(64)));
  std::vector<uint8_t> Buf;
  for (uint64_t V : Values)
    encodeVarUInt(Buf, V);
  ByteReader Reader(Buf);
  for (uint64_t V : Values)
    EXPECT_EQ(Reader.readVarUInt(), V);
  EXPECT_TRUE(Reader.ok());
  EXPECT_TRUE(Reader.atEnd());
}

TEST(VarInt, SignedRoundTripProperty) {
  Rng R(78);
  std::vector<int64_t> Values{0, -1, 1, INT64_MIN, INT64_MAX, -64, 63, -65};
  for (int I = 0; I < 200; ++I)
    Values.push_back((int64_t)R.next());
  std::vector<uint8_t> Buf;
  for (int64_t V : Values)
    encodeVarInt(Buf, V);
  ByteReader Reader(Buf);
  for (int64_t V : Values)
    EXPECT_EQ(Reader.readVarInt(), V);
  EXPECT_TRUE(Reader.ok());
}

TEST(VarInt, SmallValuesAreOneByte) {
  std::vector<uint8_t> Buf;
  encodeVarUInt(Buf, 127);
  EXPECT_EQ(Buf.size(), 1u);
  encodeVarUInt(Buf, 128);
  EXPECT_EQ(Buf.size(), 3u); // second value took two bytes
}

TEST(VarInt, UnsignedBoundaryEncodingWidths) {
  // Exact encoded widths at the 7-bit group boundaries: 0, 2^7 +- 1,
  // 2^14 +- 1, and the 10-byte maximum.
  struct Case {
    uint64_t Value;
    size_t Bytes;
  };
  const Case Cases[] = {
      {0, 1},     {127, 1},   {128, 2},          {129, 2},
      {16383, 2}, {16384, 3}, {16385, 3},        {UINT64_MAX, 10},
  };
  for (const Case &C : Cases) {
    std::vector<uint8_t> Buf;
    encodeVarUInt(Buf, C.Value);
    EXPECT_EQ(Buf.size(), C.Bytes) << "value " << C.Value;
    ByteReader Reader(Buf);
    EXPECT_EQ(Reader.readVarUInt(), C.Value);
    EXPECT_TRUE(Reader.ok());
    EXPECT_TRUE(Reader.atEnd());
  }
}

TEST(VarInt, SignedZigZagBoundaryWidths) {
  // Zig-zag maps [-64, 63] onto one byte; -65 and 64 spill into two.
  struct Case {
    int64_t Value;
    size_t Bytes;
  };
  const Case Cases[] = {
      {0, 1},   {-64, 1}, {63, 1},         {-65, 2},
      {64, 2},  {INT64_MIN, 10},           {INT64_MAX, 10},
  };
  for (const Case &C : Cases) {
    std::vector<uint8_t> Buf;
    encodeVarInt(Buf, C.Value);
    EXPECT_EQ(Buf.size(), C.Bytes) << "value " << C.Value;
    ByteReader Reader(Buf);
    EXPECT_EQ(Reader.readVarInt(), C.Value);
    EXPECT_TRUE(Reader.ok());
    EXPECT_TRUE(Reader.atEnd());
  }
}

TEST(VarInt, TruncatedInputSetsError) {
  std::vector<uint8_t> Buf{0x80}; // continuation bit with no next byte
  ByteReader Reader(Buf);
  (void)Reader.readVarUInt();
  EXPECT_FALSE(Reader.ok());
}

TEST(VarInt, ReadBytesUnderrun) {
  std::vector<uint8_t> Buf{1, 2, 3};
  ByteReader Reader(Buf);
  uint8_t Out[8];
  EXPECT_FALSE(Reader.readBytes(Out, 8));
  EXPECT_FALSE(Reader.ok());
}

TEST(StringInterner, DenseIdsAndLookup) {
  StringInterner SI;
  EXPECT_EQ(SI.intern("alpha"), 0u);
  EXPECT_EQ(SI.intern("beta"), 1u);
  EXPECT_EQ(SI.intern("alpha"), 0u);
  EXPECT_EQ(SI.size(), 2u);
  EXPECT_EQ(SI.stringOf(1), "beta");
  EXPECT_EQ(SI.lookup("gamma"), UINT32_MAX);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1.5"});
  T.addRow({"longer", "22.25"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| name   |"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Numeric cells right-aligned: "1.5" is padded on the left.
  EXPECT_NE(Out.find("|   1.5 |"), std::string::npos);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmtCi(1.0, 0.5, 1), "1.0 +- 0.5");
}

TEST(Mix64, InjectiveOnSmallDomain) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I < 10000; ++I)
    Seen.insert(mix64(I));
  EXPECT_EQ(Seen.size(), 10000u);
}
