//===- tests/TestPrograms.h - Shared program builders for tests -*- C++ -*-===//
///
/// \file
/// Small bytecode programs used across the test suite. Each builder
/// returns a verified Program; helpers run methods under both engines and
/// compare results.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_TESTS_TESTPROGRAMS_H
#define JITML_TESTS_TESTPROGRAMS_H

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"
#include "runtime/VirtualMachine.h"

#include <gtest/gtest.h>

namespace jitml::testing {

/// sumToN(n): `int s = 0; for (int i = 0; i < n; i++) s += i; return s;`
inline uint32_t addSumToN(Program &P, const char *Name = "sumToN") {
  MethodBuilder MB(P, Name, -1, MF_Static | MF_Public,
                   {DataType::Int32}, DataType::Int32);
  uint32_t S = MB.addLocal(DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(S);
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).load(0).ifCmp(BcCond::Ge, Exit);
  MB.load(S).load(I).binop(BcOp::Add, DataType::Int32).store(S);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(S).retValue(DataType::Int32);
  return MB.finish();
}

/// fib(n) computed recursively (exercises calls and branches).
inline uint32_t addFib(Program &P) {
  MethodInfo Proto;
  Proto.Name = "fib";
  Proto.Flags = MF_Static | MF_Public;
  Proto.ArgTypes = {DataType::Int32};
  Proto.ReturnType = DataType::Int32;
  uint32_t Self = P.declarePrototype(std::move(Proto));

  MethodBuilder MB(P, Self);
  auto Recurse = MB.newLabel();
  MB.load(0).constI(DataType::Int32, 2).ifCmp(BcCond::Ge, Recurse);
  MB.load(0).retValue(DataType::Int32);
  MB.place(Recurse);
  MB.load(0).constI(DataType::Int32, 1).binop(BcOp::Sub, DataType::Int32);
  MB.call(Self);
  MB.load(0).constI(DataType::Int32, 2).binop(BcOp::Sub, DataType::Int32);
  MB.call(Self);
  MB.binop(BcOp::Add, DataType::Int32).retValue(DataType::Int32);
  return MB.finish();
}

/// kernel(a, b): constant-trip-count loop with a hoistable invariant and a
/// strength-reducible induction multiply:
///   `int s = 0; for (int i = 0; i < 256; i++) s += (a*b + 11) + i*3;
///    return s;`
inline uint32_t addConstKernel(Program &P) {
  MethodBuilder MB(P, "kernel", -1, MF_Static | MF_Public,
                   {DataType::Int32, DataType::Int32}, DataType::Int32);
  uint32_t S = MB.addLocal(DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(S);
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, 256).ifCmp(BcCond::Ge, Exit);
  MB.load(S);
  MB.load(0).load(1).binop(BcOp::Mul, DataType::Int32);
  MB.constI(DataType::Int32, 11).binop(BcOp::Add, DataType::Int32);
  MB.load(I).constI(DataType::Int32, 3).binop(BcOp::Mul, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32).store(S);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(S).retValue(DataType::Int32);
  return MB.finish();
}

/// Builds `main(n)` that calls sumToN(n); returns (program, entry already
/// set). A convenient complete program for VM tests.
inline Program makeSumProgram() {
  Program P;
  uint32_t Sum = addSumToN(P);
  MethodBuilder Main(P, "main", -1, MF_Static | MF_Public,
                     {DataType::Int32}, DataType::Int32);
  Main.load(0).call(Sum).retValue(DataType::Int32);
  uint32_t MainIdx = Main.finish();
  P.setEntryMethod(MainIdx);
  EXPECT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();
  return P;
}

/// Runs one method twice — interpreted and force-compiled at \p Level —
/// and expects identical integer results. \p Arg fills every integer
/// parameter slot (methods of any arity accepted).
inline int64_t runBothEngines(Program &P, uint32_t Method, int64_t Arg,
                              OptLevel Level = OptLevel::Hot) {
  std::vector<Value> Args;
  for (DataType T : P.methodAt(Method).ArgTypes)
    Args.push_back(isFloatType(T) ? Value::ofF((double)Arg)
                                  : Value::ofI(Arg));
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine Interp(P, Cfg);
  ExecResult RI = Interp.invoke(Method, Args);
  EXPECT_FALSE(RI.Exceptional);

  VirtualMachine::Config JitCfg;
  JitCfg.EnableJit = true;
  JitCfg.Control.Enabled = false;
  VirtualMachine Jit(P, JitCfg);
  Jit.compileMethod(Method, Level);
  ExecResult RJ = Jit.invoke(Method, Args);
  EXPECT_FALSE(RJ.Exceptional);
  EXPECT_EQ(RI.Ret.I, RJ.Ret.I) << "engine mismatch";
  return RI.Ret.I;
}

} // namespace jitml::testing

#endif // JITML_TESTS_TESTPROGRAMS_H
