//===- tests/TrainingTest.cpp - end-to-end learning pipeline tests --------===//

#include "harness/Experiment.h"
#include "jitml/Training.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

/// Quick collection config for tests (seconds, not minutes).
CollectConfig testConfig() {
  CollectConfig CC;
  CC.Iterations = 12;
  CC.ModifiersPerLevel = 24;
  CC.UsesPerModifier = 2;
  CC.MaxRecompilesPerMethod = 40;
  return CC;
}

} // namespace

TEST(Collect, ProducesMultiLevelRecords) {
  IntermediateDataSet Data =
      collectFromWorkload(workloadByCode("mt"), testConfig());
  EXPECT_GT(Data.size(), 50u);
  unsigned PerLevel[NumOptLevels] = {};
  std::set<uint64_t> Modifiers;
  for (const TaggedRecord &T : Data.Records) {
    ++PerLevel[(unsigned)T.Record.Level];
    Modifiers.insert(T.Record.ModifierBits);
    EXPECT_EQ(T.SourceTag, "mt");
    EXPECT_FALSE(T.Signature.empty());
    EXPECT_GT(T.Record.CompileCycles, 0.0);
  }
  // Data at the three learned levels, many distinct modifiers explored,
  // and the null modifier among them ("tried with every compiled method").
  EXPECT_GT(PerLevel[(unsigned)OptLevel::Cold], 0u);
  EXPECT_GT(PerLevel[(unsigned)OptLevel::Warm], 0u);
  EXPECT_GT(PerLevel[(unsigned)OptLevel::Hot], 0u);
  EXPECT_GT(Modifiers.size(), 10u);
  EXPECT_TRUE(Modifiers.count(PlanModifier().raw()));
}

TEST(Collect, StrategiesProduceDifferentExploration) {
  CollectConfig CC = testConfig();
  IntermediateDataSet Rand =
      collectWithStrategy(workloadByCode("db"), CC,
                          SearchStrategy::Randomized);
  IntermediateDataSet Prog =
      collectWithStrategy(workloadByCode("db"), CC,
                          SearchStrategy::Progressive);
  ASSERT_GT(Rand.size(), 0u);
  ASSERT_GT(Prog.size(), 0u);
  // Randomized disables ~50% of transformations; progressive at most 25%
  // (Eq. 1) — the average disabled count must reflect that.
  auto AvgDisabled = [](const IntermediateDataSet &D) {
    double Sum = 0;
    unsigned N = 0;
    for (const TaggedRecord &T : D.Records) {
      PlanModifier M = PlanModifier::fromRaw(T.Record.ModifierBits);
      if (M.isNull())
        continue;
      Sum += M.numDisabled();
      ++N;
    }
    return N ? Sum / N : 0.0;
  };
  EXPECT_GT(AvgDisabled(Rand), AvgDisabled(Prog));
}

TEST(Training, ModelSetCoversLearnedLevelsOnly) {
  CollectConfig CC = testConfig();
  CC.Iterations = 30; // enough exploration to cover all three levels
  IntermediateDataSet Data = collectFromWorkload(workloadByCode("co"), CC);
  TrainConfig TC;
  ModelSet Set = trainModelSet(Data, "test", TC);
  EXPECT_TRUE(Set.hasModelFor(OptLevel::Cold));
  EXPECT_TRUE(Set.hasModelFor(OptLevel::Warm));
  EXPECT_TRUE(Set.hasModelFor(OptLevel::Hot));
  // "When Testarossa selects scorching, the original compilation plan is
  // used": no model for the top tiers.
  EXPECT_FALSE(Set.hasModelFor(OptLevel::VeryHot));
  EXPECT_FALSE(Set.hasModelFor(OptLevel::Scorching));
  for (unsigned L = 0; L < 3; ++L) {
    EXPECT_GT(Set.Levels[L].Model.numClasses(), 1u);
    EXPECT_EQ(Set.Levels[L].Model.numFeatures(), NumFeatures);
    EXPECT_GT(Set.Levels[L].Labels.size(), 1u);
  }
}

TEST(Training, LeaveOneOutProducesFiveFolds) {
  CollectConfig CC = testConfig();
  CC.Iterations = 20;
  std::vector<IntermediateDataSet> Per;
  for (const WorkloadSpec &Spec : trainingBenchmarks())
    Per.push_back(collectFromWorkload(Spec, CC));
  TrainConfig TC;
  std::vector<ModelSet> Sets = trainLeaveOneOut(Per, TC);
  ASSERT_EQ(Sets.size(), 5u);
  EXPECT_EQ(Sets[0].Name, "H1");
  EXPECT_EQ(Sets[0].LeftOutBenchmark, "co");
  EXPECT_EQ(Sets[4].LeftOutBenchmark, "rt");
  // 5 sets x 3 levels = the paper's 15 models.
  unsigned Models = 0;
  for (const ModelSet &S : Sets)
    for (unsigned L = 0; L < NumOptLevels; ++L)
      if (S.Levels[L].Valid)
        ++Models;
  EXPECT_EQ(Models, 15u);
}

TEST(Provider, FallsBackToNullForUncoveredLevels) {
  IntermediateDataSet Data =
      collectFromWorkload(workloadByCode("rt"), testConfig());
  ModelSet Set = trainModelSet(Data, "p", TrainConfig());
  LearnedStrategyProvider Provider(std::move(Set));
  FeatureVector F;
  F.set(CF_TreeNodes, 25);
  EXPECT_TRUE(Provider.modifierFor(OptLevel::Scorching, F).isNull());
  EXPECT_TRUE(Provider.modifierFor(OptLevel::VeryHot, F).isNull());
  // Learned levels go through the model (prediction counted).
  uint64_t Before = Provider.predictions();
  (void)Provider.modifierFor(OptLevel::Warm, F);
  EXPECT_EQ(Provider.predictions(), Before + 1);
}

TEST(EndToEnd, LearnedModelsCutCompileTimeOnHeldOut) {
  // The paper's headline, in miniature: train on four benchmarks, evaluate
  // start-up on the held-out fifth. Compile time must drop substantially;
  // results must stay correct.
  CollectConfig CC = testConfig();
  std::vector<IntermediateDataSet> Sets;
  for (const WorkloadSpec &Spec : trainingBenchmarks()) {
    if (Spec.Code == "mp")
      continue;
    Sets.push_back(collectFromWorkload(Spec, CC));
  }
  ModelSet Models = trainModelSet(mergeAll(Sets), "fold", TrainConfig());
  ASSERT_TRUE(Models.hasModelFor(OptLevel::Cold));

  Program P = buildWorkload(workloadByCode("mp"));
  RunResult Baseline = runOnce(P, 1, nullptr, 11);
  LearnedStrategyProvider Provider(std::move(Models));
  RunResult Learned = runOnce(P, 1, &Provider, 11);
  EXPECT_EQ(Learned.Checksum, Baseline.Checksum);
  EXPECT_GT(Provider.predictions(), 0u);
  EXPECT_LT(Learned.CompileCycles, Baseline.CompileCycles * 0.85)
      << "learned plans should compile substantially faster";
}

TEST(Experiment, RunOnceDeterministicPerSeed) {
  Program P = buildWorkload(workloadByCode("jk"));
  RunResult A = runOnce(P, 1, nullptr, 5);
  RunResult B = runOnce(P, 1, nullptr, 5);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_DOUBLE_EQ(A.WallCycles, B.WallCycles);
  RunResult C = runOnce(P, 1, nullptr, 6);
  EXPECT_EQ(C.Checksum, A.Checksum); // checksum seed-independent
  EXPECT_NE(C.WallCycles, A.WallCycles); // but noise differs
}

TEST(Experiment, SeriesAndRelativeHelpers) {
  Program P = buildWorkload(workloadByCode("js"));
  ExperimentConfig EC;
  EC.Runs = 6;
  Series S = measureSeries(P, EC, nullptr);
  EXPECT_EQ(S.Wall.count(), 6u);
  EXPECT_GT(S.Wall.mean(), 0.0);
  EXPECT_GT(S.Compile.mean(), 0.0);
  // Relative helpers: identical series give ratio 1.
  Relative R = relativePerformance(S, S);
  EXPECT_NEAR(R.Value, 1.0, 1e-12);
  Relative C = relativeCompileTime(S, S);
  EXPECT_NEAR(C.Value, 1.0, 1e-12);
  EXPECT_GE(R.Ci, 0.0);
}

TEST(Experiment, MoreIterationsAmortizeCompilation) {
  Program P = buildWorkload(workloadByCode("lu"));
  RunResult One = runOnce(P, 1, nullptr, 3);
  RunResult Ten = runOnce(P, 10, nullptr, 3);
  double Share1 = One.CompileCycles / (One.AppCycles + One.CompileCycles);
  double Share10 = Ten.CompileCycles / (Ten.AppCycles + Ten.CompileCycles);
  EXPECT_LT(Share10, Share1)
      << "compile share must shrink as iterations amortize it";
}
