//===- tests/MldataTest.cpp - ranking/normalization/format tests ----------===//

#include "mldata/LibLinearIO.h"
#include "mldata/Merger.h"
#include "mldata/Normalizer.h"
#include "mldata/Ranker.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

/// Builds a record with a given feature fingerprint and measurements.
TaggedRecord record(const std::string &Tag, uint32_t MethodId,
                    uint64_t Modifier, double RunPerInvoc, double Compile,
                    OptLevel Level = OptLevel::Warm, bool Loopy = false) {
  TaggedRecord T;
  T.SourceTag = Tag;
  T.Signature = "m" + std::to_string(MethodId);
  CollectionRecord &R = T.Record;
  R.SignatureId = MethodId;
  R.Level = Level;
  R.ModifierBits = Modifier;
  R.Invocations = 100;
  R.RunCycles = RunPerInvoc * 100;
  R.CompileCycles = Compile;
  R.Features.set(CF_TreeNodes, 10 + MethodId); // distinct per method
  R.Features.setAttr(AF_MayHaveLoops, Loopy);
  return T;
}

} // namespace

TEST(Ranker, RankValueMatchesEquationTwo) {
  TaggedRecord T = record("x", 1, 3, /*RunPerInvoc=*/50.0,
                          /*Compile=*/3000.0, OptLevel::Warm);
  TriggerTable Triggers;
  // Loop class 0 (no loops): T_warm = Triggers.T[1][0].
  double Expected = 50.0 + 3000.0 / Triggers.of(OptLevel::Warm, 0);
  EXPECT_DOUBLE_EQ(rankValue(T.Record, Triggers), Expected);
}

TEST(Ranker, LoopClassSelectsTrigger) {
  FeatureVector Flat;
  EXPECT_EQ(loopClassOfFeatures(Flat), 0u);
  FeatureVector Loopy;
  Loopy.setAttr(AF_MayHaveLoops, true);
  EXPECT_EQ(loopClassOfFeatures(Loopy), 1u);
  Loopy.setAttr(AF_ManyIterationLoops, true);
  EXPECT_EQ(loopClassOfFeatures(Loopy), 2u);
}

TEST(Ranker, SelectsBestWithin95Capped) {
  IntermediateDataSet Data;
  // One method, five modifiers with ranked values 100, 101, 104, 150, 400.
  Data.Records.push_back(record("x", 1, 10, 100.0, 0));
  Data.Records.push_back(record("x", 1, 11, 101.0, 0));
  Data.Records.push_back(record("x", 1, 12, 104.0, 0));
  Data.Records.push_back(record("x", 1, 13, 150.0, 0));
  Data.Records.push_back(record("x", 1, 14, 400.0, 0));
  SelectionPolicy Policy; // paper default: <=3 within 95%
  auto Ranked = rankRecords(Data, OptLevel::Warm, Policy, TriggerTable());
  // 100/101 = 0.990, 100/104 = 0.96 -> both within 95%; 100/150 is not.
  ASSERT_EQ(Ranked.size(), 3u);
  EXPECT_EQ(Ranked[0].ModifierBits, 10u);
  EXPECT_EQ(Ranked[1].ModifierBits, 11u);
  EXPECT_EQ(Ranked[2].ModifierBits, 12u);
}

TEST(Ranker, BestOnlyAndTopN) {
  IntermediateDataSet Data;
  for (uint64_t M = 0; M < 6; ++M)
    Data.Records.push_back(record("x", 1, 100 + M, 10.0 + (double)M, 0));
  SelectionPolicy Best;
  Best.Mode = SelectionPolicy::Kind::BestOnly;
  EXPECT_EQ(rankRecords(Data, OptLevel::Warm, Best, TriggerTable()).size(),
            1u);
  SelectionPolicy Top4;
  Top4.Mode = SelectionPolicy::Kind::TopN;
  Top4.N = 4;
  EXPECT_EQ(rankRecords(Data, OptLevel::Warm, Top4, TriggerTable()).size(),
            4u);
  SelectionPolicy Half;
  Half.Mode = SelectionPolicy::Kind::TopPercent;
  Half.Percent = 50.0;
  EXPECT_EQ(rankRecords(Data, OptLevel::Warm, Half, TriggerTable()).size(),
            3u);
}

TEST(Ranker, GroupsByFeatureVectorAndDedupsModifiers) {
  IntermediateDataSet Data;
  // Two distinct methods; method 1's modifier 7 observed twice (keep best).
  Data.Records.push_back(record("x", 1, 7, 120.0, 0));
  Data.Records.push_back(record("y", 1, 7, 80.0, 0)); // better observation
  Data.Records.push_back(record("x", 2, 9, 50.0, 0));
  SelectionPolicy Best;
  Best.Mode = SelectionPolicy::Kind::BestOnly;
  auto Ranked = rankRecords(Data, OptLevel::Warm, Best, TriggerTable());
  ASSERT_EQ(Ranked.size(), 2u); // one per unique feature vector
  for (const RankedInstance &R : Ranked) {
    if (R.ModifierBits == 7) {
      EXPECT_DOUBLE_EQ(R.RankValue, 80.0);
    }
  }
}

TEST(Ranker, SkipsOtherLevelsAndEmptyProfiles) {
  IntermediateDataSet Data;
  Data.Records.push_back(record("x", 1, 7, 10.0, 0, OptLevel::Hot));
  TaggedRecord NoSamples = record("x", 2, 8, 10.0, 0, OptLevel::Warm);
  NoSamples.Record.Invocations = 0;
  Data.Records.push_back(NoSamples);
  SelectionPolicy Policy;
  EXPECT_TRUE(
      rankRecords(Data, OptLevel::Warm, Policy, TriggerTable()).empty());
  EXPECT_EQ(rankRecords(Data, OptLevel::Hot, Policy, TriggerTable()).size(),
            1u);
}

TEST(Summaries, MergedAndRankedCounts) {
  IntermediateDataSet Data;
  Data.Records.push_back(record("x", 1, 7, 10.0, 0));
  Data.Records.push_back(record("x", 1, 8, 11.0, 0));
  Data.Records.push_back(record("x", 2, 7, 12.0, 0));
  DataSetSummary M = summarizeMerged(Data, OptLevel::Warm);
  EXPECT_EQ(M.Instances, 3u);
  EXPECT_EQ(M.UniqueClasses, 2u);
  EXPECT_EQ(M.UniqueFeatureVectors, 2u);
  EXPECT_NEAR(M.vectorInstanceRatio(), 1.5, 1e-9);
}

TEST(Merger, LeaveOneOutExcludesTag) {
  IntermediateDataSet A, B;
  A.Records.push_back(record("co", 1, 7, 10.0, 0));
  B.Records.push_back(record("db", 2, 8, 11.0, 0));
  IntermediateDataSet Merged = mergeExcluding({A, B}, {"co"});
  ASSERT_EQ(Merged.size(), 1u);
  EXPECT_EQ(Merged.Records[0].SourceTag, "db");
  EXPECT_EQ(mergeAll({A, B}).size(), 2u);
}

TEST(Normalizer, EquationThreeBounds) {
  std::vector<RankedInstance> Data(3);
  Data[0].Features.set(CF_TreeNodes, 10);
  Data[1].Features.set(CF_TreeNodes, 20);
  Data[2].Features.set(CF_TreeNodes, 30);
  Scaling S = Scaling::fit(Data);
  std::vector<double> X = S.apply(Data[1].Features);
  EXPECT_DOUBLE_EQ(X[CF_TreeNodes], 0.5);
  EXPECT_DOUBLE_EQ(S.apply(Data[0].Features)[CF_TreeNodes], 0.0);
  EXPECT_DOUBLE_EQ(S.apply(Data[2].Features)[CF_TreeNodes], 1.0);
  // Invariant components map to zero (they carry no information).
  EXPECT_DOUBLE_EQ(X[CF_Arguments], 0.0);
  // Out-of-training-range values clamp.
  FeatureVector Big;
  Big.set(CF_TreeNodes, 500);
  EXPECT_DOUBLE_EQ(S.apply(Big)[CF_TreeNodes], 1.0);
}

TEST(Normalizer, ScalingFileRoundTrip) {
  std::vector<RankedInstance> Data(2);
  Data[0].Features.set(CF_TreeNodes, 5);
  Data[1].Features.set(CF_TreeNodes, 55);
  Data[1].Features.set(CF_Arguments, 3);
  Scaling S = Scaling::fit(Data);
  Scaling Back;
  ASSERT_TRUE(Scaling::fromText(S.toText(), Back));
  for (unsigned I = 0; I < NumFeatures; ++I) {
    EXPECT_DOUBLE_EQ(S.minOf(I), Back.minOf(I));
    EXPECT_DOUBLE_EQ(S.maxOf(I), Back.maxOf(I));
  }
  Scaling Bad;
  EXPECT_FALSE(Scaling::fromText("garbage\n", Bad));
}

TEST(Normalizer, ScalingFileRejectsDuplicateIndexLines) {
  std::vector<RankedInstance> Data(2);
  Data[0].Features.set(CF_TreeNodes, 5);
  Data[1].Features.set(CF_TreeNodes, 55);
  Scaling S = Scaling::fit(Data);
  std::string Text = S.toText();

  // Regression: replace the line for index 1 with a duplicate of index 0.
  // A line counter both sees NumFeatures lines and never notices that
  // index 1 is missing; the bitset-based check must reject the file.
  std::string Needle = "\n1 ";
  size_t Pos = Text.find(Needle);
  ASSERT_NE(Pos, std::string::npos);
  size_t End = Text.find('\n', Pos + 1);
  ASSERT_NE(End, std::string::npos);
  Text.replace(Pos, End - Pos, "\n0 0 0");
  Scaling Out;
  EXPECT_FALSE(Scaling::fromText(Text, Out));

  // A duplicate line alone (all indices otherwise present) is also a
  // corrupt file.
  std::string WithDup = S.toText() + "0 0 0\n";
  EXPECT_FALSE(Scaling::fromText(WithDup, Out));

  // And a missing line alone still fails.
  std::string Missing = S.toText();
  size_t P0 = Missing.find("\n1 ");
  size_t E0 = Missing.find('\n', P0 + 1);
  Missing.erase(P0, E0 - P0);
  EXPECT_FALSE(Scaling::fromText(Missing, Out));
}

TEST(LabelMap, DenseLabelsAndInverse) {
  LabelMap L;
  int32_t A = L.labelFor(0xdead);
  int32_t B = L.labelFor(0xbeef);
  EXPECT_EQ(A, 1); // LIBLINEAR labels start at 1
  EXPECT_EQ(B, 2);
  EXPECT_EQ(L.labelFor(0xdead), 1);
  uint64_t Bits = 0;
  ASSERT_TRUE(L.modifierFor(2, Bits));
  EXPECT_EQ(Bits, 0xbeefu);
  EXPECT_FALSE(L.modifierFor(3, Bits));
  EXPECT_FALSE(L.modifierFor(0, Bits));
  LabelMap Back;
  ASSERT_TRUE(LabelMap::fromText(L.toText(), Back));
  EXPECT_EQ(Back.lookup(0xdead), 1);
  EXPECT_EQ(Back.lookup(0xbeef), 2);
}

TEST(LibLinear, SparseFormatOmitsZeros) {
  NormalizedInstance N;
  N.Label = 5;
  N.Components = {0.0, 0.5625, 0.0, 1.0};
  std::string Text = writeLibLinear({N});
  // "For example, 10:0.5625 indicates that the 10-th component ... has
  // value 0.5625" — 1-based indices, zeros omitted.
  EXPECT_EQ(Text, "5 2:0.5625 4:1\n");
}

TEST(LibLinear, RoundTripProperty) {
  Rng R(31);
  std::vector<NormalizedInstance> Data;
  for (int I = 0; I < 50; ++I) {
    NormalizedInstance N;
    N.Label = 1 + (int32_t)R.nextBelow(20);
    N.Components.resize(NumFeatures);
    for (unsigned F = 0; F < NumFeatures; ++F)
      N.Components[F] = R.nextBool(0.3) ? R.nextDouble() : 0.0;
    Data.push_back(std::move(N));
  }
  std::vector<NormalizedInstance> Back;
  ASSERT_TRUE(readLibLinear(writeLibLinear(Data), NumFeatures, Back));
  ASSERT_EQ(Back.size(), Data.size());
  for (size_t I = 0; I < Data.size(); ++I) {
    EXPECT_EQ(Back[I].Label, Data[I].Label);
    for (unsigned F = 0; F < NumFeatures; ++F)
      EXPECT_NEAR(Back[I].Components[F], Data[I].Components[F], 1e-9);
  }
}

TEST(LibLinear, RejectsMalformedInput) {
  std::vector<NormalizedInstance> Out;
  EXPECT_FALSE(readLibLinear("0 1:0.5\n", 71, Out));   // label < 1
  EXPECT_FALSE(readLibLinear("1 99:0.5\n", 71, Out)); // index too large
  EXPECT_FALSE(readLibLinear("1 nonsense\n", 71, Out)); // no colon
}

TEST(LibLinear, RejectsTruncatedAndGarbagePairs) {
  // strtod/strtoul with a null end pointer used to read all of these as
  // value 0.0 (or index 0/3), silently training on corrupt data.
  std::vector<NormalizedInstance> Out;
  EXPECT_FALSE(readLibLinear("1 3:\n", 71, Out));      // truncated value
  EXPECT_FALSE(readLibLinear("1 3:abc\n", 71, Out));   // garbage value
  EXPECT_FALSE(readLibLinear("1 3:1.5x\n", 71, Out));  // trailing junk
  EXPECT_FALSE(readLibLinear("1 :0.5\n", 71, Out));    // missing index
  EXPECT_FALSE(readLibLinear("1 3x:0.5\n", 71, Out));  // junk in index
  EXPECT_FALSE(readLibLinear("1 x3:0.5\n", 71, Out));  // non-digit index
  EXPECT_FALSE(readLibLinear("1 1e400:0.5\n", 71, Out)); // index overflow
  EXPECT_FALSE(readLibLinear("1 3:1e999\n", 71, Out)); // value overflow

  // The diagnostic names the offending line and token.
  std::string Error;
  EXPECT_FALSE(readLibLinear("1 1:0.5\n2 3:abc\n", 71, Out, &Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
  EXPECT_NE(Error.find("3:abc"), std::string::npos) << Error;

  // A good parse clears any stale diagnostic.
  EXPECT_TRUE(readLibLinear("1 3:0.5\n", 71, Out, &Error));
  EXPECT_TRUE(Error.empty());
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_DOUBLE_EQ(Out[0].Components[2], 0.5);
}

TEST(LibLinear, AcceptsValidEdgeForms) {
  std::vector<NormalizedInstance> Out;
  // Negative values, exponents, and the full index range must still parse.
  ASSERT_TRUE(readLibLinear("2 1:-0.25 71:1e-3\n", 71, Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_DOUBLE_EQ(Out[0].Components[0], -0.25);
  EXPECT_DOUBLE_EQ(Out[0].Components[70], 1e-3);
  // An explicit zero value is legal (writers omit zeros, readers accept).
  ASSERT_TRUE(readLibLinear("1 5:0\n", 71, Out));
  EXPECT_DOUBLE_EQ(Out[0].Components[4], 0.0);
}
