//===- tests/RandomProgramTest.cpp - differential fuzzing -----------------===//
//
// Seeded random straight-line/branchy programs executed at every
// optimization level and compared against the interpreter. This is the
// fuzz layer under the structured pass tests: expression shapes the
// hand-written tests never produce (deep mixed-type trees, odd constants,
// redundant subtrees) must still optimize soundly.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "bridge/ModelService.h"
#include "collect/Archive.h"
#include "il/ILGenerator.h"
#include "il/ILVerifier.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace jitml;

namespace {

/// Emits a random integer expression of \p Depth onto the stack.
/// Uses locals [0, NumLocals) which are all Int32.
void emitExpr(MethodBuilder &MB, Rng &R, unsigned NumLocals, unsigned Depth) {
  if (Depth == 0 || R.nextBool(0.25)) {
    if (R.nextBool(0.5))
      MB.load((uint32_t)R.nextBelow(NumLocals));
    else
      MB.constI(DataType::Int32, R.nextInRange(-64, 64));
    return;
  }
  switch (R.nextBelow(6)) {
  case 0: {
    static const BcOp Ops[] = {BcOp::Add, BcOp::Sub, BcOp::Mul, BcOp::Or,
                               BcOp::And, BcOp::Xor};
    emitExpr(MB, R, NumLocals, Depth - 1);
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.binop(Ops[R.nextBelow(6)], DataType::Int32);
    return;
  }
  case 1: // division by a guaranteed nonzero constant
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.constI(DataType::Int32, R.nextInRange(1, 31));
    MB.binop(R.nextBool(0.5) ? BcOp::Div : BcOp::Rem, DataType::Int32);
    return;
  case 2: // shifts by small constants
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.constI(DataType::Int32, R.nextInRange(0, 7));
    MB.binop(R.nextBool(0.5) ? BcOp::Shl : BcOp::Shr, DataType::Int32);
    return;
  case 3: // narrowing/widening round trips
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.conv(DataType::Int32, DataType::Int16);
    MB.conv(DataType::Int16, DataType::Int32);
    return;
  case 4: // a float detour
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.conv(DataType::Int32, DataType::Double);
    MB.constF(DataType::Double, 1.0 + (double)R.nextBelow(4));
    MB.binop(BcOp::Mul, DataType::Double);
    MB.conv(DataType::Double, DataType::Int32);
    return;
  default: // negation
    emitExpr(MB, R, NumLocals, Depth - 1);
    MB.neg(DataType::Int32);
    return;
  }
}

/// Builds a random method: a few stores, a branch diamond, more stores.
uint32_t buildRandomMethod(Program &P, uint64_t Seed) {
  Rng R(Seed);
  MethodBuilder MB(P, "fuzz", -1, MF_Static | MF_Public,
                   {DataType::Int32, DataType::Int32}, DataType::Int32);
  unsigned NumLocals = 2;
  for (unsigned I = 0; I < 3; ++I) {
    uint32_t T = MB.addLocal(DataType::Int32);
    ++NumLocals;
    emitExpr(MB, R, NumLocals - 1, 3);
    MB.store(T);
  }
  auto Else = MB.newLabel();
  auto Join = MB.newLabel();
  emitExpr(MB, R, NumLocals, 2);
  MB.ifZero((BcCond)R.nextBelow(6), Else);
  emitExpr(MB, R, NumLocals, 3);
  MB.store(2);
  MB.gotoLabel(Join);
  MB.place(Else);
  emitExpr(MB, R, NumLocals, 3);
  MB.store(3);
  MB.place(Join);
  emitExpr(MB, R, NumLocals, 3);
  emitExpr(MB, R, NumLocals, 2);
  MB.binop(BcOp::Xor, DataType::Int32);
  MB.retValue(DataType::Int32);
  return MB.finish();
}

} // namespace

class RandomProgram : public ::testing::TestWithParam<uint64_t> {};

/// JITML_GEN_SEED=N re-runs one failing seed in isolation: the fixture's
/// parameter range collapses to just N, so `--gtest_filter='FuzzSeeds/*'`
/// replays exactly the reported program.
static uint64_t replaySeedOr(uint64_t Param) {
  const char *S = std::getenv("JITML_GEN_SEED");
  return (S && *S) ? std::strtoull(S, nullptr, 10) : Param;
}

TEST_P(RandomProgram, AllLevelsMatchInterpreter) {
  Program P;
  uint64_t Seed = replaySeedOr(GetParam());
  uint32_t M = buildRandomMethod(P, Seed);
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();

  // Before any optimization runs, the generated IL must satisfy every
  // deep invariant — a generator or ilgen bug found here is diagnosed at
  // the source instead of as a downstream miscompile.
  {
    auto IL = generateIL(P, M);
    std::vector<std::string> Errors = verifyILDeep(*IL);
    ASSERT_TRUE(Errors.empty())
        << "seed " << Seed << ": " << Errors.front();
  }

  VirtualMachine::Config Interp;
  Interp.EnableJit = false;
  for (int64_t A : {0ll, 1ll, -7ll, 1000003ll}) {
    std::vector<Value> Args{Value::ofI(A), Value::ofI(A ^ 0x55)};
    VirtualMachine IVM(P, Interp);
    ExecResult Ref = IVM.invoke(M, Args);
    ASSERT_FALSE(Ref.Exceptional);
    for (unsigned L = 0; L < NumOptLevels; ++L) {
      VirtualMachine::Config Cfg;
      Cfg.Control.Enabled = false;
      VirtualMachine VM(P, Cfg);
      VM.compileMethod(M, (OptLevel)L);
      ExecResult Got = VM.invoke(M, Args);
      ASSERT_FALSE(Got.Exceptional);
      EXPECT_EQ(Got.Ret.I, Ref.Ret.I)
          << "seed " << Seed << " arg " << A << " level "
          << optLevelName((OptLevel)L);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, RandomProgram,
                         ::testing::Range<uint64_t>(1, 25));

TEST(StackSpill, ValueLiveAcrossJoin) {
  // A value computed before a branch and consumed after the join forces
  // the IL generator's stack-temp spilling at block boundaries.
  Program P;
  MethodBuilder MB(P, "spill", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  auto Else = MB.newLabel();
  auto Join = MB.newLabel();
  MB.load(0).constI(DataType::Int32, 3).binop(BcOp::Mul, DataType::Int32);
  // ^ stays on the stack across the branch below.
  MB.load(0).ifZero(BcCond::Lt, Else);
  MB.constI(DataType::Int32, 1).gotoLabel(Join);
  MB.place(Else);
  MB.constI(DataType::Int32, 2);
  MB.place(Join);
  // Stack here: [x*3, 1-or-2].
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    EXPECT_EQ(jitml::testing::runBothEngines(P, M, 10, (OptLevel)L), 31);
    EXPECT_EQ(jitml::testing::runBothEngines(P, M, -4, (OptLevel)L), -10);
  }
}

TEST(BridgeFuzz, RandomBytesNeverCrashReceiver) {
  Rng R(404);
  for (int Trial = 0; Trial < 50; ++Trial) {
    auto [A, B] = InProcessPipe::makePair();
    size_t Len = 5 + R.nextBelow(64);
    std::vector<uint8_t> Junk(Len);
    for (uint8_t &Byte : Junk)
      Byte = (uint8_t)R.nextBelow(256);
    // Keep the declared length sane so recv attempts a parse.
    Junk[0] = (uint8_t)(Len - 4);
    Junk[1] = Junk[2] = Junk[3] = 0;
    A->writeBytes(Junk.data(), Junk.size());
    A->close();
    Message Out;
    // Must return (true or false), never crash or hang.
    (void)recvMessage(*B, Out);
  }
  SUCCEED();
}

TEST(ArchiveFuzz, BitFlipsNeverCrashDecoder) {
  Rng R(808);
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  for (int I = 0; I < 20; ++I) {
    CollectionRecord Rec;
    Rec.SignatureId = Dict.intern("sig" + std::to_string(I % 5));
    Rec.Level = (OptLevel)(I % 3);
    Rec.Invocations = 10;
    Records.push_back(Rec);
  }
  std::vector<uint8_t> Good = encodeArchive(Dict, Records);
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::vector<uint8_t> Bad = Good;
    size_t Pos = R.nextBelow(Bad.size());
    Bad[Pos] ^= (uint8_t)(1 << R.nextBelow(8));
    ArchiveData Out;
    (void)decodeArchive(Bad, Out); // may fail, must not crash
  }
  SUCCEED();
}
