//===- tests/RuntimeTest.cpp - VM, engines, clock, control tests ----------===//

#include "TestPrograms.h"

#include "runtime/CompilationControl.h"
#include "runtime/RuntimeOps.h"
#include "runtime/SimClock.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace jitml;
using namespace jitml::testing;

//===----------------------------------------------------------------------===//
// Value semantics shared by both engines
//===----------------------------------------------------------------------===//

TEST(RuntimeOps, IntegerNormalization) {
  EXPECT_EQ(normalizeRtInt(DataType::Int8, 200), -56);
  EXPECT_EQ(normalizeRtInt(DataType::Char, -1), 65535);
  EXPECT_EQ(normalizeRtInt(DataType::Int16, 0x18000), -32768);
  EXPECT_EQ(normalizeRtInt(DataType::Int32, (int64_t)INT32_MAX + 1),
            INT32_MIN);
  EXPECT_EQ(normalizeRtInt(DataType::Int64, -5), -5);
}

TEST(RuntimeOps, DivisionEdgeCases) {
  bool DivByZero = false;
  Value R = evalArith(BcOp::Div, DataType::Int64, Value::ofI(INT64_MIN),
                      Value::ofI(-1), DivByZero);
  EXPECT_FALSE(DivByZero);
  EXPECT_EQ(R.I, INT64_MIN); // Java semantics: overflow wraps
  evalArith(BcOp::Div, DataType::Int32, Value::ofI(1), Value::ofI(0),
            DivByZero);
  EXPECT_TRUE(DivByZero);
  R = evalArith(BcOp::Rem, DataType::Int64, Value::ofI(INT64_MIN),
                Value::ofI(-1), DivByZero);
  EXPECT_FALSE(DivByZero);
  EXPECT_EQ(R.I, 0);
}

TEST(RuntimeOps, FloatToIntSaturation) {
  Value V = convertValue(DataType::Double, DataType::Int64,
                         Value::ofF(1e300));
  EXPECT_EQ(V.I, INT64_MAX);
  V = convertValue(DataType::Double, DataType::Int64, Value::ofF(-1e300));
  EXPECT_EQ(V.I, INT64_MIN);
  V = convertValue(DataType::Double, DataType::Int32,
                   Value::ofF(std::nan("")));
  EXPECT_EQ(V.I, 0);
  V = convertValue(DataType::Double, DataType::Float,
                   Value::ofF(0.1));
  EXPECT_EQ(V.F, (double)(float)0.1);
}

TEST(RuntimeOps, CompareAndCond) {
  EXPECT_EQ(compare3(DataType::Int32, Value::ofI(1), Value::ofI(2)), -1);
  EXPECT_EQ(compare3(DataType::Double, Value::ofF(2.5), Value::ofF(2.5)), 0);
  EXPECT_TRUE(testCond(BcCond::Le, 0));
  EXPECT_FALSE(testCond(BcCond::Gt, 0));
  EXPECT_TRUE(testCond(BcCond::Ne, -1));
}

//===----------------------------------------------------------------------===//
// Exceptions
//===----------------------------------------------------------------------===//

namespace {

/// thrower(x): throws AppError when x < 0, else returns x * 2. The caller
/// catches and returns -1.
Program makeExceptionProgram(uint32_t &CallerOut) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "AppError").finish();
  MethodBuilder T(P, "thrower", -1, MF_Static, {DataType::Int32},
                  DataType::Int32);
  auto Ok = T.newLabel();
  T.load(0).ifZero(BcCond::Ge, Ok);
  T.newObject(Exc).throwRef();
  T.place(Ok);
  T.load(0).constI(DataType::Int32, 2).binop(BcOp::Mul, DataType::Int32);
  T.retValue(DataType::Int32);
  uint32_t Thrower = T.finish();

  MethodBuilder C(P, "caller", -1, MF_Static, {DataType::Int32},
                  DataType::Int32);
  auto Handler = C.newLabel();
  auto Done = C.newLabel();
  uint32_t Start = C.beginTry();
  C.load(0).call(Thrower);
  C.endTry(Start, Handler, (int32_t)Exc);
  C.gotoLabel(Done);
  C.place(Handler);
  C.pop(DataType::Object);
  C.constI(DataType::Int32, -1);
  C.place(Done);
  C.retValue(DataType::Int32);
  CallerOut = C.finish();
  P.setEntryMethod(CallerOut);
  EXPECT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();
  return P;
}

} // namespace

TEST(Exceptions, CrossFrameUnwindBothEngines) {
  uint32_t Caller = 0;
  Program P = makeExceptionProgram(Caller);
  EXPECT_EQ(runBothEngines(P, Caller, 21, OptLevel::Hot), 42);
  EXPECT_EQ(runBothEngines(P, Caller, -5, OptLevel::Hot), -1);
}

TEST(Exceptions, UncaughtPropagatesToTop) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  MethodBuilder MB(P, "boom", -1, MF_Static, {}, DataType::Int32);
  MB.newObject(Exc).throwRef();
  uint32_t M = MB.finish();
  P.setEntryMethod(M);
  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  ExecResult R = VM.run({});
  EXPECT_TRUE(R.Exceptional);
  EXPECT_EQ(VM.heap().classOf(R.ExcRef), (int32_t)Exc);
}

TEST(Exceptions, ClassFilterSelectsHandler) {
  Program P;
  uint32_t Base = ClassBuilder(P, "Base").finish();
  uint32_t Derived = ClassBuilder(P, "Derived", (int32_t)Base).finish();
  uint32_t Other = ClassBuilder(P, "Other").finish();
  (void)Other;
  MethodBuilder MB(P, "pick", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  auto CatchDerived = MB.newLabel();
  auto CatchBase = MB.newLabel();
  auto Done = MB.newLabel();
  uint32_t Start = MB.beginTry();
  auto ThrowBase = MB.newLabel();
  MB.load(0).ifZero(BcCond::Eq, ThrowBase);
  MB.newObject(Derived).throwRef();
  MB.place(ThrowBase);
  MB.newObject(Base).throwRef();
  MB.endTry(Start, CatchDerived, (int32_t)Derived);
  // Inner region registered first = matched first; then the base catch.
  MB.endTry(Start, CatchBase, (int32_t)Base);
  MB.place(CatchDerived);
  MB.pop(DataType::Object);
  MB.constI(DataType::Int32, 2).gotoLabel(Done);
  MB.place(CatchBase);
  MB.pop(DataType::Object);
  MB.constI(DataType::Int32, 1).gotoLabel(Done);
  MB.place(Done);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  // x==0 -> Base thrown -> base handler (1). x!=0 -> Derived thrown ->
  // derived handler (2): a Derived is also caught by Base, but the
  // Derived filter is innermost/first.
  EXPECT_EQ(runBothEngines(P, M, 0, OptLevel::Warm), 1);
  EXPECT_EQ(runBothEngines(P, M, 1, OptLevel::Warm), 2);
}

TEST(Exceptions, RuntimeTrapsRaiseBuiltins) {
  Program P;
  MethodBuilder MB(P, "oob", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t Arr = MB.addLocal(DataType::Address);
  MB.constI(DataType::Int32, 4).newArray(DataType::Int32).store(Arr);
  MB.load(Arr).load(0).aload(DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  P.setEntryMethod(M);
  for (bool Jit : {false, true}) {
    VirtualMachine::Config Cfg;
    Cfg.EnableJit = Jit;
    Cfg.Control.Enabled = false;
    VirtualMachine VM(P, Cfg);
    if (Jit)
      VM.compileMethod(M, OptLevel::Cold);
    ExecResult Ok = VM.invoke(M, {Value::ofI(2)});
    EXPECT_FALSE(Ok.Exceptional);
    ExecResult Bad = VM.invoke(M, {Value::ofI(9)});
    ASSERT_TRUE(Bad.Exceptional);
    EXPECT_EQ(VM.heap().classOf(Bad.ExcRef),
              (int32_t)RtExceptionKind::ArrayIndexOutOfBounds);
    ExecResult Neg = VM.invoke(M, {Value::ofI(-1)});
    ASSERT_TRUE(Neg.Exceptional);
  }
}

TEST(Exceptions, DivByZeroTrapsCompiled) {
  Program P;
  MethodBuilder MB(P, "div", -1, MF_Static,
                   {DataType::Int32, DataType::Int32}, DataType::Int32);
  MB.load(0).load(1).binop(BcOp::Div, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  VM.compileMethod(M, OptLevel::Hot);
  ExecResult R = VM.invoke(M, {Value::ofI(10), Value::ofI(0)});
  ASSERT_TRUE(R.Exceptional);
  EXPECT_EQ(VM.heap().classOf(R.ExcRef),
            (int32_t)RtExceptionKind::ArithmeticDivByZero);
}

TEST(Exceptions, StackOverflowOnRunawayRecursion) {
  Program P;
  MethodInfo Proto;
  Proto.Name = "forever";
  Proto.Flags = MF_Static;
  Proto.ArgTypes = {DataType::Int32};
  Proto.ReturnType = DataType::Int32;
  uint32_t Self = P.declarePrototype(std::move(Proto));
  MethodBuilder MB(P, Self);
  MB.load(0).call(Self).retValue(DataType::Int32);
  MB.finish();
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  Cfg.MaxCallDepth = 64;
  VirtualMachine VM(P, Cfg);
  ExecResult R = VM.invoke(Self, {Value::ofI(1)});
  ASSERT_TRUE(R.Exceptional);
  EXPECT_EQ(VM.heap().classOf(R.ExcRef),
            (int32_t)RtExceptionKind::StackOverflow);
}

//===----------------------------------------------------------------------===//
// Virtual dispatch
//===----------------------------------------------------------------------===//

TEST(Dispatch, PolymorphicReceiverBothEngines) {
  Program P;
  uint32_t Base = ClassBuilder(P, "Base").finish();
  uint32_t Sub = ClassBuilder(P, "Sub", (int32_t)Base).finish();
  auto AddCalc = [&](uint32_t Cls, int64_t K) {
    MethodBuilder MB(P, "calc", (int32_t)Cls, MF_Public,
                     {DataType::Object}, DataType::Int32);
    MB.constI(DataType::Int32, K).retValue(DataType::Int32);
    return MB.finish();
  };
  uint32_t BaseCalc = AddCalc(Base, 10);
  AddCalc(Sub, 20);
  MethodBuilder MB(P, "go", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t O = MB.addLocal(DataType::Object);
  auto UseSub = MB.newLabel();
  auto Made = MB.newLabel();
  MB.load(0).ifZero(BcCond::Ne, UseSub);
  MB.newObject(Base).store(O).gotoLabel(Made);
  MB.place(UseSub);
  MB.newObject(Sub).store(O);
  MB.place(Made);
  MB.load(O).callVirtual(BaseCalc).retValue(DataType::Int32);
  uint32_t Go = MB.finish();
  EXPECT_EQ(runBothEngines(P, Go, 0, OptLevel::Hot), 10);
  EXPECT_EQ(runBothEngines(P, Go, 1, OptLevel::Hot), 20);
}

TEST(Dispatch, NullReceiverTraps) {
  Program P;
  uint32_t Base = ClassBuilder(P, "Base").finish();
  MethodBuilder V(P, "calc", (int32_t)Base, MF_Public, {DataType::Object},
                  DataType::Int32);
  V.constI(DataType::Int32, 1).retValue(DataType::Int32);
  uint32_t Calc = V.finish();
  MethodBuilder MB(P, "go", -1, MF_Static, {}, DataType::Int32);
  uint32_t O = MB.addLocal(DataType::Object);
  MB.load(O).callVirtual(Calc).retValue(DataType::Int32);
  uint32_t Go = MB.finish();
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  ExecResult R = VM.invoke(Go, {});
  ASSERT_TRUE(R.Exceptional);
  EXPECT_EQ(VM.heap().classOf(R.ExcRef),
            (int32_t)RtExceptionKind::NullPointer);
}

//===----------------------------------------------------------------------===//
// SimClock
//===----------------------------------------------------------------------===//

TEST(SimClock, MonotonicPerCore) {
  SimClock::Config C;
  C.MigrationPeriod = 1e18; // never migrate
  SimClock Clock(C);
  TscSample A = Clock.readTimestamp();
  Clock.advance(1000);
  TscSample B = Clock.readTimestamp();
  EXPECT_EQ(A.CoreId, B.CoreId);
  EXPECT_GT(B.Tsc, A.Tsc);
  // Delta reflects the elapsed cycles within per-core skew.
  EXPECT_NEAR((double)(B.Tsc - A.Tsc), 1000.0, 2.0);
}

TEST(SimClock, MigrationsHappen) {
  SimClock::Config C;
  C.MigrationPeriod = 100;
  C.Seed = 3;
  SimClock Clock(C);
  for (int I = 0; I < 1000; ++I)
    Clock.advance(10);
  EXPECT_GT(Clock.migrations(), 10u);
}

TEST(SimClock, CoresDrift) {
  SimClock::Config C;
  C.MigrationPeriod = 1e18;
  SimClock A(C);
  C.Seed = 43; // different core assignment / rates
  SimClock B(C);
  A.advance(1e7);
  B.advance(1e7);
  // Same elapsed cycles, different TSC readings: drift exists.
  EXPECT_NE(A.readTimestamp().Tsc, B.readTimestamp().Tsc);
}

//===----------------------------------------------------------------------===//
// Compilation control
//===----------------------------------------------------------------------===//

TEST(Control, PromotesThroughTiers) {
  CompilationControl::Config Cfg;
  CompilationControl Control(Cfg);
  unsigned Promotions = 0;
  OptLevel Last = OptLevel::Cold;
  for (int I = 0; I < 200000 && Promotions < 5; ++I) {
    auto Req = Control.onInvocationEnd(7, 10.0, LoopClass::NoLoops);
    if (Req) {
      EXPECT_FALSE(Req->IsExplorationRecompile);
      EXPECT_EQ((unsigned)Req->Level, Promotions); // strictly ascending
      Control.noteCompiled(7, Req->Level);
      Last = Req->Level;
      ++Promotions;
    }
  }
  EXPECT_EQ(Promotions, 5u);
  EXPECT_EQ(Last, OptLevel::Scorching);
}

TEST(Control, LoopyMethodsPromoteSooner) {
  CompilationControl::Config Cfg;
  auto FirstCompileAt = [&](LoopClass LC) {
    CompilationControl Control(Cfg);
    for (int I = 1;; ++I) {
      if (Control.onInvocationEnd(1, 1.0, LC))
        return I;
    }
  };
  EXPECT_LT(FirstCompileAt(LoopClass::ManyIterationLoops),
            FirstCompileAt(LoopClass::MayHaveLoops));
  EXPECT_LT(FirstCompileAt(LoopClass::MayHaveLoops),
            FirstCompileAt(LoopClass::NoLoops));
}

TEST(Control, TimeSamplingCatchesLongRunners) {
  CompilationControl::Config Cfg;
  CompilationControl Control(Cfg);
  // One invocation burning far more than the tier-0 cycle trigger.
  auto Req = Control.onInvocationEnd(1, Cfg.CycleTriggers[0] + 1,
                                     LoopClass::NoLoops);
  ASSERT_TRUE(Req.has_value());
  EXPECT_EQ(Req->Level, OptLevel::Cold);
}

TEST(Control, CollectModeIssuesExplorationRecompiles) {
  CompilationControl::Config Cfg;
  Cfg.CollectMode = true;
  Cfg.ExplorationTargetCycles = 1000.0;
  CompilationControl Control(Cfg);
  Control.noteCompiled(1, OptLevel::Cold);
  unsigned Explorations = 0;
  for (int I = 0; I < 5000; ++I) {
    auto Req = Control.onInvocationEnd(1, 10.0, LoopClass::NoLoops);
    if (Req && Req->IsExplorationRecompile) {
      ++Explorations;
      Control.noteCompiled(1, Req->Level);
    } else if (Req) {
      Control.noteCompiled(1, Req->Level);
    }
  }
  // Threshold = clamp(1000/avg(10), 50, 50000) = 100 invocations.
  EXPECT_GT(Explorations, 20u);
}

TEST(Control, ExplorationThresholdClampedToFifty) {
  CompilationControl::Config Cfg;
  Cfg.CollectMode = true;
  Cfg.ExplorationTargetCycles = 1.0; // would want ~0 invocations
  CompilationControl Control(Cfg);
  Control.noteCompiled(1, OptLevel::Cold);
  int FirstAt = 0;
  for (int I = 1; I < 200 && !FirstAt; ++I) {
    auto Req = Control.onInvocationEnd(1, 100.0, LoopClass::NoLoops);
    if (Req && Req->IsExplorationRecompile)
      FirstAt = I;
    else if (Req)
      Control.noteCompiled(1, Req->Level);
  }
  EXPECT_GE(FirstAt, 50); // the paper's lower bound
}

//===----------------------------------------------------------------------===//
// VM odds and ends
//===----------------------------------------------------------------------===//

TEST(Vm, HeapStatsAndGlobals) {
  Program P;
  uint32_t G = P.addGlobal(DataType::Int32);
  MethodBuilder MB(P, "g", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).putGlobal(G, DataType::Int32);
  MB.getGlobal(G, DataType::Int32).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  ExecResult R = VM.invoke(M, {Value::ofI(99)});
  EXPECT_EQ(R.Ret.I, 99);
  EXPECT_EQ(VM.getGlobal(G).I, 99);
}

TEST(Vm, SynchronizedMethodsChargeMonitorCost) {
  Program P;
  MethodBuilder A(P, "plain", -1, MF_Static, {DataType::Int32},
                  DataType::Int32);
  A.load(0).retValue(DataType::Int32);
  uint32_t Plain = A.finish();
  MethodBuilder B(P, "locked", -1, MF_Static | MF_Synchronized,
                  {DataType::Int32}, DataType::Int32);
  B.load(0).retValue(DataType::Int32);
  uint32_t Locked = B.finish();
  VirtualMachine::Config Cfg;
  Cfg.EnableJit = false;
  VirtualMachine VM(P, Cfg);
  double T0 = VM.clock().cycles();
  VM.invoke(Plain, {Value::ofI(1)});
  double PlainCost = VM.clock().cycles() - T0;
  T0 = VM.clock().cycles();
  VM.invoke(Locked, {Value::ofI(1)});
  double LockedCost = VM.clock().cycles() - T0;
  EXPECT_GT(LockedCost, PlainCost);
}

TEST(Vm, MultiArrayAllocationAndAccess) {
  Program P;
  MethodBuilder MB(P, "grid", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t G = MB.addLocal(DataType::Address);
  MB.constI(DataType::Int32, 3).constI(DataType::Int32, 4);
  MB.newMultiArray(DataType::Int32, 2).store(G);
  // g[2][3] = x; return g[2][3] + g[0][0];
  MB.load(G).constI(DataType::Int32, 2).aload(DataType::Address);
  MB.constI(DataType::Int32, 3).load(0).astore(DataType::Int32);
  MB.load(G).constI(DataType::Int32, 2).aload(DataType::Address);
  MB.constI(DataType::Int32, 3).aload(DataType::Int32);
  MB.load(G).constI(DataType::Int32, 0).aload(DataType::Address);
  MB.constI(DataType::Int32, 0).aload(DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  EXPECT_EQ(runBothEngines(P, M, 77, OptLevel::Warm), 77);
}

TEST(Vm, ArrayCopyAndCmpIntrinsics) {
  Program P;
  MethodBuilder MB(P, "ac", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t A = MB.addLocal(DataType::Address);
  uint32_t B = MB.addLocal(DataType::Address);
  uint32_t I = MB.addLocal(DataType::Int32);
  MB.constI(DataType::Int32, 8).newArray(DataType::Int32).store(A);
  MB.constI(DataType::Int32, 8).newArray(DataType::Int32).store(B);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, 8).ifCmp(BcCond::Ge, Exit);
  MB.load(A).load(I).load(I).astore(DataType::Int32);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  // arraycopy(a, 0, b, 0, 8); return arraycmp(a, b) == 0 ? 1 : 0
  MB.load(A).constI(DataType::Int32, 0);
  MB.load(B).constI(DataType::Int32, 0);
  MB.constI(DataType::Int32, 8);
  MB.arrayCopy();
  MB.load(A).load(B).arrayCmp();
  auto Eq = MB.newLabel();
  auto Done = MB.newLabel();
  MB.ifZero(BcCond::Eq, Eq);
  MB.constI(DataType::Int32, 0).gotoLabel(Done);
  MB.place(Eq);
  MB.constI(DataType::Int32, 1);
  MB.place(Done);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  EXPECT_EQ(runBothEngines(P, M, 0, OptLevel::Hot), 1);
}

TEST(Vm, DecimalAndLongDoubleTypesExecute) {
  Program P;
  MethodBuilder MB(P, "bcd", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).conv(DataType::Int32, DataType::PackedDecimal);
  MB.constI(DataType::PackedDecimal, 100)
      .binop(BcOp::Mul, DataType::PackedDecimal);
  MB.conv(DataType::PackedDecimal, DataType::ZonedDecimal);
  MB.conv(DataType::ZonedDecimal, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  EXPECT_EQ(runBothEngines(P, M, 7, OptLevel::Hot), 700);
}
