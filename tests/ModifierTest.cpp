//===- tests/ModifierTest.cpp - modifiers/ unit + property tests ----------===//

#include "modifiers/StrategyControl.h"

#include <gtest/gtest.h>

#include <set>

using namespace jitml;

TEST(Modifier, NullModifierLeavesEverythingEnabled) {
  PlanModifier M;
  EXPECT_TRUE(M.isNull());
  EXPECT_EQ(M.numDisabled(), 0u);
  for (unsigned K = 0; K < NumTransformations; ++K)
    EXPECT_FALSE(M.disables((TransformationKind)K));
}

TEST(Modifier, DisableAndRawRoundTrip) {
  PlanModifier M;
  M.disable(TransformationKind::LoopUnrolling);
  M.disable(TransformationKind::InlineSmall);
  EXPECT_FALSE(M.isNull());
  EXPECT_EQ(M.numDisabled(), 2u);
  PlanModifier Back = PlanModifier::fromRaw(M.raw());
  EXPECT_EQ(Back, M);
  EXPECT_TRUE(Back.disables(TransformationKind::LoopUnrolling));
  EXPECT_FALSE(Back.disables(TransformationKind::ConstantFolding));
}

TEST(Modifier, RandomizedGenerationDeterministicAndVaried) {
  Rng A(5), B(5);
  auto M1 = generateRandomizedModifiers(A, 50);
  auto M2 = generateRandomizedModifiers(B, 50);
  ASSERT_EQ(M1.size(), 50u);
  for (size_t I = 0; I < 50; ++I)
    EXPECT_EQ(M1[I], M2[I]);
  std::set<uint64_t> Distinct;
  for (const PlanModifier &M : M1)
    Distinct.insert(M.raw());
  EXPECT_GT(Distinct.size(), 45u); // "significant variation"
}

TEST(Modifier, ProgressiveStartsNullAndGrowsToQuarter) {
  // Property over Eq. 1: D_0 = 0 and D_L = 0.25; the disabled fraction
  // averaged over many trials tracks i * 0.25 / L.
  Rng R(11);
  const unsigned L = 100;
  auto Mods = generateProgressiveModifiers(R, L);
  ASSERT_EQ(Mods.size(), L + 1);
  EXPECT_TRUE(Mods[0].isNull()); // D_0 = 0
  // Average disabled fraction over the last decile approximates 0.25.
  double Avg = 0;
  for (unsigned I = L - 9; I <= L; ++I)
    Avg += (double)Mods[I].numDisabled() / NumTransformations;
  Avg /= 10.0;
  EXPECT_NEAR(Avg, 0.25, 0.08);
  // And over the first decile (excluding the null) it is far smaller.
  double Early = 0;
  for (unsigned I = 1; I <= 10; ++I)
    Early += (double)Mods[I].numDisabled() / NumTransformations;
  Early /= 10.0;
  EXPECT_LT(Early, 0.10);
}

TEST(Queue, RetiresAfterConfiguredUses) {
  Rng R(2);
  auto Mods = generateRandomizedModifiers(R, 2);
  ModifierQueue Q(Mods, /*UsesPerModifier=*/3);
  // Slots: m0 m1 null, each served 3 times.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Q.next(), Mods[0]);
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Q.next(), Mods[1]);
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Q.next().isNull());
  EXPECT_TRUE(Q.exhausted());
  // Exhausted queues keep answering with the null modifier.
  EXPECT_TRUE(Q.next().isNull());
}

TEST(Queue, EveryThirdSlotIsNull) {
  Rng R(3);
  auto Mods = generateRandomizedModifiers(R, 6);
  ModifierQueue Q(Mods, 1);
  std::vector<PlanModifier> Served;
  while (!Q.exhausted())
    Served.push_back(Q.next());
  ASSERT_EQ(Served.size(), 9u); // 6 + 3 interleaved nulls
  EXPECT_TRUE(Served[2].isNull());
  EXPECT_TRUE(Served[5].isNull());
  EXPECT_TRUE(Served[8].isNull());
  EXPECT_FALSE(Served[0].isNull());
}

TEST(Strategy, NullOnlyModeAlwaysNull) {
  StrategyConfig Cfg;
  Cfg.Strategy = SearchStrategy::NullOnly;
  StrategyControl SC(Cfg);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(SC.modifierFor(1, OptLevel::Warm).isNull());
  EXPECT_FALSE(SC.explorationExhausted());
}

TEST(Strategy, MethodNeverSeesSameModifierTwice) {
  StrategyConfig Cfg;
  Cfg.Strategy = SearchStrategy::Randomized;
  Cfg.ModifiersPerLevel = 30;
  Cfg.UsesPerModifier = 4;
  StrategyControl SC(Cfg);
  std::set<uint64_t> SeenNonNull;
  for (int I = 0; I < 60; ++I) {
    PlanModifier M = SC.modifierFor(/*Method=*/9, OptLevel::Cold);
    if (M.isNull())
      continue; // the null modifier is exempt by design
    EXPECT_TRUE(SeenNonNull.insert(M.raw()).second)
        << "modifier repeated for the same method";
  }
}

TEST(Strategy, DifferentLevelsHaveIndependentQueues) {
  StrategyConfig Cfg;
  Cfg.Strategy = SearchStrategy::Randomized;
  Cfg.ModifiersPerLevel = 4;
  Cfg.UsesPerModifier = 1;
  StrategyControl SC(Cfg);
  PlanModifier Cold = SC.modifierFor(1, OptLevel::Cold);
  PlanModifier Warm = SC.modifierFor(1, OptLevel::Warm);
  // Seeded independently per level.
  EXPECT_NE(Cold.raw(), Warm.raw());
}

TEST(Strategy, FreezeAndExhaustion) {
  StrategyConfig Cfg;
  Cfg.Strategy = SearchStrategy::Progressive;
  Cfg.ModifiersPerLevel = 4;
  Cfg.UsesPerModifier = 1;
  Cfg.MaxRecompilesPerMethod = 3;
  StrategyControl SC(Cfg);
  EXPECT_FALSE(SC.methodFrozen(5));
  for (int I = 0; I < 3; ++I)
    SC.noteRecompile(5);
  EXPECT_TRUE(SC.methodFrozen(5));
  EXPECT_FALSE(SC.methodFrozen(6));
  // Drain every level's queue: exploration ends gracefully.
  for (unsigned L = 0; L < NumOptLevels; ++L)
    for (int I = 0; I < 100; ++I)
      (void)SC.modifierFor(100 + I, (OptLevel)L);
  EXPECT_TRUE(SC.explorationExhausted());
}
