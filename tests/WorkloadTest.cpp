//===- tests/WorkloadTest.cpp - workload generator tests (TEST_P sweep) ---===//

#include "bytecode/Verifier.h"
#include "runtime/VirtualMachine.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jitml;

TEST(WorkloadRegistry, SuitesMatchThePaper) {
  EXPECT_EQ(specJvm98Suite().size(), 8u);
  EXPECT_EQ(daCapoSuite().size(), 12u); // tradebeans/tradesoap excluded
  EXPECT_EQ(trainingBenchmarks().size(), 5u);
  // Training set: compress, db, mpegaudio, mtrt, raytrace.
  std::vector<std::string> Codes;
  for (const WorkloadSpec &S : trainingBenchmarks())
    Codes.push_back(S.Code);
  EXPECT_EQ(Codes, (std::vector<std::string>{"co", "db", "mp", "mt", "rt"}));
  EXPECT_EQ(workloadByCode("h2").Name, "h2");
  EXPECT_EQ(workloadByCode("jc").Name, "javac");
}

TEST(WorkloadRegistry, CodesUnique) {
  std::set<std::string> Codes;
  for (const WorkloadSpec &S : specJvm98Suite())
    EXPECT_TRUE(Codes.insert(S.Code).second) << S.Code;
  for (const WorkloadSpec &S : daCapoSuite())
    EXPECT_TRUE(Codes.insert(S.Code).second) << S.Code;
}

TEST(WorkloadGen, DeterministicPrograms) {
  const WorkloadSpec &Spec = workloadByCode("db");
  Program A = buildWorkload(Spec);
  Program B = buildWorkload(Spec);
  ASSERT_EQ(A.numMethods(), B.numMethods());
  for (uint32_t M = 0; M < A.numMethods(); ++M) {
    EXPECT_EQ(A.signatureOf(M), B.signatureOf(M));
    EXPECT_EQ(A.methodAt(M).Code.size(), B.methodAt(M).Code.size());
  }
  EXPECT_EQ(workloadChecksum(A, 2), workloadChecksum(B, 2));
}

//===----------------------------------------------------------------------===//
// Parameterized sweep: every benchmark in both suites verifies, runs
// deterministically, and computes the same checksum under the adaptive
// JIT as under the pure interpreter.
//===----------------------------------------------------------------------===//

class WorkloadSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSweep, VerifiesAndMatchesInterpreter) {
  const WorkloadSpec &Spec = workloadByCode(GetParam());
  Program P = buildWorkload(Spec);
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();
  EXPECT_GE(P.numMethods(), 10u);

  const unsigned Iterations = 2;
  int64_t Reference = workloadChecksum(P, Iterations);

  VirtualMachine::Config Cfg;
  VirtualMachine VM(P, Cfg);
  int64_t Jit = 0;
  for (unsigned I = 0; I < Iterations; ++I) {
    ExecResult R = VM.run({Value::ofI((int64_t)I)});
    ASSERT_FALSE(R.Exceptional);
    Jit = (int64_t)mix64((uint64_t)Jit ^ (uint64_t)R.Ret.I);
  }
  EXPECT_EQ(Jit, Reference) << "adaptive JIT changed program behavior";
  EXPECT_GT(VM.stats().Compilations, 0u);
}

namespace {

std::vector<std::string> allWorkloadCodes() {
  std::vector<std::string> Codes;
  for (const WorkloadSpec &S : specJvm98Suite())
    Codes.push_back(S.Code);
  for (const WorkloadSpec &S : daCapoSuite())
    Codes.push_back(S.Code);
  return Codes;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSweep,
                         ::testing::ValuesIn(allWorkloadCodes()),
                         [](const auto &Info) { return Info.param; });
