//===- tests/CorpusTest.cpp - Replay the persistent repro corpus ----------===//
//
// Every *.repro file under tests/corpus/ replays on every ctest run, so a
// bug that was ever found by the fuzzer (or fixed by hand and pinned as a
// scenario) stays fixed. Two kinds of entry:
//
//   differential  the file carries a reduced FuzzInput; replay runs the
//                 full oracle. With the recorded fault spec armed it must
//                 diverge (the repro still reproduces); with faults
//                 disarmed — and for entries recorded against the real
//                 compiler — it must be clean (the bug stays fixed).
//   scenario      the file names a historical bug class; the name maps to
//                 a hand-written replay below.
//
// JITML_CORPUS_DIR points at the source-tree corpus (set in
// tests/CMakeLists.txt) so the suite needs no install step.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "codegen/NativeInst.h"
#include "mldata/Normalizer.h"
#include "runtime/CodeCache.h"
#include "support/FaultInjection.h"
#include "verify/Corpus.h"
#include "verify/DifferentialFuzzer.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::verify;

#ifndef JITML_CORPUS_DIR
#define JITML_CORPUS_DIR "tests/corpus"
#endif

namespace {

// --- Scenario replays ----------------------------------------------------
//
// Each function re-runs the distilled form of a bug this codebase actually
// shipped (see CHANGES.md) and passes only while the fix holds.

/// Scaling::fromText once counted lines instead of tracking indices, so a
/// file with a duplicated index and a missing one parsed fine and silently
/// mis-scaled every feature from the missing index on.
void replayScalingDuplicateIndex() {
  // A well-formed table: every index exactly once.
  std::string Good;
  for (unsigned I = 0; I < NumFeatures; ++I)
    Good += std::to_string(I) + " 0 1\n";
  Scaling S;
  EXPECT_TRUE(Scaling::fromText(Good, S));

  // Duplicate index 3, drop index 4: same line count, corrupt content.
  std::string Bad;
  for (unsigned I = 0; I < NumFeatures; ++I)
    Bad += std::to_string(I == 4 ? 3 : I) + " 0 1\n";
  EXPECT_FALSE(Scaling::fromText(Bad, S))
      << "duplicate-index scaling file must be rejected";

  // A short file (missing trailing index) is also corrupt.
  std::string Short;
  for (unsigned I = 0; I + 1 < NumFeatures; ++I)
    Short += std::to_string(I) + " 0 1\n";
  EXPECT_FALSE(Scaling::fromText(Short, S));
}

/// An async worker that drew an older compile ticket than a faster rival
/// must not clobber the newer installed body when it finally finishes.
void replayStaleInstall() {
  CodeCache Cache;
  Cache.reset(1);
  auto Newer = std::make_unique<NativeMethod>();
  Newer->NumVRegs = 2; // tag so we can tell the bodies apart
  ASSERT_TRUE(Cache.install(0, std::move(Newer), /*Ticket=*/7));

  auto Stale = std::make_unique<NativeMethod>();
  Stale->NumVRegs = 1;
  EXPECT_FALSE(Cache.install(0, std::move(Stale), /*Ticket=*/3))
      << "older ticket must lose the install race";
  EXPECT_EQ(Cache.staleRejected(), 1u);
  ASSERT_NE(Cache.lookup(0), nullptr);
  EXPECT_EQ(Cache.lookup(0)->NumVRegs, 2u)
      << "stale install clobbered the newer body";

  // Equal ticket is also stale (exactly-once handoff).
  auto Equal = std::make_unique<NativeMethod>();
  EXPECT_FALSE(Cache.install(0, std::move(Equal), /*Ticket=*/7));
}

/// Recompiling a recursive method while native frames of the old body are
/// still live once reclaimed the old body too eagerly (use-after-free the
/// ASan job catches if it regresses). Replay: drive fib through every
/// promotion with recursion active and eagerly reclaim at each step.
void replayRecursiveRecompile() {
  Program P;
  uint32_t Fib = jitml::testing::addFib(P);
  VirtualMachine::Config Cfg;
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    for (unsigned K = 0; K < 3; ++K)
      Cfg.Control.InvocationTriggers[L][K] = 2; // promote at every turn
    Cfg.Control.CycleTriggers[L] = 1e18;
  }
  VirtualMachine VM(P, Cfg);
  for (int I = 0; I < 12; ++I) {
    ExecResult R = VM.invoke(Fib, {Value::ofI(12)});
    ASSERT_FALSE(R.Exceptional);
    EXPECT_EQ(R.Ret.I, 144) << "fib(12) wrong after recompile " << I;
  }
}

void replayScenario(const CorpusEntry &E, const std::string &File) {
  SCOPED_TRACE(File);
  if (E.Scenario == "scaling-duplicate-index")
    replayScalingDuplicateIndex();
  else if (E.Scenario == "stale-install")
    replayStaleInstall();
  else if (E.Scenario == "recursive-recompile")
    replayRecursiveRecompile();
  else
    FAIL() << "corpus file names unknown scenario '" << E.Scenario
           << "' — add a replay to CorpusTest.cpp";
}

void replayDifferential(const CorpusEntry &E, const std::string &File) {
  SCOPED_TRACE(File);
  if (!E.FaultSpec.empty()) {
    // The repro was minimized against an injected bug: armed, it must
    // still diverge (proving the reducer kept the trigger) ...
    ASSERT_TRUE(FaultRegistry::global().arm(E.FaultSpec, E.FaultSeed));
    OracleResult Armed = runOracle(E.Input);
    EXPECT_TRUE(Armed.diverged())
        << "repro no longer reproduces under " << E.FaultSpec;
    FaultRegistry::global().disarm();
  }
  // ... and with the real (or repaired) compiler it must be clean.
  OracleResult Clean = runOracle(E.Input);
  EXPECT_FALSE(Clean.diverged())
      << divergenceKindName(Clean.Kind) << ": " << Clean.Detail;
}

} // namespace

TEST(Corpus, DirectoryIsSeeded) {
  // The corpus ships with the tree; an empty directory means the compile
  // definition points somewhere wrong, which would make every replay
  // below pass vacuously.
  EXPECT_GE(listCorpusFiles(JITML_CORPUS_DIR).size(), 4u)
      << "corpus dir: " << JITML_CORPUS_DIR;
}

TEST(Corpus, EveryFileReplays) {
  FaultRegistry::global().disarm();
  for (const std::string &File : listCorpusFiles(JITML_CORPUS_DIR)) {
    CorpusEntry E;
    std::string Err;
    ASSERT_TRUE(readCorpusFile(File, E, &Err)) << Err;
    if (E.Kind == "scenario")
      replayScenario(E, File);
    else
      replayDifferential(E, File);
  }
  FaultRegistry::global().disarm();
}
