//===- tests/HarnessTest.cpp - harness utilities tests --------------------===//

#include "harness/FigureReport.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace jitml;

TEST(Harness, ConfiguredRunsHonorsEnvironment) {
  ::unsetenv("JITML_RUNS");
  EXPECT_EQ(configuredRuns(30), 30u);
  ::setenv("JITML_RUNS", "7", 1);
  EXPECT_EQ(configuredRuns(30), 7u);
  ::setenv("JITML_RUNS", "garbage", 1);
  EXPECT_EQ(configuredRuns(30), 30u);
  ::setenv("JITML_RUNS", "0", 1);
  EXPECT_EQ(configuredRuns(30), 30u); // must stay positive
  ::unsetenv("JITML_RUNS");
}

TEST(Harness, CacheDirHonorsEnvironment) {
  ::unsetenv("JITML_CACHE_DIR");
  EXPECT_EQ(ModelStore::cacheDir(), "./jitml_bench_cache");
  ::setenv("JITML_CACHE_DIR", "/tmp/some_cache", 1);
  EXPECT_EQ(ModelStore::cacheDir(), "/tmp/some_cache");
  ::unsetenv("JITML_CACHE_DIR");
}

TEST(Harness, SetExcludingFindsLooFold) {
  ModelStore::Artifacts A;
  for (const char *Code : {"co", "db", "mp"}) {
    ModelSet S;
    S.Name = std::string("H-") + Code;
    S.LeftOutBenchmark = Code;
    A.Sets.push_back(std::move(S));
  }
  const ModelSet *Found = ModelStore::setExcluding(A, "db");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Name, "H-db");
  EXPECT_EQ(ModelStore::setExcluding(A, "jc"), nullptr); // reservation set
}

TEST(Harness, FigureFormatterRendersRowsAndNotes) {
  FigureRequest Req;
  Req.Title = "Test figure";
  Req.Metric = FigureMetric::StartupPerformance;
  Req.Runs = 3;
  Req.Iterations = 1;
  FigureData Data;
  FigureData::Row Loo;
  Loo.Benchmark = "compress";
  Loo.Code = "co";
  Loo.LeaveOneOut = true;
  Loo.PerModel.resize(5);
  Loo.PerModel[0] = {1.08, 0.02};
  FigureData::Row Res;
  Res.Benchmark = "jess";
  Res.Code = "js";
  Res.PerModel.resize(5);
  for (auto &R : Res.PerModel)
    R = {1.10, 0.01};
  Data.Rows = {Loo, Res};
  Data.ModelGeoMean = {1.1, 1.1, 1.1, 1.1, 1.1};
  std::string Out = formatFigure(Req, Data);
  EXPECT_NE(Out.find("Test figure"), std::string::npos);
  EXPECT_NE(Out.find("higher bars are better"), std::string::npos);
  EXPECT_NE(Out.find("leave-one-out"), std::string::npos);
  EXPECT_NE(Out.find("reservation set"), std::string::npos);
  EXPECT_NE(Out.find("1.080 +- 0.020"), std::string::npos);
  // The leave-one-out row leaves the other folds blank.
  EXPECT_NE(Out.find("| compress"), std::string::npos);

  Req.Metric = FigureMetric::CompileTime;
  Out = formatFigure(Req, Data);
  EXPECT_NE(Out.find("lower bars are better"), std::string::npos);
}

TEST(Harness, RelativeCiPropagation) {
  Series A, B;
  for (int I = 0; I < 10; ++I) {
    A.Wall.add(1000.0 + I);
    B.Wall.add(2000.0 + 2 * I);
    A.Compile.add(100.0);
    B.Compile.add(50.0);
  }
  Relative Perf = relativePerformance(A, B);
  EXPECT_NEAR(Perf.Value, 0.5, 0.01); // A/B: A is the baseline
  Relative Comp = relativeCompileTime(A, B);
  EXPECT_NEAR(Comp.Value, 0.5, 1e-9); // variant/baseline
  // Degenerate inputs yield zeroed results, never NaN/inf.
  Series Empty;
  Relative Zero = relativePerformance(Empty, A);
  EXPECT_EQ(Zero.Value, 0.0);
  EXPECT_EQ(Zero.Ci, 0.0);
}
