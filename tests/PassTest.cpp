//===- tests/PassTest.cpp - Optimization pass unit tests ------------------===//
//
// Each engine gets (a) a structural check that the rewrite fired and (b) a
// semantic check that compiled execution still matches the interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "il/ILGenerator.h"
#include "il/ILVerifier.h"
#include "opt/Optimizer.h"
#include "opt/Passes.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

/// Optimizes \p Method with exactly \p Kinds (in order), checks IL
/// soundness, and returns how many times \p Tracked reported a change.
uint32_t runPasses(Program &P, uint32_t Method,
                   std::vector<TransformationKind> Kinds,
                   TransformationKind Tracked,
                   std::unique_ptr<MethodIL> *KeepIL = nullptr) {
  auto IL = generateIL(P, Method);
  PassContext Ctx(*IL);
  for (TransformationKind K : Kinds)
    runTransformation(Ctx, K);
  std::vector<std::string> Errors = verifyIL(*IL);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
  uint32_t Changes = Ctx.changesOf(Tracked);
  if (KeepIL)
    *KeepIL = std::move(IL);
  return Changes;
}

unsigned countOps(const MethodIL &IL, ILOp Op) {
  unsigned Count = 0;
  std::vector<bool> Seen(IL.numNodes(), false);
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    for (NodeId Root : IL.block(B).Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        if (Seen[Id])
          continue;
        Seen[Id] = true;
        if (IL.node(Id).Op == Op)
          ++Count;
        for (NodeId Kid : IL.node(Id).Kids)
          Stack.push_back(Kid);
      }
    }
  }
  return Count;
}

} // namespace

TEST(Fold, ConstantsAcrossTypes) {
  Program P;
  MethodBuilder MB(P, "k", -1, MF_Static, {}, DataType::Int32);
  MB.constI(DataType::Int32, 6).constI(DataType::Int32, 7);
  MB.binop(BcOp::Mul, DataType::Int32);
  MB.constI(DataType::Int32, 2).binop(BcOp::Shl, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::ConstantFolding},
            TransformationKind::ConstantFolding, &IL);
  // The whole expression folded to one constant: 42 << 2 = 168.
  const Block &Entry = IL->block(IL->entryBlock());
  const Node &Ret = IL->node(Entry.Trees.back());
  ASSERT_EQ(Ret.Op, ILOp::Return);
  const Node &V = IL->node(Ret.Kids[0]);
  EXPECT_EQ(V.Op, ILOp::Const);
  EXPECT_EQ(V.ConstI, 168);
}

TEST(Fold, IntegerWrapAroundMatchesRuntime) {
  Program P;
  MethodBuilder MB(P, "wrap", -1, MF_Static, {}, DataType::Int32);
  MB.constI(DataType::Int32, INT32_MAX).constI(DataType::Int32, 1);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::ConstantFolding},
            TransformationKind::ConstantFolding, &IL);
  const Node &Ret = IL->node(IL->block(IL->entryBlock()).Trees.back());
  EXPECT_EQ(IL->node(Ret.Kids[0]).ConstI, INT32_MIN);
}

TEST(Fold, DivByZeroNotFolded) {
  Program P;
  MethodBuilder MB(P, "dz", -1, MF_Static, {}, DataType::Int32);
  MB.constI(DataType::Int32, 7).constI(DataType::Int32, 0);
  MB.binop(BcOp::Div, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::ConstantFolding},
            TransformationKind::ConstantFolding, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::Div), 1u); // kept: must trap at run time
}

TEST(Fold, ConversionChains) {
  Program P;
  MethodBuilder MB(P, "cv", -1, MF_Static, {}, DataType::Int32);
  MB.constF(DataType::Double, 3.9).conv(DataType::Double, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::ConstantFolding},
            TransformationKind::ConstantFolding, &IL);
  const Node &Ret = IL->node(IL->block(IL->entryBlock()).Trees.back());
  EXPECT_EQ(IL->node(Ret.Kids[0]).ConstI, 3); // truncation toward zero
}

TEST(Simplify, AlgebraicIdentities) {
  Program P;
  MethodBuilder MB(P, "id", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  // ((x + 0) * 1) ^ (x - x)  ->  x
  MB.load(0).constI(DataType::Int32, 0).binop(BcOp::Add, DataType::Int32);
  MB.constI(DataType::Int32, 1).binop(BcOp::Mul, DataType::Int32);
  MB.load(0).load(0).binop(BcOp::Sub, DataType::Int32);
  MB.binop(BcOp::Xor, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  uint32_t Changes = runPasses(
      P, M,
      {TransformationKind::ExpressionSimplification,
       TransformationKind::ExpressionSimplification},
      TransformationKind::ExpressionSimplification);
  (void)Changes;
  EXPECT_EQ(runBothEngines(P, M, 1234, OptLevel::Warm), 1234);
}

TEST(StrengthRed, MulByPowerOfTwoBecomesShift) {
  Program P;
  MethodBuilder MB(P, "sh", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).constI(DataType::Int32, 8).binop(BcOp::Mul, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::StrengthReduction},
            TransformationKind::StrengthReduction, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::Mul), 0u);
  EXPECT_EQ(countOps(*IL, ILOp::Shl), 1u);
  EXPECT_EQ(runBothEngines(P, M, -37), -296);
}

TEST(StrengthRed, MulByPow2PlusMinusOne) {
  for (int64_t C : {9, 7}) { // 8+1 and 8-1
    Program P;
    MethodBuilder MB(P, "sh", -1, MF_Static, {DataType::Int32},
                     DataType::Int32);
    MB.load(0).constI(DataType::Int32, C).binop(BcOp::Mul, DataType::Int32);
    MB.retValue(DataType::Int32);
    uint32_t M = MB.finish();
    std::unique_ptr<MethodIL> IL;
    runPasses(P, M, {TransformationKind::StrengthReduction},
              TransformationKind::StrengthReduction, &IL);
    EXPECT_EQ(countOps(*IL, ILOp::Mul), 0u) << "C=" << C;
    EXPECT_EQ(runBothEngines(P, M, 13), 13 * C);
  }
}

TEST(Reassoc, ConstantsGatherAndFold) {
  Program P;
  MethodBuilder MB(P, "ra", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  // ((x + 3) + 4) -> x + 7 after reassociation + folding.
  MB.load(0).constI(DataType::Int32, 3).binop(BcOp::Add, DataType::Int32);
  MB.constI(DataType::Int32, 4).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M,
            {TransformationKind::Reassociation,
             TransformationKind::ConstantFolding},
            TransformationKind::Reassociation, &IL);
  const Node &Ret = IL->node(IL->block(IL->entryBlock()).Trees.back());
  const Node &Add = IL->node(Ret.Kids[0]);
  ASSERT_EQ(Add.Op, ILOp::Add);
  EXPECT_EQ(IL->node(Add.Kids[1]).ConstI, 7);
}

TEST(LocalCSE, CommonsRepeatedSubexpressions) {
  Program P;
  MethodBuilder MB(P, "cse", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  // (x*x) + (x*x): the second multiply should be commoned away.
  MB.load(0).load(0).binop(BcOp::Mul, DataType::Int32);
  MB.load(0).load(0).binop(BcOp::Mul, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::LocalValueNumbering},
            TransformationKind::LocalValueNumbering, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::Mul), 1u);
  EXPECT_EQ(runBothEngines(P, M, 11), 242);
}

TEST(LocalCSE, LoadLocalKilledByStore) {
  Program P;
  MethodBuilder MB(P, "kill", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t T = MB.addLocal(DataType::Int32);
  // t = x + 1; x' dead... Use: a = x; x(local0) = 9; b = x; return a+b;
  MB.load(0).store(T);                           // t = x
  MB.constI(DataType::Int32, 9).store(0);        // x = 9
  MB.load(T).load(0).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  // CSE must not merge the pre- and post-store loads of local 0.
  runPasses(P, M, {TransformationKind::LocalValueNumbering},
            TransformationKind::LocalValueNumbering);
  EXPECT_EQ(runBothEngines(P, M, 5), 14);
}

TEST(CopyProp, ConstReachesUse) {
  Program P;
  MethodBuilder MB(P, "cp", -1, MF_Static, {}, DataType::Int32);
  uint32_t A = MB.addLocal(DataType::Int32);
  MB.constI(DataType::Int32, 21).store(A);
  MB.load(A).load(A).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M,
            {TransformationKind::LocalCopyPropagation,
             TransformationKind::ConstantFolding},
            TransformationKind::LocalCopyPropagation, &IL);
  const Node &Ret = IL->node(IL->block(IL->entryBlock()).Trees.back());
  EXPECT_EQ(IL->node(Ret.Kids[0]).Op, ILOp::Const);
  EXPECT_EQ(IL->node(Ret.Kids[0]).ConstI, 42);
}

TEST(DeadCode, DeadStoreAndTreeRemoved) {
  Program P;
  MethodBuilder MB(P, "dead", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t T = MB.addLocal(DataType::Int32);
  MB.load(0).constI(DataType::Int32, 5).binop(BcOp::Mul, DataType::Int32);
  MB.store(T); // dead: overwritten below
  MB.load(0).store(T);
  MB.load(T).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Dse = runPasses(P, M,
                           {TransformationKind::DeadStoreElimination,
                            TransformationKind::DeadTreeElimination},
                           TransformationKind::DeadStoreElimination, &IL);
  EXPECT_GE(Dse, 1u);
  EXPECT_EQ(countOps(*IL, ILOp::Mul), 0u); // the dead multiply vanished
  EXPECT_EQ(runBothEngines(P, M, 123), 123);
}

TEST(Checks, RedundantNullChecksRemoved) {
  Program P;
  ClassBuilder CB(P, "Obj");
  CB.addField(DataType::Int32);
  uint32_t Cls = CB.finish();
  (void)Cls;
  MethodBuilder MB(P, "nc", -1, MF_Static, {DataType::Object},
                   DataType::Int32);
  MB.load(0).getField(0, DataType::Int32);
  MB.load(0).getField(0, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::NullCheckElimination},
            TransformationKind::NullCheckElimination, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::NullCheck), 1u); // second check redundant
}

TEST(Checks, DivCheckOnNonzeroConstRemoved) {
  Program P;
  MethodBuilder MB(P, "dc", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).constI(DataType::Int32, 7).binop(BcOp::Div, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, M, {TransformationKind::DivCheckElimination},
            TransformationKind::DivCheckElimination, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::DivCheck), 0u);
  EXPECT_EQ(runBothEngines(P, M, 700), 100);
}

TEST(Checks, GuardMergingFusesNullIntoBounds) {
  Program P;
  MethodBuilder MB(P, "gm", -1, MF_Static,
                   {DataType::Address, DataType::Int32}, DataType::Int32);
  MB.load(0).load(1).aload(DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Changes = runPasses(P, M, {TransformationKind::GuardMerging},
                               TransformationKind::GuardMerging, &IL);
  EXPECT_EQ(Changes, 1u);
  EXPECT_EQ(countOps(*IL, ILOp::NullCheck), 0u);
  // The surviving bounds check carries the fused flag.
  bool Fused = false;
  for (NodeId Id = 0; Id < IL->numNodes(); ++Id)
    if (IL->node(Id).Op == ILOp::BoundsCheck && IL->node(Id).B == 1)
      Fused = true;
  EXPECT_TRUE(Fused);
}

TEST(Branch, ConstantConditionFolds) {
  Program P;
  MethodBuilder MB(P, "bf", -1, MF_Static, {}, DataType::Int32);
  auto Else = MB.newLabel();
  MB.constI(DataType::Int32, 1).constI(DataType::Int32, 2);
  MB.ifCmp(BcCond::Lt, Else);
  MB.constI(DataType::Int32, 100).retValue(DataType::Int32);
  MB.place(Else);
  MB.constI(DataType::Int32, 200).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Folds = runPasses(P, M,
                             {TransformationKind::BranchFolding,
                              TransformationKind::UnreachableCodeElimination},
                             TransformationKind::BranchFolding, &IL);
  EXPECT_EQ(Folds, 1u);
  EXPECT_EQ(countOps(*IL, ILOp::Branch), 0u);
  EXPECT_EQ(runBothEngines(P, M, 0, OptLevel::Cold), 200); // 1<2 taken
}

TEST(Inline, TrivialCalleeDisappears) {
  Program P = makeSumProgram(); // main calls sumToN (too big for trivial)
  // Add a trivial helper and a caller.
  MethodBuilder H(P, "half", -1, MF_Static, {DataType::Int32},
                  DataType::Int32);
  H.load(0).constI(DataType::Int32, 2).binop(BcOp::Div, DataType::Int32);
  H.retValue(DataType::Int32);
  uint32_t Half = H.finish();
  MethodBuilder C(P, "caller", -1, MF_Static, {DataType::Int32},
                  DataType::Int32);
  C.load(0).call(Half).call(Half).retValue(DataType::Int32);
  uint32_t Caller = C.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, Caller, {TransformationKind::InlineTrivial},
            TransformationKind::InlineTrivial, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::Call), 0u);
  EXPECT_EQ(runBothEngines(P, Caller, 100, OptLevel::Cold), 25);
}

TEST(Inline, SynchronizedCalleeRefused) {
  Program P;
  MethodBuilder H(P, "sync", -1, MF_Static | MF_Synchronized,
                  {DataType::Int32}, DataType::Int32);
  H.load(0).retValue(DataType::Int32);
  uint32_t Sync = H.finish();
  MethodBuilder C(P, "caller", -1, MF_Static, {DataType::Int32},
                  DataType::Int32);
  C.load(0).call(Sync).retValue(DataType::Int32);
  uint32_t Caller = C.finish();
  std::unique_ptr<MethodIL> IL;
  runPasses(P, Caller, {TransformationKind::InlineAggressive},
            TransformationKind::InlineSmall, &IL);
  EXPECT_EQ(countOps(*IL, ILOp::Call), 1u); // still a call
}

TEST(Inline, RecursionBounded) {
  Program P;
  uint32_t Fib = addFib(P);
  std::unique_ptr<MethodIL> IL;
  runPasses(P, Fib, {TransformationKind::InlineAggressive},
            TransformationKind::InlineSmall, &IL);
  // Growth budget stops runaway self-splicing; calls remain.
  EXPECT_GE(countOps(*IL, ILOp::Call), 1u);
  EXPECT_EQ(runBothEngines(P, Fib, 12, OptLevel::VeryHot), 144);
}

TEST(Devirt, MonomorphicCallGoesDirect) {
  Program P;
  uint32_t Base = ClassBuilder(P, "Base").finish();
  MethodBuilder V(P, "val", (int32_t)Base, MF_Public, {DataType::Object},
                  DataType::Int32);
  V.constI(DataType::Int32, 7).retValue(DataType::Int32);
  uint32_t Val = V.finish();
  MethodBuilder C(P, "go", -1, MF_Static, {}, DataType::Int32);
  C.newObject(Base).callVirtual(Val).retValue(DataType::Int32);
  uint32_t Go = C.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Changes = runPasses(P, Go, {TransformationKind::Devirtualization},
                               TransformationKind::Devirtualization, &IL);
  EXPECT_GE(Changes, 1u);
  for (NodeId Id = 0; Id < IL->numNodes(); ++Id) {
    if (IL->node(Id).Op == ILOp::Call) {
      EXPECT_EQ(IL->node(Id).B, 0); // direct now
    }
  }
  EXPECT_EQ(runBothEngines(P, Go, 0, OptLevel::Warm), 7);
}

TEST(Escape, NonEscapingAllocationMarked) {
  Program P;
  ClassBuilder CB(P, "Rec");
  CB.addField(DataType::Int32);
  uint32_t Rec = CB.finish();
  MethodBuilder MB(P, "esc", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t O = MB.addLocal(DataType::Object);
  MB.newObject(Rec).store(O);
  MB.load(O).load(0).putField(0, DataType::Int32);
  MB.load(O).getField(0, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Changes = runPasses(P, M, {TransformationKind::EscapeAnalysis},
                               TransformationKind::EscapeAnalysis, &IL);
  EXPECT_EQ(Changes, 1u);
  bool Marked = false;
  for (NodeId Id = 0; Id < IL->numNodes(); ++Id)
    if (IL->node(Id).Op == ILOp::New && (IL->node(Id).B & 1))
      Marked = true;
  EXPECT_TRUE(Marked);
  EXPECT_EQ(runBothEngines(P, M, 55, OptLevel::Hot), 55);
}

TEST(Escape, ReturnedAllocationEscapes) {
  Program P;
  uint32_t Rec = ClassBuilder(P, "Rec").finish();
  MethodBuilder MB(P, "ret", -1, MF_Static, {}, DataType::Object);
  MB.newObject(Rec).retValue(DataType::Object);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Changes = runPasses(P, M, {TransformationKind::EscapeAnalysis},
                               TransformationKind::EscapeAnalysis, &IL);
  EXPECT_EQ(Changes, 0u);
}

TEST(Monitor, ElidedOnNonEscapingObject) {
  Program P;
  ClassBuilder CB(P, "Rec");
  CB.addField(DataType::Int32);
  uint32_t Rec = CB.finish();
  MethodBuilder MB(P, "mon", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t O = MB.addLocal(DataType::Object);
  MB.newObject(Rec).store(O);
  MB.load(O).monitorEnter();
  MB.load(O).load(0).putField(0, DataType::Int32);
  MB.load(O).monitorExit();
  MB.load(O).getField(0, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Changes = runPasses(P, M, {TransformationKind::MonitorElision},
                               TransformationKind::MonitorElision, &IL);
  EXPECT_EQ(Changes, 2u); // enter + exit both gone
  EXPECT_EQ(countOps(*IL, ILOp::MonitorEnter), 0u);
  EXPECT_EQ(countOps(*IL, ILOp::MonitorExit), 0u);
  EXPECT_EQ(runBothEngines(P, M, 9, OptLevel::Hot), 9);
}

TEST(Loops, LicmHoistsInvariant) {
  Program P;
  uint32_t Kernel = addConstKernel(P);
  std::unique_ptr<MethodIL> IL;
  uint32_t Hoists =
      runPasses(P, Kernel,
                {TransformationKind::LoopCanonicalization,
                 TransformationKind::LoopInvariantCodeMotion},
                TransformationKind::LoopInvariantCodeMotion, &IL);
  EXPECT_GE(Hoists, 1u); // a*b + 11 moves to the preheader
  int64_t Expected = 0;
  for (int I = 0; I < 256; ++I)
    Expected += (7 * 9 + 11) + I * 3;
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  VM.compileMethod(Kernel, OptLevel::Hot);
  ExecResult R = VM.invoke(Kernel, {Value::ofI(7), Value::ofI(9)});
  EXPECT_EQ(R.Ret.I, Expected);
}

TEST(Loops, UnrollingPreservesSemantics) {
  Program P;
  uint32_t Kernel = addConstKernel(P);
  std::unique_ptr<MethodIL> IL;
  uint32_t Unrolls = runPasses(P, Kernel,
                               {TransformationKind::LoopCanonicalization,
                                TransformationKind::LoopUnrolling},
                               TransformationKind::LoopUnrolling, &IL);
  EXPECT_GE(Unrolls, 1u); // 256 % 2 == 0
  int64_t Expected = 0;
  for (int I = 0; I < 256; ++I)
    Expected += (3 * 5 + 11) + I * 3;
  VirtualMachine::Config Cfg;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  VM.compileMethod(Kernel, OptLevel::VeryHot);
  ExecResult R = VM.invoke(Kernel, {Value::ofI(3), Value::ofI(5)});
  EXPECT_EQ(R.Ret.I, Expected);
}

TEST(Loops, EmptyLoopRemoved) {
  Program P;
  MethodBuilder MB(P, "spin", -1, MF_Static, {}, DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).constI(DataType::Int32, 1000).ifCmp(BcCond::Ge, Exit);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(I).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Removed = runPasses(P, M,
                               {TransformationKind::LoopCanonicalization,
                                TransformationKind::EmptyLoopRemoval},
                               TransformationKind::EmptyLoopRemoval, &IL);
  EXPECT_EQ(Removed, 1u);
  // The final induction value must survive.
  EXPECT_EQ(runBothEngines(P, M, 0, OptLevel::Warm), 1000);
}

TEST(Loops, CopyLoopBecomesArrayCopy) {
  Program P;
  MethodBuilder MB(P, "copy", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t Src = MB.addLocal(DataType::Address);
  uint32_t Dst = MB.addLocal(DataType::Address);
  uint32_t I = MB.addLocal(DataType::Int32);
  const int64_t Len = 64;
  MB.constI(DataType::Int32, Len).newArray(DataType::Int32).store(Src);
  MB.constI(DataType::Int32, Len).newArray(DataType::Int32).store(Dst);
  // Fill src with i ^ arg.
  auto FillHead = MB.newLabel();
  auto FillExit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(FillHead);
  MB.load(I).constI(DataType::Int32, Len).ifCmp(BcCond::Ge, FillExit);
  MB.load(Src).load(I);
  MB.load(I).load(0).binop(BcOp::Xor, DataType::Int32);
  MB.astore(DataType::Int32);
  MB.inc(I, 1);
  MB.gotoLabel(FillHead);
  MB.place(FillExit);
  // Copy loop.
  auto CopyHead = MB.newLabel();
  auto CopyExit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(CopyHead);
  MB.load(I).constI(DataType::Int32, Len).ifCmp(BcCond::Ge, CopyExit);
  MB.load(Dst).load(I);
  MB.load(Src).load(I).aload(DataType::Int32);
  MB.astore(DataType::Int32);
  MB.inc(I, 1);
  MB.gotoLabel(CopyHead);
  MB.place(CopyExit);
  MB.load(Dst).constI(DataType::Int32, 5).aload(DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  std::unique_ptr<MethodIL> IL;
  uint32_t Recognized = runPasses(P, M,
                                  {TransformationKind::LoopCanonicalization,
                                   TransformationKind::IdiomRecognition},
                                  TransformationKind::IdiomRecognition, &IL);
  EXPECT_EQ(Recognized, 1u);
  EXPECT_GE(countOps(*IL, ILOp::ArrayCopy), 1u);
  EXPECT_EQ(runBothEngines(P, M, 40, OptLevel::Hot), 5 ^ 40);
}

TEST(Loops, BoundsVersioningDropsChecksInLengthLoop) {
  Program P;
  MethodBuilder MB(P, "scan", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t Arr = MB.addLocal(DataType::Address);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  MB.constI(DataType::Int32, 40).newArray(DataType::Int32).store(Arr);
  MB.constI(DataType::Int32, 0).store(Acc);
  auto Head = MB.newLabel();
  auto Exit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(Head);
  MB.load(I).load(Arr).arrayLen().ifCmp(BcCond::Ge, Exit);
  MB.load(Acc);
  MB.load(Arr).load(I).aload(DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32).store(Acc);
  MB.inc(I, 1);
  MB.gotoLabel(Head);
  MB.place(Exit);
  MB.load(Acc).load(0).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Before;
  {
    auto Plain = generateIL(P, M);
    Before = countOps(*Plain, ILOp::BoundsCheck);
  }
  uint32_t Removed = runPasses(P, M,
                               {TransformationKind::LoopCanonicalization,
                                TransformationKind::LoopBoundsVersioning},
                               TransformationKind::LoopBoundsVersioning,
                               &IL);
  EXPECT_GE(Removed, 1u);
  EXPECT_LT(countOps(*IL, ILOp::BoundsCheck), Before);
  EXPECT_EQ(runBothEngines(P, M, 5, OptLevel::Hot), 5);
}

TEST(Codegen, ImplicitNullCheckMarked) {
  Program P;
  ClassBuilder CB(P, "Obj");
  CB.addField(DataType::Int32);
  uint32_t Cls = CB.finish();
  (void)Cls;
  MethodBuilder MB(P, "imp", -1, MF_Static, {DataType::Object},
                   DataType::Int32);
  MB.load(0).getField(0, DataType::Int32).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  std::unique_ptr<MethodIL> IL;
  uint32_t Marked = runPasses(P, M,
                              {TransformationKind::ImplicitExceptionChecks},
                              TransformationKind::ImplicitExceptionChecks,
                              &IL);
  EXPECT_EQ(Marked, 1u);
}

TEST(Plans, SizesMatchPaperSpan) {
  // "A plan may apply from 20 transformations (cold) to more than 170
  // (scorching)".
  EXPECT_EQ(planForLevel(OptLevel::Cold).size(), 20u);
  EXPECT_GE(planForLevel(OptLevel::Scorching).size(), 170u);
  EXPECT_LT(planForLevel(OptLevel::Cold).size(),
            planForLevel(OptLevel::Warm).size());
  EXPECT_LT(planForLevel(OptLevel::Warm).size(),
            planForLevel(OptLevel::Hot).size());
  EXPECT_LT(planForLevel(OptLevel::Hot).size(),
            planForLevel(OptLevel::VeryHot).size());
  EXPECT_LT(planForLevel(OptLevel::VeryHot).size(),
            planForLevel(OptLevel::Scorching).size());
}

TEST(Plans, FiftyEightControllableTransformations) {
  EXPECT_EQ(NumTransformations, 58u);
  // Every kind has a registry entry with a positive cost.
  std::set<std::string> Names;
  for (unsigned K = 0; K < NumTransformations; ++K) {
    const TransformationInfo &Info =
        transformationInfo((TransformationKind)K);
    EXPECT_GT(Info.CostPerNode, 0.0);
    EXPECT_GT(Info.BaseCost, 0.0);
    Names.insert(Info.Name);
  }
  EXPECT_EQ(Names.size(), NumTransformations); // names unique
}

TEST(Optimizer, DisabledEntriesAreSkipped) {
  Program P;
  uint32_t Kernel = addConstKernel(P);
  auto IL = generateIL(P, Kernel);
  BitSet64 None = BitSet64::allZero(NumTransformations);
  OptimizeResult R = optimize(*IL, planForLevel(OptLevel::Hot), None);
  EXPECT_EQ(R.EntriesRun, 0u);
  EXPECT_EQ(R.EntriesDisabled, planForLevel(OptLevel::Hot).size());
}

TEST(Optimizer, GuardSkipsInapplicablePasses) {
  // A loop-free method must skip every loop transformation.
  Program P;
  MethodBuilder MB(P, "flat", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  OptimizeResult R = optimize(*IL, planForLevel(OptLevel::Hot),
                              BitSet64::allOne(NumTransformations));
  EXPECT_GT(R.EntriesSkippedInapplicable, 0u);
}

TEST(Optimizer, CompileEffortScalesWithLevel) {
  Program P;
  uint32_t Kernel = addConstKernel(P);
  double Prev = 0.0;
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    auto IL = generateIL(P, Kernel);
    OptimizeResult R = optimize(*IL, planForLevel((OptLevel)L),
                                BitSet64::allOne(NumTransformations));
    EXPECT_GT(R.CompileCycles, Prev)
        << "level " << optLevelName((OptLevel)L);
    Prev = R.CompileCycles;
  }
}
