//===- tests/FeatureTest.cpp - 71-feature extraction tests ----------------===//

#include "TestPrograms.h"

#include "features/FeatureExtractor.h"
#include "il/ILGenerator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <set>

using namespace jitml;
using namespace jitml::testing;

TEST(FeatureLayout, ExactlySeventyOne) {
  EXPECT_EQ(NumFeatures, 71u);
  EXPECT_EQ(NumCounterFeatures, 4u);  // Table 1 counters
  EXPECT_EQ((unsigned)NumAttrFeatures, 15u); // Table 1 attributes
  EXPECT_EQ(NumDataTypes, 14u);       // Table 2
  EXPECT_EQ((unsigned)NumOpFeatures, 38u);   // Table 3
  EXPECT_EQ(AttrBase, 4u);
  EXPECT_EQ(TypeBase, 19u);
  EXPECT_EQ(OpBase, 33u);
}

TEST(FeatureLayout, NamesAreUniqueAndGrouped) {
  std::set<std::string> Names;
  for (unsigned I = 0; I < NumFeatures; ++I)
    Names.insert(featureName(I));
  EXPECT_EQ(Names.size(), NumFeatures);
  EXPECT_STREQ(featureGroup(0), "counter");
  EXPECT_STREQ(featureGroup(AttrBase), "attribute");
  EXPECT_STREQ(featureGroup(TypeBase), "type");
  EXPECT_STREQ(featureGroup(OpBase), "op");
  EXPECT_STREQ(featureName(CF_TreeNodes), "treeNodes");
  EXPECT_STREQ(featureName(TypeBase + (unsigned)DataType::PackedDecimal),
               "type.packed");
}

TEST(FeatureExtract, ScalarCountersOfSimpleMethod) {
  Program P;
  MethodBuilder MB(P, "f", -1,
                   MF_Static | MF_Public | MF_Final | MF_Synchronized,
                   {DataType::Int32, DataType::Int32}, DataType::Int32);
  uint32_t T = MB.addLocal(DataType::Int32);
  MB.load(0).load(1).binop(BcOp::Add, DataType::Int32).store(T);
  MB.load(T).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  FeatureVector F = extractFeatures(*IL);
  EXPECT_EQ(F.counter(CF_Arguments), 2u);
  EXPECT_EQ(F.counter(CF_Temporaries), 1u);
  EXPECT_EQ(F.counter(CF_ExceptionHandlers), 0u);
  EXPECT_EQ(F.counter(CF_TreeNodes), IL->countLiveNodes());
  EXPECT_TRUE(F.attr(AF_Static));
  EXPECT_TRUE(F.attr(AF_Public));
  EXPECT_TRUE(F.attr(AF_Final));
  EXPECT_TRUE(F.attr(AF_Synchronized));
  EXPECT_FALSE(F.attr(AF_Protected));
  EXPECT_FALSE(F.attr(AF_MayHaveLoops));
  EXPECT_FALSE(F.attr(AF_UsesFloatingPoint));
}

TEST(FeatureExtract, OperationDistributionExact) {
  Program P;
  MethodBuilder MB(P, "ops", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).constI(DataType::Int32, 3).binop(BcOp::Mul, DataType::Int32);
  MB.load(0).binop(BcOp::Xor, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  FeatureVector F = extractFeatures(*IL);
  EXPECT_EQ(F.opCount(OF_Mul), 1u);
  EXPECT_EQ(F.opCount(OF_Xor), 1u);
  EXPECT_EQ(F.opCount(OF_Add), 0u);
  EXPECT_EQ(F.opCount(OF_Load), 2u);      // two local loads
  EXPECT_EQ(F.opCount(OF_LoadConst), 1u); // the 3
  EXPECT_EQ(F.opCount(OF_Call), 0u);
}

TEST(FeatureExtract, IncPatternRecognized) {
  Program P;
  MethodBuilder MB(P, "inc", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  MB.constI(DataType::Int32, 0).store(I);
  MB.inc(I, 1);
  MB.load(I).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  FeatureVector F = extractFeatures(*IL);
  EXPECT_EQ(F.opCount(OF_Inc), 1u);   // the iinc pattern
  EXPECT_EQ(F.opCount(OF_Store), 1u); // the plain const store
}

TEST(FeatureExtract, LoopAttributes) {
  Program P;
  addSumToN(P); // parameter-bound loop: unknown trips
  addConstKernel(P); // 256-trip loop: known many-iteration
  {
    auto IL = generateIL(P, 0);
    FeatureVector F = extractFeatures(*IL);
    EXPECT_TRUE(F.attr(AF_MayHaveLoops));
    EXPECT_FALSE(F.attr(AF_ManyIterationLoops)); // bound unknown
    EXPECT_TRUE(F.attr(AF_MayHaveManyIterationLoops));
  }
  {
    auto IL = generateIL(P, 1);
    FeatureVector F = extractFeatures(*IL);
    EXPECT_TRUE(F.attr(AF_ManyIterationLoops)); // 256 >= threshold
  }
}

TEST(FeatureExtract, TypeDistributionsAndFpFlag) {
  Program P;
  MethodBuilder MB(P, "fp", -1, MF_Static | MF_StrictFP,
                   {DataType::Double}, DataType::Double);
  MB.load(0).constF(DataType::Double, 2.0).binop(BcOp::Mul,
                                                 DataType::Double);
  MB.retValue(DataType::Double);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  FeatureVector F = extractFeatures(*IL);
  EXPECT_TRUE(F.attr(AF_UsesFloatingPoint));
  EXPECT_TRUE(F.attr(AF_StrictFloatingPoint));
  EXPECT_GT(F.typeCount(DataType::Double), 0u);
  EXPECT_EQ(F.typeCount(DataType::PackedDecimal), 0u);
}

TEST(FeatureExtract, AllocationAndExceptionAttributes) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  MethodBuilder MB(P, "alloc", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  auto Handler = MB.newLabel();
  auto Done = MB.newLabel();
  uint32_t Start = MB.beginTry();
  MB.newObject(Exc).throwRef();
  MB.endTry(Start, Handler, (int32_t)Exc);
  MB.place(Handler);
  MB.pop(DataType::Object);
  MB.constI(DataType::Int32, 1).gotoLabel(Done);
  MB.place(Done);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  auto IL = generateIL(P, M);
  FeatureVector F = extractFeatures(*IL);
  EXPECT_TRUE(F.attr(AF_AllocatesDynamicMemory));
  EXPECT_EQ(F.counter(CF_ExceptionHandlers), 1u);
  EXPECT_EQ(F.opCount(OF_Throw), 1u);
  EXPECT_EQ(F.opCount(OF_New), 1u);
}

TEST(FeatureExtract, UnsafeAndBigDecimalFlagsComeFromCallees) {
  Program P;
  uint32_t Unsafe =
      ClassBuilder(P, "U", -1, ClassKind::UnsafeIntrinsic).finish();
  uint32_t BigDec = ClassBuilder(P, "B", -1, ClassKind::BigDecimal).finish();
  uint32_t UM, BM;
  {
    MethodBuilder MB(P, "u", (int32_t)Unsafe, MF_Static, {DataType::Int32},
                     DataType::Int32);
    MB.load(0).retValue(DataType::Int32);
    UM = MB.finish();
  }
  {
    MethodBuilder MB(P, "b", (int32_t)BigDec, MF_Static, {DataType::Int32},
                     DataType::Int32);
    MB.load(0).retValue(DataType::Int32);
    BM = MB.finish();
  }
  {
    MethodBuilder MB(P, "caller", -1, MF_Static, {DataType::Int32},
                     DataType::Int32);
    MB.load(0).call(UM).call(BM).retValue(DataType::Int32);
    uint32_t M = MB.finish();
    auto IL = generateIL(P, M);
    FeatureVector F = extractFeatures(*IL);
    EXPECT_TRUE(F.attr(AF_UnsafeSymbols));
    EXPECT_TRUE(F.attr(AF_UsesBigDecimal));
  }
  {
    // The callees themselves do not carry the caller-side flags.
    auto IL = generateIL(P, UM);
    FeatureVector F = extractFeatures(*IL);
    EXPECT_FALSE(F.attr(AF_UnsafeSymbols));
  }
}

TEST(FeatureExtract, OpCountersSaturateAtEightBits) {
  Program P;
  MethodBuilder MB(P, "big", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0);
  for (int I = 0; I < 300; ++I)
    MB.constI(DataType::Int32, I).binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  FeatureVector F = extractFeatures(*IL);
  EXPECT_EQ(F.opCount(OF_Add), 255u);       // saturated 8-bit
  EXPECT_EQ(F.opCount(OF_LoadConst), 255u);
  // Type counters are 16-bit: not saturated by 300 ints.
  EXPECT_GT(F.typeCount(DataType::Int32), 255u);
}

TEST(FeatureExtract, HashAndOrderingConsistent) {
  Program P = makeSumProgram();
  auto IL1 = generateIL(P, 0);
  auto IL2 = generateIL(P, 0);
  FeatureVector A = extractFeatures(*IL1);
  FeatureVector B = extractFeatures(*IL2);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  FeatureVector C = A;
  C.set(CF_TreeNodes, C.get(CF_TreeNodes) + 1);
  EXPECT_NE(A.hash(), C.hash());
  EXPECT_TRUE(A < C || C < A);
}

TEST(FeatureExtract, DiverseAcrossWorkloadSuite) {
  // Different archetypes must land on different feature vectors — the
  // learning signal depends on it.
  Program P = buildWorkload(workloadByCode("h2"));
  std::set<uint64_t> Hashes;
  unsigned Methods = 0;
  for (uint32_t M = 0; M < P.numMethods(); ++M) {
    if (P.methodAt(M).Name.find("Kernel") == std::string::npos)
      continue;
    auto IL = generateIL(P, M);
    Hashes.insert(extractFeatures(*IL).hash());
    ++Methods;
  }
  EXPECT_GE(Methods, 5u);
  // Same-archetype kernels may collide ("methods are as distinct as their
  // respective feature vectors"), but the mix must stay diverse.
  EXPECT_GE(Hashes.size() * 10, Methods * 6); // >= 60% unique
}

TEST(FeatureExtract, VirtualOverriddenFlag) {
  Program P = makeSumProgram();
  P.methodAt(0).Flags |= MF_VirtualOverridden;
  auto IL = generateIL(P, 0);
  EXPECT_TRUE(extractFeatures(*IL).attr(AF_VirtualMethodOverridden));
}
