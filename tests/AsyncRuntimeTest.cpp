//===- tests/AsyncRuntimeTest.cpp - background compilation tests ----------===//
//
// The async pipeline's building blocks (CompilationQueue, CodeCache) and
// the assembled subsystem (AsyncCompilePipeline, VirtualMachine in async
// mode): bounded backpressure, priority order, coalescing, ticket-ordered
// installation under racing recompiles, drain/shutdown quiescence, and a
// multi-worker stress run checked against the interpreter. These suites
// also run under ThreadSanitizer (scripts/tier1.sh, -DJITML_TSAN=ON).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "runtime/AsyncCompiler.h"
#include "runtime/CodeCache.h"
#include "runtime/CompilationQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace jitml;

namespace {

/// Polls \p Pred every millisecond for up to \p Ms; true when it held.
template <typename Pred> bool waitUntil(Pred P, int Ms = 5000) {
  for (int I = 0; I < Ms; ++I) {
    if (P())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return P();
}

/// A marker body: only the Level matters to the tests.
std::unique_ptr<NativeMethod> markerBody(OptLevel Level) {
  auto Body = std::make_unique<NativeMethod>();
  Body->Level = Level;
  return Body;
}

} // namespace

//===----------------------------------------------------------------------===//
// CompilationQueue
//===----------------------------------------------------------------------===//

TEST(CompilationQueue, OverflowAtCapacityKeepsCallerUnblocked) {
  CompilationQueue Q(2);
  EXPECT_EQ(Q.enqueue(0, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Enqueued);
  EXPECT_EQ(Q.enqueue(1, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Enqueued);
  EXPECT_EQ(Q.enqueue(2, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Overflow);
  CompilationQueue::Counters C = Q.counters();
  EXPECT_EQ(C.Enqueued, 2u);
  EXPECT_EQ(C.Overflows, 1u);
  EXPECT_EQ(C.MaxDepth, 2u);
  EXPECT_EQ(Q.pendingSize(), 2u);
}

TEST(CompilationQueue, CoalescesPendingRequestForSameMethod) {
  CompilationQueue Q(4);
  ASSERT_EQ(Q.enqueue(7, OptLevel::Cold, true, 5),
            CompilationQueue::EnqueueResult::Enqueued);
  // Re-trigger for the same method: merged, not a second slot. The merged
  // entry keeps the highest level/priority and takes the newest ticket;
  // a non-exploration request clears the exploration flag.
  ASSERT_EQ(Q.enqueue(7, OptLevel::Warm, false, 3),
            CompilationQueue::EnqueueResult::Coalesced);
  EXPECT_EQ(Q.pendingSize(), 1u);

  std::optional<AsyncCompileTask> T = Q.dequeue();
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->MethodIndex, 7u);
  EXPECT_EQ(T->Level, OptLevel::Warm);
  EXPECT_EQ(T->Priority, 5u);
  EXPECT_FALSE(T->IsExplorationRecompile);
  EXPECT_EQ(T->Ticket, 2u); // the newest request's ticket
  Q.noteDone(7);
  EXPECT_EQ(Q.counters().Coalesced, 1u);
}

TEST(CompilationQueue, ServesHighestPriorityFirst) {
  CompilationQueue Q(8);
  Q.enqueue(0, OptLevel::Cold, false, 1);
  Q.enqueue(1, OptLevel::Cold, false, 9);
  Q.enqueue(2, OptLevel::Cold, false, 5);
  EXPECT_EQ(Q.dequeue()->MethodIndex, 1u);
  EXPECT_EQ(Q.dequeue()->MethodIndex, 2u);
  EXPECT_EQ(Q.dequeue()->MethodIndex, 0u);
  Q.noteDone(0);
  Q.noteDone(1);
  Q.noteDone(2);
}

TEST(CompilationQueue, PriorityTiesBreakByArrivalOrder) {
  CompilationQueue Q(8);
  Q.enqueue(4, OptLevel::Cold, false, 2);
  Q.enqueue(5, OptLevel::Cold, false, 2);
  Q.enqueue(6, OptLevel::Cold, false, 2);
  EXPECT_EQ(Q.dequeue()->MethodIndex, 4u);
  EXPECT_EQ(Q.dequeue()->MethodIndex, 5u);
  EXPECT_EQ(Q.dequeue()->MethodIndex, 6u);
}

TEST(CompilationQueue, DequeueBatchTakesUpToMaxByPriority) {
  CompilationQueue Q(8);
  for (uint32_t M = 0; M < 5; ++M)
    Q.enqueue(M, OptLevel::Cold, false, M);
  std::vector<AsyncCompileTask> Batch = Q.dequeueBatch(3);
  ASSERT_EQ(Batch.size(), 3u);
  EXPECT_EQ(Batch[0].MethodIndex, 4u);
  EXPECT_EQ(Batch[1].MethodIndex, 3u);
  EXPECT_EQ(Batch[2].MethodIndex, 2u);
  EXPECT_EQ(Q.pendingSize(), 2u);
  for (const AsyncCompileTask &T : Batch)
    Q.noteDone(T.MethodIndex);
}

TEST(CompilationQueue, CloseDiscardingCountsPendingEntries) {
  CompilationQueue Q(8);
  Q.enqueue(0, OptLevel::Cold, false, 1);
  Q.enqueue(1, OptLevel::Cold, false, 1);
  Q.enqueue(2, OptLevel::Cold, false, 1);
  Q.close(/*FinishPending=*/false);
  EXPECT_FALSE(Q.dequeue().has_value());
  EXPECT_EQ(Q.counters().Discarded, 3u);
  EXPECT_EQ(Q.enqueue(3, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Closed);
}

TEST(CompilationQueue, CloseFinishingServesBacklogThenStops) {
  CompilationQueue Q(8);
  Q.enqueue(0, OptLevel::Cold, false, 1);
  Q.enqueue(1, OptLevel::Cold, false, 2);
  Q.close(/*FinishPending=*/true);
  std::optional<AsyncCompileTask> A = Q.dequeue();
  ASSERT_TRUE(A.has_value());
  Q.noteDone(A->MethodIndex);
  std::optional<AsyncCompileTask> B = Q.dequeue();
  ASSERT_TRUE(B.has_value());
  Q.noteDone(B->MethodIndex);
  EXPECT_FALSE(Q.dequeue().has_value());
  EXPECT_EQ(Q.counters().Discarded, 0u);
}

TEST(CompilationQueue, DrainWaitsForInFlightWork) {
  CompilationQueue Q(4);
  Q.enqueue(0, OptLevel::Cold, false, 1);
  std::optional<AsyncCompileTask> T = Q.dequeue();
  ASSERT_TRUE(T.has_value());

  // The queue is empty but the task is in flight: drain must block until
  // noteDone.
  std::atomic<bool> Drained{false};
  std::thread Waiter([&] {
    Q.drain();
    Drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Drained.load());
  Q.noteDone(0);
  Waiter.join();
  EXPECT_TRUE(Drained.load());
}

TEST(CompilationQueue, CloseWhileWorkersHoldDequeuedItems) {
  // The race the sequential close tests miss: close() lands while worker
  // threads hold dequeued (in-flight) items. The backlog is discarded, the
  // in-flight items are not, and drain() must block until their noteDone
  // calls arrive — not deadlock, not return early.
  CompilationQueue Q(16);
  for (uint32_t M = 0; M < 8; ++M)
    ASSERT_EQ(Q.enqueue(M, OptLevel::Cold, false, 1),
              CompilationQueue::EnqueueResult::Enqueued);

  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false;
  std::atomic<unsigned> Holding{0};
  std::atomic<uint64_t> Finished{0};
  auto Worker = [&] {
    std::vector<AsyncCompileTask> Batch = Q.dequeueBatch(2);
    if (Batch.empty())
      return;
    Holding.fetch_add(1);
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [&] { return Release; });
    }
    for (const AsyncCompileTask &T : Batch) {
      Q.noteDone(T.MethodIndex);
      Finished.fetch_add(1);
    }
  };
  std::thread A(Worker), B(Worker);
  ASSERT_TRUE(waitUntil([&] { return Holding.load() == 2; }));

  // 4 items are held in flight; closing discards only the other 4.
  Q.close(/*FinishPending=*/false);
  EXPECT_EQ(Q.counters().Discarded, 4u);

  std::atomic<bool> Drained{false};
  std::thread Waiter([&] {
    Q.drain();
    Drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Drained.load()) << "drain returned with items in flight";
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Release = true;
  }
  Cv.notify_all();
  A.join();
  B.join();
  Waiter.join();
  EXPECT_TRUE(Drained.load());
  EXPECT_EQ(Finished.load(), 4u);
  EXPECT_EQ(Q.enqueue(99, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Closed);
  EXPECT_FALSE(Q.dequeue().has_value()); // closed and empty: no hang
}

TEST(CompilationQueue, TicketsAreMonotoneAcrossEnqueueAndDirectDraws) {
  CompilationQueue Q(4);
  uint64_t Direct = Q.takeTicket();
  Q.enqueue(0, OptLevel::Cold, false, 1);
  std::optional<AsyncCompileTask> T = Q.dequeue();
  ASSERT_TRUE(T.has_value());
  EXPECT_GT(T->Ticket, Direct);
  EXPECT_GT(Q.takeTicket(), T->Ticket);
  Q.noteDone(0);
}

//===----------------------------------------------------------------------===//
// CodeCache
//===----------------------------------------------------------------------===//

TEST(CodeCache, InstallPublishesBodyForLookup) {
  CodeCache Cache;
  Cache.reset(2);
  EXPECT_EQ(Cache.lookup(0), nullptr);
  ASSERT_TRUE(Cache.install(0, markerBody(OptLevel::Warm), 1));
  const NativeMethod *Body = Cache.lookup(0);
  ASSERT_NE(Body, nullptr);
  EXPECT_EQ(Body->Level, OptLevel::Warm);
  EXPECT_EQ(Cache.lookup(1), nullptr);
  EXPECT_EQ(Cache.installs(), 1u);
}

TEST(CodeCache, StaleTicketCannotClobberNewerInstall) {
  // A recompilation raced an in-progress compile: the newer request
  // (ticket 2) finished first; the older compile (ticket 1) lands late
  // and must be rejected.
  CodeCache Cache;
  Cache.reset(1);
  ASSERT_TRUE(Cache.install(0, markerBody(OptLevel::Hot), 2));
  EXPECT_FALSE(Cache.install(0, markerBody(OptLevel::Cold), 1));
  const NativeMethod *Body = Cache.lookup(0);
  ASSERT_NE(Body, nullptr);
  EXPECT_EQ(Body->Level, OptLevel::Hot);
  EXPECT_EQ(Cache.staleRejected(), 1u);
  // The rejected body is retired, not leaked and not freed mid-flight.
  EXPECT_EQ(Cache.retiredCount(), 1u);
  Cache.reclaimRetired();
  EXPECT_EQ(Cache.retiredCount(), 0u);
}

TEST(CodeCache, ReplacementRetiresPreviousBodyUntilQuiescence) {
  CodeCache Cache;
  Cache.reset(1);
  ASSERT_TRUE(Cache.install(0, markerBody(OptLevel::Cold), 1));
  const NativeMethod *Old = Cache.lookup(0);
  ASSERT_TRUE(Cache.install(0, markerBody(OptLevel::Warm), 2));
  // The old body must survive (an engine may still be executing it); it
  // is only freed at an explicit quiescent point.
  EXPECT_EQ(Old->Level, OptLevel::Cold);
  EXPECT_EQ(Cache.retiredCount(), 1u);
  EXPECT_EQ(Cache.lookup(0)->Level, OptLevel::Warm);
  Cache.reclaimRetired();
  EXPECT_EQ(Cache.retiredCount(), 0u);
}

//===----------------------------------------------------------------------===//
// AsyncCompilePipeline
//===----------------------------------------------------------------------===//

namespace {

/// A latch the modifier hook can block on, releasing from the test body.
struct HookLatch {
  std::mutex Mu;
  std::condition_variable Cv;
  bool Entered = false;
  bool Released = false;

  void enterAndWait() {
    std::unique_lock<std::mutex> Lock(Mu);
    Entered = true;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Released; });
  }
  bool waitEntered() {
    std::unique_lock<std::mutex> Lock(Mu);
    return Cv.wait_for(Lock, std::chrono::seconds(10),
                       [&] { return Entered; });
  }
  void release() {
    std::lock_guard<std::mutex> Lock(Mu);
    Released = true;
    Cv.notify_all();
  }
};

} // namespace

TEST(AsyncPipeline, CompilesRequestOffThreadAndInstalls) {
  Program P = jitml::testing::makeSumProgram();
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 2;
  AsyncCompilePipeline Pipe(P, Cost, Cache, C);

  ASSERT_EQ(Pipe.request(0, OptLevel::Warm, false, 1),
            CompilationQueue::EnqueueResult::Enqueued);
  Pipe.drain();
  std::vector<CompileCompletion> Done = Pipe.takeCompletions();
  ASSERT_EQ(Done.size(), 1u);
  EXPECT_TRUE(Done[0].Installed);
  EXPECT_EQ(Done[0].Level, OptLevel::Warm);
  EXPECT_GT(Done[0].CompileCycles, 0.0);
  const NativeMethod *Body = Cache.lookup(0);
  ASSERT_NE(Body, nullptr);
  EXPECT_EQ(Body->Level, OptLevel::Warm);
}

TEST(AsyncPipeline, DrainWaitsForInFlightCompilation) {
  Program P = jitml::testing::makeSumProgram();
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 1;
  C.MaxPredictBatch = 1;
  AsyncCompilePipeline Pipe(P, Cost, Cache, C);

  HookLatch Latch;
  Pipe.setModifierHook([&](uint32_t, OptLevel, const FeatureVector &) {
    Latch.enterAndWait();
    return PlanModifier();
  });

  ASSERT_EQ(Pipe.request(0, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Enqueued);
  ASSERT_TRUE(Latch.waitEntered());

  std::atomic<bool> Drained{false};
  std::thread Waiter([&] {
    Pipe.drain();
    Drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Drained.load()); // compilation still in flight
  Latch.release();
  Waiter.join();

  // After drain every completion is visible.
  std::vector<CompileCompletion> Done = Pipe.takeCompletions();
  ASSERT_EQ(Done.size(), 1u);
  EXPECT_TRUE(Done[0].Installed);
  EXPECT_NE(Cache.lookup(0), nullptr);
}

TEST(AsyncPipeline, ShutdownFinishPendingCompilesBacklog) {
  Program P = jitml::testing::makeSumProgram();
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 1;
  auto Pipe = std::make_unique<AsyncCompilePipeline>(P, Cost, Cache, C);
  Pipe->request(0, OptLevel::Cold, false, 1);
  Pipe->request(1, OptLevel::Cold, false, 1);
  Pipe->shutdown(/*FinishPending=*/true);
  std::vector<CompileCompletion> Done = Pipe->takeCompletions();
  EXPECT_EQ(Done.size(), 2u);
  EXPECT_NE(Cache.lookup(0), nullptr);
  EXPECT_NE(Cache.lookup(1), nullptr);
}

TEST(AsyncPipeline, RecompilationRacingInFlightCompileKeepsNewestCode) {
  // Worker A dequeues a Cold compile of method 0 and stalls in the
  // modifier hook. A Warm recompile of the same method arrives, worker B
  // compiles and installs it. When A's stale Cold compile finally lands,
  // its older ticket must be rejected — the Warm body stays current.
  Program P = jitml::testing::makeSumProgram();
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 2;
  C.MaxPredictBatch = 1;
  AsyncCompilePipeline Pipe(P, Cost, Cache, C);

  HookLatch ColdLatch;
  Pipe.setModifierHook([&](uint32_t, OptLevel Level, const FeatureVector &) {
    if (Level == OptLevel::Cold)
      ColdLatch.enterAndWait();
    return PlanModifier();
  });

  ASSERT_EQ(Pipe.request(0, OptLevel::Cold, false, 1),
            CompilationQueue::EnqueueResult::Enqueued);
  ASSERT_TRUE(ColdLatch.waitEntered()); // Cold is in flight, not pending

  ASSERT_EQ(Pipe.request(0, OptLevel::Warm, false, 2),
            CompilationQueue::EnqueueResult::Enqueued);
  ASSERT_TRUE(waitUntil([&] { return Cache.installs() >= 1; }));
  ColdLatch.release();
  Pipe.drain();

  std::vector<CompileCompletion> Done = Pipe.takeCompletions();
  ASSERT_EQ(Done.size(), 2u);
  unsigned Installed = 0, Stale = 0;
  for (const CompileCompletion &D : Done) {
    if (D.Installed) {
      ++Installed;
      EXPECT_EQ(D.Level, OptLevel::Warm);
    } else {
      ++Stale;
      EXPECT_EQ(D.Level, OptLevel::Cold);
    }
  }
  EXPECT_EQ(Installed, 1u);
  EXPECT_EQ(Stale, 1u);
  EXPECT_EQ(Cache.staleRejected(), 1u);
  ASSERT_NE(Cache.lookup(0), nullptr);
  EXPECT_EQ(Cache.lookup(0)->Level, OptLevel::Warm);
}

TEST(AsyncPipeline, HookFailureFallsBackToNullModifier) {
  Program P = jitml::testing::makeSumProgram();
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 1;
  AsyncCompilePipeline Pipe(P, Cost, Cache, C);
  Pipe.setModifierHook(
      [](uint32_t, OptLevel, const FeatureVector &) -> PlanModifier {
        throw std::runtime_error("model service exploded");
      });
  Pipe.request(0, OptLevel::Cold, false, 1);
  Pipe.drain();
  std::vector<CompileCompletion> Done = Pipe.takeCompletions();
  ASSERT_EQ(Done.size(), 1u);
  EXPECT_TRUE(Done[0].HookFailed);
  EXPECT_TRUE(Done[0].Installed);
  EXPECT_TRUE(Done[0].Modifier.isNull());
  EXPECT_NE(Cache.lookup(0), nullptr);
}

TEST(AsyncPipeline, BatchHookServesWholeBacklogInOneCall) {
  Program P;
  jitml::testing::addSumToN(P, "a");
  jitml::testing::addSumToN(P, "b");
  jitml::testing::addSumToN(P, "c");
  ASSERT_TRUE(verifyProgram(P).ok());
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 1;
  C.MaxPredictBatch = 8;
  AsyncCompilePipeline Pipe(P, Cost, Cache, C);

  // Park the single worker inside the first prediction call so a backlog
  // builds up behind it; once released, the whole backlog must arrive at
  // the batch hook in ONE call (one simulated bridge round trip).
  HookLatch Latch;
  std::atomic<uint64_t> BatchCalls{0};
  std::atomic<uint64_t> MaxBatchSize{0};
  Pipe.setBatchModifierHook(
      [&](const std::vector<AsyncCompilePipeline::BatchPredictItem> &Items) {
        uint64_t Call = BatchCalls.fetch_add(1) + 1;
        uint64_t Size = Items.size();
        uint64_t Seen = MaxBatchSize.load();
        while (Seen < Size && !MaxBatchSize.compare_exchange_weak(Seen, Size))
          ;
        if (Call == 1)
          Latch.enterAndWait();
        return std::vector<PlanModifier>(Items.size());
      });

  // The first request occupies the worker; the next two queue up behind it.
  Pipe.request(0, OptLevel::Cold, false, 3);
  ASSERT_TRUE(Latch.waitEntered());
  Pipe.request(1, OptLevel::Cold, false, 2);
  Pipe.request(2, OptLevel::Cold, false, 1);
  Latch.release();
  Pipe.drain();

  EXPECT_EQ(Pipe.takeCompletions().size(), 3u);
  EXPECT_EQ(BatchCalls.load(), 2u);   // one for the opener, one for the rest
  EXPECT_EQ(MaxBatchSize.load(), 2u); // methods 1 and 2 in one round trip
  EXPECT_EQ(Pipe.batchPredictCalls(), 2u);
  EXPECT_NE(Cache.lookup(1), nullptr);
  EXPECT_NE(Cache.lookup(2), nullptr);
}

//===----------------------------------------------------------------------===//
// VirtualMachine in async mode
//===----------------------------------------------------------------------===//

namespace {

/// Triggers low enough that a handful of invocations compiles a method,
/// with the top levels out of reach (keeps tests fast and deterministic).
void setLowTriggers(VirtualMachine::Config &Cfg) {
  for (unsigned L = 0; L < NumOptLevels; ++L)
    for (unsigned K = 0; K < 3; ++K)
      Cfg.Control.InvocationTriggers[L][K] = (L < 2) ? 2 : 1000000;
  for (unsigned L = 0; L < NumOptLevels; ++L)
    Cfg.Control.CycleTriggers[L] = 1e18; // invocation-count triggers only
}

} // namespace

TEST(AsyncVM, BackgroundCompilationPreservesResultsAndClock) {
  Program P = jitml::testing::makeSumProgram();

  VirtualMachine::Config InterpCfg;
  InterpCfg.EnableJit = false;
  VirtualMachine Interp(P, InterpCfg);
  ExecResult Ref = Interp.run({Value::ofI(50)});
  ASSERT_FALSE(Ref.Exceptional);

  VirtualMachine::Config Cfg;
  setLowTriggers(Cfg);
  Cfg.Async.Enabled = true;
  Cfg.Async.Workers = 2;
  VirtualMachine VM(P, Cfg);
  ASSERT_TRUE(VM.asyncEnabled());
  for (int I = 0; I < 12; ++I) {
    ExecResult Got = VM.run({Value::ofI(50)});
    ASSERT_FALSE(Got.Exceptional);
    EXPECT_EQ(Got.Ret.I, Ref.Ret.I);
  }
  VM.drainCompilations();
  ExecResult Got = VM.run({Value::ofI(50)});
  ASSERT_FALSE(Got.Exceptional);
  EXPECT_EQ(Got.Ret.I, Ref.Ret.I);

  const VirtualMachine::Stats &S = VM.stats();
  EXPECT_GT(S.AsyncCompileRequests, 0u);
  EXPECT_GT(S.AsyncInstalls, 0u);
  EXPECT_GT(S.AsyncCompileCycles, 0.0);
  // The whole point of the background compiler: zero interpreter-thread
  // compile stall. Worker cycles never advance the VM clock.
  EXPECT_EQ(S.CompileCycles, 0.0);
  EXPECT_DOUBLE_EQ(VM.clock().cycles(), S.AppCycles);
}

TEST(AsyncVM, QueueOverflowFallsBackToInterpretation) {
  // Many methods trigger at once into a one-slot queue served by one
  // worker that is deliberately slow: overflowing requests must be
  // rejected (counted) while execution carries on interpreted.
  Program P;
  std::vector<uint32_t> Methods;
  for (int I = 0; I < 24; ++I)
    Methods.push_back(jitml::testing::addSumToN(
        P, ("m" + std::to_string(I)).c_str()));
  ASSERT_TRUE(verifyProgram(P).ok());

  VirtualMachine::Config Cfg;
  setLowTriggers(Cfg);
  Cfg.Async.Enabled = true;
  Cfg.Async.Workers = 1;
  Cfg.Async.QueueCapacity = 1;
  VirtualMachine VM(P, Cfg);
  VM.setModifierHook([](uint32_t, OptLevel, const FeatureVector &) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return PlanModifier();
  });

  for (int Round = 0; Round < 4; ++Round)
    for (uint32_t M : Methods) {
      ExecResult R = VM.invoke(M, {Value::ofI(10)});
      ASSERT_FALSE(R.Exceptional);
      EXPECT_EQ(R.Ret.I, 45);
    }
  EXPECT_GT(VM.stats().AsyncQueueOverflows, 0u);
  VM.drainCompilations();
}

TEST(AsyncVM, StressFourWorkersManyMethodsMatchesInterpreter) {
  // 4 workers x 200 methods, compiled while the interpreter thread keeps
  // invoking them; every result must match the pure interpreter and every
  // method must end up with installed code.
  constexpr unsigned NumMethods = 200;
  Program P;
  std::vector<uint32_t> Methods;
  std::vector<int64_t> Expected;
  for (unsigned I = 0; I < NumMethods; ++I) {
    MethodBuilder MB(P, ("stress" + std::to_string(I)).c_str(), -1,
                     MF_Static | MF_Public, {DataType::Int32},
                     DataType::Int32);
    uint32_t S = MB.addLocal(DataType::Int32);
    uint32_t J = MB.addLocal(DataType::Int32);
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.constI(DataType::Int32, (int64_t)I).store(S);
    MB.constI(DataType::Int32, 0).store(J);
    MB.place(Head);
    MB.load(J).load(0).ifCmp(BcCond::Ge, Exit);
    MB.load(S).load(J).binop(BcOp::Add, DataType::Int32).store(S);
    MB.load(S).constI(DataType::Int32, 3).binop(BcOp::Xor, DataType::Int32)
        .store(S);
    MB.inc(J, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
    MB.load(S).retValue(DataType::Int32);
    Methods.push_back(MB.finish());
  }
  ASSERT_TRUE(verifyProgram(P).ok()) << verifyProgram(P).message();

  VirtualMachine::Config InterpCfg;
  InterpCfg.EnableJit = false;
  VirtualMachine Interp(P, InterpCfg);
  for (uint32_t M : Methods) {
    ExecResult R = Interp.invoke(M, {Value::ofI(9)});
    ASSERT_FALSE(R.Exceptional);
    Expected.push_back(R.Ret.I);
  }

  VirtualMachine::Config Cfg;
  setLowTriggers(Cfg);
  Cfg.Async.Enabled = true;
  Cfg.Async.Workers = 4;
  Cfg.Async.QueueCapacity = 512;
  VirtualMachine VM(P, Cfg);
  for (int Round = 0; Round < 8; ++Round)
    for (unsigned I = 0; I < NumMethods; ++I) {
      ExecResult R = VM.invoke(Methods[I], {Value::ofI(9)});
      ASSERT_FALSE(R.Exceptional);
      ASSERT_EQ(R.Ret.I, Expected[I]) << "method " << I;
    }
  VM.drainCompilations();
  for (unsigned I = 0; I < NumMethods; ++I) {
    EXPECT_NE(VM.nativeOf(Methods[I]), nullptr) << "method " << I;
    ExecResult R = VM.invoke(Methods[I], {Value::ofI(9)});
    ASSERT_FALSE(R.Exceptional);
    EXPECT_EQ(R.Ret.I, Expected[I]) << "method " << I;
  }
  EXPECT_EQ(VM.stats().AsyncQueueOverflows, 0u);
  EXPECT_GE(VM.stats().AsyncInstalls, (uint64_t)NumMethods);
}

TEST(AsyncVM, DrainAppliesCompilationBookkeeping) {
  Program P = jitml::testing::makeSumProgram();
  VirtualMachine::Config Cfg;
  setLowTriggers(Cfg);
  Cfg.Async.Enabled = true;
  VirtualMachine VM(P, Cfg);
  for (int I = 0; I < 6; ++I)
    VM.run({Value::ofI(20)});
  VM.drainCompilations();
  // Control sees the installs (levelOf set) and counters are consistent.
  EXPECT_TRUE(VM.control().levelOf(0).has_value());
  const VirtualMachine::Stats &S = VM.stats();
  EXPECT_EQ(S.AsyncInstalls + S.AsyncStaleCompiles, S.Compilations);
  CompilationQueue::Counters QC = VM.asyncQueueCounters();
  EXPECT_EQ(QC.Enqueued, S.AsyncCompileRequests);
  EXPECT_EQ(QC.Overflows, S.AsyncQueueOverflows);
}

TEST(AsyncVM, SyncModeIsUnchangedByDefault) {
  Program P = jitml::testing::makeSumProgram();
  VirtualMachine::Config Cfg; // Async.Enabled defaults to false
  VirtualMachine VM(P, Cfg);
  EXPECT_FALSE(VM.asyncEnabled());
  VM.drainCompilations(); // no-op, must not crash
  for (int I = 0; I < 40; ++I)
    VM.run({Value::ofI(30)});
  // The sync path compiles inline and charges the interpreter clock.
  EXPECT_GT(VM.stats().Compilations, 0u);
  EXPECT_GT(VM.stats().CompileCycles, 0.0);
  EXPECT_EQ(VM.stats().AsyncCompileRequests, 0u);
}
