//===- tests/EpochMemoTest.cpp - IL epoch / pass memo / kid storage -------===//
//
// Covers the compile-path memoization layer: the MethodIL modification
// epoch protocol (every mutation API bumps, no-op recomputes do not), the
// optimizer's per-kind pass memo (repeats skipped only at an unchanged
// epoch, simulated figures bit-identical with the memo on or off), the
// epoch-keyed analysis caches, and the inline-kids node storage.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "il/ILGenerator.h"
#include "il/ILVerifier.h"
#include "il/LoopInfo.h"
#include "opt/Optimizer.h"
#include "opt/Passes.h"
#include "support/Memo.h"
#include "support/Telemetry.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

/// RAII: force the memo state for one test, restore the default after.
struct MemoState {
  explicit MemoState(bool On) { setMemoEnabled(On); }
  ~MemoState() { setMemoEnabled(true); }
};

std::unique_ptr<MethodIL> makeLoopIL(Program &P) {
  uint32_t M = addSumToN(P);
  return generateIL(P, M);
}

uint64_t memoHits() {
  return MetricRegistry::global().counter("opt.memo.hits").value();
}

} // namespace

//===----------------------------------------------------------------------===//
// IlEpoch: the modification-epoch protocol
//===----------------------------------------------------------------------===//

TEST(IlEpoch, EveryMutationApiBumps) {
  Program P;
  auto IL = makeLoopIL(P);

  uint64_t E = IL->modEpoch();
  auto Bumped = [&](const char *What) {
    EXPECT_GT(IL->modEpoch(), E) << What << " must bump the epoch";
    E = IL->modEpoch();
  };

  NodeId A = IL->makeNode(ILOp::ExprStmt, DataType::Void);
  Bumped("makeNode");
  NodeId C1 = IL->makeConstI(DataType::Int32, 7);
  Bumped("makeConstI");
  IL->makeConstF(DataType::Double, 1.5);
  Bumped("makeConstF");
  NodeId Kids[1] = {C1};
  IL->setKids(A, Kids, 1);
  Bumped("setKids");
  (void)IL->node(A); // mutable handout: must assume a write
  Bumped("mutable node()");
  (void)IL->block(IL->entryBlock());
  Bumped("mutable block()");
  IL->setEntryBlock(IL->entryBlock());
  Bumped("setEntryBlock");
  IL->addLocal(DataType::Int32);
  Bumped("addLocal");
  BlockId NB = IL->makeBlock();
  Bumped("makeBlock");
  IL->addEdge(IL->entryBlock(), NB);
  Bumped("addEdge");
  BlockId NB2 = IL->makeBlock();
  E = IL->modEpoch();
  IL->replaceEdge(IL->entryBlock(), NB, NB2);
  Bumped("replaceEdge");
  IL->recomputePreds();
  Bumped("recomputePreds");
}

TEST(IlEpoch, ConstReadsDoNotBump) {
  Program P;
  auto IL = makeLoopIL(P);
  const MethodIL &CIL = *IL;
  uint64_t E = IL->modEpoch();
  for (BlockId B = 0; B < CIL.numBlocks(); ++B)
    for (NodeId Root : CIL.block(B).Trees)
      (void)CIL.node(Root).Op;
  (void)CIL.countLiveNodes();
  (void)CIL.reversePostOrder();
  EXPECT_EQ(IL->modEpoch(), E) << "const traversal must not bump";
}

TEST(IlEpoch, ReachabilityRecomputeBumpsOnlyOnChange) {
  Program P;
  auto IL = makeLoopIL(P);
  IL->computeReachability();
  uint64_t E = IL->modEpoch();
  IL->computeReachability(); // flags already correct: no-op
  EXPECT_EQ(IL->modEpoch(), E)
      << "a reachability recompute that changes nothing must stay quiet";
}

TEST(IlEpoch, SurgeryHelpersBump) {
  Program P;
  auto IL = makeLoopIL(P);
  PassContext Ctx(*IL);
  NodeId C = IL->makeConstI(DataType::Int32, 3);

  uint64_t E = IL->modEpoch();
  Ctx.rewriteToConstI(C, DataType::Int32, 9);
  EXPECT_GT(IL->modEpoch(), E);
  E = IL->modEpoch();
  Ctx.rewriteToLoadLocal(C, DataType::Int32, 0);
  EXPECT_GT(IL->modEpoch(), E);
  E = IL->modEpoch();
  Ctx.cloneTree(C, nullptr);
  EXPECT_GT(IL->modEpoch(), E);
}

//===----------------------------------------------------------------------===//
// OptMemo: the per-kind pass memo
//===----------------------------------------------------------------------===//

TEST(OptMemo, RepeatSkippedOnlyWhenEpochUnchanged) {
  Program P;
  uint32_t M = addSumToN(P);

  // Three DTE entries on stable IL: the first runs, the repeats hit.
  CompilationPlan Stable;
  Stable.Level = OptLevel::Cold;
  Stable.Entries = {TransformationKind::DeadTreeElimination,
                    TransformationKind::DeadTreeElimination,
                    TransformationKind::DeadTreeElimination};
  {
    auto IL = generateIL(P, M);
    uint64_t Before = memoHits();
    optimize(*IL, Stable, BitSet64::allOne(NumTransformations));
    EXPECT_EQ(memoHits() - Before, 2u)
        << "two identical reruns at an unchanged epoch must both hit";
  }

  // A changing pass between the repeats invalidates the memo: the DTE
  // after the local-value-numbering rewrite must run its body again.
  CompilationPlan Dirty;
  Dirty.Level = OptLevel::Cold;
  Dirty.Entries = {TransformationKind::DeadTreeElimination,
                   TransformationKind::LocalValueNumbering,
                   TransformationKind::DeadTreeElimination};
  {
    auto IL = generateIL(P, M);
    PassContext Probe(*IL); // confirm LVN actually changes this method
    ASSERT_TRUE(runLocalValueNumbering(Probe));
  }
  {
    auto IL = generateIL(P, M);
    uint64_t Before = memoHits();
    OptimizeResult R = optimize(*IL, Dirty,
                                BitSet64::allOne(NumTransformations));
    EXPECT_TRUE(R.ChangedPasses.contains(
        TransformationKind::LocalValueNumbering));
    EXPECT_EQ(memoHits() - Before, 0u)
        << "a changed epoch between repeats must force a rerun";
  }
}

TEST(OptMemo, FiguresBitIdenticalAcrossAllPlans) {
  Program P;
  uint32_t M = addSumToN(P);
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    OptimizeResult On, Off;
    uint32_t LiveOn, LiveOff;
    {
      MemoState S(true);
      auto IL = generateIL(P, M);
      On = optimize(*IL, planForLevel((OptLevel)L),
                    BitSet64::allOne(NumTransformations));
      LiveOn = IL->countLiveNodes();
      EXPECT_TRUE(verifyIL(*IL).empty());
    }
    {
      MemoState S(false);
      auto IL = generateIL(P, M);
      Off = optimize(*IL, planForLevel((OptLevel)L),
                     BitSet64::allOne(NumTransformations));
      LiveOff = IL->countLiveNodes();
      EXPECT_TRUE(verifyIL(*IL).empty());
    }
    // Bit-identical, not approximately equal: the simulated clock must
    // not know the memo exists.
    EXPECT_EQ(On.CompileCycles, Off.CompileCycles)
        << "level " << optLevelName((OptLevel)L);
    EXPECT_EQ(On.EntriesRun, Off.EntriesRun);
    EXPECT_EQ(On.EntriesSkippedInapplicable, Off.EntriesSkippedInapplicable);
    EXPECT_EQ(LiveOn, LiveOff);
  }
}

/// The figure-level regression: one SPECjvm98 cell of the Figure 6 compile
/// pipeline, byte-identical simulated compile cycles with the memo on/off.
TEST(OptMemo, Figure6CellBitIdentical) {
  Program P = buildWorkload(specJvm98Suite().front());
  const CompilationPlan &Plan = planForLevel(OptLevel::Scorching);
  for (uint32_t M = 0; M < std::min<uint32_t>(4, P.numMethods()); ++M) {
    double On, Off;
    {
      MemoState S(true);
      auto IL = generateIL(P, M);
      On = optimize(*IL, Plan, BitSet64::allOne(NumTransformations))
               .CompileCycles;
    }
    {
      MemoState S(false);
      auto IL = generateIL(P, M);
      Off = optimize(*IL, Plan, BitSet64::allOne(NumTransformations))
                .CompileCycles;
    }
    EXPECT_EQ(On, Off) << "method " << M;
  }
}

TEST(OptMemo, StaleLoopInfoNeverServedAfterCfgChange) {
  Program P;
  auto IL = makeLoopIL(P);
  PassContext Ctx(*IL);

  const LoopInfo &LI = Ctx.loopInfo();
  ASSERT_FALSE(LI.loops().empty()) << "sumToN must contain a loop";
  BlockId Header = LI.loops().front().Header;

  // Sever the back edge: the loop is gone, and the next analysis request
  // must observe that rather than serve the cached forest.
  const Block &HB = const_cast<const MethodIL &>(*IL).block(Header);
  BlockId Latch = InvalidBlock;
  for (BlockId Pred : HB.Preds)
    if (LI.loops().front().contains(Pred))
      Latch = Pred;
  ASSERT_NE(Latch, InvalidBlock);
  IL->block(Latch).Succs.clear();
  IL->recomputePreds();
  IL->computeReachability();

  EXPECT_TRUE(Ctx.loopInfo().loops().empty())
      << "analysis cache served a stale loop forest after a CFG edit";
}

TEST(OptMemo, EscapeHatchDisablesMemo) {
  Program P;
  uint32_t M = addSumToN(P);
  CompilationPlan Plan;
  Plan.Level = OptLevel::Cold;
  Plan.Entries = {TransformationKind::DeadTreeElimination,
                  TransformationKind::DeadTreeElimination};
  MemoState S(false);
  auto IL = generateIL(P, M);
  uint64_t Before = memoHits();
  optimize(*IL, Plan, BitSet64::allOne(NumTransformations));
  EXPECT_EQ(memoHits() - Before, 0u)
      << "JITML_OPT_MEMO=off must run every body";
}

//===----------------------------------------------------------------------===//
// KidList: inline-kids node storage
//===----------------------------------------------------------------------===//

TEST(KidList, InlineAndPooledKidsRoundTrip) {
  Program P;
  auto IL = makeLoopIL(P);
  const MethodIL &CIL = *IL;

  std::vector<NodeId> Kids;
  for (int I = 0; I < 5; ++I)
    Kids.push_back(IL->makeConstI(DataType::Int32, I));

  for (size_t N = 0; N <= Kids.size(); ++N) {
    std::vector<NodeId> Sub(Kids.begin(), Kids.begin() + (std::ptrdiff_t)N);
    NodeId Id = IL->makeNode(ILOp::Call, DataType::Int32, Sub);
    const Node &Made = CIL.node(Id);
    ASSERT_EQ(Made.numKids(), (unsigned)N);
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Made.Kids[I], Sub[I]) << "arity " << N << " kid " << I;
    size_t Count = 0;
    for (NodeId K : Made.Kids) { // range-for over both storage layouts
      EXPECT_EQ(K, Sub[Count]);
      ++Count;
    }
    EXPECT_EQ(Count, N);
  }
}

TEST(KidList, SetKidsGrowsAndShrinks) {
  Program P;
  auto IL = makeLoopIL(P);
  const MethodIL &CIL = *IL;

  NodeId A = IL->makeConstI(DataType::Int32, 1);
  NodeId B = IL->makeConstI(DataType::Int32, 2);
  NodeId C = IL->makeConstI(DataType::Int32, 3);
  NodeId Id = IL->makeNode(ILOp::Call, DataType::Int32, {A, B});
  ASSERT_EQ(CIL.node(Id).numKids(), 2u);

  NodeId Three[3] = {A, B, C}; // inline -> pool
  IL->setKids(Id, Three, 3);
  ASSERT_EQ(CIL.node(Id).numKids(), 3u);
  EXPECT_EQ(CIL.node(Id).Kids[2], C);

  NodeId One[1] = {C}; // pool -> inline
  IL->setKids(Id, One, 1);
  ASSERT_EQ(CIL.node(Id).numKids(), 1u);
  EXPECT_EQ(CIL.node(Id).Kids[0], C);
}

TEST(KidList, ClearAndEquality) {
  Program P;
  auto IL = makeLoopIL(P);
  NodeId A = IL->makeConstI(DataType::Int32, 1);
  NodeId B = IL->makeConstI(DataType::Int32, 2);
  NodeId X = IL->makeNode(ILOp::Add, DataType::Int32, {A, B});
  NodeId Y = IL->makeNode(ILOp::Add, DataType::Int32, {A, B});
  NodeId Z = IL->makeNode(ILOp::Add, DataType::Int32, {B, A});

  const MethodIL &CIL = *IL;
  EXPECT_TRUE(CIL.node(X).Kids == CIL.node(Y).Kids);
  EXPECT_FALSE(CIL.node(X).Kids == CIL.node(Z).Kids);

  IL->node(X).Kids.clear();
  EXPECT_EQ(CIL.node(X).numKids(), 0u);
  EXPECT_FALSE(CIL.node(X).Kids == CIL.node(Y).Kids);
}
