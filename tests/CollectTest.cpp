//===- tests/CollectTest.cpp - instrumentation + archive tests ------------===//

#include "TestPrograms.h"

#include "collect/Archive.h"
#include "collect/CollectionListener.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

CollectionRecord makeRecord(Rng &R, StringInterner &Dict, unsigned SigMod) {
  CollectionRecord Rec;
  char Name[48];
  std::snprintf(Name, sizeof(Name), "K%u.m(int)int",
                (unsigned)R.nextBelow(SigMod));
  Rec.SignatureId = Dict.intern(Name);
  Rec.Level = (OptLevel)R.nextBelow(NumOptLevels);
  Rec.ModifierBits = R.next() & ((1ull << NumTransformations) - 1);
  Rec.CompileCycles = (double)R.nextBelow(1u << 22);
  Rec.RunCycles = (double)R.nextBelow(1u << 26);
  Rec.Invocations = 1 + R.nextBelow(100000);
  Rec.DiscardedSamples = R.nextBelow(5);
  for (unsigned F = 0; F < NumFeatures; ++F)
    Rec.Features.set(F, (uint32_t)R.nextBelow(64));
  return Rec;
}

} // namespace

TEST(Archive, RoundTripPropertyOverRandomRecords) {
  Rng R(123);
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  for (int I = 0; I < 300; ++I)
    Records.push_back(makeRecord(R, Dict, 40));
  std::vector<uint8_t> Buf = encodeArchive(Dict, Records);
  ArchiveData Out;
  ASSERT_TRUE(decodeArchive(Buf, Out));
  ASSERT_EQ(Out.Records.size(), Records.size());
  ASSERT_EQ(Out.Signatures.size(), Dict.size());
  for (size_t I = 0; I < Records.size(); ++I) {
    const CollectionRecord &A = Records[I];
    const CollectionRecord &B = Out.Records[I];
    EXPECT_EQ(A.SignatureId, B.SignatureId);
    EXPECT_EQ(A.Level, B.Level);
    EXPECT_EQ(A.ModifierBits, B.ModifierBits);
    EXPECT_EQ(A.Invocations, B.Invocations);
    EXPECT_EQ(A.DiscardedSamples, B.DiscardedSamples);
    EXPECT_DOUBLE_EQ(A.CompileCycles, B.CompileCycles);
    EXPECT_DOUBLE_EQ(A.RunCycles, B.RunCycles);
    EXPECT_EQ(A.Features, B.Features);
  }
}

TEST(Archive, CompactnessBeatsNaiveEncoding) {
  Rng R(9);
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  for (int I = 0; I < 256; ++I)
    Records.push_back(makeRecord(R, Dict, 16));
  std::vector<uint8_t> Buf = encodeArchive(Dict, Records);
  // Naive fixed-width: 71 features x 4B + ~40B header + full signature
  // strings per record would be > 330 bytes/record.
  double PerRecord = (double)Buf.size() / 256.0;
  EXPECT_LT(PerRecord, 200.0);
}

TEST(Archive, RejectsCorruptedBuffers) {
  Rng R(5);
  StringInterner Dict;
  std::vector<CollectionRecord> Records{makeRecord(R, Dict, 2)};
  std::vector<uint8_t> Buf = encodeArchive(Dict, Records);
  ArchiveData Out;
  // Wrong magic.
  std::vector<uint8_t> Bad = Buf;
  Bad[0] = 'X';
  EXPECT_FALSE(decodeArchive(Bad, Out));
  // Wrong version.
  Bad = Buf;
  Bad[4] = 99;
  EXPECT_FALSE(decodeArchive(Bad, Out));
  // Truncation at every prefix must never crash and must mostly fail.
  for (size_t Cut = 0; Cut < Buf.size(); Cut += 7) {
    std::vector<uint8_t> Trunc(Buf.begin(), Buf.begin() + (long)Cut);
    ArchiveData Ignored;
    EXPECT_FALSE(decodeArchive(Trunc, Ignored)) << "cut=" << Cut;
  }
  // Empty input.
  EXPECT_FALSE(decodeArchive({}, Out));
}

TEST(Archive, FileRoundTrip) {
  Rng R(8);
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  for (int I = 0; I < 10; ++I)
    Records.push_back(makeRecord(R, Dict, 4));
  std::string Path = ::testing::TempDir() + "jitml_archive_test.jmla";
  ASSERT_TRUE(writeArchiveFile(Path, Dict, Records));
  ArchiveData Out;
  ASSERT_TRUE(readArchiveFile(Path, Out));
  EXPECT_EQ(Out.Records.size(), Records.size());
  ::remove(Path.c_str());
  EXPECT_FALSE(readArchiveFile(Path, Out)); // gone now
}

TEST(Listener, AccumulatesPerCompilationProfiles) {
  Program P = makeSumProgram();
  CollectionListener Listener(P);
  VirtualMachine::Config Cfg;
  Cfg.InstrumentMethods = true;
  Cfg.Control.Enabled = false;
  VirtualMachine VM(P, Cfg);
  VM.setListener(&Listener);
  VM.compileMethod(0, OptLevel::Cold);
  for (int I = 0; I < 5; ++I)
    VM.invoke(0, {Value::ofI(10)});
  // Recompile: closes the first record.
  VM.compileMethod(0, OptLevel::Warm);
  for (int I = 0; I < 3; ++I)
    VM.invoke(0, {Value::ofI(10)});
  Listener.finalize();
  ASSERT_EQ(Listener.records().size(), 2u);
  EXPECT_EQ(Listener.records()[0].Invocations, 5u);
  EXPECT_EQ(Listener.records()[0].Level, OptLevel::Cold);
  EXPECT_EQ(Listener.records()[1].Invocations, 3u);
  EXPECT_EQ(Listener.records()[1].Level, OptLevel::Warm);
  EXPECT_GT(Listener.records()[0].RunCycles, 0.0);
  EXPECT_GT(Listener.records()[0].CompileCycles, 0.0);
  // Dictionary interned the signature once.
  EXPECT_EQ(Listener.dictionary().size(), 1u);
}

TEST(Listener, DiscardsCrossCoreSamples) {
  Program P = makeSumProgram();
  CollectionListener Listener(P);
  VirtualMachine::Config Cfg;
  Cfg.InstrumentMethods = true;
  Cfg.Control.Enabled = false;
  // Migrate constantly: many enter/exit pairs land on different cores.
  Cfg.Clock.MigrationPeriod = 200.0;
  Cfg.Clock.Seed = 77;
  VirtualMachine VM(P, Cfg);
  VM.setListener(&Listener);
  VM.compileMethod(0, OptLevel::Cold);
  for (int I = 0; I < 400; ++I)
    VM.invoke(0, {Value::ofI(25)});
  Listener.finalize();
  ASSERT_EQ(Listener.records().size(), 1u);
  const CollectionRecord &Rec = Listener.records()[0];
  EXPECT_GT(Listener.discardedSamples(), 0u)
      << "TSC drift protection never fired";
  EXPECT_EQ(Rec.Invocations + Rec.DiscardedSamples, 400u);
}

TEST(Listener, UninstrumentedInterpretedCallsIgnored) {
  Program P = makeSumProgram();
  CollectionListener Listener(P);
  VirtualMachine::Config Cfg;
  Cfg.InstrumentMethods = true;
  Cfg.EnableJit = false; // nothing ever compiles
  VirtualMachine VM(P, Cfg);
  VM.setListener(&Listener);
  for (int I = 0; I < 10; ++I)
    VM.invoke(0, {Value::ofI(5)});
  Listener.finalize();
  EXPECT_TRUE(Listener.records().empty());
}
