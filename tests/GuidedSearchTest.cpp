//===- tests/GuidedSearchTest.cpp - future-work guided search tests -------===//

#include "jitml/Training.h"
#include "modifiers/GuidedSearch.h"
#include "runtime/VirtualMachine.h"
#include "verify/PassVerifier.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace jitml;

namespace {

constexpr TransformationKind BadPass = TransformationKind::Rematerialization;
constexpr TransformationKind GoodPass = TransformationKind::ConstantFolding;

/// Synthetic world: disabling BadPass improves V by 30%, disabling
/// GoodPass worsens it by 30%, everything else is neutral.
double syntheticV(const PlanModifier &M, Rng &Noise) {
  double V = 1000.0;
  if (M.disables(BadPass))
    V *= 0.7;
  if (M.disables(GoodPass))
    V *= 1.3;
  return V * (1.0 + 0.02 * Noise.nextGaussian());
}

} // namespace

TEST(GuidedSearch, LearnsWhichBitsToDisable) {
  GuidedSearch Search;
  Rng R(42), Noise(7);
  // Feed 300 randomized experiments with synthetic outcomes.
  for (int I = 0; I < 300; ++I) {
    PlanModifier M;
    for (unsigned K = 0; K < NumTransformations; ++K)
      if (R.nextBool(0.35))
        M.disable((TransformationKind)K);
    Search.noteOutcome(OptLevel::Warm, M, syntheticV(M, Noise));
  }
  double PBad = Search.disableProbability(OptLevel::Warm, BadPass);
  double PGood = Search.disableProbability(OptLevel::Warm, GoodPass);
  double PNeutral = Search.disableProbability(
      OptLevel::Warm, TransformationKind::JumpThreading);
  EXPECT_GT(PBad, 0.3) << "harmful pass should be disabled aggressively";
  EXPECT_LT(PGood, 0.06) << "beneficial pass should stay enabled";
  EXPECT_NEAR(PNeutral, 0.12, 0.1);
  // Proposals reflect the learned bias.
  unsigned BadDisabled = 0, GoodDisabled = 0;
  for (int I = 0; I < 400; ++I) {
    PlanModifier M = Search.propose(R, OptLevel::Warm);
    BadDisabled += M.disables(BadPass) ? 1 : 0;
    GoodDisabled += M.disables(GoodPass) ? 1 : 0;
  }
  EXPECT_GT(BadDisabled, GoodDisabled * 2);
}

TEST(GuidedSearch, LevelsAreIndependent) {
  GuidedSearch Search;
  Rng Noise(9);
  for (int I = 0; I < 100; ++I) {
    PlanModifier M;
    M.disable(BadPass);
    Search.noteOutcome(OptLevel::Hot, M, 500.0);
    PlanModifier Null;
    Search.noteOutcome(OptLevel::Hot, Null, 1000.0);
  }
  (void)Noise;
  EXPECT_GT(Search.disableProbability(OptLevel::Hot, BadPass), 0.4);
  // Warm saw nothing: still at the base probability.
  EXPECT_NEAR(Search.disableProbability(OptLevel::Warm, BadPass), 0.12,
              1e-9);
  EXPECT_EQ(Search.observations(OptLevel::Warm), 0u);
  EXPECT_EQ(Search.observations(OptLevel::Hot), 200u);
}

TEST(GuidedSearch, UntrustedBitsStayAtBase) {
  GuidedSearch Search;
  PlanModifier M;
  M.disable(BadPass);
  // Fewer than MinSamplesPerBit observations on the disabled side.
  Search.noteOutcome(OptLevel::Cold, M, 1.0);
  Search.noteOutcome(OptLevel::Cold, PlanModifier(), 100.0);
  EXPECT_NEAR(Search.disableProbability(OptLevel::Cold, BadPass), 0.12,
              1e-9);
}

TEST(GuidedSearch, ProposalsSurviveVerifiedPipelineEdges) {
  // Edge plans under search-proposed modifiers, with the deep IL verifier
  // interposed after every pass (default abort handler: completing the
  // test is the structural assertion; the checksum is the semantic one).
  // Covers the empty plan and the scorching/all-bits extremes that the
  // search can and does propose once it has learned to distrust nothing.
  verify::VerifyIlMode Saved = verify::verifyIlMode();
  verify::setVerifyIlMode(verify::VerifyIlMode::Full);

  Program P = buildWorkload(workloadByCode("cp"));
  int64_t Reference = workloadChecksum(P, 1);
  std::vector<uint32_t> Kernels;
  for (uint32_t M = 0; M < P.numMethods(); ++M)
    if (P.methodAt(M).Name.find("Kernel") != std::string::npos)
      Kernels.push_back(M);

  GuidedSearch Search;
  Rng R(314);
  CompilationPlan Empty; // zero entries
  Empty.Level = OptLevel::Hot;
  std::vector<const CompilationPlan *> Plans{
      &Empty, &planForLevel(OptLevel::Scorching)};
  for (int I = 0; I < 4; ++I) {
    PlanModifier Mod = Search.propose(R, OptLevel::Hot);
    for (const CompilationPlan *Plan : Plans) {
      VirtualMachine::Config Cfg;
      Cfg.Control.Enabled = false;
      VirtualMachine VM(P, Cfg);
      for (uint32_t M : Kernels)
        VM.compileWithPlan(M, *Plan, Mod);
      ExecResult Res = VM.run({Value::ofI(0)});
      ASSERT_FALSE(Res.Exceptional);
      EXPECT_EQ((int64_t)mix64((uint64_t)Res.Ret.I), Reference)
          << "plan size " << Plan->size() << " modifier "
          << Mod.enabledMask().toString();
      Search.noteOutcome(OptLevel::Hot, Mod, 100.0);
    }
  }
  verify::setVerifyIlMode(Saved);
}

TEST(GuidedStrategy, ServesAndExhaustsWithinBudget) {
  StrategyConfig Cfg;
  Cfg.Strategy = SearchStrategy::Guided;
  Cfg.ModifiersPerLevel = 10;
  Cfg.UsesPerModifier = 2;
  StrategyControl SC(Cfg);
  unsigned Nulls = 0, NonNulls = 0;
  for (int I = 0; I < 30; ++I) {
    PlanModifier M = SC.modifierFor((uint32_t)I, OptLevel::Warm);
    (M.isNull() ? Nulls : NonNulls) += 1;
    SC.noteOutcome(OptLevel::Warm, M, 100.0);
  }
  EXPECT_GT(Nulls, 8u); // every third slot + exhaustion tail
  EXPECT_GT(NonNulls, 10u);
  EXPECT_FALSE(SC.explorationExhausted()); // other levels still fresh
  for (unsigned L = 0; L < NumOptLevels; ++L)
    for (int I = 0; I < 40; ++I)
      (void)SC.modifierFor(1000 + I, (OptLevel)L);
  EXPECT_TRUE(SC.explorationExhausted());
}

TEST(GuidedStrategy, EndToEndCollectionProducesRecords) {
  CollectConfig CC;
  CC.Iterations = 10;
  CC.ModifiersPerLevel = 16;
  CC.UsesPerModifier = 2;
  IntermediateDataSet Data =
      collectWithStrategy(workloadByCode("mt"), CC, SearchStrategy::Guided);
  EXPECT_GT(Data.size(), 30u);
  // The guided run explored beyond the null modifier.
  std::set<uint64_t> Modifiers;
  for (const TaggedRecord &T : Data.Records)
    Modifiers.insert(T.Record.ModifierBits);
  EXPECT_GT(Modifiers.size(), 5u);
}
