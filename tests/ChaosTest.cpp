//===- tests/ChaosTest.cpp - deterministic fault injection + chaos --------===//
//
// Two layers of coverage for support/FaultInjection:
//
//  * FaultInjection.*: the mechanism itself — spec parsing, the four
//    schedule modes, seeded replay, glob binding, telemetry mirroring.
//  * Chaos.*: faults swept through the real subsystems, asserting the
//    invariants the design docs promise: results bit-identical to the
//    no-fault run whenever fallback engages, no deadlock on queue
//    drain/close under injected stalls, and telemetry counters consistent
//    with the injected fault counts.
//
// The concurrent Chaos scenarios also run under TSan (scripts/tier1.sh).
// Every test arms through FaultGuard, so no schedule outlives its test.
//
//===----------------------------------------------------------------------===//

#include "bridge/ModelService.h"
#include "bridge/ResilientClient.h"
#include "bridge/Transports.h"
#include "jitml/LearnedStrategy.h"
#include "runtime/AsyncCompiler.h"
#include "runtime/CodeCache.h"
#include "runtime/CompilationQueue.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "workloads/Workload.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unistd.h>

using namespace jitml;

namespace {

/// Arms a spec for the duration of one scope; disarms on exit even when an
/// assertion fails, so no schedule leaks into later tests.
struct FaultGuard {
  explicit FaultGuard(const std::string &Spec, uint64_t Seed = 0) {
    EXPECT_TRUE(FaultRegistry::global().arm(Spec, Seed)) << Spec;
  }
  ~FaultGuard() { FaultRegistry::global().disarm(); }
};

uint64_t fires(const char *Name) {
  return FaultRegistry::global().fires(Name);
}

uint64_t hits(const char *Name) {
  return FaultRegistry::global().hits(Name);
}

double elapsedMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

ResilientModelClient::Config fastConfig() {
  ResilientModelClient::Config C;
  C.RequestTimeoutMs = 50;
  C.MaxAttempts = 2;
  C.InitialBackoffMs = 1;
  return C;
}

/// Healthy echo backend: modifier = sum of features + level.
class StubBackend : public ModelBackend {
public:
  std::optional<uint64_t>
  predictModifier(OptLevel Level,
                  const std::vector<double> &RawFeatures) override {
    uint64_t Sum = (uint64_t)Level;
    for (double V : RawFeatures)
      Sum += (uint64_t)V;
    ++Served;
    return Sum;
  }
  uint64_t Served = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// FaultInjection: the mechanism
//===----------------------------------------------------------------------===//

TEST(FaultInjection, SpecParsesModesAndArgs) {
  std::vector<FaultRule> Rules;
  std::string Error;
  ASSERT_TRUE(FaultRegistry::parseSpec(
      "a=always;b.*=p0.25;c=n3:7;d=k2;;e=p1", Rules, &Error))
      << Error;
  ASSERT_EQ(Rules.size(), 5u);
  EXPECT_EQ(Rules[0].Pattern, "a");
  EXPECT_EQ(Rules[0].Mode, FaultMode::Always);
  EXPECT_FALSE(Rules[0].HasArg);
  EXPECT_EQ(Rules[1].Pattern, "b.*");
  EXPECT_EQ(Rules[1].Mode, FaultMode::Prob);
  EXPECT_DOUBLE_EQ(Rules[1].P, 0.25);
  EXPECT_EQ(Rules[2].Mode, FaultMode::EveryNth);
  EXPECT_EQ(Rules[2].N, 3u);
  EXPECT_TRUE(Rules[2].HasArg);
  EXPECT_EQ(Rules[2].Arg, 7u);
  EXPECT_EQ(Rules[3].Mode, FaultMode::OneShot);
  EXPECT_EQ(Rules[3].N, 2u);
  EXPECT_DOUBLE_EQ(Rules[4].P, 1.0);

  for (const char *Bad :
       {"", "x", "x=", "=always", "x=p2", "x=p-0.5", "x=n0", "x=k0",
        "x=q5", "x=always:beef", "x=pabc", "x=nxyz"}) {
    Error.clear();
    EXPECT_FALSE(FaultRegistry::parseSpec(Bad, Rules, &Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(FaultInjection, DisabledPointsAreInertAndUncounted) {
  FaultRegistry::global().disarm();
  ASSERT_FALSE(faultsArmed());
  uint64_t Before = hits("chaos.test.inert");
  int Fired = 0;
  for (int I = 0; I < 100; ++I)
    if (JITML_FAULT_POINT("chaos.test.inert"))
      ++Fired;
  EXPECT_EQ(Fired, 0);
  EXPECT_EQ(hits("chaos.test.inert"), Before); // fast path: not even counted
}

TEST(FaultInjection, EveryNthAndOneShotSchedules) {
  FaultGuard G("chaos.test.nth=n3;chaos.test.oneshot=k2");
  std::vector<int> NthFired, OneShotFired;
  for (int I = 1; I <= 9; ++I) {
    if (JITML_FAULT_POINT("chaos.test.nth"))
      NthFired.push_back(I);
    if (JITML_FAULT_POINT("chaos.test.oneshot"))
      OneShotFired.push_back(I);
  }
  EXPECT_EQ(NthFired, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(OneShotFired, (std::vector<int>{2}));
  EXPECT_EQ(hits("chaos.test.nth"), 9u);
  EXPECT_EQ(fires("chaos.test.nth"), 3u);
  EXPECT_EQ(fires("chaos.test.oneshot"), 1u);
}

TEST(FaultInjection, AlwaysAndProbabilityEndpoints) {
  FaultGuard G("chaos.test.palways=always;chaos.test.pzero=p0;"
               "chaos.test.pone=p1");
  int Always = 0, Zero = 0, One = 0;
  for (int I = 0; I < 200; ++I) {
    if (JITML_FAULT_POINT("chaos.test.palways"))
      ++Always;
    if (JITML_FAULT_POINT("chaos.test.pzero"))
      ++Zero;
    if (JITML_FAULT_POINT("chaos.test.pone"))
      ++One;
  }
  EXPECT_EQ(Always, 200);
  EXPECT_EQ(Zero, 0);
  EXPECT_EQ(One, 200);
  EXPECT_EQ(hits("chaos.test.pzero"), 200u); // hit-counted even if never fired
}

TEST(FaultInjection, ReplaySameSeedIdenticalSequence) {
  // The acceptance contract: whether a hit fires is a pure function of
  // (seed, name, ordinal), so the same spec + seed replays bit-identically.
  auto Collect = [](uint64_t Seed) {
    FaultGuard G("chaos.test.replay=p0.3", Seed);
    std::vector<bool> Fired;
    Fired.reserve(500);
    for (int I = 0; I < 500; ++I)
      Fired.push_back(JITML_FAULT_POINT("chaos.test.replay"));
    return Fired;
  };
  std::vector<bool> A = Collect(42);
  std::vector<bool> B = Collect(42);
  std::vector<bool> C = Collect(43);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  size_t Fires = (size_t)std::count(A.begin(), A.end(), true);
  EXPECT_GT(Fires, 75u); // ~150 expected; bounds are 6-sigma-loose
  EXPECT_LT(Fires, 250u);
}

TEST(FaultInjection, WildcardFirstMatchWins) {
  {
    // The glob comes first: it governs every chaos.wild.* point.
    FaultGuard G("chaos.wild.*=always;chaos.wild.b=p0");
    EXPECT_TRUE(JITML_FAULT_POINT("chaos.wild.a"));
    EXPECT_TRUE(JITML_FAULT_POINT("chaos.wild.b"));
  }
  {
    // The exact rule comes first: it shields b from the glob.
    FaultGuard G("chaos.wild.b=p0;chaos.wild.*=always");
    EXPECT_TRUE(JITML_FAULT_POINT("chaos.wild.a"));
    EXPECT_FALSE(JITML_FAULT_POINT("chaos.wild.b"));
  }
}

TEST(FaultInjection, ArgOverridesCallerDefault) {
  FaultGuard G("chaos.test.witharg=always:25;chaos.test.noarg=always");
  uint64_t V = 3;
  EXPECT_TRUE(JITML_FAULT_POINT_ARG("chaos.test.witharg", V));
  EXPECT_EQ(V, 25u);
  uint64_t W = 3;
  EXPECT_TRUE(JITML_FAULT_POINT_ARG("chaos.test.noarg", W));
  EXPECT_EQ(W, 3u); // rule carries no arg: caller default survives
}

TEST(FaultInjection, TelemetryMirrorsFireCounts) {
  FaultGuard G("chaos.test.mirror=n2");
  for (int I = 0; I < 10; ++I)
    (void)JITML_FAULT_POINT("chaos.test.mirror");
  EXPECT_EQ(fires("chaos.test.mirror"), 5u);
  EXPECT_EQ(MetricRegistry::global().counter("fault.chaos.test.mirror").value(),
            5u);
  std::vector<FaultPointStats> Snap = FaultRegistry::global().snapshot();
  bool Found = false;
  for (const FaultPointStats &S : Snap)
    if (S.Name == "chaos.test.mirror") {
      Found = true;
      EXPECT_EQ(S.Hits, 10u);
      EXPECT_EQ(S.Fires, 5u);
    }
  EXPECT_TRUE(Found);
}

TEST(FaultInjection, BadSpecKeepsPreviousSchedule) {
  FaultGuard G("chaos.test.keep=always");
  EXPECT_TRUE(JITML_FAULT_POINT("chaos.test.keep"));
  EXPECT_FALSE(FaultRegistry::global().arm("not a spec", 0));
  EXPECT_TRUE(faultsArmed());
  EXPECT_TRUE(JITML_FAULT_POINT("chaos.test.keep")); // old schedule intact
}

TEST(FaultInjection, RearmResetsOrdinals) {
  // Ordinals restart at 1 on every arm(): a k1 one-shot fires again.
  {
    FaultGuard G("chaos.test.rearm=k1");
    EXPECT_TRUE(JITML_FAULT_POINT("chaos.test.rearm"));
    EXPECT_FALSE(JITML_FAULT_POINT("chaos.test.rearm"));
  }
  {
    FaultGuard G("chaos.test.rearm=k1");
    EXPECT_TRUE(JITML_FAULT_POINT("chaos.test.rearm"));
    EXPECT_EQ(hits("chaos.test.rearm"), 1u); // counters were reset too
  }
}

//===----------------------------------------------------------------------===//
// Chaos: faults through the real subsystems
//===----------------------------------------------------------------------===//

TEST(Chaos, ForcedFallbackPreservesVmResultsBitIdentically) {
  // The design promise: when the bridge degrades to the default plan, the
  // VM's results AND its simulated clock are bit-identical to a run that
  // never had a model attached (a null modifier IS the default plan).
  Program P;
  uint32_t Method = jitml::testing::addSumToN(P);
  ASSERT_TRUE(verifyProgram(P).ok());

  VirtualMachine::Config Cfg;
  std::vector<int64_t> BaselineResults;
  VirtualMachine Baseline(P, Cfg);
  for (int I = 0; I < 10; ++I) {
    Baseline.compileMethod(Method, I % 2 ? OptLevel::Warm : OptLevel::Cold);
    ExecResult R = Baseline.invoke(Method, {Value::ofI(10 + I)});
    ASSERT_FALSE(R.Exceptional);
    BaselineResults.push_back(R.Ret.I);
  }

  // Same run, but through a healthy model service whose answers are all
  // forced into fallback. CacheCapacity 0 keeps every request live.
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw, &Backend] { serveModel(*ServerRaw, Backend); });
  ResilientModelClient::Config CC = fastConfig();
  CC.CacheCapacity = 0;
  ResilientModelClient Client(std::move(ClientEnd), CC);

  FaultGuard G("client.request.fallback=always");
  VirtualMachine VM(P, Cfg);
  VM.setModifierHook(makeResilientHook(Client));
  for (int I = 0; I < 10; ++I) {
    VM.compileMethod(Method, I % 2 ? OptLevel::Warm : OptLevel::Cold);
    ExecResult R = VM.invoke(Method, {Value::ofI(10 + I)});
    ASSERT_FALSE(R.Exceptional);
    EXPECT_EQ(R.Ret.I, BaselineResults[(size_t)I]);
  }
  EXPECT_DOUBLE_EQ(VM.clock().cycles(), Baseline.clock().cycles());
  EXPECT_EQ(VM.stats().Compilations, Baseline.stats().Compilations);

  // Telemetry consistency: every injected fault is a counted fallback, and
  // nothing ever reached the backend.
  BridgeCounters C = Client.counters();
  EXPECT_GT(fires("client.request.fallback"), 0u);
  EXPECT_EQ(C.Fallbacks, fires("client.request.fallback"));
  EXPECT_EQ(C.WireRequests, 0u);
  EXPECT_EQ(Backend.Served, 0u);
  Client.bye();
  Server.join();
}

TEST(Chaos, ForcedTimeoutFallsBackWithinDeadline) {
  auto [ClientEnd, ServerEnd] = InProcessPipe::makePair();
  StubBackend Backend;
  InProcessPipe *ServerRaw = ServerEnd.get();
  std::thread Server([ServerRaw, &Backend] { serveModel(*ServerRaw, Backend); });
  ResilientModelClient Client(std::move(ClientEnd), fastConfig());

  FaultGuard G("client.request.timeout=always");
  FeatureVector F;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Client.requestModifier(OptLevel::Cold, F).has_value());
  EXPECT_LT(elapsedMs(Start), 2000.0) << "forced timeout must not hang";
  BridgeCounters C = Client.counters();
  EXPECT_GE(C.Timeouts, 1u);
  EXPECT_EQ(C.Timeouts, fires("client.request.timeout"));
  EXPECT_EQ(C.Fallbacks, 1u);
  EXPECT_FALSE(Client.usable()); // dropped connection, no factory
  Server.join();                 // the dropped pipe ends serveModel
}

TEST(Chaos, ConnectFaultExhaustsRetriesThenFallsBack) {
  // Every reconnect attempt is vetoed: the factory is never invoked and
  // the request degrades after MaxAttempts.
  int FactoryCalls = 0;
  auto Factory = [&]() -> std::unique_ptr<Transport> {
    ++FactoryCalls;
    return nullptr;
  };
  ResilientModelClient Client(Factory, fastConfig());
  FaultGuard G("client.connect.fail=always");
  FeatureVector F;
  EXPECT_FALSE(Client.requestModifier(OptLevel::Cold, F).has_value());
  EXPECT_EQ(FactoryCalls, 0);
  EXPECT_EQ(hits("client.connect.fail"), 2u); // one per attempt
  EXPECT_EQ(Client.counters().Fallbacks, 1u);
}

TEST(Chaos, TransportFaultsSurfaceAsCleanStatuses) {
  {
    FaultGuard G("transport.read.timeout=always");
    auto [A, B] = InProcessPipe::makePair();
    Message M;
    M.Type = MsgType::Bye;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    EXPECT_EQ(recvMessageFor(*B, Out, 1000), RecvStatus::Timeout);
  }
  {
    FaultGuard G("transport.write.fail=always");
    auto [A, B] = InProcessPipe::makePair();
    Message M;
    M.Type = MsgType::Bye;
    EXPECT_FALSE(sendMessage(*A, M));
  }
  {
    FaultGuard G("transport.read.short=always");
    auto [A, B] = InProcessPipe::makePair();
    Message M;
    M.Type = MsgType::Bye;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    EXPECT_FALSE(recvMessage(*B, Out));
  }
  {
    // Delayed delivery: the reply arrives late but intact.
    FaultGuard G("transport.read.delay=k1:40");
    auto [A, B] = InProcessPipe::makePair();
    Message M;
    M.Type = MsgType::Modifier;
    M.ModifierBits = 99;
    ASSERT_TRUE(sendMessage(*A, M));
    Message Out;
    auto Start = std::chrono::steady_clock::now();
    EXPECT_EQ(recvMessageFor(*B, Out, 5000), RecvStatus::Ok);
    EXPECT_GE(elapsedMs(Start), 35.0);
    EXPECT_EQ(Out.ModifierBits, 99u);
  }
}

TEST(Chaos, FrameCorruptionRejectsCleanly) {
  // A flipped payload byte must never crash the decoder; a corrupted type
  // byte (Bye=5 -> 4=Error is harmless, so corrupt a Features frame's
  // level byte) decodes to a clean Malformed.
  FaultGuard G("bridge.frame.corrupt=always:1");
  auto [A, B] = InProcessPipe::makePair();
  Message M;
  M.Type = MsgType::Features;
  M.Level = (OptLevel)0;
  M.FeatureValues.assign(4, 1.0);
  ASSERT_TRUE(sendMessage(*A, M));
  Message Out;
  RecvStatus S = recvMessageFor(*B, Out, 1000);
  EXPECT_NE(S, RecvStatus::Timeout);
  EXPECT_NE(S, RecvStatus::Closed);
  EXPECT_EQ(fires("bridge.frame.corrupt"), 1u);
}

TEST(Chaos, FifoEintrStormStillDeliversBytes) {
  char Template[] = "/tmp/jitml_chaos_fifo_XXXXXX";
  std::string Dir = mkdtemp(Template);
  std::string ToServer = Dir + "/c2s";
  std::string ToClient = Dir + "/s2c";
  ASSERT_TRUE(FifoTransport::createPipes(ToServer, ToClient));
  std::unique_ptr<FifoTransport> ServerT;
  std::thread Opener([&] {
    ServerT = FifoTransport::open(ToServer, ToClient, /*IsServer=*/true);
  });
  auto T = FifoTransport::open(ToServer, ToClient, /*IsServer=*/false);
  Opener.join();
  ASSERT_NE(T, nullptr);
  ASSERT_NE(ServerT, nullptr);

  // p0.4 EINTR storm on every read/write/poll iteration: progress must
  // still happen and the bytes must arrive intact and in order. The
  // schedule is deterministic (fixed seed), and 16 chunks cross the point
  // often enough that the seed-7 schedule is known to fire.
  FaultGuard G("transport.fifo.eintr=p0.4", /*Seed=*/7);
  for (int Chunk = 0; Chunk < 16; ++Chunk) {
    uint8_t Data[64];
    for (unsigned I = 0; I < sizeof(Data); ++I)
      Data[I] = (uint8_t)(I * 3 + Chunk);
    ASSERT_TRUE(ServerT->writeBytes(Data, sizeof(Data)));
    uint8_t Got[64] = {0};
    ASSERT_EQ(T->readBytesFor(Got, sizeof(Got), 5000), IoStatus::Ok);
    ASSERT_EQ(std::memcmp(Data, Got, sizeof(Data)), 0) << "chunk " << Chunk;
  }
  EXPECT_GT(hits("transport.fifo.eintr"), 32u);
  EXPECT_GT(fires("transport.fifo.eintr"), 0u);

  ServerT.reset();
  T.reset();
  ::unlink(ToServer.c_str());
  ::unlink(ToClient.c_str());
  ::rmdir(Dir.c_str());
}

TEST(Chaos, ForcedOverflowKeepsVmCorrectAndCounted) {
  // Every other enqueue is vetoed; execution must carry on interpreted
  // with results identical to the interpreter, and the VM's overflow
  // statistics must equal the injected fault count exactly.
  Program P;
  std::vector<uint32_t> Methods;
  for (int I = 0; I < 8; ++I)
    Methods.push_back(
        jitml::testing::addSumToN(P, ("m" + std::to_string(I)).c_str()));
  ASSERT_TRUE(verifyProgram(P).ok());

  VirtualMachine::Config InterpCfg;
  InterpCfg.EnableJit = false;
  VirtualMachine Interp(P, InterpCfg);
  std::vector<int64_t> Expected;
  for (uint32_t M : Methods)
    Expected.push_back(Interp.invoke(M, {Value::ofI(10)}).Ret.I);

  FaultGuard G("queue.enqueue.overflow=n2");
  VirtualMachine::Config Cfg;
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    for (unsigned K = 0; K < 3; ++K)
      Cfg.Control.InvocationTriggers[L][K] = (L < 2) ? 2 : 1000000;
    Cfg.Control.CycleTriggers[L] = 1e18;
  }
  Cfg.Async.Enabled = true;
  Cfg.Async.Workers = 2;
  Cfg.Async.QueueCapacity = 64;
  {
    VirtualMachine VM(P, Cfg);
    for (int Round = 0; Round < 6; ++Round)
      for (size_t I = 0; I < Methods.size(); ++I) {
        ExecResult R = VM.invoke(Methods[I], {Value::ofI(10)});
        ASSERT_FALSE(R.Exceptional);
        ASSERT_EQ(R.Ret.I, Expected[I]);
      }
    VM.drainCompilations();
    EXPECT_GT(VM.stats().AsyncQueueOverflows, 0u);
    EXPECT_EQ(VM.stats().AsyncQueueOverflows,
              fires("queue.enqueue.overflow"));
  } // ~VM shuts the pipeline down while the schedule is still armed
}

TEST(Chaos, DrainAndCloseSurviveInjectedStalls) {
  // Worker stalls and dequeue stalls widen every drain/close race window;
  // the pipeline must still reach quiescence with every completion
  // delivered. The ctest timeout is the deadlock detector.
  Program P;
  std::vector<uint32_t> Methods;
  for (int I = 0; I < 6; ++I)
    Methods.push_back(
        jitml::testing::addSumToN(P, ("s" + std::to_string(I)).c_str()));
  ASSERT_TRUE(verifyProgram(P).ok());

  FaultGuard G("pipeline.worker.stall=p0.5:2;queue.dequeue.stall=p0.5:2",
               /*Seed=*/11);
  CostModel Cost;
  CodeCache Cache;
  Cache.reset(P.numMethods());
  AsyncCompilePipeline::Config C;
  C.Workers = 2;
  C.MaxPredictBatch = 2;
  size_t Completions = 0;
  {
    AsyncCompilePipeline Pipe(P, Cost, Cache, C);
    for (uint32_t M : Methods)
      ASSERT_EQ(Pipe.request(M, OptLevel::Warm, false, 1),
                CompilationQueue::EnqueueResult::Enqueued);
    Pipe.drain();
    Completions += Pipe.takeCompletions().size();
    for (uint32_t M : Methods)
      Pipe.request(M, OptLevel::Hot, false, 2);
    Pipe.shutdown(/*FinishPending=*/true);
    Completions += Pipe.takeCompletions().size();
  }
  EXPECT_EQ(Completions, Methods.size() * 2);
  for (uint32_t M : Methods)
    EXPECT_NE(Cache.lookup(M), nullptr);
  EXPECT_GT(fires("pipeline.worker.stall") + fires("queue.dequeue.stall"),
            0u);
}

TEST(Chaos, ForcedStaleInstallIsRejectedWithoutPoisoningSlot) {
  FaultGuard G("cache.install.stale=k1");
  CodeCache Cache;
  Cache.reset(1);
  auto Body = [](OptLevel L) {
    auto B = std::make_unique<NativeMethod>();
    B->Level = L;
    return B;
  };
  // First install is forced stale: rejected, retired, counted.
  EXPECT_FALSE(Cache.install(0, Body(OptLevel::Cold), 1));
  EXPECT_EQ(Cache.lookup(0), nullptr);
  EXPECT_EQ(Cache.staleRejected(), 1u);
  EXPECT_EQ(Cache.retiredCount(), 1u);
  EXPECT_EQ(fires("cache.install.stale"), 1u);
  // The slot is not poisoned: the same ticket later installs fine.
  EXPECT_TRUE(Cache.install(0, Body(OptLevel::Warm), 1));
  ASSERT_NE(Cache.lookup(0), nullptr);
  EXPECT_EQ(Cache.lookup(0)->Level, OptLevel::Warm);
}

TEST(Chaos, DeferredReclamationAccumulatesThenDrains) {
  CodeCache Cache;
  Cache.reset(1);
  auto Body = [] {
    auto B = std::make_unique<NativeMethod>();
    return B;
  };
  ASSERT_TRUE(Cache.install(0, Body(), 1));
  ASSERT_TRUE(Cache.install(0, Body(), 2)); // retires the first body
  {
    FaultGuard G("cache.reclaim.defer=always");
    Cache.reclaimRetired();
    EXPECT_EQ(Cache.retiredCount(), 1u); // reclamation pressure persists
  }
  Cache.reclaimRetired(); // disarmed: drains normally
  EXPECT_EQ(Cache.retiredCount(), 0u);
}

TEST(Chaos, PoolTaskDelayDoesNotBreakParallelFor) {
  FaultGuard G("pool.task.delay=p0.3:2", /*Seed=*/5);
  std::vector<std::atomic<int>> Touched(64);
  parallelFor(
      Touched.size(),
      [&](size_t I) { Touched[I].fetch_add(1, std::memory_order_relaxed); },
      /*Jobs=*/4);
  for (size_t I = 0; I < Touched.size(); ++I)
    EXPECT_EQ(Touched[I].load(), 1) << "index " << I;
}

TEST(Chaos, TraceSinkFailureDegradesToCountersOnly) {
  TraceEmitter Emitter(/*RingCapacity=*/64);
  std::atomic<uint64_t> SinkCalls{0};
  ASSERT_TRUE(Emitter.openWithSink([&](const char *, size_t) {
    SinkCalls.fetch_add(1);
    return true;
  }));
  ASSERT_TRUE(Emitter.enabled());

  FaultGuard G("trace.sink.fail=always");
  TraceEvent E;
  E.Stage = "chaos";
  Emitter.record(E);
  Emitter.flushNow(); // forced write failure -> failOnce degradation
  EXPECT_FALSE(Emitter.enabled());
  EXPECT_EQ(Emitter.eventsWritten(), 0u);
  EXPECT_EQ(SinkCalls.load(), 0u); // the fault preempted the sink

  // Counters-only operation continues: recording is a silent no-op.
  Emitter.record(E);
  MetricRegistry::global().counter("chaos.survived").add();
  EXPECT_GE(MetricRegistry::global().counter("chaos.survived").value(), 1u);
  Emitter.close();
}

TEST(Chaos, TraceRingFullDropsAndCounts) {
  TraceEmitter Emitter(/*RingCapacity=*/64);
  ASSERT_TRUE(
      Emitter.openWithSink([](const char *, size_t) { return true; }));
  FaultGuard G("trace.ring.full=always");
  uint64_t Before = Emitter.eventsDropped();
  TraceEvent E;
  E.Stage = "chaos";
  for (int I = 0; I < 10; ++I)
    Emitter.record(E);
  EXPECT_EQ(Emitter.eventsDropped(), Before + 10);
  Emitter.close();
  EXPECT_EQ(Emitter.eventsWritten(), 0u); // every event was dropped
}

TEST(Chaos, Fig6WorkloadSurvivesFaultSweepWithBaselineResults) {
  // Sweep an aggressive multi-point schedule over Fig. 6 workloads in
  // async mode: overflows skip compilations, stale installs are
  // rejected, workers stall — none of which may change any computed
  // result, because every degradation path falls back to a
  // semantics-preserving configuration.
  std::vector<WorkloadSpec> Suite = specJvm98Suite();
  ASSERT_FALSE(Suite.empty());
  Suite.resize(std::min<size_t>(Suite.size(), 3)); // keep the test quick

  std::vector<int64_t> Baseline;
  for (const WorkloadSpec &Spec : Suite) {
    Program P = buildWorkload(Spec);
    VirtualMachine::Config Cfg;
    Cfg.EnableJit = false;
    VirtualMachine VM(P, Cfg);
    ExecResult R = VM.run({Value::ofI(0)});
    ASSERT_FALSE(R.Exceptional) << Spec.Code;
    Baseline.push_back(R.Ret.I);
  }

  FaultGuard G("queue.enqueue.overflow=p0.2;pipeline.worker.stall=p0.3:1;"
               "cache.install.stale=n5;pool.task.delay=p0.2:1",
               /*Seed=*/2026);
  for (size_t I = 0; I < Suite.size(); ++I) {
    Program P = buildWorkload(Suite[I]);
    VirtualMachine::Config Cfg;
    Cfg.Async.Enabled = true;
    Cfg.Async.Workers = 2;
    Cfg.Async.QueueCapacity = 16;
    uint64_t FiresBefore = fires("queue.enqueue.overflow");
    VirtualMachine VM(P, Cfg);
    ExecResult R = VM.run({Value::ofI(0)});
    ASSERT_FALSE(R.Exceptional) << Suite[I].Code;
    EXPECT_EQ(R.Ret.I, Baseline[I]) << Suite[I].Code;
    VM.drainCompilations();
    // Real capacity overflows can add to the stat, so the injected fires
    // are a lower bound here; exact equality is pinned by
    // ForcedOverflowKeepsVmCorrectAndCounted on an uncontended queue.
    EXPECT_GE(VM.stats().AsyncQueueOverflows,
              fires("queue.enqueue.overflow") - FiresBefore);
  }
}

TEST(Chaos, SubsystemScheduleReplaysBitIdentically) {
  // System-level replay: the same seed + spec drives an identical
  // EnqueueResult sequence through a real CompilationQueue.
  auto Collect = [](uint64_t Seed) {
    FaultGuard G("queue.enqueue.overflow=p0.4", Seed);
    CompilationQueue Q(128);
    std::vector<int> Results;
    for (uint32_t I = 0; I < 100; ++I)
      Results.push_back((int)Q.enqueue(I, OptLevel::Cold, false, 1));
    Q.close(false);
    return Results;
  };
  std::vector<int> A = Collect(1234);
  std::vector<int> B = Collect(1234);
  std::vector<int> C = Collect(1235);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

//===----------------------------------------------------------------------===//
// Chaos: the serving daemon (src/serve)
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

namespace {

/// Minimal real ModelSet for the daemon: identity scaling, 2-class linear
/// model over Cold/Warm/Hot, label bits keyed off \p BitsBase.
ModelSet serveChaosModelSet(uint64_t BitsBase) {
  std::string ScalingText;
  for (unsigned I = 0; I < NumFeatures; ++I)
    ScalingText += std::to_string(I) + " 0 1\n";
  ModelSet Set;
  for (unsigned L = 0; L < 3; ++L) {
    LevelModel &LM = Set.Levels[L];
    EXPECT_TRUE(Scaling::fromText(ScalingText, LM.Scale));
    LM.Labels.labelFor(BitsBase + 10 * L + 1);
    LM.Labels.labelFor(BitsBase + 10 * L + 2);
    LM.Model = LinearModel(2, NumFeatures);
    LM.Model.weight(0, 0) = 1.0;
    LM.Model.weight(1, 1) = 1.0;
    LM.Valid = true;
  }
  return Set;
}

std::string serveChaosSocket(const char *Tag) {
  return "/tmp/jitml-chaos-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

FeatureVector serveChaosFeatures(unsigned I) {
  FeatureVector F;
  F.set(0, I % 2 ? 5 : 1);
  F.set(1, I % 2 ? 1 : 5);
  F.set(3, I);
  return F;
}

std::unique_ptr<ResilientModelClient>
serveChaosClient(const std::string &Path) {
  ResilientModelClient::Config C = fastConfig();
  C.RequestTimeoutMs = 10000; // the daemon answers; only EOFs degrade
  C.CacheCapacity = 0;
  C.CacheErrorReplies = false;
  return std::make_unique<ResilientModelClient>(
      [Path]() -> std::unique_ptr<Transport> {
        return SocketTransport::connect(Path);
      },
      C);
}

} // namespace

TEST(Chaos, ServeForcedShedIsCountedExactlyAndFallsBack) {
  // Every 3rd admission decision sheds. The shed requests must surface as
  // client-side fallbacks — never wrong bits — and the daemon's shed
  // counter must equal the fault point's fire count exactly.
  ModelRegistry Registry;
  Registry.install(serveChaosModelSet(100));
  ServeConfig Cfg;
  Cfg.SocketPath = serveChaosSocket("shed");
  Cfg.CacheCapacity = 0; // admission control sees every request
  ModelServer Server(Registry, Cfg);
  ASSERT_TRUE(Server.start());
  std::shared_ptr<const ServeModel> M = Registry.snapshot();

  FaultGuard G("serve.shed=n3");
  auto Client = serveChaosClient(Cfg.SocketPath);
  constexpr unsigned N = 30;
  unsigned Fallbacks = 0, Wrong = 0;
  for (unsigned I = 0; I < N; ++I) {
    FeatureVector F = serveChaosFeatures(I);
    std::optional<uint64_t> Got =
        Client->requestModifier(OptLevel::Warm, F);
    if (!Got)
      ++Fallbacks;
    else if (*Got != *M->predict(OptLevel::Warm, F))
      ++Wrong;
  }
  Client.reset();
  Server.stop();

  EXPECT_EQ(Wrong, 0u);
  EXPECT_EQ(hits("serve.shed"), (uint64_t)N);
  EXPECT_EQ(fires("serve.shed"), (uint64_t)(N / 3));
  ModelServer::Stats S = Server.stats();
  EXPECT_EQ(S.Shed, fires("serve.shed"));
  EXPECT_EQ((uint64_t)Fallbacks, S.Shed);
  EXPECT_EQ(S.Served, (uint64_t)(N - N / 3));
}

TEST(Chaos, ServeReloadFailureKeepsPriorModelServing) {
  // A reload that tears mid-read must leave the prior version serving:
  // reloadFromFile reports failure, the version stays, clients keep
  // getting the old bits.
  ModelRegistry Registry;
  uint64_t V1 = Registry.install(serveChaosModelSet(100));
  ServeConfig Cfg;
  Cfg.SocketPath = serveChaosSocket("reload");
  ModelServer Server(Registry, Cfg);
  ASSERT_TRUE(Server.start());

  std::string Path = serveChaosSocket("reload-bundle") + ".txt";
  std::string Bundle = ModelRegistry::bundleText(serveChaosModelSet(500));
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fwrite(Bundle.data(), 1, Bundle.size(), F);
  std::fclose(F);

  {
    FaultGuard G("serve.reload.torn=always");
    EXPECT_FALSE(Registry.reloadFromFile(Path)); // valid file, torn read
    EXPECT_GE(fires("serve.reload.torn"), 1u);
    EXPECT_EQ(Registry.version(), V1);
    EXPECT_EQ(Registry.reloadFailures(), 1u);

    auto Client = serveChaosClient(Cfg.SocketPath);
    std::optional<uint64_t> Got =
        Client->requestModifier(OptLevel::Cold, serveChaosFeatures(1));
    ASSERT_TRUE(Got.has_value());
    EXPECT_TRUE(*Got >= 100 && *Got < 130) << *Got; // version A bits
  }

  // Fault cleared: the same file now installs, and new answers use it.
  EXPECT_TRUE(Registry.reloadFromFile(Path));
  EXPECT_GT(Registry.version(), V1);
  auto Client = serveChaosClient(Cfg.SocketPath);
  std::optional<uint64_t> Got =
      Client->requestModifier(OptLevel::Cold, serveChaosFeatures(2));
  ASSERT_TRUE(Got.has_value());
  EXPECT_TRUE(*Got >= 500 && *Got < 530) << *Got; // version B bits
  Server.stop();
  std::remove(Path.c_str());
}

TEST(Chaos, ServeAcceptFailStormLeavesExistingSessionsIntact) {
  // An accept-failure storm must only affect NEW connections: the victims
  // see a clean EOF and degrade to fallback, established sessions keep
  // answering correctly, and the daemon recovers the moment the storm
  // passes.
  ModelRegistry Registry;
  Registry.install(serveChaosModelSet(100));
  ServeConfig Cfg;
  Cfg.SocketPath = serveChaosSocket("acceptfail");
  ModelServer Server(Registry, Cfg);
  ASSERT_TRUE(Server.start());
  std::shared_ptr<const ServeModel> M = Registry.snapshot();

  auto Established = serveChaosClient(Cfg.SocketPath);
  FeatureVector F0 = serveChaosFeatures(0);
  ASSERT_EQ(Established->requestModifier(OptLevel::Hot, F0),
            M->predict(OptLevel::Hot, F0));

  {
    FaultGuard G("serve.accept.fail=always");
    // New connections die at accept: clean fallback, no wrong bits.
    ResilientModelClient::Config C = fastConfig();
    C.CacheCapacity = 0;
    ResilientModelClient Victim(
        [&]() -> std::unique_ptr<Transport> {
          return SocketTransport::connect(Cfg.SocketPath);
        },
        C);
    EXPECT_FALSE(Victim.requestModifier(OptLevel::Warm,
                                        serveChaosFeatures(1))
                     .has_value());
    EXPECT_GE(fires("serve.accept.fail"), 1u);

    // The established session rides out the storm untouched.
    for (unsigned I = 2; I < 12; ++I) {
      FeatureVector F = serveChaosFeatures(I);
      EXPECT_EQ(Established->requestModifier(OptLevel::Hot, F),
                M->predict(OptLevel::Hot, F))
          << "request " << I;
    }
  }

  // Storm over: fresh connections serve again.
  auto Fresh = serveChaosClient(Cfg.SocketPath);
  FeatureVector F9 = serveChaosFeatures(99);
  EXPECT_EQ(Fresh->requestModifier(OptLevel::Cold, F9),
            M->predict(OptLevel::Cold, F9));
  ModelServer::Stats S = Server.stats();
  EXPECT_GE(S.AcceptFails, 1u);
  EXPECT_GE(S.Accepts, 2u);
  Server.stop();
}
