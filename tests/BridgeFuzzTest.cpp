//===- tests/BridgeFuzzTest.cpp - bridge/Message framing properties -------===//
//
// Property/fuzz coverage for the wire protocol: random messages round-trip
// encode->decode unchanged, and every truncation or 1-byte corruption of a
// valid frame yields a clean error status — no crash, no partial accept.
// All randomness comes from one seeded Rng; the seed is printed so any
// failure replays with JITML_FUZZ_SEED=<n>.
//
//===----------------------------------------------------------------------===//

#include "bridge/Message.h"
#include "bridge/Transports.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

using namespace jitml;

namespace {

uint64_t fuzzSeed() {
  static uint64_t Seed = [] {
    uint64_t S = 0x5eedf00dULL;
    if (const char *Env = std::getenv("JITML_FUZZ_SEED"))
      if (*Env)
        S = std::strtoull(Env, nullptr, 10);
    std::fprintf(stderr, "[BridgeFuzz] replay with JITML_FUZZ_SEED=%llu\n",
                 (unsigned long long)S);
    return S;
  }();
  return Seed;
}

/// In-memory transport: writes append to a buffer, reads consume it. A
/// short buffer behaves like a peer that closed mid-frame.
class MemTransport : public Transport {
public:
  MemTransport() = default;
  explicit MemTransport(std::vector<uint8_t> Bytes) : Buf(std::move(Bytes)) {}

  bool writeBytes(const uint8_t *Data, size_t Size) override {
    Buf.insert(Buf.end(), Data, Data + Size);
    return true;
  }
  bool readBytes(uint8_t *Data, size_t Size) override {
    if (Buf.size() - Pos < Size)
      return false; // truncated input == EOF
    std::memcpy(Data, Buf.data() + Pos, Size);
    Pos += Size;
    return true;
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
};

/// Finite random feature value; f64le coding is exact, so EXPECT_EQ works.
double randomFeature(Rng &R) {
  return (double)R.nextInRange(-1000000, 1000000) / 16.0;
}

/// A structurally valid message of the given type with random contents.
Message randomMessage(Rng &R, MsgType Type) {
  Message M;
  M.Type = Type;
  switch (Type) {
  case MsgType::Hello:
    M.Version = (uint8_t)R.nextBelow(256);
    break;
  case MsgType::Features: {
    M.Level = (OptLevel)R.nextBelow(NumOptLevels);
    size_t Count = R.nextBelow(80);
    for (size_t I = 0; I < Count; ++I)
      M.FeatureValues.push_back(randomFeature(R));
    break;
  }
  case MsgType::Modifier:
    M.ModifierBits = R.next();
    break;
  case MsgType::Error: {
    size_t Len = R.nextBelow(64);
    for (size_t I = 0; I < Len; ++I)
      M.Text.push_back((char)('a' + R.nextBelow(26)));
    break;
  }
  case MsgType::Bye:
    break;
  case MsgType::FeatureBatch: {
    size_t N = R.nextBelow(8);
    M.BatchFeatures.resize(N);
    for (BatchFeatureEntry &E : M.BatchFeatures) {
      E.Level = (OptLevel)R.nextBelow(NumOptLevels);
      size_t Count = R.nextBelow(16);
      for (size_t I = 0; I < Count; ++I)
        E.FeatureValues.push_back(randomFeature(R));
    }
    break;
  }
  case MsgType::ModifierBatch: {
    size_t N = R.nextBelow(8);
    M.BatchModifiers.resize(N);
    for (BatchModifierEntry &E : M.BatchModifiers) {
      E.HasModifier = R.nextBool(0.5);
      E.Bits = R.next();
    }
    break;
  }
  }
  return M;
}

void expectMessagesEqual(const Message &A, const Message &B) {
  ASSERT_EQ(A.Type, B.Type);
  switch (A.Type) {
  case MsgType::Hello:
    EXPECT_EQ(A.Version, B.Version);
    break;
  case MsgType::Features:
    EXPECT_EQ(A.Level, B.Level);
    ASSERT_EQ(A.FeatureValues.size(), B.FeatureValues.size());
    for (size_t I = 0; I < A.FeatureValues.size(); ++I)
      EXPECT_EQ(A.FeatureValues[I], B.FeatureValues[I]);
    break;
  case MsgType::Modifier:
    EXPECT_EQ(A.ModifierBits, B.ModifierBits);
    break;
  case MsgType::Error:
    EXPECT_EQ(A.Text, B.Text);
    break;
  case MsgType::Bye:
    break;
  case MsgType::FeatureBatch:
    ASSERT_EQ(A.BatchFeatures.size(), B.BatchFeatures.size());
    for (size_t I = 0; I < A.BatchFeatures.size(); ++I) {
      EXPECT_EQ(A.BatchFeatures[I].Level, B.BatchFeatures[I].Level);
      ASSERT_EQ(A.BatchFeatures[I].FeatureValues.size(),
                B.BatchFeatures[I].FeatureValues.size());
      for (size_t J = 0; J < A.BatchFeatures[I].FeatureValues.size(); ++J)
        EXPECT_EQ(A.BatchFeatures[I].FeatureValues[J],
                  B.BatchFeatures[I].FeatureValues[J]);
    }
    break;
  case MsgType::ModifierBatch:
    ASSERT_EQ(A.BatchModifiers.size(), B.BatchModifiers.size());
    for (size_t I = 0; I < A.BatchModifiers.size(); ++I) {
      EXPECT_EQ(A.BatchModifiers[I].HasModifier,
                B.BatchModifiers[I].HasModifier);
      EXPECT_EQ(A.BatchModifiers[I].Bits, B.BatchModifiers[I].Bits);
    }
    break;
  }
}

constexpr MsgType AllTypes[] = {
    MsgType::Hello,   MsgType::Features,     MsgType::Modifier,
    MsgType::Error,   MsgType::Bye,          MsgType::FeatureBatch,
    MsgType::ModifierBatch,
};

} // namespace

TEST(BridgeFuzz, RandomMessagesRoundTrip) {
  Rng R(fuzzSeed());
  for (int Iter = 0; Iter < 300; ++Iter) {
    SCOPED_TRACE(testing::Message() << "iteration " << Iter);
    MsgType Type = AllTypes[R.nextBelow(std::size(AllTypes))];
    Message M = randomMessage(R, Type);
    MemTransport T;
    ASSERT_TRUE(sendMessage(T, M));
    Message Out;
    ASSERT_EQ(recvMessageFor(T, Out, /*TimeoutMs=*/-1), RecvStatus::Ok);
    expectMessagesEqual(M, Out);
  }
}

TEST(BridgeFuzz, EveryTruncationYieldsCleanError) {
  // Exhaustive, not sampled: every proper prefix of a valid frame must
  // decode to a clean non-Ok status (truncation == the peer died
  // mid-frame), never a crash, hang, or accepted message.
  Rng R(fuzzSeed() ^ 0x7247);
  for (MsgType Type : AllTypes) {
    Message M = randomMessage(R, Type);
    MemTransport Whole;
    ASSERT_TRUE(sendMessage(Whole, M));
    const std::vector<uint8_t> &Frame = Whole.bytes();
    for (size_t Len = 0; Len < Frame.size(); ++Len) {
      SCOPED_TRACE(testing::Message()
                   << "type " << (int)Type << " prefix " << Len << "/"
                   << Frame.size());
      MemTransport Cut(
          std::vector<uint8_t>(Frame.begin(), Frame.begin() + (long)Len));
      Message Out;
      RecvStatus S = recvMessageFor(Cut, Out, /*TimeoutMs=*/-1);
      EXPECT_NE(S, RecvStatus::Ok);
    }
  }
}

TEST(BridgeFuzz, SingleByteCorruptionNeverCrashesOrPartiallyAccepts) {
  // Flip one random bit-pattern into every byte position of a valid
  // frame. Decoding may legitimately still succeed (e.g. a flipped bit
  // inside a feature value), but then the result must be a self-consistent
  // message that re-encodes and decodes to itself — never a torn state.
  Rng R(fuzzSeed() ^ 0xC0);
  for (MsgType Type : AllTypes) {
    Message M = randomMessage(R, Type);
    MemTransport Whole;
    ASSERT_TRUE(sendMessage(Whole, M));
    const std::vector<uint8_t> &Frame = Whole.bytes();
    for (size_t Pos = 0; Pos < Frame.size(); ++Pos) {
      SCOPED_TRACE(testing::Message() << "type " << (int)Type << " byte "
                                      << Pos << "/" << Frame.size());
      std::vector<uint8_t> Bytes = Frame;
      uint8_t Mask = (uint8_t)(1u << R.nextBelow(8));
      Bytes[Pos] ^= Mask;
      MemTransport Cut(std::move(Bytes));
      Message Out;
      RecvStatus S = recvMessageFor(Cut, Out, /*TimeoutMs=*/-1);
      if (S != RecvStatus::Ok)
        continue; // clean rejection: Closed or Malformed
      MemTransport Re;
      ASSERT_TRUE(sendMessage(Re, Out));
      Message Again;
      ASSERT_EQ(recvMessageFor(Re, Again, /*TimeoutMs=*/-1), RecvStatus::Ok);
      expectMessagesEqual(Out, Again);
    }
  }
}
