//===- tests/ILGenTest.cpp - IL generation and analysis tests -------------===//

#include "TestPrograms.h"

#include "il/Dominators.h"
#include "il/ILGenerator.h"
#include "il/ILPrinter.h"
#include "il/ILVerifier.h"
#include "il/LoopInfo.h"

#include <gtest/gtest.h>

using namespace jitml;
using namespace jitml::testing;

namespace {

/// Counts nodes with opcode \p Op across reachable trees.
unsigned countOps(const MethodIL &IL, ILOp Op) {
  unsigned Count = 0;
  std::vector<bool> Seen(IL.numNodes(), false);
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    for (NodeId Root : IL.block(B).Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        if (Seen[Id])
          continue;
        Seen[Id] = true;
        if (IL.node(Id).Op == Op)
          ++Count;
        for (NodeId Kid : IL.node(Id).Kids)
          Stack.push_back(Kid);
      }
    }
  }
  return Count;
}

} // namespace

TEST(ILGen, StraightLineSingleBlock) {
  Program P;
  MethodBuilder MB(P, "f", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).constI(DataType::Int32, 2).binop(BcOp::Mul, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  auto IL = generateIL(P, M);
  EXPECT_TRUE(verifyIL(*IL).empty());
  unsigned Reachable = 0;
  for (BlockId B = 0; B < IL->numBlocks(); ++B)
    if (IL->block(B).Reachable)
      ++Reachable;
  EXPECT_EQ(Reachable, 1u);
  const Block &Entry = IL->block(IL->entryBlock());
  EXPECT_EQ(IL->node(Entry.Trees.back()).Op, ILOp::Return);
}

TEST(ILGen, BranchProducesDiamond) {
  Program P;
  MethodBuilder MB(P, "pick", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t Out = MB.addLocal(DataType::Int32);
  auto Else = MB.newLabel();
  auto Join = MB.newLabel();
  MB.load(0).ifZero(BcCond::Lt, Else);
  MB.constI(DataType::Int32, 1).store(Out).gotoLabel(Join);
  MB.place(Else);
  MB.constI(DataType::Int32, 2).store(Out);
  MB.place(Join);
  MB.load(Out).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  auto IL = generateIL(P, M);
  EXPECT_TRUE(verifyIL(*IL).empty());
  // Entry branches two ways.
  EXPECT_EQ(IL->block(IL->entryBlock()).Succs.size(), 2u);
  EXPECT_EQ(countOps(*IL, ILOp::Branch), 1u);
}

TEST(ILGen, ChecksInsertedForMemoryOps) {
  Program P;
  uint32_t Cls = ClassBuilder(P, "C").finish();
  {
    ClassBuilder CB(P, "WithField");
    CB.addField(DataType::Int32);
    (void)CB.finish();
  }
  (void)Cls;
  MethodBuilder MB(P, "mem", -1, MF_Static,
                   {DataType::Address, DataType::Int32}, DataType::Int32);
  MB.load(0).load(1).aload(DataType::Int32);
  MB.load(0).arrayLen();
  MB.binop(BcOp::Add, DataType::Int32);
  MB.load(1).load(1).binop(BcOp::Div, DataType::Int32);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  auto IL = generateIL(P, M);
  EXPECT_TRUE(verifyIL(*IL).empty());
  EXPECT_EQ(countOps(*IL, ILOp::NullCheck), 2u);  // aload + arraylen
  EXPECT_EQ(countOps(*IL, ILOp::BoundsCheck), 1u);
  EXPECT_EQ(countOps(*IL, ILOp::DivCheck), 1u);
}

TEST(ILGen, CallsAreAnchored) {
  Program P = makeSumProgram();
  auto IL = generateIL(P, (uint32_t)P.entryMethod());
  // The call's first reference is an ExprStmt anchor.
  bool FoundAnchor = false;
  for (BlockId B = 0; B < IL->numBlocks(); ++B) {
    if (!IL->block(B).Reachable)
      continue;
    for (NodeId Root : IL->block(B).Trees) {
      const Node &N = IL->node(Root);
      if (N.Op == ILOp::ExprStmt &&
          IL->node(N.Kids[0]).Op == ILOp::Call)
        FoundAnchor = true;
    }
  }
  EXPECT_TRUE(FoundAnchor);
}

TEST(ILGen, HandlerBlockLoadsException) {
  Program P;
  uint32_t Exc = ClassBuilder(P, "E").finish();
  MethodBuilder MB(P, "t", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  auto Handler = MB.newLabel();
  auto Done = MB.newLabel();
  uint32_t Start = MB.beginTry();
  auto NoThrow = MB.newLabel();
  MB.load(0).ifZero(BcCond::Ne, NoThrow);
  MB.newObject(Exc).throwRef();
  MB.place(NoThrow);
  MB.endTry(Start, Handler, (int32_t)Exc);
  MB.load(0).gotoLabel(Done);
  MB.place(Handler);
  // Store (rather than pop) the exception so its LoadException node is
  // actually referenced by a tree.
  uint32_t Caught = MB.addLocal(DataType::Object);
  MB.store(Caught);
  MB.constI(DataType::Int32, -1).gotoLabel(Done);
  MB.place(Done);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  auto IL = generateIL(P, M);
  ASSERT_TRUE(verifyIL(*IL).empty()) << verifyIL(*IL).front();
  // Some block is a handler and references LoadException.
  bool FoundHandler = false;
  for (BlockId B = 0; B < IL->numBlocks(); ++B)
    if (IL->block(B).Reachable && IL->block(B).IsHandler)
      FoundHandler = true;
  EXPECT_TRUE(FoundHandler);
  EXPECT_GE(countOps(*IL, ILOp::LoadException), 1u);
  // And some covered block lists the handler.
  bool Covered = false;
  for (BlockId B = 0; B < IL->numBlocks(); ++B)
    if (!IL->block(B).Handlers.empty())
      Covered = true;
  EXPECT_TRUE(Covered);
}

TEST(ILGen, DupSharesNodes) {
  Program P;
  uint32_t Cls = ClassBuilder(P, "Pair").finish();
  {
    // Re-open a class with two fields via ClassBuilder is not possible;
    // build a fresh one with fields instead.
  }
  ClassBuilder CB(P, "Obj");
  uint32_t F0 = CB.addField(DataType::Int32);
  uint32_t F1 = CB.addField(DataType::Int32);
  uint32_t ObjCls = CB.finish();
  (void)Cls;
  MethodBuilder MB(P, "mk", -1, MF_Static, {}, DataType::Int32);
  MB.newObject(ObjCls);
  MB.dup(DataType::Object);
  MB.constI(DataType::Int32, 5).putField(F0, DataType::Int32);
  MB.dup(DataType::Object);
  MB.constI(DataType::Int32, 6).putField(F1, DataType::Int32);
  MB.getField(F0, DataType::Int32);
  MB.retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok()) << verifyMethod(P, M).message();
  auto IL = generateIL(P, M);
  ASSERT_TRUE(verifyIL(*IL).empty());
  // Exactly one allocation node despite three uses.
  EXPECT_EQ(countOps(*IL, ILOp::New), 1u);
}

TEST(ILVerifier, CatchesMissingTerminator) {
  Program P = makeSumProgram();
  auto IL = generateIL(P, 0);
  // Break the IL: drop the entry block's terminator.
  IL->block(IL->entryBlock()).Trees.pop_back();
  EXPECT_FALSE(verifyIL(*IL).empty());
}

TEST(ILVerifier, CatchesWrongSuccessorCount) {
  Program P = makeSumProgram();
  auto IL = generateIL(P, 0);
  Block &Entry = IL->block(IL->entryBlock());
  Entry.Succs.push_back(Entry.Succs.back()); // duplicate successor
  EXPECT_FALSE(verifyIL(*IL).empty());
}

TEST(Dominators, LinearChain) {
  Program P = makeSumProgram();
  auto IL = generateIL(P, 0); // sumToN: entry -> header -> {body, exit}
  DominatorTree DT(*IL);
  BlockId Entry = IL->entryBlock();
  for (BlockId B : DT.rpo())
    EXPECT_TRUE(DT.dominates(Entry, B));
}

TEST(Dominators, BranchSidesDontDominateEachOther) {
  Program P;
  MethodBuilder MB(P, "d", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t Out = MB.addLocal(DataType::Int32);
  auto Else = MB.newLabel();
  auto Join = MB.newLabel();
  MB.load(0).ifZero(BcCond::Lt, Else);
  MB.constI(DataType::Int32, 1).store(Out).gotoLabel(Join);
  MB.place(Else);
  MB.constI(DataType::Int32, 2).store(Out);
  MB.place(Join);
  MB.load(Out).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  DominatorTree DT(*IL);
  BlockId Entry = IL->entryBlock();
  const Block &E = IL->block(Entry);
  ASSERT_EQ(E.Succs.size(), 2u);
  EXPECT_FALSE(DT.dominates(E.Succs[0], E.Succs[1]));
  EXPECT_FALSE(DT.dominates(E.Succs[1], E.Succs[0]));
  EXPECT_TRUE(DT.dominates(Entry, E.Succs[0]));
}

TEST(LoopInfo, DetectsCountedLoop) {
  Program P = makeSumProgram();
  auto IL = generateIL(P, 0);
  LoopInfo LI(*IL);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_TRUE(LI.hasLoops());
  EXPECT_EQ(LI.loops()[0].Depth, 1u);
  // Bound is the parameter: trip count unknown.
  EXPECT_EQ(LI.loops()[0].TripCount, -1);
  EXPECT_EQ(LI.classify(), LoopClass::ManyIterationLoops);
}

TEST(LoopInfo, ConstBoundTripCount) {
  Program P;
  jitml::testing::addConstKernel(P);
  auto IL = generateIL(P, 0);
  LoopInfo LI(*IL);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].TripCount, 256);
  EXPECT_TRUE(LI.hasKnownManyIterationLoop());
}

TEST(LoopInfo, NoLoopsClassification) {
  Program P;
  MethodBuilder MB(P, "flat", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  MB.load(0).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  auto IL = generateIL(P, M);
  LoopInfo LI(*IL);
  EXPECT_FALSE(LI.hasLoops());
  EXPECT_EQ(LI.classify(), LoopClass::NoLoops);
}

TEST(LoopInfo, NestedLoopsDepth) {
  Program P;
  MethodBuilder MB(P, "nest", -1, MF_Static, {DataType::Int32},
                   DataType::Int32);
  uint32_t Acc = MB.addLocal(DataType::Int32);
  uint32_t I = MB.addLocal(DataType::Int32);
  uint32_t J = MB.addLocal(DataType::Int32);
  auto OuterHead = MB.newLabel();
  auto OuterExit = MB.newLabel();
  auto InnerHead = MB.newLabel();
  auto InnerExit = MB.newLabel();
  MB.constI(DataType::Int32, 0).store(Acc);
  MB.constI(DataType::Int32, 0).store(I);
  MB.place(OuterHead);
  MB.load(I).constI(DataType::Int32, 4).ifCmp(BcCond::Ge, OuterExit);
  MB.constI(DataType::Int32, 0).store(J);
  MB.place(InnerHead);
  MB.load(J).constI(DataType::Int32, 5).ifCmp(BcCond::Ge, InnerExit);
  MB.load(Acc).constI(DataType::Int32, 1).binop(BcOp::Add, DataType::Int32);
  MB.store(Acc);
  MB.inc(J, 1);
  MB.gotoLabel(InnerHead);
  MB.place(InnerExit);
  MB.inc(I, 1);
  MB.gotoLabel(OuterHead);
  MB.place(OuterExit);
  MB.load(Acc).retValue(DataType::Int32);
  uint32_t M = MB.finish();
  ASSERT_TRUE(verifyMethod(P, M).ok());
  auto IL = generateIL(P, M);
  LoopInfo LI(*IL);
  ASSERT_EQ(LI.loops().size(), 2u);
  unsigned MaxDepth = 0;
  for (const Loop &L : LI.loops())
    MaxDepth = std::max(MaxDepth, L.Depth);
  EXPECT_EQ(MaxDepth, 2u);
  // Nesting implies the may-have-many-iterations attribute.
  EXPECT_TRUE(LI.mayHaveManyIterationLoop());
}

TEST(LoopInfo, FrequenciesGrowWithDepth) {
  Program P;
  jitml::testing::addConstKernel(P);
  auto IL = generateIL(P, 0);
  LoopInfo::annotateFrequencies(*IL);
  double MaxFreq = 0;
  for (BlockId B = 0; B < IL->numBlocks(); ++B)
    MaxFreq = std::max(MaxFreq, IL->block(B).Frequency);
  EXPECT_GT(MaxFreq, 1.0);
}

TEST(ILPrinter, RendersCommonedNodes) {
  Program P = makeSumProgram();
  auto IL = generateIL(P, (uint32_t)P.entryMethod());
  std::string Text = printMethodIL(*IL);
  EXPECT_NE(Text.find("call.int"), std::string::npos);
  EXPECT_NE(Text.find("(commoned)"), std::string::npos); // anchored call
}
