//===- bytecode/Disasm.cpp ------------------------------------------------===//

#include "bytecode/Disasm.h"

#include <cstdio>

using namespace jitml;

std::string jitml::disassemble(const Program &P, const BcInst &I) {
  char Buf[256];
  switch (I.Op) {
  case BcOp::Const:
    if (isFloatType(I.Type))
      std::snprintf(Buf, sizeof(Buf), "const.%s %g", dataTypeName(I.Type),
                    I.ImmF);
    else
      std::snprintf(Buf, sizeof(Buf), "const.%s %lld", dataTypeName(I.Type),
                    (long long)I.ImmI);
    return Buf;
  case BcOp::Load:
  case BcOp::Store:
    std::snprintf(Buf, sizeof(Buf), "%s.%s #%d", bcOpName(I.Op),
                  dataTypeName(I.Type), I.A);
    return Buf;
  case BcOp::Inc:
    std::snprintf(Buf, sizeof(Buf), "inc #%d %+d", I.A, I.B);
    return Buf;
  case BcOp::GetField:
  case BcOp::PutField:
  case BcOp::GetGlobal:
  case BcOp::PutGlobal:
    std::snprintf(Buf, sizeof(Buf), "%s.%s @%d", bcOpName(I.Op),
                  dataTypeName(I.Type), I.A);
    return Buf;
  case BcOp::Conv:
    std::snprintf(Buf, sizeof(Buf), "conv %s->%s",
                  dataTypeName((DataType)I.A), dataTypeName(I.Type));
    return Buf;
  case BcOp::IfCmp:
  case BcOp::If:
    std::snprintf(Buf, sizeof(Buf), "%s.%s ->%d", bcOpName(I.Op),
                  bcCondName((BcCond)I.A), I.B);
    return Buf;
  case BcOp::IfRef:
    std::snprintf(Buf, sizeof(Buf), "ifref.%s ->%d",
                  I.A ? "nonnull" : "null", I.B);
    return Buf;
  case BcOp::Goto:
    std::snprintf(Buf, sizeof(Buf), "goto ->%d", I.A);
    return Buf;
  case BcOp::Call:
  case BcOp::CallVirtual:
    std::snprintf(Buf, sizeof(Buf), "%s %s", bcOpName(I.Op),
                  P.signatureOf((uint32_t)I.A).c_str());
    return Buf;
  case BcOp::New:
  case BcOp::InstanceOf:
  case BcOp::CheckCast:
    std::snprintf(Buf, sizeof(Buf), "%s %s", bcOpName(I.Op),
                  P.classAt((uint32_t)I.A).Name.c_str());
    return Buf;
  case BcOp::NewMultiArray:
    std::snprintf(Buf, sizeof(Buf), "newmultiarray.%s dims=%d",
                  dataTypeName(I.Type), I.A);
    return Buf;
  default:
    if (I.Type != DataType::Void) {
      std::snprintf(Buf, sizeof(Buf), "%s.%s", bcOpName(I.Op),
                    dataTypeName(I.Type));
      return Buf;
    }
    return bcOpName(I.Op);
  }
}

std::string jitml::disassembleMethod(const Program &P, uint32_t MethodIndex) {
  const MethodInfo &M = P.methodAt(MethodIndex);
  std::string Out = P.signatureOf(MethodIndex);
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "  [locals=%u maxstack=%u]\n", M.NumLocals,
                M.MaxStack);
  Out += Buf;
  for (uint32_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    std::snprintf(Buf, sizeof(Buf), "  %4u: ", Pc);
    Out += Buf;
    Out += disassemble(P, M.Code[Pc]);
    Out += '\n';
  }
  for (const ExceptionEntry &E : M.ExceptionTable) {
    std::snprintf(Buf, sizeof(Buf), "  try [%u,%u) -> %u catch %s\n",
                  E.StartPc, E.EndPc, E.HandlerPc,
                  E.ClassIndex < 0
                      ? "any"
                      : P.classAt((uint32_t)E.ClassIndex).Name.c_str());
    Out += Buf;
  }
  return Out;
}
