//===- bytecode/Type.h - The 14-type system (Table 2) ----------*- C++ -*-===//
///
/// \file
/// The data types tracked by the simulated VM and its JIT. These are exactly
/// the 14 types of Table 2 in the paper: the eight Java native types, the
/// two non-scalar Java types (Address = arrays, Object = user objects), the
/// three Testarossa extension types (long double, packed decimal, zoned
/// decimal used for BCD arithmetic in financial code), plus the
/// learning-only "Mixed" bucket for trees that combine several types.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BYTECODE_TYPE_H
#define JITML_BYTECODE_TYPE_H

#include <cassert>
#include <cstdint>

namespace jitml {

/// Order matters: the feature extractor indexes the type-distribution slice
/// of the feature vector by this enum's value (see features/FeatureVector.h).
enum class DataType : uint8_t {
  Int8 = 0,      ///< Java byte
  Char,          ///< Java char (unsigned 16-bit)
  Int16,         ///< Java short
  Int32,         ///< Java int
  Int64,         ///< Java long
  Float,         ///< Java float
  Double,        ///< Java double
  Void,          ///< Java void
  Address,       ///< array reference (one or more dimensions)
  Object,        ///< user-defined object reference
  LongDouble,    ///< Testarossa 128-bit IEEE-754 extension
  PackedDecimal, ///< Testarossa BCD extension
  ZonedDecimal,  ///< Testarossa BCD extension
  Mixed,         ///< learning-only: tree mixing several types
};

constexpr unsigned NumDataTypes = 14;

/// Integer-like types are carried in a 64-bit lane at run time.
inline bool isIntegerType(DataType T) {
  switch (T) {
  case DataType::Int8:
  case DataType::Char:
  case DataType::Int16:
  case DataType::Int32:
  case DataType::Int64:
    return true;
  default:
    return false;
  }
}

/// Floating-point-like types (including the long double extension).
inline bool isFloatType(DataType T) {
  return T == DataType::Float || T == DataType::Double ||
         T == DataType::LongDouble;
}

/// Binary-coded-decimal extension types.
inline bool isDecimalType(DataType T) {
  return T == DataType::PackedDecimal || T == DataType::ZonedDecimal;
}

/// Reference types (arrays and objects).
inline bool isReferenceType(DataType T) {
  return T == DataType::Address || T == DataType::Object;
}

/// True for types a value can actually have at run time (everything except
/// Void and the learning-only Mixed bucket).
inline bool isValueType(DataType T) {
  return T != DataType::Void && T != DataType::Mixed;
}

/// Width in bits of the narrow integer types; 64 for everything else that
/// is integral. Used by sign-extension elimination.
inline unsigned integerWidth(DataType T) {
  switch (T) {
  case DataType::Int8:
    return 8;
  case DataType::Char:
  case DataType::Int16:
    return 16;
  case DataType::Int32:
    return 32;
  case DataType::Int64:
    return 64;
  default:
    assert(false && "integerWidth on non-integer type");
    return 64;
  }
}

const char *dataTypeName(DataType T);

} // namespace jitml

#endif // JITML_BYTECODE_TYPE_H
