//===- bytecode/Opcode.h - Stack bytecode instruction set ------*- C++ -*-===//
///
/// \file
/// The instruction set of the simulated stack bytecode (a JVM-like subset
/// extended with Testarossa's decimal/long-double operations and the array
/// intrinsics the paper's feature set distinguishes). Instructions carry an
/// explicit DataType instead of having one mnemonic per typed variant; the
/// IL generator and verifier dispatch on (Op, Type).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BYTECODE_OPCODE_H
#define JITML_BYTECODE_OPCODE_H

#include "bytecode/Type.h"

#include <cstdint>

namespace jitml {

enum class BcOp : uint8_t {
  Nop = 0,
  /// Push a constant of Type (ImmI for integral/decimal, ImmF for FP).
  Const,
  /// Push local slot A (of Type).
  Load,
  /// Pop into local slot A.
  Store,
  /// Increment integer local slot A by B (JVM iinc).
  Inc,
  /// Pop object ref, push field A (of Type).
  GetField,
  /// Pop value then object ref, store into field A.
  PutField,
  /// Push program global slot A (of Type).
  GetGlobal,
  /// Pop into program global slot A.
  PutGlobal,
  /// Pop index then array ref, push element (of Type).
  ALoad,
  /// Pop value, index, array ref; store element.
  AStore,
  /// Pop array ref, push its length (Int32).
  ArrayLen,
  // Arithmetic/logic: pop operand(s) of Type, push result of Type.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Neg,
  Shl,  ///< shift left (int types)
  Shr,  ///< arithmetic shift right (int types)
  Or,
  And,
  Xor,
  /// Pop two values of Type, push three-way compare as Int32 (-1/0/1).
  Cmp,
  /// Convert top of stack from type A (as DataType) to Type.
  Conv,
  /// Pop two Int32, branch to B when condition A holds.
  IfCmp,
  /// Pop one Int32, branch to B when (value <cond A> 0).
  If,
  /// Pop one reference, branch to B when it is (A==0) null / (A==1) nonnull.
  IfRef,
  /// Unconditional branch to A.
  Goto,
  /// Call static method A. Pops args, pushes return value unless void.
  Call,
  /// Call virtual method A (resolved through the receiver's vtable).
  CallVirtual,
  /// Return (value of Type popped unless Type == Void).
  Return,
  /// Allocate instance of class A, push Object ref.
  New,
  /// Pop Int32 length, allocate array of element Type, push Address ref.
  NewArray,
  /// Pop A Int32 lengths, allocate A-dimensional array, push Address ref.
  NewMultiArray,
  /// Pop object ref, push Int32 1 if instance of class A else 0.
  InstanceOf,
  /// Pop object ref, re-push it; traps when not an instance of class A.
  CheckCast,
  /// Pop object ref, acquire its monitor.
  MonitorEnter,
  /// Pop object ref, release its monitor.
  MonitorExit,
  /// Pop object ref and raise it as an exception.
  Throw,
  /// Intrinsic System.arraycopy: pops len, dstPos, dst, srcPos, src.
  ArrayCopy,
  /// Intrinsic array comparison: pops two refs, pushes Int32.
  ArrayCmp,
  /// Pop top-of-stack value of Type (discard).
  Pop,
  /// Duplicate top-of-stack value of Type.
  Dup,
};

/// Condition codes for If / IfCmp.
enum class BcCond : uint8_t { Eq = 0, Ne, Lt, Ge, Gt, Le };

/// Flips a condition (used when normalizing branches).
inline BcCond negateCond(BcCond C) {
  switch (C) {
  case BcCond::Eq:
    return BcCond::Ne;
  case BcCond::Ne:
    return BcCond::Eq;
  case BcCond::Lt:
    return BcCond::Ge;
  case BcCond::Ge:
    return BcCond::Lt;
  case BcCond::Gt:
    return BcCond::Le;
  case BcCond::Le:
    return BcCond::Gt;
  }
  return C;
}

/// One bytecode instruction. A and B are operand fields whose meaning
/// depends on Op (local slot, field index, branch target, method index,
/// class index, condition code, dimension count).
struct BcInst {
  BcOp Op = BcOp::Nop;
  DataType Type = DataType::Void;
  int32_t A = 0;
  int32_t B = 0;
  int64_t ImmI = 0;
  double ImmF = 0.0;
};

const char *bcOpName(BcOp Op);
const char *bcCondName(BcCond C);

/// True when \p Op ends a basic block (branch, return, throw).
inline bool isTerminator(BcOp Op) {
  switch (Op) {
  case BcOp::IfCmp:
  case BcOp::If:
  case BcOp::IfRef:
  case BcOp::Goto:
  case BcOp::Return:
  case BcOp::Throw:
    return true;
  default:
    return false;
  }
}

/// True when \p Op can transfer control to an exception handler.
inline bool canThrow(BcOp Op) {
  switch (Op) {
  case BcOp::ALoad:
  case BcOp::AStore:
  case BcOp::ArrayLen:
  case BcOp::GetField:
  case BcOp::PutField:
  case BcOp::Div:
  case BcOp::Rem:
  case BcOp::Call:
  case BcOp::CallVirtual:
  case BcOp::New:
  case BcOp::NewArray:
  case BcOp::NewMultiArray:
  case BcOp::CheckCast:
  case BcOp::Throw:
  case BcOp::ArrayCopy:
  case BcOp::ArrayCmp:
  case BcOp::MonitorEnter:
  case BcOp::MonitorExit:
    return true;
  default:
    return false;
  }
}

} // namespace jitml

#endif // JITML_BYTECODE_OPCODE_H
