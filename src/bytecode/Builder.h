//===- bytecode/Builder.h - Fluent bytecode construction -------*- C++ -*-===//
///
/// \file
/// Builders for classes and method bodies. MethodBuilder provides label-based
/// branch patching so workload generators and tests never deal with raw
/// bytecode indices; finish() leaves a verifier-clean MethodInfo.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BYTECODE_BUILDER_H
#define JITML_BYTECODE_BUILDER_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace jitml {

/// Builds a class, flattening inherited fields into the field table.
class ClassBuilder {
public:
  ClassBuilder(Program &P, std::string Name, int32_t SuperIndex = -1,
               ClassKind Kind = ClassKind::Normal);

  /// Appends an instance field; returns its index (inherited fields first).
  uint32_t addField(DataType T);

  /// Registers the class with the program; returns its index. Must be
  /// called before methods are added on it.
  uint32_t finish();

private:
  Program &Prog;
  ClassInfo Info;
  bool Finished = false;
};

/// Builds one method body with label-based control flow.
class MethodBuilder {
public:
  /// Label handle; created by newLabel(), bound by place().
  struct Label {
    int32_t Id = -1;
  };

  MethodBuilder(Program &P, std::string Name, int32_t ClassIndex,
                uint32_t Flags, std::vector<DataType> ArgTypes,
                DataType ReturnType);

  /// Builds the body of a method previously registered with
  /// Program::declarePrototype (enables recursive call sites).
  MethodBuilder(Program &P, uint32_t PredeclaredIndex);

  /// Adds a temporary local slot of type \p T; returns its slot index.
  uint32_t addLocal(DataType T);

  Label newLabel();
  /// Binds \p L to the next emitted instruction.
  void place(Label L);

  // Straight-line emission helpers. Each returns *this for chaining.
  MethodBuilder &constI(DataType T, int64_t V);
  MethodBuilder &constF(DataType T, double V);
  MethodBuilder &load(uint32_t Slot);
  MethodBuilder &store(uint32_t Slot);
  MethodBuilder &inc(uint32_t Slot, int32_t By);
  MethodBuilder &getField(uint32_t Field, DataType T);
  MethodBuilder &putField(uint32_t Field, DataType T);
  MethodBuilder &getGlobal(uint32_t Slot, DataType T);
  MethodBuilder &putGlobal(uint32_t Slot, DataType T);
  MethodBuilder &aload(DataType ElemT);
  MethodBuilder &astore(DataType ElemT);
  MethodBuilder &arrayLen();
  MethodBuilder &binop(BcOp Op, DataType T);
  MethodBuilder &neg(DataType T);
  MethodBuilder &cmp(DataType T);
  MethodBuilder &conv(DataType From, DataType To);
  MethodBuilder &ifCmp(BcCond C, Label Target);
  MethodBuilder &ifZero(BcCond C, Label Target);
  MethodBuilder &ifNull(Label Target);
  MethodBuilder &ifNonNull(Label Target);
  MethodBuilder &gotoLabel(Label Target);
  MethodBuilder &call(uint32_t Method);
  MethodBuilder &callVirtual(uint32_t Method);
  MethodBuilder &ret();                 ///< return void
  MethodBuilder &retValue(DataType T);  ///< return top of stack
  MethodBuilder &newObject(uint32_t Class);
  MethodBuilder &newArray(DataType ElemT);
  MethodBuilder &newMultiArray(DataType ElemT, uint32_t Dims);
  MethodBuilder &instanceOf(uint32_t Class);
  MethodBuilder &checkCast(uint32_t Class);
  MethodBuilder &monitorEnter();
  MethodBuilder &monitorExit();
  MethodBuilder &throwRef();
  MethodBuilder &arrayCopy();
  MethodBuilder &arrayCmp();
  MethodBuilder &pop(DataType T);
  MethodBuilder &dup(DataType T);

  /// Opens a protected region at the current pc.
  uint32_t beginTry();
  /// Closes the protected region started at \p StartPc; the handler is the
  /// code at \p Handler, catching \p ClassIndex (-1 = any).
  void endTry(uint32_t StartPc, Label Handler, int32_t ClassIndex = -1);

  uint32_t currentPc() const { return (uint32_t)Code.size(); }

  /// Patches labels, fills LocalTypes and registers the method with the
  /// program. Asserts when any label is unbound. Returns the method index.
  uint32_t finish();

private:
  MethodBuilder &emit(BcInst I);

  Program &Prog;
  MethodInfo Info;
  int32_t PredeclaredIndex = -1;
  std::vector<BcInst> Code;
  std::vector<int32_t> LabelPcs;              ///< -1 while unbound
  std::vector<std::pair<uint32_t, int32_t>> Fixups; ///< (inst pc, label id)
  std::vector<std::pair<uint32_t, int32_t>> HandlerFixups; ///< (entry, label)
  std::vector<ExceptionEntry> PendingHandlers;
  bool Finished = false;
};

} // namespace jitml

#endif // JITML_BYTECODE_BUILDER_H
