//===- bytecode/Builder.cpp -----------------------------------------------===//

#include "bytecode/Builder.h"

using namespace jitml;

ClassBuilder::ClassBuilder(Program &P, std::string Name, int32_t SuperIndex,
                           ClassKind Kind)
    : Prog(P) {
  Info.Name = std::move(Name);
  Info.SuperIndex = SuperIndex;
  Info.Kind = Kind;
  if (SuperIndex >= 0)
    Info.FieldTypes = P.classAt((uint32_t)SuperIndex).FieldTypes;
}

uint32_t ClassBuilder::addField(DataType T) {
  assert(!Finished && "class already finished");
  Info.FieldTypes.push_back(T);
  return (uint32_t)Info.FieldTypes.size() - 1;
}

uint32_t ClassBuilder::finish() {
  assert(!Finished && "class already finished");
  Finished = true;
  return Prog.addClass(std::move(Info));
}

MethodBuilder::MethodBuilder(Program &P, std::string Name, int32_t ClassIndex,
                             uint32_t Flags, std::vector<DataType> ArgTypes,
                             DataType ReturnType)
    : Prog(P) {
  Info.Name = std::move(Name);
  Info.ClassIndex = ClassIndex;
  Info.Flags = Flags;
  Info.ArgTypes = std::move(ArgTypes);
  Info.ReturnType = ReturnType;
  Info.LocalTypes = Info.ArgTypes;
  Info.NumLocals = (uint32_t)Info.LocalTypes.size();
}

MethodBuilder::MethodBuilder(Program &P, uint32_t Predeclared)
    : Prog(P), PredeclaredIndex((int32_t)Predeclared) {
  const MethodInfo &Proto = P.methodAt(Predeclared);
  assert(Proto.Code.empty() && "prototype already has a body");
  Info.Name = Proto.Name;
  Info.ClassIndex = Proto.ClassIndex;
  Info.Flags = Proto.Flags;
  Info.ArgTypes = Proto.ArgTypes;
  Info.ReturnType = Proto.ReturnType;
  Info.LocalTypes = Info.ArgTypes;
  Info.NumLocals = (uint32_t)Info.LocalTypes.size();
}

uint32_t MethodBuilder::addLocal(DataType T) {
  Info.LocalTypes.push_back(T);
  return Info.NumLocals++;
}

MethodBuilder::Label MethodBuilder::newLabel() {
  LabelPcs.push_back(-1);
  return Label{(int32_t)LabelPcs.size() - 1};
}

void MethodBuilder::place(Label L) {
  assert(L.Id >= 0 && (size_t)L.Id < LabelPcs.size() && "invalid label");
  assert(LabelPcs[(size_t)L.Id] < 0 && "label placed twice");
  LabelPcs[(size_t)L.Id] = (int32_t)Code.size();
}

MethodBuilder &MethodBuilder::emit(BcInst I) {
  assert(!Finished && "method already finished");
  Code.push_back(I);
  return *this;
}

MethodBuilder &MethodBuilder::constI(DataType T, int64_t V) {
  BcInst I;
  I.Op = BcOp::Const;
  I.Type = T;
  I.ImmI = V;
  return emit(I);
}

MethodBuilder &MethodBuilder::constF(DataType T, double V) {
  BcInst I;
  I.Op = BcOp::Const;
  I.Type = T;
  I.ImmF = V;
  return emit(I);
}

MethodBuilder &MethodBuilder::load(uint32_t Slot) {
  assert(Slot < Info.NumLocals && "load from undeclared local");
  BcInst I;
  I.Op = BcOp::Load;
  I.Type = Info.LocalTypes[Slot];
  I.A = (int32_t)Slot;
  return emit(I);
}

MethodBuilder &MethodBuilder::store(uint32_t Slot) {
  assert(Slot < Info.NumLocals && "store to undeclared local");
  BcInst I;
  I.Op = BcOp::Store;
  I.Type = Info.LocalTypes[Slot];
  I.A = (int32_t)Slot;
  return emit(I);
}

MethodBuilder &MethodBuilder::inc(uint32_t Slot, int32_t By) {
  assert(Slot < Info.NumLocals && "inc of undeclared local");
  BcInst I;
  I.Op = BcOp::Inc;
  I.Type = Info.LocalTypes[Slot];
  I.A = (int32_t)Slot;
  I.B = By;
  return emit(I);
}

MethodBuilder &MethodBuilder::getField(uint32_t Field, DataType T) {
  BcInst I;
  I.Op = BcOp::GetField;
  I.Type = T;
  I.A = (int32_t)Field;
  return emit(I);
}

MethodBuilder &MethodBuilder::putField(uint32_t Field, DataType T) {
  BcInst I;
  I.Op = BcOp::PutField;
  I.Type = T;
  I.A = (int32_t)Field;
  return emit(I);
}

MethodBuilder &MethodBuilder::getGlobal(uint32_t Slot, DataType T) {
  BcInst I;
  I.Op = BcOp::GetGlobal;
  I.Type = T;
  I.A = (int32_t)Slot;
  return emit(I);
}

MethodBuilder &MethodBuilder::putGlobal(uint32_t Slot, DataType T) {
  BcInst I;
  I.Op = BcOp::PutGlobal;
  I.Type = T;
  I.A = (int32_t)Slot;
  return emit(I);
}

MethodBuilder &MethodBuilder::aload(DataType ElemT) {
  BcInst I;
  I.Op = BcOp::ALoad;
  I.Type = ElemT;
  return emit(I);
}

MethodBuilder &MethodBuilder::astore(DataType ElemT) {
  BcInst I;
  I.Op = BcOp::AStore;
  I.Type = ElemT;
  return emit(I);
}

MethodBuilder &MethodBuilder::arrayLen() {
  BcInst I;
  I.Op = BcOp::ArrayLen;
  I.Type = DataType::Int32;
  return emit(I);
}

MethodBuilder &MethodBuilder::binop(BcOp Op, DataType T) {
  assert((Op == BcOp::Add || Op == BcOp::Sub || Op == BcOp::Mul ||
          Op == BcOp::Div || Op == BcOp::Rem || Op == BcOp::Shl ||
          Op == BcOp::Shr || Op == BcOp::Or || Op == BcOp::And ||
          Op == BcOp::Xor) &&
         "binop expects an arithmetic/logical opcode");
  BcInst I;
  I.Op = Op;
  I.Type = T;
  return emit(I);
}

MethodBuilder &MethodBuilder::neg(DataType T) {
  BcInst I;
  I.Op = BcOp::Neg;
  I.Type = T;
  return emit(I);
}

MethodBuilder &MethodBuilder::cmp(DataType T) {
  BcInst I;
  I.Op = BcOp::Cmp;
  I.Type = T;
  return emit(I);
}

MethodBuilder &MethodBuilder::conv(DataType From, DataType To) {
  BcInst I;
  I.Op = BcOp::Conv;
  I.Type = To;
  I.A = (int32_t)From;
  return emit(I);
}

MethodBuilder &MethodBuilder::ifCmp(BcCond C, Label Target) {
  BcInst I;
  I.Op = BcOp::IfCmp;
  I.Type = DataType::Int32;
  I.A = (int32_t)C;
  Fixups.emplace_back((uint32_t)Code.size(), Target.Id);
  return emit(I);
}

MethodBuilder &MethodBuilder::ifZero(BcCond C, Label Target) {
  BcInst I;
  I.Op = BcOp::If;
  I.Type = DataType::Int32;
  I.A = (int32_t)C;
  Fixups.emplace_back((uint32_t)Code.size(), Target.Id);
  return emit(I);
}

MethodBuilder &MethodBuilder::ifNull(Label Target) {
  BcInst I;
  I.Op = BcOp::IfRef;
  I.Type = DataType::Object;
  I.A = 0;
  Fixups.emplace_back((uint32_t)Code.size(), Target.Id);
  return emit(I);
}

MethodBuilder &MethodBuilder::ifNonNull(Label Target) {
  BcInst I;
  I.Op = BcOp::IfRef;
  I.Type = DataType::Object;
  I.A = 1;
  Fixups.emplace_back((uint32_t)Code.size(), Target.Id);
  return emit(I);
}

MethodBuilder &MethodBuilder::gotoLabel(Label Target) {
  BcInst I;
  I.Op = BcOp::Goto;
  Fixups.emplace_back((uint32_t)Code.size(), Target.Id);
  return emit(I);
}

MethodBuilder &MethodBuilder::call(uint32_t Method) {
  BcInst I;
  I.Op = BcOp::Call;
  I.Type = Prog.methodAt(Method).ReturnType;
  I.A = (int32_t)Method;
  return emit(I);
}

MethodBuilder &MethodBuilder::callVirtual(uint32_t Method) {
  assert(!Prog.methodAt(Method).isStatic() &&
         "virtual call to a static method");
  BcInst I;
  I.Op = BcOp::CallVirtual;
  I.Type = Prog.methodAt(Method).ReturnType;
  I.A = (int32_t)Method;
  return emit(I);
}

MethodBuilder &MethodBuilder::ret() {
  assert(Info.ReturnType == DataType::Void && "void return from a function");
  BcInst I;
  I.Op = BcOp::Return;
  I.Type = DataType::Void;
  return emit(I);
}

MethodBuilder &MethodBuilder::retValue(DataType T) {
  assert(Info.ReturnType == T && "return type mismatch");
  BcInst I;
  I.Op = BcOp::Return;
  I.Type = T;
  return emit(I);
}

MethodBuilder &MethodBuilder::newObject(uint32_t Class) {
  BcInst I;
  I.Op = BcOp::New;
  I.Type = DataType::Object;
  I.A = (int32_t)Class;
  return emit(I);
}

MethodBuilder &MethodBuilder::newArray(DataType ElemT) {
  BcInst I;
  I.Op = BcOp::NewArray;
  I.Type = ElemT;
  return emit(I);
}

MethodBuilder &MethodBuilder::newMultiArray(DataType ElemT, uint32_t Dims) {
  assert(Dims >= 2 && "multi-array needs at least two dimensions");
  BcInst I;
  I.Op = BcOp::NewMultiArray;
  I.Type = ElemT;
  I.A = (int32_t)Dims;
  return emit(I);
}

MethodBuilder &MethodBuilder::instanceOf(uint32_t Class) {
  BcInst I;
  I.Op = BcOp::InstanceOf;
  I.Type = DataType::Int32;
  I.A = (int32_t)Class;
  return emit(I);
}

MethodBuilder &MethodBuilder::checkCast(uint32_t Class) {
  BcInst I;
  I.Op = BcOp::CheckCast;
  I.Type = DataType::Object;
  I.A = (int32_t)Class;
  return emit(I);
}

MethodBuilder &MethodBuilder::monitorEnter() {
  BcInst I;
  I.Op = BcOp::MonitorEnter;
  return emit(I);
}

MethodBuilder &MethodBuilder::monitorExit() {
  BcInst I;
  I.Op = BcOp::MonitorExit;
  return emit(I);
}

MethodBuilder &MethodBuilder::throwRef() {
  BcInst I;
  I.Op = BcOp::Throw;
  return emit(I);
}

MethodBuilder &MethodBuilder::arrayCopy() {
  BcInst I;
  I.Op = BcOp::ArrayCopy;
  return emit(I);
}

MethodBuilder &MethodBuilder::arrayCmp() {
  BcInst I;
  I.Op = BcOp::ArrayCmp;
  I.Type = DataType::Int32;
  return emit(I);
}

MethodBuilder &MethodBuilder::pop(DataType T) {
  BcInst I;
  I.Op = BcOp::Pop;
  I.Type = T;
  return emit(I);
}

MethodBuilder &MethodBuilder::dup(DataType T) {
  BcInst I;
  I.Op = BcOp::Dup;
  I.Type = T;
  return emit(I);
}

uint32_t MethodBuilder::beginTry() { return (uint32_t)Code.size(); }

void MethodBuilder::endTry(uint32_t StartPc, Label Handler,
                           int32_t ClassIndex) {
  ExceptionEntry E;
  E.StartPc = StartPc;
  E.EndPc = (uint32_t)Code.size();
  E.ClassIndex = ClassIndex;
  HandlerFixups.emplace_back((uint32_t)PendingHandlers.size(), Handler.Id);
  PendingHandlers.push_back(E);
}

uint32_t MethodBuilder::finish() {
  assert(!Finished && "method already finished");
  Finished = true;
  for (auto [Pc, LabelId] : Fixups) {
    assert(LabelPcs[(size_t)LabelId] >= 0 && "branch to unplaced label");
    // Branch target lives in B for conditional branches, A for Goto.
    if (Code[Pc].Op == BcOp::Goto)
      Code[Pc].A = LabelPcs[(size_t)LabelId];
    else
      Code[Pc].B = LabelPcs[(size_t)LabelId];
  }
  for (auto [Entry, LabelId] : HandlerFixups) {
    assert(LabelPcs[(size_t)LabelId] >= 0 && "handler at unplaced label");
    PendingHandlers[Entry].HandlerPc = (uint32_t)LabelPcs[(size_t)LabelId];
  }
  Info.Code = std::move(Code);
  Info.ExceptionTable = std::move(PendingHandlers);
  if (PredeclaredIndex >= 0) {
    Prog.defineMethod((uint32_t)PredeclaredIndex, std::move(Info));
    return (uint32_t)PredeclaredIndex;
  }
  return Prog.addMethod(std::move(Info));
}
