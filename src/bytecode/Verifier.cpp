//===- bytecode/Verifier.cpp ----------------------------------------------===//

#include "bytecode/Verifier.h"

#include <cstdarg>
#include <cstdio>
#include <deque>

using namespace jitml;

std::string VerifyResult::message() const {
  std::string S;
  for (const auto &E : Errors) {
    if (!S.empty())
      S += '\n';
    S += E;
  }
  return S;
}

bool jitml::stackEffect(const Program &P, const MethodInfo &M, const BcInst &I,
                        unsigned &Pops, unsigned &Pushes) {
  Pops = Pushes = 0;
  switch (I.Op) {
  case BcOp::Nop:
    return true;
  case BcOp::Const:
  case BcOp::Load:
  case BcOp::GetGlobal:
  case BcOp::New:
    Pushes = 1;
    return true;
  case BcOp::Store:
  case BcOp::PutGlobal:
  case BcOp::Pop:
  case BcOp::MonitorEnter:
  case BcOp::MonitorExit:
  case BcOp::Throw:
    Pops = 1;
    return true;
  case BcOp::Inc:
    return true;
  case BcOp::GetField:
  case BcOp::ArrayLen:
  case BcOp::Neg:
  case BcOp::Conv:
  case BcOp::InstanceOf:
  case BcOp::CheckCast:
  case BcOp::NewArray:
    Pops = 1;
    Pushes = 1;
    return true;
  case BcOp::PutField:
  case BcOp::IfCmp:
    Pops = 2;
    return true;
  case BcOp::ALoad:
  case BcOp::Add:
  case BcOp::Sub:
  case BcOp::Mul:
  case BcOp::Div:
  case BcOp::Rem:
  case BcOp::Shl:
  case BcOp::Shr:
  case BcOp::Or:
  case BcOp::And:
  case BcOp::Xor:
  case BcOp::Cmp:
  case BcOp::ArrayCmp:
    Pops = 2;
    Pushes = 1;
    return true;
  case BcOp::AStore:
    Pops = 3;
    return true;
  case BcOp::If:
  case BcOp::IfRef:
    Pops = 1;
    return true;
  case BcOp::Goto:
    return true;
  case BcOp::Call:
  case BcOp::CallVirtual: {
    if (I.A < 0 || (uint32_t)I.A >= P.numMethods())
      return false;
    const MethodInfo &Callee = P.methodAt((uint32_t)I.A);
    Pops = Callee.numArgs();
    Pushes = Callee.ReturnType == DataType::Void ? 0 : 1;
    return true;
  }
  case BcOp::Return:
    Pops = M.ReturnType == DataType::Void ? 0 : 1;
    return true;
  case BcOp::NewMultiArray:
    if (I.A < 2)
      return false;
    Pops = (unsigned)I.A;
    Pushes = 1;
    return true;
  case BcOp::ArrayCopy:
    Pops = 5;
    return true;
  case BcOp::Dup:
    Pops = 1;
    Pushes = 2;
    return true;
  }
  return false;
}

namespace {

class MethodVerifier {
public:
  MethodVerifier(Program &P, uint32_t MethodIndex)
      : Prog(P), M(P.methodAt(MethodIndex)), MethodIndex(MethodIndex) {}

  VerifyResult run();

private:
  void error(uint32_t Pc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));
  void visit(uint32_t Pc, int Depth);
  void flow(uint32_t Pc, int DepthAfter);

  Program &Prog;
  MethodInfo &M;
  uint32_t MethodIndex;
  VerifyResult Result;
  std::vector<int> DepthAt;     ///< -1 = unvisited
  std::deque<uint32_t> Worklist;
  unsigned MaxDepth = 0;
};

void MethodVerifier::error(uint32_t Pc, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  char Line[384];
  std::snprintf(Line, sizeof(Line), "%s @%u: %s",
                Prog.signatureOf(MethodIndex).c_str(), Pc, Buf);
  Result.Errors.push_back(Line);
}

void MethodVerifier::flow(uint32_t Target, int Depth) {
  if (Target >= M.Code.size()) {
    error(Target, "control flows past end of code");
    return;
  }
  if (DepthAt[Target] < 0) {
    DepthAt[Target] = Depth;
    Worklist.push_back(Target);
    return;
  }
  if (DepthAt[Target] != Depth)
    error(Target, "inconsistent stack depth at join (%d vs %d)",
          DepthAt[Target], Depth);
}

void MethodVerifier::visit(uint32_t Pc, int Depth) {
  const BcInst &I = M.Code[Pc];
  unsigned Pops = 0, Pushes = 0;
  if (!stackEffect(Prog, M, I, Pops, Pushes)) {
    error(Pc, "malformed operands for %s", bcOpName(I.Op));
    return;
  }
  if (Depth < (int)Pops) {
    error(Pc, "%s pops %u with stack depth %d", bcOpName(I.Op), Pops, Depth);
    return;
  }
  int After = Depth - (int)Pops + (int)Pushes;
  if ((unsigned)After > MaxDepth)
    MaxDepth = (unsigned)After;

  // Operand validity.
  switch (I.Op) {
  case BcOp::Load:
  case BcOp::Store:
  case BcOp::Inc:
    if (I.A < 0 || (uint32_t)I.A >= M.NumLocals)
      error(Pc, "local slot %d out of range (%u locals)", I.A, M.NumLocals);
    break;
  case BcOp::GetGlobal:
  case BcOp::PutGlobal:
    if (I.A < 0 || (uint32_t)I.A >= Prog.numGlobals())
      error(Pc, "global slot %d out of range", I.A);
    break;
  case BcOp::New:
  case BcOp::InstanceOf:
  case BcOp::CheckCast:
    if (I.A < 0 || (uint32_t)I.A >= Prog.numClasses())
      error(Pc, "class index %d out of range", I.A);
    break;
  case BcOp::Shl:
  case BcOp::Shr:
  case BcOp::Or:
  case BcOp::And:
  case BcOp::Xor:
    if (!isIntegerType(I.Type))
      error(Pc, "%s requires an integer type, got %s", bcOpName(I.Op),
            dataTypeName(I.Type));
    break;
  case BcOp::CallVirtual:
    if (I.A >= 0 && (uint32_t)I.A < Prog.numMethods() &&
        Prog.methodAt((uint32_t)I.A).isStatic())
      error(Pc, "virtual call to static method");
    break;
  default:
    break;
  }
  if (!Result.ok())
    return;

  // Successors.
  switch (I.Op) {
  case BcOp::IfCmp:
  case BcOp::If:
  case BcOp::IfRef:
    if (I.B < 0 || (uint32_t)I.B >= M.Code.size()) {
      error(Pc, "branch target %d out of range", I.B);
      return;
    }
    flow((uint32_t)I.B, After);
    flow(Pc + 1, After);
    return;
  case BcOp::Goto:
    if (I.A < 0 || (uint32_t)I.A >= M.Code.size()) {
      error(Pc, "branch target %d out of range", I.A);
      return;
    }
    flow((uint32_t)I.A, After);
    return;
  case BcOp::Return:
  case BcOp::Throw:
    if (After != 0 && I.Op == BcOp::Return)
      error(Pc, "return leaves %d values on the stack", After);
    return;
  default:
    flow(Pc + 1, After);
    return;
  }
}

VerifyResult MethodVerifier::run() {
  if (M.Code.empty()) {
    error(0, "empty method body");
    return std::move(Result);
  }
  if (M.NumLocals != M.LocalTypes.size())
    error(0, "NumLocals disagrees with LocalTypes");
  DepthAt.assign(M.Code.size(), -1);
  DepthAt[0] = 0;
  Worklist.push_back(0);
  // Exception handlers enter with exactly the thrown reference on the stack.
  for (const ExceptionEntry &E : M.ExceptionTable) {
    if (E.HandlerPc >= M.Code.size() || E.StartPc > E.EndPc ||
        E.EndPc > M.Code.size()) {
      error(E.HandlerPc, "malformed exception table entry");
      continue;
    }
    if (DepthAt[E.HandlerPc] < 0) {
      DepthAt[E.HandlerPc] = 1;
      Worklist.push_back(E.HandlerPc);
      if (MaxDepth < 1)
        MaxDepth = 1;
    }
  }
  while (!Worklist.empty() && Result.ok()) {
    uint32_t Pc = Worklist.front();
    Worklist.pop_front();
    visit(Pc, DepthAt[Pc]);
  }
  if (Result.ok())
    M.MaxStack = MaxDepth;
  return std::move(Result);
}

} // namespace

VerifyResult jitml::verifyMethod(Program &P, uint32_t MethodIndex) {
  return MethodVerifier(P, MethodIndex).run();
}

VerifyResult jitml::verifyProgram(Program &P) {
  for (uint32_t I = 0; I < P.numMethods(); ++I) {
    VerifyResult R = verifyMethod(P, I);
    if (!R.ok())
      return R;
  }
  return VerifyResult();
}
