//===- bytecode/Program.cpp -----------------------------------------------===//

#include "bytecode/Program.h"

using namespace jitml;

const char *jitml::dataTypeName(DataType T) {
  switch (T) {
  case DataType::Int8:
    return "byte";
  case DataType::Char:
    return "char";
  case DataType::Int16:
    return "short";
  case DataType::Int32:
    return "int";
  case DataType::Int64:
    return "long";
  case DataType::Float:
    return "float";
  case DataType::Double:
    return "double";
  case DataType::Void:
    return "void";
  case DataType::Address:
    return "address";
  case DataType::Object:
    return "object";
  case DataType::LongDouble:
    return "longdouble";
  case DataType::PackedDecimal:
    return "packed";
  case DataType::ZonedDecimal:
    return "zoned";
  case DataType::Mixed:
    return "mixed";
  }
  return "?";
}

const char *jitml::bcOpName(BcOp Op) {
  switch (Op) {
  case BcOp::Nop:
    return "nop";
  case BcOp::Const:
    return "const";
  case BcOp::Load:
    return "load";
  case BcOp::Store:
    return "store";
  case BcOp::Inc:
    return "inc";
  case BcOp::GetField:
    return "getfield";
  case BcOp::PutField:
    return "putfield";
  case BcOp::GetGlobal:
    return "getglobal";
  case BcOp::PutGlobal:
    return "putglobal";
  case BcOp::ALoad:
    return "aload";
  case BcOp::AStore:
    return "astore";
  case BcOp::ArrayLen:
    return "arraylen";
  case BcOp::Add:
    return "add";
  case BcOp::Sub:
    return "sub";
  case BcOp::Mul:
    return "mul";
  case BcOp::Div:
    return "div";
  case BcOp::Rem:
    return "rem";
  case BcOp::Neg:
    return "neg";
  case BcOp::Shl:
    return "shl";
  case BcOp::Shr:
    return "shr";
  case BcOp::Or:
    return "or";
  case BcOp::And:
    return "and";
  case BcOp::Xor:
    return "xor";
  case BcOp::Cmp:
    return "cmp";
  case BcOp::Conv:
    return "conv";
  case BcOp::IfCmp:
    return "ifcmp";
  case BcOp::If:
    return "if";
  case BcOp::IfRef:
    return "ifref";
  case BcOp::Goto:
    return "goto";
  case BcOp::Call:
    return "call";
  case BcOp::CallVirtual:
    return "callvirtual";
  case BcOp::Return:
    return "return";
  case BcOp::New:
    return "new";
  case BcOp::NewArray:
    return "newarray";
  case BcOp::NewMultiArray:
    return "newmultiarray";
  case BcOp::InstanceOf:
    return "instanceof";
  case BcOp::CheckCast:
    return "checkcast";
  case BcOp::MonitorEnter:
    return "monitorenter";
  case BcOp::MonitorExit:
    return "monitorexit";
  case BcOp::Throw:
    return "throw";
  case BcOp::ArrayCopy:
    return "arraycopy";
  case BcOp::ArrayCmp:
    return "arraycmp";
  case BcOp::Pop:
    return "pop";
  case BcOp::Dup:
    return "dup";
  }
  return "?";
}

const char *jitml::bcCondName(BcCond C) {
  switch (C) {
  case BcCond::Eq:
    return "eq";
  case BcCond::Ne:
    return "ne";
  case BcCond::Lt:
    return "lt";
  case BcCond::Ge:
    return "ge";
  case BcCond::Gt:
    return "gt";
  case BcCond::Le:
    return "le";
  }
  return "?";
}

uint32_t Program::addClass(ClassInfo C) {
  Classes.push_back(std::move(C));
  return (uint32_t)Classes.size() - 1;
}

uint32_t Program::addMethod(MethodInfo M) {
  uint32_t Index = (uint32_t)Methods.size();
  if (M.ClassIndex >= 0) {
    assert((uint32_t)M.ClassIndex < Classes.size() &&
           "method declared on unknown class");
    Classes[(uint32_t)M.ClassIndex].Methods.push_back(Index);
  }
  Methods.push_back(std::move(M));
  return Index;
}

void Program::defineMethod(uint32_t Index, MethodInfo M) {
  assert(Index < Methods.size() && "defining an undeclared method");
  assert(Methods[Index].Name == M.Name && "prototype/definition mismatch");
  assert(Methods[Index].Code.empty() && "method defined twice");
  // The class method list entry from declarePrototype stays valid.
  M.ClassIndex = Methods[Index].ClassIndex;
  Methods[Index] = std::move(M);
}

bool Program::isSubclassOf(int32_t Sub, int32_t Super) const {
  while (Sub >= 0) {
    if (Sub == Super)
      return true;
    Sub = Classes[(uint32_t)Sub].SuperIndex;
  }
  return false;
}

uint32_t Program::resolveVirtual(uint32_t DeclaredMethod,
                                 uint32_t DynClass) const {
  const MethodInfo &Declared = methodAt(DeclaredMethod);
  // Walk from the dynamic class up to the declaring class looking for a
  // method with the same name (our vtables are keyed by name).
  int32_t C = (int32_t)DynClass;
  while (C >= 0) {
    for (uint32_t MI : Classes[(uint32_t)C].Methods)
      if (Methods[MI].Name == Declared.Name)
        return MI;
    if (C == Declared.ClassIndex)
      break;
    C = Classes[(uint32_t)C].SuperIndex;
  }
  return DeclaredMethod;
}

bool Program::isOverridden(uint32_t MethodIndex) const {
  const MethodInfo &M = methodAt(MethodIndex);
  if (M.ClassIndex < 0 || M.isStatic() || M.hasFlag(MF_Final))
    return false;
  for (uint32_t C = 0; C < Classes.size(); ++C) {
    if ((int32_t)C == M.ClassIndex)
      continue;
    if (!isSubclassOf((int32_t)C, M.ClassIndex))
      continue;
    for (uint32_t MI : Classes[C].Methods)
      if (MI != MethodIndex && Methods[MI].Name == M.Name)
        return true;
  }
  return false;
}

std::string Program::signatureOf(uint32_t MethodIndex) const {
  const MethodInfo &M = methodAt(MethodIndex);
  std::string Sig;
  if (M.ClassIndex >= 0) {
    Sig += Classes[(uint32_t)M.ClassIndex].Name;
    Sig += '.';
  }
  Sig += M.Name;
  Sig += '(';
  for (size_t I = 0; I < M.ArgTypes.size(); ++I) {
    if (I)
      Sig += ',';
    Sig += dataTypeName(M.ArgTypes[I]);
  }
  Sig += ')';
  Sig += dataTypeName(M.ReturnType);
  return Sig;
}
