//===- bytecode/Verifier.h - Bytecode well-formedness checks ---*- C++ -*-===//
///
/// \file
/// A dataflow verifier for the stack bytecode: checks branch targets, local
/// slot bounds, stack-depth consistency at join points and coarse type
/// agreement, and computes MethodInfo::MaxStack. The IL generator and the
/// interpreter both assume verified code.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BYTECODE_VERIFIER_H
#define JITML_BYTECODE_VERIFIER_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace jitml {

/// Outcome of verifying one method.
struct VerifyResult {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
  /// All errors joined with newlines (empty string when clean).
  std::string message() const;
};

/// Stack effect of one instruction in the context of \p P (calls need
/// signatures). Returns false for malformed operands.
bool stackEffect(const Program &P, const MethodInfo &M, const BcInst &I,
                 unsigned &Pops, unsigned &Pushes);

/// Verifies method \p MethodIndex of \p P and fills in its MaxStack.
VerifyResult verifyMethod(Program &P, uint32_t MethodIndex);

/// Verifies every method; stops collecting after the first broken method
/// but always reports which one failed.
VerifyResult verifyProgram(Program &P);

} // namespace jitml

#endif // JITML_BYTECODE_VERIFIER_H
