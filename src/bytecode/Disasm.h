//===- bytecode/Disasm.h - Bytecode disassembler ---------------*- C++ -*-===//
///
/// \file
/// Human-readable rendering of bytecode, used by tests, examples, and when
/// debugging workload generators.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BYTECODE_DISASM_H
#define JITML_BYTECODE_DISASM_H

#include "bytecode/Program.h"

#include <string>

namespace jitml {

/// Renders a single instruction, e.g. "ifcmp.lt ->12" or "const.int 42".
std::string disassemble(const Program &P, const BcInst &I);

/// Renders a whole method with pc prefixes and the exception table.
std::string disassembleMethod(const Program &P, uint32_t MethodIndex);

} // namespace jitml

#endif // JITML_BYTECODE_DISASM_H
