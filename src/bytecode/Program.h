//===- bytecode/Program.h - Classes, methods, whole programs ---*- C++ -*-===//
///
/// \file
/// The loaded-program model the VM executes and the JIT compiles: classes
/// with single inheritance, fields and name-resolved vtables; methods with
/// bytecode, exception tables and the attribute flags the feature extractor
/// reads (Table 1); program-level globals and an entry point.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BYTECODE_PROGRAM_H
#define JITML_BYTECODE_PROGRAM_H

#include "bytecode/Opcode.h"
#include "bytecode/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

/// Method attribute flags. The first group mirrors the binary attributes of
/// Table 1 that come straight from the source declaration.
enum MethodFlag : uint32_t {
  MF_Constructor = 1u << 0,
  MF_Final = 1u << 1,
  MF_Protected = 1u << 2,
  MF_Public = 1u << 3,
  MF_Static = 1u << 4,
  MF_Synchronized = 1u << 5,
  MF_StrictFP = 1u << 6,
  /// Set when the runtime recompiles the method because an override was
  /// loaded dynamically ("Virtual method overridden" in Table 1).
  MF_VirtualOverridden = 1u << 7,
};

/// Special roles a class can play; calling into such classes sets the
/// corresponding Table 1 attribute on the caller ("Unsafe symbols?",
/// "Uses BigDecimal?").
enum class ClassKind : uint8_t {
  Normal = 0,
  /// Stands in for sun.misc.Unsafe: inlining its methods blocks
  /// redundant-load elimination.
  UnsafeIntrinsic,
  /// Stands in for java.math.BigDecimal: arbitrary-precision arithmetic
  /// that is a poor rematerialization candidate.
  BigDecimal,
};

/// One try/catch region in bytecode index space. [StartPc, EndPc) is the
/// protected range; ClassIndex restricts the caught type (-1 catches all).
struct ExceptionEntry {
  uint32_t StartPc = 0;
  uint32_t EndPc = 0;
  uint32_t HandlerPc = 0;
  int32_t ClassIndex = -1;
};

/// A method: signature, attribute flags, locals layout and bytecode.
/// Locals [0, NumArgs) hold the arguments (slot 0 is the receiver for
/// instance methods); the rest are temporaries.
struct MethodInfo {
  std::string Name;            ///< unqualified name
  int32_t ClassIndex = -1;     ///< owning class, -1 for free functions
  uint32_t Flags = 0;
  std::vector<DataType> ArgTypes; ///< includes the receiver when instance
  DataType ReturnType = DataType::Void;
  uint32_t NumLocals = 0;      ///< total local slots (args + temporaries)
  std::vector<DataType> LocalTypes; ///< type of every local slot
  std::vector<BcInst> Code;
  std::vector<ExceptionEntry> ExceptionTable;
  uint32_t MaxStack = 0;       ///< filled in by the verifier

  bool hasFlag(MethodFlag F) const { return (Flags & F) != 0; }
  bool isStatic() const { return hasFlag(MF_Static); }
  unsigned numArgs() const { return (unsigned)ArgTypes.size(); }
};

/// A class: name, super class, instance field types and its methods.
struct ClassInfo {
  std::string Name;
  int32_t SuperIndex = -1;
  ClassKind Kind = ClassKind::Normal;
  std::vector<DataType> FieldTypes; ///< includes inherited fields (flattened)
  std::vector<uint32_t> Methods;    ///< method indices declared here
};

/// A whole program: the unit the VM loads and runs.
class Program {
public:
  /// Adds a class; returns its index. Fields of the super class must already
  /// be included in \p FieldTypes (the builder takes care of that).
  uint32_t addClass(ClassInfo C);
  /// Adds a method; returns its index and registers it with its class.
  uint32_t addMethod(MethodInfo M);
  /// Registers a bodyless prototype so recursive / mutually-recursive call
  /// sites can reference the method before its body exists; the body is
  /// supplied later via defineMethod.
  uint32_t declarePrototype(MethodInfo M) { return addMethod(std::move(M)); }
  /// Installs the body built for a previously declared prototype.
  void defineMethod(uint32_t Index, MethodInfo M);

  uint32_t numClasses() const { return (uint32_t)Classes.size(); }
  uint32_t numMethods() const { return (uint32_t)Methods.size(); }
  uint32_t numGlobals() const { return (uint32_t)GlobalTypes.size(); }

  const ClassInfo &classAt(uint32_t I) const {
    assert(I < Classes.size() && "class index out of range");
    return Classes[I];
  }
  ClassInfo &classAt(uint32_t I) {
    assert(I < Classes.size() && "class index out of range");
    return Classes[I];
  }
  const MethodInfo &methodAt(uint32_t I) const {
    assert(I < Methods.size() && "method index out of range");
    return Methods[I];
  }
  MethodInfo &methodAt(uint32_t I) {
    assert(I < Methods.size() && "method index out of range");
    return Methods[I];
  }

  /// Adds a program global of type \p T; returns its slot.
  uint32_t addGlobal(DataType T) {
    GlobalTypes.push_back(T);
    return (uint32_t)GlobalTypes.size() - 1;
  }
  DataType globalType(uint32_t I) const {
    assert(I < GlobalTypes.size() && "global index out of range");
    return GlobalTypes[I];
  }

  void setEntryMethod(uint32_t M) { EntryMethod = (int32_t)M; }
  int32_t entryMethod() const { return EntryMethod; }

  /// True when \p Sub equals \p Super or derives from it.
  bool isSubclassOf(int32_t Sub, int32_t Super) const;

  /// Resolves a virtual call: the most-derived override of method
  /// \p DeclaredMethod when the receiver's dynamic class is \p DynClass.
  /// Overrides are matched by method name, as in a name-keyed vtable.
  uint32_t resolveVirtual(uint32_t DeclaredMethod, uint32_t DynClass) const;

  /// True when any loaded subclass of the declaring class overrides
  /// \p MethodIndex; such calls cannot be devirtualized.
  bool isOverridden(uint32_t MethodIndex) const;

  /// "ClassName.name(argTypes)returnType" — the signature string interned
  /// into archive dictionaries.
  std::string signatureOf(uint32_t MethodIndex) const;

private:
  std::vector<ClassInfo> Classes;
  std::vector<MethodInfo> Methods;
  std::vector<DataType> GlobalTypes;
  int32_t EntryMethod = -1;
};

} // namespace jitml

#endif // JITML_BYTECODE_PROGRAM_H
