//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include <cmath>

using namespace jitml;

RunResult jitml::runOnce(const Program &P, unsigned Iterations,
                         LearnedStrategyProvider *Provider,
                         uint64_t RunSeed) {
  VirtualMachine::Config Cfg;
  Cfg.Clock.Seed = mix64(RunSeed ^ 0xc10c4);
  VirtualMachine VM(P, Cfg);
  if (Provider)
    VM.setModifierHook(makeLearnedHook(*Provider));

  RunResult Out;
  for (unsigned I = 0; I < Iterations; ++I) {
    ExecResult R = VM.run({Value::ofI((int64_t)I)});
    assert(!R.Exceptional && "benchmark must not throw out of main");
    Out.Checksum = (int64_t)mix64((uint64_t)Out.Checksum ^ (uint64_t)R.Ret.I);
  }
  Out.AppCycles = VM.stats().AppCycles;
  Out.Compilations = VM.stats().Compilations;
  // OS-level disturbances: small seeded multiplicative noise on every
  // measured time (the quantities the paper averages over 30 runs).
  Rng Noise(mix64(RunSeed ^ 0x5c4ed));
  Out.WallCycles =
      VM.stats().totalCycles() * (1.0 + 0.008 * Noise.nextGaussian());
  Out.CompileCycles =
      VM.stats().CompileCycles * (1.0 + 0.008 * Noise.nextGaussian());
  return Out;
}

Series jitml::measureSeries(const Program &P, const ExperimentConfig &Config,
                            LearnedStrategyProvider *Provider) {
  Series Out;
  for (unsigned Run = 0; Run < Config.Runs; ++Run) {
    RunResult R = runOnce(P, Config.Iterations, Provider,
                          mix64(Config.Seed + Run * 0x9e37u));
    Out.Wall.add(R.WallCycles);
    Out.Compile.add(R.CompileCycles);
    if (Run == 0)
      Out.Checksum = R.Checksum;
    else
      assert(Out.Checksum == R.Checksum && "non-deterministic benchmark");
  }
  return Out;
}

namespace {

Relative ratioOf(double Num, double NumCi, double Den, double DenCi) {
  Relative R;
  if (Den <= 0.0 || Num <= 0.0)
    return R;
  R.Value = Num / Den;
  double RelErr = std::sqrt((NumCi / Num) * (NumCi / Num) +
                            (DenCi / Den) * (DenCi / Den));
  R.Ci = R.Value * RelErr;
  return R;
}

} // namespace

Relative jitml::relativePerformance(const Series &Baseline,
                                    const Series &Variant) {
  return ratioOf(Baseline.Wall.mean(), Baseline.Wall.ci95HalfWidth(),
                 Variant.Wall.mean(), Variant.Wall.ci95HalfWidth());
}

Relative jitml::relativeCompileTime(const Series &Baseline,
                                    const Series &Variant) {
  return ratioOf(Variant.Compile.mean(), Variant.Compile.ci95HalfWidth(),
                 Baseline.Compile.mean(), Baseline.Compile.ci95HalfWidth());
}
