//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "support/ThreadPool.h"

#include <cmath>

using namespace jitml;

RunResult jitml::runOnce(const Program &P, unsigned Iterations,
                         LearnedStrategyProvider *Provider,
                         uint64_t RunSeed) {
  VirtualMachine::Config Cfg;
  Cfg.Clock.Seed = mix64(RunSeed ^ 0xc10c4);
  VirtualMachine VM(P, Cfg);
  if (Provider)
    VM.setModifierHook(makeLearnedHook(*Provider));

  RunResult Out;
  for (unsigned I = 0; I < Iterations; ++I) {
    ExecResult R = VM.run({Value::ofI((int64_t)I)});
    assert(!R.Exceptional && "benchmark must not throw out of main");
    Out.Checksum = (int64_t)mix64((uint64_t)Out.Checksum ^ (uint64_t)R.Ret.I);
  }
  Out.AppCycles = VM.stats().AppCycles;
  Out.Compilations = VM.stats().Compilations;
  // OS-level disturbances: small seeded multiplicative noise on every
  // measured time (the quantities the paper averages over 30 runs).
  Rng Noise(mix64(RunSeed ^ 0x5c4ed));
  Out.WallCycles =
      VM.stats().totalCycles() * (1.0 + 0.008 * Noise.nextGaussian());
  Out.CompileCycles =
      VM.stats().CompileCycles * (1.0 + 0.008 * Noise.nextGaussian());
  return Out;
}

uint64_t jitml::runSeed(const ExperimentConfig &Config, unsigned Run) {
  return mix64(Config.Seed + Run * 0x9e37u);
}

Series jitml::foldSeries(const std::vector<RunResult> &Results) {
  Series Out;
  for (size_t Run = 0; Run < Results.size(); ++Run) {
    const RunResult &R = Results[Run];
    Out.Wall.add(R.WallCycles);
    Out.Compile.add(R.CompileCycles);
    if (Run == 0)
      Out.Checksum = R.Checksum;
    else
      assert(Out.Checksum == R.Checksum && "non-deterministic benchmark");
  }
  return Out;
}

Series jitml::measureSeries(const Program &P, const ExperimentConfig &Config,
                            LearnedStrategyProvider *Provider) {
  // The repetitions are independent JVM invocations whose seeds derive
  // from the run index alone, so they fan out across the worker pool into
  // ordered result slots; the in-order fold below makes the statistics
  // bit-identical to the sequential loop (JITML_JOBS=1 runs it inline).
  std::vector<RunResult> Results(Config.Runs);
  parallelFor(Config.Runs, [&](size_t Run) {
    Results[Run] =
        runOnce(P, Config.Iterations, Provider, runSeed(Config, (unsigned)Run));
  });
  return foldSeries(Results);
}

namespace {

Relative ratioOf(double Num, double NumCi, double Den, double DenCi) {
  Relative R;
  if (Den <= 0.0 || Num <= 0.0)
    return R;
  R.Value = Num / Den;
  double RelErr = std::sqrt((NumCi / Num) * (NumCi / Num) +
                            (DenCi / Den) * (DenCi / Den));
  R.Ci = R.Value * RelErr;
  return R;
}

} // namespace

Relative jitml::relativePerformance(const Series &Baseline,
                                    const Series &Variant) {
  return ratioOf(Baseline.Wall.mean(), Baseline.Wall.ci95HalfWidth(),
                 Variant.Wall.mean(), Variant.Wall.ci95HalfWidth());
}

Relative jitml::relativeCompileTime(const Series &Baseline,
                                    const Series &Variant) {
  return ratioOf(Variant.Compile.mean(), Variant.Compile.ci95HalfWidth(),
                 Baseline.Compile.mean(), Baseline.Compile.ci95HalfWidth());
}
