//===- harness/ModelStore.h - Cached collection + training ------*- C++ -*-===//
///
/// \file
/// The benchmark binaries all need the same trained artifacts: collection
/// data for the five training benchmarks and the five leave-one-out model
/// sets. Collection is the expensive step, so its archives are cached on
/// disk (JITML_CACHE_DIR, default ./jitml_bench_cache) in the binary
/// archive format; models are retrained from the archives in memory (fast
/// — the paper's models took 30-90 s on 2008 hardware, ours take well
/// under a second each at bench scale).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_HARNESS_MODELSTORE_H
#define JITML_HARNESS_MODELSTORE_H

#include "jitml/Training.h"

namespace jitml {

class ModelStore {
public:
  struct Artifacts {
    /// Collection data per training benchmark (co, db, mp, mt, rt order).
    std::vector<IntermediateDataSet> PerBenchmark;
    /// The five leave-one-out model sets H1..H5.
    std::vector<ModelSet> Sets;
  };

  /// Collects (or loads cached archives) and trains. Prints progress to
  /// stdout when \p Verbose.
  static Artifacts getOrBuild(bool Verbose = true);

  /// Cache directory in use ($JITML_CACHE_DIR or ./jitml_bench_cache).
  static std::string cacheDir();

  /// Model set whose training fold excluded \p BenchmarkCode, or nullptr
  /// when the benchmark was not part of the training suite.
  static const ModelSet *setExcluding(const Artifacts &A,
                                      const std::string &BenchmarkCode);

  /// Default collection/training configs shared by all benches.
  static CollectConfig collectConfig();
  static TrainConfig trainConfig();
};

} // namespace jitml

#endif // JITML_HARNESS_MODELSTORE_H
