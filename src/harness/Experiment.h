//===- harness/Experiment.h - Measurement methodology -----------*- C++ -*-===//
///
/// \file
/// The paper's measurement methodology (section 8.1): "Each JVM invocation
/// was run 30 times to account for disturbances (e.g.: scheduling policies
/// in the operating system, garbage collection in the JVM), and a 95%
/// confidence interval is presented along with the average." A JVM
/// invocation here is one fresh VirtualMachine executing the benchmark's
/// entry method for N internal iterations: N=1 for *start-up* runs, N=10
/// for *throughput* runs.
///
/// Simulated runs are deterministic, so the cross-run disturbances are
/// modeled: each run uses a different clock seed (different migration
/// pattern) and a small seeded multiplicative noise on the measured wall
/// time, which exercises the CI machinery realistically.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_HARNESS_EXPERIMENT_H
#define JITML_HARNESS_EXPERIMENT_H

#include "jitml/LearnedStrategy.h"
#include "support/Statistics.h"
#include "workloads/Workload.h"

namespace jitml {

/// Measurements of one JVM invocation.
struct RunResult {
  double WallCycles = 0.0;    ///< app + compile, with measurement noise
  double AppCycles = 0.0;
  double CompileCycles = 0.0;
  int64_t Checksum = 0;
  uint64_t Compilations = 0;
};

/// Aggregates over the repetition loop.
struct Series {
  RunningStat Wall;
  RunningStat Compile;
  int64_t Checksum = 0; ///< must agree across runs and configurations
};

struct ExperimentConfig {
  unsigned Iterations = 1; ///< 1 = start-up, 10 = throughput
  unsigned Runs = 30;
  double NoiseSigma = 0.008; ///< relative wall-time noise per run
  uint64_t Seed = 2011;
};

/// One JVM invocation of \p P. \p Provider selects learned plans when
/// non-null; the baseline (out-of-the-box) compiler otherwise.
RunResult runOnce(const Program &P, unsigned Iterations,
                  LearnedStrategyProvider *Provider, uint64_t RunSeed);

/// The full 30-run series for one (benchmark, configuration) pair. The
/// runs are independent and fan out across the JITML_JOBS worker pool;
/// per-run seeds depend only on the run index and results fold in index
/// order, so the statistics are bit-identical to a sequential loop.
Series measureSeries(const Program &P, const ExperimentConfig &Config,
                     LearnedStrategyProvider *Provider);

/// Seed of run \p Run under \p Config (the derivation measureSeries uses;
/// exposed so callers that fan out at a different granularity, like the
/// figure harness, produce the same per-run seeds).
uint64_t runSeed(const ExperimentConfig &Config, unsigned Run);

/// Folds per-run results (in run order) into a Series, asserting the
/// checksum agreement measureSeries enforces.
Series foldSeries(const std::vector<RunResult> &Results);

/// Ratio helpers for the relative bars the figures report. Confidence
/// half-widths propagate first-order.
struct Relative {
  double Value = 0.0;
  double Ci = 0.0;
};

/// Relative performance (Figures 6/8/10/11): baseline time / variant
/// time, so > 1 means the learned plans win.
Relative relativePerformance(const Series &Baseline, const Series &Variant);

/// Relative compilation time (Figures 7/9/12/13): variant compile time /
/// baseline compile time, so < 1 means the learned plans compile faster.
Relative relativeCompileTime(const Series &Baseline, const Series &Variant);

} // namespace jitml

#endif // JITML_HARNESS_EXPERIMENT_H
