//===- harness/ModelStore.cpp ---------------------------------------------===//

#include "harness/ModelStore.h"

#include "support/ThreadPool.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

using namespace jitml;

std::string ModelStore::cacheDir() {
  const char *Env = std::getenv("JITML_CACHE_DIR");
  return Env && *Env ? Env : "./jitml_bench_cache";
}

CollectConfig ModelStore::collectConfig() { return CollectConfig(); }

TrainConfig ModelStore::trainConfig() { return TrainConfig(); }

const ModelSet *ModelStore::setExcluding(const Artifacts &A,
                                         const std::string &BenchmarkCode) {
  for (const ModelSet &S : A.Sets)
    if (S.LeftOutBenchmark == BenchmarkCode)
      return &S;
  return nullptr;
}

namespace {

/// Re-encodes an intermediate data set as an archive for caching; the
/// dictionary is rebuilt from the resolved signatures.
bool saveDataSet(const std::string &Path, const IntermediateDataSet &Data) {
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  Records.reserve(Data.Records.size());
  for (const TaggedRecord &T : Data.Records) {
    CollectionRecord R = T.Record;
    R.SignatureId = Dict.intern(T.Signature);
    Records.push_back(std::move(R));
  }
  return writeArchiveFile(Path, Dict, Records);
}

bool loadDataSet(const std::string &Path, const std::string &Tag,
                 IntermediateDataSet &Out) {
  ArchiveData Archive;
  if (!readArchiveFile(Path, Archive))
    return false;
  Out = unarchive(Archive, Tag);
  return !Out.Records.empty();
}

} // namespace

ModelStore::Artifacts ModelStore::getOrBuild(bool Verbose) {
  Artifacts A;
  std::string Dir = cacheDir();
  ::mkdir(Dir.c_str(), 0755);

  CollectConfig CC = collectConfig();
  const std::vector<WorkloadSpec> &Training = trainingBenchmarks();
  A.PerBenchmark.resize(Training.size());

  // Cheap cache probe first (sequential file I/O), then one parallel
  // fan-out over every missing (benchmark, search strategy) collection
  // run — the expensive step. Each strategy run is an independent VM
  // session with index-derived seeds; merging Randomized before
  // Progressive per benchmark reproduces collectFromWorkload exactly, so
  // the cached archives and trained models are bit-identical to the
  // sequential build.
  std::vector<size_t> Missing;
  for (size_t B = 0; B < Training.size(); ++B) {
    const WorkloadSpec &Spec = Training[B];
    std::string Path = Dir + "/" + Spec.Code + ".jmla";
    if (loadDataSet(Path, Spec.Code, A.PerBenchmark[B])) {
      if (Verbose)
        std::printf("[modelstore] %s: %zu records (cached)\n",
                    Spec.Name.c_str(), A.PerBenchmark[B].size());
    } else {
      Missing.push_back(B);
    }
  }

  if (!Missing.empty()) {
    if (Verbose) {
      for (size_t B : Missing)
        std::printf("[modelstore] %s: collecting...\n",
                    Training[B].Name.c_str());
      std::fflush(stdout);
    }
    static constexpr SearchStrategy Strategies[2] = {
        SearchStrategy::Randomized, SearchStrategy::Progressive};
    std::vector<std::array<IntermediateDataSet, 2>> Parts(Missing.size());
    parallelFor(Missing.size() * 2, [&](size_t Task) {
      size_t M = Task / 2;
      Parts[M][Task % 2] = collectWithStrategy(Training[Missing[M]], CC,
                                               Strategies[Task % 2]);
    });
    for (size_t M = 0; M < Missing.size(); ++M) {
      size_t B = Missing[M];
      const WorkloadSpec &Spec = Training[B];
      IntermediateDataSet &Data = A.PerBenchmark[B];
      Data = std::move(Parts[M][0]);
      Data.append(Parts[M][1]);
      if (Verbose)
        std::printf("[modelstore] %s: %zu records collected\n",
                    Spec.Name.c_str(), Data.size());
      std::string Path = Dir + "/" + Spec.Code + ".jmla";
      if (!saveDataSet(Path, Data) && Verbose)
        std::printf("[modelstore] warning: could not cache %s\n",
                    Path.c_str());
    }
  }

  if (Verbose)
    std::printf("[modelstore] training 5 leave-one-out model sets "
                "(3 levels each, C=%.0f)...\n",
                trainConfig().Svm.C);
  std::fflush(stdout);
  A.Sets = trainLeaveOneOut(A.PerBenchmark, trainConfig());
  if (Verbose)
    for (const ModelSet &S : A.Sets)
      std::printf("[modelstore] %s (leaves out %s): cold=%s warm=%s "
                  "hot=%s\n",
                  S.Name.c_str(), S.LeftOutBenchmark.c_str(),
                  S.Levels[0].Valid ? "ok" : "-",
                  S.Levels[1].Valid ? "ok" : "-",
                  S.Levels[2].Valid ? "ok" : "-");
  return A;
}
