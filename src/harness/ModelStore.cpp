//===- harness/ModelStore.cpp ---------------------------------------------===//

#include "harness/ModelStore.h"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

using namespace jitml;

std::string ModelStore::cacheDir() {
  const char *Env = std::getenv("JITML_CACHE_DIR");
  return Env && *Env ? Env : "./jitml_bench_cache";
}

CollectConfig ModelStore::collectConfig() { return CollectConfig(); }

TrainConfig ModelStore::trainConfig() { return TrainConfig(); }

const ModelSet *ModelStore::setExcluding(const Artifacts &A,
                                         const std::string &BenchmarkCode) {
  for (const ModelSet &S : A.Sets)
    if (S.LeftOutBenchmark == BenchmarkCode)
      return &S;
  return nullptr;
}

namespace {

/// Re-encodes an intermediate data set as an archive for caching; the
/// dictionary is rebuilt from the resolved signatures.
bool saveDataSet(const std::string &Path, const IntermediateDataSet &Data) {
  StringInterner Dict;
  std::vector<CollectionRecord> Records;
  Records.reserve(Data.Records.size());
  for (const TaggedRecord &T : Data.Records) {
    CollectionRecord R = T.Record;
    R.SignatureId = Dict.intern(T.Signature);
    Records.push_back(std::move(R));
  }
  return writeArchiveFile(Path, Dict, Records);
}

bool loadDataSet(const std::string &Path, const std::string &Tag,
                 IntermediateDataSet &Out) {
  ArchiveData Archive;
  if (!readArchiveFile(Path, Archive))
    return false;
  Out = unarchive(Archive, Tag);
  return !Out.Records.empty();
}

} // namespace

ModelStore::Artifacts ModelStore::getOrBuild(bool Verbose) {
  Artifacts A;
  std::string Dir = cacheDir();
  ::mkdir(Dir.c_str(), 0755);

  CollectConfig CC = collectConfig();
  for (const WorkloadSpec &Spec : trainingBenchmarks()) {
    std::string Path = Dir + "/" + Spec.Code + ".jmla";
    IntermediateDataSet Data;
    if (loadDataSet(Path, Spec.Code, Data)) {
      if (Verbose)
        std::printf("[modelstore] %s: %zu records (cached)\n",
                    Spec.Name.c_str(), Data.size());
    } else {
      if (Verbose)
        std::printf("[modelstore] %s: collecting...\n", Spec.Name.c_str());
      std::fflush(stdout);
      Data = collectFromWorkload(Spec, CC);
      if (Verbose)
        std::printf("[modelstore] %s: %zu records collected\n",
                    Spec.Name.c_str(), Data.size());
      if (!saveDataSet(Path, Data) && Verbose)
        std::printf("[modelstore] warning: could not cache %s\n",
                    Path.c_str());
    }
    A.PerBenchmark.push_back(std::move(Data));
  }

  if (Verbose)
    std::printf("[modelstore] training 5 leave-one-out model sets "
                "(3 levels each, C=%.0f)...\n",
                trainConfig().Svm.C);
  std::fflush(stdout);
  A.Sets = trainLeaveOneOut(A.PerBenchmark, trainConfig());
  if (Verbose)
    for (const ModelSet &S : A.Sets)
      std::printf("[modelstore] %s (leaves out %s): cold=%s warm=%s "
                  "hot=%s\n",
                  S.Name.c_str(), S.LeftOutBenchmark.c_str(),
                  S.Levels[0].Valid ? "ok" : "-",
                  S.Levels[1].Valid ? "ok" : "-",
                  S.Levels[2].Valid ? "ok" : "-");
  return A;
}
