//===- harness/FigureReport.h - Figure/table row printers -------*- C++ -*-===//
///
/// \file
/// Shared driver behind the Figure 6-13 bench binaries: measures a suite
/// of benchmarks under the baseline compiler and under each of the five
/// leave-one-out model sets, then prints the same rows/series the paper's
/// plots show. For benchmarks that belong to the training set,
/// leave-one-out applies: only the model trained without them is reported
/// ("hence the single bar for those benchmarks").
///
//===----------------------------------------------------------------------===//

#ifndef JITML_HARNESS_FIGUREREPORT_H
#define JITML_HARNESS_FIGUREREPORT_H

#include "harness/Experiment.h"
#include "harness/ModelStore.h"

namespace jitml {

/// What the figure plots.
enum class FigureMetric : uint8_t {
  StartupPerformance,  ///< Figures 6, 8 (higher = better)
  CompileTime,         ///< Figures 7, 9, 12, 13 (lower = better)
  ThroughputPerformance, ///< Figures 10, 11
};

struct FigureRequest {
  std::string Title;
  FigureMetric Metric = FigureMetric::StartupPerformance;
  Suite BenchSuite = Suite::SpecJvm98;
  unsigned Iterations = 1; ///< 1 start-up, 10 throughput
  unsigned Runs = 30;
};

/// Measured cells for one figure: per benchmark, either one LOO value or
/// all five model values.
struct FigureData {
  struct Row {
    std::string Benchmark;
    std::string Code;
    bool LeaveOneOut = false;
    /// One entry per model set (H1..H5); LOO rows fill only their fold.
    std::vector<Relative> PerModel;
  };
  std::vector<Row> Rows;
  /// Geometric means across benchmarks, one per model set (reservation-set
  /// rows only, mirroring how the paper summarizes averages).
  std::vector<double> ModelGeoMean;
};

/// Runs the whole figure. Progress lines go to stdout (these are long
/// benchmarks); rows are returned for printing.
FigureData runFigure(const FigureRequest &Request,
                     const ModelStore::Artifacts &Artifacts);

/// Renders the standard table for a figure.
std::string formatFigure(const FigureRequest &Request,
                         const FigureData &Data);

/// Number of measurement runs, honoring the JITML_RUNS environment
/// override (useful for quick smoke runs of the bench binaries).
unsigned configuredRuns(unsigned Default = 30);

/// "N runs per configuration, M iteration(s) ..." annotation line.
std::string formatFigureRunsNote(unsigned Runs, unsigned Iterations);

} // namespace jitml

#endif // JITML_HARNESS_FIGUREREPORT_H
