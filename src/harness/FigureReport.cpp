//===- harness/FigureReport.cpp -------------------------------------------===//

#include "harness/FigureReport.h"

#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace jitml;

unsigned jitml::configuredRuns(unsigned Default) {
  const char *Env = std::getenv("JITML_RUNS");
  if (!Env || !*Env)
    return Default;
  long V = std::strtol(Env, nullptr, 10);
  return V >= 1 ? (unsigned)V : Default;
}

namespace {

/// One measured (benchmark, compiler configuration) pair: the baseline
/// compiler (SetIdx == npos) or one leave-one-out model set. Cells are the
/// unit of fan-out together with their runs: every (cell, run) measurement
/// is independent, seeded by indices alone, and lands in its own slot.
struct FigureCell {
  size_t Bench = 0;
  size_t SetIdx = SIZE_MAX; ///< SIZE_MAX = baseline
  /// Shared by every run of the cell; model sets are immutable and the
  /// provider's counters are atomic, so concurrent runs are safe.
  std::unique_ptr<LearnedStrategyProvider> Provider;
  std::vector<RunResult> Runs; ///< ordered result slots
  Series Folded;
};

} // namespace

FigureData jitml::runFigure(const FigureRequest &Request,
                            const ModelStore::Artifacts &Artifacts) {
  const std::vector<WorkloadSpec> &Suite =
      Request.BenchSuite == Suite::SpecJvm98 ? specJvm98Suite()
                                             : daCapoSuite();
  FigureData Data;
  std::vector<std::vector<double>> GeoInputs(Artifacts.Sets.size());

  // Phase 1: lay out every (benchmark, configuration) cell the sequential
  // driver would have measured, in its visiting order.
  std::vector<Program> Programs;
  std::vector<ExperimentConfig> Configs;
  Programs.reserve(Suite.size());
  std::vector<FigureCell> Cells;
  for (size_t Bench = 0; Bench < Suite.size(); ++Bench) {
    const WorkloadSpec &Spec = Suite[Bench];
    Programs.push_back(buildWorkload(Spec));
    ExperimentConfig EC;
    EC.Iterations = Request.Iterations;
    EC.Runs = Request.Runs;
    EC.Seed = mix64(Spec.Seed ^ 0xf19u);
    Configs.push_back(EC);

    FigureCell Baseline;
    Baseline.Bench = Bench;
    Cells.push_back(std::move(Baseline));

    const ModelSet *LooSet = ModelStore::setExcluding(Artifacts, Spec.Code);
    for (size_t S = 0; S < Artifacts.Sets.size(); ++S) {
      // Training benchmark: only the fold that excluded it is honest.
      if (LooSet && &Artifacts.Sets[S] != LooSet)
        continue;
      FigureCell Cell;
      Cell.Bench = Bench;
      Cell.SetIdx = S;
      Cell.Provider =
          std::make_unique<LearnedStrategyProvider>(Artifacts.Sets[S]);
      Cells.push_back(std::move(Cell));
    }
  }
  for (FigureCell &Cell : Cells)
    Cell.Runs.resize(Request.Runs);

  std::printf("[figure] measuring %zu benchmarks x (baseline + models): "
              "%zu configurations x %u runs x %u iters, %u jobs\n",
              Suite.size(), Cells.size(), Request.Runs, Request.Iterations,
              configuredJobs());
  std::fflush(stdout);

  // Phase 2: every (configuration, run) measurement fans out across the
  // pool. Seeds depend only on (benchmark, run), exactly as the
  // sequential measureSeries derivation, so JITML_JOBS=1 and JITML_JOBS=N
  // fill identical slots.
  parallelFor(Cells.size() * Request.Runs, [&](size_t Task) {
    FigureCell &Cell = Cells[Task / Request.Runs];
    unsigned Run = (unsigned)(Task % Request.Runs);
    const ExperimentConfig &EC = Configs[Cell.Bench];
    Cell.Runs[Run] =
        runOnce(Programs[Cell.Bench], EC.Iterations,
                Cell.Provider.get(), runSeed(EC, Run));
  });

  // Phase 3: fold each cell in run order and assemble rows in suite
  // order — the exact aggregation of the sequential driver.
  for (FigureCell &Cell : Cells) {
    Cell.Folded = foldSeries(Cell.Runs);
    Cell.Provider.reset();
  }

  size_t CellAt = 0;
  for (size_t Bench = 0; Bench < Suite.size(); ++Bench) {
    const WorkloadSpec &Spec = Suite[Bench];
    assert(CellAt < Cells.size() && Cells[CellAt].Bench == Bench &&
           Cells[CellAt].SetIdx == SIZE_MAX &&
           "cell layout must start each benchmark with its baseline");
    const Series &Baseline = Cells[CellAt++].Folded;

    FigureData::Row Row;
    Row.Benchmark = Spec.Name;
    Row.Code = Spec.Code;
    Row.PerModel.resize(Artifacts.Sets.size());
    Row.LeaveOneOut = ModelStore::setExcluding(Artifacts, Spec.Code) != nullptr;

    for (; CellAt < Cells.size() && Cells[CellAt].Bench == Bench; ++CellAt) {
      const FigureCell &Cell = Cells[CellAt];
      const Series &Learned = Cell.Folded;
      // Correctness first: the learned compiler must compute the same
      // answers as the baseline.
      assert(Learned.Checksum == Baseline.Checksum &&
             "learned configuration changed program semantics");
      Relative Rel;
      switch (Request.Metric) {
      case FigureMetric::StartupPerformance:
      case FigureMetric::ThroughputPerformance:
        Rel = relativePerformance(Baseline, Learned);
        break;
      case FigureMetric::CompileTime:
        Rel = relativeCompileTime(Baseline, Learned);
        break;
      }
      Row.PerModel[Cell.SetIdx] = Rel;
      if (!Row.LeaveOneOut && Rel.Value > 0.0)
        GeoInputs[Cell.SetIdx].push_back(Rel.Value);
    }
    Data.Rows.push_back(std::move(Row));
  }
  Data.ModelGeoMean.resize(Artifacts.Sets.size(), 0.0);
  for (size_t S = 0; S < GeoInputs.size(); ++S)
    if (!GeoInputs[S].empty())
      Data.ModelGeoMean[S] = geometricMean(GeoInputs[S]);
  return Data;
}

std::string jitml::formatFigure(const FigureRequest &Request,
                                const FigureData &Data) {
  TablePrinter Table;
  std::vector<std::string> Header{"benchmark"};
  for (size_t S = 0; S < 5; ++S)
    Header.push_back("H" + std::to_string(S + 1));
  Header.push_back("note");
  Table.setHeader(Header);
  for (const FigureData::Row &Row : Data.Rows) {
    std::vector<std::string> Cells{Row.Benchmark};
    for (const Relative &R : Row.PerModel)
      Cells.push_back(R.Value > 0.0 ? TablePrinter::fmtCi(R.Value, R.Ci)
                                    : std::string("-"));
    Cells.push_back(Row.LeaveOneOut ? "leave-one-out" : "reservation set");
    Table.addRow(std::move(Cells));
  }
  {
    std::vector<std::string> Cells{"geomean (reservation)"};
    for (double G : Data.ModelGeoMean)
      Cells.push_back(G > 0.0 ? TablePrinter::fmt(G) : std::string("-"));
    Cells.push_back("");
    Table.addRow(std::move(Cells));
  }
  std::string Out = "== " + Request.Title + " ==\n";
  switch (Request.Metric) {
  case FigureMetric::StartupPerformance:
  case FigureMetric::ThroughputPerformance:
    Out += "relative performance vs out-of-the-box compiler; "
           "higher bars are better\n";
    break;
  case FigureMetric::CompileTime:
    Out += "relative compilation time vs out-of-the-box compiler; "
           "lower bars are better\n";
    break;
  }
  Out += formatFigureRunsNote(Request.Runs, Request.Iterations);
  Out += Table.render();
  return Out;
}

namespace jitml {
std::string formatFigureRunsNote(unsigned Runs, unsigned Iterations) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "%u runs per configuration, %u iteration(s) per JVM "
                "invocation, 95%% CI\n",
                Runs, Iterations);
  return Buf;
}
} // namespace jitml
