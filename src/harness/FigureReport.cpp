//===- harness/FigureReport.cpp -------------------------------------------===//

#include "harness/FigureReport.h"

#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace jitml;

unsigned jitml::configuredRuns(unsigned Default) {
  const char *Env = std::getenv("JITML_RUNS");
  if (!Env || !*Env)
    return Default;
  long V = std::strtol(Env, nullptr, 10);
  return V >= 1 ? (unsigned)V : Default;
}

FigureData jitml::runFigure(const FigureRequest &Request,
                            const ModelStore::Artifacts &Artifacts) {
  const std::vector<WorkloadSpec> &Suite =
      Request.BenchSuite == Suite::SpecJvm98 ? specJvm98Suite()
                                             : daCapoSuite();
  FigureData Data;
  std::vector<std::vector<double>> GeoInputs(Artifacts.Sets.size());

  for (const WorkloadSpec &Spec : Suite) {
    std::printf("[figure] %s: measuring baseline (%u runs x %u iters)\n",
                Spec.Name.c_str(), Request.Runs, Request.Iterations);
    std::fflush(stdout);
    Program P = buildWorkload(Spec);
    ExperimentConfig EC;
    EC.Iterations = Request.Iterations;
    EC.Runs = Request.Runs;
    EC.Seed = mix64(Spec.Seed ^ 0xf19u);
    Series Baseline = measureSeries(P, EC, nullptr);

    FigureData::Row Row;
    Row.Benchmark = Spec.Name;
    Row.Code = Spec.Code;
    Row.PerModel.resize(Artifacts.Sets.size());
    const ModelSet *LooSet = ModelStore::setExcluding(Artifacts, Spec.Code);
    Row.LeaveOneOut = LooSet != nullptr;

    auto MeasureWith = [&](const ModelSet &Set) {
      LearnedStrategyProvider Provider(Set);
      Series Learned = measureSeries(P, EC, &Provider);
      // Correctness first: the learned compiler must compute the same
      // answers as the baseline.
      assert(Learned.Checksum == Baseline.Checksum &&
             "learned configuration changed program semantics");
      switch (Request.Metric) {
      case FigureMetric::StartupPerformance:
      case FigureMetric::ThroughputPerformance:
        return relativePerformance(Baseline, Learned);
      case FigureMetric::CompileTime:
        return relativeCompileTime(Baseline, Learned);
      }
      return Relative();
    };

    if (LooSet) {
      // Training benchmark: only the fold that excluded it is honest.
      for (size_t S = 0; S < Artifacts.Sets.size(); ++S)
        if (&Artifacts.Sets[S] == LooSet)
          Row.PerModel[S] = MeasureWith(*LooSet);
    } else {
      for (size_t S = 0; S < Artifacts.Sets.size(); ++S) {
        Row.PerModel[S] = MeasureWith(Artifacts.Sets[S]);
        if (Row.PerModel[S].Value > 0.0)
          GeoInputs[S].push_back(Row.PerModel[S].Value);
      }
    }
    Data.Rows.push_back(std::move(Row));
  }
  Data.ModelGeoMean.resize(Artifacts.Sets.size(), 0.0);
  for (size_t S = 0; S < GeoInputs.size(); ++S)
    if (!GeoInputs[S].empty())
      Data.ModelGeoMean[S] = geometricMean(GeoInputs[S]);
  return Data;
}

std::string jitml::formatFigure(const FigureRequest &Request,
                                const FigureData &Data) {
  TablePrinter Table;
  std::vector<std::string> Header{"benchmark"};
  for (size_t S = 0; S < 5; ++S)
    Header.push_back("H" + std::to_string(S + 1));
  Header.push_back("note");
  Table.setHeader(Header);
  for (const FigureData::Row &Row : Data.Rows) {
    std::vector<std::string> Cells{Row.Benchmark};
    for (const Relative &R : Row.PerModel)
      Cells.push_back(R.Value > 0.0 ? TablePrinter::fmtCi(R.Value, R.Ci)
                                    : std::string("-"));
    Cells.push_back(Row.LeaveOneOut ? "leave-one-out" : "reservation set");
    Table.addRow(std::move(Cells));
  }
  {
    std::vector<std::string> Cells{"geomean (reservation)"};
    for (double G : Data.ModelGeoMean)
      Cells.push_back(G > 0.0 ? TablePrinter::fmt(G) : std::string("-"));
    Cells.push_back("");
    Table.addRow(std::move(Cells));
  }
  std::string Out = "== " + Request.Title + " ==\n";
  switch (Request.Metric) {
  case FigureMetric::StartupPerformance:
  case FigureMetric::ThroughputPerformance:
    Out += "relative performance vs out-of-the-box compiler; "
           "higher bars are better\n";
    break;
  case FigureMetric::CompileTime:
    Out += "relative compilation time vs out-of-the-box compiler; "
           "lower bars are better\n";
    break;
  }
  Out += formatFigureRunsNote(Request.Runs, Request.Iterations);
  Out += Table.render();
  return Out;
}

namespace jitml {
std::string formatFigureRunsNote(unsigned Runs, unsigned Iterations) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "%u runs per configuration, %u iteration(s) per JVM "
                "invocation, 95%% CI\n",
                Runs, Iterations);
  return Buf;
}
} // namespace jitml
