//===- bridge/Transports.h - In-process and named-pipe transports -*-C++-*-===//
///
/// \file
/// Two Transport implementations:
///
///  * InProcessPipe — a thread-safe byte queue pair for deterministic
///    tests and for running the model "service" on a thread inside the
///    same process;
///  * FifoTransport — POSIX named pipes, the mechanism the paper used:
///    "the machine-learned model is in a separate process and the
///    communication between Testarossa and the model uses named pipes ...
///    a flexible prototype enabling the machine-learned model to be
///    replaced without any change to the rest of the infrastructure."
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BRIDGE_TRANSPORTS_H
#define JITML_BRIDGE_TRANSPORTS_H

#include "bridge/Message.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

namespace jitml {

/// One direction of an in-process byte stream.
class ByteQueue {
public:
  void push(const uint8_t *Data, size_t Size);
  /// Blocks until \p Size bytes are available or the queue is closed.
  bool pop(uint8_t *Data, size_t Size);
  /// Like pop, but gives up after \p TimeoutMs milliseconds (negative =
  /// wait forever). On Timeout no bytes are consumed.
  IoStatus popFor(uint8_t *Data, size_t Size, int TimeoutMs);
  void close();

private:
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<uint8_t> Bytes;
  bool Closed = false;
};

/// A bidirectional in-process pipe; create a pair with makePair().
class InProcessPipe : public Transport {
public:
  InProcessPipe(std::shared_ptr<ByteQueue> Out, std::shared_ptr<ByteQueue> In)
      : Out(std::move(Out)), In(std::move(In)) {}
  ~InProcessPipe() override;

  bool writeBytes(const uint8_t *Data, size_t Size) override;
  bool readBytes(uint8_t *Data, size_t Size) override;
  IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) override;
  void close();

  /// Creates two connected endpoints (client, server).
  static std::pair<std::unique_ptr<InProcessPipe>,
                   std::unique_ptr<InProcessPipe>>
  makePair();

private:
  std::shared_ptr<ByteQueue> Out;
  std::shared_ptr<ByteQueue> In;
};

/// Named-pipe (FIFO) transport. Each side opens the pair of FIFOs in
/// opposite roles.
class FifoTransport : public Transport {
public:
  ~FifoTransport() override;

  /// Creates the two FIFO files (unlinking stale ones). Returns false when
  /// mkfifo fails.
  static bool createPipes(const std::string &ToServerPath,
                          const std::string &ToClientPath);

  /// Opens as the client (writes ToServer, reads ToClient) or the server.
  /// Open blocks until the peer arrives, exactly like real named pipes.
  static std::unique_ptr<FifoTransport>
  open(const std::string &ToServerPath, const std::string &ToClientPath,
       bool IsServer);

  bool writeBytes(const uint8_t *Data, size_t Size) override;
  bool readBytes(uint8_t *Data, size_t Size) override;
  /// poll(2)-based deadline; a Timeout may leave a partially-consumed
  /// frame in the pipe, so the connection must be abandoned afterwards.
  IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) override;

private:
  FifoTransport(int ReadFd, int WriteFd) : ReadFd(ReadFd), WriteFd(WriteFd) {}
  int ReadFd = -1;
  int WriteFd = -1;
};

} // namespace jitml

#endif // JITML_BRIDGE_TRANSPORTS_H
