//===- bridge/Transports.h - In-process and named-pipe transports -*-C++-*-===//
///
/// \file
/// Two Transport implementations:
///
///  * InProcessPipe — a thread-safe byte queue pair for deterministic
///    tests and for running the model "service" on a thread inside the
///    same process;
///  * FifoTransport — POSIX named pipes, the mechanism the paper used:
///    "the machine-learned model is in a separate process and the
///    communication between Testarossa and the model uses named pipes ...
///    a flexible prototype enabling the machine-learned model to be
///    replaced without any change to the rest of the infrastructure."
///  * SocketTransport / SocketListener — Unix-domain SOCK_STREAM. Unlike a
///    FIFO pair, one listening socket accepts any number of concurrent
///    clients, which is what the multi-client serving daemon (src/serve)
///    is built on. The framed Message protocol is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BRIDGE_TRANSPORTS_H
#define JITML_BRIDGE_TRANSPORTS_H

#include "bridge/Message.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <sys/types.h>

namespace jitml {

/// One direction of an in-process byte stream.
class ByteQueue {
public:
  void push(const uint8_t *Data, size_t Size);
  /// Blocks until \p Size bytes are available or the queue is closed.
  bool pop(uint8_t *Data, size_t Size);
  /// Like pop, but gives up after \p TimeoutMs milliseconds (negative =
  /// wait forever). On Timeout no bytes are consumed.
  IoStatus popFor(uint8_t *Data, size_t Size, int TimeoutMs);
  void close();

private:
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<uint8_t> Bytes;
  bool Closed = false;
};

/// A bidirectional in-process pipe; create a pair with makePair().
class InProcessPipe : public Transport {
public:
  InProcessPipe(std::shared_ptr<ByteQueue> Out, std::shared_ptr<ByteQueue> In)
      : Out(std::move(Out)), In(std::move(In)) {}
  ~InProcessPipe() override;

  bool writeBytes(const uint8_t *Data, size_t Size) override;
  bool readBytes(uint8_t *Data, size_t Size) override;
  IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) override;
  void close();

  /// Creates two connected endpoints (client, server).
  static std::pair<std::unique_ptr<InProcessPipe>,
                   std::unique_ptr<InProcessPipe>>
  makePair();

private:
  std::shared_ptr<ByteQueue> Out;
  std::shared_ptr<ByteQueue> In;
};

/// Named-pipe (FIFO) transport. Each side opens the pair of FIFOs in
/// opposite roles.
class FifoTransport : public Transport {
public:
  ~FifoTransport() override;

  /// Creates the two FIFO files (unlinking stale ones). Returns false when
  /// mkfifo fails.
  static bool createPipes(const std::string &ToServerPath,
                          const std::string &ToClientPath);

  /// Opens as the client (writes ToServer, reads ToClient) or the server.
  /// Open blocks until the peer arrives, exactly like real named pipes.
  static std::unique_ptr<FifoTransport>
  open(const std::string &ToServerPath, const std::string &ToClientPath,
       bool IsServer);

  bool writeBytes(const uint8_t *Data, size_t Size) override;
  bool readBytes(uint8_t *Data, size_t Size) override;
  /// poll(2)-based deadline; a Timeout may leave a partially-consumed
  /// frame in the pipe, so the connection must be abandoned afterwards.
  IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) override;

private:
  FifoTransport(int ReadFd, int WriteFd) : ReadFd(ReadFd), WriteFd(WriteFd) {}
  int ReadFd = -1;
  int WriteFd = -1;
};

/// Unix-domain stream socket endpoint. Client side connects with
/// connect(); the server side gets one per accepted connection from
/// SocketListener::accept(). Writes use MSG_NOSIGNAL so a client that
/// vanished mid-reply surfaces as a failed write, not a fatal SIGPIPE.
class SocketTransport : public Transport {
public:
  ~SocketTransport() override;

  /// Connects to the daemon listening at \p Path; nullptr when nobody is
  /// listening (the resilient client's factory treats that as "service
  /// unreachable right now").
  static std::unique_ptr<SocketTransport> connect(const std::string &Path);

  bool writeBytes(const uint8_t *Data, size_t Size) override;
  bool readBytes(uint8_t *Data, size_t Size) override;
  /// poll(2)-based deadline; a Timeout may leave a partially-consumed
  /// frame in the stream, so the connection must be abandoned afterwards.
  IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) override;

  /// One read(2) of whatever is available (up to \p Cap bytes). For event
  /// loops that poll the descriptor themselves: returns the byte count,
  /// 0 on EOF, -1 on error. Blocks only when the socket holds no data, so
  /// call it after poll() reported readability.
  ssize_t readSome(uint8_t *Data, size_t Cap);

  /// Raw descriptor for poll()-driven servers.
  int fd() const { return Fd; }

private:
  friend class SocketListener;
  explicit SocketTransport(int Fd) : Fd(Fd) {}
  int Fd = -1;
};

/// The accepting side of a Unix-domain socket. Owns the listening
/// descriptor and unlinks the socket path on close.
class SocketListener {
public:
  ~SocketListener();

  /// Binds and listens at \p Path (unlinking a stale socket file first);
  /// nullptr when bind/listen fails.
  static std::unique_ptr<SocketListener> listen(const std::string &Path,
                                                int Backlog = 64);

  /// Accepts one pending connection; nullptr on failure (including the
  /// forced "serve.accept.fail" fault, which still consumes the pending
  /// connection so an accept storm cannot wedge the poll loop).
  std::unique_ptr<SocketTransport> accept();

  int fd() const { return Fd; }
  const std::string &path() const { return Path; }
  void close();

private:
  SocketListener(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}
  int Fd = -1;
  std::string Path;
};

} // namespace jitml

#endif // JITML_BRIDGE_TRANSPORTS_H
