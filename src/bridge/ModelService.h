//===- bridge/ModelService.h - Model server and compiler client -*- C++ -*-===//
///
/// \file
/// The two endpoints of Figure 5's compiler/model integration:
///
///  * ModelServer — wraps a prediction backend and answers Features
///    requests with Modifier replies until Bye/EOF. The backend interface
///    is what makes models swappable "without changes to the compiler".
///  * ModelClient — the Strategy Control side: ships the raw feature
///    vector and the selected optimization level, gets back the 58-bit
///    modifier to install.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BRIDGE_MODELSERVICE_H
#define JITML_BRIDGE_MODELSERVICE_H

#include "bridge/Transports.h"
#include "features/FeatureVector.h"

#include <optional>

namespace jitml {

/// Anything that can map (level, raw features) to a modifier bit pattern.
class ModelBackend {
public:
  virtual ~ModelBackend();
  /// Returns the modifier bits, or std::nullopt when no model covers the
  /// level (the caller then falls back to the null modifier).
  virtual std::optional<uint64_t>
  predictModifier(OptLevel Level, const std::vector<double> &RawFeatures) = 0;
};

/// What one serveModel session answered, broken down by outcome — a
/// Modifier reply is not the same thing as an Error reply ("no model for
/// level"), and callers sizing a deployment need to see the difference.
struct ServeStats {
  uint64_t Served = 0;       ///< Features answered with a real Modifier
  uint64_t Degraded = 0;     ///< Features answered with Error / has=0
  uint64_t HelloRejects = 0; ///< Hello frames with a mismatched version

  uint64_t answered() const { return Served + Degraded; }
};

/// Serves one connection: replies to Hello and Features, stops on Bye or
/// transport EOF. Hello frames announcing a protocol version other than
/// ProtocolVersion are rejected with an Error reply. The stats are also
/// mirrored process-wide as bridge.served / bridge.degraded /
/// bridge.hello_rejects counters.
ServeStats serveModel(Transport &T, ModelBackend &Backend);

class ModelClient {
public:
  explicit ModelClient(Transport &T) : T(T) {}

  /// Performs the Hello handshake; false on protocol mismatch.
  bool hello();

  /// Requests a modifier for (Level, Features). std::nullopt on transport
  /// failure or a server-side Error reply.
  std::optional<uint64_t> requestModifier(OptLevel Level,
                                          const FeatureVector &Features);

  /// Polite shutdown.
  void bye();

private:
  Transport &T;
};

} // namespace jitml

#endif // JITML_BRIDGE_MODELSERVICE_H
