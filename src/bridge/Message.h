//===- bridge/Message.h - Compiler <-> model protocol -----------*- C++ -*-===//
///
/// \file
/// The "lean and versatile communication protocol that integrates the
/// machine-learned models with the compiler and allows different models to
/// be easily swapped without changes to the compiler" (paper contribution
/// 4). Messages are length-prefixed frames over a byte-stream transport:
///
///   frame  := length u32le | type u8 | payload
///   Hello  := version u8
///   Features := level u8 | count u16le | count x f64le (raw features)
///   Modifier := bits u64le
///   Error  := utf-8 text
///   Bye    := (empty)
///   FeatureBatch := n u16le | n x (level u8 | count u16le | count x f64le)
///   ModifierBatch := n u16le | n x (has u8 | bits u64le)
///
/// FeatureBatch/ModifierBatch let one round trip serve a whole backlog of
/// compilations (the async pipeline's workers dequeue in batches). The
/// reply carries exactly one entry per request entry, in order; has=0
/// means "no model for this entry" and the compiler falls back to the
/// unmodified plan for that method only.
///
/// The model side owns the scaling file and the label lookup table, so the
/// compiler ships raw feature values and receives a ready-to-install
/// 58-bit modifier (section 7).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BRIDGE_MESSAGE_H
#define JITML_BRIDGE_MESSAGE_H

#include "opt/Plan.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

/// The protocol version both sides announce in Hello. A server rejects a
/// mismatched client with an Error reply instead of silently proceeding.
constexpr uint8_t ProtocolVersion = 1;

enum class MsgType : uint8_t {
  Hello = 1,
  Features = 2,
  Modifier = 3,
  Error = 4,
  Bye = 5,
  FeatureBatch = 6,
  ModifierBatch = 7,
};

/// One entry of a FeatureBatch request.
struct BatchFeatureEntry {
  OptLevel Level = OptLevel::Cold;
  std::vector<double> FeatureValues;
};

/// One entry of a ModifierBatch reply.
struct BatchModifierEntry {
  bool HasModifier = false; ///< false: no model covers this entry
  uint64_t Bits = 0;
};

/// Largest accepted FeatureBatch entry count (well under the 1 MiB frame
/// cap even at 71 features per entry).
constexpr size_t MaxBatchEntries = 256;

struct Message {
  MsgType Type = MsgType::Bye;
  // Payload variants (valid per Type).
  uint8_t Version = 1;                ///< Hello
  OptLevel Level = OptLevel::Cold;    ///< Features
  std::vector<double> FeatureValues;  ///< Features
  uint64_t ModifierBits = 0;          ///< Modifier
  std::string Text;                   ///< Error
  std::vector<BatchFeatureEntry> BatchFeatures;   ///< FeatureBatch
  std::vector<BatchModifierEntry> BatchModifiers; ///< ModifierBatch
};

/// Result of a deadline-aware read.
enum class IoStatus : uint8_t {
  Ok,      ///< all requested bytes delivered
  Timeout, ///< deadline expired first (stream may be mid-frame!)
  Closed,  ///< EOF or broken connection
};

/// Byte-stream transport. Implementations must deliver bytes in order and
/// block until the requested amount is available (or the peer goes away).
class Transport {
public:
  virtual ~Transport();
  /// Writes all bytes; false on a broken connection.
  virtual bool writeBytes(const uint8_t *Data, size_t Size) = 0;
  /// Reads exactly \p Size bytes; false on EOF / broken connection.
  virtual bool readBytes(uint8_t *Data, size_t Size) = 0;
  /// Reads exactly \p Size bytes waiting at most \p TimeoutMs milliseconds
  /// (negative = wait forever). After a Timeout the stream may have been
  /// consumed partway through a frame, so callers must treat the
  /// connection as unusable. The base implementation ignores the deadline
  /// (block-forever transports).
  virtual IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs);
};

/// Decorator that counts bytes crossing any transport — the bridge's
/// "bytes on the wire" counters.
class CountingTransport : public Transport {
public:
  explicit CountingTransport(Transport &Inner) : Inner(Inner) {}

  bool writeBytes(const uint8_t *Data, size_t Size) override;
  bool readBytes(uint8_t *Data, size_t Size) override;
  IoStatus readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) override;

  uint64_t bytesSent() const { return BytesSent; }
  uint64_t bytesReceived() const { return BytesReceived; }

private:
  Transport &Inner;
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;
};

/// Result of receiving one frame.
enum class RecvStatus : uint8_t {
  Ok,        ///< a well-formed message was decoded
  Timeout,   ///< deadline expired; the stream is no longer frame-aligned
  Closed,    ///< EOF, transport failure, or an unframeable length prefix
  Malformed, ///< the frame was read in full but its content is invalid;
             ///< the stream is still frame-aligned, so a server may reply
             ///< with an Error message and keep the session alive
};

/// Frames and sends \p M. Returns false on transport failure.
bool sendMessage(Transport &T, const Message &M);

/// Decodes one fully-read frame payload (everything after the u32 length
/// prefix). Returns Ok or Malformed — never Timeout/Closed, since the
/// bytes are already in hand. Exposed for event-loop servers that
/// reassemble frames from a byte buffer instead of blocking in
/// recvMessage.
RecvStatus decodeMessagePayload(const std::vector<uint8_t> &Payload,
                                Message &Out);

/// Serializes \p M into a complete frame (length prefix included),
/// appending to \p Out. The writing half of decodeMessagePayload for
/// buffered servers.
void encodeMessageFrame(const Message &M, std::vector<uint8_t> &Out);

/// Receives one frame. Returns false on EOF, transport failure, or a
/// malformed frame.
bool recvMessage(Transport &T, Message &Out);

/// Deadline-aware receive; \p TimeoutMs bounds the whole frame (negative =
/// wait forever). See RecvStatus for how failures are classified.
RecvStatus recvMessageFor(Transport &T, Message &Out, int TimeoutMs);

} // namespace jitml

#endif // JITML_BRIDGE_MESSAGE_H
