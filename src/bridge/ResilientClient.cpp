//===- bridge/ResilientClient.cpp -----------------------------------------===//

#include "bridge/ResilientClient.h"

#include "support/FaultInjection.h"
#include "support/Statistics.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace jitml;

std::vector<std::pair<std::string, uint64_t>> BridgeCounters::rows() const {
  return {
      {"requests", Requests},         {"cacheHits", CacheHits},
      {"cacheFlushes", CacheFlushes}, {"wireRequests", WireRequests},
      {"timeouts", Timeouts},         {"retries", Retries},
      {"reconnects", Reconnects},     {"errorReplies", ErrorReplies},
      {"fallbacks", Fallbacks},       {"batchRequests", BatchRequests},
      {"batchItems", BatchItems},     {"bytesSent", BytesSent},
      {"bytesReceived", BytesReceived},
  };
}

std::string BridgeCounters::toText() const {
  std::vector<CounterRow> Rows;
  for (const auto &[Name, Value] : rows())
    Rows.push_back({Name, Value});
  return formatCounterTable(Rows);
}

namespace {

/// Cache key: the feature hash stirred with the level so equal vectors at
/// different levels occupy distinct slots.
uint64_t cacheKey(OptLevel Level, uint64_t FeatureHash) {
  return FeatureHash ^ (0x9e3779b97f4a7c15ULL * ((uint64_t)Level + 1));
}

void realSleep(int Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

} // namespace

void ResilientModelClient::resolveTelemetry() {
  MetricRegistry &R = MetricRegistry::global();
  Tel.Requests = &R.counter("bridge.requests");
  Tel.CacheHits = &R.counter("bridge.cache_hits");
  Tel.Timeouts = &R.counter("bridge.timeouts");
  Tel.Retries = &R.counter("bridge.retries");
  Tel.Fallbacks = &R.counter("bridge.fallbacks");
  Tel.ErrorReplies = &R.counter("bridge.error_replies");
  Tel.WireRequests = &R.counter("bridge.wire_requests");
  Tel.RequestUs = &R.histogram("bridge.request");
  Tel.BatchUs = &R.histogram("bridge.batch");
}

ResilientModelClient::ResilientModelClient(std::unique_ptr<Transport> T,
                                           Config C)
    : Cfg(C), Owned(std::move(T)), Sleep(realSleep) {
  resolveTelemetry();
  if (Owned)
    Wire = std::make_unique<CountingTransport>(*Owned);
  else
    Poisoned = true;
}

ResilientModelClient::ResilientModelClient(TransportFactory F, Config C)
    : Cfg(C), Factory(std::move(F)), Sleep(realSleep) {
  resolveTelemetry();
}

ResilientModelClient::~ResilientModelClient() { bye(); }

bool ResilientModelClient::usable() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return !Poisoned && (Wire != nullptr || Factory != nullptr);
}

BridgeCounters ResilientModelClient::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  BridgeCounters C = Count;
  if (Wire) {
    C.BytesSent += Wire->bytesSent();
    C.BytesReceived += Wire->bytesReceived();
  }
  return C;
}

void ResilientModelClient::dropConnection() {
  if (Wire) {
    Count.BytesSent += Wire->bytesSent();
    Count.BytesReceived += Wire->bytesReceived();
  }
  Wire.reset();
  Owned.reset();
  HandshakeDone = false;
  if (!Factory)
    Poisoned = true; // nothing to reconnect with
}

bool ResilientModelClient::ensureConnected() {
  if (Poisoned)
    return false;
  if (!Wire) {
    if (!Factory)
      return false;
    if (JITML_FAULT_POINT("client.connect.fail"))
      return false; // simulated reconnect failure; retry loop handles it
    Owned = Factory();
    if (!Owned)
      return false;
    Wire = std::make_unique<CountingTransport>(*Owned);
    HandshakeDone = false;
    ++Count.Reconnects;
  }
  if (!HandshakeDone) {
    Message Hello;
    Hello.Type = MsgType::Hello;
    Hello.Version = 1;
    if (!sendMessage(*Wire, Hello)) {
      dropConnection();
      return false;
    }
    Message Reply;
    RecvStatus S = recvMessageFor(*Wire, Reply, Cfg.RequestTimeoutMs);
    if (S != RecvStatus::Ok || Reply.Type != MsgType::Hello ||
        Reply.Version != 1) {
      if (S == RecvStatus::Timeout) {
        ++Count.Timeouts;
        Tel.Timeouts->add();
      }
      dropConnection();
      return false;
    }
    HandshakeDone = true;
  }
  return true;
}

bool ResilientModelClient::tryOnce(OptLevel Level,
                                   const FeatureVector &Features,
                                   std::optional<uint64_t> &Answer) {
  Message M;
  M.Type = MsgType::Features;
  M.Level = Level;
  M.FeatureValues.reserve(NumFeatures);
  for (unsigned I = 0; I < NumFeatures; ++I)
    M.FeatureValues.push_back((double)Features.get(I));
  ++Count.WireRequests;
  Tel.WireRequests->add();
  if (!sendMessage(*Wire, M)) {
    dropConnection();
    return false;
  }
  Message Reply;
  RecvStatus S = JITML_FAULT_POINT("client.request.timeout")
                     ? RecvStatus::Timeout
                     : recvMessageFor(*Wire, Reply, Cfg.RequestTimeoutMs);
  if (S == RecvStatus::Timeout) {
    ++Count.Timeouts;
    Tel.Timeouts->add();
    dropConnection(); // the stream may be mid-frame: unusable
    return false;
  }
  if (S != RecvStatus::Ok) {
    dropConnection();
    return false;
  }
  if (Reply.Type == MsgType::Modifier) {
    Answer = Reply.ModifierBits;
    return true;
  }
  if (Reply.Type == MsgType::Error) {
    ++Count.ErrorReplies;
    Tel.ErrorReplies->add();
    Answer = std::nullopt; // definitive "no model" answer
    return true;
  }
  // A reply that is neither Modifier nor Error means the peer is not
  // speaking our dialect; stop trusting the connection.
  dropConnection();
  return false;
}

void ResilientModelClient::cacheInsert(uint64_t Key,
                                       std::optional<uint64_t> Answer) {
  if (Cfg.CacheCapacity == 0)
    return;
  if (!Answer && !Cfg.CacheErrorReplies)
    return;
  if (Cache.size() >= Cfg.CacheCapacity) {
    Cache.clear(); // wholesale flush keeps the bound without LRU bookkeeping
    ++Count.CacheFlushes;
  }
  Cache.emplace(Key, Answer);
}

std::optional<uint64_t>
ResilientModelClient::requestModifier(OptLevel Level,
                                      const FeatureVector &Features) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t StartUs = telemetryNowUs();
  std::optional<uint64_t> Answer = requestModifierLocked(Level, Features);
  uint64_t DurUs = telemetryNowUs() - StartUs;
  Tel.RequestUs->record(DurUs);
  if (TraceEmitter::global().enabled()) {
    TraceEvent E;
    E.Stage = "bridge_request";
    E.StartUs = StartUs;
    E.DurUs = DurUs;
    E.Level = (int)Level;
    E.Detail = Answer ? "modifier" : "fallback";
    E.Ok = Answer.has_value();
    TraceEmitter::global().record(E);
  }
  return Answer;
}

std::optional<uint64_t>
ResilientModelClient::requestModifierLocked(OptLevel Level,
                                            const FeatureVector &Features) {
  ++Count.Requests;
  Tel.Requests->add();
  uint64_t Key = cacheKey(Level, Features.hash());
  if (Cfg.CacheCapacity != 0) {
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      ++Count.CacheHits;
      Tel.CacheHits->add();
      if (!It->second)
        ++Count.Fallbacks, Tel.Fallbacks->add();
      return It->second;
    }
  }

  // Forced fallback: behave exactly as if every attempt failed, without
  // touching the wire — the caller must degrade to the default plan.
  if (JITML_FAULT_POINT("client.request.fallback")) {
    ++Count.Fallbacks, Tel.Fallbacks->add();
    return std::nullopt;
  }

  double Backoff = (double)Cfg.InitialBackoffMs;
  for (unsigned Attempt = 0; Attempt < Cfg.MaxAttempts; ++Attempt) {
    if (Attempt > 0) {
      if (Poisoned)
        break; // no way back: don't burn time sleeping
      ++Count.Retries;
      Tel.Retries->add();
      if (Backoff >= 1.0 && Sleep)
        Sleep((int)Backoff);
      Backoff *= Cfg.BackoffMultiplier;
    }
    if (!ensureConnected())
      continue;
    std::optional<uint64_t> Answer;
    if (tryOnce(Level, Features, Answer)) {
      cacheInsert(Key, Answer);
      if (!Answer)
        ++Count.Fallbacks, Tel.Fallbacks->add();
      return Answer;
    }
  }
  ++Count.Fallbacks, Tel.Fallbacks->add();
  return std::nullopt;
}

bool ResilientModelClient::tryBatchOnce(
    const std::vector<BatchRequest> &Items, const std::vector<size_t> &Misses,
    std::vector<std::optional<uint64_t>> &Answers) {
  Message M;
  M.Type = MsgType::FeatureBatch;
  M.BatchFeatures.resize(Misses.size());
  for (size_t I = 0; I < Misses.size(); ++I) {
    BatchFeatureEntry &E = M.BatchFeatures[I];
    E.Level = Items[Misses[I]].Level;
    E.FeatureValues.reserve(NumFeatures);
    for (unsigned F = 0; F < NumFeatures; ++F)
      E.FeatureValues.push_back((double)Items[Misses[I]].Features.get(F));
  }
  ++Count.WireRequests;
  Tel.WireRequests->add();
  if (!sendMessage(*Wire, M)) {
    dropConnection();
    return false;
  }
  Message Reply;
  RecvStatus S = JITML_FAULT_POINT("client.request.timeout")
                     ? RecvStatus::Timeout
                     : recvMessageFor(*Wire, Reply, Cfg.RequestTimeoutMs);
  if (S == RecvStatus::Timeout) {
    ++Count.Timeouts;
    Tel.Timeouts->add();
    dropConnection(); // the stream may be mid-frame: unusable
    return false;
  }
  if (S != RecvStatus::Ok) {
    dropConnection();
    return false;
  }
  if (Reply.Type == MsgType::ModifierBatch &&
      Reply.BatchModifiers.size() == Misses.size()) {
    for (size_t I = 0; I < Misses.size(); ++I) {
      const BatchModifierEntry &E = Reply.BatchModifiers[I];
      Answers[Misses[I]] =
          E.HasModifier ? std::optional<uint64_t>(E.Bits) : std::nullopt;
    }
    return true;
  }
  if (Reply.Type == MsgType::Error) {
    // Definitive server-side refusal: every entry falls back.
    ++Count.ErrorReplies;
    Tel.ErrorReplies->add();
    return true;
  }
  // Wrong reply type or wrong entry count: the peer is not speaking our
  // dialect; stop trusting the connection.
  dropConnection();
  return false;
}

std::vector<std::optional<uint64_t>> ResilientModelClient::requestModifierBatch(
    const std::vector<BatchRequest> &Items) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t StartUs = telemetryNowUs();
  ++Count.BatchRequests;
  Count.BatchItems += Items.size();
  std::vector<std::optional<uint64_t>> Answers(Items.size());

  // Answer what we can from the prediction cache; collect the misses.
  std::vector<size_t> Misses;
  std::vector<uint64_t> Keys(Items.size());
  for (size_t I = 0; I < Items.size(); ++I) {
    ++Count.Requests;
  Tel.Requests->add();
    Keys[I] = cacheKey(Items[I].Level, Items[I].Features.hash());
    if (Cfg.CacheCapacity != 0) {
      auto It = Cache.find(Keys[I]);
      if (It != Cache.end()) {
        ++Count.CacheHits;
        Tel.CacheHits->add();
        if (!It->second)
          ++Count.Fallbacks, Tel.Fallbacks->add();
        Answers[I] = It->second;
        continue;
      }
    }
    Misses.push_back(I);
  }

  // Forced fallback: skip the wire entirely so every miss degrades to the
  // default plan, as if the model service were unreachable.
  if (!Misses.empty() && JITML_FAULT_POINT("client.request.fallback")) {
    for (size_t I : Misses)
      ++Count.Fallbacks, Tel.Fallbacks->add();
    Misses.clear();
  }

  // Ship the misses in protocol-sized chunks, each with the single-request
  // retry/backoff budget.
  for (size_t Start = 0; Start < Misses.size(); Start += MaxBatchEntries) {
    std::vector<size_t> Chunk(
        Misses.begin() + (std::ptrdiff_t)Start,
        Misses.begin() +
            (std::ptrdiff_t)std::min(Start + MaxBatchEntries, Misses.size()));
    bool Answered = false;
    double Backoff = (double)Cfg.InitialBackoffMs;
    for (unsigned Attempt = 0; Attempt < Cfg.MaxAttempts; ++Attempt) {
      if (Attempt > 0) {
        if (Poisoned)
          break;
        ++Count.Retries;
      Tel.Retries->add();
        if (Backoff >= 1.0 && Sleep)
          Sleep((int)Backoff);
        Backoff *= Cfg.BackoffMultiplier;
      }
      if (!ensureConnected())
        continue;
      if (tryBatchOnce(Items, Chunk, Answers)) {
        Answered = true;
        break;
      }
    }
    for (size_t I : Chunk) {
      if (Answered)
        cacheInsert(Keys[I], Answers[I]);
      if (!Answers[I])
        ++Count.Fallbacks, Tel.Fallbacks->add();
    }
  }
  uint64_t DurUs = telemetryNowUs() - StartUs;
  Tel.BatchUs->record(DurUs);
  if (TraceEmitter::global().enabled()) {
    TraceEvent E;
    E.Stage = "bridge_batch";
    E.StartUs = StartUs;
    E.DurUs = DurUs;
    E.Items = (int64_t)Items.size();
    TraceEmitter::global().record(E);
  }
  return Answers;
}

void ResilientModelClient::bye() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Wire)
    return;
  Message M;
  M.Type = MsgType::Bye;
  sendMessage(*Wire, M);
  Count.BytesSent += Wire->bytesSent();
  Count.BytesReceived += Wire->bytesReceived();
  Wire.reset();
  Owned.reset();
  HandshakeDone = false;
  if (!Factory)
    Poisoned = true; // no way to reconnect: later requests fall back fast
}