//===- bridge/ModelService.cpp --------------------------------------------===//

#include "bridge/ModelService.h"

using namespace jitml;

ModelBackend::~ModelBackend() = default;

uint64_t jitml::serveModel(Transport &T, ModelBackend &Backend) {
  uint64_t Served = 0;
  Message In;
  for (;;) {
    RecvStatus S = recvMessageFor(T, In, /*TimeoutMs=*/-1);
    if (S == RecvStatus::Malformed) {
      // The frame was consumed whole, so the stream is still aligned:
      // report the problem and keep serving instead of dropping the
      // session (and with it every later compilation of this client).
      Message Reply;
      Reply.Type = MsgType::Error;
      Reply.Text = "malformed frame";
      if (!sendMessage(T, Reply))
        return Served;
      continue;
    }
    if (S != RecvStatus::Ok)
      return Served; // EOF, broken pipe, or unframeable garbage
    switch (In.Type) {
    case MsgType::Hello: {
      Message Reply;
      Reply.Type = MsgType::Hello;
      Reply.Version = 1;
      if (!sendMessage(T, Reply))
        return Served;
      break;
    }
    case MsgType::Features: {
      if (In.FeatureValues.size() != NumFeatures) {
        // A wrong-dimension vector would silently index past the scaling
        // parameters the backend renormalizes with; reject it explicitly.
        Message Reply;
        Reply.Type = MsgType::Error;
        Reply.Text = "feature count mismatch";
        if (!sendMessage(T, Reply))
          return Served;
        break;
      }
      std::optional<uint64_t> Bits =
          Backend.predictModifier(In.Level, In.FeatureValues);
      Message Reply;
      if (Bits) {
        Reply.Type = MsgType::Modifier;
        Reply.ModifierBits = *Bits;
      } else {
        Reply.Type = MsgType::Error;
        Reply.Text = "no model for level";
      }
      if (!sendMessage(T, Reply))
        return Served;
      ++Served;
      break;
    }
    case MsgType::FeatureBatch: {
      // One reply entry per request entry, in order. A bad entry (wrong
      // feature count) or an uncovered level degrades that entry alone to
      // has=0; the rest of the batch still gets real predictions.
      Message Reply;
      Reply.Type = MsgType::ModifierBatch;
      Reply.BatchModifiers.resize(In.BatchFeatures.size());
      for (size_t I = 0; I < In.BatchFeatures.size(); ++I) {
        const BatchFeatureEntry &E = In.BatchFeatures[I];
        if (E.FeatureValues.size() != NumFeatures)
          continue; // HasModifier stays false
        std::optional<uint64_t> Bits =
            Backend.predictModifier(E.Level, E.FeatureValues);
        if (Bits) {
          Reply.BatchModifiers[I].HasModifier = true;
          Reply.BatchModifiers[I].Bits = *Bits;
          ++Served;
        }
      }
      if (!sendMessage(T, Reply))
        return Served;
      break;
    }
    case MsgType::Bye:
      return Served;
    default: {
      Message Reply;
      Reply.Type = MsgType::Error;
      Reply.Text = "unexpected message";
      if (!sendMessage(T, Reply))
        return Served;
      break;
    }
    }
  }
  return Served;
}

bool ModelClient::hello() {
  Message M;
  M.Type = MsgType::Hello;
  M.Version = 1;
  if (!sendMessage(T, M))
    return false;
  Message Reply;
  return recvMessage(T, Reply) && Reply.Type == MsgType::Hello &&
         Reply.Version == 1;
}

std::optional<uint64_t>
ModelClient::requestModifier(OptLevel Level, const FeatureVector &Features) {
  Message M;
  M.Type = MsgType::Features;
  M.Level = Level;
  M.FeatureValues.reserve(NumFeatures);
  for (unsigned I = 0; I < NumFeatures; ++I)
    M.FeatureValues.push_back((double)Features.get(I));
  if (!sendMessage(T, M))
    return std::nullopt;
  Message Reply;
  if (!recvMessage(T, Reply) || Reply.Type != MsgType::Modifier)
    return std::nullopt;
  return Reply.ModifierBits;
}

void ModelClient::bye() {
  Message M;
  M.Type = MsgType::Bye;
  sendMessage(T, M);
}
