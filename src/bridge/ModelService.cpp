//===- bridge/ModelService.cpp --------------------------------------------===//

#include "bridge/ModelService.h"

#include "support/Telemetry.h"

using namespace jitml;

ModelBackend::~ModelBackend() = default;

ServeStats jitml::serveModel(Transport &T, ModelBackend &Backend) {
  MetricRegistry &R = MetricRegistry::global();
  TelemetryCounter &ServedCtr = R.counter("bridge.served");
  TelemetryCounter &DegradedCtr = R.counter("bridge.degraded");
  TelemetryCounter &HelloRejectCtr = R.counter("bridge.hello_rejects");
  ServeStats Stats;
  Message In;
  for (;;) {
    RecvStatus S = recvMessageFor(T, In, /*TimeoutMs=*/-1);
    if (S == RecvStatus::Malformed) {
      // The frame was consumed whole, so the stream is still aligned:
      // report the problem and keep serving instead of dropping the
      // session (and with it every later compilation of this client).
      Message Reply;
      Reply.Type = MsgType::Error;
      Reply.Text = "malformed frame";
      if (!sendMessage(T, Reply))
        return Stats;
      continue;
    }
    if (S != RecvStatus::Ok)
      return Stats; // EOF, broken pipe, or unframeable garbage
    switch (In.Type) {
    case MsgType::Hello: {
      Message Reply;
      if (In.Version != ProtocolVersion) {
        // A silent "Version=1" answer to a v2 client would let the session
        // proceed on a dialect neither side actually speaks; reject it.
        ++Stats.HelloRejects;
        HelloRejectCtr.add();
        Reply.Type = MsgType::Error;
        Reply.Text = "unsupported protocol version";
      } else {
        Reply.Type = MsgType::Hello;
        Reply.Version = ProtocolVersion;
      }
      if (!sendMessage(T, Reply))
        return Stats;
      break;
    }
    case MsgType::Features: {
      if (In.FeatureValues.size() != NumFeatures) {
        // A wrong-dimension vector would silently index past the scaling
        // parameters the backend renormalizes with; reject it explicitly.
        Message Reply;
        Reply.Type = MsgType::Error;
        Reply.Text = "feature count mismatch";
        if (!sendMessage(T, Reply))
          return Stats;
        break;
      }
      std::optional<uint64_t> Bits =
          Backend.predictModifier(In.Level, In.FeatureValues);
      Message Reply;
      if (Bits) {
        Reply.Type = MsgType::Modifier;
        Reply.ModifierBits = *Bits;
        ++Stats.Served;
        ServedCtr.add();
      } else {
        Reply.Type = MsgType::Error;
        Reply.Text = "no model for level";
        ++Stats.Degraded;
        DegradedCtr.add();
      }
      if (!sendMessage(T, Reply))
        return Stats;
      break;
    }
    case MsgType::FeatureBatch: {
      // One reply entry per request entry, in order. A bad entry (wrong
      // feature count) or an uncovered level degrades that entry alone to
      // has=0; the rest of the batch still gets real predictions.
      Message Reply;
      Reply.Type = MsgType::ModifierBatch;
      Reply.BatchModifiers.resize(In.BatchFeatures.size());
      for (size_t I = 0; I < In.BatchFeatures.size(); ++I) {
        const BatchFeatureEntry &E = In.BatchFeatures[I];
        if (E.FeatureValues.size() != NumFeatures) {
          ++Stats.Degraded; // HasModifier stays false
          DegradedCtr.add();
          continue;
        }
        std::optional<uint64_t> Bits =
            Backend.predictModifier(E.Level, E.FeatureValues);
        if (Bits) {
          Reply.BatchModifiers[I].HasModifier = true;
          Reply.BatchModifiers[I].Bits = *Bits;
          ++Stats.Served;
          ServedCtr.add();
        } else {
          ++Stats.Degraded;
          DegradedCtr.add();
        }
      }
      if (!sendMessage(T, Reply))
        return Stats;
      break;
    }
    case MsgType::Bye:
      return Stats;
    default: {
      Message Reply;
      Reply.Type = MsgType::Error;
      Reply.Text = "unexpected message";
      if (!sendMessage(T, Reply))
        return Stats;
      break;
    }
    }
  }
  return Stats;
}

bool ModelClient::hello() {
  Message M;
  M.Type = MsgType::Hello;
  M.Version = ProtocolVersion;
  if (!sendMessage(T, M))
    return false;
  Message Reply;
  return recvMessage(T, Reply) && Reply.Type == MsgType::Hello &&
         Reply.Version == ProtocolVersion;
}

std::optional<uint64_t>
ModelClient::requestModifier(OptLevel Level, const FeatureVector &Features) {
  Message M;
  M.Type = MsgType::Features;
  M.Level = Level;
  M.FeatureValues.reserve(NumFeatures);
  for (unsigned I = 0; I < NumFeatures; ++I)
    M.FeatureValues.push_back((double)Features.get(I));
  if (!sendMessage(T, M))
    return std::nullopt;
  Message Reply;
  if (!recvMessage(T, Reply) || Reply.Type != MsgType::Modifier)
    return std::nullopt;
  return Reply.ModifierBits;
}

void ModelClient::bye() {
  Message M;
  M.Type = MsgType::Bye;
  sendMessage(T, M);
}
