//===- bridge/ResilientClient.h - Hardened model client ---------*- C++ -*-===//
///
/// \file
/// Production wrapper around the bridge protocol's client side. The plain
/// ModelClient blocks forever on a slow or dead model service; in a JIT
/// that means a hung compilation. This client adds:
///
///  * a per-request deadline (the whole round trip, not per syscall),
///  * bounded retry with exponential backoff over a reconnectable
///    transport factory,
///  * graceful degradation — when the service cannot answer in time the
///    caller receives std::nullopt and compiles with the unmodified
///    hand-tuned plan,
///  * a prediction cache keyed by (OptLevel, FeatureVector::hash()) so
///    repeated compilations of equal feature vectors (common under the
///    collection mode's recompile-every-N policy) skip the round trip,
///  * counters for requests, cache hits, wire round trips, timeouts,
///    retries, fallbacks and bytes on the wire, so experiments can report
///    model-service overhead.
///
/// Timeout semantics: a deadline can expire mid-frame, leaving the byte
/// stream unframeable, so a timed-out (or broken) connection is dropped
/// and re-established through the factory before the next attempt. When
/// the client owns a single non-reconnectable transport, the first
/// failure poisons it and every later request falls back immediately —
/// degraded but never hung.
///
/// Thread safety: one client may be shared by the async pipeline's worker
/// threads. All public entry points serialize on an internal mutex — the
/// protocol is strictly request/reply over a single connection, so
/// serialization is the correct concurrency model (interleaved frames
/// from two threads would corrupt the stream). Workers that want
/// concurrency across a backlog should use requestModifierBatch, which
/// amortizes one lock/round trip over many predictions.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_BRIDGE_RESILIENTCLIENT_H
#define JITML_BRIDGE_RESILIENTCLIENT_H

#include "bridge/ModelService.h"
#include "support/Telemetry.h"

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace jitml {

/// Monotonic counters describing one client's bridge traffic.
struct BridgeCounters {
  uint64_t Requests = 0;      ///< requestModifier calls
  uint64_t CacheHits = 0;     ///< answered from the prediction cache
  uint64_t CacheFlushes = 0;  ///< times the bounded cache was reset
  uint64_t WireRequests = 0;  ///< round trips actually attempted
  uint64_t Timeouts = 0;      ///< round trips that hit the deadline
  uint64_t Retries = 0;       ///< additional attempts after a failure
  uint64_t Reconnects = 0;    ///< successful factory reconnects
  uint64_t ErrorReplies = 0;  ///< server answered with an Error message
  uint64_t Fallbacks = 0;     ///< requests resolved to "use the base plan"
  uint64_t BatchRequests = 0; ///< requestModifierBatch calls
  uint64_t BatchItems = 0;    ///< entries across all batch calls
  uint64_t BytesSent = 0;     ///< wire bytes written (framing included)
  uint64_t BytesReceived = 0; ///< wire bytes read

  /// Stable (name, value) rows for reports.
  std::vector<std::pair<std::string, uint64_t>> rows() const;
  /// Aligned table via support/Statistics' counter formatting.
  std::string toText() const;
};

class ResilientModelClient {
public:
  struct Config {
    /// Whole-round-trip deadline per attempt; <0 waits forever (which
    /// defeats the purpose — only for tests).
    int RequestTimeoutMs = 100;
    /// Total attempts per request (first try + retries).
    unsigned MaxAttempts = 3;
    /// Backoff before the Nth retry: Initial * Multiplier^(N-1).
    int InitialBackoffMs = 1;
    double BackoffMultiplier = 2.0;
    /// Prediction cache capacity in entries; 0 disables caching. When
    /// full the cache is flushed wholesale (counted in CacheFlushes).
    size_t CacheCapacity = 4096;
    /// Also cache definitive Error replies ("no model for level") so an
    /// uncovered level does not pay a round trip per compilation.
    bool CacheErrorReplies = true;
  };

  /// Opens (or reopens) a connected transport; nullptr when the service
  /// is unreachable right now.
  using TransportFactory = std::function<std::unique_ptr<Transport>()>;

  /// Single-connection mode: no reconnects, first failure degrades to
  /// fallback-only.
  ResilientModelClient(std::unique_ptr<Transport> T, Config C);
  explicit ResilientModelClient(std::unique_ptr<Transport> T)
      : ResilientModelClient(std::move(T), Config()) {}

  /// Reconnectable mode: the factory is invoked lazily and again after
  /// every timeout or broken connection.
  ResilientModelClient(TransportFactory F, Config C);
  explicit ResilientModelClient(TransportFactory F)
      : ResilientModelClient(std::move(F), Config()) {}

  ~ResilientModelClient();

  /// Requests a modifier for (Level, Features). std::nullopt means "use
  /// the unmodified hand-tuned plan" — either the server said so (Error
  /// reply) or the bridge could not answer within the deadline budget.
  /// Never blocks longer than roughly MaxAttempts * (timeout + backoff).
  std::optional<uint64_t> requestModifier(OptLevel Level,
                                          const FeatureVector &Features);

  /// One entry of a batched prediction request.
  struct BatchRequest {
    OptLevel Level = OptLevel::Cold;
    FeatureVector Features;
  };

  /// Predicts for a whole backlog in (at most ceil(n / MaxBatchEntries))
  /// wire round trips: cache hits are answered locally, the misses travel
  /// together in one FeatureBatch frame. The result has exactly one entry
  /// per request entry, in order; nullopt entries fall back to the
  /// unmodified plan. Same deadline/retry/fallback budget per round trip
  /// as requestModifier.
  std::vector<std::optional<uint64_t>>
  requestModifierBatch(const std::vector<BatchRequest> &Items);

  /// Polite shutdown of the current connection, if any.
  void bye();

  /// True while a usable connection exists (or can be created lazily).
  bool usable() const;

  /// Snapshot of the counters, including bytes on the live connection.
  BridgeCounters counters() const;
  const Config &config() const { return Cfg; }

  /// Test hook: replaces the inter-retry sleep (default: real sleep).
  void setSleepFn(std::function<void(int)> Fn) { Sleep = std::move(Fn); }

private:
  void resolveTelemetry();
  bool ensureConnected();
  void dropConnection();
  /// One wire round trip. Returns true when a definitive answer arrived
  /// (Modifier or Error reply); false means the connection failed and was
  /// dropped.
  bool tryOnce(OptLevel Level, const FeatureVector &Features,
               std::optional<uint64_t> &Answer);
  /// One FeatureBatch round trip for \p Misses (indices into Items).
  bool tryBatchOnce(const std::vector<BatchRequest> &Items,
                    const std::vector<size_t> &Misses,
                    std::vector<std::optional<uint64_t>> &Answers);
  std::optional<uint64_t> requestModifierLocked(OptLevel Level,
                                                const FeatureVector &Features);
  void cacheInsert(uint64_t Key, std::optional<uint64_t> Answer);

  /// Process-wide metrics mirroring the hot BridgeCounters fields, plus
  /// round-trip latency distributions; resolved once at construction.
  struct TelemetryRefs {
    TelemetryCounter *Requests, *CacheHits, *Timeouts, *Retries,
        *Fallbacks, *ErrorReplies, *WireRequests;
    TelemetryHistogram *RequestUs, *BatchUs;
  };

  mutable std::mutex Mu; ///< serializes all public entry points
  TelemetryRefs Tel;
  Config Cfg;
  TransportFactory Factory;                ///< empty in single-connection mode
  std::unique_ptr<Transport> Owned;        ///< current raw connection
  std::unique_ptr<CountingTransport> Wire; ///< counting view over Owned
  bool HandshakeDone = false;
  bool Poisoned = false; ///< single-connection mode: failed for good
  std::unordered_map<uint64_t, std::optional<uint64_t>> Cache;
  BridgeCounters Count;
  std::function<void(int)> Sleep;
};

} // namespace jitml

#endif // JITML_BRIDGE_RESILIENTCLIENT_H
