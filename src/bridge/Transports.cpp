//===- bridge/Transports.cpp ----------------------------------------------===//

#include "bridge/Transports.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace jitml;

void ByteQueue::push(const uint8_t *Data, size_t Size) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Bytes.insert(Bytes.end(), Data, Data + Size);
  }
  Cv.notify_all();
}

bool ByteQueue::pop(uint8_t *Data, size_t Size) {
  return popFor(Data, Size, /*TimeoutMs=*/-1) == IoStatus::Ok;
}

IoStatus ByteQueue::popFor(uint8_t *Data, size_t Size, int TimeoutMs) {
  std::unique_lock<std::mutex> Lock(Mu);
  auto Ready = [&] { return Bytes.size() >= Size || Closed; };
  if (TimeoutMs < 0) {
    Cv.wait(Lock, Ready);
  } else if (!Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                          Ready)) {
    return IoStatus::Timeout; // nothing consumed: pops are all-or-nothing
  }
  if (Bytes.size() < Size)
    return IoStatus::Closed; // closed with insufficient data
  auto First = Bytes.begin();
  std::copy(First, First + (std::ptrdiff_t)Size, Data);
  Bytes.erase(First, First + (std::ptrdiff_t)Size);
  return IoStatus::Ok;
}

void ByteQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  Cv.notify_all();
}

InProcessPipe::~InProcessPipe() { close(); }

bool InProcessPipe::writeBytes(const uint8_t *Data, size_t Size) {
  if (JITML_FAULT_POINT("transport.write.fail"))
    return false; // simulated dead pipe: nothing reaches the peer
  Out->push(Data, Size);
  return true;
}

bool InProcessPipe::readBytes(uint8_t *Data, size_t Size) {
  if (JITML_FAULT_POINT("transport.read.short"))
    return false; // simulated short read / peer hangup
  return In->pop(Data, Size);
}

IoStatus InProcessPipe::readBytesFor(uint8_t *Data, size_t Size,
                                     int TimeoutMs) {
  if (JITML_FAULT_POINT("transport.read.short"))
    return IoStatus::Closed;
  if (JITML_FAULT_POINT("transport.read.timeout"))
    return IoStatus::Timeout; // reply never arrives within the deadline
  uint64_t DelayMs = 10;
  if (JITML_FAULT_POINT_ARG("transport.read.delay", DelayMs))
    faultDelayMs(DelayMs); // slow peer: data arrives, but late
  return In->popFor(Data, Size, TimeoutMs);
}

void InProcessPipe::close() {
  Out->close();
  In->close();
}

std::pair<std::unique_ptr<InProcessPipe>, std::unique_ptr<InProcessPipe>>
InProcessPipe::makePair() {
  auto AtoB = std::make_shared<ByteQueue>();
  auto BtoA = std::make_shared<ByteQueue>();
  auto A = std::make_unique<InProcessPipe>(AtoB, BtoA);
  auto B = std::make_unique<InProcessPipe>(BtoA, AtoB);
  return {std::move(A), std::move(B)};
}

FifoTransport::~FifoTransport() {
  if (ReadFd >= 0)
    ::close(ReadFd);
  if (WriteFd >= 0)
    ::close(WriteFd);
}

bool FifoTransport::createPipes(const std::string &ToServerPath,
                                const std::string &ToClientPath) {
  ::unlink(ToServerPath.c_str());
  ::unlink(ToClientPath.c_str());
  if (::mkfifo(ToServerPath.c_str(), 0600) != 0)
    return false;
  if (::mkfifo(ToClientPath.c_str(), 0600) != 0) {
    ::unlink(ToServerPath.c_str());
    return false;
  }
  return true;
}

std::unique_ptr<FifoTransport>
FifoTransport::open(const std::string &ToServerPath,
                    const std::string &ToClientPath, bool IsServer) {
  // FIFO open order matters: both sides open their read end first in
  // opposite order to avoid deadlock. The server reads ToServer and
  // writes ToClient; opening read ends blocks until a writer appears, so
  // the client opens its write end first.
  int ReadFd = -1, WriteFd = -1;
  if (IsServer) {
    ReadFd = ::open(ToServerPath.c_str(), O_RDONLY);
    if (ReadFd < 0)
      return nullptr;
    WriteFd = ::open(ToClientPath.c_str(), O_WRONLY);
    if (WriteFd < 0) {
      ::close(ReadFd);
      return nullptr;
    }
  } else {
    WriteFd = ::open(ToServerPath.c_str(), O_WRONLY);
    if (WriteFd < 0)
      return nullptr;
    ReadFd = ::open(ToClientPath.c_str(), O_RDONLY);
    if (ReadFd < 0) {
      ::close(WriteFd);
      return nullptr;
    }
  }
  return std::unique_ptr<FifoTransport>(new FifoTransport(ReadFd, WriteFd));
}

bool FifoTransport::writeBytes(const uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    // Simulated EINTR storm: retry the iteration without progress. Use a
    // p/n schedule — an 'always' rule would spin this loop forever.
    if (JITML_FAULT_POINT("transport.fifo.eintr"))
      continue;
    ssize_t N = ::write(WriteFd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue; // interrupted syscall, not a dead pipe
      return false;
    }
    if (N == 0)
      return false;
    Done += (size_t)N;
  }
  return true;
}

bool FifoTransport::readBytes(uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    if (JITML_FAULT_POINT("transport.fifo.eintr"))
      continue; // see writeBytes: simulated EINTR retry
    ssize_t N = ::read(ReadFd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue; // interrupted syscall, not a dead pipe
      return false;
    }
    if (N == 0)
      return false; // EOF: writer closed its end
    Done += (size_t)N;
  }
  return true;
}

IoStatus FifoTransport::readBytesFor(uint8_t *Data, size_t Size,
                                     int TimeoutMs) {
  if (TimeoutMs < 0)
    return readBytes(Data, Size) ? IoStatus::Ok : IoStatus::Closed;
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  size_t Done = 0;
  while (Done < Size) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Deadline - Clock::now());
    int Wait = Left.count() > 0 ? (int)Left.count() : 0;
    if (JITML_FAULT_POINT("transport.fifo.eintr"))
      continue; // see writeBytes: simulated EINTR retry
    struct pollfd Pfd = {ReadFd, POLLIN, 0};
    int R = ::poll(&Pfd, 1, Wait);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::Closed;
    }
    if (R == 0)
      return IoStatus::Timeout;
    // POLLHUP may still have buffered bytes to drain; let read() decide.
    ssize_t N = ::read(ReadFd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN)
        continue;
      return IoStatus::Closed;
    }
    if (N == 0)
      return IoStatus::Closed; // EOF
    Done += (size_t)N;
  }
  return IoStatus::Ok;
}

//===----------------------------------------------------------------------===//
// SocketTransport / SocketListener
//===----------------------------------------------------------------------===//

namespace {

/// Fills \p Addr for \p Path; false when the path exceeds sun_path.
bool fillSockAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

SocketTransport::~SocketTransport() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<SocketTransport>
SocketTransport::connect(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return nullptr;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return nullptr;
  int R;
  do {
    R = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (R < 0 && errno == EINTR);
  if (R < 0) {
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(Fd));
}

bool SocketTransport::writeBytes(const uint8_t *Data, size_t Size) {
  if (JITML_FAULT_POINT("transport.write.fail"))
    return false; // simulated dead socket: nothing reaches the peer
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::send(Fd, Data + Done, Size - Done, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // EPIPE/ECONNRESET: the peer went away
    }
    if (N == 0)
      return false;
    Done += (size_t)N;
  }
  return true;
}

bool SocketTransport::readBytes(uint8_t *Data, size_t Size) {
  if (JITML_FAULT_POINT("transport.read.short"))
    return false; // simulated short read / peer hangup
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::read(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF: peer closed
    Done += (size_t)N;
  }
  return true;
}

IoStatus SocketTransport::readBytesFor(uint8_t *Data, size_t Size,
                                       int TimeoutMs) {
  if (JITML_FAULT_POINT("transport.read.short"))
    return IoStatus::Closed;
  if (JITML_FAULT_POINT("transport.read.timeout"))
    return IoStatus::Timeout; // reply never arrives within the deadline
  uint64_t DelayMs = 10;
  if (JITML_FAULT_POINT_ARG("transport.read.delay", DelayMs))
    faultDelayMs(DelayMs); // slow peer: data arrives, but late
  if (TimeoutMs < 0)
    return readBytes(Data, Size) ? IoStatus::Ok : IoStatus::Closed;
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  size_t Done = 0;
  while (Done < Size) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Deadline - Clock::now());
    int Wait = Left.count() > 0 ? (int)Left.count() : 0;
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int R = ::poll(&Pfd, 1, Wait);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return IoStatus::Closed;
    }
    if (R == 0)
      return IoStatus::Timeout;
    // POLLHUP may still have buffered bytes to drain; let read() decide.
    ssize_t N = ::read(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN)
        continue;
      return IoStatus::Closed;
    }
    if (N == 0)
      return IoStatus::Closed; // EOF
    Done += (size_t)N;
  }
  return IoStatus::Ok;
}

ssize_t SocketTransport::readSome(uint8_t *Data, size_t Cap) {
  for (;;) {
    ssize_t N = ::read(Fd, Data, Cap);
    if (N < 0 && errno == EINTR)
      continue;
    return N;
  }
}

SocketListener::~SocketListener() { close(); }

void SocketListener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

std::unique_ptr<SocketListener> SocketListener::listen(const std::string &Path,
                                                       int Backlog) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return nullptr;
  ::unlink(Path.c_str()); // a stale socket file would make bind fail
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return nullptr;
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<SocketListener>(new SocketListener(Fd, Path));
}

std::unique_ptr<SocketTransport> SocketListener::accept() {
  int Conn;
  do {
    Conn = ::accept(Fd, nullptr, nullptr);
  } while (Conn < 0 && errno == EINTR);
  if (Conn < 0)
    return nullptr;
  if (JITML_FAULT_POINT("serve.accept.fail")) {
    // Simulated accept failure AFTER the kernel handed us the connection:
    // drop it so the client sees a clean EOF and the poll loop does not
    // spin on a forever-pending backlog entry.
    ::close(Conn);
    return nullptr;
  }
  return std::unique_ptr<SocketTransport>(new SocketTransport(Conn));
}
