//===- bridge/Transports.cpp ----------------------------------------------===//

#include "bridge/Transports.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace jitml;

void ByteQueue::push(const uint8_t *Data, size_t Size) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Bytes.insert(Bytes.end(), Data, Data + Size);
  }
  Cv.notify_all();
}

bool ByteQueue::pop(uint8_t *Data, size_t Size) {
  std::unique_lock<std::mutex> Lock(Mu);
  Cv.wait(Lock, [&] { return Bytes.size() >= Size || Closed; });
  if (Bytes.size() < Size)
    return false; // closed with insufficient data
  for (size_t I = 0; I < Size; ++I) {
    Data[I] = Bytes.front();
    Bytes.pop_front();
  }
  return true;
}

void ByteQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  Cv.notify_all();
}

InProcessPipe::~InProcessPipe() { close(); }

bool InProcessPipe::writeBytes(const uint8_t *Data, size_t Size) {
  Out->push(Data, Size);
  return true;
}

bool InProcessPipe::readBytes(uint8_t *Data, size_t Size) {
  return In->pop(Data, Size);
}

void InProcessPipe::close() {
  Out->close();
  In->close();
}

std::pair<std::unique_ptr<InProcessPipe>, std::unique_ptr<InProcessPipe>>
InProcessPipe::makePair() {
  auto AtoB = std::make_shared<ByteQueue>();
  auto BtoA = std::make_shared<ByteQueue>();
  auto A = std::make_unique<InProcessPipe>(AtoB, BtoA);
  auto B = std::make_unique<InProcessPipe>(BtoA, AtoB);
  return {std::move(A), std::move(B)};
}

FifoTransport::~FifoTransport() {
  if (ReadFd >= 0)
    ::close(ReadFd);
  if (WriteFd >= 0)
    ::close(WriteFd);
}

bool FifoTransport::createPipes(const std::string &ToServerPath,
                                const std::string &ToClientPath) {
  ::unlink(ToServerPath.c_str());
  ::unlink(ToClientPath.c_str());
  if (::mkfifo(ToServerPath.c_str(), 0600) != 0)
    return false;
  if (::mkfifo(ToClientPath.c_str(), 0600) != 0) {
    ::unlink(ToServerPath.c_str());
    return false;
  }
  return true;
}

std::unique_ptr<FifoTransport>
FifoTransport::open(const std::string &ToServerPath,
                    const std::string &ToClientPath, bool IsServer) {
  // FIFO open order matters: both sides open their read end first in
  // opposite order to avoid deadlock. The server reads ToServer and
  // writes ToClient; opening read ends blocks until a writer appears, so
  // the client opens its write end first.
  int ReadFd = -1, WriteFd = -1;
  if (IsServer) {
    ReadFd = ::open(ToServerPath.c_str(), O_RDONLY);
    if (ReadFd < 0)
      return nullptr;
    WriteFd = ::open(ToClientPath.c_str(), O_WRONLY);
    if (WriteFd < 0) {
      ::close(ReadFd);
      return nullptr;
    }
  } else {
    WriteFd = ::open(ToServerPath.c_str(), O_WRONLY);
    if (WriteFd < 0)
      return nullptr;
    ReadFd = ::open(ToClientPath.c_str(), O_RDONLY);
    if (ReadFd < 0) {
      ::close(WriteFd);
      return nullptr;
    }
  }
  return std::unique_ptr<FifoTransport>(new FifoTransport(ReadFd, WriteFd));
}

bool FifoTransport::writeBytes(const uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(WriteFd, Data + Done, Size - Done);
    if (N <= 0)
      return false;
    Done += (size_t)N;
  }
  return true;
}

bool FifoTransport::readBytes(uint8_t *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::read(ReadFd, Data + Done, Size - Done);
    if (N <= 0)
      return false;
    Done += (size_t)N;
  }
  return true;
}
