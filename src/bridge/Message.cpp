//===- bridge/Message.cpp -------------------------------------------------===//

#include "bridge/Message.h"

#include "support/FaultInjection.h"

#include <chrono>
#include <cstring>

using namespace jitml;

Transport::~Transport() = default;

IoStatus Transport::readBytesFor(uint8_t *Data, size_t Size, int TimeoutMs) {
  (void)TimeoutMs; // block-forever transports ignore the deadline
  return readBytes(Data, Size) ? IoStatus::Ok : IoStatus::Closed;
}

bool CountingTransport::writeBytes(const uint8_t *Data, size_t Size) {
  if (!Inner.writeBytes(Data, Size))
    return false;
  BytesSent += Size;
  return true;
}

bool CountingTransport::readBytes(uint8_t *Data, size_t Size) {
  if (!Inner.readBytes(Data, Size))
    return false;
  BytesReceived += Size;
  return true;
}

IoStatus CountingTransport::readBytesFor(uint8_t *Data, size_t Size,
                                         int TimeoutMs) {
  IoStatus S = Inner.readBytesFor(Data, Size, TimeoutMs);
  if (S == IoStatus::Ok)
    BytesReceived += Size;
  return S;
}

namespace {

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back((uint8_t)(V & 0xff));
  Out.push_back((uint8_t)(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back((uint8_t)(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back((uint8_t)(V >> (8 * I)));
}

void putF64(std::vector<uint8_t> &Out, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

uint16_t getU16(const uint8_t *P) {
  return (uint16_t)(P[0] | (P[1] << 8));
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= (uint64_t)P[I] << (8 * I);
  return V;
}

double getF64(const uint8_t *P) {
  uint64_t Bits = getU64(P);
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace

void jitml::encodeMessageFrame(const Message &M, std::vector<uint8_t> &Out) {
  std::vector<uint8_t> Payload;
  Payload.push_back((uint8_t)M.Type);
  switch (M.Type) {
  case MsgType::Hello:
    Payload.push_back(M.Version);
    break;
  case MsgType::Features:
    Payload.push_back((uint8_t)M.Level);
    putU16(Payload, (uint16_t)M.FeatureValues.size());
    for (double V : M.FeatureValues)
      putF64(Payload, V);
    break;
  case MsgType::Modifier:
    putU64(Payload, M.ModifierBits);
    break;
  case MsgType::Error:
    Payload.insert(Payload.end(), M.Text.begin(), M.Text.end());
    break;
  case MsgType::Bye:
    break;
  case MsgType::FeatureBatch:
    putU16(Payload, (uint16_t)M.BatchFeatures.size());
    for (const BatchFeatureEntry &E : M.BatchFeatures) {
      Payload.push_back((uint8_t)E.Level);
      putU16(Payload, (uint16_t)E.FeatureValues.size());
      for (double V : E.FeatureValues)
        putF64(Payload, V);
    }
    break;
  case MsgType::ModifierBatch:
    putU16(Payload, (uint16_t)M.BatchModifiers.size());
    for (const BatchModifierEntry &E : M.BatchModifiers) {
      Payload.push_back(E.HasModifier ? 1 : 0);
      putU64(Payload, E.Bits);
    }
    break;
  }
  putU32(Out, (uint32_t)Payload.size());
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

bool jitml::sendMessage(Transport &T, const Message &M) {
  if (JITML_FAULT_POINT("bridge.send.fail"))
    return false; // simulated send failure before any bytes hit the wire
  std::vector<uint8_t> Frame;
  encodeMessageFrame(M, Frame);
  return T.writeBytes(Frame.data(), Frame.size());
}

/// Decodes a fully-read payload. The frame was consumed whole, so any
/// failure here leaves the stream aligned — hence Malformed, not Closed.
RecvStatus jitml::decodeMessagePayload(const std::vector<uint8_t> &Payload,
                                       Message &Out) {
  Out = Message();
  if (Payload.empty())
    return RecvStatus::Malformed;
  Out.Type = (MsgType)Payload[0];
  const uint8_t *P = Payload.data() + 1;
  size_t Rest = Payload.size() - 1;
  switch (Out.Type) {
  case MsgType::Hello:
    if (Rest != 1)
      return RecvStatus::Malformed;
    Out.Version = P[0];
    return RecvStatus::Ok;
  case MsgType::Features: {
    if (Rest < 3)
      return RecvStatus::Malformed;
    Out.Level = (OptLevel)P[0];
    if ((unsigned)Out.Level >= NumOptLevels)
      return RecvStatus::Malformed;
    uint16_t Count = getU16(P + 1);
    if (Rest != 3 + (size_t)Count * 8)
      return RecvStatus::Malformed;
    Out.FeatureValues.resize(Count);
    for (uint16_t I = 0; I < Count; ++I)
      Out.FeatureValues[I] = getF64(P + 3 + (size_t)I * 8);
    return RecvStatus::Ok;
  }
  case MsgType::Modifier:
    if (Rest != 8)
      return RecvStatus::Malformed;
    Out.ModifierBits = getU64(P);
    return RecvStatus::Ok;
  case MsgType::Error:
    Out.Text.assign(reinterpret_cast<const char *>(P), Rest);
    return RecvStatus::Ok;
  case MsgType::Bye:
    return Rest == 0 ? RecvStatus::Ok : RecvStatus::Malformed;
  case MsgType::FeatureBatch: {
    if (Rest < 2)
      return RecvStatus::Malformed;
    uint16_t N = getU16(P);
    if (N > MaxBatchEntries)
      return RecvStatus::Malformed;
    size_t Off = 2;
    Out.BatchFeatures.resize(N);
    for (uint16_t I = 0; I < N; ++I) {
      if (Rest < Off + 3)
        return RecvStatus::Malformed;
      BatchFeatureEntry &E = Out.BatchFeatures[I];
      E.Level = (OptLevel)P[Off];
      if ((unsigned)E.Level >= NumOptLevels)
        return RecvStatus::Malformed;
      uint16_t Count = getU16(P + Off + 1);
      Off += 3;
      if (Rest < Off + (size_t)Count * 8)
        return RecvStatus::Malformed;
      E.FeatureValues.resize(Count);
      for (uint16_t J = 0; J < Count; ++J)
        E.FeatureValues[J] = getF64(P + Off + (size_t)J * 8);
      Off += (size_t)Count * 8;
    }
    return Rest == Off ? RecvStatus::Ok : RecvStatus::Malformed;
  }
  case MsgType::ModifierBatch: {
    if (Rest < 2)
      return RecvStatus::Malformed;
    uint16_t N = getU16(P);
    if (N > MaxBatchEntries || Rest != 2 + (size_t)N * 9)
      return RecvStatus::Malformed;
    Out.BatchModifiers.resize(N);
    for (uint16_t I = 0; I < N; ++I) {
      const uint8_t *E = P + 2 + (size_t)I * 9;
      if (E[0] > 1)
        return RecvStatus::Malformed;
      Out.BatchModifiers[I].HasModifier = E[0] == 1;
      Out.BatchModifiers[I].Bits = getU64(E + 1);
    }
    return RecvStatus::Ok;
  }
  }
  return RecvStatus::Malformed; // unknown message type
}

bool jitml::recvMessage(Transport &T, Message &Out) {
  return recvMessageFor(T, Out, /*TimeoutMs=*/-1) == RecvStatus::Ok;
}

RecvStatus jitml::recvMessageFor(Transport &T, Message &Out, int TimeoutMs) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline;
  if (TimeoutMs >= 0)
    Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  auto Remaining = [&]() -> int {
    if (TimeoutMs < 0)
      return -1;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Deadline - Clock::now());
    return Left.count() > 0 ? (int)Left.count() : 0;
  };

  uint8_t Head[4];
  IoStatus S = T.readBytesFor(Head, 4, TimeoutMs);
  if (S != IoStatus::Ok)
    return S == IoStatus::Timeout ? RecvStatus::Timeout : RecvStatus::Closed;
  uint32_t Size = Head[0] | (Head[1] << 8) | (Head[2] << 16) |
                  ((uint32_t)Head[3] << 24);
  // An unframeable length prefix means we cannot find the next frame
  // boundary: the stream is garbage from here on, so treat it as dead.
  if (Size == 0 || Size > (1u << 20))
    return RecvStatus::Closed;
  std::vector<uint8_t> Payload(Size);
  S = T.readBytesFor(Payload.data(), Size, Remaining());
  if (S != IoStatus::Ok)
    return S == IoStatus::Timeout ? RecvStatus::Timeout : RecvStatus::Closed;
  uint64_t CorruptAt = 0; // arg picks the flipped byte; defaults to byte 0
  if (JITML_FAULT_POINT_ARG("bridge.frame.corrupt", CorruptAt))
    Payload[CorruptAt % Payload.size()] ^= 0x01; // Size >= 1 checked above
  return decodeMessagePayload(Payload, Out);
}
