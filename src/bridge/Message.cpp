//===- bridge/Message.cpp -------------------------------------------------===//

#include "bridge/Message.h"

#include <cstring>

using namespace jitml;

Transport::~Transport() = default;

namespace {

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back((uint8_t)(V & 0xff));
  Out.push_back((uint8_t)(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back((uint8_t)(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back((uint8_t)(V >> (8 * I)));
}

void putF64(std::vector<uint8_t> &Out, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

uint16_t getU16(const uint8_t *P) {
  return (uint16_t)(P[0] | (P[1] << 8));
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= (uint64_t)P[I] << (8 * I);
  return V;
}

double getF64(const uint8_t *P) {
  uint64_t Bits = getU64(P);
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace

bool jitml::sendMessage(Transport &T, const Message &M) {
  std::vector<uint8_t> Payload;
  Payload.push_back((uint8_t)M.Type);
  switch (M.Type) {
  case MsgType::Hello:
    Payload.push_back(M.Version);
    break;
  case MsgType::Features:
    Payload.push_back((uint8_t)M.Level);
    putU16(Payload, (uint16_t)M.FeatureValues.size());
    for (double V : M.FeatureValues)
      putF64(Payload, V);
    break;
  case MsgType::Modifier:
    putU64(Payload, M.ModifierBits);
    break;
  case MsgType::Error:
    Payload.insert(Payload.end(), M.Text.begin(), M.Text.end());
    break;
  case MsgType::Bye:
    break;
  }
  std::vector<uint8_t> Frame;
  putU32(Frame, (uint32_t)Payload.size());
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return T.writeBytes(Frame.data(), Frame.size());
}

bool jitml::recvMessage(Transport &T, Message &Out) {
  uint8_t Head[4];
  if (!T.readBytes(Head, 4))
    return false;
  uint32_t Size = Head[0] | (Head[1] << 8) | (Head[2] << 16) |
                  ((uint32_t)Head[3] << 24);
  if (Size == 0 || Size > (1u << 20))
    return false;
  std::vector<uint8_t> Payload(Size);
  if (!T.readBytes(Payload.data(), Size))
    return false;
  Out = Message();
  Out.Type = (MsgType)Payload[0];
  const uint8_t *P = Payload.data() + 1;
  size_t Rest = Size - 1;
  switch (Out.Type) {
  case MsgType::Hello:
    if (Rest != 1)
      return false;
    Out.Version = P[0];
    return true;
  case MsgType::Features: {
    if (Rest < 3)
      return false;
    Out.Level = (OptLevel)P[0];
    if ((unsigned)Out.Level >= NumOptLevels)
      return false;
    uint16_t Count = getU16(P + 1);
    if (Rest != 3 + (size_t)Count * 8)
      return false;
    Out.FeatureValues.resize(Count);
    for (uint16_t I = 0; I < Count; ++I)
      Out.FeatureValues[I] = getF64(P + 3 + (size_t)I * 8);
    return true;
  }
  case MsgType::Modifier:
    if (Rest != 8)
      return false;
    Out.ModifierBits = getU64(P);
    return true;
  case MsgType::Error:
    Out.Text.assign(reinterpret_cast<const char *>(P), Rest);
    return true;
  case MsgType::Bye:
    return Rest == 0;
  }
  return false;
}
