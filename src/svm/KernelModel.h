//===- svm/KernelModel.h - RBF-kernel SVM for the kernel study --*- C++ -*-===//
///
/// \file
/// The non-linear alternative evaluated in section 6: an RBF-kernel
/// multi-class SVM (one-vs-rest C-SVC). The paper found that the RBF model
/// trains quickly "but its prediction speed was very low — a learned RBF
/// model can take up to 660 ms to compute a prediction", four orders of
/// magnitude slower than the linear kernel's 48 us, because prediction
/// touches every support vector. bench/kernel_selection reproduces that
/// trade-off shape.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SVM_KERNELMODEL_H
#define JITML_SVM_KERNELMODEL_H

#include "mldata/Dataset.h"

#include <cstdint>
#include <vector>

namespace jitml {

struct KernelTrainOptions {
  double C = 10.0;
  double Gamma = 0.5;     ///< RBF width: exp(-gamma |x - z|^2)
  unsigned MaxIters = 20; ///< passes of kernel dual coordinate descent
  double Epsilon = 1e-3;
  uint64_t Seed = 7;
};

/// One-vs-rest RBF SVM. Stores the full training set as candidate support
/// vectors; prediction is O(classes x vectors x features).
class RbfModel {
public:
  unsigned numClasses() const { return (unsigned)AlphaY.size(); }
  size_t numVectors() const { return Vectors.size(); }
  double gamma() const { return Gamma; }

  int32_t predict(const std::vector<double> &X) const;
  std::vector<double> scores(const std::vector<double> &X) const;

  friend RbfModel trainRbf(const std::vector<NormalizedInstance> &Data,
                           const KernelTrainOptions &Options);

private:
  double kernel(const std::vector<double> &A,
                const std::vector<double> &B) const;

  double Gamma = 0.5;
  std::vector<std::vector<double>> Vectors;
  /// AlphaY[class][i] = alpha_i * y_i for the class's binary problem.
  std::vector<std::vector<double>> AlphaY;
};

/// Trains the one-vs-rest RBF SVM by kernel dual coordinate descent.
RbfModel trainRbf(const std::vector<NormalizedInstance> &Data,
                  const KernelTrainOptions &Options);

/// Accuracy of the kernel model over \p Data.
double rbfAccuracy(const RbfModel &Model,
                   const std::vector<NormalizedInstance> &Data);

} // namespace jitml

#endif // JITML_SVM_KERNELMODEL_H
