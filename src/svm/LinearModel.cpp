//===- svm/LinearModel.cpp ------------------------------------------------===//

#include "svm/LinearModel.h"

#include "svm/DenseKernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace jitml;

double LinearModel::score(unsigned Class, const std::vector<double> &X) const {
  assert(X.size() == Features && "input dimensionality mismatch");
  return dotDense(&W[(size_t)Class * Features], X.data(), Features);
}

void LinearModel::scoresInto(const double *X, double *Out) const {
  const double *Row = W.data();
  for (unsigned C = 0; C < Classes; ++C, Row += Features)
    Out[C] = dotDense(Row, X, Features);
}

int32_t LinearModel::predictRaw(const double *X) const {
  assert(Classes > 0 && "predicting with an empty model");
  const double *Row = W.data();
  unsigned Best = 0;
  double BestScore = 0.0;
  for (unsigned C = 0; C < Classes; ++C, Row += Features) {
    double S = dotDense(Row, X, Features);
    if (C == 0 || S > BestScore) {
      BestScore = S;
      Best = C;
    }
  }
  return (int32_t)Best + 1;
}

int32_t LinearModel::predict(const std::vector<double> &X) const {
  assert(X.size() == Features && "input dimensionality mismatch");
  return predictRaw(X.data());
}

void LinearModel::predictBatch(const double *X, size_t Count, size_t Stride,
                               int32_t *Out) const {
  assert(Stride >= Features && "stride must cover one input");
  for (size_t N = 0; N < Count; ++N)
    Out[N] = predictRaw(X + N * Stride);
}

std::vector<double> LinearModel::scores(const std::vector<double> &X) const {
  assert(X.size() == Features && "input dimensionality mismatch");
  std::vector<double> Out(Classes);
  scoresInto(X.data(), Out.data());
  return Out;
}

std::string LinearModel::toText() const {
  std::string Out;
  // ~25 chars per %.17g weight plus separator; headroom avoids regrowth.
  Out.reserve(32 + (size_t)Classes * Features * 26);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "linearmodel %u %u\n", Classes, Features);
  Out += Buf;
  for (unsigned C = 0; C < Classes; ++C) {
    for (unsigned F = 0; F < Features; ++F) {
      std::snprintf(Buf, sizeof(Buf), F ? " %.17g" : "%.17g",
                    weight(C, F));
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

bool LinearModel::fromText(const std::string &Text, LinearModel &Out) {
  // Single buffer scan with a strtod/strtoul cursor: the model file is on
  // the bridge's model-swap and ModelStore startup paths, where the
  // istringstream-per-weight approach dominated load time.
  const char *C = Text.c_str();
  while (*C == ' ' || *C == '\t' || *C == '\n' || *C == '\r')
    ++C;
  static const char Tag[] = "linearmodel";
  if (std::strncmp(C, Tag, sizeof(Tag) - 1) != 0)
    return false;
  C += sizeof(Tag) - 1;
  if (*C != ' ' && *C != '\t' && *C != '\n' && *C != '\r')
    return false; // the header tag must be a whole token

  char *End = nullptr;
  unsigned long Classes = std::strtoul(C, &End, 10);
  if (End == C)
    return false;
  C = End;
  unsigned long Features = std::strtoul(C, &End, 10);
  if (End == C)
    return false;
  C = End;

  Out = LinearModel((unsigned)Classes, (unsigned)Features);
  double *Wp = Out.data();
  size_t Total = (size_t)Classes * Features;
  for (size_t I = 0; I < Total; ++I) {
    double V = std::strtod(C, &End);
    if (End == C)
      return false; // ran out of numbers early
    Wp[I] = V;
    C = End;
  }
  return true;
}

bool LinearModel::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = toText();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool LinearModel::load(const std::string &Path, LinearModel &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  std::string Text;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return fromText(Text, Out);
}
