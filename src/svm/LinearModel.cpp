//===- svm/LinearModel.cpp ------------------------------------------------===//

#include "svm/LinearModel.h"

#include <cstdio>
#include <sstream>

using namespace jitml;

double LinearModel::score(unsigned Class, const std::vector<double> &X) const {
  assert(X.size() == Features && "input dimensionality mismatch");
  const double *Row = &W[(size_t)Class * Features];
  double S = 0.0;
  for (unsigned I = 0; I < Features; ++I)
    S += Row[I] * X[I];
  return S;
}

int32_t LinearModel::predict(const std::vector<double> &X) const {
  assert(Classes > 0 && "predicting with an empty model");
  unsigned Best = 0;
  double BestScore = score(0, X);
  for (unsigned C = 1; C < Classes; ++C) {
    double S = score(C, X);
    if (S > BestScore) {
      BestScore = S;
      Best = C;
    }
  }
  return (int32_t)Best + 1;
}

std::vector<double> LinearModel::scores(const std::vector<double> &X) const {
  std::vector<double> Out(Classes);
  for (unsigned C = 0; C < Classes; ++C)
    Out[C] = score(C, X);
  return Out;
}

std::string LinearModel::toText() const {
  std::string Out;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "linearmodel %u %u\n", Classes, Features);
  Out += Buf;
  for (unsigned C = 0; C < Classes; ++C) {
    for (unsigned F = 0; F < Features; ++F) {
      std::snprintf(Buf, sizeof(Buf), F ? " %.17g" : "%.17g",
                    weight(C, F));
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

bool LinearModel::fromText(const std::string &Text, LinearModel &Out) {
  std::istringstream In(Text);
  std::string Tag;
  unsigned Classes = 0, Features = 0;
  if (!(In >> Tag >> Classes >> Features) || Tag != "linearmodel")
    return false;
  Out = LinearModel(Classes, Features);
  for (unsigned C = 0; C < Classes; ++C)
    for (unsigned F = 0; F < Features; ++F)
      if (!(In >> Out.weight(C, F)))
        return false;
  return true;
}

bool LinearModel::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = toText();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

bool LinearModel::load(const std::string &Path, LinearModel &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return fromText(Text, Out);
}
