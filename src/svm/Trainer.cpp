//===- svm/Trainer.cpp - Sequential dual method and OvR solvers -----------===//
//
// Crammer-Singer dual:
//
//   min_a  1/2 sum_m ||w_m(a)||^2 + sum_i sum_m e_i^m a_i^m
//   s.t.   sum_m a_i^m = 0 for all i;  a_i^m <= C_i^m
//   where  w_m(a) = sum_i a_i^m x_i,  e_i^m = 1 - delta(y_i, m),
//          C_i^m = C when m == y_i else 0.
//
// The sequential dual method optimizes one example's alpha-vector at a
// time. With A = x_i.x_i and gradient g_m = w_m.x_i + e_i^m, the
// subproblem's solution is a_new^m = min(C_i^m, (beta - B_m)/A) with
// B_m = g_m - A a_i^m, where beta is chosen so the new alphas sum to zero
// (found here by bisection: the sum is continuous and increasing in beta).
//
//===----------------------------------------------------------------------===//

#include "svm/Trainer.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace jitml;

namespace {

unsigned maxLabel(const std::vector<NormalizedInstance> &Data) {
  int32_t Max = 0;
  for (const NormalizedInstance &N : Data)
    Max = std::max(Max, N.Label);
  return (unsigned)Max;
}

std::vector<size_t> shuffledOrder(size_t N, Rng &R) {
  std::vector<size_t> Order(N);
  for (size_t I = 0; I < N; ++I)
    Order[I] = I;
  for (size_t I = N; I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);
  return Order;
}

} // namespace

double jitml::modelAccuracy(const LinearModel &Model,
                            const std::vector<NormalizedInstance> &Data) {
  if (Data.empty())
    return 0.0;
  size_t Correct = 0;
  for (const NormalizedInstance &N : Data)
    if (Model.predict(N.Components) == N.Label)
      ++Correct;
  return (double)Correct / (double)Data.size();
}

LinearModel
jitml::trainCrammerSinger(const std::vector<NormalizedInstance> &Data,
                          const TrainOptions &Options, TrainReport *Report) {
  assert(!Data.empty() && "training on an empty data set");
  unsigned L = maxLabel(Data);
  unsigned P = (unsigned)Data.front().Components.size();
  LinearModel Model(L, P);

  size_t N = Data.size();
  // Dual variables alpha[i][m], stored sparsely would be nicer; dense is
  // fine at our scale (thousands x dozens).
  std::vector<std::vector<double>> Alpha(N, std::vector<double>(L, 0.0));
  std::vector<double> XtX(N, 0.0);
  for (size_t I = 0; I < N; ++I)
    for (double V : Data[I].Components)
      XtX[I] += V * V;

  Rng R(Options.Seed);
  double Violation = 0.0;
  unsigned Iter = 0;
  std::vector<double> G(L), B(L), NewAlpha(L);
  for (; Iter < Options.MaxIters; ++Iter) {
    Violation = 0.0;
    std::vector<size_t> Order = shuffledOrder(N, R);
    for (size_t Pick : Order) {
      const NormalizedInstance &Inst = Data[Pick];
      double A = XtX[Pick];
      if (A <= 0.0)
        continue;
      unsigned Y = (unsigned)Inst.Label - 1;
      // Gradient g_m = w_m.x + e_i^m.
      for (unsigned M = 0; M < L; ++M)
        G[M] = Model.score(M, Inst.Components) + (M == Y ? 0.0 : 1.0);
      for (unsigned M = 0; M < L; ++M)
        B[M] = G[M] - A * Alpha[Pick][M];

      // Solve sum_m min(Cap_m, (beta - B_m)/A) = 0 for beta by bisection.
      auto SumAt = [&](double Beta) {
        double S = 0.0;
        for (unsigned M = 0; M < L; ++M) {
          double Cap = M == Y ? Options.C : 0.0;
          S += std::min(Cap, (Beta - B[M]) / A);
        }
        return S;
      };
      double Lo = B[0], Hi = B[0];
      for (unsigned M = 1; M < L; ++M) {
        Lo = std::min(Lo, B[M]);
        Hi = std::max(Hi, B[M]);
      }
      Hi += A * Options.C * L + A; // ensure SumAt(Hi) >= 0
      Lo -= A;                     // ensure SumAt(Lo) <= 0
      for (int Step = 0; Step < 64; ++Step) {
        double Mid = 0.5 * (Lo + Hi);
        if (SumAt(Mid) >= 0.0)
          Hi = Mid;
        else
          Lo = Mid;
      }
      double Beta = 0.5 * (Lo + Hi);
      double MaxDelta = 0.0;
      for (unsigned M = 0; M < L; ++M) {
        double Cap = M == Y ? Options.C : 0.0;
        NewAlpha[M] = std::min(Cap, (Beta - B[M]) / A);
        MaxDelta = std::max(MaxDelta, std::fabs(NewAlpha[M] - Alpha[Pick][M]));
      }
      if (MaxDelta < 1e-12)
        continue;
      Violation = std::max(Violation, MaxDelta);
      for (unsigned M = 0; M < L; ++M) {
        double Delta = NewAlpha[M] - Alpha[Pick][M];
        if (Delta == 0.0)
          continue;
        Alpha[Pick][M] = NewAlpha[M];
        for (unsigned F = 0; F < P; ++F)
          Model.weight(M, F) += Delta * Inst.Components[F];
      }
    }
    if (Violation < Options.Epsilon)
      break;
  }
  if (Report) {
    Report->Iterations = Iter;
    Report->FinalViolation = Violation;
    Report->NumClasses = L;
    Report->TrainAccuracy = modelAccuracy(Model, Data);
  }
  return Model;
}

LinearModel jitml::trainOneVsRest(const std::vector<NormalizedInstance> &Data,
                                  const TrainOptions &Options,
                                  TrainReport *Report) {
  assert(!Data.empty() && "training on an empty data set");
  unsigned L = maxLabel(Data);
  unsigned P = (unsigned)Data.front().Components.size();
  LinearModel Model(L, P);
  size_t N = Data.size();

  std::vector<double> XtX(N, 0.0);
  for (size_t I = 0; I < N; ++I)
    for (double V : Data[I].Components)
      XtX[I] += V * V;

  Rng R(Options.Seed);
  double WorstViolation = 0.0;
  unsigned WorstIters = 0;
  // One L1-loss binary problem per class: y = +1 for the class, -1 rest.
  for (unsigned Cls = 0; Cls < L; ++Cls) {
    std::vector<double> Alpha(N, 0.0);
    std::vector<double> W(P, 0.0);
    unsigned Iter = 0;
    double Violation = 0.0;
    for (; Iter < Options.MaxIters; ++Iter) {
      Violation = 0.0;
      std::vector<size_t> Order = shuffledOrder(N, R);
      for (size_t I : Order) {
        if (XtX[I] <= 0.0)
          continue;
        double Y = Data[I].Label == (int32_t)Cls + 1 ? 1.0 : -1.0;
        double WX = 0.0;
        for (unsigned F = 0; F < P; ++F)
          WX += W[F] * Data[I].Components[F];
        double Grad = Y * WX - 1.0;
        double Old = Alpha[I];
        double NewA =
            std::clamp(Old - Grad / XtX[I], 0.0, Options.C);
        double Delta = NewA - Old;
        if (std::fabs(Delta) < 1e-12)
          continue;
        Violation = std::max(Violation, std::fabs(Delta));
        Alpha[I] = NewA;
        for (unsigned F = 0; F < P; ++F)
          W[F] += Delta * Y * Data[I].Components[F];
      }
      if (Violation < Options.Epsilon)
        break;
    }
    WorstViolation = std::max(WorstViolation, Violation);
    WorstIters = std::max(WorstIters, Iter);
    for (unsigned F = 0; F < P; ++F)
      Model.weight(Cls, F) = W[F];
  }
  if (Report) {
    Report->Iterations = WorstIters;
    Report->FinalViolation = WorstViolation;
    Report->NumClasses = L;
    Report->TrainAccuracy = modelAccuracy(Model, Data);
  }
  return Model;
}

double jitml::crossValidate(const std::vector<NormalizedInstance> &Data,
                            const TrainOptions &Options, unsigned Folds) {
  assert(Folds >= 2 && "cross-validation needs at least two folds");
  if (Data.size() < Folds)
    return 0.0;
  Rng R(Options.Seed ^ 0xf01d);
  std::vector<size_t> Order = shuffledOrder(Data.size(), R);
  size_t Correct = 0, Total = 0;
  for (unsigned Fold = 0; Fold < Folds; ++Fold) {
    std::vector<NormalizedInstance> Train, Test;
    for (size_t K = 0; K < Order.size(); ++K) {
      if (K % Folds == Fold)
        Test.push_back(Data[Order[K]]);
      else
        Train.push_back(Data[Order[K]]);
    }
    if (Train.empty() || Test.empty())
      continue;
    LinearModel M = trainCrammerSinger(Train, Options);
    for (const NormalizedInstance &N : Test) {
      // Labels absent from the fold's training split can never be
      // predicted; they still count as errors, as in real CV.
      if (M.numClasses() >= 1 &&
          (unsigned)N.Label <= M.numClasses() &&
          M.predict(N.Components) == N.Label)
        ++Correct;
      ++Total;
    }
  }
  return Total ? (double)Correct / (double)Total : 0.0;
}
