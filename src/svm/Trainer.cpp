//===- svm/Trainer.cpp - Sequential dual method and OvR solvers -----------===//
//
// Crammer-Singer dual:
//
//   min_a  1/2 sum_m ||w_m(a)||^2 + sum_i sum_m e_i^m a_i^m
//   s.t.   sum_m a_i^m = 0 for all i;  a_i^m <= C_i^m
//   where  w_m(a) = sum_i a_i^m x_i,  e_i^m = 1 - delta(y_i, m),
//          C_i^m = C when m == y_i else 0.
//
// The sequential dual method optimizes one example's alpha-vector at a
// time. With A = x_i.x_i and gradient g_m = w_m.x_i + e_i^m, the
// subproblem's solution is a_new^m = min(C_i^m, (beta - B_m)/A) with
// B_m = g_m - A a_i^m, where beta is chosen so the new alphas sum to zero
// (found here by bisection: the sum is continuous and increasing in beta).
//
// State layout: instances, dual variables, and the weight matrix all live
// in contiguous row-major arrays so the two inner loops (w_m.x_i and the
// rank-1 weight update) run over adjacent memory and autovectorize (see
// DenseKernels.h). The active-set shrinking heuristic skips instances
// whose subproblem has been at its optimum for consecutive passes; before
// the solver may stop, the full set is always re-checked, so shrinking
// changes the visit schedule, never the convergence criterion.
//
//===----------------------------------------------------------------------===//

#include "svm/Trainer.h"

#include "support/Rng.h"
#include "support/Telemetry.h"
#include "svm/DenseKernels.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace jitml;

namespace {

/// Mirrors one solver run's effort totals into the process-wide registry
/// (the per-run TrainReport stays the authoritative per-call API).
void noteSolverEffort(unsigned Iters, uint64_t Solves, unsigned Restarts) {
  static TelemetryCounter &SolveRuns =
      MetricRegistry::global().counter("train.solver_runs");
  static TelemetryCounter &Iterations =
      MetricRegistry::global().counter("train.iterations");
  static TelemetryCounter &Subproblems =
      MetricRegistry::global().counter("train.subproblem_solves");
  static TelemetryCounter &ShrinkRestarts =
      MetricRegistry::global().counter("train.shrink_restarts");
  SolveRuns.add();
  Iterations.add(Iters);
  Subproblems.add(Solves);
  ShrinkRestarts.add(Restarts);
}

unsigned maxLabel(const std::vector<NormalizedInstance> &Data) {
  int32_t Max = 0;
  for (const NormalizedInstance &N : Data)
    Max = std::max(Max, N.Label);
  return (unsigned)Max;
}

/// Fisher-Yates over \p Order, consuming R exactly as the original
/// solver's shuffledOrder did.
void shuffleOrder(std::vector<size_t> &Order, Rng &R) {
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);
}

std::vector<size_t> shuffledOrder(size_t N, Rng &R) {
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), (size_t)0);
  shuffleOrder(Order, R);
  return Order;
}

/// Instances flattened row-major (N x P) with cached squared norms.
struct FlatData {
  std::vector<double> X;
  std::vector<double> XtX;
  size_t N = 0;
  unsigned P = 0;

  explicit FlatData(const std::vector<NormalizedInstance> &Data)
      : N(Data.size()), P((unsigned)Data.front().Components.size()) {
    X.resize(N * (size_t)P);
    XtX.resize(N);
    for (size_t I = 0; I < N; ++I) {
      const std::vector<double> &C = Data[I].Components;
      assert(C.size() == P && "inconsistent feature dimensionality");
      double *Row = &X[I * P];
      std::copy(C.begin(), C.end(), Row);
      XtX[I] = dotDense(Row, Row, P);
    }
  }

  const double *row(size_t I) const { return &X[I * P]; }
};

} // namespace

double jitml::modelAccuracy(const LinearModel &Model,
                            const std::vector<NormalizedInstance> &Data) {
  if (Data.empty())
    return 0.0;
  FlatData Flat(Data);
  std::vector<int32_t> Predicted(Flat.N);
  Model.predictBatch(Flat.X.data(), Flat.N, Flat.P, Predicted.data());
  size_t Correct = 0;
  for (size_t I = 0; I < Flat.N; ++I)
    if (Predicted[I] == Data[I].Label)
      ++Correct;
  return (double)Correct / (double)Flat.N;
}

LinearModel
jitml::trainCrammerSinger(const std::vector<NormalizedInstance> &Data,
                          const TrainOptions &Options, TrainReport *Report) {
  assert(!Data.empty() && "training on an empty data set");
  unsigned L = maxLabel(Data);
  FlatData Flat(Data);
  size_t N = Flat.N;
  unsigned P = Flat.P;
  LinearModel Model(L, P);
  double *W = Model.data();

  // Dual variables alpha[i][m], contiguous row-major (N x L).
  std::vector<double> Alpha(N * (size_t)L, 0.0);

  // Shrinking bookkeeping. An instance leaves the active set after
  // IdleLimit consecutive passes with an (almost) unchanged subproblem;
  // the stopping check below always restores everyone first. A shrunk
  // instance's optimum drifts as the active instances keep moving w, so
  // the active set is also refreshed unconditionally every RefreshInterval
  // passes — without this, problems that exhaust MaxIters before reaching
  // Epsilon would leave stale instances excluded forever and converge to
  // a measurably worse objective than the reference schedule.
  constexpr uint8_t IdleLimit = 2;
  constexpr unsigned RefreshInterval = 8;
  std::vector<uint8_t> Idle(N, 0);
  std::vector<uint8_t> Shrunk(N, 0);
  size_t NumShrunk = 0;
  uint64_t Solves = 0;
  unsigned Restarts = 0;
  unsigned StalePasses = 0;

  Rng R(Options.Seed);
  double Violation = 0.0;
  unsigned Iter = 0;
  std::vector<double> G(L), B(L), NewAlpha(L);
  std::vector<size_t> Order;
  for (; Iter < Options.MaxIters; ++Iter) {
    Violation = 0.0;
    // Visit the active instances in a fresh random order each pass
    // (ascending rebuild + Fisher-Yates, as the reference schedule does
    // for the full set).
    Order.clear();
    for (size_t I = 0; I < N; ++I)
      if (!Shrunk[I])
        Order.push_back(I);
    shuffleOrder(Order, R);

    for (size_t Pick : Order) {
      double A = Flat.XtX[Pick];
      if (A <= 0.0)
        continue;
      const double *Xi = Flat.row(Pick);
      double *Ai = &Alpha[Pick * L];
      unsigned Y = (unsigned)Data[Pick].Label - 1;
      ++Solves;
      // Gradient g_m = w_m.x + e_i^m.
      for (unsigned M = 0; M < L; ++M)
        G[M] = dotDense(&W[(size_t)M * P], Xi, P) + (M == Y ? 0.0 : 1.0);
      for (unsigned M = 0; M < L; ++M)
        B[M] = G[M] - A * Ai[M];

      // Solve sum_m min(Cap_m, (beta - B_m)/A) = 0 for beta by bisection.
      auto SumAt = [&](double Beta) {
        double S = 0.0;
        for (unsigned M = 0; M < L; ++M) {
          double Cap = M == Y ? Options.C : 0.0;
          S += std::min(Cap, (Beta - B[M]) / A);
        }
        return S;
      };
      double Lo = B[0], Hi = B[0];
      for (unsigned M = 1; M < L; ++M) {
        Lo = std::min(Lo, B[M]);
        Hi = std::max(Hi, B[M]);
      }
      Hi += A * Options.C * L + A; // ensure SumAt(Hi) >= 0
      Lo -= A;                     // ensure SumAt(Lo) <= 0
      for (int Step = 0; Step < 64; ++Step) {
        double Mid = 0.5 * (Lo + Hi);
        if (SumAt(Mid) >= 0.0)
          Hi = Mid;
        else
          Lo = Mid;
      }
      double Beta = 0.5 * (Lo + Hi);
      double MaxDelta = 0.0;
      for (unsigned M = 0; M < L; ++M) {
        double Cap = M == Y ? Options.C : 0.0;
        NewAlpha[M] = std::min(Cap, (Beta - B[M]) / A);
        MaxDelta = std::max(MaxDelta, std::fabs(NewAlpha[M] - Ai[M]));
      }
      if (Options.Shrinking) {
        if (MaxDelta < 0.1 * Options.Epsilon) {
          if (++Idle[Pick] >= IdleLimit) {
            Shrunk[Pick] = 1;
            ++NumShrunk;
          }
        } else {
          Idle[Pick] = 0;
        }
      }
      if (MaxDelta < 1e-12)
        continue;
      Violation = std::max(Violation, MaxDelta);
      for (unsigned M = 0; M < L; ++M) {
        double Delta = NewAlpha[M] - Ai[M];
        if (Delta == 0.0)
          continue;
        Ai[M] = NewAlpha[M];
        axpyDense(&W[(size_t)M * P], Delta, Xi, P);
      }
    }
    bool Restore = false;
    if (Violation < Options.Epsilon) {
      if (NumShrunk == 0)
        break; // converged over the full set
      // The shrunk instances were skipped: restore them and let the next
      // pass re-verify convergence over everyone.
      Restore = true;
    } else if (NumShrunk && ++StalePasses >= RefreshInterval) {
      Restore = true; // periodic refresh against stale exclusions
    }
    if (Restore) {
      std::fill(Shrunk.begin(), Shrunk.end(), (uint8_t)0);
      std::fill(Idle.begin(), Idle.end(), (uint8_t)0);
      NumShrunk = 0;
      StalePasses = 0;
      ++Restarts;
    }
  }
  if (Report) {
    Report->Iterations = Iter;
    Report->FinalViolation = Violation;
    Report->NumClasses = L;
    Report->TrainAccuracy = modelAccuracy(Model, Data);
    Report->SubproblemSolves = Solves;
    Report->ShrinkRestarts = Restarts;
  }
  noteSolverEffort(Iter, Solves, Restarts);
  return Model;
}

LinearModel jitml::trainOneVsRest(const std::vector<NormalizedInstance> &Data,
                                  const TrainOptions &Options,
                                  TrainReport *Report) {
  assert(!Data.empty() && "training on an empty data set");
  unsigned L = maxLabel(Data);
  FlatData Flat(Data);
  size_t N = Flat.N;
  unsigned P = Flat.P;
  LinearModel Model(L, P);

  Rng R(Options.Seed);
  double WorstViolation = 0.0;
  unsigned WorstIters = 0;
  uint64_t Solves = 0;
  // One L1-loss binary problem per class: y = +1 for the class, -1 rest.
  for (unsigned Cls = 0; Cls < L; ++Cls) {
    std::vector<double> Alpha(N, 0.0);
    double *Wc = &Model.data()[(size_t)Cls * P];
    unsigned Iter = 0;
    double Violation = 0.0;
    for (; Iter < Options.MaxIters; ++Iter) {
      Violation = 0.0;
      std::vector<size_t> Order = shuffledOrder(N, R);
      for (size_t I : Order) {
        if (Flat.XtX[I] <= 0.0)
          continue;
        const double *Xi = Flat.row(I);
        double Y = Data[I].Label == (int32_t)Cls + 1 ? 1.0 : -1.0;
        ++Solves;
        double Grad = Y * dotDense(Wc, Xi, P) - 1.0;
        double Old = Alpha[I];
        double NewA =
            std::clamp(Old - Grad / Flat.XtX[I], 0.0, Options.C);
        double Delta = NewA - Old;
        if (std::fabs(Delta) < 1e-12)
          continue;
        Violation = std::max(Violation, std::fabs(Delta));
        Alpha[I] = NewA;
        axpyDense(Wc, Delta * Y, Xi, P);
      }
      if (Violation < Options.Epsilon)
        break;
    }
    WorstViolation = std::max(WorstViolation, Violation);
    WorstIters = std::max(WorstIters, Iter);
  }
  if (Report) {
    Report->Iterations = WorstIters;
    Report->FinalViolation = WorstViolation;
    Report->NumClasses = L;
    Report->TrainAccuracy = modelAccuracy(Model, Data);
    Report->SubproblemSolves = Solves;
  }
  noteSolverEffort(WorstIters, Solves, 0);
  return Model;
}

double jitml::crossValidate(const std::vector<NormalizedInstance> &Data,
                            const TrainOptions &Options, unsigned Folds) {
  assert(Folds >= 2 && "cross-validation needs at least two folds");
  if (Data.size() < Folds)
    return 0.0;
  Rng R(Options.Seed ^ 0xf01d);
  std::vector<size_t> Order = shuffledOrder(Data.size(), R);
  size_t Correct = 0, Total = 0;
  for (unsigned Fold = 0; Fold < Folds; ++Fold) {
    std::vector<NormalizedInstance> Train, Test;
    for (size_t K = 0; K < Order.size(); ++K) {
      if (K % Folds == Fold)
        Test.push_back(Data[Order[K]]);
      else
        Train.push_back(Data[Order[K]]);
    }
    if (Train.empty() || Test.empty())
      continue;
    LinearModel M = trainCrammerSinger(Train, Options);
    for (const NormalizedInstance &N : Test) {
      // Labels absent from the fold's training split can never be
      // predicted; they still count as errors, as in real CV.
      if (M.numClasses() >= 1 &&
          (unsigned)N.Label <= M.numClasses() &&
          M.predict(N.Components) == N.Label)
        ++Correct;
      ++Total;
    }
  }
  return Total ? (double)Correct / (double)Total : 0.0;
}
