//===- svm/DenseKernels.h - Vectorizable dense numeric kernels --*- C++ -*-===//
///
/// \file
/// The two inner loops the whole SVM stack reduces to: a dot product
/// (scoring, gradients) and an axpy update (dual weight maintenance).
/// The dot product carries four independent accumulator chains so the
/// compiler can map them onto SIMD lanes without reassociating a single
/// serial reduction (which -O2 must not do without fast-math); the chains
/// are combined in one fixed order, so results are deterministic — the
/// same on every host and at every JITML_JOBS setting.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SVM_DENSEKERNELS_H
#define JITML_SVM_DENSEKERNELS_H

#include <cstddef>

namespace jitml {

/// sum_i A[i] * B[i] with a fixed lane-wise summation order.
inline double dotDense(const double *A, const double *B, size_t N) {
  double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    S0 += A[I + 0] * B[I + 0];
    S1 += A[I + 1] * B[I + 1];
    S2 += A[I + 2] * B[I + 2];
    S3 += A[I + 3] * B[I + 3];
  }
  double S = (S0 + S1) + (S2 + S3);
  for (; I < N; ++I)
    S += A[I] * B[I];
  return S;
}

/// W[i] += Scale * X[i]. No reduction, so this vectorizes as-is.
inline void axpyDense(double *W, double Scale, const double *X, size_t N) {
  for (size_t I = 0; I < N; ++I)
    W[I] += Scale * X[I];
}

} // namespace jitml

#endif // JITML_SVM_DENSEKERNELS_H
