//===- svm/Trainer.h - Linear SVM trainers ----------------------*- C++ -*-===//
///
/// \file
/// From-scratch solvers for the multi-class linear SVM:
///
///  * trainCrammerSinger — the sequential dual method for Crammer-Singer
///    multi-class SVMs (Keerthi, Sundararajan, Chang, Hsieh, Lin, KDD'08),
///    the solver behind LIBLINEAR's multi-class mode that the paper used;
///  * trainOneVsRest — L2-regularized L1-loss binary SVMs by dual
///    coordinate descent, one per class, argmax at prediction.
///
/// Both consume the normalized instances produced by mldata and return the
/// p x L weight matrix of section 3. The paper's setting is C = 10.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SVM_TRAINER_H
#define JITML_SVM_TRAINER_H

#include "mldata/Dataset.h"
#include "svm/LinearModel.h"

namespace jitml {

struct TrainOptions {
  double C = 10.0;      ///< misclassification cost (paper: C = 10)
  unsigned MaxIters = 60; ///< outer passes over the data
  double Epsilon = 1e-3;  ///< stop when the largest dual update is below
  uint64_t Seed = 7;      ///< instance-order shuffling
  /// Active-set shrinking: instances whose dual subproblem stays at its
  /// optimum for consecutive passes drop out of the pass until the
  /// stopping check, which always re-verifies the full set (so the
  /// convergence guarantee is unchanged). Disable to run the reference
  /// every-instance-every-pass schedule the equivalence tests compare
  /// against.
  bool Shrinking = true;
};

struct TrainReport {
  unsigned Iterations = 0;
  double FinalViolation = 0.0;
  unsigned NumClasses = 0;
  /// Training-set accuracy of the returned model (sanity metric).
  double TrainAccuracy = 0.0;
  /// Per-instance dual subproblems optimized (the trainer's unit of work;
  /// shrinking shows up as fewer solves per outer iteration).
  uint64_t SubproblemSolves = 0;
  /// Times the active set was reset to the full data set (for the
  /// stopping check or the periodic staleness refresh).
  unsigned ShrinkRestarts = 0;
};

/// Crammer-Singer multi-class linear SVM via the sequential dual method.
/// Labels must be dense in [1, L].
LinearModel trainCrammerSinger(const std::vector<NormalizedInstance> &Data,
                               const TrainOptions &Options,
                               TrainReport *Report = nullptr);

/// One-vs-rest dual coordinate descent (L1-loss SVM per class).
LinearModel trainOneVsRest(const std::vector<NormalizedInstance> &Data,
                           const TrainOptions &Options,
                           TrainReport *Report = nullptr);

/// Fraction of \p Data classified correctly by \p Model.
double modelAccuracy(const LinearModel &Model,
                     const std::vector<NormalizedInstance> &Data);

/// k-fold cross-validation accuracy with the Crammer-Singer trainer.
double crossValidate(const std::vector<NormalizedInstance> &Data,
                     const TrainOptions &Options, unsigned Folds);

} // namespace jitml

#endif // JITML_SVM_TRAINER_H
