//===- svm/KernelModel.cpp ------------------------------------------------===//

#include "svm/KernelModel.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace jitml;

double RbfModel::kernel(const std::vector<double> &A,
                        const std::vector<double> &B) const {
  double D2 = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    double D = A[I] - B[I];
    D2 += D * D;
  }
  return std::exp(-Gamma * D2);
}

std::vector<double> RbfModel::scores(const std::vector<double> &X) const {
  // The expensive part the paper measured: every prediction walks all
  // support vectors for every class.
  std::vector<double> K(Vectors.size());
  for (size_t I = 0; I < Vectors.size(); ++I)
    K[I] = kernel(Vectors[I], X);
  std::vector<double> Out(AlphaY.size(), 0.0);
  for (size_t C = 0; C < AlphaY.size(); ++C)
    for (size_t I = 0; I < Vectors.size(); ++I)
      Out[C] += AlphaY[C][I] * K[I];
  return Out;
}

int32_t RbfModel::predict(const std::vector<double> &X) const {
  std::vector<double> S = scores(X);
  return (int32_t)(std::max_element(S.begin(), S.end()) - S.begin()) + 1;
}

RbfModel jitml::trainRbf(const std::vector<NormalizedInstance> &Data,
                         const KernelTrainOptions &Options) {
  RbfModel Model;
  Model.Gamma = Options.Gamma;
  if (Data.empty())
    return Model;
  size_t N = Data.size();
  unsigned L = 0;
  for (const NormalizedInstance &I : Data)
    L = std::max(L, (unsigned)I.Label);
  Model.Vectors.reserve(N);
  for (const NormalizedInstance &I : Data)
    Model.Vectors.push_back(I.Components);

  // Kernel matrix: fine for the subsampled sets the kernel study uses.
  std::vector<std::vector<double>> K(N, std::vector<double>(N));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I; J < N; ++J) {
      double V = Model.kernel(Model.Vectors[I], Model.Vectors[J]);
      K[I][J] = V;
      K[J][I] = V;
    }

  Rng R(Options.Seed);
  Model.AlphaY.assign(L, std::vector<double>(N, 0.0));
  for (unsigned Cls = 0; Cls < L; ++Cls) {
    std::vector<double> Alpha(N, 0.0);
    std::vector<double> Y(N);
    for (size_t I = 0; I < N; ++I)
      Y[I] = Data[I].Label == (int32_t)Cls + 1 ? 1.0 : -1.0;
    // G[i] = y_i * f(x_i) - 1 maintained incrementally.
    std::vector<double> F(N, 0.0); // f(x_i) = sum_j alpha_j y_j K_ij
    for (unsigned Iter = 0; Iter < Options.MaxIters; ++Iter) {
      double Violation = 0.0;
      std::vector<size_t> Order(N);
      for (size_t I = 0; I < N; ++I)
        Order[I] = I;
      for (size_t I = N; I > 1; --I)
        std::swap(Order[I - 1], Order[R.nextBelow(I)]);
      for (size_t I : Order) {
        double Qii = K[I][I];
        if (Qii <= 0.0)
          continue;
        double Grad = Y[I] * F[I] - 1.0;
        double Old = Alpha[I];
        double NewA = std::clamp(Old - Grad / Qii, 0.0, Options.C);
        double Delta = NewA - Old;
        if (std::fabs(Delta) < 1e-12)
          continue;
        Violation = std::max(Violation, std::fabs(Delta));
        Alpha[I] = NewA;
        for (size_t J = 0; J < N; ++J)
          F[J] += Delta * Y[I] * K[I][J];
      }
      if (Violation < Options.Epsilon)
        break;
    }
    for (size_t I = 0; I < N; ++I)
      Model.AlphaY[Cls][I] = Alpha[I] * Y[I];
  }
  return Model;
}

double jitml::rbfAccuracy(const RbfModel &Model,
                          const std::vector<NormalizedInstance> &Data) {
  if (Data.empty())
    return 0.0;
  size_t Correct = 0;
  for (const NormalizedInstance &N : Data)
    if (Model.predict(N.Components) == N.Label)
      ++Correct;
  return (double)Correct / (double)Data.size();
}
