//===- svm/LinearModel.h - Multi-class linear SVM model ---------*- C++ -*-===//
///
/// \file
/// The learned model of section 3: "a p x L matrix containing real valued
/// weights that represent the contributions of each of the p features used
/// to separate the distinct classes. The prediction time is proportional
/// to the size of the matrix." Prediction is argmax over per-class scores
/// w_c . x.
///
/// The weight matrix is stored contiguously row-major (class-major), so
/// the scoring kernels are straight-line dot products over adjacent memory
/// that the compiler autovectorizes; predictBatch amortizes the argmax
/// bookkeeping over many inputs at once (the trainer's accuracy sweep and
/// the bridge's batched prediction path).
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SVM_LINEARMODEL_H
#define JITML_SVM_LINEARMODEL_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace jitml {

class LinearModel {
public:
  LinearModel() = default;
  LinearModel(unsigned NumClasses, unsigned NumFeatures)
      : Classes(NumClasses), Features(NumFeatures),
        W((size_t)NumClasses * NumFeatures, 0.0) {}

  unsigned numClasses() const { return Classes; }
  unsigned numFeatures() const { return Features; }

  double weight(unsigned Class, unsigned Feature) const {
    return W[(size_t)Class * Features + Feature];
  }
  double &weight(unsigned Class, unsigned Feature) {
    return W[(size_t)Class * Features + Feature];
  }

  /// Direct access to the row-major weight storage (trainers update the
  /// matrix in place; the scoring kernels read it without indirection).
  double *data() { return W.data(); }
  const double *data() const { return W.data(); }
  const double *row(unsigned Class) const {
    return W.data() + (size_t)Class * Features;
  }

  /// Score of class \p Class for input \p X (dense, Features wide).
  double score(unsigned Class, const std::vector<double> &X) const;

  /// Predicted label: classes are 1-based (LIBLINEAR convention), so the
  /// returned value is argmax-class-index + 1.
  int32_t predict(const std::vector<double> &X) const;

  /// Raw-pointer prediction kernel (\p X must be Features wide).
  int32_t predictRaw(const double *X) const;

  /// Predicts \p Count inputs laid out contiguously with \p Stride doubles
  /// between consecutive inputs (Stride >= Features). Out receives Count
  /// labels. One pass per class row keeps the inner loops vectorizable.
  void predictBatch(const double *X, size_t Count, size_t Stride,
                    int32_t *Out) const;

  /// Per-class scores (used by tests and by the analysis tooling).
  std::vector<double> scores(const std::vector<double> &X) const;

  /// All class scores of \p X into \p Out (Classes wide).
  void scoresInto(const double *X, double *Out) const;

  /// Text serialization compatible with the bridge's model swapping.
  std::string toText() const;
  static bool fromText(const std::string &Text, LinearModel &Out);
  bool save(const std::string &Path) const;
  static bool load(const std::string &Path, LinearModel &Out);

private:
  unsigned Classes = 0;
  unsigned Features = 0;
  std::vector<double> W; ///< row-major: class * Features + feature
};

} // namespace jitml

#endif // JITML_SVM_LINEARMODEL_H
