//===- verify/Reducer.cpp -------------------------------------------------===//

#include "verify/Reducer.h"

#include "opt/Transformation.h"

#include <algorithm>
#include <cassert>

using namespace jitml;
using namespace jitml::verify;

namespace {

struct Budget {
  const FailPredicate &Fails;
  unsigned Remaining;
  ReduceStats Stats;

  bool probe(const FuzzInput &Candidate) {
    if (Remaining == 0)
      return false;
    --Remaining;
    ++Stats.Probes;
    return Fails(Candidate);
  }
};

/// One ddmin sweep over the byte string: try deleting chunks of Size; a
/// successful deletion restarts the scan at the new string.
bool chunkSweep(FuzzInput &Best, size_t Size, Budget &B) {
  bool Shrunk = false;
  size_t Pos = 0;
  while (Pos < Best.Bytes.size() && B.Remaining) {
    FuzzInput Candidate = Best;
    size_t N = std::min(Size, Candidate.Bytes.size() - Pos);
    Candidate.Bytes.erase(Candidate.Bytes.begin() + (long)Pos,
                          Candidate.Bytes.begin() + (long)(Pos + N));
    if (B.probe(Candidate)) {
      Best = std::move(Candidate);
      Shrunk = true; // same Pos now addresses the next chunk
    } else {
      Pos += Size;
    }
  }
  return Shrunk;
}

} // namespace

FuzzInput jitml::verify::reduceInput(const FuzzInput &Failing,
                                     const FailPredicate &StillFails,
                                     unsigned MaxProbes, ReduceStats *Stats) {
  assert(StillFails(Failing) && "reduceInput needs a failing input");
  FuzzInput Best = Failing;
  Budget B{StillFails, MaxProbes, {}};

  // 1. ddmin chunk deletion: halving granularity down to single bytes.
  for (size_t Size = std::max<size_t>(Best.Bytes.size() / 2, 1);;
       Size /= 2) {
    while (chunkSweep(Best, Size, B) && B.Remaining)
      ;
    ++B.Stats.Rounds;
    if (Size == 1 || !B.Remaining)
      break;
  }

  // 2. Zero surviving bytes (zero decisions select the simplest arms).
  for (size_t I = 0; I < Best.Bytes.size() && B.Remaining; ++I) {
    if (Best.Bytes[I] == 0)
      continue;
    FuzzInput Candidate = Best;
    Candidate.Bytes[I] = 0;
    if (B.probe(Candidate))
      Best = std::move(Candidate);
  }
  // Drop a now-all-zero tail (reads identically off the end of the
  // stream).
  while (!Best.Bytes.empty() && Best.Bytes.back() == 0 && B.Remaining) {
    FuzzInput Candidate = Best;
    Candidate.Bytes.pop_back();
    if (!B.probe(Candidate))
      break;
    Best = std::move(Candidate);
  }

  // 3. Re-enable disabled transformations one at a time; the bits that
  // must stay cleared are the failure's minimal disable-set.
  for (unsigned K = 0; K < NumTransformations && B.Remaining; ++K) {
    uint64_t Bit = 1ULL << K;
    if (Best.ModifierRaw & Bit)
      continue;
    FuzzInput Candidate = Best;
    Candidate.ModifierRaw |= Bit;
    if (B.probe(Candidate))
      Best = std::move(Candidate);
  }

  // 4. Canonicalize the remaining scalars.
  if (Best.ArgSeed != 1 && B.Remaining) {
    FuzzInput Candidate = Best;
    Candidate.ArgSeed = 1;
    if (B.probe(Candidate))
      Best = std::move(Candidate);
  }
  if (Best.Level != 0 && B.Remaining) {
    FuzzInput Candidate = Best;
    Candidate.Level = 0;
    if (B.probe(Candidate))
      Best = std::move(Candidate);
  }

  if (Stats)
    *Stats = B.Stats;
  return Best;
}
