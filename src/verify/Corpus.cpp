//===- verify/Corpus.cpp --------------------------------------------------===//

#include "verify/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jitml;
using namespace jitml::verify;

bool jitml::verify::writeCorpusFile(const std::string &Path,
                                    const CorpusEntry &E) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "# jitml corpus v1\n";
  Out << "kind: " << E.Kind << "\n";
  if (!E.Scenario.empty())
    Out << "scenario: " << E.Scenario << "\n";
  if (!E.Note.empty())
    Out << "note: " << E.Note << "\n";
  if (!E.FaultSpec.empty()) {
    Out << "faults: " << E.FaultSpec << "\n";
    Out << "faultseed: " << E.FaultSeed << "\n";
  }
  if (E.Kind == "differential")
    Out << "input: " << serializeFuzzInput(E.Input) << "\n";
  Out.flush();
  return Out.good();
}

bool jitml::verify::readCorpusFile(const std::string &Path, CorpusEntry &Out,
                                   std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Path + ": " + Msg;
    return false;
  };
  std::ifstream In(Path);
  if (!In)
    return Fail("cannot open");
  Out = CorpusEntry();
  std::string Line;
  unsigned LineNo = 0;
  bool SawInput = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos)
      return Fail("line " + std::to_string(LineNo) + ": expected 'key: value'");
    std::string Key = Line.substr(0, Colon);
    std::string Value = Line.substr(Colon + 2);
    if (Key == "kind") {
      Out.Kind = Value;
    } else if (Key == "scenario") {
      Out.Scenario = Value;
    } else if (Key == "note") {
      Out.Note = Value;
    } else if (Key == "faults") {
      Out.FaultSpec = Value;
    } else if (Key == "faultseed") {
      char *End = nullptr;
      Out.FaultSeed = std::strtoull(Value.c_str(), &End, 10);
      if (!End || *End)
        return Fail("line " + std::to_string(LineNo) + ": bad faultseed");
    } else if (Key == "input") {
      if (!deserializeFuzzInput(Value, Out.Input))
        return Fail("line " + std::to_string(LineNo) + ": bad input");
      SawInput = true;
    } else {
      return Fail("line " + std::to_string(LineNo) + ": unknown key '" + Key +
                  "'");
    }
  }
  if (Out.Kind != "differential" && Out.Kind != "scenario")
    return Fail("missing or unknown kind");
  if (Out.Kind == "differential" && !SawInput)
    return Fail("differential entry without input line");
  if (Out.Kind == "scenario" && Out.Scenario.empty())
    return Fail("scenario entry without scenario name");
  return true;
}

std::vector<std::string> jitml::verify::listCorpusFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec)) {
    if (!Entry.is_regular_file(Ec))
      continue;
    if (Entry.path().extension() == ".repro")
      Files.push_back(Entry.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}
