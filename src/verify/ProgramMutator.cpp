//===- verify/ProgramMutator.cpp ------------------------------------------===//

#include "verify/ProgramMutator.h"

#include "bytecode/Builder.h"
#include "opt/Transformation.h"

#include <cstdio>

using namespace jitml;
using namespace jitml::verify;

namespace {

/// Reads the decision stream; exhaustion yields zeros so every byte string
/// is a complete program description.
class ByteStream {
public:
  explicit ByteStream(const std::vector<uint8_t> &B) : Bytes(B) {}

  uint8_t next() { return Pos < Bytes.size() ? Bytes[Pos++] : 0; }
  /// next() reduced mod \p Bound (Bound in [1, 255]).
  unsigned below(unsigned Bound) { return next() % Bound; }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
};

/// Emits an Int32 expression onto the stack. Mirrors the shapes of
/// tests/RandomProgramTest.cpp's emitExpr, but byte-driven: same byte
/// string, same expression.
void emitExpr(MethodBuilder &MB, ByteStream &S, unsigned NumLocals,
              unsigned Depth) {
  if (Depth == 0 || S.below(4) == 0) {
    if (S.below(2))
      MB.load(S.below(NumLocals));
    else
      MB.constI(DataType::Int32, (int64_t)S.below(129) - 64);
    return;
  }
  switch (S.below(7)) {
  case 0: {
    static const BcOp Ops[] = {BcOp::Add, BcOp::Sub, BcOp::Mul, BcOp::Or,
                               BcOp::And, BcOp::Xor};
    emitExpr(MB, S, NumLocals, Depth - 1);
    emitExpr(MB, S, NumLocals, Depth - 1);
    MB.binop(Ops[S.below(6)], DataType::Int32);
    return;
  }
  case 1: // division by a guaranteed nonzero constant
    emitExpr(MB, S, NumLocals, Depth - 1);
    MB.constI(DataType::Int32, 1 + (int64_t)S.below(31));
    MB.binop(S.below(2) ? BcOp::Div : BcOp::Rem, DataType::Int32);
    return;
  case 2: // shifts by small constants
    emitExpr(MB, S, NumLocals, Depth - 1);
    MB.constI(DataType::Int32, (int64_t)S.below(8));
    MB.binop(S.below(2) ? BcOp::Shl : BcOp::Shr, DataType::Int32);
    return;
  case 3: // narrowing/widening round trip
    emitExpr(MB, S, NumLocals, Depth - 1);
    MB.conv(DataType::Int32, DataType::Int16);
    MB.conv(DataType::Int16, DataType::Int32);
    return;
  case 4: { // float detour
    emitExpr(MB, S, NumLocals, Depth - 1);
    MB.conv(DataType::Int32, DataType::Double);
    MB.constF(DataType::Double, 1.0 + (double)S.below(4));
    MB.binop(BcOp::Mul, DataType::Double);
    MB.conv(DataType::Double, DataType::Int32);
    return;
  }
  case 5: // negation
    emitExpr(MB, S, NumLocals, Depth - 1);
    MB.neg(DataType::Int32);
    return;
  default: { // redundant subtree (CSE/value-numbering fodder)
    unsigned Slot = S.below(NumLocals);
    MB.load(Slot);
    MB.load(Slot);
    MB.binop(BcOp::Add, DataType::Int32);
    return;
  }
  }
}

/// Emits one statement: a store, a branch diamond, or a counted loop.
/// Every shape terminates and leaves the stack empty.
void emitStmt(MethodBuilder &MB, ByteStream &S, unsigned NumLocals) {
  switch (S.below(4)) {
  case 0:
  case 1: // store an expression
    emitExpr(MB, S, NumLocals, 3);
    MB.store(S.below(NumLocals));
    return;
  case 2: { // branch diamond
    auto Else = MB.newLabel();
    auto Join = MB.newLabel();
    emitExpr(MB, S, NumLocals, 2);
    MB.ifZero((BcCond)S.below(6), Else);
    emitExpr(MB, S, NumLocals, 2);
    MB.store(S.below(NumLocals));
    MB.gotoLabel(Join);
    MB.place(Else);
    emitExpr(MB, S, NumLocals, 2);
    MB.store(S.below(NumLocals));
    MB.place(Join);
    return;
  }
  default: { // counted loop, trip count 1..8 (always terminates)
    unsigned Trips = 1 + S.below(8);
    unsigned Acc = S.below(NumLocals);
    uint32_t C = MB.addLocal(DataType::Int32);
    MB.constI(DataType::Int32, 0).store(C);
    auto Head = MB.newLabel();
    auto Exit = MB.newLabel();
    MB.place(Head);
    MB.load(C).constI(DataType::Int32, (int64_t)Trips);
    MB.ifCmp(BcCond::Ge, Exit);
    MB.load(Acc);
    emitExpr(MB, S, NumLocals, 2);
    MB.binop(S.below(2) ? BcOp::Add : BcOp::Xor, DataType::Int32);
    MB.store(Acc);
    MB.inc(C, 1);
    MB.gotoLabel(Head);
    MB.place(Exit);
    return;
  }
  }
}

constexpr uint64_t ModifierMask = (1ULL << NumTransformations) - 1;

int hexVal(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

} // namespace

uint32_t jitml::verify::buildFuzzProgram(Program &P, const FuzzInput &In) {
  ByteStream S(In.Bytes);
  MethodBuilder MB(P, "fuzz", -1, MF_Static | MF_Public,
                   {DataType::Int32, DataType::Int32}, DataType::Int32);
  // 1..3 Int32 temporaries, each initialized from an expression over the
  // locals already live.
  unsigned NumLocals = 2;
  unsigned Temps = 1 + S.below(3);
  for (unsigned I = 0; I < Temps; ++I) {
    uint32_t T = MB.addLocal(DataType::Int32);
    emitExpr(MB, S, NumLocals, 3);
    MB.store(T);
    ++NumLocals;
  }
  // 1..5 statements. Loop-added counter locals are intentionally NOT fed
  // back into NumLocals: expressions must only read locals that are
  // initialized on every path.
  unsigned Stmts = 1 + S.below(5);
  for (unsigned I = 0; I < Stmts; ++I)
    emitStmt(MB, S, NumLocals);
  // Epilogue: fold every addressable local into the return value so no
  // statement is trivially dead.
  MB.load(0);
  for (unsigned I = 1; I < NumLocals; ++I) {
    MB.load(I);
    MB.binop(BcOp::Xor, DataType::Int32);
  }
  emitExpr(MB, S, NumLocals, 2);
  MB.binop(BcOp::Add, DataType::Int32);
  MB.retValue(DataType::Int32);
  return MB.finish();
}

std::string jitml::verify::serializeFuzzInput(const FuzzInput &In) {
  char Head[80];
  std::snprintf(Head, sizeof(Head), "%u %016llx %llu ", (unsigned)In.Level,
                (unsigned long long)In.ModifierRaw,
                (unsigned long long)In.ArgSeed);
  std::string Out = Head;
  static const char Hex[] = "0123456789abcdef";
  for (uint8_t B : In.Bytes) {
    Out.push_back(Hex[B >> 4]);
    Out.push_back(Hex[B & 15]);
  }
  if (In.Bytes.empty())
    Out += "-"; // explicit empty marker so the line always has 4 fields
  return Out;
}

bool jitml::verify::deserializeFuzzInput(const std::string &Text,
                                         FuzzInput &Out) {
  unsigned Level = 0;
  unsigned long long Mod = 0, Seed = 0;
  int Consumed = 0;
  if (std::sscanf(Text.c_str(), "%u %llx %llu %n", &Level, &Mod, &Seed,
                  &Consumed) != 3 ||
      Level >= 5)
    return false;
  const char *Hex = Text.c_str() + Consumed;
  std::vector<uint8_t> Bytes;
  if (!(Hex[0] == '-' && Hex[1] == '\0')) {
    for (; Hex[0] && Hex[0] != '\n'; Hex += 2) {
      int Hi = hexVal(Hex[0]);
      int Lo = Hex[1] ? hexVal(Hex[1]) : -1;
      if (Hi < 0 || Lo < 0)
        return false;
      Bytes.push_back((uint8_t)((Hi << 4) | Lo));
    }
  }
  Out.Level = (uint8_t)Level;
  Out.ModifierRaw = Mod & ModifierMask;
  Out.ArgSeed = Seed;
  Out.Bytes = std::move(Bytes);
  return true;
}

FuzzInput ProgramMutator::seedInput(size_t NumBytes) {
  FuzzInput In;
  In.Bytes.resize(NumBytes);
  for (uint8_t &B : In.Bytes)
    B = (uint8_t)R.nextBelow(256);
  In.Level = (uint8_t)R.nextBelow(5);
  In.ModifierRaw = ModifierMask; // start from the unmodified plan
  In.ArgSeed = 1 + R.nextBelow(1 << 20);
  return In;
}

FuzzInput ProgramMutator::mutate(const FuzzInput &In,
                                 const std::vector<FuzzInput> &Pool) {
  FuzzInput Out = In;
  unsigned Rounds = 1 + (unsigned)R.nextBelow(3);
  for (unsigned I = 0; I < Rounds; ++I) {
    switch (R.nextBelow(10)) {
    case 0: // flip one bit
      if (!Out.Bytes.empty()) {
        size_t P = R.nextBelow(Out.Bytes.size());
        Out.Bytes[P] ^= (uint8_t)(1 << R.nextBelow(8));
      }
      break;
    case 1: // overwrite one byte
      if (!Out.Bytes.empty())
        Out.Bytes[R.nextBelow(Out.Bytes.size())] = (uint8_t)R.nextBelow(256);
      break;
    case 2: // byte arithmetic
      if (!Out.Bytes.empty())
        Out.Bytes[R.nextBelow(Out.Bytes.size())] +=
            (uint8_t)(1 + R.nextBelow(8));
      break;
    case 3: { // insert a small chunk
      size_t P = Out.Bytes.empty() ? 0 : R.nextBelow(Out.Bytes.size() + 1);
      size_t N = 1 + R.nextBelow(6);
      std::vector<uint8_t> Chunk(N);
      for (uint8_t &B : Chunk)
        B = (uint8_t)R.nextBelow(256);
      Out.Bytes.insert(Out.Bytes.begin() + (long)P, Chunk.begin(),
                       Chunk.end());
      break;
    }
    case 4: // delete a small chunk
      if (Out.Bytes.size() > 4) {
        size_t P = R.nextBelow(Out.Bytes.size() - 1);
        size_t N = 1 + R.nextBelow(std::min<size_t>(6, Out.Bytes.size() - P));
        Out.Bytes.erase(Out.Bytes.begin() + (long)P,
                        Out.Bytes.begin() + (long)(P + N));
      }
      break;
    case 5: // splice a tail from a pool partner
      if (!Pool.empty()) {
        const FuzzInput &Mate = Pool[R.nextBelow(Pool.size())];
        if (!Mate.Bytes.empty() && !Out.Bytes.empty()) {
          size_t Cut = R.nextBelow(Out.Bytes.size());
          size_t From = R.nextBelow(Mate.Bytes.size());
          Out.Bytes.resize(Cut);
          Out.Bytes.insert(Out.Bytes.end(), Mate.Bytes.begin() + (long)From,
                           Mate.Bytes.end());
        }
      }
      break;
    case 6: // focus level
      Out.Level = (uint8_t)R.nextBelow(5);
      break;
    case 7: // flip one modifier bit — a learned model may clear any of them
      Out.ModifierRaw ^= 1ULL << R.nextBelow(NumTransformations);
      break;
    case 8: // modifier extremes: the null modifier / everything disabled
      Out.ModifierRaw = R.nextBool(0.5) ? ModifierMask : 0;
      break;
    default: // new argument tuples
      Out.ArgSeed = 1 + R.nextBelow(1 << 20);
      break;
    }
  }
  Out.ModifierRaw &= ModifierMask;
  if (Out.Bytes.size() > 4096) // keep generator inputs bounded
    Out.Bytes.resize(4096);
  return Out;
}
