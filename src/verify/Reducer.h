//===- verify/Reducer.h - Delta-debugging failing fuzz inputs ---*- C++ -*-===//
///
/// \file
/// Deterministic test-case reduction. Given a failing FuzzInput and a
/// predicate that re-runs the oracle, reduceInput shrinks along every axis
/// the input has: ddmin-style chunk deletion over the decision bytes
/// (smaller byte string -> structurally smaller program), zeroing of the
/// surviving bytes (zero decisions pick the simplest generator arm), then
/// re-enabling disabled modifier bits one at a time — whatever stays
/// cleared after that is the minimal set of disabled transformations the
/// failure needs — and finally collapsing the argument seed. Probe count
/// is bounded, every probe is a pure function of its input, and the
/// result is guaranteed to still satisfy the predicate.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_VERIFY_REDUCER_H
#define JITML_VERIFY_REDUCER_H

#include "verify/ProgramMutator.h"

#include <functional>

namespace jitml {
namespace verify {

/// Returns true when the candidate still exhibits the failure being
/// reduced (typically: same DivergenceKind from runOracle).
using FailPredicate = std::function<bool(const FuzzInput &)>;

struct ReduceStats {
  unsigned Probes = 0;  ///< predicate evaluations spent
  unsigned Rounds = 0;  ///< ddmin granularity rounds completed
};

/// Shrinks \p Failing while \p StillFails holds. \p Failing itself must
/// satisfy the predicate (asserted). Stops early after \p MaxProbes
/// predicate calls.
FuzzInput reduceInput(const FuzzInput &Failing, const FailPredicate &StillFails,
                      unsigned MaxProbes = 400, ReduceStats *Stats = nullptr);

} // namespace verify
} // namespace jitml

#endif // JITML_VERIFY_REDUCER_H
