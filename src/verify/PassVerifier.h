//===- verify/PassVerifier.h - Pass-interposed IL checking ------*- C++ -*-===//
///
/// \file
/// The hook the optimizer (and the IL generator's caller) uses to run
/// il/ILVerifier between passes. Three modes, selected by JITML_VERIFY_IL:
///
///   Off    (unset, "0", "off")  one relaxed load + predictable branch per
///                               executed pass — the production path
///   Count  ("count")            count crossings in verify.checks without
///                               running the checks; the overhead gate in
///                               bench/fuzz_differential uses this to price
///                               the interposition points
///   Full   (anything else)     run verifyILDeep after every executed pass
///                               and after IL generation; a failure reports
///                               method/pass/plan-index plus every violated
///                               invariant, then calls the failure handler
///                               (default: print to stderr and abort — a
///                               miscompile must not limp on)
///
/// The same translation unit owns the (level x transformation) coverage map
/// the differential fuzzer steers by: notePassCoverage() marks "this pass
/// changed IL at this opt level" and returns whether the bit is new, which
/// is what makes a mutated program interesting enough to keep in the pool.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_VERIFY_PASSVERIFIER_H
#define JITML_VERIFY_PASSVERIFIER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace jitml {

class MethodIL;

namespace verify {

enum class VerifyIlMode : uint8_t { Off = 0, Count, Full };

/// The process-wide mode, read from JITML_VERIFY_IL once on first use.
/// The accessor is a single relaxed atomic load after initialization.
VerifyIlMode verifyIlMode();

/// Test/driver override; takes effect immediately on all threads.
void setVerifyIlMode(VerifyIlMode M);

/// Everything a failed check knows, handed to the failure handler.
struct PassCheckFailure {
  uint32_t MethodIndex = 0;
  std::string PassName;   ///< transformation name, or "ilgen"
  int PlanIndex = -1;     ///< index into the plan's entries; -1 = not a pass
  std::vector<std::string> Errors; ///< verifyILDeep diagnostics
};

/// Renders the failure as the multi-line diagnostic the default handler
/// prints (method/pass header + one line per violated invariant).
std::string formatFailure(const PassCheckFailure &F);

using FailureHandler = std::function<void(const PassCheckFailure &)>;

/// Installs \p H as the failure sink; pass nullptr to restore the default
/// print-and-abort handler. Tests install a collector; the fuzzer installs
/// a recorder so one bad pass output becomes a divergence, not a crash.
void setVerifyFailureHandler(FailureHandler H);

/// The interposition point. Call only when verifyIlMode() != Off (callers
/// keep the disabled path to one branch). Count mode bumps verify.checks;
/// Full mode additionally runs verifyILDeep and routes any violation —
/// counted in verify.failures — to the failure handler. Returns false when
/// a violation was found and a collecting handler swallowed it: the IL is
/// no longer trusted, so the caller must stop feeding it through further
/// passes (with the default handler the process aborts instead).
bool checkAfterPass(const MethodIL &IL, const char *PassName, int PlanIndex);

// --- (opt level x transformation) coverage map ---------------------------

namespace detail {
extern std::atomic<bool> CoverageOn;
} // namespace detail

/// Disabled cost in optimize(): one relaxed load + predictable branch.
inline bool coverageEnabled() {
  return detail::CoverageOn.load(std::memory_order_relaxed);
}

/// Turns coverage recording on/off (the fuzz driver flips it on once).
void setCoverageEnabled(bool On);

/// Zeroes the bitmap and the verify.coverage_bits gauge.
void resetCoverage();

/// Marks (Level, Kind) covered — "this transformation changed IL at this
/// opt level". Returns true when the bit was not set before (new coverage).
bool notePassCoverage(unsigned Level, unsigned Kind);

/// Number of set bits in the (level x transformation) map.
unsigned coverageBitCount();

} // namespace verify
} // namespace jitml

#endif // JITML_VERIFY_PASSVERIFIER_H
