//===- verify/Corpus.h - Persistent repro store -----------------*- C++ -*-===//
///
/// \file
/// The on-disk corpus under tests/corpus/: one small text file per repro,
/// replayed by tests/CorpusTest.cpp on every ctest run. Two kinds:
///
///   differential  a reduced FuzzInput (plus the fault spec that injected
///                 the bug, when there was one). Replay = run the oracle;
///                 with the recorded faults armed it must diverge the same
///                 way, with them disarmed it must not diverge at all.
///   scenario      a named historical bug class (e.g. "stale-install");
///                 CorpusTest maps the name to a hand-written replay.
///
/// Format ("# jitml corpus v1" header, then "key: value" lines):
///
///   kind: differential | scenario
///   scenario: <name>            (scenario only)
///   note: <free text>
///   faults: <JITML_FAULTS spec> (optional)
///   faultseed: <uint64>         (optional)
///   input: <serializeFuzzInput> (differential only)
///
//===----------------------------------------------------------------------===//

#ifndef JITML_VERIFY_CORPUS_H
#define JITML_VERIFY_CORPUS_H

#include "verify/ProgramMutator.h"

#include <string>
#include <vector>

namespace jitml {
namespace verify {

struct CorpusEntry {
  std::string Kind;      ///< "differential" or "scenario"
  std::string Scenario;  ///< scenario name when Kind == "scenario"
  std::string Note;      ///< one-line provenance (what/when/why)
  std::string FaultSpec; ///< arm before replay; "" = none
  uint64_t FaultSeed = 0;
  FuzzInput Input;       ///< valid when Kind == "differential"
};

/// Writes \p E to \p Path (atomic enough for tests: whole-file rewrite).
bool writeCorpusFile(const std::string &Path, const CorpusEntry &E);

/// Parses a corpus file; on failure returns false with a one-line
/// diagnostic in \p Err (when non-null).
bool readCorpusFile(const std::string &Path, CorpusEntry &Out,
                    std::string *Err = nullptr);

/// All *.repro files directly under \p Dir, sorted by name (deterministic
/// replay order); empty when the directory does not exist.
std::vector<std::string> listCorpusFiles(const std::string &Dir);

} // namespace verify
} // namespace jitml

#endif // JITML_VERIFY_CORPUS_H
