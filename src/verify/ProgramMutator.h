//===- verify/ProgramMutator.h - Fuzz inputs and mutation -------*- C++ -*-===//
///
/// \file
/// The differential fuzzer's input representation and mutator. A FuzzInput
/// is a flat byte string plus a (level, modifier, argseed) triple; the
/// bytes drive a decision-stream program generator (buildFuzzProgram) that
/// can only emit verifier-valid, always-terminating methods: loops are
/// counted with small constant trip counts, divisors and shift amounts are
/// clamped nonzero/small, and every local is typed Int32. Because the
/// mapping bytes -> program is total (an exhausted stream reads as zeros),
/// the mutator can do dumb byte surgery — flips, arithmetic, chunk
/// insert/delete, splicing — and every mutant is still a runnable program,
/// the property that makes coverage-guided fuzzing cheap.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_VERIFY_PROGRAMMUTATOR_H
#define JITML_VERIFY_PROGRAMMUTATOR_H

#include "bytecode/Program.h"
#include "opt/Transformation.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jitml {
namespace verify {

/// One fuzz candidate: the generator decision stream plus the compilation
/// strategy it is executed under.
struct FuzzInput {
  std::vector<uint8_t> Bytes;
  /// Focus level for the async replay (the sync oracle runs all levels).
  uint8_t Level = 0;
  /// Raw 58-bit enabled mask (bit set = transformation enabled). Kept
  /// canonical (no bits above NumTransformations) so serialization — which
  /// masks on read — round-trips exactly.
  uint64_t ModifierRaw = (1ULL << NumTransformations) - 1;
  /// Seeds the argument tuples the oracle feeds the method.
  uint64_t ArgSeed = 1;

  bool operator==(const FuzzInput &O) const {
    return Bytes == O.Bytes && Level == O.Level &&
           ModifierRaw == O.ModifierRaw && ArgSeed == O.ArgSeed;
  }
};

/// One-line text form "level modifier argseed bytes-hex" used by the
/// corpus format and campaign logs.
std::string serializeFuzzInput(const FuzzInput &In);
/// Parses serializeFuzzInput output; false on malformed text.
bool deserializeFuzzInput(const std::string &Text, FuzzInput &Out);

/// Builds the method the decision stream describes into \p P and returns
/// its index. Signature is always fuzz(Int32, Int32) -> Int32. Total:
/// every byte string maps to a valid method.
uint32_t buildFuzzProgram(Program &P, const FuzzInput &In);

/// Deterministic input mutator (all randomness from the caller's Rng).
class ProgramMutator {
public:
  explicit ProgramMutator(uint64_t Seed) : R(Seed) {}

  /// Returns a mutant of \p In; \p Pool (may be empty) supplies splice
  /// partners. Byte mutations dominate; level/modifier/argseed mutations
  /// are rarer so a mutant usually stays comparable to its parent.
  FuzzInput mutate(const FuzzInput &In, const std::vector<FuzzInput> &Pool);

  /// A fresh random seed input (used to found the initial pool).
  FuzzInput seedInput(size_t NumBytes);

private:
  Rng R;
};

} // namespace verify
} // namespace jitml

#endif // JITML_VERIFY_PROGRAMMUTATOR_H
