//===- verify/PassVerifier.cpp --------------------------------------------===//

#include "verify/PassVerifier.h"

#include "il/ILVerifier.h"
#include "il/MethodIL.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace jitml;
using namespace jitml::verify;

namespace {

std::atomic<int> ModeCell{-1}; // -1 = not yet read from the environment

VerifyIlMode readModeFromEnv() {
  const char *E = std::getenv("JITML_VERIFY_IL");
  if (!E || !*E || std::strcmp(E, "0") == 0 || std::strcmp(E, "off") == 0)
    return VerifyIlMode::Off;
  if (std::strcmp(E, "count") == 0)
    return VerifyIlMode::Count;
  return VerifyIlMode::Full;
}

std::mutex HandlerMu;
FailureHandler Handler; // null = default print-and-abort

struct VerifyCounters {
  TelemetryCounter *Checks;
  TelemetryCounter *Failures;
  VerifyCounters() {
    MetricRegistry &R = MetricRegistry::global();
    Checks = &R.counter("verify.checks");
    Failures = &R.counter("verify.failures");
  }
};

VerifyCounters &counters() {
  static VerifyCounters C;
  return C;
}

constexpr unsigned CoverageLevels = 5;
std::atomic<uint64_t> CovBits[CoverageLevels];

} // namespace

namespace jitml {
namespace verify {
namespace detail {
std::atomic<bool> CoverageOn{false};
} // namespace detail
} // namespace verify
} // namespace jitml

VerifyIlMode jitml::verify::verifyIlMode() {
  int M = ModeCell.load(std::memory_order_relaxed);
  if (M >= 0)
    return (VerifyIlMode)M;
  VerifyIlMode Read = readModeFromEnv();
  int Expected = -1;
  ModeCell.compare_exchange_strong(Expected, (int)Read,
                                   std::memory_order_relaxed);
  return (VerifyIlMode)ModeCell.load(std::memory_order_relaxed);
}

void jitml::verify::setVerifyIlMode(VerifyIlMode M) {
  ModeCell.store((int)M, std::memory_order_relaxed);
}

std::string jitml::verify::formatFailure(const PassCheckFailure &F) {
  char Head[160];
  std::snprintf(Head, sizeof(Head),
                "IL verification failed: method %u after %s%s",
                F.MethodIndex, F.PassName.c_str(),
                F.PlanIndex >= 0 ? "" : " (pre-optimization)");
  std::string Out = Head;
  if (F.PlanIndex >= 0) {
    std::snprintf(Head, sizeof(Head), " (plan entry %d)", F.PlanIndex);
    Out += Head;
  }
  for (const std::string &E : F.Errors) {
    Out += "\n  ";
    Out += E;
  }
  return Out;
}

void jitml::verify::setVerifyFailureHandler(FailureHandler H) {
  std::lock_guard<std::mutex> Lock(HandlerMu);
  Handler = std::move(H);
}

bool jitml::verify::checkAfterPass(const MethodIL &IL, const char *PassName,
                                   int PlanIndex) {
  counters().Checks->add();
  if (verifyIlMode() != VerifyIlMode::Full)
    return true;
  std::vector<std::string> Errors = verifyILDeep(IL);
  if (Errors.empty())
    return true;
  counters().Failures->add();
  PassCheckFailure F;
  F.MethodIndex = IL.methodIndex();
  F.PassName = PassName;
  F.PlanIndex = PlanIndex;
  F.Errors = std::move(Errors);
  FailureHandler H;
  {
    std::lock_guard<std::mutex> Lock(HandlerMu);
    H = Handler;
  }
  if (H) {
    H(F);
    return false;
  }
  std::fprintf(stderr, "%s\n", formatFailure(F).c_str());
  std::abort();
}

void jitml::verify::setCoverageEnabled(bool On) {
  detail::CoverageOn.store(On, std::memory_order_relaxed);
}

void jitml::verify::resetCoverage() {
  for (std::atomic<uint64_t> &W : CovBits)
    W.store(0, std::memory_order_relaxed);
  MetricRegistry::global().gauge("verify.coverage_bits").set(0);
}

bool jitml::verify::notePassCoverage(unsigned Level, unsigned Kind) {
  if (Level >= CoverageLevels || Kind >= 64)
    return false;
  uint64_t Bit = 1ULL << Kind;
  uint64_t Prev =
      CovBits[Level].fetch_or(Bit, std::memory_order_relaxed);
  if (Prev & Bit)
    return false;
  MetricRegistry::global().gauge("verify.coverage_bits").set(
      (int64_t)coverageBitCount());
  return true;
}

unsigned jitml::verify::coverageBitCount() {
  unsigned N = 0;
  for (const std::atomic<uint64_t> &W : CovBits)
    N += (unsigned)__builtin_popcountll(W.load(std::memory_order_relaxed));
  return N;
}
