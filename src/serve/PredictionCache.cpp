//===- serve/PredictionCache.cpp ------------------------------------------===//

#include "serve/PredictionCache.h"

using namespace jitml;

PredictionCache::PredictionCache(size_t Capacity) : Capacity(Capacity) {
  MetricRegistry &R = MetricRegistry::global();
  HitsCtr = &R.counter("serve.cache_hits");
  MissesCtr = &R.counter("serve.cache_misses");
  EvictionsCtr = &R.counter("serve.cache_evictions");
}

bool PredictionCache::lookup(uint64_t Version, OptLevel Level,
                             uint64_t FeatureHash,
                             std::optional<uint64_t> &Answer) {
  if (Capacity == 0)
    return false;
  Key K{Version, (uint8_t)Level, FeatureHash};
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(K);
  if (It == Index.end()) {
    ++Count.Misses;
    MissesCtr->add();
    return false;
  }
  Lru.splice(Lru.begin(), Lru, It->second); // touch: move to MRU position
  Answer = It->second->Answer;
  ++Count.Hits;
  HitsCtr->add();
  return true;
}

void PredictionCache::insert(uint64_t Version, OptLevel Level,
                             uint64_t FeatureHash,
                             std::optional<uint64_t> Answer) {
  if (Capacity == 0)
    return;
  Key K{Version, (uint8_t)Level, FeatureHash};
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(K);
  if (It != Index.end()) {
    // Same (version, level, hash) → same answer; just refresh recency.
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  if (Lru.size() >= Capacity) {
    Index.erase(Lru.back().K);
    Lru.pop_back();
    ++Count.Evictions;
    EvictionsCtr->add();
  }
  Lru.push_front(Entry{K, Answer});
  Index.emplace(K, Lru.begin());
}

PredictionCache::Stats PredictionCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S = Count;
  S.Entries = Lru.size();
  return S;
}
