//===- serve/Batcher.h - Deadline-bounded cross-client batching -*- C++ -*-===//
///
/// \file
/// The daemon's prediction engine: pending (level, features) entries from
/// ALL connected clients coalesce into one predictBatch call over the
/// dense scoring kernels, amortizing the thread handoff, the registry
/// snapshot, and the per-class row walk across every VM instance that has
/// a compilation waiting. Identical in-flight entries — a fleet compiling
/// the same hot method asks the same (level, feature-hash) question — are
/// additionally deduplicated within the batch: one dense row is computed
/// and its answer fans out to every asker (serve.coalesced counts these).
///
/// Batch closing policy — a batch closes as soon as ANY of:
///  * it holds every currently-admitted-but-unanswered entry (the
///    Outstanding counter the server maintains) AND a short linger window
///    passes without a new arrival. The linger matters: admissions are
///    staggered by socket reads, so "the batch holds everything admitted"
///    is routinely true a few microseconds before the other clients'
///    frames land — closing instantly would degenerate into batches of
///    one with a full thread handoff each (measured: it halves
///    throughput). Every arrival during the linger extends it;
///  * it reaches MaxBatch entries (the wire-protocol batch cap);
///  * the deadline (JITML_SERVE_BATCH_US past the batch's first entry)
///    expires: a straggler whose frame is still being reassembled must
///    not stall everyone else.
///
/// At steady state with N synchronous clients this self-clocks into
/// batches of ~N at one linger (tens of us) of added latency.
///
/// stop() drains: every entry already pushed is still predicted and
/// flushed before the thread exits, so graceful shutdown never leaves an
/// unanswered inflight frame.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SERVE_BATCHER_H
#define JITML_SERVE_BATCHER_H

#include "serve/PredictionCache.h"
#include "serve/Registry.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

namespace jitml {

/// One admitted prediction request, as the event loop hands it over.
struct PredictRequest {
  uint64_t ConnId = 0;  ///< server-side connection identity
  uint32_t Tag = 0;     ///< entry index within the client's request frame
  OptLevel Level = OptLevel::Cold;
  FeatureVector Features;
  uint64_t FeatureHash = 0; ///< Features.hash(), computed once at admit
  uint64_t AdmitUs = 0;     ///< telemetryNowUs() at admission
};

/// One prediction outcome, flushed back to the event loop.
struct PredictResult {
  uint64_t ConnId = 0;
  uint32_t Tag = 0;
  bool Has = false;    ///< false: no model for this level (degraded entry)
  uint64_t Bits = 0;
  uint64_t Version = 0; ///< model version that answered
  uint64_t AdmitUs = 0;
};

class MicroBatcher {
public:
  /// \p Flush runs on the batcher thread with each completed batch; the
  /// server posts the results to its event loop from there. \p Outstanding
  /// is the server's admitted-but-unanswered entry count (see the batch
  /// closing policy above). \p Cache may be null (caching disabled).
  /// \p LingerUs is the straggler window described above (clamped to the
  /// deadline; 0 restores close-on-first-quiescence).
  MicroBatcher(ModelRegistry &Registry, PredictionCache *Cache,
               const std::atomic<uint64_t> &Outstanding, int DeadlineUs,
               int LingerUs, size_t MaxBatch,
               std::function<void(std::vector<PredictResult> &&)> Flush);
  ~MicroBatcher(); ///< stop()

  void start();
  /// Drains the queue (every pushed entry is still predicted and flushed),
  /// then joins the thread. Idempotent.
  void stop();

  void push(PredictRequest R);
  void pushMany(std::vector<PredictRequest> Rs);

  uint64_t batches() const { return Batches.load(std::memory_order_relaxed); }
  uint64_t entries() const { return Entries.load(std::memory_order_relaxed); }

private:
  void run();
  /// Predicts one closed batch and hands the results to Flush.
  void processBatch(std::vector<PredictRequest> &Batch);

  ModelRegistry &Registry;
  PredictionCache *Cache;
  const std::atomic<uint64_t> &Outstanding;
  const int DeadlineUs;
  const int LingerUs;
  const size_t MaxBatch;
  std::function<void(std::vector<PredictResult> &&)> Flush;

  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<PredictRequest> Queue;
  bool Stopping = false;
  bool Started = false;
  std::thread Worker;

  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> Entries{0};
  TelemetryCounter *BatchesCtr, *EntriesCtr, *PredictionsCtr, *CoalescedCtr;
  TelemetryHistogram *BatchUs, *BatchFill;
};

} // namespace jitml

#endif // JITML_SERVE_BATCHER_H
