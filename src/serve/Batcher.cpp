//===- serve/Batcher.cpp --------------------------------------------------===//

#include "serve/Batcher.h"

#include "support/FaultInjection.h"

#include <chrono>
#include <unordered_map>

using namespace jitml;

MicroBatcher::MicroBatcher(
    ModelRegistry &Registry, PredictionCache *Cache,
    const std::atomic<uint64_t> &Outstanding, int DeadlineUs, int LingerUs,
    size_t MaxBatch,
    std::function<void(std::vector<PredictResult> &&)> Flush)
    : Registry(Registry), Cache(Cache), Outstanding(Outstanding),
      DeadlineUs(DeadlineUs),
      LingerUs(LingerUs < DeadlineUs ? LingerUs : DeadlineUs),
      MaxBatch(MaxBatch ? MaxBatch : 1), Flush(std::move(Flush)) {
  MetricRegistry &R = MetricRegistry::global();
  BatchesCtr = &R.counter("serve.batches");
  EntriesCtr = &R.counter("serve.batch_entries");
  PredictionsCtr = &R.counter("serve.predictions");
  CoalescedCtr = &R.counter("serve.coalesced");
  BatchUs = &R.histogram("serve.batch");
  BatchFill = &R.histogram("serve.batch_fill");
}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::start() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Started)
    return;
  Started = true;
  Stopping = false;
  Worker = std::thread([this] { run(); });
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Started)
      return;
    Stopping = true;
  }
  Cv.notify_all();
  Worker.join();
  std::lock_guard<std::mutex> Lock(Mu);
  Started = false;
}

void MicroBatcher::push(PredictRequest R) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(R));
  }
  Cv.notify_one();
}

void MicroBatcher::pushMany(std::vector<PredictRequest> Rs) {
  if (Rs.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (PredictRequest &R : Rs)
      Queue.push_back(std::move(R));
  }
  Cv.notify_one();
}

void MicroBatcher::run() {
  using Clock = std::chrono::steady_clock;
  std::vector<PredictRequest> Batch;
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    Cv.wait(Lock, [&] { return !Queue.empty() || Stopping; });
    if (Queue.empty() && Stopping)
      break; // drained: every pushed entry has been flushed
    Clock::time_point Deadline =
        Clock::now() + std::chrono::microseconds(DeadlineUs);
    Batch.clear();
    auto Take = [&] {
      while (!Queue.empty() && Batch.size() < MaxBatch) {
        Batch.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    };
    Take();
    // Collect per the closing policy in the header. Outstanding >=
    // Batch.size() always: batch entries stay unanswered until we flush
    // them. Admissions are staggered by socket reads, so once the batch
    // covers everything admitted we still linger briefly for stragglers,
    // extending whenever the batch grows; the deadline caps the total wait.
    while (!Stopping && Batch.size() < MaxBatch) {
      Clock::time_point Now = Clock::now();
      if (Now >= Deadline) {
        Take();
        break;
      }
      if (Batch.size() < Outstanding.load(std::memory_order_relaxed)) {
        Cv.wait_until(Lock, Deadline);
        Take();
        continue;
      }
      if (LingerUs <= 0)
        break;
      Clock::time_point LingerEnd =
          Now + std::chrono::microseconds(LingerUs);
      if (LingerEnd > Deadline)
        LingerEnd = Deadline;
      size_t Prev = Batch.size();
      Cv.wait_until(Lock, LingerEnd);
      Take();
      if (Batch.size() == Prev && Clock::now() >= LingerEnd)
        break; // quiesced for a full linger: close
    }
    Lock.unlock();
    processBatch(Batch);
    Lock.lock();
  }
}

void MicroBatcher::processBatch(std::vector<PredictRequest> &Batch) {
  if (Batch.empty())
    return;
  uint64_t StartUs = telemetryNowUs();
  std::shared_ptr<const ServeModel> Model = Registry.snapshot();
  uint64_t Version = Model ? Model->Version : 0;
  std::vector<PredictResult> Results(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    Results[I].ConnId = Batch[I].ConnId;
    Results[I].Tag = Batch[I].Tag;
    Results[I].AdmitUs = Batch[I].AdmitUs;
    Results[I].Version = Version;
  }

  uint64_t SlowMs = 1;
  if (JITML_FAULT_POINT_ARG("serve.backend.slow", SlowMs))
    faultDelayMs(SlowMs); // a slow model must delay, never corrupt

  // Coalesce identical in-flight entries: concurrent clients compiling
  // the same hot method ask the same (level, features) question, and one
  // dense row answers all of them. Keyed like the cache, on (level,
  // feature hash). Rep[I] is the batch index whose computed answer entry
  // I receives; representatives have Rep[I] == I.
  std::vector<size_t> Rep(Batch.size());
  size_t Uniques = 0;
  {
    std::unordered_map<uint64_t, size_t> FirstOf;
    FirstOf.reserve(Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      uint64_t Key = Batch[I].FeatureHash * 31 + (unsigned)Batch[I].Level;
      auto It = FirstOf.emplace(Key, I);
      Rep[I] = It.first->second;
      Uniques += It.second;
    }
  }
  if (Batch.size() > Uniques)
    CoalescedCtr->add(Batch.size() - Uniques);

  // Group representatives by level so each covered level runs one dense
  // predictBatch over a contiguous row-major matrix of scaled features.
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    std::vector<size_t> Idx;
    for (size_t I = 0; I < Batch.size(); ++I)
      if (Rep[I] == I && (unsigned)Batch[I].Level == L)
        Idx.push_back(I);
    if (Idx.empty())
      continue;
    const LevelModel *LM =
        Model ? &Model->Set.Levels[L] : nullptr;
    if (!LM || !LM->Valid)
      continue; // every entry at this level stays Has=false (degraded)
    std::vector<double> X(Idx.size() * NumFeatures);
    for (size_t I = 0; I < Idx.size(); ++I) {
      std::vector<double> Row = LM->Scale.apply(Batch[Idx[I]].Features);
      std::copy(Row.begin(), Row.end(), X.begin() + I * NumFeatures);
    }
    std::vector<int32_t> Labels(Idx.size());
    LM->Model.predictBatch(X.data(), Idx.size(), NumFeatures, Labels.data());
    for (size_t I = 0; I < Idx.size(); ++I) {
      uint64_t Bits = 0;
      if (LM->Labels.modifierFor(Labels[I], Bits)) {
        Results[Idx[I]].Has = true;
        Results[Idx[I]].Bits = Bits;
      } // unknown label: fail safe to the base plan (Has stays false)
    }
  }

  for (size_t I = 0; I < Batch.size(); ++I) {
    if (Rep[I] != I) { // coalesced: take the representative's answer
      Results[I].Has = Results[Rep[I]].Has;
      Results[I].Bits = Results[Rep[I]].Bits;
      continue;
    }
    if (Cache)
      Cache->insert(Version, Batch[I].Level, Batch[I].FeatureHash,
                    Results[I].Has ? std::optional<uint64_t>(Results[I].Bits)
                                   : std::nullopt);
  }

  Batches.fetch_add(1, std::memory_order_relaxed);
  Entries.fetch_add(Batch.size(), std::memory_order_relaxed);
  BatchesCtr->add();
  EntriesCtr->add(Batch.size());
  PredictionsCtr->add(Uniques); // dense rows actually computed
  BatchFill->record(Batch.size());
  uint64_t DurUs = telemetryNowUs() - StartUs;
  BatchUs->record(DurUs);
  if (TraceEmitter::global().enabled()) {
    TraceEvent E;
    E.Stage = "serve.batch";
    E.StartUs = StartUs;
    E.DurUs = DurUs;
    E.Items = (int64_t)Batch.size();
    TraceEmitter::global().record(E);
  }
  Flush(std::move(Results));
}
