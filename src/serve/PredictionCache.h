//===- serve/PredictionCache.h - Shared LRU prediction cache ----*- C++ -*-===//
///
/// \file
/// One process-wide prediction cache for the serving daemon, replacing the
/// N per-client caches of the single-client deployment: a modifier
/// predicted for one VM's method shape is immediately reusable by every
/// other VM compiling the same shape (method shapes repeat heavily across
/// identical workload instances).
///
/// Keyed by (model version, level, feature hash): a hot-reloaded model
/// bumps the registry epoch, so stale predictions are never served — no
/// explicit invalidation sweep, the old version's entries simply stop
/// being looked up and age out of the LRU tail.
///
/// Negative answers ("no model for this level" under version V) are cached
/// too; they are as expensive to recompute as positives and equally
/// version-scoped.
///
/// Thread safety: one mutex around a classic list+map LRU. The daemon hits
/// it from the event loop and the batcher; contention is two threads, not
/// a pool, so striping would buy nothing.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SERVE_PREDICTIONCACHE_H
#define JITML_SERVE_PREDICTIONCACHE_H

#include "opt/Plan.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace jitml {

class PredictionCache {
public:
  /// \p Capacity in entries; 0 disables the cache (lookups miss, inserts
  /// are dropped).
  explicit PredictionCache(size_t Capacity);

  /// True on hit; \p Answer receives the cached prediction (nullopt = the
  /// model of \p Version had no answer for this level).
  bool lookup(uint64_t Version, OptLevel Level, uint64_t FeatureHash,
              std::optional<uint64_t> &Answer);

  /// Inserts (or refreshes) one prediction, evicting the LRU tail at
  /// capacity.
  void insert(uint64_t Version, OptLevel Level, uint64_t FeatureHash,
              std::optional<uint64_t> Answer);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0; ///< current size
  };
  Stats stats() const;

  size_t capacity() const { return Capacity; }

private:
  struct Key {
    uint64_t Version;
    uint8_t Level;
    uint64_t FeatureHash;
    bool operator==(const Key &O) const {
      return Version == O.Version && Level == O.Level &&
             FeatureHash == O.FeatureHash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      // splitmix-style stir of the three components; FeatureHash is
      // already well-mixed, Version/Level are small integers.
      uint64_t H = K.FeatureHash;
      H ^= (K.Version + 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
      H ^= ((uint64_t)K.Level + 1) * 0x94d049bb133111ebULL;
      return (size_t)(H ^ (H >> 31));
    }
  };
  struct Entry {
    Key K;
    std::optional<uint64_t> Answer;
  };

  const size_t Capacity;
  mutable std::mutex Mu;
  std::list<Entry> Lru; ///< front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> Index;
  Stats Count;
  TelemetryCounter *HitsCtr, *MissesCtr, *EvictionsCtr;
};

} // namespace jitml

#endif // JITML_SERVE_PREDICTIONCACHE_H
