//===- serve/Registry.h - Versioned hot-reload model registry ---*- C++ -*-===//
///
/// \file
/// The daemon's model store. The paper swaps models by restarting the
/// model process ("enabling the machine-learned model to be replaced
/// without any change to the rest of the infrastructure"); a multi-client
/// daemon cannot restart without stalling every connected VM, so the
/// registry supports atomic hot-reload instead:
///
///  * every installed ModelSet gets a monotonically increasing version
///    (the epoch);
///  * snapshot() hands out a shared_ptr to an immutable version — requests
///    in flight when a reload lands simply finish on the version they
///    started with;
///  * reloadFromFile is all-or-nothing: a torn or malformed bundle leaves
///    the current version serving and counts serve.reload_failed.
///
/// The bundle file format is line-oriented with @-markers so a truncated
/// write (the classic torn-file failure) is always detected — a bundle
/// without its trailing "@end" never installs:
///
///   jitml-serve-bundle v1
///   @level <n>
///   @scaling  ... Scaling::toText lines ...
///   @labels   ... LabelMap::toText lines ...
///   @model    ... LinearModel::toText lines ...
///   (more @level sections)
///   @end
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SERVE_REGISTRY_H
#define JITML_SERVE_REGISTRY_H

#include "features/FeatureVector.h"
#include "jitml/ModelSet.h"

#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace jitml {

/// One immutable installed model version.
struct ServeModel {
  uint64_t Version = 0;
  ModelSet Set;

  /// Scalar prediction through the same scale→predict→label-lookup chain
  /// the in-process LearnedStrategyProvider uses; nullopt for levels
  /// without a valid model (or an unknown label). The daemon's batcher
  /// produces bit-identical answers through the dense batch kernels.
  std::optional<uint64_t> predict(OptLevel Level,
                                  const FeatureVector &Features) const;
};

class ModelRegistry {
public:
  ModelRegistry();

  /// Installs \p Set as the new current version; returns the version it
  /// received. Never fails: the set's validity per level is whatever the
  /// caller built.
  uint64_t install(ModelSet Set);

  /// Parses a bundle file and installs it as a new version. On ANY
  /// failure — unreadable file, bad header, torn section, missing @end,
  /// or the forced "serve.reload.torn" fault — returns false and keeps
  /// the current version serving.
  bool reloadFromFile(const std::string &BundlePath);

  /// The current version; requests hold the returned pointer for their
  /// whole lifetime, so a concurrent reload never tears an answer.
  /// nullptr until the first install.
  std::shared_ptr<const ServeModel> snapshot() const;

  /// Current version number; 0 until the first install.
  uint64_t version() const;

  uint64_t reloads() const;       ///< successful installs
  uint64_t reloadFailures() const;

  /// Serializes \p Set as a bundle (see the file comment) — the writing
  /// half of reloadFromFile, used by deploy tooling and tests.
  static std::string bundleText(const ModelSet &Set);
  /// Parses bundle text; false (with \p Error set when non-null) on any
  /// malformation.
  static bool parseBundle(const std::string &Text, ModelSet &Out,
                          std::string *Error = nullptr);

private:
  mutable std::mutex Mu;
  std::shared_ptr<const ServeModel> Current;
  uint64_t NextVersion = 1;
  uint64_t ReloadCount = 0;
  uint64_t ReloadFailed = 0;
};

} // namespace jitml

#endif // JITML_SERVE_REGISTRY_H
