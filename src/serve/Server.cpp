//===- serve/Server.cpp ---------------------------------------------------===//

#include "serve/Server.h"

#include "support/Env.h"
#include "support/FaultInjection.h"

#include <cstring>
#include <deque>
#include <errno.h>
#include <fcntl.h>
#include <mutex>
#include <poll.h>
#include <unistd.h>
#include <unordered_map>

using namespace jitml;

ServeConfig ServeConfig::fromEnv() {
  ServeConfig C;
  C.SocketPath = envString("JITML_SERVE_SOCKET", C.SocketPath);
  C.BatchDeadlineUs =
      (int)envU64("JITML_SERVE_BATCH_US", (uint64_t)C.BatchDeadlineUs);
  C.BatchLingerUs =
      (int)envU64("JITML_SERVE_LINGER_US", (uint64_t)C.BatchLingerUs);
  C.MaxInflight = (size_t)envU64("JITML_SERVE_MAX_INFLIGHT", C.MaxInflight);
  C.CacheCapacity = (size_t)envU64("JITML_SERVE_CACHE", C.CacheCapacity);
  return C;
}

/// Per-connection state, owned by the event loop thread alone.
struct ModelServer::Connection {
  uint64_t Id = 0;
  std::unique_ptr<SocketTransport> Sock;
  std::vector<uint8_t> InBuf;      ///< unconsumed reassembly bytes
  std::deque<Message> Pending;     ///< parsed frames awaiting processing

  // The one request being answered asynchronously (clients are strictly
  // request/reply, so there is at most one).
  bool Busy = false;
  bool IsBatch = false;
  Message Reply;                   ///< assembled reply (batch: prefilled)
  size_t Remaining = 0;            ///< batcher results still missing
  uint64_t ReqStartUs = 0;

  bool PeerClosed = false; ///< EOF seen / Bye; no more reads or writes
  bool Dead = false;       ///< protocol or write failure; discard asap

  bool idle() const { return !Busy && Pending.empty(); }
};

struct ModelServer::Impl {
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> Conns;
  uint64_t NextConnId = 1;
  int WakeR = -1, WakeW = -1;

  std::mutex ResultMu;
  std::vector<PredictResult> Results;

  std::atomic<uint64_t> Accepts{0}, AcceptFails{0}, Rejected{0};
  std::atomic<uint64_t> ConnCount{0};
  std::atomic<uint64_t> Requests{0}, BatchRequests{0}, Entries{0};
  std::atomic<uint64_t> Served{0}, Degraded{0};
  std::atomic<uint64_t> Shed{0}, ShedEntries{0};
  std::atomic<uint64_t> CacheHits{0}, HelloRejects{0}, Malformed{0};

  TelemetryCounter *AcceptsCtr, *AcceptFailsCtr, *RequestsCtr, *ServedCtr,
      *DegradedCtr, *ShedCtr, *HelloRejectsCtr, *MalformedCtr;
  TelemetryGauge *ConnGauge, *InflightGauge;
  TelemetryHistogram *RequestUs;
};

ModelServer::ModelServer(ModelRegistry &Registry, ServeConfig Cfg)
    : Registry(Registry), Cfg(std::move(Cfg)),
      Cache(this->Cfg.CacheCapacity), I(new Impl) {
  MetricRegistry &R = MetricRegistry::global();
  I->AcceptsCtr = &R.counter("serve.accepts");
  I->AcceptFailsCtr = &R.counter("serve.accept_fails");
  I->RequestsCtr = &R.counter("serve.requests");
  I->ServedCtr = &R.counter("serve.served");
  I->DegradedCtr = &R.counter("serve.degraded");
  I->ShedCtr = &R.counter("serve.shed");
  I->HelloRejectsCtr = &R.counter("serve.hello_rejects");
  I->MalformedCtr = &R.counter("serve.malformed");
  I->ConnGauge = &R.gauge("serve.connections");
  I->InflightGauge = &R.gauge("serve.inflight");
  I->RequestUs = &R.histogram("serve.request");
  Batcher = std::make_unique<MicroBatcher>(
      Registry, this->Cfg.CacheCapacity ? &Cache : nullptr, InflightEntries,
      this->Cfg.BatchDeadlineUs, this->Cfg.BatchLingerUs, MaxBatchEntries,
      [this](std::vector<PredictResult> &&Rs) { onResults(std::move(Rs)); });
}

ModelServer::~ModelServer() {
  stop();
  delete I;
}

bool ModelServer::start() {
  if (LoopThread.joinable())
    return Running.load(std::memory_order_acquire);
  Listener = SocketListener::listen(Cfg.SocketPath);
  if (!Listener)
    return false;
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Listener.reset();
    return false;
  }
  ::fcntl(Pipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(Pipe[1], F_SETFL, O_NONBLOCK);
  I->WakeR = Pipe[0];
  I->WakeW = Pipe[1];
  StopRequested.store(false, std::memory_order_release);
  Batcher->start();
  Running.store(true, std::memory_order_release);
  LoopThread = std::thread([this] { loop(); });
  return true;
}

void ModelServer::stop() {
  if (!LoopThread.joinable())
    return;
  StopRequested.store(true, std::memory_order_release);
  wake();
  LoopThread.join();
  Batcher->stop();
  Running.store(false, std::memory_order_release);
  if (I->WakeR >= 0)
    ::close(I->WakeR);
  if (I->WakeW >= 0)
    ::close(I->WakeW);
  I->WakeR = I->WakeW = -1;
  Listener.reset();
}

void ModelServer::wake() {
  uint8_t B = 1;
  if (I->WakeW >= 0)
    (void)!::write(I->WakeW, &B, 1); // pipe full = a wake is already pending
}

void ModelServer::onResults(std::vector<PredictResult> &&Results) {
  {
    std::lock_guard<std::mutex> Lock(I->ResultMu);
    for (PredictResult &R : Results)
      I->Results.push_back(std::move(R));
  }
  wake();
}

ModelServer::Stats ModelServer::stats() const {
  Stats S;
  S.Accepts = I->Accepts.load(std::memory_order_relaxed);
  S.AcceptFails = I->AcceptFails.load(std::memory_order_relaxed);
  S.Rejected = I->Rejected.load(std::memory_order_relaxed);
  S.Connections = I->ConnCount.load(std::memory_order_relaxed);
  S.Requests = I->Requests.load(std::memory_order_relaxed);
  S.BatchRequests = I->BatchRequests.load(std::memory_order_relaxed);
  S.Entries = I->Entries.load(std::memory_order_relaxed);
  S.Served = I->Served.load(std::memory_order_relaxed);
  S.Degraded = I->Degraded.load(std::memory_order_relaxed);
  S.Shed = I->Shed.load(std::memory_order_relaxed);
  S.ShedEntries = I->ShedEntries.load(std::memory_order_relaxed);
  S.CacheHits = I->CacheHits.load(std::memory_order_relaxed);
  S.HelloRejects = I->HelloRejects.load(std::memory_order_relaxed);
  S.Malformed = I->Malformed.load(std::memory_order_relaxed);
  S.Inflight = InflightEntries.load(std::memory_order_relaxed);
  return S;
}

namespace {

uint32_t readLe32(const uint8_t *P) {
  return (uint32_t)P[0] | ((uint32_t)P[1] << 8) | ((uint32_t)P[2] << 16) |
         ((uint32_t)P[3] << 24);
}

/// Largest frame the reassembler will buffer — same 1 MiB cap
/// recvMessageFor enforces; a larger prefix is unframeable garbage.
constexpr uint32_t MaxFrameBytes = 1u << 20;

FeatureVector toFeatureVector(const std::vector<double> &Raw) {
  FeatureVector FV;
  for (unsigned J = 0; J < NumFeatures; ++J)
    FV.set(J, (uint32_t)Raw[J]);
  return FV;
}

} // namespace

void ModelServer::loop() {
  // All connection state is owned by this thread; the batcher only ever
  // touches the result queue + wake pipe.
  auto WriteMessage = [&](Connection &C, const Message &M) {
    if (C.PeerClosed || C.Dead)
      return;
    std::vector<uint8_t> Frame;
    encodeMessageFrame(M, Frame);
    if (!C.Sock->writeBytes(Frame.data(), Frame.size())) {
      C.Dead = true;
      C.PeerClosed = true;
    }
  };

  auto FinishRequest = [&](Connection &C) {
    int64_t Items = C.IsBatch ? (int64_t)C.Reply.BatchModifiers.size() : 1;
    WriteMessage(C, C.Reply);
    C.Busy = false;
    C.Reply = Message();
    uint64_t DurUs = telemetryNowUs() - C.ReqStartUs;
    I->RequestUs->record(DurUs);
    if (TraceEmitter::global().enabled()) {
      TraceEvent E;
      E.Stage = "serve.request";
      E.StartUs = C.ReqStartUs;
      E.DurUs = DurUs;
      E.Items = Items;
      TraceEmitter::global().record(E);
    }
  };

  auto CountAnswer = [&](bool Has) {
    if (Has) {
      I->Served.fetch_add(1, std::memory_order_relaxed);
      I->ServedCtr->add();
    } else {
      I->Degraded.fetch_add(1, std::memory_order_relaxed);
      I->DegradedCtr->add();
    }
  };

  auto ShedFrame = [&](Connection &C, size_t NumEntries) {
    I->Shed.fetch_add(1, std::memory_order_relaxed);
    I->ShedEntries.fetch_add(NumEntries, std::memory_order_relaxed);
    I->ShedCtr->add();
    Message Reply;
    Reply.Type = MsgType::Error;
    Reply.Text = "server overloaded: request shed";
    WriteMessage(C, Reply);
  };

  // Admission control: would admitting NumEntries more exceed the bound?
  // The "serve.shed" fault point forces the shed path regardless of load.
  auto MustShed = [&](size_t NumEntries) {
    if (JITML_FAULT_POINT("serve.shed"))
      return true;
    return InflightEntries.load(std::memory_order_relaxed) + NumEntries >
           Cfg.MaxInflight;
  };

  auto HandleFrame = [&](Connection &C, Message &M) {
    switch (M.Type) {
    case MsgType::Hello: {
      Message Reply;
      if (M.Version != ProtocolVersion) {
        I->HelloRejects.fetch_add(1, std::memory_order_relaxed);
        I->HelloRejectsCtr->add();
        Reply.Type = MsgType::Error;
        Reply.Text = "unsupported protocol version";
      } else {
        Reply.Type = MsgType::Hello;
        Reply.Version = ProtocolVersion;
      }
      WriteMessage(C, Reply);
      break;
    }
    case MsgType::Bye:
      C.PeerClosed = true;
      C.Pending.clear();
      break;
    case MsgType::Features: {
      I->Requests.fetch_add(1, std::memory_order_relaxed);
      I->Entries.fetch_add(1, std::memory_order_relaxed);
      I->RequestsCtr->add();
      C.ReqStartUs = telemetryNowUs();
      if (M.FeatureValues.size() != NumFeatures) {
        Message Reply;
        Reply.Type = MsgType::Error;
        Reply.Text = "feature count mismatch";
        CountAnswer(false);
        WriteMessage(C, Reply);
        break;
      }
      if (MustShed(1)) {
        ShedFrame(C, 1);
        break;
      }
      FeatureVector FV = toFeatureVector(M.FeatureValues);
      uint64_t Hash = FV.hash();
      uint64_t Version = Registry.version();
      std::optional<uint64_t> Answer;
      if (Cfg.CacheCapacity &&
          Cache.lookup(Version, M.Level, Hash, Answer)) {
        I->CacheHits.fetch_add(1, std::memory_order_relaxed);
        Message Reply;
        if (Answer) {
          Reply.Type = MsgType::Modifier;
          Reply.ModifierBits = *Answer;
        } else {
          Reply.Type = MsgType::Error;
          Reply.Text = "no model for level";
        }
        CountAnswer(Answer.has_value());
        WriteMessage(C, Reply);
        uint64_t DurUs = telemetryNowUs() - C.ReqStartUs;
        I->RequestUs->record(DurUs);
        break;
      }
      C.Busy = true;
      C.IsBatch = false;
      C.Remaining = 1;
      C.Reply = Message();
      InflightEntries.fetch_add(1, std::memory_order_relaxed);
      I->InflightGauge->set(
          (int64_t)InflightEntries.load(std::memory_order_relaxed));
      PredictRequest R;
      R.ConnId = C.Id;
      R.Tag = 0;
      R.Level = M.Level;
      R.Features = FV;
      R.FeatureHash = Hash;
      R.AdmitUs = C.ReqStartUs;
      Batcher->push(std::move(R));
      break;
    }
    case MsgType::FeatureBatch: {
      I->Requests.fetch_add(1, std::memory_order_relaxed);
      I->BatchRequests.fetch_add(1, std::memory_order_relaxed);
      I->Entries.fetch_add(M.BatchFeatures.size(), std::memory_order_relaxed);
      I->RequestsCtr->add();
      C.ReqStartUs = telemetryNowUs();
      if (MustShed(M.BatchFeatures.size())) {
        ShedFrame(C, M.BatchFeatures.size());
        break;
      }
      Message Reply;
      Reply.Type = MsgType::ModifierBatch;
      Reply.BatchModifiers.resize(M.BatchFeatures.size());
      uint64_t Version = Registry.version();
      std::vector<PredictRequest> Misses;
      for (size_t J = 0; J < M.BatchFeatures.size(); ++J) {
        const BatchFeatureEntry &E = M.BatchFeatures[J];
        if (E.FeatureValues.size() != NumFeatures) {
          CountAnswer(false); // HasModifier stays false
          continue;
        }
        FeatureVector FV = toFeatureVector(E.FeatureValues);
        uint64_t Hash = FV.hash();
        std::optional<uint64_t> Answer;
        if (Cfg.CacheCapacity &&
            Cache.lookup(Version, E.Level, Hash, Answer)) {
          I->CacheHits.fetch_add(1, std::memory_order_relaxed);
          if (Answer) {
            Reply.BatchModifiers[J].HasModifier = true;
            Reply.BatchModifiers[J].Bits = *Answer;
          }
          CountAnswer(Answer.has_value());
          continue;
        }
        PredictRequest R;
        R.ConnId = C.Id;
        R.Tag = (uint32_t)J;
        R.Level = E.Level;
        R.Features = FV;
        R.FeatureHash = Hash;
        R.AdmitUs = C.ReqStartUs;
        Misses.push_back(std::move(R));
      }
      if (Misses.empty()) {
        WriteMessage(C, Reply);
        uint64_t DurUs = telemetryNowUs() - C.ReqStartUs;
        I->RequestUs->record(DurUs);
        break;
      }
      C.Busy = true;
      C.IsBatch = true;
      C.Remaining = Misses.size();
      C.Reply = std::move(Reply);
      InflightEntries.fetch_add(Misses.size(), std::memory_order_relaxed);
      I->InflightGauge->set(
          (int64_t)InflightEntries.load(std::memory_order_relaxed));
      Batcher->pushMany(std::move(Misses));
      break;
    }
    default: {
      Message Reply;
      Reply.Type = MsgType::Error;
      Reply.Text = "unexpected message";
      WriteMessage(C, Reply);
      break;
    }
    }
  };

  auto ParseFrames = [&](Connection &C) {
    std::vector<uint8_t> &B = C.InBuf;
    size_t Off = 0;
    while (B.size() - Off >= 4) {
      uint32_t Len = readLe32(&B[Off]);
      if (Len == 0 || Len > MaxFrameBytes) {
        // Unframeable garbage: the stream can never re-align; drop the
        // connection (mirrors recvMessageFor's Closed classification).
        C.Dead = true;
        C.PeerClosed = true;
        C.Pending.clear();
        break;
      }
      if (B.size() - Off < 4 + (size_t)Len)
        break; // incomplete frame: wait for more bytes
      std::vector<uint8_t> Payload(B.begin() + Off + 4,
                                   B.begin() + Off + 4 + Len);
      Off += 4 + (size_t)Len;
      Message M;
      if (decodeMessagePayload(Payload, M) != RecvStatus::Ok) {
        // Frame-aligned but invalid content: answer Error, keep session.
        I->Malformed.fetch_add(1, std::memory_order_relaxed);
        I->MalformedCtr->add();
        Message Reply;
        Reply.Type = MsgType::Error;
        Reply.Text = "malformed frame";
        WriteMessage(C, Reply);
        continue;
      }
      C.Pending.push_back(std::move(M));
    }
    if (Off)
      B.erase(B.begin(), B.begin() + Off);
  };

  auto ProcessPending = [&](Connection &C) {
    while (!C.Busy && !C.Dead && !C.Pending.empty()) {
      Message M = std::move(C.Pending.front());
      C.Pending.pop_front();
      HandleFrame(C, M);
    }
  };

  auto ProcessResults = [&] {
    std::vector<PredictResult> Rs;
    {
      std::lock_guard<std::mutex> Lock(I->ResultMu);
      Rs.swap(I->Results);
    }
    for (PredictResult &R : Rs) {
      InflightEntries.fetch_sub(1, std::memory_order_relaxed);
      auto It = I->Conns.find(R.ConnId);
      if (It == I->Conns.end())
        continue; // connection already torn down (never while Busy)
      Connection &C = *It->second;
      if (C.IsBatch) {
        if (R.Tag < C.Reply.BatchModifiers.size()) {
          C.Reply.BatchModifiers[R.Tag].HasModifier = R.Has;
          C.Reply.BatchModifiers[R.Tag].Bits = R.Bits;
        }
      } else {
        if (R.Has) {
          C.Reply.Type = MsgType::Modifier;
          C.Reply.ModifierBits = R.Bits;
        } else {
          C.Reply.Type = MsgType::Error;
          C.Reply.Text = "no model for level";
        }
      }
      CountAnswer(R.Has);
      if (C.Remaining > 0 && --C.Remaining == 0)
        FinishRequest(C);
    }
    I->InflightGauge->set(
        (int64_t)InflightEntries.load(std::memory_order_relaxed));
  };

  auto Accept = [&] {
    std::unique_ptr<SocketTransport> Sock = Listener->accept();
    if (!Sock) {
      I->AcceptFails.fetch_add(1, std::memory_order_relaxed);
      I->AcceptFailsCtr->add();
      return;
    }
    if (I->Conns.size() >= Cfg.MaxConnections) {
      I->Rejected.fetch_add(1, std::memory_order_relaxed);
      return; // transport destructor closes: the client sees a clean EOF
    }
    auto C = std::make_unique<Connection>();
    C->Id = I->NextConnId++;
    C->Sock = std::move(Sock);
    uint64_t Id = C->Id;
    I->Conns.emplace(Id, std::move(C));
    I->Accepts.fetch_add(1, std::memory_order_relaxed);
    I->AcceptsCtr->add();
    I->ConnCount.store(I->Conns.size(), std::memory_order_relaxed);
    I->ConnGauge->set((int64_t)I->Conns.size());
  };

  auto ReadConn = [&](Connection &C) {
    uint8_t Buf[4096];
    ssize_t N = C.Sock->readSome(Buf, sizeof(Buf));
    if (N <= 0) {
      // EOF (or error). Pending frames can no longer be answered; any
      // admitted entries still drain through the batcher so the inflight
      // accounting stays exact, then the connection is reaped.
      C.PeerClosed = true;
      C.Pending.clear();
      return;
    }
    C.InBuf.insert(C.InBuf.end(), Buf, Buf + N);
    ParseFrames(C);
  };

  bool ListenerClosed = false;
  std::vector<pollfd> Pfds;
  std::vector<uint64_t> PfdConn; // 0 = wake/listener slot

  for (;;) {
    bool Stopping = StopRequested.load(std::memory_order_acquire);
    if (Stopping && !ListenerClosed) {
      Listener->close(); // stop accepting; existing sessions drain
      ListenerClosed = true;
    }

    // Reap finished connections.
    for (auto It = I->Conns.begin(); It != I->Conns.end();) {
      Connection &C = *It->second;
      if ((C.PeerClosed || C.Dead) && !C.Busy)
        It = I->Conns.erase(It);
      else
        ++It;
    }
    I->ConnCount.store(I->Conns.size(), std::memory_order_relaxed);
    I->ConnGauge->set((int64_t)I->Conns.size());

    if (Stopping) {
      // Drained when every surviving connection is idle: every admitted
      // entry answered, every parsed frame processed.
      bool AllIdle = true;
      for (auto &KV : I->Conns)
        if (!KV.second->idle())
          AllIdle = false;
      if (AllIdle)
        break;
    }

    Pfds.clear();
    PfdConn.clear();
    Pfds.push_back({I->WakeR, POLLIN, 0});
    PfdConn.push_back(0);
    if (!ListenerClosed) {
      Pfds.push_back({Listener->fd(), POLLIN, 0});
      PfdConn.push_back(0);
    }
    for (auto &KV : I->Conns) {
      Connection &C = *KV.second;
      // Backpressure: stop reading a pipelining client that has banked
      // MaxPendingFrames unprocessed frames. During drain, stop reading
      // entirely — the remaining work is answering what's admitted.
      if (!Stopping && !C.PeerClosed && !C.Dead &&
          C.Pending.size() < Cfg.MaxPendingFrames) {
        Pfds.push_back({C.Sock->fd(), POLLIN, 0});
        PfdConn.push_back(C.Id);
      }
    }

    int NReady = ::poll(Pfds.data(), (nfds_t)Pfds.size(), -1);
    if (NReady < 0) {
      if (errno == EINTR)
        continue;
      break; // poll itself failing is unrecoverable for the loop
    }

    for (size_t J = 0; J < Pfds.size(); ++J) {
      if (!(Pfds[J].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      if (PfdConn[J] == 0) {
        if (Pfds[J].fd == I->WakeR) {
          uint8_t Drain[64];
          while (::read(I->WakeR, Drain, sizeof(Drain)) > 0)
            ;
        } else {
          Accept();
        }
        continue;
      }
      auto It = I->Conns.find(PfdConn[J]);
      if (It != I->Conns.end())
        ReadConn(*It->second);
    }

    ProcessResults();
    for (auto &KV : I->Conns)
      ProcessPending(*KV.second);
  }

  // Shutdown: every connection is idle; close them all.
  I->Conns.clear();
  I->ConnCount.store(0, std::memory_order_relaxed);
  I->ConnGauge->set(0);
}
