//===- serve/Server.h - Multi-client model-serving daemon ------*- C++ -*-===//
///
/// \file
/// The production replacement for the paper's one-pipe-per-JVM deployment:
/// one daemon, many VirtualMachine/ResilientModelClient connections, one
/// shared model. Architecture:
///
///   clients ──► SocketListener ──► poll(2) event loop ─┬─► inline replies
///                                   (frame reassembly,  │   (Hello, cache
///                                    admission control) │    hits, sheds)
///                                                       ▼
///                                               MicroBatcher ──► dense
///                                               (cross-client    predict
///                                                coalescing)     kernels
///                                                       │
///                  replies ◄── event loop ◄── wake pipe ┘
///
/// Admission control: at most MaxInflight admitted-but-unanswered entries.
/// Over capacity the daemon answers Error immediately (a shed), which the
/// ResilientModelClient already treats as a definitive "use the hand-tuned
/// plan" — overload degrades compilation quality, never availability, and
/// never wedges the event loop behind a backlog it cannot clear.
///
/// Protocol invariants: the wire format is the bridge's framed Message
/// protocol, unchanged — any existing client works against the daemon.
/// Each connection's replies are written only by the event loop thread, in
/// request order, so the strict request/reply clients never see
/// interleaved frames.
///
/// Shutdown: stop() drains — admitted requests finish (on whatever model
/// version they started with), assembled replies are written, then
/// connections close. No inflight frame is left unanswered.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_SERVE_SERVER_H
#define JITML_SERVE_SERVER_H

#include "bridge/ModelService.h"
#include "serve/Batcher.h"
#include "serve/PredictionCache.h"
#include "serve/Registry.h"

#include <atomic>
#include <memory>
#include <thread>

namespace jitml {

struct ServeConfig {
  /// Unix-domain socket path the daemon listens on.
  std::string SocketPath = "/tmp/jitml-serve.sock";
  /// Micro-batch deadline: how long the batcher waits past a batch's
  /// first entry for more clients to coalesce (it closes early once it
  /// holds every outstanding entry).
  int BatchDeadlineUs = 200;
  /// Straggler window: once the batch covers every outstanding entry the
  /// batcher still lingers this long for late frames (admissions arrive
  /// staggered by socket reads), extending while the batch grows. Clamped
  /// to BatchDeadlineUs; 0 closes on first quiescence.
  int BatchLingerUs = 25;
  /// Admission-control bound on admitted-but-unanswered entries; above
  /// it, requests are shed with an Error reply.
  size_t MaxInflight = 256;
  /// Shared prediction cache entries; 0 disables the cache.
  size_t CacheCapacity = 4096;
  /// Connections above this are accepted and immediately closed.
  size_t MaxConnections = 128;
  /// Parsed-but-unprocessed frames tolerated per connection before the
  /// daemon stops reading that socket (backpressure on pipelining
  /// clients).
  size_t MaxPendingFrames = 16;

  /// Defaults overridden by JITML_SERVE_SOCKET / JITML_SERVE_BATCH_US /
  /// JITML_SERVE_MAX_INFLIGHT / JITML_SERVE_CACHE.
  static ServeConfig fromEnv();
};

class ModelServer {
public:
  ModelServer(ModelRegistry &Registry, ServeConfig Cfg);
  ~ModelServer(); ///< stop()

  ModelServer(const ModelServer &) = delete;
  ModelServer &operator=(const ModelServer &) = delete;

  /// Binds the socket and spawns the event loop + batcher threads; false
  /// when the socket cannot be created (daemon not started).
  bool start();

  /// Graceful drain: stop accepting, stop reading, answer everything
  /// admitted, close every connection, join the threads. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  struct Stats {
    uint64_t Accepts = 0;       ///< connections accepted and served
    uint64_t AcceptFails = 0;   ///< accept failures (incl. forced fault)
    uint64_t Rejected = 0;      ///< over MaxConnections, closed on arrival
    uint64_t Connections = 0;   ///< currently open
    uint64_t Requests = 0;      ///< Features + FeatureBatch frames
    uint64_t BatchRequests = 0; ///< FeatureBatch frames alone
    uint64_t Entries = 0;       ///< prediction entries across all frames
    uint64_t Served = 0;        ///< entries answered with real modifiers
    uint64_t Degraded = 0;      ///< entries answered "no model" / bad dim
    uint64_t Shed = 0;          ///< frames refused by admission control
    uint64_t ShedEntries = 0;   ///< entries inside shed frames
    uint64_t CacheHits = 0;     ///< entries answered from the shared cache
    uint64_t HelloRejects = 0;  ///< version-mismatch Hello frames
    uint64_t Malformed = 0;     ///< malformed frames answered with Error
    uint64_t Inflight = 0;      ///< admitted entries awaiting an answer
  };
  Stats stats() const;

  const ServeConfig &config() const { return Cfg; }
  PredictionCache &cache() { return Cache; }

private:
  struct Connection;
  struct Impl;

  void loop();
  void onResults(std::vector<PredictResult> &&Results);
  void wake();

  ModelRegistry &Registry;
  ServeConfig Cfg;
  PredictionCache Cache;
  std::atomic<uint64_t> InflightEntries{0};
  std::unique_ptr<MicroBatcher> Batcher;
  std::unique_ptr<SocketListener> Listener;
  std::thread LoopThread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  Impl *I;
};

} // namespace jitml

#endif // JITML_SERVE_SERVER_H
