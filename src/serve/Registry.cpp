//===- serve/Registry.cpp -------------------------------------------------===//

#include "serve/Registry.h"

#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <sstream>

using namespace jitml;

std::optional<uint64_t>
ServeModel::predict(OptLevel Level, const FeatureVector &Features) const {
  const LevelModel &LM = Set.Levels[(unsigned)Level];
  if (!LM.Valid)
    return std::nullopt;
  std::vector<double> X = LM.Scale.apply(Features);
  int32_t Label = LM.Model.predict(X);
  uint64_t Bits = 0;
  if (!LM.Labels.modifierFor(Label, Bits))
    return std::nullopt; // unknown label: fail safe to the base plan
  return Bits;
}

ModelRegistry::ModelRegistry() = default;

uint64_t ModelRegistry::install(ModelSet Set) {
  auto Model = std::make_shared<ServeModel>();
  Model->Set = std::move(Set);
  std::lock_guard<std::mutex> Lock(Mu);
  Model->Version = NextVersion++;
  Current = std::move(Model);
  ++ReloadCount;
  MetricRegistry::global().counter("serve.reloads").add();
  MetricRegistry::global().gauge("serve.model_version")
      .set((int64_t)Current->Version);
  return Current->Version;
}

std::shared_ptr<const ServeModel> ModelRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Current;
}

uint64_t ModelRegistry::version() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Current ? Current->Version : 0;
}

uint64_t ModelRegistry::reloads() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ReloadCount;
}

uint64_t ModelRegistry::reloadFailures() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return ReloadFailed;
}

bool ModelRegistry::reloadFromFile(const std::string &BundlePath) {
  auto Fail = [&] {
    std::lock_guard<std::mutex> Lock(Mu);
    ++ReloadFailed;
    MetricRegistry::global().counter("serve.reload_failed").add();
    return false;
  };
  if (JITML_FAULT_POINT("serve.reload.torn"))
    return Fail(); // simulated torn file: the read raced the writer
  std::FILE *F = std::fopen(BundlePath.c_str(), "r");
  if (!F)
    return Fail();
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  ModelSet Set;
  if (!parseBundle(Text, Set))
    return Fail();
  install(std::move(Set));
  return true;
}

std::string ModelRegistry::bundleText(const ModelSet &Set) {
  std::string Out = "jitml-serve-bundle v1\n";
  for (unsigned L = 0; L < NumOptLevels; ++L) {
    const LevelModel &LM = Set.Levels[L];
    if (!LM.Valid)
      continue;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "@level %u\n", L);
    Out += Buf;
    Out += "@scaling\n";
    Out += LM.Scale.toText();
    Out += "@labels\n";
    Out += LM.Labels.toText();
    Out += "@model\n";
    Out += LM.Model.toText();
  }
  Out += "@end\n";
  return Out;
}

namespace {

/// Collects lines until the next @-marker (exclusive) into one string.
std::string takeSection(std::istringstream &In, std::string &Line,
                        bool &LineValid) {
  std::string Section;
  while ((LineValid = (bool)std::getline(In, Line))) {
    if (!Line.empty() && Line[0] == '@')
      break;
    Section += Line;
    Section += '\n';
  }
  return Section;
}

} // namespace

bool ModelRegistry::parseBundle(const std::string &Text, ModelSet &Out,
                                std::string *Error) {
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  Out = ModelSet();
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "jitml-serve-bundle v1")
    return Fail("missing bundle header");
  bool LineValid = (bool)std::getline(In, Line);
  bool SawEnd = false;
  while (LineValid) {
    if (Line == "@end") {
      SawEnd = true;
      break;
    }
    unsigned LevelIdx = 0;
    if (std::sscanf(Line.c_str(), "@level %u", &LevelIdx) != 1 ||
        LevelIdx >= NumOptLevels)
      return Fail("expected @level section");
    LevelModel &LM = Out.Levels[LevelIdx];
    if (LM.Valid)
      return Fail("duplicate @level section");
    if (!std::getline(In, Line) || Line != "@scaling")
      return Fail("expected @scaling");
    std::string ScalingText = takeSection(In, Line, LineValid);
    if (!LineValid || Line != "@labels")
      return Fail("expected @labels");
    std::string LabelsText = takeSection(In, Line, LineValid);
    if (!LineValid || Line != "@model")
      return Fail("expected @model");
    std::string ModelText = takeSection(In, Line, LineValid);
    if (!Scaling::fromText(ScalingText, LM.Scale))
      return Fail("bad scaling section");
    if (!LabelMap::fromText(LabelsText, LM.Labels))
      return Fail("bad labels section");
    if (!LinearModel::fromText(ModelText, LM.Model))
      return Fail("bad model section");
    if (LM.Model.numFeatures() != NumFeatures)
      return Fail("model feature count mismatch");
    LM.Valid = true;
    // takeSection left the next @-marker (or EOF) in Line/LineValid.
  }
  if (!SawEnd)
    return Fail("truncated bundle (missing @end)");
  return true;
}
