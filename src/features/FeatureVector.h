//===- features/FeatureVector.h - The 71 method features -------*- C++ -*-===//
///
/// \file
/// The feature vector of section 4.1: 71 numerical attributes per method,
/// "dynamically extracted from the compiler just prior to the optimization
/// stage". Layout:
///
///   [0..3]    scalar counters (Table 1): exception handlers, arguments,
///             temporaries, tree nodes
///   [4..18]   binary attributes (Table 1), 15 of them
///   [19..32]  type distributions (Table 2), 14 counters, 16-bit saturating
///   [33..70]  operation distributions (Table 3), 38 counters, 8-bit
///             saturating
///
//===----------------------------------------------------------------------===//

#ifndef JITML_FEATURES_FEATUREVECTOR_H
#define JITML_FEATURES_FEATUREVECTOR_H

#include "bytecode/Type.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

namespace jitml {

/// Indices of the scalar counter features.
enum CounterFeature : unsigned {
  CF_ExceptionHandlers = 0,
  CF_Arguments,
  CF_Temporaries,
  CF_TreeNodes,
  NumCounterFeatures,
};

/// Indices of the binary attribute features, offset by AttrBase.
enum AttrFeature : unsigned {
  AF_Constructor = 0,
  AF_Final,
  AF_Protected,
  AF_Public,
  AF_Static,
  AF_Synchronized,
  AF_ManyIterationLoops,
  AF_MayHaveLoops,
  AF_MayHaveManyIterationLoops,
  AF_AllocatesDynamicMemory,
  AF_UnsafeSymbols,
  AF_UsesBigDecimal,
  AF_VirtualMethodOverridden,
  AF_StrictFloatingPoint,
  AF_UsesFloatingPoint,
  NumAttrFeatures,
};

/// Indices of the operation distributions (Table 3), offset by OpBase.
enum OpFeature : unsigned {
  // ALU
  OF_Add = 0,
  OF_Sub,
  OF_Mul,
  OF_Div,
  OF_Rem,
  OF_Neg,
  OF_Shift,
  OF_Or,
  OF_And,
  OF_Xor,
  OF_Inc,
  OF_Compare,
  // Cast
  OF_CastByte,
  OF_CastChar,
  OF_CastShort,
  OF_CastInt,
  OF_CastLong,
  OF_CastFloat,
  OF_CastDouble,
  OF_CastLongDouble,
  OF_CastAddress,
  OF_CastObject,
  OF_CastPacked,
  OF_CastZoned,
  OF_CastCheck,
  // Load/Store
  OF_Load,
  OF_LoadConst,
  OF_Store,
  // Memory
  OF_New,
  OF_NewArray,
  OF_NewMultiArray,
  // JVM
  OF_InstanceOf,
  OF_Synchronization,
  OF_Throw,
  // Branch
  OF_Branch,
  OF_Call,
  // Array / mixed
  OF_ArrayOperations,
  OF_MixedOperations,
  NumOpFeatures,
};

constexpr unsigned AttrBase = NumCounterFeatures;                    // 4
constexpr unsigned TypeBase = AttrBase + NumAttrFeatures;            // 19
constexpr unsigned OpBase = TypeBase + NumDataTypes;                 // 33
constexpr unsigned NumFeatures = OpBase + NumOpFeatures;             // 71
static_assert(NumFeatures == 71, "the paper's feature vector has 71 dims");

/// The raw (un-normalized) feature vector of a method. Stored as unsigned
/// counters; the mldata normalizer maps each component to [0,1] (Eq. 3).
class FeatureVector {
public:
  FeatureVector() { Values.fill(0); }

  uint32_t get(unsigned I) const {
    assert(I < NumFeatures && "feature index out of range");
    return Values[I];
  }
  void set(unsigned I, uint32_t V) {
    assert(I < NumFeatures && "feature index out of range");
    Values[I] = V;
  }

  uint32_t counter(CounterFeature F) const { return Values[F]; }
  bool attr(AttrFeature F) const { return Values[AttrBase + F] != 0; }
  void setAttr(AttrFeature F, bool V) { Values[AttrBase + F] = V ? 1 : 0; }
  uint32_t typeCount(DataType T) const {
    return Values[TypeBase + (unsigned)T];
  }
  uint32_t opCount(OpFeature F) const { return Values[OpBase + F]; }

  /// Lexicographic comparison — the ranking stage sorts records by feature
  /// vector to aggregate experiments on the same method shape (Figure 3).
  friend bool operator<(const FeatureVector &A, const FeatureVector &B) {
    return A.Values < B.Values;
  }
  friend bool operator==(const FeatureVector &A, const FeatureVector &B) {
    return A.Values == B.Values;
  }

  const std::array<uint32_t, NumFeatures> &raw() const { return Values; }
  std::array<uint32_t, NumFeatures> &raw() { return Values; }

  /// 64-bit content hash (for unique-vector counting).
  uint64_t hash() const;

private:
  std::array<uint32_t, NumFeatures> Values;
};

/// Stable, human-readable name of feature \p I ("treeNodes", "type.float",
/// "op.loadconst", ...). Used by Table 1-3 printers and model dumps.
const char *featureName(unsigned I);

/// Group label for feature \p I: "counter", "attribute", "type", "op".
const char *featureGroup(unsigned I);

} // namespace jitml

#endif // JITML_FEATURES_FEATUREVECTOR_H
