//===- features/FeatureExtractor.h - IL -> feature vector ------*- C++ -*-===//
///
/// \file
/// Computes the 71-feature vector of a method from its IL "in a single pass
/// over the tree-based representation ... just prior to the start of the
/// optimization stage" (section 4.1.2). The type-distribution counters
/// saturate at 16 bits and the operation-distribution counters at 8 bits,
/// exactly as in the paper's implementation.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_FEATURES_FEATUREEXTRACTOR_H
#define JITML_FEATURES_FEATUREEXTRACTOR_H

#include "features/FeatureVector.h"
#include "il/MethodIL.h"

namespace jitml {

/// Extracts every feature of \p IL. The IL must be freshly generated
/// (pre-optimization); extracting after transformations would describe a
/// different method than the one the model was trained on.
FeatureVector extractFeatures(const MethodIL &IL);

} // namespace jitml

#endif // JITML_FEATURES_FEATUREEXTRACTOR_H
