//===- features/FeatureVector.cpp -----------------------------------------===//

#include "features/FeatureVector.h"

#include "support/Rng.h"

using namespace jitml;

uint64_t FeatureVector::hash() const {
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  for (uint32_t V : Values)
    H = mix64(H ^ (H << 6) ^ V);
  return H;
}

const char *jitml::featureName(unsigned I) {
  static const char *CounterNames[NumCounterFeatures] = {
      "exceptionHandlers", "arguments", "temporaries", "treeNodes"};
  static const char *AttrNames[NumAttrFeatures] = {
      "constructor",
      "final",
      "protected",
      "public",
      "static",
      "synchronized",
      "manyIterationLoops",
      "mayHaveLoops",
      "mayHaveManyIterationLoops",
      "allocatesDynamicMemory",
      "unsafeSymbols",
      "usesBigDecimal",
      "virtualMethodOverridden",
      "strictFloatingPoint",
      "usesFloatingPoint"};
  static const char *TypeNames[NumDataTypes] = {
      "type.byte",       "type.char",   "type.short",  "type.int",
      "type.long",       "type.float",  "type.double", "type.void",
      "type.address",    "type.object", "type.longdouble",
      "type.packed",     "type.zoned",  "type.mixed"};
  static const char *OpNames[NumOpFeatures] = {
      "op.add",        "op.sub",        "op.mul",         "op.div",
      "op.rem",        "op.neg",        "op.shift",       "op.or",
      "op.and",        "op.xor",        "op.inc",         "op.compare",
      "op.cast.byte",  "op.cast.char",  "op.cast.short",  "op.cast.int",
      "op.cast.long",  "op.cast.float", "op.cast.double", "op.cast.longdouble",
      "op.cast.address", "op.cast.object", "op.cast.packed", "op.cast.zoned",
      "op.cast.check", "op.load",       "op.loadconst",   "op.store",
      "op.new",        "op.newarray",   "op.newmultiarray",
      "op.instanceof", "op.synchronization", "op.throw",
      "op.branch",     "op.call",       "op.arrayops",    "op.mixedops"};
  if (I < AttrBase)
    return CounterNames[I];
  if (I < TypeBase)
    return AttrNames[I - AttrBase];
  if (I < OpBase)
    return TypeNames[I - TypeBase];
  if (I < NumFeatures)
    return OpNames[I - OpBase];
  return "?";
}

const char *jitml::featureGroup(unsigned I) {
  if (I < AttrBase)
    return "counter";
  if (I < TypeBase)
    return "attribute";
  if (I < OpBase)
    return "type";
  return "op";
}
