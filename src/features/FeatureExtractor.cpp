//===- features/FeatureExtractor.cpp --------------------------------------===//

#include "features/FeatureExtractor.h"

#include "il/LoopInfo.h"
#include "support/SaturatingCounter.h"

#include <vector>

using namespace jitml;

namespace {

/// Accumulates saturating distribution counters during the single IL walk.
class DistributionCollector {
public:
  explicit DistributionCollector(const MethodIL &IL) : IL(IL) {}

  void walkTree(NodeId Root) {
    // Iterative DFS; commoned (shared) nodes are counted once, matching
    // the "number of operations in the method" reading of Table 3.
    Stack.push_back(Root);
    while (!Stack.empty()) {
      NodeId Id = Stack.back();
      Stack.pop_back();
      if (Id < Seen.size() && Seen[Id])
        continue;
      if (Seen.size() < IL.numNodes())
        Seen.resize(IL.numNodes(), false);
      Seen[Id] = true;
      visit(Id);
      for (NodeId Kid : IL.node(Id).Kids)
        Stack.push_back(Kid);
    }
  }

  void exportInto(FeatureVector &F) const {
    for (unsigned T = 0; T < NumDataTypes; ++T)
      F.set(TypeBase + T, Types[T].value());
    for (unsigned O = 0; O < NumOpFeatures; ++O)
      F.set(OpBase + O, Ops[O].value());
  }

  bool UsesFloatingPoint = false;
  bool AllocatesMemory = false;
  bool UsesUnsafe = false;
  bool UsesBigDecimal = false;

private:
  void countType(DataType T) {
    if (isValueType(T) || T == DataType::Mixed)
      Types[(unsigned)T].increment();
    if (isFloatType(T))
      UsesFloatingPoint = true;
  }
  void countOp(OpFeature O) { Ops[O].increment(); }

  /// Operand-type of a node for type counting: the node's own type when it
  /// carries a value, otherwise the type of its first value child (stores
  /// and checks are Void but operate on typed data).
  DataType operandType(const Node &N) const {
    if (N.Type != DataType::Void)
      return N.Type;
    switch (N.Op) {
    case ILOp::StoreLocal:
    case ILOp::StoreGlobal:
      return IL.node(N.Kids[0]).Type;
    case ILOp::StoreField:
      return IL.node(N.Kids[1]).Type;
    case ILOp::StoreElem:
      return IL.node(N.Kids[2]).Type;
    default:
      return DataType::Void;
    }
  }

  /// The "inc" pattern: store of (load of the same local) + constant.
  bool isIncPattern(const Node &Store) const {
    if (Store.Op != ILOp::StoreLocal)
      return false;
    const Node &V = IL.node(Store.Kids[0]);
    if (V.Op != ILOp::Add || V.Kids.size() != 2)
      return false;
    const Node &L = IL.node(V.Kids[0]);
    const Node &R = IL.node(V.Kids[1]);
    return L.Op == ILOp::LoadLocal && L.A == Store.A && R.Op == ILOp::Const;
  }

  /// A node "mixes types" when two value-typed children disagree, or a
  /// child's type differs from a value-producing parent's.
  bool mixesTypes(const Node &N) const {
    DataType Seen = DataType::Void;
    for (NodeId Kid : N.Kids) {
      DataType KT = IL.node(Kid).Type;
      if (!isValueType(KT))
        continue;
      if (Seen == DataType::Void)
        Seen = KT;
      else if (Seen != KT)
        return true;
    }
    if (isValueType(N.Type) && Seen != DataType::Void && Seen != N.Type &&
        N.Op != ILOp::Conv)
      return true;
    return false;
  }

  void visit(NodeId Id) {
    const Node &N = IL.node(Id);
    countType(operandType(N));
    if (mixesTypes(N)) {
      Types[(unsigned)DataType::Mixed].increment();
      countOp(OF_MixedOperations);
    }

    switch (N.Op) {
    case ILOp::Const:
      countOp(OF_LoadConst);
      break;
    case ILOp::LoadLocal:
    case ILOp::LoadGlobal:
    case ILOp::LoadField:
    case ILOp::LoadElem:
      countOp(OF_Load);
      break;
    case ILOp::StoreLocal:
      countOp(isIncPattern(N) ? OF_Inc : OF_Store);
      break;
    case ILOp::StoreGlobal:
    case ILOp::StoreField:
    case ILOp::StoreElem:
      countOp(OF_Store);
      break;
    case ILOp::Add:
      countOp(OF_Add);
      break;
    case ILOp::Sub:
      countOp(OF_Sub);
      break;
    case ILOp::Mul:
      countOp(OF_Mul);
      break;
    case ILOp::Div:
      countOp(OF_Div);
      break;
    case ILOp::Rem:
      countOp(OF_Rem);
      break;
    case ILOp::Neg:
      countOp(OF_Neg);
      break;
    case ILOp::Shl:
    case ILOp::Shr:
      countOp(OF_Shift);
      break;
    case ILOp::Or:
      countOp(OF_Or);
      break;
    case ILOp::And:
      countOp(OF_And);
      break;
    case ILOp::Xor:
      countOp(OF_Xor);
      break;
    case ILOp::Cmp:
    case ILOp::CmpCond:
      countOp(OF_Compare);
      break;
    case ILOp::Conv: {
      static const OpFeature CastOf[NumDataTypes] = {
          OF_CastByte,   OF_CastChar,   OF_CastShort,     OF_CastInt,
          OF_CastLong,   OF_CastFloat,  OF_CastDouble,    OF_CastInt,
          OF_CastAddress, OF_CastObject, OF_CastLongDouble, OF_CastPacked,
          OF_CastZoned,  OF_CastInt};
      countOp(CastOf[(unsigned)N.Type]);
      // Each type-specialized form also triggers the source type counter.
      countType((DataType)N.A);
      break;
    }
    case ILOp::CastCheck:
      countOp(OF_CastCheck);
      break;
    case ILOp::Call: {
      countOp(OF_Call);
      const MethodInfo &Callee = IL.program().methodAt((uint32_t)N.A);
      if (Callee.ClassIndex >= 0) {
        ClassKind CK = IL.program().classAt((uint32_t)Callee.ClassIndex).Kind;
        if (CK == ClassKind::UnsafeIntrinsic)
          UsesUnsafe = true;
        if (CK == ClassKind::BigDecimal)
          UsesBigDecimal = true;
      }
      break;
    }
    case ILOp::New:
      countOp(OF_New);
      AllocatesMemory = true;
      break;
    case ILOp::NewArray:
      countOp(OF_NewArray);
      AllocatesMemory = true;
      break;
    case ILOp::NewMultiArray:
      countOp(OF_NewMultiArray);
      AllocatesMemory = true;
      break;
    case ILOp::InstanceOf:
      countOp(OF_InstanceOf);
      break;
    case ILOp::MonitorEnter:
    case ILOp::MonitorExit:
      countOp(OF_Synchronization);
      break;
    case ILOp::Throw:
      countOp(OF_Throw);
      break;
    case ILOp::Branch:
      countOp(OF_Branch);
      break;
    case ILOp::ArrayLen:
    case ILOp::BoundsCheck:
    case ILOp::ArrayCopy:
    case ILOp::ArrayCmp:
      countOp(OF_ArrayOperations);
      break;
    case ILOp::LoadException:
    case ILOp::NullCheck:
    case ILOp::DivCheck:
    case ILOp::ExprStmt:
    case ILOp::Goto:
    case ILOp::Return:
      break;
    }
  }

  const MethodIL &IL;
  Sat16 Types[NumDataTypes];
  Sat8 Ops[NumOpFeatures];
  std::vector<bool> Seen;
  std::vector<NodeId> Stack;
};

} // namespace

FeatureVector jitml::extractFeatures(const MethodIL &IL) {
  FeatureVector F;
  const MethodInfo &M = IL.methodInfo();

  // Scalar counters.
  F.set(CF_ExceptionHandlers, (uint32_t)M.ExceptionTable.size());
  F.set(CF_Arguments, M.numArgs());
  F.set(CF_Temporaries, IL.numLocals() - M.numArgs());
  F.set(CF_TreeNodes, IL.countLiveNodes());

  // Declaration attributes.
  F.setAttr(AF_Constructor, M.hasFlag(MF_Constructor));
  F.setAttr(AF_Final, M.hasFlag(MF_Final));
  F.setAttr(AF_Protected, M.hasFlag(MF_Protected));
  F.setAttr(AF_Public, M.hasFlag(MF_Public));
  F.setAttr(AF_Static, M.hasFlag(MF_Static));
  F.setAttr(AF_Synchronized, M.hasFlag(MF_Synchronized));
  F.setAttr(AF_VirtualMethodOverridden, M.hasFlag(MF_VirtualOverridden));
  F.setAttr(AF_StrictFloatingPoint, M.hasFlag(MF_StrictFP));

  // Loop attributes.
  LoopInfo LI(IL);
  F.setAttr(AF_MayHaveLoops, LI.hasLoops());
  F.setAttr(AF_ManyIterationLoops, LI.hasKnownManyIterationLoop());
  F.setAttr(AF_MayHaveManyIterationLoops, LI.mayHaveManyIterationLoop());

  // Distributions (single pass over all reachable trees).
  DistributionCollector DC(IL);
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    for (NodeId Tree : IL.block(B).Trees)
      DC.walkTree(Tree);
  }
  DC.exportInto(F);

  F.setAttr(AF_AllocatesDynamicMemory, DC.AllocatesMemory);
  F.setAttr(AF_UnsafeSymbols, DC.UsesUnsafe);
  F.setAttr(AF_UsesBigDecimal, DC.UsesBigDecimal);
  F.setAttr(AF_UsesFloatingPoint, DC.UsesFloatingPoint);
  return F;
}
