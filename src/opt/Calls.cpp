//===- opt/Calls.cpp - Devirtualization and inlining ----------------------===//
//
// Devirtualization turns virtual dispatches into direct calls when the
// receiver's dynamic type is known or no override is loaded; inlining then
// splices direct callees into the caller. The three plan-level inlining
// tiers share one engine with different budgets.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "il/ILGenerator.h"

#include <unordered_map>

using namespace jitml;

bool jitml::runDevirtualization(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const Program &P = IL.program();
  bool Changed = false;
  for (NodeId Id = 0; Id < CIL.numNodes(); ++Id) {
    if (CIL.node(Id).Op != ILOp::Call || CIL.node(Id).B != 1)
      continue;
    Ctx.charge(2);
    uint32_t Callee = (uint32_t)CIL.node(Id).A;
    const MethodInfo &CalleeInfo = P.methodAt(Callee);
    const Node &Receiver = CIL.node(CIL.node(Id).Kids[0]);
    // Exact type known from the allocation site.
    if (Receiver.Op == ILOp::New) {
      int32_t Resolved = (int32_t)P.resolveVirtual(Callee, (uint32_t)Receiver.A);
      Node &N = IL.node(Id);
      N.A = Resolved;
      N.B = 0;
      Ctx.noteChange(TransformationKind::Devirtualization);
      Changed = true;
      continue;
    }
    // Monomorphic in the loaded class hierarchy: final methods or methods
    // with no override anywhere. (If a later class load adds an override,
    // the runtime flags the caller with MF_VirtualOverridden and
    // recompiles it — see runtime/CompilationControl.)
    if (CalleeInfo.hasFlag(MF_Final) || !P.isOverridden(Callee)) {
      IL.node(Id).B = 0;
      Ctx.noteChange(TransformationKind::Devirtualization);
      Changed = true;
    }
  }
  return Changed;
}

namespace {

/// One inlinable call site: the anchor treetop position of a direct call.
struct CallSite {
  BlockId Block;
  size_t TreeIndex;
  NodeId CallNode;
};

/// Splices \p Callee's IL into the caller at \p Site. Returns the number of
/// caller IL nodes added, or 0 when the callee was rejected after IL
/// generation (too big).
uint32_t inlineSite(PassContext &Ctx, const CallSite &Site,
                    uint32_t CalleeNodeBudget) {
  MethodIL &IL = Ctx.il();
  const Program &P = IL.program();
  uint32_t CalleeIdx = (uint32_t)IL.node(Site.CallNode).A;
  const MethodInfo &CalleeInfo = P.methodAt(CalleeIdx);

  std::unique_ptr<MethodIL> CalleeIL = generateIL(P, CalleeIdx);
  uint32_t CalleeNodes = CalleeIL->countLiveNodes();
  Ctx.charge((double)CalleeNodes * 2);
  if (CalleeNodes > CalleeNodeBudget)
    return 0;

  // Map callee locals into fresh caller locals.
  std::unordered_map<uint32_t, uint32_t> LocalMap;
  for (uint32_t L = 0; L < CalleeIL->numLocals(); ++L)
    LocalMap[L] = IL.addLocal(CalleeIL->localType(L));

  uint32_t RetSlot = UINT32_MAX;
  if (CalleeInfo.ReturnType != DataType::Void)
    RetSlot = IL.addLocal(CalleeInfo.ReturnType);

  // Split the caller block after the anchor: trees before it stay, trees
  // after it move to the continuation block.
  BlockId B = Site.Block;
  BlockId Cont = IL.makeBlock();
  {
    Block &Blk = IL.block(B);
    Block &ContB = IL.block(Cont);
    ContB.Trees.assign(Blk.Trees.begin() + (std::ptrdiff_t)Site.TreeIndex + 1,
                       Blk.Trees.end());
    Blk.Trees.resize(Site.TreeIndex);
    ContB.Handlers = Blk.Handlers;
    ContB.Frequency = Blk.Frequency;
    ContB.Cold = Blk.Cold;
    ContB.Reachable = true;
    // Move outgoing edges to the continuation.
    ContB.Succs = Blk.Succs;
    for (BlockId S : ContB.Succs) {
      auto &Preds = IL.block(S).Preds;
      for (BlockId &Pd : Preds)
        if (Pd == B)
          Pd = Cont;
    }
    IL.block(B).Succs.clear();
  }

  // Evaluate the arguments into the parameter slots, in order, where the
  // call used to be anchored.
  {
    // Copy the kid list: node references go stale across makeNode calls.
    const KidList &CallKids = Ctx.cil().node(Site.CallNode).Kids;
    std::vector<NodeId> Args(CallKids.begin(), CallKids.end());
    for (uint32_t AI = 0; AI < Args.size(); ++AI) {
      NodeId Store = IL.makeNode(ILOp::StoreLocal, DataType::Void, {Args[AI]});
      IL.node(Store).A = (int32_t)LocalMap[AI];
      IL.block(B).Trees.push_back(Store);
    }
  }

  // Create a caller block for every callee block.
  std::vector<BlockId> BlockMap(CalleeIL->numBlocks());
  for (BlockId CB = 0; CB < CalleeIL->numBlocks(); ++CB) {
    BlockId NB = IL.makeBlock();
    BlockMap[CB] = NB;
  }
  // Deep-copy the callee node arena tree by tree, remapping locals.
  // A node-id translation table keeps callee DAG sharing intact.
  std::unordered_map<NodeId, NodeId> NodeMap;
  const MethodIL &CCal = *CalleeIL;
  auto Import = [&](auto &&Self, NodeId CalleeNode) -> NodeId {
    auto It = NodeMap.find(CalleeNode);
    if (It != NodeMap.end())
      return It->second;
    // Only the caller arena grows during the recursion; references into
    // the callee arena stay valid, but snapshot the fields the tail below
    // needs so the shape is robust to a future two-arena refactor.
    const Node &Src = CCal.node(CalleeNode);
    ILOp SrcOp = Src.Op;
    DataType SrcType = Src.Type;
    int32_t SrcA = Src.A, SrcB = Src.B;
    int64_t SrcCI = Src.ConstI;
    double SrcCF = Src.ConstF;
    std::vector<NodeId> Kids;
    Kids.reserve(Src.Kids.size());
    for (NodeId K : std::vector<NodeId>(Src.Kids.begin(), Src.Kids.end()))
      Kids.push_back(Self(Self, K));
    NodeId Fresh = IL.makeNode(SrcOp, SrcType, Kids);
    Node &F = IL.node(Fresh);
    F.A = SrcA;
    F.B = SrcB;
    F.ConstI = SrcCI;
    F.ConstF = SrcCF;
    if (F.Op == ILOp::LoadLocal || F.Op == ILOp::StoreLocal)
      F.A = (int32_t)LocalMap[(uint32_t)F.A];
    NodeMap[CalleeNode] = Fresh;
    return Fresh;
  };

  for (BlockId CB = 0; CB < CalleeIL->numBlocks(); ++CB) {
    const Block &Src = CCal.block(CB);
    Block &Dst = IL.block(BlockMap[CB]);
    Dst.IsHandler = Src.IsHandler;
    Dst.Frequency = IL.block(B).Frequency * Src.Frequency;
    Dst.Reachable = Src.Reachable;
    for (const HandlerRef &H : Src.Handlers)
      Dst.Handlers.push_back({BlockMap[H.Handler], H.ClassIndex});
    // The caller's handler scope wraps the inlined body (outermost last).
    for (const HandlerRef &H : IL.block(B).Handlers)
      Dst.Handlers.push_back(H);
    if (!Src.Reachable)
      continue;
    for (NodeId Tree : Src.Trees) {
      const Node &T = CCal.node(Tree);
      if (T.Op == ILOp::Return) {
        if (!T.Kids.empty() && RetSlot != UINT32_MAX) {
          NodeId Val = Import(Import, T.Kids[0]);
          NodeId Store = IL.makeNode(ILOp::StoreLocal, DataType::Void, {Val});
          IL.node(Store).A = (int32_t)RetSlot;
          IL.block(BlockMap[CB]).Trees.push_back(Store);
        }
        IL.block(BlockMap[CB])
            .Trees.push_back(IL.makeNode(ILOp::Goto, DataType::Void));
        IL.addEdge(BlockMap[CB], Cont);
        continue;
      }
      NodeId Imported = Import(Import, Tree);
      IL.block(BlockMap[CB]).Trees.push_back(Imported);
    }
    for (BlockId S : Src.Succs)
      IL.addEdge(BlockMap[CB], BlockMap[S]);
  }

  // Jump from the caller prefix into the inlined entry.
  IL.block(B).Trees.push_back(IL.makeNode(ILOp::Goto, DataType::Void));
  IL.addEdge(B, BlockMap[CalleeIL->entryBlock()]);

  // The call node now stands for the returned value.
  if (RetSlot != UINT32_MAX)
    Ctx.rewriteToLoadLocal(Site.CallNode, CalleeInfo.ReturnType, RetSlot);
  else
    Ctx.rewriteToConstI(Site.CallNode, DataType::Int32, 0);

  IL.computeReachability();
  return CalleeNodes;
}

} // namespace

bool jitml::runInlining(PassContext &Ctx, uint32_t CalleeNodeBudget,
                        uint32_t GrowthBudget) {
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  uint32_t Growth = 0;
  // Remember rejected call nodes so the scan makes progress.
  std::unordered_map<NodeId, bool> Rejected;
  while (Growth < GrowthBudget) {
    CallSite Site;
    bool Found = false;
    for (BlockId B = 0; B < CIL.numBlocks() && !Found; ++B) {
      const Block &Blk = CIL.block(B);
      if (!Blk.Reachable)
        continue;
      for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
        const Node &N = CIL.node(Blk.Trees[TI]);
        if (N.Op != ILOp::ExprStmt)
          continue;
        const Node &C = CIL.node(N.Kids[0]);
        if (C.Op != ILOp::Call || C.B != 0 || Rejected.count(N.Kids[0]))
          continue;
        uint32_t Callee = (uint32_t)C.A;
        const MethodInfo &M = CIL.program().methodAt(Callee);
        if (Callee == CIL.methodIndex() || M.hasFlag(MF_Synchronized) ||
            M.Code.size() > CalleeNodeBudget) {
          Rejected[N.Kids[0]] = true;
          continue;
        }
        Site = {B, TI, N.Kids[0]};
        Found = true;
        break;
      }
    }
    if (!Found)
      break;
    uint32_t Added = inlineSite(Ctx, Site, CalleeNodeBudget);
    if (Added == 0) {
      Rejected[Site.CallNode] = true;
      continue;
    }
    // Drop the now-dead anchor: the splice left it in the prefix block as
    // the argument stores took its place, and the call node itself was
    // rewritten to a local load or constant.
    Growth += Added;
    if (CalleeNodeBudget >= 40) {
      // Higher tiers keep going while budget remains.
      Ctx.noteChange(TransformationKind::InlineSmall);
    } else {
      Ctx.noteChange(TransformationKind::InlineTrivial);
    }
    Changed = true;
  }
  return Changed;
}
