//===- opt/FoldSimplify.cpp - Expression-level rewrites -------------------===//
//
// Constant folding, algebraic simplification, strength reduction,
// reassociation, conversion cleanups, and the FP/BCD/long-double variants.
// All engines share a post-order visitor that touches every reachable node
// once per run; plans re-run these as cleanup steps after the structural
// passes, exactly like Testarossa's repeated cleanup applications.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include <cmath>

using namespace jitml;

namespace {

/// Normalizes an integer value to the wrap-around behaviour of its type.
int64_t normalizeInt(DataType T, int64_t V) {
  switch (T) {
  case DataType::Int8:
    return (int64_t)(int8_t)V;
  case DataType::Char:
    return (int64_t)(uint16_t)V;
  case DataType::Int16:
    return (int64_t)(int16_t)V;
  case DataType::Int32:
    return (int64_t)(int32_t)V;
  default:
    return V;
  }
}

/// Post-order visitor over every reachable tree; Visit(NodeId) returns true
/// when it rewrote the node. Each node is visited once per run.
template <typename VisitFn>
bool forEachNodePostOrder(PassContext &Ctx, VisitFn Visit) {
  // All reads go through the const view: the mutable accessors bump the
  // IL's modification epoch, which would make every visit look like a
  // write and defeat no-change memoization of these cleanup passes.
  const MethodIL &IL = Ctx.cil();
  std::vector<uint8_t> Seen(IL.numNodes(), 0);
  bool Changed = false;
  // Explicit stack: (node, kids-done flag).
  std::vector<std::pair<NodeId, bool>> Stack;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    for (NodeId Root : IL.block(B).Trees) {
      Stack.emplace_back(Root, false);
      while (!Stack.empty()) {
        auto [Id, KidsDone] = Stack.back();
        Stack.pop_back();
        if (KidsDone) {
          Ctx.charge(1);
          if (Visit(Id))
            Changed = true;
          continue;
        }
        if (Id < Seen.size() && Seen[Id])
          continue;
        if (Id >= Seen.size())
          Seen.resize(IL.numNodes(), 0);
        Seen[Id] = 1;
        Stack.emplace_back(Id, true);
        for (NodeId Kid : IL.node(Id).Kids)
          Stack.emplace_back(Kid, false);
      }
    }
  }
  return Changed;
}

bool isConst(const MethodIL &IL, NodeId Id) {
  return IL.node(Id).Op == ILOp::Const;
}

bool isIntConst(const MethodIL &IL, NodeId Id, int64_t V) {
  const Node &N = IL.node(Id);
  return N.Op == ILOp::Const &&
         (isIntegerType(N.Type) || isDecimalType(N.Type)) && N.ConstI == V;
}

bool isFpConst(const MethodIL &IL, NodeId Id, double V) {
  const Node &N = IL.node(Id);
  return N.Op == ILOp::Const && isFloatType(N.Type) && N.ConstF == V;
}

/// Structural equality of two trees (used by x-x -> 0 style identities when
/// the node ids differ). Only meaningful for pure, memory-free trees.
bool structurallyEqual(const MethodIL &IL, NodeId A, NodeId B) {
  if (A == B)
    return true;
  const Node &NA = IL.node(A);
  const Node &NB = IL.node(B);
  if (NA.Op != NB.Op || NA.Type != NB.Type || NA.A != NB.A || NA.B != NB.B ||
      NA.ConstI != NB.ConstI || NA.ConstF != NB.ConstF ||
      NA.Kids.size() != NB.Kids.size())
    return false;
  for (size_t I = 0; I < NA.Kids.size(); ++I)
    if (!structurallyEqual(IL, NA.Kids[I], NB.Kids[I]))
      return false;
  return true;
}

/// Three-way comparison helper shared by Cmp folding.
template <typename T> int64_t threeWay(T A, T B) {
  if (A < B)
    return -1;
  if (A > B)
    return 1;
  return 0;
}

bool evalCond(BcCond C, int64_t Cmp3) {
  switch (C) {
  case BcCond::Eq:
    return Cmp3 == 0;
  case BcCond::Ne:
    return Cmp3 != 0;
  case BcCond::Lt:
    return Cmp3 < 0;
  case BcCond::Ge:
    return Cmp3 >= 0;
  case BcCond::Gt:
    return Cmp3 > 0;
  case BcCond::Le:
    return Cmp3 <= 0;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

bool jitml::runConstantFolding(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = IL.node(Id);
    // Unary.
    if (N.Op == ILOp::Neg && isConst(IL, N.Kids[0])) {
      const Node &K = IL.node(N.Kids[0]);
      if (isFloatType(N.Type))
        Ctx.rewriteToConstF(Id, N.Type, -K.ConstF);
      else
        Ctx.rewriteToConstI(Id, N.Type, normalizeInt(N.Type, -K.ConstI));
      return true;
    }
    if (N.Op == ILOp::Conv && isConst(IL, N.Kids[0])) {
      const Node &K = IL.node(N.Kids[0]);
      DataType From = (DataType)N.A;
      DataType To = N.Type;
      if (isReferenceType(From) || isReferenceType(To))
        return false;
      double AsF = isFloatType(From) ? K.ConstF : (double)K.ConstI;
      int64_t AsI = isFloatType(From) ? (int64_t)K.ConstF : K.ConstI;
      if (isFloatType(To))
        Ctx.rewriteToConstF(Id, To,
                            To == DataType::Float ? (double)(float)AsF : AsF);
      else
        Ctx.rewriteToConstI(Id, To, normalizeInt(To, AsI));
      return true;
    }
    if (!isArithOp(N.Op) && N.Op != ILOp::Cmp && N.Op != ILOp::CmpCond)
      return false;
    if (N.Kids.size() != 2 || !isConst(IL, N.Kids[0]) ||
        !isConst(IL, N.Kids[1]))
      return false;
    const Node &L = IL.node(N.Kids[0]);
    const Node &R = IL.node(N.Kids[1]);

    if (N.Op == ILOp::Cmp || N.Op == ILOp::CmpCond) {
      int64_t C3 = isFloatType(L.Type) ? threeWay(L.ConstF, R.ConstF)
                                       : threeWay(L.ConstI, R.ConstI);
      int64_t V = N.Op == ILOp::Cmp ? C3 : (evalCond((BcCond)N.A, C3) ? 1 : 0);
      Ctx.rewriteToConstI(Id, DataType::Int32, V);
      return true;
    }

    if (isFloatType(N.Type)) {
      double A = L.ConstF, B = R.ConstF, V;
      switch (N.Op) {
      case ILOp::Add:
        V = A + B;
        break;
      case ILOp::Sub:
        V = A - B;
        break;
      case ILOp::Mul:
        V = A * B;
        break;
      case ILOp::Div:
        V = A / B;
        break;
      case ILOp::Rem:
        V = std::fmod(A, B);
        break;
      default:
        return false;
      }
      if (N.Type == DataType::Float)
        V = (double)(float)V;
      Ctx.rewriteToConstF(Id, N.Type, V);
      return true;
    }

    int64_t A = L.ConstI, B = R.ConstI, V;
    switch (N.Op) {
    case ILOp::Add:
      V = (int64_t)((uint64_t)A + (uint64_t)B);
      break;
    case ILOp::Sub:
      V = (int64_t)((uint64_t)A - (uint64_t)B);
      break;
    case ILOp::Mul:
      V = (int64_t)((uint64_t)A * (uint64_t)B);
      break;
    case ILOp::Div:
      if (B == 0)
        return false; // keep the runtime exception
      V = A / B;
      break;
    case ILOp::Rem:
      if (B == 0)
        return false;
      V = A % B;
      break;
    case ILOp::Shl:
      V = (int64_t)((uint64_t)A << (B & 63));
      break;
    case ILOp::Shr:
      V = A >> (B & 63);
      break;
    case ILOp::Or:
      V = A | B;
      break;
    case ILOp::And:
      V = A & B;
      break;
    case ILOp::Xor:
      V = A ^ B;
      break;
    default:
      return false;
    }
    Ctx.rewriteToConstI(Id, N.Type, normalizeInt(N.Type, V));
    return true;
  });
}

//===----------------------------------------------------------------------===//
// Algebraic simplification (integer identities)
//===----------------------------------------------------------------------===//

bool jitml::runExpressionSimplification(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = IL.node(Id);
    if (N.Kids.size() == 1 && N.Op == ILOp::Neg) {
      const Node &K = IL.node(N.Kids[0]);
      if (K.Op == ILOp::Neg) { // neg(neg(x)) -> x
        Ctx.rewriteToCopyOf(Id, K.Kids[0]);
        return true;
      }
      return false;
    }
    if (N.Kids.size() != 2 || !isIntegerType(N.Type))
      return false;
    NodeId LId = N.Kids[0], RId = N.Kids[1];

    auto ReplaceWith = [&](NodeId Src) {
      Ctx.rewriteToCopyOf(Id, Src);
      return true;
    };
    auto BecomeZero = [&]() {
      // Safe only when the dropped operand cannot carry an unanchored
      // side effect; ILGen anchors all impure nodes, and memory reads may
      // be skipped freely.
      Ctx.rewriteToConstI(Id, N.Type, 0);
      return true;
    };

    switch (N.Op) {
    case ILOp::Add:
      if (isIntConst(IL, RId, 0))
        return ReplaceWith(LId);
      if (isIntConst(IL, LId, 0))
        return ReplaceWith(RId);
      return false;
    case ILOp::Sub:
      if (isIntConst(IL, RId, 0))
        return ReplaceWith(LId);
      if (LId == RId ||
          (Ctx.isPureAndMemoryFree(LId) && structurallyEqual(IL, LId, RId)))
        return BecomeZero();
      return false;
    case ILOp::Mul:
      if (isIntConst(IL, RId, 1))
        return ReplaceWith(LId);
      if (isIntConst(IL, LId, 1))
        return ReplaceWith(RId);
      if (isIntConst(IL, RId, 0) || isIntConst(IL, LId, 0))
        return BecomeZero();
      return false;
    case ILOp::Div:
      if (isIntConst(IL, RId, 1))
        return ReplaceWith(LId);
      return false;
    case ILOp::Rem:
      if (isIntConst(IL, RId, 1))
        return BecomeZero();
      return false;
    case ILOp::Shl:
    case ILOp::Shr:
      if (isIntConst(IL, RId, 0))
        return ReplaceWith(LId);
      return false;
    case ILOp::Or:
      if (isIntConst(IL, RId, 0))
        return ReplaceWith(LId);
      if (isIntConst(IL, LId, 0))
        return ReplaceWith(RId);
      if (LId == RId)
        return ReplaceWith(LId);
      return false;
    case ILOp::And:
      if (isIntConst(IL, RId, -1))
        return ReplaceWith(LId);
      if (isIntConst(IL, RId, 0) || isIntConst(IL, LId, 0))
        return BecomeZero();
      if (LId == RId)
        return ReplaceWith(LId);
      return false;
    case ILOp::Xor:
      if (isIntConst(IL, RId, 0))
        return ReplaceWith(LId);
      if (LId == RId)
        return BecomeZero();
      return false;
    default:
      return false;
    }
  });
}

//===----------------------------------------------------------------------===//
// Strength reduction: multiplications by constants become shifts/adds.
//===----------------------------------------------------------------------===//

bool jitml::runStrengthReduction(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = CIL.node(Id);
    if (N.Op != ILOp::Mul || !isIntegerType(N.Type) || N.Kids.size() != 2)
      return false;
    // Canonical: constant on the right (reassociation also ensures this).
    NodeId XId = N.Kids[0], CId = N.Kids[1];
    if (!isConst(CIL, CId)) {
      std::swap(XId, CId);
      if (!isConst(CIL, CId))
        return false;
    }
    int64_t C = CIL.node(CId).ConstI;
    if (C <= 0)
      return false;
    DataType T = N.Type;
    auto IsPow2 = [](int64_t V) { return V > 0 && (V & (V - 1)) == 0; };
    auto Log2 = [](int64_t V) {
      unsigned K = 0;
      while ((V >>= 1) != 0)
        ++K;
      return (int64_t)K;
    };
    // All makeNode/makeConstI calls happen before taking the mutable ref:
    // they can reallocate the arena and leave it dangling.
    if (IsPow2(C)) { // x * 2^k -> x << k
      NodeId ShAmt = IL.makeConstI(T, Log2(C));
      Node &M = IL.node(Id);
      M.Op = ILOp::Shl;
      M.Kids = {XId, ShAmt};
      return true;
    }
    if (IsPow2(C - 1)) { // x * (2^k + 1) -> (x << k) + x
      NodeId Shift = IL.makeNode(ILOp::Shl, T,
                                 {XId, IL.makeConstI(T, Log2(C - 1))});
      Node &M = IL.node(Id);
      M.Op = ILOp::Add;
      M.Kids = {Shift, XId};
      return true;
    }
    if (IsPow2(C + 1)) { // x * (2^k - 1) -> (x << k) - x
      NodeId Shift = IL.makeNode(ILOp::Shl, T,
                                 {XId, IL.makeConstI(T, Log2(C + 1))});
      Node &M = IL.node(Id);
      M.Op = ILOp::Sub;
      M.Kids = {Shift, XId};
      return true;
    }
    return false;
  });
}

//===----------------------------------------------------------------------===//
// Reassociation: gathers constants in add/mul chains so folding can act.
//===----------------------------------------------------------------------===//

bool jitml::runReassociation(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = CIL.node(Id);
    if (!isIntegerType(N.Type) || N.Kids.size() != 2)
      return false;
    if (N.Op != ILOp::Add && N.Op != ILOp::Mul)
      return false;
    bool Changed = false;
    // Canonicalize: constant operand on the right.
    if (isConst(CIL, N.Kids[0]) && !isConst(CIL, N.Kids[1])) {
      Node &M = IL.node(Id);
      std::swap(M.Kids[0], M.Kids[1]);
      Changed = true;
    }
    // (x op c1) op c2 -> x op (c1 op c2): rotate so folding finishes it.
    if (isConst(CIL, N.Kids[1])) {
      const Node &L = CIL.node(N.Kids[0]);
      if (L.Op == N.Op && L.Kids.size() == 2 && isConst(CIL, L.Kids[1]) &&
          L.Type == N.Type) {
        int64_t C1 = CIL.node(L.Kids[1]).ConstI;
        int64_t C2 = CIL.node(N.Kids[1]).ConstI;
        int64_t C = N.Op == ILOp::Add
                        ? (int64_t)((uint64_t)C1 + (uint64_t)C2)
                        : (int64_t)((uint64_t)C1 * (uint64_t)C2);
        NodeId X = L.Kids[0];
        DataType MT = N.Type;
        // makeConstI may reallocate the arena: call it before re-taking
        // the mutable ref (N/L are stale past this point).
        NodeId CN = IL.makeConstI(MT, normalizeInt(MT, C));
        Node &M = IL.node(Id);
        M.Kids = {X, CN};
        Changed = true;
      }
    }
    return Changed;
  });
}

//===----------------------------------------------------------------------===//
// Conversion cleanups
//===----------------------------------------------------------------------===//

bool jitml::runSignExtensionElimination(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = IL.node(Id);
    if (N.Op != ILOp::Conv)
      return false;
    DataType From = (DataType)N.A;
    DataType To = N.Type;
    if (From == To) { // conv T->T is a no-op
      Ctx.rewriteToCopyOf(Id, N.Kids[0]);
      return true;
    }
    // conv(A->B) of conv(B->A) collapses when the inner widening is
    // lossless, e.g. int -> long -> int.
    const Node &K = IL.node(N.Kids[0]);
    if (K.Op != ILOp::Conv)
      return false;
    DataType Inner = (DataType)K.A;
    if (Inner != To || !isIntegerType(Inner) || !isIntegerType(From))
      return false;
    if (integerWidth(From) >= integerWidth(Inner)) {
      Ctx.rewriteToCopyOf(Id, K.Kids[0]);
      return true;
    }
    return false;
  });
}

//===----------------------------------------------------------------------===//
// Floating-point variants
//===----------------------------------------------------------------------===//

bool jitml::runFPSimplification(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = IL.node(Id);
    if (!isFloatType(N.Type) || N.Kids.size() != 2)
      return false;
    NodeId LId = N.Kids[0], RId = N.Kids[1];
    switch (N.Op) {
    case ILOp::Add:
      if (isFpConst(IL, RId, 0.0)) {
        Ctx.rewriteToCopyOf(Id, LId);
        return true;
      }
      return false;
    case ILOp::Sub:
      if (isFpConst(IL, RId, 0.0)) {
        Ctx.rewriteToCopyOf(Id, LId);
        return true;
      }
      return false;
    case ILOp::Mul:
      if (isFpConst(IL, RId, 1.0)) {
        Ctx.rewriteToCopyOf(Id, LId);
        return true;
      }
      if (isFpConst(IL, LId, 1.0)) {
        Ctx.rewriteToCopyOf(Id, RId);
        return true;
      }
      return false;
    case ILOp::Div:
      if (isFpConst(IL, RId, 1.0)) {
        Ctx.rewriteToCopyOf(Id, LId);
        return true;
      }
      return false;
    default:
      return false;
    }
  });
}

bool jitml::runFPStrengthReduction(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = CIL.node(Id);
    if (N.Op != ILOp::Div || !isFloatType(N.Type) || N.Kids.size() != 2)
      return false;
    const Node &R = CIL.node(N.Kids[1]);
    if (R.Op != ILOp::Const || R.ConstF == 0.0)
      return false;
    // x / c -> x * (1/c). Exact for powers of two; the plan only schedules
    // this transformation when strict FP compliance is off.
    NodeId Recip = IL.makeConstF(N.Type, 1.0 / R.ConstF);
    Node &M = IL.node(Id);
    M.Op = ILOp::Mul;
    M.Kids[1] = Recip;
    return true;
  });
}

//===----------------------------------------------------------------------===//
// Binary-coded-decimal cleanups
//===----------------------------------------------------------------------===//

bool jitml::runBCDSimplification(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = IL.node(Id);
    // packed<->zoned round trips are identities.
    if (N.Op == ILOp::Conv && isDecimalType(N.Type)) {
      const Node &K = IL.node(N.Kids[0]);
      if (K.Op == ILOp::Conv && isDecimalType((DataType)N.A) &&
          (DataType)K.A == N.Type) {
        Ctx.rewriteToCopyOf(Id, K.Kids[0]);
        return true;
      }
      return false;
    }
    if (!isDecimalType(N.Type) || N.Kids.size() != 2)
      return false;
    if ((N.Op == ILOp::Add || N.Op == ILOp::Sub) &&
        isIntConst(IL, N.Kids[1], 0)) {
      Ctx.rewriteToCopyOf(Id, N.Kids[0]);
      return true;
    }
    return false;
  });
}

//===----------------------------------------------------------------------===//
// Long-double fast paths
//===----------------------------------------------------------------------===//

bool jitml::runLongDoubleFastPath(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  return forEachNodePostOrder(Ctx, [&](NodeId Id) {
    const Node &N = CIL.node(Id);
    // conv(longdouble->double) of conv(double->longdouble) is exact.
    if (N.Op == ILOp::Conv && N.Type == DataType::Double &&
        (DataType)N.A == DataType::LongDouble) {
      const Node &K = CIL.node(N.Kids[0]);
      if (K.Op == ILOp::Conv && (DataType)K.A == DataType::Double) {
        Ctx.rewriteToCopyOf(Id, K.Kids[0]);
        return true;
      }
      return false;
    }
    // op_ld(conv(d->ld) a, conv(d->ld) b) -> conv(d->ld, op_d(a, b)):
    // both operands started as doubles, so the narrower op is exact in the
    // simulated 64-bit long-double carrier.
    if (N.Type != DataType::LongDouble || N.Kids.size() != 2 ||
        !isArithOp(N.Op))
      return false;
    const Node &L = CIL.node(N.Kids[0]);
    const Node &R = CIL.node(N.Kids[1]);
    auto IsWiden = [](const Node &K) {
      return K.Op == ILOp::Conv && (DataType)K.A == DataType::Double;
    };
    if (!IsWiden(L) || !IsWiden(R))
      return false;
    NodeId NarrowOp =
        IL.makeNode(N.Op, DataType::Double, {L.Kids[0], R.Kids[0]});
    Node &M = IL.node(Id);
    M.Op = ILOp::Conv;
    M.A = (int32_t)DataType::Double;
    M.Kids = {NarrowOp};
    return true;
  });
}
