//===- opt/Transformation.cpp ---------------------------------------------===//

#include "opt/Transformation.h"

#include "il/LoopInfo.h"
#include "il/MethodIL.h"

using namespace jitml;

namespace {

constexpr TransformationInfo Infos[NumTransformations] = {
    // Name, Stage, CostPerNode, BaseCost
    {"constantFolding", TransformStage::Tree, 4.8, 320},
    {"expressionSimplification", TransformStage::Tree, 5.6, 320},
    {"strengthReduction", TransformStage::Tree, 4.0, 240},
    {"reassociation", TransformStage::Tree, 7.2, 400},
    {"signExtensionElimination", TransformStage::Tree, 3.2, 200},
    {"fpSimplification", TransformStage::Tree, 4.0, 240},
    {"fpStrengthReduction", TransformStage::Tree, 4.0, 240},
    {"bcdSimplification", TransformStage::Tree, 6.4, 320},
    {"longDoubleFastPath", TransformStage::Tree, 4.8, 240},
    {"localCopyPropagation", TransformStage::Tree, 8.0, 480},
    {"localValueNumbering", TransformStage::Tree, 12.8, 720},
    {"redundantLoadElimination", TransformStage::Tree, 11.2, 640},
    {"deadTreeElimination", TransformStage::Tree, 6.4, 320},
    {"deadStoreElimination", TransformStage::Tree, 9.6, 480},
    {"rematerialization", TransformStage::Tree, 7.2, 400},
    {"storeSinking", TransformStage::Tree, 8.0, 400},
    {"guardMerging", TransformStage::Tree, 5.6, 280},
    {"throwFastPathing", TransformStage::Tree, 4.0, 200},
    {"allocationSinking", TransformStage::Tree, 8.8, 480},
    {"globalCopyPropagation", TransformStage::Tree, 17.6, 1200},
    {"globalValueNumbering", TransformStage::Tree, 24.0, 1760},
    {"globalDeadStoreElimination", TransformStage::Tree, 16.0, 1120},
    {"partialRedundancyElimination", TransformStage::Tree, 20.8, 1440},
    {"unreachableCodeElimination", TransformStage::Tree, 4.0, 240},
    {"blockMerging", TransformStage::Tree, 4.8, 240},
    {"branchFolding", TransformStage::Tree, 4.8, 240},
    {"jumpThreading", TransformStage::Tree, 7.2, 400},
    {"tailDuplication", TransformStage::Tree, 12.0, 720},
    {"coldBlockOutlining", TransformStage::Tree, 4.8, 280},
    {"nullCheckElimination", TransformStage::Tree, 8.8, 480},
    {"boundsCheckElimination", TransformStage::Tree, 12.0, 720},
    {"divCheckElimination", TransformStage::Tree, 4.8, 240},
    {"castCheckElimination", TransformStage::Tree, 6.4, 320},
    {"devirtualization", TransformStage::Tree, 9.6, 560},
    {"inlineTrivial", TransformStage::Tree, 16.0, 960},
    {"inlineSmall", TransformStage::Tree, 25.6, 1760},
    {"inlineAggressive", TransformStage::Tree, 40.0, 3200},
    {"escapeAnalysis", TransformStage::Tree, 19.2, 1280},
    {"monitorElision", TransformStage::Tree, 8.0, 400},
    {"loopCanonicalization", TransformStage::Tree, 9.6, 560},
    {"loopInvariantCodeMotion", TransformStage::Tree, 19.2, 1280},
    {"loopUnrolling", TransformStage::Tree, 22.4, 1440},
    {"loopUnrollingAggressive", TransformStage::Tree, 28.8, 1920},
    {"loopFullUnrolling", TransformStage::Tree, 24.0, 1600},
    {"loopPeeling", TransformStage::Tree, 17.6, 1200},
    {"loopBoundsVersioning", TransformStage::Tree, 20.8, 1360},
    {"loopStrengthReduction", TransformStage::Tree, 16.0, 1040},
    {"inductionVariableElimination", TransformStage::Tree, 11.2, 640},
    {"emptyLoopRemoval", TransformStage::Tree, 8.0, 400},
    {"idiomRecognition", TransformStage::Tree, 14.4, 880},
    {"prefetchInsertion", TransformStage::Tree, 8.0, 440},
    {"registerCoalescing", TransformStage::Codegen, 8.0, 480},
    {"instructionScheduling", TransformStage::Codegen, 19.2, 1280},
    {"peepholeOptimization", TransformStage::Codegen, 7.2, 400},
    {"constantEncoding", TransformStage::Codegen, 4.8, 240},
    {"profileGuidedLayout", TransformStage::Codegen, 9.6, 560},
    {"implicitExceptionChecks", TransformStage::Tree, 6.4, 320},
    {"leafRoutineOptimization", TransformStage::Codegen, 2.4, 160},
};

} // namespace

GuardFacts jitml::scanGuardFacts(const MethodIL &IL) {
  GuardFacts F;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    for (BlockId S : Blk.Succs)
      if (S <= B)
        F.HasLoops = true; // cheap necessary condition; refined below
  }
  for (NodeId Id = 0; Id < IL.numNodes(); ++Id) {
    const Node &N = IL.node(Id);
    if (isFloatType(N.Type))
      F.HasFP = true;
    if (isDecimalType(N.Type))
      F.HasDecimal = true;
    if (N.Type == DataType::LongDouble)
      F.HasLongDouble = true;
    switch (N.Op) {
    case ILOp::New:
    case ILOp::NewArray:
    case ILOp::NewMultiArray:
      F.HasAllocation = true;
      break;
    case ILOp::MonitorEnter:
      F.HasMonitors = true;
      break;
    case ILOp::Call: {
      F.HasCalls = true;
      if (N.B)
        F.HasVirtualCalls = true;
      const MethodInfo &Callee = IL.program().methodAt((uint32_t)N.A);
      if (Callee.ClassIndex >= 0 &&
          IL.program().classAt((uint32_t)Callee.ClassIndex).Kind ==
              ClassKind::UnsafeIntrinsic)
        F.UsesUnsafe = true;
      break;
    }
    case ILOp::Throw:
      F.HasThrow = true;
      break;
    case ILOp::Conv:
      F.HasCasts = true;
      break;
    case ILOp::CastCheck:
    case ILOp::InstanceOf:
      F.HasCheckCast = true;
      break;
    case ILOp::LoadField:
    case ILOp::LoadElem:
    case ILOp::LoadGlobal:
      F.HasMemoryLoads = true;
      break;
    case ILOp::NullCheck:
    case ILOp::BoundsCheck:
    case ILOp::DivCheck:
      F.HasChecks = true;
      break;
    default:
      break;
    }
  }
  return F;
}

const TransformationInfo &jitml::transformationInfo(TransformationKind K) {
  return Infos[(unsigned)K];
}

const char *jitml::transformationName(TransformationKind K) {
  return Infos[(unsigned)K].Name;
}

bool jitml::transformationApplicable(TransformationKind K,
                                     const MethodIL &IL) {
  return transformationApplicable(K, IL, scanGuardFacts(IL));
}

bool jitml::transformationApplicable(TransformationKind K, const MethodIL &IL,
                                     const GuardFacts &F) {
  const MethodInfo &M = IL.methodInfo();
  switch (K) {
  case TransformationKind::LoopCanonicalization:
  case TransformationKind::LoopInvariantCodeMotion:
  case TransformationKind::LoopUnrolling:
  case TransformationKind::LoopUnrollingAggressive:
  case TransformationKind::LoopFullUnrolling:
  case TransformationKind::LoopPeeling:
  case TransformationKind::LoopBoundsVersioning:
  case TransformationKind::LoopStrengthReduction:
  case TransformationKind::InductionVariableElimination:
  case TransformationKind::EmptyLoopRemoval:
  case TransformationKind::IdiomRecognition:
  case TransformationKind::PrefetchInsertion:
    return F.HasLoops;
  case TransformationKind::EscapeAnalysis:
  case TransformationKind::AllocationSinking:
    return F.HasAllocation;
  case TransformationKind::MonitorElision:
    return F.HasMonitors;
  case TransformationKind::FPSimplification:
    return F.HasFP;
  case TransformationKind::FPStrengthReduction:
    // Unsafe under strict floating-point rules.
    return F.HasFP && !M.hasFlag(MF_StrictFP);
  case TransformationKind::BCDSimplification:
    return F.HasDecimal;
  case TransformationKind::LongDoubleFastPath:
    return F.HasLongDouble;
  case TransformationKind::ThrowFastPathing:
    return F.HasThrow;
  case TransformationKind::SignExtensionElimination:
    return F.HasCasts;
  case TransformationKind::CastCheckElimination:
    return F.HasCheckCast;
  case TransformationKind::Devirtualization:
    return F.HasVirtualCalls;
  case TransformationKind::InlineTrivial:
  case TransformationKind::InlineSmall:
  case TransformationKind::InlineAggressive:
    return F.HasCalls;
  case TransformationKind::RedundantLoadElimination:
    // "Unsafe symbols ... prevents some optimizations such as
    // redundant-load elimination" (section 4.1.1).
    return F.HasMemoryLoads && !F.UsesUnsafe;
  case TransformationKind::NullCheckElimination:
  case TransformationKind::BoundsCheckElimination:
  case TransformationKind::DivCheckElimination:
  case TransformationKind::GuardMerging:
  case TransformationKind::ImplicitExceptionChecks:
    return F.HasChecks;
  default:
    return true;
  }
}
