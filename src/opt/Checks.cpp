//===- opt/Checks.cpp - Runtime check eliminations ------------------------===//
//
// Null/bounds/division/cast check elimination plus the implicit-check
// marking that lets the code generator fold a null check into the hardware
// trap of the dereference that follows it.
//
// All reasoning here leans on the IL's DAG semantics: a node id denotes one
// value per block execution, so two checks guarding the same node id are
// literally checking the same value.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include <set>
#include <unordered_set>

using namespace jitml;

namespace {

bool isAllocation(ILOp Op) {
  return Op == ILOp::New || Op == ILOp::NewArray || Op == ILOp::NewMultiArray;
}

} // namespace

bool jitml::runNullCheckElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    std::unordered_set<NodeId> NonNullNodes;
    std::unordered_set<int32_t> NonNullSlots;
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op == ILOp::StoreLocal) {
        NonNullSlots.erase(N.A);
        // A store of a fresh allocation makes the slot non-null.
        if (isAllocation(CIL.node(N.Kids[0]).Op))
          NonNullSlots.insert(N.A);
      }
      if (N.Op != ILOp::NullCheck) {
        ++TI;
        continue;
      }
      NodeId Ref = N.Kids[0];
      const Node &RefN = CIL.node(Ref);
      bool Redundant = isAllocation(RefN.Op) || NonNullNodes.count(Ref) ||
                       (RefN.Op == ILOp::LoadLocal &&
                        NonNullSlots.count(RefN.A));
      if (Redundant) {
        Block &MBlk = IL.block(B);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::NullCheckElimination);
        Changed = true;
        continue;
      }
      NonNullNodes.insert(Ref);
      if (RefN.Op == ILOp::LoadLocal)
        NonNullSlots.insert(RefN.A);
      ++TI;
    }
  }
  return Changed;
}

bool jitml::runBoundsCheckElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    // (array node, index node) pairs already checked in this block. Node
    // ids denote fixed values per execution, so repeats are redundant.
    std::set<std::pair<NodeId, NodeId>> Checked;
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::BoundsCheck) {
        ++TI;
        continue;
      }
      NodeId Arr = N.Kids[0], Idx = N.Kids[1];
      bool Redundant = false;
      // Fused checks (GuardMerging set B=1) still subsume later plain
      // checks on the same pair.
      if (Checked.count({Arr, Idx}))
        Redundant = true;
      // Constant index into an allocation with a constant length.
      const Node &ArrN = CIL.node(Arr);
      const Node &IdxN = CIL.node(Idx);
      if (!Redundant && ArrN.Op == ILOp::NewArray &&
          IdxN.Op == ILOp::Const) {
        const Node &Len = CIL.node(ArrN.Kids[0]);
        if (Len.Op == ILOp::Const && IdxN.ConstI >= 0 &&
            IdxN.ConstI < Len.ConstI)
          Redundant = true;
      }
      if (Redundant && N.B == 0) {
        Block &MBlk = IL.block(B);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::BoundsCheckElimination);
        Changed = true;
        continue;
      }
      Checked.insert({Arr, Idx});
      ++TI;
    }
  }
  return Changed;
}

bool jitml::runDivCheckElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    std::unordered_set<NodeId> CheckedDivisors;
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::DivCheck) {
        ++TI;
        continue;
      }
      NodeId D = N.Kids[0];
      const Node &DN = CIL.node(D);
      bool Redundant = CheckedDivisors.count(D) ||
                       (DN.Op == ILOp::Const && DN.ConstI != 0);
      if (Redundant) {
        Block &MBlk = IL.block(B);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::DivCheckElimination);
        Changed = true;
        continue;
      }
      CheckedDivisors.insert(D);
      ++TI;
    }
  }
  return Changed;
}

bool jitml::runCastCheckElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const Program &P = CIL.program();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    std::set<std::pair<int32_t, NodeId>> Passed; ///< (class, node) pairs
    for (size_t TI = 0; TI < Blk.Trees.size();) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::CastCheck) {
        ++TI;
        continue;
      }
      NodeId Obj = N.Kids[0];
      const Node &ObjN = CIL.node(Obj);
      bool Redundant = Passed.count({N.A, Obj});
      // Statically known allocation class.
      if (!Redundant && ObjN.Op == ILOp::New &&
          P.isSubclassOf(ObjN.A, N.A))
        Redundant = true;
      if (Redundant) {
        Block &MBlk = IL.block(B);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::CastCheckElimination);
        Changed = true;
        continue;
      }
      Passed.insert({N.A, Obj});
      ++TI;
    }
  }
  // Fold instanceof on fresh allocations (expression level).
  for (NodeId Id = 0; Id < CIL.numNodes(); ++Id) {
    const Node &N = CIL.node(Id);
    if (N.Op != ILOp::InstanceOf)
      continue;
    const Node &Obj = CIL.node(N.Kids[0]);
    if (Obj.Op != ILOp::New)
      continue;
    Ctx.rewriteToConstI(Id, DataType::Int32,
                        P.isSubclassOf(Obj.A, N.A) ? 1 : 0);
    Ctx.noteChange(TransformationKind::CastCheckElimination);
    Changed = true;
  }
  return Changed;
}

bool jitml::runImplicitExceptionChecks(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op != ILOp::NullCheck || N.B == 1)
        continue;
      NodeId Ref = N.Kids[0];
      // The check is free when a following statement in the same block
      // dereferences the same value: the memory access itself traps.
      bool Dereferenced = false;
      for (size_t TJ = TI + 1; TJ < Blk.Trees.size() && !Dereferenced;
           ++TJ) {
        std::vector<NodeId> Stack{Blk.Trees[TJ]};
        while (!Stack.empty()) {
          const Node &K = CIL.node(Stack.back());
          Stack.pop_back();
          bool Deref = false;
          switch (K.Op) {
          case ILOp::LoadField:
          case ILOp::ArrayLen:
            Deref = K.Kids[0] == Ref;
            break;
          case ILOp::StoreField:
          case ILOp::LoadElem:
            Deref = K.Kids[0] == Ref;
            break;
          case ILOp::StoreElem:
            Deref = K.Kids[0] == Ref;
            break;
          default:
            break;
          }
          if (Deref) {
            Dereferenced = true;
            break;
          }
          for (NodeId Kid : K.Kids)
            Stack.push_back(Kid);
        }
      }
      if (!Dereferenced)
        continue;
      IL.node(Blk.Trees[TI]).B = 1; // codegen: folded into the access
      Ctx.noteChange(TransformationKind::ImplicitExceptionChecks);
      Changed = true;
    }
  }
  return Changed;
}
