//===- opt/GlobalOpt.cpp - CFG-level transformations ----------------------===//
//
// Global constant/copy propagation, dominator-scoped value numbering,
// liveness-based dead store elimination, partial redundancy elimination,
// unreachable-code elimination, block merging, branch folding, jump
// threading, tail duplication, and cold-block marking.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "il/Dominators.h"
#include "il/LoopInfo.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace jitml;

namespace {

/// Walks every node under \p Root once, calling \p Fn(NodeId).
template <typename Fn>
void forEachNodeInTree(const MethodIL &IL, NodeId Root, Fn Visit) {
  std::vector<NodeId> Stack{Root};
  while (!Stack.empty()) {
    NodeId Id = Stack.back();
    Stack.pop_back();
    Visit(Id);
    for (NodeId Kid : IL.node(Id).Kids)
      Stack.push_back(Kid);
  }
}

/// Per-local liveness over the CFG (handler edges included).
class Liveness {
public:
  explicit Liveness(const MethodIL &IL) : IL(IL) {
    uint32_t NB = IL.numBlocks();
    uint32_t NL = IL.numLocals();
    Use.assign(NB, std::vector<bool>(NL, false));
    Def.assign(NB, std::vector<bool>(NL, false));
    LiveOut.assign(NB, std::vector<bool>(NL, false));
    LiveIn.assign(NB, std::vector<bool>(NL, false));

    for (BlockId B = 0; B < NB; ++B) {
      const Block &Blk = IL.block(B);
      if (!Blk.Reachable)
        continue;
      for (NodeId Root : Blk.Trees) {
        // Loads anywhere in the tree happen before the root store.
        forEachNodeInTree(IL, Root, [&](NodeId Id) {
          const Node &N = IL.node(Id);
          if (N.Op == ILOp::LoadLocal && !Def[B][(uint32_t)N.A])
            Use[B][(uint32_t)N.A] = true;
        });
        const Node &RootN = IL.node(Root);
        if (RootN.Op == ILOp::StoreLocal)
          Def[B][(uint32_t)RootN.A] = true;
      }
    }
    // Backward fixpoint.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B = 0; B < NB; ++B) {
        const Block &Blk = IL.block(B);
        if (!Blk.Reachable)
          continue;
        std::vector<bool> Out(NL, false);
        auto Merge = [&](BlockId S) {
          for (uint32_t L = 0; L < NL; ++L)
            if (LiveIn[S][L])
              Out[L] = true;
        };
        for (BlockId S : Blk.Succs)
          Merge(S);
        for (const HandlerRef &H : Blk.Handlers)
          Merge(H.Handler);
        std::vector<bool> In = Out;
        for (uint32_t L = 0; L < NL; ++L) {
          if (Def[B][L] && !Use[B][L])
            In[L] = false;
          if (Use[B][L])
            In[L] = true;
        }
        if (Out != LiveOut[B] || In != LiveIn[B]) {
          LiveOut[B] = std::move(Out);
          LiveIn[B] = std::move(In);
          Changed = true;
        }
      }
    }
  }

  bool liveOut(BlockId B, uint32_t Slot) const { return LiveOut[B][Slot]; }
  bool liveIn(BlockId B, uint32_t Slot) const { return LiveIn[B][Slot]; }

private:
  const MethodIL &IL;
  std::vector<std::vector<bool>> Use, Def, LiveOut, LiveIn;
};

} // namespace

//===----------------------------------------------------------------------===//
// Global constant propagation over locals
//===----------------------------------------------------------------------===//

bool jitml::runGlobalCopyPropagation(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  uint32_t NL = IL.numLocals();
  struct Lattice {
    enum Kind : uint8_t { Top, ConstI, ConstF, Bottom } K = Top;
    int64_t I = 0;
    double F = 0;
    bool operator==(const Lattice &O) const {
      return K == O.K && I == O.I && F == O.F;
    }
  };
  auto Meet = [](const Lattice &A, const Lattice &B) {
    if (A.K == Lattice::Top)
      return B;
    if (B.K == Lattice::Top)
      return A;
    if (A == B)
      return A;
    return Lattice{Lattice::Bottom, 0, 0};
  };

  uint32_t NB = IL.numBlocks();
  std::vector<std::vector<Lattice>> EntryState(NB,
                                               std::vector<Lattice>(NL));
  // Parameters have unknown values.
  for (uint32_t L = 0; L < IL.methodInfo().numArgs(); ++L)
    EntryState[IL.entryBlock()][L] = {Lattice::Bottom, 0, 0};

  auto Transfer = [&](BlockId B, std::vector<Lattice> State) {
    for (NodeId Root : IL.block(B).Trees) {
      Ctx.charge(1);
      const Node &N = IL.node(Root);
      if (N.Op != ILOp::StoreLocal)
        continue;
      const Node &V = IL.node(N.Kids[0]);
      if (V.Op == ILOp::Const) {
        if (isFloatType(V.Type))
          State[(uint32_t)N.A] = {Lattice::ConstF, 0, V.ConstF};
        else
          State[(uint32_t)N.A] = {Lattice::ConstI, V.ConstI, 0};
      } else {
        State[(uint32_t)N.A] = {Lattice::Bottom, 0, 0};
      }
    }
    return State;
  };

  // Forward fixpoint in RPO. Handler blocks are conservatively Bottom: an
  // exception can arrive from any point in the protected region.
  std::vector<BlockId> Rpo = IL.reversePostOrder();
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    for (BlockId B : Rpo) {
      if (IL.block(B).IsHandler) {
        std::vector<Lattice> Bot(NL, {Lattice::Bottom, 0, 0});
        if (!(EntryState[B] == Bot)) {
          EntryState[B] = Bot;
          Iterate = true;
        }
        continue;
      }
      std::vector<Lattice> Out = Transfer(B, EntryState[B]);
      for (BlockId S : IL.block(B).Succs) {
        std::vector<Lattice> Merged = EntryState[S];
        for (uint32_t L = 0; L < NL; ++L)
          Merged[L] = Meet(Merged[L], Out[L]);
        if (!(Merged == EntryState[S])) {
          EntryState[S] = std::move(Merged);
          Iterate = true;
        }
      }
    }
  }

  // Rewrite loads whose reaching value is a constant.
  bool Changed = false;
  for (BlockId B : Rpo) {
    std::vector<Lattice> State = EntryState[B];
    std::vector<bool> Visited(IL.numNodes(), false);
    for (NodeId Root : IL.block(B).Trees) {
      forEachNodeInTree(IL, Root, [&](NodeId Id) {
        if (Visited[Id])
          return;
        Visited[Id] = true;
        Node &N = IL.node(Id);
        if (N.Op != ILOp::LoadLocal)
          return;
        const Lattice &V = State[(uint32_t)N.A];
        if (V.K == Lattice::ConstI && !isReferenceType(N.Type)) {
          Ctx.rewriteToConstI(Id, N.Type, V.I);
          Changed = true;
        } else if (V.K == Lattice::ConstF) {
          Ctx.rewriteToConstF(Id, N.Type, V.F);
          Changed = true;
        }
      });
      const Node &RootN = IL.node(Root);
      if (RootN.Op == ILOp::StoreLocal) {
        const Node &V = IL.node(RootN.Kids[0]);
        if (V.Op == ILOp::Const) {
          if (isFloatType(V.Type))
            State[(uint32_t)RootN.A] = {Lattice::ConstF, 0, V.ConstF};
          else
            State[(uint32_t)RootN.A] = {Lattice::ConstI, V.ConstI, 0};
        } else {
          State[(uint32_t)RootN.A] = {Lattice::Bottom, 0, 0};
        }
      }
    }
  }
  if (Changed)
    Ctx.noteChange(TransformationKind::GlobalCopyPropagation);
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dominator-scoped global value numbering
//===----------------------------------------------------------------------===//

bool jitml::runGlobalValueNumbering(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  DominatorTree DT(IL);

  // Def-once locals: their loads are stable everywhere after the def.
  std::vector<uint32_t> StoreCount(IL.numLocals(), 0);
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    for (NodeId Root : IL.block(B).Trees) {
      const Node &N = IL.node(Root);
      if (N.Op == ILOp::StoreLocal)
        ++StoreCount[(uint32_t)N.A];
    }
  }
  // Parameters are implicitly stored at entry.
  for (uint32_t L = 0; L < IL.methodInfo().numArgs(); ++L)
    ++StoreCount[L];

  // Is the whole tree stable (pure, memory-free, only def-once locals)?
  auto IsStable = [&](auto &&Self, NodeId Id) -> bool {
    const Node &N = IL.node(Id);
    if (N.Op == ILOp::LoadLocal)
      // Slots beyond the pass-entry count are temps this pass created,
      // and those are def-once by construction.
      return (uint32_t)N.A >= StoreCount.size() ||
             StoreCount[(uint32_t)N.A] <= 1;
    if (hasSideEffects(N.Op) || readsMemory(N.Op) ||
        N.Op == ILOp::LoadException)
      return false;
    for (NodeId Kid : N.Kids)
      if (!Self(Self, Kid))
        return false;
    return true;
  };

  // First occurrence of each stable expression shape, keyed structurally.
  struct Occurrence {
    BlockId Block;
    size_t TreeIndex;
    NodeId Node;
    int32_t TempSlot = -1; ///< materialized on the second occurrence
  };
  std::map<std::string, Occurrence> Table;

  auto KeyOf = [&](auto &&Self, NodeId Id) -> std::string {
    const Node &N = IL.node(Id);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%u:%u:%d:%d:%lld:%a(", (unsigned)N.Op,
                  (unsigned)N.Type, N.A, N.B, (long long)N.ConstI, N.ConstF);
    std::string Key = Buf;
    for (NodeId Kid : N.Kids) {
      Key += Self(Self, Kid);
      Key += ',';
    }
    Key += ')';
    return Key;
  };

  bool Changed = false;
  for (BlockId B : DT.rpo()) {
    Block &Blk = IL.block(B);
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      // Consider candidate nodes: direct children of the treetop (the
      // biggest subtrees — maximal reuse).
      for (unsigned KI = 0; KI < IL.node(Blk.Trees[TI]).numKids(); ++KI) {
        NodeId Cand = IL.node(Blk.Trees[TI]).Kids[KI];
        Ctx.charge(2);
        const Node &CN = IL.node(Cand);
        if (CN.Op == ILOp::Const || CN.Op == ILOp::LoadLocal)
          continue; // too cheap to be worth a temp
        if (!IsStable(IsStable, Cand))
          continue;
        std::string Key = KeyOf(KeyOf, Cand);
        auto It = Table.find(Key);
        if (It == Table.end()) {
          Table.emplace(Key, Occurrence{B, TI, Cand, -1});
          continue;
        }
        Occurrence &First = It->second;
        if (First.Node == Cand)
          continue; // same DAG node, nothing to do
        if (!DT.dominates(First.Block, B))
          continue;
        if (First.Block == B)
          continue; // local VN's job
        // Materialize a temp at the first occurrence if not done yet.
        if (First.TempSlot < 0) {
          uint32_t Slot = IL.addLocal(IL.node(First.Node).Type);
          NodeId Clone = Ctx.cloneTree(First.Node, nullptr);
          NodeId Store =
              IL.makeNode(ILOp::StoreLocal, DataType::Void, {Clone});
          IL.node(Store).A = (int32_t)Slot;
          Block &FB = IL.block(First.Block);
          FB.Trees.insert(FB.Trees.begin() + (std::ptrdiff_t)First.TreeIndex,
                          Store);
          if (First.Block == B && First.TreeIndex <= TI)
            ++TI; // keep our index valid after the insert
          Ctx.rewriteToLoadLocal(First.Node, IL.node(Clone).Type, Slot);
          First.TempSlot = (int32_t)Slot;
        }
        Ctx.rewriteToLoadLocal(Cand, IL.node(First.Node).Type,
                               (uint32_t)First.TempSlot);
        Ctx.noteChange(TransformationKind::GlobalValueNumbering);
        Changed = true;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Liveness-based (global) dead store elimination
//===----------------------------------------------------------------------===//

bool jitml::runGlobalDeadStoreElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  Liveness LV(IL);
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    bool HasHandlers = !Blk.Handlers.empty();
    // Walk backward tracking locals still needed after each point.
    std::vector<bool> Needed(IL.numLocals(), false);
    for (uint32_t L = 0; L < IL.numLocals(); ++L)
      Needed[L] = LV.liveOut(B, L);
    for (size_t TI = Blk.Trees.size(); TI-- > 0;) {
      Node &N = IL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op == ILOp::StoreLocal && !Needed[(uint32_t)N.A] &&
          !HasHandlers) {
        // Dead everywhere below: keep the value's evaluation as an anchor
        // (dead-tree elimination finishes the job when it is pure).
        N.Op = ILOp::ExprStmt;
        N.A = 0;
        Ctx.noteChange(TransformationKind::GlobalDeadStoreElimination);
        Changed = true;
        continue;
      }
      if (N.Op == ILOp::StoreLocal)
        Needed[(uint32_t)N.A] = false;
      forEachNodeInTree(IL, Blk.Trees[TI], [&](NodeId Id) {
        const Node &K = IL.node(Id);
        if (K.Op == ILOp::LoadLocal)
          Needed[(uint32_t)K.A] = true;
      });
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Partial redundancy elimination: hoist expressions computed identically in
// both arms of a branch into the branch block.
//===----------------------------------------------------------------------===//

bool jitml::runPartialRedundancyElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    Block &Blk = IL.block(B);
    if (!Blk.Reachable || Blk.Succs.size() != 2)
      continue;
    BlockId S0 = Blk.Succs[0], S1 = Blk.Succs[1];
    if (S0 == S1)
      continue;
    Block &B0 = IL.block(S0);
    Block &B1 = IL.block(S1);
    if (B0.Preds.size() != 1 || B1.Preds.size() != 1 || B0.IsHandler ||
        B1.IsHandler)
      continue;

    // Collect hoistable candidates from S0: pure, memory-free direct kids
    // of treetops. (Memory-free keeps the hoist trivially safe: evaluating
    // earlier cannot observe different state.)
    struct Cand {
      NodeId Id;
      std::string Key;
    };
    auto KeyOf = [&](auto &&Self, NodeId Id) -> std::string {
      const Node &N = IL.node(Id);
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "%u:%u:%d:%d:%lld:%a(", (unsigned)N.Op,
                    (unsigned)N.Type, N.A, N.B, (long long)N.ConstI,
                    N.ConstF);
      std::string Key = Buf;
      for (NodeId Kid : N.Kids) {
        Key += Self(Self, Kid);
        Key += ',';
      }
      Key += ')';
      return Key;
    };
    // Only expressions whose local inputs are not redefined before their
    // use in the successor may be hoisted; requiring the candidate to sit
    // in the successor's *first* treetop guarantees that.
    auto Collect = [&](Block &SB) {
      std::vector<Cand> Out;
      if (SB.Trees.empty())
        return Out;
      const Node &Root = IL.node(SB.Trees.front());
      for (NodeId Kid : Root.Kids) {
        Ctx.charge(2);
        const Node &K = IL.node(Kid);
        if (K.Op == ILOp::Const || K.Op == ILOp::LoadLocal)
          continue;
        if (!Ctx.isPureAndMemoryFree(Kid))
          continue;
        Out.push_back({Kid, KeyOf(KeyOf, Kid)});
      }
      return Out;
    };
    std::vector<Cand> C0 = Collect(B0);
    std::vector<Cand> C1 = Collect(B1);
    for (const Cand &A : C0) {
      for (const Cand &C : C1) {
        if (A.Key != C.Key || A.Id == C.Id)
          continue;
        uint32_t Slot = IL.addLocal(IL.node(A.Id).Type);
        NodeId Clone = Ctx.cloneTree(A.Id, nullptr);
        NodeId Store = IL.makeNode(ILOp::StoreLocal, DataType::Void, {Clone});
        IL.node(Store).A = (int32_t)Slot;
        // Insert before the branch terminator.
        Blk.Trees.insert(Blk.Trees.end() - 1, Store);
        DataType T = IL.node(Clone).Type;
        Ctx.rewriteToLoadLocal(A.Id, T, Slot);
        Ctx.rewriteToLoadLocal(C.Id, T, Slot);
        Ctx.noteChange(TransformationKind::PartialRedundancyElimination);
        Changed = true;
        break;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Unreachable-code elimination
//===----------------------------------------------------------------------===//

bool jitml::runUnreachableCodeElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  IL.computeReachability();
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    Block &Blk = IL.block(B);
    Ctx.charge(1);
    if (Blk.Reachable || Blk.Succs.empty())
      continue;
    // Scrub edges out of dead blocks so predecessor counts stay honest.
    for (BlockId S : Blk.Succs) {
      auto &P = IL.block(S).Preds;
      P.erase(std::remove(P.begin(), P.end(), B), P.end());
    }
    Blk.Succs.clear();
    Blk.Trees.clear();
    Ctx.noteChange(TransformationKind::UnreachableCodeElimination);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Branch folding: branches with constant condition become gotos.
//===----------------------------------------------------------------------===//

bool jitml::runBranchFolding(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    Block &Blk = IL.block(B);
    if (!Blk.Reachable || Blk.Trees.empty())
      continue;
    Node &Term = IL.node(Blk.Trees.back());
    Ctx.charge(1);
    if (Term.Op != ILOp::Branch)
      continue;
    BlockId Taken = Blk.Succs[0], Fall = Blk.Succs[1];
    bool Fold = false;
    bool CondTrue = false;
    const Node &L = IL.node(Term.Kids[0]);
    const Node &R = IL.node(Term.Kids[1]);
    if (L.Op == ILOp::Const && R.Op == ILOp::Const) {
      int64_t C3;
      if (isFloatType(L.Type))
        C3 = L.ConstF < R.ConstF ? -1 : (L.ConstF > R.ConstF ? 1 : 0);
      else
        C3 = L.ConstI < R.ConstI ? -1 : (L.ConstI > R.ConstI ? 1 : 0);
      switch ((BcCond)Term.A) {
      case BcCond::Eq:
        CondTrue = C3 == 0;
        break;
      case BcCond::Ne:
        CondTrue = C3 != 0;
        break;
      case BcCond::Lt:
        CondTrue = C3 < 0;
        break;
      case BcCond::Ge:
        CondTrue = C3 >= 0;
        break;
      case BcCond::Gt:
        CondTrue = C3 > 0;
        break;
      case BcCond::Le:
        CondTrue = C3 <= 0;
        break;
      }
      Fold = true;
    } else if (Taken == Fall) {
      CondTrue = true; // either way, same place
      Fold = Ctx.isPureAndMemoryFree(Term.Kids[0]) &&
             Ctx.isPureAndMemoryFree(Term.Kids[1]);
    }
    if (!Fold)
      continue;
    BlockId Kept = CondTrue ? Taken : Fall;
    BlockId Dropped = CondTrue ? Fall : Taken;
    Term.Op = ILOp::Goto;
    Term.Kids.clear();
    Term.A = 0;
    Blk.Succs = {Kept};
    if (Dropped != Kept) {
      auto &P = IL.block(Dropped).Preds;
      P.erase(std::find(P.begin(), P.end(), B));
    } else {
      // Two edges to the same block collapse to one: drop one pred entry.
      auto &P = IL.block(Kept).Preds;
      P.erase(std::find(P.begin(), P.end(), B));
    }
    Ctx.noteChange(TransformationKind::BranchFolding);
    Changed = true;
  }
  if (Changed)
    IL.computeReachability();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Jump threading: skip over empty goto-only blocks.
//===----------------------------------------------------------------------===//

bool jitml::runJumpThreading(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  auto IsTrivialGoto = [&](BlockId B) {
    const Block &Blk = IL.block(B);
    return Blk.Reachable && !Blk.IsHandler && Blk.Trees.size() == 1 &&
           IL.node(Blk.Trees[0]).Op == ILOp::Goto;
  };
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    for (BlockId S : std::vector<BlockId>(Blk.Succs)) {
      Ctx.charge(1);
      if (!IsTrivialGoto(S))
        continue;
      BlockId Target = IL.block(S).Succs[0];
      if (Target == S || Target == B)
        continue;
      IL.replaceEdge(B, S, Target);
      Ctx.noteChange(TransformationKind::JumpThreading);
      Changed = true;
    }
  }
  if (Changed)
    IL.computeReachability();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Block merging: collapse straight-line goto chains.
//===----------------------------------------------------------------------===//

bool jitml::runBlockMerging(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  bool Changed = false;
  bool Merged = true;
  while (Merged) {
    Merged = false;
    for (BlockId B = 0; B < IL.numBlocks(); ++B) {
      Block &Blk = IL.block(B);
      if (!Blk.Reachable || Blk.Trees.empty())
        continue;
      Ctx.charge(1);
      if (IL.node(Blk.Trees.back()).Op != ILOp::Goto ||
          Blk.Succs.size() != 1)
        continue;
      BlockId S = Blk.Succs[0];
      if (S == B || S == IL.entryBlock())
        continue;
      Block &Next = IL.block(S);
      if (Next.Preds.size() != 1 || Next.IsHandler)
        continue;
      // Handler scopes must match or the merged code would be covered by
      // the wrong try regions.
      auto SameHandlers = [&] {
        if (Blk.Handlers.size() != Next.Handlers.size())
          return false;
        for (size_t I = 0; I < Blk.Handlers.size(); ++I)
          if (Blk.Handlers[I].Handler != Next.Handlers[I].Handler ||
              Blk.Handlers[I].ClassIndex != Next.Handlers[I].ClassIndex)
            return false;
        return true;
      };
      if (!SameHandlers())
        continue;
      // Splice: drop our goto, take S's trees and successors.
      Blk.Trees.pop_back();
      for (NodeId T : Next.Trees)
        Blk.Trees.push_back(T);
      Blk.Succs = Next.Succs;
      for (BlockId NS : Next.Succs) {
        auto &P = IL.block(NS).Preds;
        std::replace(P.begin(), P.end(), S, B);
      }
      Next.Trees.clear();
      Next.Succs.clear();
      Next.Preds.clear();
      Next.Reachable = false;
      Ctx.noteChange(TransformationKind::BlockMerging);
      Changed = Merged = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Tail duplication: copy tiny join blocks into their goto predecessors.
//===----------------------------------------------------------------------===//

bool jitml::runTailDuplication(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  bool Changed = false;
  for (BlockId S = 0; S < IL.numBlocks(); ++S) {
    Block &Join = IL.block(S);
    if (!Join.Reachable || Join.IsHandler || Join.Preds.size() < 2)
      continue;
    if (Join.Trees.size() > 4)
      continue;
    const Node &Term = IL.node(Join.Trees.back());
    if (Term.Op != ILOp::Return && Term.Op != ILOp::Goto)
      continue;
    // Duplicate into predecessors that reach us by an unconditional goto
    // and share our handler scope.
    auto SameHandlers = [&](const Block &P) {
      if (P.Handlers.size() != Join.Handlers.size())
        return false;
      for (size_t I = 0; I < P.Handlers.size(); ++I)
        if (P.Handlers[I].Handler != Join.Handlers[I].Handler)
          return false;
      return true;
    };
    std::vector<BlockId> Preds = Join.Preds;
    for (BlockId P : Preds) {
      if (IL.block(S).Preds.size() <= 1)
        break; // keep one inline path
      Block &Pred = IL.block(P);
      if (P == S || !Pred.Reachable || Pred.Trees.empty())
        continue;
      if (IL.node(Pred.Trees.back()).Op != ILOp::Goto ||
          Pred.Succs.size() != 1 || Pred.Succs[0] != S)
        continue;
      if (!SameHandlers(Pred))
        continue;
      Ctx.charge((double)Join.Trees.size() * 3);
      // Clone the join's trees in place of the predecessor's goto.
      Pred.Trees.pop_back();
      for (NodeId T : IL.block(S).Trees)
        Pred.Trees.push_back(Ctx.cloneTree(T, nullptr));
      Pred.Succs.clear();
      {
        auto &JP = IL.block(S).Preds;
        JP.erase(std::find(JP.begin(), JP.end(), P));
      }
      for (BlockId NS : IL.block(S).Succs)
        IL.addEdge(P, NS);
      Ctx.noteChange(TransformationKind::TailDuplication);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Cold-block marking for outlined layout
//===----------------------------------------------------------------------===//

bool jitml::runColdBlockOutlining(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  LoopInfo::annotateFrequencies(IL);
  bool Changed = false;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    Block &Blk = IL.block(B);
    Ctx.charge(1);
    if (!Blk.Reachable)
      continue;
    bool Cold = Blk.Frequency <= 0.05 || Blk.IsHandler;
    if (Cold != Blk.Cold) {
      Blk.Cold = Cold;
      Ctx.noteChange(TransformationKind::ColdBlockOutlining);
      Changed = true;
    }
  }
  return Changed;
}
