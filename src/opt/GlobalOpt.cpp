//===- opt/GlobalOpt.cpp - CFG-level transformations ----------------------===//
//
// Global constant/copy propagation, dominator-scoped value numbering,
// liveness-based dead store elimination, partial redundancy elimination,
// unreachable-code elimination, block merging, branch folding, jump
// threading, tail duplication, and cold-block marking.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "il/Dominators.h"
#include "il/LoopInfo.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace jitml;

namespace {

/// Walks every node under \p Root once, calling \p Fn(NodeId).
template <typename Fn>
void forEachNodeInTree(const MethodIL &IL, NodeId Root, Fn Visit) {
  std::vector<NodeId> Stack{Root};
  while (!Stack.empty()) {
    NodeId Id = Stack.back();
    Stack.pop_back();
    Visit(Id);
    for (NodeId Kid : IL.node(Id).Kids)
      Stack.push_back(Kid);
  }
}

/// Per-local liveness over the CFG (handler edges included). Sets are flat
/// 64-bit word rows (one row of W words per block): the backward fixpoint
/// runs on every GDSE invocation in the compile hot loop, and word-wise
/// or/and-not beats the old vector<vector<bool>> by an order of magnitude.
class Liveness {
public:
  explicit Liveness(const MethodIL &IL) : IL(IL) {
    uint32_t NB = IL.numBlocks();
    uint32_t NL = IL.numLocals();
    W = (NL + 63) / 64;
    Use.assign((size_t)NB * W, 0);
    Def.assign((size_t)NB * W, 0);
    LiveOut.assign((size_t)NB * W, 0);
    LiveIn.assign((size_t)NB * W, 0);

    for (BlockId B = 0; B < NB; ++B) {
      const Block &Blk = IL.block(B);
      if (!Blk.Reachable)
        continue;
      uint64_t *UseB = &Use[(size_t)B * W], *DefB = &Def[(size_t)B * W];
      for (NodeId Root : Blk.Trees) {
        // Loads anywhere in the tree happen before the root store.
        forEachNodeInTree(IL, Root, [&](NodeId Id) {
          const Node &N = IL.node(Id);
          if (N.Op == ILOp::LoadLocal && !bit(DefB, (uint32_t)N.A))
            setBit(UseB, (uint32_t)N.A);
        });
        const Node &RootN = IL.node(Root);
        if (RootN.Op == ILOp::StoreLocal)
          setBit(DefB, (uint32_t)RootN.A);
      }
    }
    // Backward fixpoint. In = (Out & ~(Def & ~Use)) | Use.
    std::vector<uint64_t> Out(W);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B = 0; B < NB; ++B) {
        const Block &Blk = IL.block(B);
        if (!Blk.Reachable)
          continue;
        std::fill(Out.begin(), Out.end(), 0);
        auto Merge = [&](BlockId S) {
          const uint64_t *InS = &LiveIn[(size_t)S * W];
          for (uint32_t I = 0; I < W; ++I)
            Out[I] |= InS[I];
        };
        for (BlockId S : Blk.Succs)
          Merge(S);
        for (const HandlerRef &H : Blk.Handlers)
          Merge(H.Handler);
        const uint64_t *UseB = &Use[(size_t)B * W];
        const uint64_t *DefB = &Def[(size_t)B * W];
        uint64_t *OutB = &LiveOut[(size_t)B * W];
        uint64_t *InB = &LiveIn[(size_t)B * W];
        for (uint32_t I = 0; I < W; ++I) {
          uint64_t In = (Out[I] & ~(DefB[I] & ~UseB[I])) | UseB[I];
          if (Out[I] != OutB[I] || In != InB[I]) {
            OutB[I] = Out[I];
            InB[I] = In;
            Changed = true;
          }
        }
      }
    }
  }

  bool liveOut(BlockId B, uint32_t Slot) const {
    return bit(&LiveOut[(size_t)B * W], Slot);
  }
  bool liveIn(BlockId B, uint32_t Slot) const {
    return bit(&LiveIn[(size_t)B * W], Slot);
  }

private:
  static bool bit(const uint64_t *Row, uint32_t I) {
    return (Row[I / 64] >> (I % 64)) & 1;
  }
  static void setBit(uint64_t *Row, uint32_t I) {
    Row[I / 64] |= uint64_t(1) << (I % 64);
  }

  const MethodIL &IL;
  uint32_t W = 0; ///< words per block row
  std::vector<uint64_t> Use, Def, LiveOut, LiveIn;
};

} // namespace

//===----------------------------------------------------------------------===//
// Global constant propagation over locals
//===----------------------------------------------------------------------===//

bool jitml::runGlobalCopyPropagation(PassContext &Ctx) {
  const MethodIL &IL = Ctx.cil();
  uint32_t NL = IL.numLocals();
  struct Lattice {
    enum Kind : uint8_t { Top, ConstI, ConstF, Bottom } K = Top;
    int64_t I = 0;
    double F = 0;
    bool operator==(const Lattice &O) const {
      return K == O.K && I == O.I && F == O.F;
    }
  };
  auto Meet = [](const Lattice &A, const Lattice &B) {
    if (A.K == Lattice::Top)
      return B;
    if (B.K == Lattice::Top)
      return A;
    if (A == B)
      return A;
    return Lattice{Lattice::Bottom, 0, 0};
  };

  uint32_t NB = IL.numBlocks();
  // One flat row of NL lattice cells per block (a vector-of-vectors here
  // meant one allocation per block on every invocation of this pass).
  std::vector<Lattice> EntryState((size_t)NB * NL);
  auto stateRow = [&](BlockId B) { return &EntryState[(size_t)B * NL]; };
  // Parameters have unknown values.
  for (uint32_t L = 0; L < IL.methodInfo().numArgs(); ++L)
    stateRow(IL.entryBlock())[L] = {Lattice::Bottom, 0, 0};

  // Applies a block's stores to \p State in place (same transfer function
  // the old copy-in/copy-out version had, minus the per-call allocation).
  auto Transfer = [&](BlockId B, std::vector<Lattice> &State) {
    for (NodeId Root : IL.block(B).Trees) {
      Ctx.charge(1);
      const Node &N = IL.node(Root);
      if (N.Op != ILOp::StoreLocal)
        continue;
      const Node &V = IL.node(N.Kids[0]);
      if (V.Op == ILOp::Const) {
        if (isFloatType(V.Type))
          State[(uint32_t)N.A] = {Lattice::ConstF, 0, V.ConstF};
        else
          State[(uint32_t)N.A] = {Lattice::ConstI, V.ConstI, 0};
      } else {
        State[(uint32_t)N.A] = {Lattice::Bottom, 0, 0};
      }
    }
  };

  // Forward fixpoint in RPO. Handler blocks are conservatively Bottom: an
  // exception can arrive from any point in the protected region. Scratch
  // vectors live outside the loop — this runs every few plan entries and
  // the old per-block copies allocated in the hottest compile path.
  std::vector<BlockId> Rpo = IL.reversePostOrder();
  const Lattice BotCell{Lattice::Bottom, 0, 0};
  std::vector<Lattice> Out(NL);
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    for (BlockId B : Rpo) {
      if (IL.block(B).IsHandler) {
        Lattice *Row = stateRow(B);
        for (uint32_t L = 0; L < NL; ++L)
          if (!(Row[L] == BotCell)) {
            Row[L] = BotCell;
            Iterate = true;
          }
        continue;
      }
      const Lattice *Row = stateRow(B);
      Out.assign(Row, Row + NL);
      Transfer(B, Out);
      for (BlockId S : IL.block(B).Succs) {
        Lattice *Target = stateRow(S);
        for (uint32_t L = 0; L < NL; ++L) {
          Lattice M = Meet(Target[L], Out[L]);
          if (!(M == Target[L])) {
            Target[L] = M;
            Iterate = true;
          }
        }
      }
    }
  }

  // Rewrite loads whose reaching value is a constant. Visited is a
  // generation-stamped map reused across blocks (no per-block allocation).
  bool Changed = false;
  std::vector<uint32_t> Visited(IL.numNodes(), 0);
  uint32_t Gen = 0;
  std::vector<Lattice> State;
  for (BlockId B : Rpo) {
    State.assign(stateRow(B), stateRow(B) + NL);
    ++Gen;
    for (NodeId Root : IL.block(B).Trees) {
      forEachNodeInTree(IL, Root, [&](NodeId Id) {
        if (Visited[Id] == Gen)
          return;
        Visited[Id] = Gen;
        const Node &N = IL.node(Id);
        if (N.Op != ILOp::LoadLocal)
          return;
        const Lattice &V = State[(uint32_t)N.A];
        if (V.K == Lattice::ConstI && !isReferenceType(N.Type)) {
          Ctx.rewriteToConstI(Id, N.Type, V.I);
          Changed = true;
        } else if (V.K == Lattice::ConstF) {
          Ctx.rewriteToConstF(Id, N.Type, V.F);
          Changed = true;
        }
      });
      const Node &RootN = IL.node(Root);
      if (RootN.Op == ILOp::StoreLocal) {
        const Node &V = IL.node(RootN.Kids[0]);
        if (V.Op == ILOp::Const) {
          if (isFloatType(V.Type))
            State[(uint32_t)RootN.A] = {Lattice::ConstF, 0, V.ConstF};
          else
            State[(uint32_t)RootN.A] = {Lattice::ConstI, V.ConstI, 0};
        } else {
          State[(uint32_t)RootN.A] = {Lattice::Bottom, 0, 0};
        }
      }
    }
  }
  if (Changed)
    Ctx.noteChange(TransformationKind::GlobalCopyPropagation);
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dominator-scoped global value numbering
//===----------------------------------------------------------------------===//

bool jitml::runGlobalValueNumbering(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  // Cached across passes; this reference stays valid for the whole run
  // even after we mutate (the cache only swaps on the *next* request).
  const DominatorTree &DT = Ctx.dominators();

  // Def-once locals: their loads are stable everywhere after the def.
  std::vector<uint32_t> StoreCount(CIL.numLocals(), 0);
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    if (!CIL.block(B).Reachable)
      continue;
    for (NodeId Root : CIL.block(B).Trees) {
      const Node &N = CIL.node(Root);
      if (N.Op == ILOp::StoreLocal)
        ++StoreCount[(uint32_t)N.A];
    }
  }
  // Parameters are implicitly stored at entry.
  for (uint32_t L = 0; L < CIL.methodInfo().numArgs(); ++L)
    ++StoreCount[L];

  // Is the whole tree stable (pure, memory-free, only def-once locals)?
  auto IsStable = [&](auto &&Self, NodeId Id) -> bool {
    const Node &N = CIL.node(Id);
    if (N.Op == ILOp::LoadLocal)
      // Slots beyond the pass-entry count are temps this pass created,
      // and those are def-once by construction.
      return (uint32_t)N.A >= StoreCount.size() ||
             StoreCount[(uint32_t)N.A] <= 1;
    if (hasSideEffects(N.Op) || readsMemory(N.Op) ||
        N.Op == ILOp::LoadException)
      return false;
    for (NodeId Kid : N.Kids)
      if (!Self(Self, Kid))
        return false;
    return true;
  };

  // First occurrence of each stable expression shape, keyed structurally.
  struct Occurrence {
    BlockId Block;
    size_t TreeIndex;
    NodeId Node;
    int32_t TempSlot = -1; ///< materialized on the second occurrence
  };
  std::map<std::string, Occurrence> Table;

  auto KeyOf = [&](auto &&Self, NodeId Id) -> std::string {
    const Node &N = CIL.node(Id);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%u:%u:%d:%d:%lld:%a(", (unsigned)N.Op,
                  (unsigned)N.Type, N.A, N.B, (long long)N.ConstI, N.ConstF);
    std::string Key = Buf;
    for (NodeId Kid : N.Kids) {
      Key += Self(Self, Kid);
      Key += ',';
    }
    Key += ')';
    return Key;
  };

  bool Changed = false;
  for (BlockId B : DT.rpo()) {
    const Block &Blk = CIL.block(B);
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      // Consider candidate nodes: direct children of the treetop (the
      // biggest subtrees — maximal reuse).
      for (unsigned KI = 0; KI < CIL.node(Blk.Trees[TI]).numKids(); ++KI) {
        NodeId Cand = CIL.node(Blk.Trees[TI]).Kids[KI];
        Ctx.charge(2);
        const Node &CN = CIL.node(Cand);
        if (CN.Op == ILOp::Const || CN.Op == ILOp::LoadLocal)
          continue; // too cheap to be worth a temp
        if (!IsStable(IsStable, Cand))
          continue;
        std::string Key = KeyOf(KeyOf, Cand);
        auto It = Table.find(Key);
        if (It == Table.end()) {
          Table.emplace(Key, Occurrence{B, TI, Cand, -1});
          continue;
        }
        Occurrence &First = It->second;
        if (First.Node == Cand)
          continue; // same DAG node, nothing to do
        if (!DT.dominates(First.Block, B))
          continue;
        if (First.Block == B)
          continue; // local VN's job
        // Materialize a temp at the first occurrence if not done yet.
        if (First.TempSlot < 0) {
          uint32_t Slot = IL.addLocal(CIL.node(First.Node).Type);
          NodeId Clone = Ctx.cloneTree(First.Node, nullptr);
          NodeId Store =
              IL.makeNode(ILOp::StoreLocal, DataType::Void, {Clone});
          IL.node(Store).A = (int32_t)Slot;
          Block &FB = IL.block(First.Block);
          FB.Trees.insert(FB.Trees.begin() + (std::ptrdiff_t)First.TreeIndex,
                          Store);
          if (First.Block == B && First.TreeIndex <= TI)
            ++TI; // keep our index valid after the insert
          Ctx.rewriteToLoadLocal(First.Node, CIL.node(Clone).Type, Slot);
          First.TempSlot = (int32_t)Slot;
        }
        Ctx.rewriteToLoadLocal(Cand, CIL.node(First.Node).Type,
                               (uint32_t)First.TempSlot);
        Ctx.noteChange(TransformationKind::GlobalValueNumbering);
        Changed = true;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Liveness-based (global) dead store elimination
//===----------------------------------------------------------------------===//

bool jitml::runGlobalDeadStoreElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  Liveness LV(CIL);
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    bool HasHandlers = !Blk.Handlers.empty();
    // Walk backward tracking locals still needed after each point.
    std::vector<bool> Needed(CIL.numLocals(), false);
    for (uint32_t L = 0; L < CIL.numLocals(); ++L)
      Needed[L] = LV.liveOut(B, L);
    for (size_t TI = Blk.Trees.size(); TI-- > 0;) {
      const Node &N = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (N.Op == ILOp::StoreLocal && !Needed[(uint32_t)N.A] &&
          !HasHandlers) {
        // Dead everywhere below: keep the value's evaluation as an anchor
        // (dead-tree elimination finishes the job when it is pure).
        Node &M = IL.node(Blk.Trees[TI]);
        M.Op = ILOp::ExprStmt;
        M.A = 0;
        Ctx.noteChange(TransformationKind::GlobalDeadStoreElimination);
        Changed = true;
        continue;
      }
      if (N.Op == ILOp::StoreLocal)
        Needed[(uint32_t)N.A] = false;
      forEachNodeInTree(CIL, Blk.Trees[TI], [&](NodeId Id) {
        const Node &K = CIL.node(Id);
        if (K.Op == ILOp::LoadLocal)
          Needed[(uint32_t)K.A] = true;
      });
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Partial redundancy elimination: hoist expressions computed identically in
// both arms of a branch into the branch block.
//===----------------------------------------------------------------------===//

bool jitml::runPartialRedundancyElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable || Blk.Succs.size() != 2)
      continue;
    BlockId S0 = Blk.Succs[0], S1 = Blk.Succs[1];
    if (S0 == S1)
      continue;
    const Block &B0 = CIL.block(S0);
    const Block &B1 = CIL.block(S1);
    if (B0.Preds.size() != 1 || B1.Preds.size() != 1 || B0.IsHandler ||
        B1.IsHandler)
      continue;

    // Collect hoistable candidates from S0: pure, memory-free direct kids
    // of treetops. (Memory-free keeps the hoist trivially safe: evaluating
    // earlier cannot observe different state.)
    struct Cand {
      NodeId Id;
      std::string Key;
    };
    auto KeyOf = [&](auto &&Self, NodeId Id) -> std::string {
      const Node &N = CIL.node(Id);
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "%u:%u:%d:%d:%lld:%a(", (unsigned)N.Op,
                    (unsigned)N.Type, N.A, N.B, (long long)N.ConstI,
                    N.ConstF);
      std::string Key = Buf;
      for (NodeId Kid : N.Kids) {
        Key += Self(Self, Kid);
        Key += ',';
      }
      Key += ')';
      return Key;
    };
    // Only expressions whose local inputs are not redefined before their
    // use in the successor may be hoisted; requiring the candidate to sit
    // in the successor's *first* treetop guarantees that.
    auto Collect = [&](const Block &SB) {
      std::vector<Cand> Out;
      if (SB.Trees.empty())
        return Out;
      const Node &Root = CIL.node(SB.Trees.front());
      for (NodeId Kid : Root.Kids) {
        Ctx.charge(2);
        const Node &K = CIL.node(Kid);
        if (K.Op == ILOp::Const || K.Op == ILOp::LoadLocal)
          continue;
        if (!Ctx.isPureAndMemoryFree(Kid))
          continue;
        Out.push_back({Kid, KeyOf(KeyOf, Kid)});
      }
      return Out;
    };
    std::vector<Cand> C0 = Collect(B0);
    std::vector<Cand> C1 = Collect(B1);
    for (const Cand &A : C0) {
      for (const Cand &C : C1) {
        if (A.Key != C.Key || A.Id == C.Id)
          continue;
        uint32_t Slot = IL.addLocal(CIL.node(A.Id).Type);
        NodeId Clone = Ctx.cloneTree(A.Id, nullptr);
        NodeId Store = IL.makeNode(ILOp::StoreLocal, DataType::Void, {Clone});
        IL.node(Store).A = (int32_t)Slot;
        // Insert before the branch terminator.
        Block &MBlk = IL.block(B);
        MBlk.Trees.insert(MBlk.Trees.end() - 1, Store);
        DataType T = CIL.node(Clone).Type;
        Ctx.rewriteToLoadLocal(A.Id, T, Slot);
        Ctx.rewriteToLoadLocal(C.Id, T, Slot);
        Ctx.noteChange(TransformationKind::PartialRedundancyElimination);
        Changed = true;
        break;
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Unreachable-code elimination
//===----------------------------------------------------------------------===//

bool jitml::runUnreachableCodeElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  IL.computeReachability();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    Ctx.charge(1);
    if (Blk.Reachable || Blk.Succs.empty())
      continue;
    // Scrub edges out of dead blocks so predecessor counts stay honest.
    for (BlockId S : std::vector<BlockId>(Blk.Succs)) {
      auto &P = IL.block(S).Preds;
      P.erase(std::remove(P.begin(), P.end(), B), P.end());
    }
    Block &MBlk = IL.block(B);
    MBlk.Succs.clear();
    MBlk.Trees.clear();
    Ctx.noteChange(TransformationKind::UnreachableCodeElimination);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Branch folding: branches with constant condition become gotos.
//===----------------------------------------------------------------------===//

bool jitml::runBranchFolding(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable || Blk.Trees.empty())
      continue;
    const Node &Term = CIL.node(Blk.Trees.back());
    Ctx.charge(1);
    if (Term.Op != ILOp::Branch)
      continue;
    BlockId Taken = Blk.Succs[0], Fall = Blk.Succs[1];
    bool Fold = false;
    bool CondTrue = false;
    const Node &L = CIL.node(Term.Kids[0]);
    const Node &R = CIL.node(Term.Kids[1]);
    if (L.Op == ILOp::Const && R.Op == ILOp::Const) {
      int64_t C3;
      if (isFloatType(L.Type))
        C3 = L.ConstF < R.ConstF ? -1 : (L.ConstF > R.ConstF ? 1 : 0);
      else
        C3 = L.ConstI < R.ConstI ? -1 : (L.ConstI > R.ConstI ? 1 : 0);
      switch ((BcCond)Term.A) {
      case BcCond::Eq:
        CondTrue = C3 == 0;
        break;
      case BcCond::Ne:
        CondTrue = C3 != 0;
        break;
      case BcCond::Lt:
        CondTrue = C3 < 0;
        break;
      case BcCond::Ge:
        CondTrue = C3 >= 0;
        break;
      case BcCond::Gt:
        CondTrue = C3 > 0;
        break;
      case BcCond::Le:
        CondTrue = C3 <= 0;
        break;
      }
      Fold = true;
    } else if (Taken == Fall) {
      CondTrue = true; // either way, same place
      Fold = Ctx.isPureAndMemoryFree(Term.Kids[0]) &&
             Ctx.isPureAndMemoryFree(Term.Kids[1]);
    }
    if (!Fold)
      continue;
    BlockId Kept = CondTrue ? Taken : Fall;
    BlockId Dropped = CondTrue ? Fall : Taken;
    Node &MTerm = IL.node(Blk.Trees.back());
    MTerm.Op = ILOp::Goto;
    MTerm.Kids.clear();
    MTerm.A = 0;
    IL.block(B).Succs = {Kept};
    if (Dropped != Kept) {
      auto &P = IL.block(Dropped).Preds;
      P.erase(std::find(P.begin(), P.end(), B));
    } else {
      // Two edges to the same block collapse to one: drop one pred entry.
      auto &P = IL.block(Kept).Preds;
      P.erase(std::find(P.begin(), P.end(), B));
    }
    Ctx.noteChange(TransformationKind::BranchFolding);
    Changed = true;
  }
  if (Changed)
    IL.computeReachability();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Jump threading: skip over empty goto-only blocks.
//===----------------------------------------------------------------------===//

bool jitml::runJumpThreading(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  auto IsTrivialGoto = [&](BlockId B) {
    const Block &Blk = CIL.block(B);
    return Blk.Reachable && !Blk.IsHandler && Blk.Trees.size() == 1 &&
           CIL.node(Blk.Trees[0]).Op == ILOp::Goto;
  };
  bool Changed = false;
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (BlockId S : std::vector<BlockId>(Blk.Succs)) {
      Ctx.charge(1);
      if (!IsTrivialGoto(S))
        continue;
      BlockId Target = CIL.block(S).Succs[0];
      if (Target == S || Target == B)
        continue;
      IL.replaceEdge(B, S, Target);
      Ctx.noteChange(TransformationKind::JumpThreading);
      Changed = true;
    }
  }
  if (Changed)
    IL.computeReachability();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Block merging: collapse straight-line goto chains.
//===----------------------------------------------------------------------===//

bool jitml::runBlockMerging(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  bool Merged = true;
  while (Merged) {
    Merged = false;
    for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
      const Block &Blk = CIL.block(B);
      if (!Blk.Reachable || Blk.Trees.empty())
        continue;
      Ctx.charge(1);
      if (CIL.node(Blk.Trees.back()).Op != ILOp::Goto ||
          Blk.Succs.size() != 1)
        continue;
      BlockId S = Blk.Succs[0];
      if (S == B || S == CIL.entryBlock())
        continue;
      const Block &Next = CIL.block(S);
      if (Next.Preds.size() != 1 || Next.IsHandler)
        continue;
      // Handler scopes must match or the merged code would be covered by
      // the wrong try regions.
      auto SameHandlers = [&] {
        if (Blk.Handlers.size() != Next.Handlers.size())
          return false;
        for (size_t I = 0; I < Blk.Handlers.size(); ++I)
          if (Blk.Handlers[I].Handler != Next.Handlers[I].Handler ||
              Blk.Handlers[I].ClassIndex != Next.Handlers[I].ClassIndex)
            return false;
        return true;
      };
      if (!SameHandlers())
        continue;
      // Splice: drop our goto, take S's trees and successors.
      Block &MBlk = IL.block(B);
      Block &MNext = IL.block(S);
      MBlk.Trees.pop_back();
      for (NodeId T : MNext.Trees)
        MBlk.Trees.push_back(T);
      MBlk.Succs = MNext.Succs;
      for (BlockId NS : MNext.Succs) {
        auto &P = IL.block(NS).Preds;
        std::replace(P.begin(), P.end(), S, B);
      }
      MNext.Trees.clear();
      MNext.Succs.clear();
      MNext.Preds.clear();
      MNext.Reachable = false;
      Ctx.noteChange(TransformationKind::BlockMerging);
      Changed = Merged = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Tail duplication: copy tiny join blocks into their goto predecessors.
//===----------------------------------------------------------------------===//

bool jitml::runTailDuplication(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  bool Changed = false;
  for (BlockId S = 0; S < CIL.numBlocks(); ++S) {
    const Block &Join = CIL.block(S);
    if (!Join.Reachable || Join.IsHandler || Join.Preds.size() < 2)
      continue;
    if (Join.Trees.size() > 4)
      continue;
    const Node &Term = CIL.node(Join.Trees.back());
    if (Term.Op != ILOp::Return && Term.Op != ILOp::Goto)
      continue;
    // Duplicate into predecessors that reach us by an unconditional goto
    // and share our handler scope.
    auto SameHandlers = [&](const Block &P) {
      if (P.Handlers.size() != Join.Handlers.size())
        return false;
      for (size_t I = 0; I < P.Handlers.size(); ++I)
        if (P.Handlers[I].Handler != Join.Handlers[I].Handler)
          return false;
      return true;
    };
    std::vector<BlockId> Preds = Join.Preds;
    for (BlockId P : Preds) {
      if (CIL.block(S).Preds.size() <= 1)
        break; // keep one inline path
      const Block &Pred = CIL.block(P);
      if (P == S || !Pred.Reachable || Pred.Trees.empty())
        continue;
      if (CIL.node(Pred.Trees.back()).Op != ILOp::Goto ||
          Pred.Succs.size() != 1 || Pred.Succs[0] != S)
        continue;
      if (!SameHandlers(Pred))
        continue;
      Ctx.charge((double)Join.Trees.size() * 3);
      // Clone the join's trees in place of the predecessor's goto.
      IL.block(P).Trees.pop_back();
      for (NodeId T : std::vector<NodeId>(CIL.block(S).Trees))
        IL.block(P).Trees.push_back(Ctx.cloneTree(T, nullptr));
      IL.block(P).Succs.clear();
      {
        auto &JP = IL.block(S).Preds;
        JP.erase(std::find(JP.begin(), JP.end(), P));
      }
      for (BlockId NS : std::vector<BlockId>(CIL.block(S).Succs))
        IL.addEdge(P, NS);
      Ctx.noteChange(TransformationKind::TailDuplication);
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Cold-block marking for outlined layout
//===----------------------------------------------------------------------===//

bool jitml::runColdBlockOutlining(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  // Reuse the cached loop forest for the frequency annotation; the
  // annotate overload only touches blocks whose frequency actually moves,
  // and a moved frequency counts as a change (it bumped the epoch).
  bool Changed = LoopInfo::annotateFrequencies(IL, Ctx.loopInfo());
  if (Changed)
    Ctx.noteChange(TransformationKind::ColdBlockOutlining);
  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    Ctx.charge(1);
    if (!Blk.Reachable)
      continue;
    bool Cold = Blk.Frequency <= 0.05 || Blk.IsHandler;
    if (Cold != Blk.Cold) {
      IL.block(B).Cold = Cold;
      Ctx.noteChange(TransformationKind::ColdBlockOutlining);
      Changed = true;
    }
  }
  return Changed;
}
