//===- opt/Plan.cpp -------------------------------------------------------===//
//
// The hand-tuned plans. Ordering encodes years'-worth of phase-ordering
// lessons, e.g. idiom recognition and bounds versioning must run before
// unrolling (unrolled bodies no longer match their patterns), check
// eliminations pay off best after inlining exposed the checks, and cleanup
// rounds re-run after every structural phase.
//
//===----------------------------------------------------------------------===//

#include "opt/Plan.h"

#include <cassert>

using namespace jitml;

namespace {

using TK = TransformationKind;

/// Expression/local cleanup round re-run after structural passes.
void appendCleanup(std::vector<TK> &Plan) {
  Plan.push_back(TK::ConstantFolding);
  Plan.push_back(TK::ExpressionSimplification);
  Plan.push_back(TK::LocalValueNumbering);
  Plan.push_back(TK::DeadStoreElimination);
  Plan.push_back(TK::DeadTreeElimination);
}

/// CFG tidy-up round.
void appendCfgCleanup(std::vector<TK> &Plan) {
  Plan.push_back(TK::BranchFolding);
  Plan.push_back(TK::JumpThreading);
  Plan.push_back(TK::BlockMerging);
  Plan.push_back(TK::UnreachableCodeElimination);
}

/// Check-elimination round.
void appendChecks(std::vector<TK> &Plan, bool Full) {
  Plan.push_back(TK::NullCheckElimination);
  Plan.push_back(TK::DivCheckElimination);
  if (Full) {
    Plan.push_back(TK::BoundsCheckElimination);
    Plan.push_back(TK::CastCheckElimination);
  }
  Plan.push_back(TK::GuardMerging);
  Plan.push_back(TK::ImplicitExceptionChecks);
}

/// The loop pipeline. Pattern-matching phases (idiom recognition, bounds
/// versioning, strength reduction) MUST precede unrolling: an unrolled
/// body no longer matches the canonical counted-loop shape.
enum class LoopTier { Basic, Full, Aggressive };

void appendLoopPipeline(std::vector<TK> &Plan, LoopTier Tier) {
  Plan.push_back(TK::LoopCanonicalization);
  Plan.push_back(TK::LoopInvariantCodeMotion);
  Plan.push_back(TK::EmptyLoopRemoval);
  Plan.push_back(TK::IdiomRecognition);
  if (Tier != LoopTier::Basic) {
    Plan.push_back(TK::LoopBoundsVersioning);
    Plan.push_back(TK::LoopStrengthReduction);
    Plan.push_back(TK::InductionVariableElimination);
    Plan.push_back(TK::PrefetchInsertion);
    Plan.push_back(TK::LoopFullUnrolling);
  }
  if (Tier == LoopTier::Aggressive)
    Plan.push_back(TK::LoopUnrollingAggressive);
  Plan.push_back(TK::LoopUnrolling);
  // Peeling last: it straight-lines the first iteration, which destroys
  // the constant-start shape the unrollers depend on.
  if (Tier != LoopTier::Basic)
    Plan.push_back(TK::LoopPeeling);
}

std::vector<TK> buildCold() {
  // 20 entries: the quick-and-dirty plan for rarely-run methods.
  return {
      TK::ConstantFolding,
      TK::ExpressionSimplification,
      TK::LocalCopyPropagation,
      TK::LocalValueNumbering,
      TK::StrengthReduction,
      TK::DeadStoreElimination,
      TK::DeadTreeElimination,
      TK::BranchFolding,
      TK::JumpThreading,
      TK::BlockMerging,
      TK::UnreachableCodeElimination,
      TK::NullCheckElimination,
      TK::DivCheckElimination,
      TK::GuardMerging,
      TK::ImplicitExceptionChecks,
      TK::InlineTrivial,
      TK::PeepholeOptimization,
      TK::ConstantEncoding,
      TK::RegisterCoalescing,
      TK::LeafRoutineOptimization,
  };
}

std::vector<TK> buildWarm() {
  std::vector<TK> Plan = buildCold(); // 20
  Plan.push_back(TK::Devirtualization);
  Plan.push_back(TK::InlineSmall);
  Plan.push_back(TK::GlobalCopyPropagation);
  Plan.push_back(TK::Reassociation);
  Plan.push_back(TK::SignExtensionElimination);
  Plan.push_back(TK::FPSimplification);
  Plan.push_back(TK::RedundantLoadElimination); // 27
  appendLoopPipeline(Plan, LoopTier::Basic);    // 32
  Plan.push_back(TK::GlobalValueNumbering);
  Plan.push_back(TK::GlobalDeadStoreElimination);
  Plan.push_back(TK::StoreSinking); // 35
  appendCleanup(Plan);              // 40
  appendChecks(Plan, /*Full=*/true); // 46 (bounds after loop opts)
  Plan.push_back(TK::InstructionScheduling);
  Plan.push_back(TK::ProfileGuidedLayout); // 48... trim below
  return Plan;
}

std::vector<TK> buildHot() {
  std::vector<TK> Plan = buildCold(); // 20
  // Aggressive inlining first so everything downstream sees big methods.
  Plan.push_back(TK::Devirtualization);
  Plan.push_back(TK::InlineSmall);
  appendCfgCleanup(Plan); // 26
  Plan.push_back(TK::GlobalCopyPropagation);
  Plan.push_back(TK::Reassociation);
  Plan.push_back(TK::SignExtensionElimination);
  Plan.push_back(TK::FPSimplification);
  Plan.push_back(TK::FPStrengthReduction);
  Plan.push_back(TK::BCDSimplification);
  Plan.push_back(TK::LongDoubleFastPath);
  Plan.push_back(TK::RedundantLoadElimination); // 34
  Plan.push_back(TK::EscapeAnalysis);
  Plan.push_back(TK::MonitorElision);
  Plan.push_back(TK::AllocationSinking);
  Plan.push_back(TK::ThrowFastPathing); // 38
  appendChecks(Plan, /*Full=*/true);    // 44 (before loops: clean bodies)
  appendLoopPipeline(Plan, LoopTier::Full); // 55
  Plan.push_back(TK::PartialRedundancyElimination);
  Plan.push_back(TK::GlobalValueNumbering);
  Plan.push_back(TK::GlobalDeadStoreElimination); // 58
  appendCleanup(Plan);                            // 63
  appendCfgCleanup(Plan);                         // 67
  appendChecks(Plan, /*Full=*/true);              // 73
  Plan.push_back(TK::TailDuplication);
  Plan.push_back(TK::Rematerialization);
  Plan.push_back(TK::StoreSinking);
  Plan.push_back(TK::ColdBlockOutlining);
  Plan.push_back(TK::InstructionScheduling);
  Plan.push_back(TK::ProfileGuidedLayout);
  Plan.push_back(TK::DeadTreeElimination); // 80
  return Plan;
}

std::vector<TK> buildVeryHot() {
  std::vector<TK> Plan = buildCold(); // 20
  Plan.push_back(TK::Devirtualization);
  Plan.push_back(TK::InlineAggressive);
  appendCfgCleanup(Plan); // 26
  Plan.push_back(TK::GlobalCopyPropagation);
  Plan.push_back(TK::Reassociation);
  Plan.push_back(TK::StrengthReduction);
  Plan.push_back(TK::SignExtensionElimination);
  Plan.push_back(TK::FPSimplification);
  Plan.push_back(TK::FPStrengthReduction);
  Plan.push_back(TK::BCDSimplification);
  Plan.push_back(TK::LongDoubleFastPath);
  Plan.push_back(TK::RedundantLoadElimination); // 35
  Plan.push_back(TK::EscapeAnalysis);
  Plan.push_back(TK::MonitorElision);
  Plan.push_back(TK::AllocationSinking);
  Plan.push_back(TK::ThrowFastPathing); // 39
  appendChecks(Plan, /*Full=*/true);    // 45
  appendLoopPipeline(Plan, LoopTier::Full); // 56
  appendCleanup(Plan);                      // 61
  // Second inlining round: loop-optimized callees are smaller now.
  Plan.push_back(TK::Devirtualization);
  Plan.push_back(TK::InlineSmall);
  appendCfgCleanup(Plan); // 67
  Plan.push_back(TK::GlobalCopyPropagation);
  Plan.push_back(TK::GlobalValueNumbering);
  Plan.push_back(TK::GlobalDeadStoreElimination);
  Plan.push_back(TK::PartialRedundancyElimination);
  Plan.push_back(TK::RedundantLoadElimination); // 72
  appendLoopPipeline(Plan, LoopTier::Aggressive); // 84
  appendCleanup(Plan);                            // 89
  appendCfgCleanup(Plan);                         // 93
  appendChecks(Plan, /*Full=*/true);              // 99
  Plan.push_back(TK::EscapeAnalysis);
  Plan.push_back(TK::MonitorElision); // 101
  appendCleanup(Plan);                // 106
  Plan.push_back(TK::TailDuplication);
  Plan.push_back(TK::Rematerialization);
  Plan.push_back(TK::StoreSinking);
  Plan.push_back(TK::ColdBlockOutlining);
  Plan.push_back(TK::InstructionScheduling);
  Plan.push_back(TK::ProfileGuidedLayout); // 112
  appendChecks(Plan, /*Full=*/false);      // 116
  Plan.push_back(TK::Reassociation);
  Plan.push_back(TK::StrengthReduction);
  Plan.push_back(TK::SignExtensionElimination);
  Plan.push_back(TK::DeadTreeElimination); // 120
  return Plan;
}

std::vector<TK> buildScorching() {
  std::vector<TK> Plan = buildVeryHot(); // 120
  // A third full round with profile-guided emphasis: by scorching time the
  // profile is trustworthy, so layout/duplication decisions pay off.
  Plan.push_back(TK::Devirtualization);
  Plan.push_back(TK::InlineAggressive);
  appendCfgCleanup(Plan); // 126
  appendCleanup(Plan);    // 131
  Plan.push_back(TK::GlobalCopyPropagation);
  Plan.push_back(TK::GlobalValueNumbering);
  Plan.push_back(TK::GlobalDeadStoreElimination);
  Plan.push_back(TK::RedundantLoadElimination);
  Plan.push_back(TK::PartialRedundancyElimination); // 136
  appendLoopPipeline(Plan, LoopTier::Aggressive);   // 148
  appendCleanup(Plan);                              // 153
  appendCfgCleanup(Plan);                           // 157
  appendChecks(Plan, /*Full=*/true);                // 163
  Plan.push_back(TK::FPSimplification);
  Plan.push_back(TK::FPStrengthReduction);
  Plan.push_back(TK::BCDSimplification);
  Plan.push_back(TK::LongDoubleFastPath);
  Plan.push_back(TK::ThrowFastPathing); // 168
  Plan.push_back(TK::TailDuplication);
  Plan.push_back(TK::Rematerialization);
  Plan.push_back(TK::ColdBlockOutlining);
  Plan.push_back(TK::ProfileGuidedLayout); // 172
  return Plan;
}

} // namespace

const char *jitml::optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::Cold:
    return "cold";
  case OptLevel::Warm:
    return "warm";
  case OptLevel::Hot:
    return "hot";
  case OptLevel::VeryHot:
    return "veryHot";
  case OptLevel::Scorching:
    return "scorching";
  }
  return "?";
}

const CompilationPlan &jitml::planForLevel(OptLevel L) {
  static const CompilationPlan Plans[NumOptLevels] = {
      {OptLevel::Cold, buildCold()},
      {OptLevel::Warm, buildWarm()},
      {OptLevel::Hot, buildHot()},
      {OptLevel::VeryHot, buildVeryHot()},
      {OptLevel::Scorching, buildScorching()},
  };
  assert((unsigned)L < NumOptLevels && "invalid optimization level");
  return Plans[(unsigned)L];
}
