//===- opt/Loops.cpp - Loop transformations -------------------------------===//
//
// Loop canonicalization (preheaders), invariant code motion, unrolling
// (factor 2/4 and full), peeling, bounds versioning, loop strength
// reduction, induction-variable elimination, empty-loop removal, copy-loop
// idiom recognition, and prefetch marking.
//
// The structural passes operate on *canonical counted loops*: a header
// whose only tree is the exit test `i < bound`, a single body block ending
// with the `i += step` update and the back edge. The workload generators
// emit exactly this shape for their kernels, and LoopCanonicalization plus
// the CFG cleanups push many other loops into it.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "il/LoopInfo.h"

#include <algorithm>

#include <unordered_map>
#include <unordered_set>

using namespace jitml;

namespace {

/// A recognized canonical counted loop.
struct CanonicalLoop {
  BlockId Header = InvalidBlock;
  BlockId Body = InvalidBlock;
  BlockId Preheader = InvalidBlock;
  BlockId Exit = InvalidBlock;
  int32_t IndVar = -1;
  int64_t Step = 0;
  bool HasConstBound = false;
  int64_t Bound = 0;        ///< valid when HasConstBound
  int32_t BoundArraySlot = -1; ///< bound is arraylen(load slot), else -1
  bool HasConstStart = false;
  int64_t Start = 0;
  size_t IncTreeIdx = 0; ///< index of the increment tree in the body
};

/// Finds the unique outside predecessor of \p Header that qualifies as a
/// preheader (single successor, ends in Goto). InvalidBlock when absent.
BlockId findPreheader(const MethodIL &IL, const Loop &L) {
  BlockId Candidate = InvalidBlock;
  for (BlockId P : IL.block(L.Header).Preds) {
    if (L.contains(P))
      continue;
    if (Candidate != InvalidBlock)
      return InvalidBlock; // multiple entries
    Candidate = P;
  }
  if (Candidate == InvalidBlock)
    return InvalidBlock;
  const Block &PB = IL.block(Candidate);
  if (PB.Succs.size() != 1 || PB.Trees.empty() ||
      IL.node(PB.Trees.back()).Op != ILOp::Goto)
    return InvalidBlock;
  return Candidate;
}

/// Recognizes the canonical counted-loop shape for \p L.
bool recognize(const MethodIL &IL, const Loop &L, CanonicalLoop &Out) {
  if (L.Blocks.size() != 2)
    return false;
  BlockId H = L.Header;
  BlockId W = L.Blocks[0] == H ? L.Blocks[1] : L.Blocks[0];
  const Block &HB = IL.block(H);
  const Block &WB = IL.block(W);
  if (!HB.Reachable || !WB.Reachable || HB.IsHandler || WB.IsHandler)
    return false;
  // Header: the test, optionally preceded by check treetops (e.g. the
  // null check guarding an arraylen bound). Rewrites must preserve the
  // prefix — it carries exception semantics.
  if (HB.Trees.empty() || HB.Succs.size() != 2)
    return false;
  for (size_t TI = 0; TI + 1 < HB.Trees.size(); ++TI) {
    ILOp Op = IL.node(HB.Trees[TI]).Op;
    if (Op != ILOp::NullCheck && Op != ILOp::BoundsCheck &&
        Op != ILOp::DivCheck)
      return false;
  }
  const Node &Test = IL.node(HB.Trees.back());
  if (Test.Op != ILOp::Branch)
    return false;
  // Body: ends with Goto back to the header, no other exits.
  if (WB.Succs.size() != 1 || WB.Succs[0] != H || WB.Trees.empty() ||
      IL.node(WB.Trees.back()).Op != ILOp::Goto)
    return false;
  // Orientation: `branch(Ge) -> exit` with fallthrough into the body, or
  // `branch(Lt) -> body` with fallthrough out.
  BcCond Cond = (BcCond)Test.A;
  BlockId Taken = HB.Succs[0], Fall = HB.Succs[1];
  BlockId Exit, BodySucc;
  if (Taken == W && Cond == BcCond::Lt) {
    BodySucc = Taken;
    Exit = Fall;
  } else if (Fall == W && Cond == BcCond::Ge) {
    BodySucc = Fall;
    Exit = Taken;
  } else {
    return false;
  }
  if (Exit == W || BodySucc != W)
    return false;
  // Test operands: LoadLocal(i) vs bound.
  const Node &Lhs = IL.node(Test.Kids[0]);
  if (Lhs.Op != ILOp::LoadLocal || !isIntegerType(Lhs.Type))
    return false;
  int32_t IndVar = Lhs.A;
  const Node &Rhs = IL.node(Test.Kids[1]);
  CanonicalLoop C;
  C.Header = H;
  C.Body = W;
  C.Exit = Exit;
  C.IndVar = IndVar;
  if (Rhs.Op == ILOp::Const && isIntegerType(Rhs.Type)) {
    C.HasConstBound = true;
    C.Bound = Rhs.ConstI;
  } else if (Rhs.Op == ILOp::ArrayLen &&
             IL.node(Rhs.Kids[0]).Op == ILOp::LoadLocal) {
    C.BoundArraySlot = IL.node(Rhs.Kids[0]).A;
  } else {
    return false;
  }
  // Unique increment: StoreLocal(i, Add(LoadLocal i, Const step)), and no
  // other store to i inside the loop.
  int IncCount = 0;
  for (size_t TI = 0; TI < WB.Trees.size(); ++TI) {
    const Node &N = IL.node(WB.Trees[TI]);
    if (N.Op != ILOp::StoreLocal || N.A != IndVar)
      continue;
    const Node &V = IL.node(N.Kids[0]);
    if (V.Op == ILOp::Add && V.Kids.size() == 2 &&
        IL.node(V.Kids[0]).Op == ILOp::LoadLocal &&
        IL.node(V.Kids[0]).A == IndVar &&
        IL.node(V.Kids[1]).Op == ILOp::Const) {
      C.Step = IL.node(V.Kids[1]).ConstI;
      C.IncTreeIdx = TI;
      ++IncCount;
    } else {
      return false; // non-affine update
    }
  }
  if (IncCount != 1 || C.Step <= 0)
    return false;
  // The increment must be the last statement before the back edge so that
  // unrolled copies stay iteration-accurate.
  if (C.IncTreeIdx + 2 != WB.Trees.size())
    return false;
  // Also reject stores to the bound array slot inside the loop.
  if (C.BoundArraySlot >= 0) {
    for (NodeId Root : WB.Trees) {
      const Node &N = IL.node(Root);
      if (N.Op == ILOp::StoreLocal && N.A == C.BoundArraySlot)
        return false;
    }
  }
  // Preheader and constant start value.
  C.Preheader = findPreheader(IL, L);
  if (C.Preheader != InvalidBlock) {
    const Block &PB = IL.block(C.Preheader);
    for (size_t TI = PB.Trees.size(); TI-- > 0;) {
      const Node &N = IL.node(PB.Trees[TI]);
      if (N.Op == ILOp::StoreLocal && N.A == IndVar) {
        const Node &V = IL.node(N.Kids[0]);
        if (V.Op == ILOp::Const) {
          C.HasConstStart = true;
          C.Start = V.ConstI;
        }
        break;
      }
    }
  }
  Out = C;
  return true;
}

/// Number of iterations of a fully-recognized constant loop; -1 otherwise.
int64_t tripCount(const CanonicalLoop &C) {
  if (!C.HasConstBound || !C.HasConstStart)
    return -1;
  if (C.Start >= C.Bound)
    return 0;
  return (C.Bound - C.Start + C.Step - 1) / C.Step;
}

/// Facts about what a loop's blocks write, for LICM legality. Flat
/// byte-per-slot maps (locals and globals are both small dense id spaces);
/// the scan runs per loop per LICM invocation on the compile hot path.
struct LoopMemFacts {
  std::vector<uint8_t> StoredSlots;   ///< indexed by local slot
  std::vector<uint8_t> StoredGlobals; ///< indexed by global id
  bool HasCallOrMonitor = false;

  bool storesSlot(int32_t A) const {
    return (uint32_t)A < StoredSlots.size() && StoredSlots[(uint32_t)A];
  }
  bool storesGlobal(int32_t A) const {
    return (uint32_t)A < StoredGlobals.size() && StoredGlobals[(uint32_t)A];
  }
};

LoopMemFacts scanLoopMem(const MethodIL &IL, const Loop &L) {
  LoopMemFacts F;
  F.StoredSlots.assign(IL.numLocals(), 0);
  F.StoredGlobals.assign(IL.program().numGlobals(), 0);
  std::vector<NodeId> Stack;
  for (BlockId B : L.Blocks) {
    for (NodeId Root : IL.block(B).Trees) {
      Stack.assign(1, Root);
      while (!Stack.empty()) {
        const Node &N = IL.node(Stack.back());
        Stack.pop_back();
        if (N.Op == ILOp::StoreLocal && (uint32_t)N.A < F.StoredSlots.size())
          F.StoredSlots[(uint32_t)N.A] = 1;
        if (N.Op == ILOp::StoreGlobal &&
            (uint32_t)N.A < F.StoredGlobals.size())
          F.StoredGlobals[(uint32_t)N.A] = 1;
        if (N.Op == ILOp::Call || N.Op == ILOp::MonitorEnter ||
            N.Op == ILOp::MonitorExit)
          F.HasCallOrMonitor = true;
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
  }
  return F;
}

/// Size of the tree rooted at \p Id (shared nodes counted per edge).
uint32_t treeSize(const MethodIL &IL, NodeId Id) {
  uint32_t Size = 1;
  for (NodeId Kid : IL.node(Id).Kids)
    Size += treeSize(IL, Kid);
  return Size;
}

} // namespace

//===----------------------------------------------------------------------===//
// Loop canonicalization: give every loop header a dedicated preheader.
//===----------------------------------------------------------------------===//

bool jitml::runLoopCanonicalization(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    Ctx.charge(4);
    if (findPreheader(CIL, L) != InvalidBlock)
      continue;
    // Collect outside predecessors.
    std::vector<BlockId> Outside;
    for (BlockId P : CIL.block(L.Header).Preds)
      if (!L.contains(P))
        Outside.push_back(P);
    BlockId Pre = IL.makeBlock();
    Block &PB = IL.block(Pre);
    PB.Trees.push_back(IL.makeNode(ILOp::Goto, DataType::Void));
    PB.Handlers = CIL.block(L.Header).Handlers;
    PB.Reachable = true;
    IL.addEdge(Pre, L.Header);
    for (BlockId P : Outside)
      IL.replaceEdge(P, L.Header, Pre);
    if (L.Header == CIL.entryBlock())
      IL.setEntryBlock(Pre);
    Ctx.noteChange(TransformationKind::LoopCanonicalization);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Loop-invariant code motion
//===----------------------------------------------------------------------===//

bool jitml::runLoopInvariantCodeMotion(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;

  // Scratch reused across loops, generation-stamped so each loop starts
  // from a clean map without refilling: this walk and the invariance memo
  // sit on the hottest compile path and hashing/allocating here dominated
  // the whole pass.
  std::vector<uint32_t> UsedOutside, MemoGen;
  std::vector<uint8_t> MemoVal;
  uint32_t Gen = 0;
  std::vector<NodeId> Stack;
  std::vector<std::pair<NodeId, unsigned>> Work;

  for (const Loop &L : LI.loops()) {
    BlockId Pre = findPreheader(CIL, L);
    if (Pre == InvalidBlock)
      continue;
    LoopMemFacts MF = scanLoopMem(CIL, L);

    // Hoisting under the previous loop may have grown the node arena.
    if (UsedOutside.size() < CIL.numNodes()) {
      UsedOutside.resize(CIL.numNodes(), 0);
      MemoGen.resize(CIL.numNodes(), 0);
      MemoVal.resize(CIL.numNodes(), 0);
    }
    ++Gen;

    // Which nodes are referenced outside the loop? Those cannot be
    // rewritten to a preheader temp (the temp might not dominate them).
    for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
      if (!CIL.block(B).Reachable || L.contains(B))
        continue;
      for (NodeId Root : CIL.block(B).Trees) {
        Stack.assign(1, Root);
        while (!Stack.empty()) {
          NodeId Id = Stack.back();
          Stack.pop_back();
          UsedOutside[Id] = Gen;
          for (NodeId Kid : CIL.node(Id).Kids)
            Stack.push_back(Kid);
        }
      }
    }

    auto Invariant = [&](auto &&Self, NodeId Id) -> bool {
      if (MemoGen[Id] == Gen)
        return MemoVal[Id] != 0;
      const Node &N = CIL.node(Id);
      Ctx.charge(1);
      bool Inv = false;
      switch (N.Op) {
      case ILOp::Const:
        Inv = true;
        break;
      case ILOp::LoadLocal:
        Inv = !MF.storesSlot(N.A);
        break;
      case ILOp::LoadGlobal:
        Inv = !MF.HasCallOrMonitor && !MF.storesGlobal(N.A);
        break;
      case ILOp::Add:
      case ILOp::Sub:
      case ILOp::Mul:
      case ILOp::Shl:
      case ILOp::Shr:
      case ILOp::Or:
      case ILOp::And:
      case ILOp::Xor:
      case ILOp::Neg:
      case ILOp::Conv:
      case ILOp::Cmp:
      case ILOp::CmpCond:
        Inv = true;
        break;
      case ILOp::Div:
      case ILOp::Rem: {
        // Speculating a division is only safe when it cannot trap.
        const Node &R = CIL.node(N.Kids[1]);
        Inv = isFloatType(N.Type) ||
              (R.Op == ILOp::Const && R.ConstI != 0);
        break;
      }
      default:
        Inv = false;
        break;
      }
      if (Inv)
        for (NodeId Kid : N.Kids)
          if (!Self(Self, Kid)) {
            Inv = false;
            break;
          }
      MemoGen[Id] = Gen;
      MemoVal[Id] = Inv ? 1 : 0;
      return Inv;
    };

    // Hoist maximal invariant subtrees found under loop treetops.
    for (BlockId B : L.Blocks) {
      const Block &Blk = CIL.block(B);
      for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
        // Fresh worklist per tree: (parent, kid index).
        Work.clear();
        for (unsigned KI = 0; KI < CIL.node(Blk.Trees[TI]).numKids(); ++KI)
          Work.emplace_back(Blk.Trees[TI], KI);
        while (!Work.empty()) {
          auto [Parent, KI] = Work.back();
          Work.pop_back();
          NodeId Id = CIL.node(Parent).Kids[KI];
          const Node &N = CIL.node(Id);
          bool Trivial = N.Op == ILOp::Const || N.Op == ILOp::LoadLocal;
          if (!Trivial && UsedOutside[Id] != Gen &&
              Invariant(Invariant, Id) && treeSize(CIL, Id) >= 2) {
            DataType T = N.Type;
            uint32_t Slot = IL.addLocal(T);
            NodeId Clone = Ctx.cloneTree(Id, nullptr);
            NodeId Store =
                IL.makeNode(ILOp::StoreLocal, DataType::Void, {Clone});
            IL.node(Store).A = (int32_t)Slot;
            Block &PB = IL.block(Pre);
            PB.Trees.insert(PB.Trees.end() - 1, Store); // before the Goto
            Ctx.rewriteToLoadLocal(Id, T, Slot);
            Ctx.noteChange(TransformationKind::LoopInvariantCodeMotion);
            Changed = true;
            continue; // node is now a LoadLocal; nothing to descend into
          }
          for (unsigned K2 = 0; K2 < CIL.node(Id).numKids(); ++K2)
            Work.emplace_back(Id, K2);
        }
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Unrolling (factor k; Factor == 0 means full unroll of short loops)
//===----------------------------------------------------------------------===//

bool jitml::runLoopUnrolling(PassContext &Ctx, unsigned Factor) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C))
      continue;
    int64_t Trips = tripCount(C);
    if (Trips <= 1)
      continue;
    const Block &WB = CIL.block(C.Body);
    size_t BodyTrees = WB.Trees.size() - 1; // excluding the Goto
    unsigned K = Factor;
    if (K == 0) {
      // Full unroll: modest trip counts and small bodies only.
      if (Trips > 8 || BodyTrees > 12)
        continue;
      K = (unsigned)Trips;
    }
    if (K < 2 || Trips % K != 0)
      continue;
    if (BodyTrees * K > 96)
      continue; // code-size guard
    // Never unroll call-bearing bodies: duplicating call sites multiplies
    // code size for no loop-overhead win worth having.
    bool HasCall = false;
    for (NodeId Root : WB.Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty() && !HasCall) {
        const Node &N = CIL.node(Stack.back());
        Stack.pop_back();
        if (N.Op == ILOp::Call)
          HasCall = true;
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
    if (HasCall)
      continue;
    Ctx.charge((double)BodyTrees * K * 3);
    // Replicate the body (including the induction update) K-1 more times
    // before the back edge. The header now tests every K iterations, which
    // is exact because Trips % K == 0.
    std::vector<NodeId> Original(WB.Trees.begin(),
                                 WB.Trees.end() - 1); // minus Goto
    for (unsigned Copy = 1; Copy < K; ++Copy) {
      for (NodeId Tree : Original) {
        NodeId Clone = Ctx.cloneTree(Tree, nullptr);
        Block &Body = IL.block(C.Body);
        Body.Trees.insert(Body.Trees.end() - 1, Clone);
      }
    }
    Ctx.noteChange(Factor == 0 ? TransformationKind::LoopFullUnrolling
                   : Factor >= 4
                       ? TransformationKind::LoopUnrollingAggressive
                       : TransformationKind::LoopUnrolling);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Peeling: run the first iteration straight-line ahead of the loop.
//===----------------------------------------------------------------------===//

bool jitml::runLoopPeeling(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C) || C.Preheader == InvalidBlock)
      continue;
    const Block &WB = CIL.block(C.Body);
    if (WB.Trees.size() > 10)
      continue;
    // Like unrolling, peeling duplicates the body: keep call sites unique.
    bool HasCall = false;
    for (NodeId Root : WB.Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty() && !HasCall) {
        const Node &N = CIL.node(Stack.back());
        Stack.pop_back();
        if (N.Op == ILOp::Call)
          HasCall = true;
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
    if (HasCall)
      continue;
    Ctx.charge((double)WB.Trees.size() * 4);
    // Build guarded straight-line copies: preheader -> H' -> W' -> H.
    BlockId HCopy = IL.makeBlock();
    BlockId WCopy = IL.makeBlock();
    {
      Block &HB = IL.block(C.Header);
      Block &HC = IL.block(HCopy);
      HC.Handlers = HB.Handlers;
      HC.Reachable = true;
      HC.Trees.push_back(Ctx.cloneTree(HB.Trees.back(), nullptr));
    }
    {
      Block &WBody = IL.block(C.Body);
      Block &WC = IL.block(WCopy);
      WC.Handlers = WBody.Handlers;
      WC.Reachable = true;
      for (size_t TI = 0; TI + 1 < WBody.Trees.size(); ++TI)
        WC.Trees.push_back(Ctx.cloneTree(WBody.Trees[TI], nullptr));
      WC.Trees.push_back(IL.makeNode(ILOp::Goto, DataType::Void));
    }
    // Wire: preheader -> HCopy; HCopy branches to (exit | WCopy) in the
    // same orientation as the original header; WCopy -> Header.
    IL.replaceEdge(C.Preheader, C.Header, HCopy);
    const Block &HB = CIL.block(C.Header);
    for (BlockId S : std::vector<BlockId>(HB.Succs))
      IL.addEdge(HCopy, S == C.Body ? WCopy : S);
    IL.addEdge(WCopy, C.Header);
    Ctx.noteChange(TransformationKind::LoopPeeling);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Bounds versioning: `for (i = c; i < a.length; i++) ... a[i]` needs no
// per-iteration bounds checks.
//===----------------------------------------------------------------------===//

bool jitml::runLoopBoundsVersioning(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C))
      continue;
    if (C.BoundArraySlot < 0 || !C.HasConstStart || C.Start < 0 ||
        C.Step != 1)
      continue;
    const Block &WB = CIL.block(C.Body);
    for (size_t TI = 0; TI < WB.Trees.size();) {
      const Node &N = CIL.node(WB.Trees[TI]);
      Ctx.charge(1);
      bool Removable = false;
      if (N.Op == ILOp::BoundsCheck && N.B == 0) {
        const Node &Arr = CIL.node(N.Kids[0]);
        const Node &Idx = CIL.node(N.Kids[1]);
        Removable = Arr.Op == ILOp::LoadLocal && Arr.A == C.BoundArraySlot &&
                    Idx.Op == ILOp::LoadLocal && Idx.A == C.IndVar;
      }
      if (Removable) {
        Block &MBlk = IL.block(C.Body);
        MBlk.Trees.erase(MBlk.Trees.begin() + (std::ptrdiff_t)TI);
        Ctx.noteChange(TransformationKind::LoopBoundsVersioning);
        Changed = true;
        continue;
      }
      ++TI;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Loop strength reduction: i * c becomes an additive recurrence.
//===----------------------------------------------------------------------===//

bool jitml::runLoopStrengthReduction(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C) || C.Preheader == InvalidBlock)
      continue;
    // Pre-count candidate multiplications per constant: one shared
    // recurrence amortizes its update traffic only when at least two
    // multiplies use it; single-use muls stay as (cheaper) multiplies.
    std::unordered_map<int64_t, uint32_t> MulCount;
    {
      const Block &Body = CIL.block(C.Body);
      for (size_t TI = 0; TI < C.IncTreeIdx; ++TI) {
        std::vector<NodeId> Stack{Body.Trees[TI]};
        while (!Stack.empty()) {
          const Node &N = CIL.node(Stack.back());
          Stack.pop_back();
          if (N.Op == ILOp::Mul && N.Kids.size() == 2 &&
              CIL.node(N.Kids[0]).Op == ILOp::LoadLocal &&
              CIL.node(N.Kids[0]).A == C.IndVar &&
              CIL.node(N.Kids[1]).Op == ILOp::Const)
            ++MulCount[CIL.node(N.Kids[1]).ConstI];
          for (NodeId Kid : N.Kids)
            Stack.push_back(Kid);
        }
      }
    }
    // Collect i*const multiplications in body trees before the increment.
    std::unordered_map<int64_t, uint32_t> TempForConst;
    const Block &WB = CIL.block(C.Body);
    for (size_t TI = 0; TI < C.IncTreeIdx; ++TI) {
      std::vector<NodeId> Stack{WB.Trees[TI]};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        Ctx.charge(1);
        // Snapshot; we may rewrite the node below and makeNode calls can
        // reallocate the arena.
        ILOp NOp = Ctx.cil().node(Id).Op;
        DataType NType = Ctx.cil().node(Id).Type;
        const KidList &KL = Ctx.cil().node(Id).Kids;
        std::vector<NodeId> NKids(KL.begin(), KL.end());
        if (NOp == ILOp::Mul && isIntegerType(NType) && NKids.size() == 2) {
          const Node &Lk = CIL.node(NKids[0]);
          const Node &Rk = CIL.node(NKids[1]);
          if (Lk.Op == ILOp::LoadLocal && Lk.A == C.IndVar &&
              Rk.Op == ILOp::Const &&
              // Power-of-two multiplies belong to strength reduction: a
              // shift beats an additive recurrence with its extra local
              // traffic.
              (Rk.ConstI <= 0 || (Rk.ConstI & (Rk.ConstI - 1)) != 0) &&
              MulCount[Rk.ConstI] >= 2) {
            int64_t Mult = Rk.ConstI;
            DataType T = NType;
            uint32_t Temp;
            auto It = TempForConst.find(Mult);
            if (It != TempForConst.end()) {
              Temp = It->second;
            } else {
              Temp = IL.addLocal(T);
              TempForConst[Mult] = Temp;
              // Preheader: temp = i * c  (i == start there).
              NodeId IndLoad = IL.makeNode(ILOp::LoadLocal, T);
              IL.node(IndLoad).A = C.IndVar;
              NodeId Init = IL.makeNode(
                  ILOp::Mul, T, {IndLoad, IL.makeConstI(T, Mult)});
              NodeId Store =
                  IL.makeNode(ILOp::StoreLocal, DataType::Void, {Init});
              IL.node(Store).A = (int32_t)Temp;
              Block &PB = IL.block(C.Preheader);
              PB.Trees.insert(PB.Trees.end() - 1, Store);
              // Body (after the i update): temp += c * step.
              NodeId TempLoad = IL.makeNode(ILOp::LoadLocal, T);
              IL.node(TempLoad).A = (int32_t)Temp;
              NodeId Bump = IL.makeNode(
                  ILOp::Add, T,
                  {TempLoad, IL.makeConstI(T, Mult * C.Step)});
              NodeId BumpStore =
                  IL.makeNode(ILOp::StoreLocal, DataType::Void, {Bump});
              IL.node(BumpStore).A = (int32_t)Temp;
              Block &Body = IL.block(C.Body);
              Body.Trees.insert(Body.Trees.end() - 1, BumpStore);
            }
            Ctx.rewriteToLoadLocal(Id, T, Temp);
            Ctx.noteChange(TransformationKind::LoopStrengthReduction);
            Changed = true;
            continue;
          }
        }
        for (NodeId Kid : NKids)
          Stack.push_back(Kid);
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Induction-variable elimination: drop self-update recurrences nobody reads.
//===----------------------------------------------------------------------===//

bool jitml::runInductionVariableElimination(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  // Loads per slot, excluding loads inside the slot's own update trees.
  std::vector<uint32_t> ForeignLoads(CIL.numLocals(), 0);
  struct Update {
    BlockId Block;
    size_t TreeIdx;
  };
  std::unordered_map<int32_t, std::vector<Update>> Updates;

  auto IsSelfUpdate = [&](const Node &Store) {
    if (Store.Op != ILOp::StoreLocal)
      return false;
    const Node &V = CIL.node(Store.Kids[0]);
    if (!isArithOp(V.Op) || V.Kids.size() != 2)
      return false;
    const Node &Lk = CIL.node(V.Kids[0]);
    const Node &Rk = CIL.node(V.Kids[1]);
    return Lk.Op == ILOp::LoadLocal && Lk.A == Store.A &&
           Rk.Op == ILOp::Const;
  };

  for (BlockId B = 0; B < CIL.numBlocks(); ++B) {
    const Block &Blk = CIL.block(B);
    if (!Blk.Reachable)
      continue;
    for (size_t TI = 0; TI < Blk.Trees.size(); ++TI) {
      const Node &Root = CIL.node(Blk.Trees[TI]);
      Ctx.charge(1);
      if (IsSelfUpdate(Root)) {
        Updates[Root.A].push_back({B, TI});
        continue; // its own load does not count as a foreign read
      }
      std::vector<NodeId> Stack{Blk.Trees[TI]};
      while (!Stack.empty()) {
        const Node &N = CIL.node(Stack.back());
        Stack.pop_back();
        if (N.Op == ILOp::LoadLocal)
          ++ForeignLoads[(uint32_t)N.A];
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
  }

  bool Changed = false;
  for (auto &[Slot, Sites] : Updates) {
    if ((uint32_t)Slot < ForeignLoads.size() && ForeignLoads[(uint32_t)Slot])
      continue;
    // Dead recurrence: remove every update (highest tree index first so
    // earlier indices stay valid).
    std::sort(Sites.begin(), Sites.end(), [](const Update &A, const Update &B) {
      return A.Block != B.Block ? A.Block > B.Block : A.TreeIdx > B.TreeIdx;
    });
    for (const Update &U : Sites) {
      Block &Blk = IL.block(U.Block);
      Blk.Trees.erase(Blk.Trees.begin() + (std::ptrdiff_t)U.TreeIdx);
    }
    Ctx.noteChange(TransformationKind::InductionVariableElimination);
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Empty-loop removal
//===----------------------------------------------------------------------===//

bool jitml::runEmptyLoopRemoval(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C))
      continue;
    int64_t Trips = tripCount(C);
    if (Trips < 0)
      continue;
    const Block &WB = CIL.block(C.Body);
    // Body must be just the increment and the back edge.
    if (WB.Trees.size() != 2)
      continue;
    Ctx.charge(6);
    // Final induction value after the loop completes.
    int64_t Final =
        C.Start >= C.Bound ? C.Start : C.Start + Trips * C.Step;
    DataType T = DataType::Int32;
    // Rewrite the header: set i to its final value and fall out. The
    // pre-test check prefix (if any) keeps its exception semantics.
    std::vector<NodeId> Prefix(CIL.block(C.Header).Trees.begin(),
                               CIL.block(C.Header).Trees.end() - 1);
    NodeId FinalStore = IL.makeNode(ILOp::StoreLocal, DataType::Void,
                                    {IL.makeConstI(T, Final)});
    IL.node(FinalStore).A = C.IndVar;
    Block &Header = IL.block(C.Header);
    Header.Trees = Prefix;
    Header.Trees.push_back(FinalStore);
    Header.Trees.push_back(IL.makeNode(ILOp::Goto, DataType::Void));
    // Drop the body edge.
    Header.Succs.clear();
    {
      auto &WP = IL.block(C.Body).Preds;
      WP.erase(std::find(WP.begin(), WP.end(), C.Header));
      auto &EP = IL.block(C.Exit).Preds;
      (void)EP;
    }
    // Keep only the exit edge; it already lists Header among its preds.
    Header.Succs.push_back(C.Exit);
    Ctx.noteChange(TransformationKind::EmptyLoopRemoval);
    Changed = true;
  }
  if (Changed)
    IL.computeReachability();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Idiom recognition: element-copy loops become an arraycopy intrinsic.
//===----------------------------------------------------------------------===//

bool jitml::runIdiomRecognition(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C))
      continue;
    if (!C.HasConstBound || !C.HasConstStart || C.Step != 1 || C.Start < 0 ||
        C.Bound <= C.Start)
      continue;
    const Block &WB = CIL.block(C.Body);
    // Validate the body: checks plus exactly one dst[i] = src[i] store.
    int32_t SrcSlot = -1, DstSlot = -1;
    bool Valid = true;
    int CopyStores = 0;
    for (size_t TI = 0; TI + 2 < WB.Trees.size() + 0 && Valid; ++TI) {
      if (TI == C.IncTreeIdx)
        continue;
      const Node &N = CIL.node(WB.Trees[TI]);
      Ctx.charge(1);
      switch (N.Op) {
      case ILOp::NullCheck:
      case ILOp::BoundsCheck:
        break; // subsumed by arraycopy's own checking
      case ILOp::StoreElem: {
        const Node &Arr = CIL.node(N.Kids[0]);
        const Node &Idx = CIL.node(N.Kids[1]);
        const Node &Val = CIL.node(N.Kids[2]);
        if (Arr.Op != ILOp::LoadLocal || Idx.Op != ILOp::LoadLocal ||
            Idx.A != C.IndVar || Val.Op != ILOp::LoadElem) {
          Valid = false;
          break;
        }
        const Node &SrcArr = CIL.node(Val.Kids[0]);
        const Node &SrcIdx = CIL.node(Val.Kids[1]);
        if (SrcArr.Op != ILOp::LoadLocal || SrcIdx.Op != ILOp::LoadLocal ||
            SrcIdx.A != C.IndVar || SrcArr.A == Arr.A) {
          Valid = false;
          break;
        }
        SrcSlot = SrcArr.A;
        DstSlot = Arr.A;
        ++CopyStores;
        break;
      }
      default:
        Valid = false;
        break;
      }
    }
    if (!Valid || CopyStores != 1)
      continue;
    Ctx.charge(10);
    // Rewrite the header into the intrinsic call followed by the exit.
    DataType IdxT = DataType::Int32;
    auto LoadSlot = [&](int32_t Slot, DataType T) {
      NodeId N = IL.makeNode(ILOp::LoadLocal, T);
      IL.node(N).A = Slot;
      return N;
    };
    NodeId Src = LoadSlot(SrcSlot, DataType::Address);
    NodeId Dst = LoadSlot(DstSlot, DataType::Address);
    NodeId CopyNode = IL.makeNode(
        ILOp::ArrayCopy, DataType::Void,
        {Src, IL.makeConstI(IdxT, C.Start), Dst, IL.makeConstI(IdxT, C.Start),
         IL.makeConstI(IdxT, C.Bound - C.Start)});
    NodeId FinalStore = IL.makeNode(ILOp::StoreLocal, DataType::Void,
                                    {IL.makeConstI(IdxT, C.Bound)});
    IL.node(FinalStore).A = C.IndVar;
    Block &Header = IL.block(C.Header);
    std::vector<NodeId> Prefix(Header.Trees.begin(),
                               Header.Trees.end() - 1);
    Header.Trees = Prefix;
    Header.Trees.push_back(
        IL.makeNode(ILOp::NullCheck, DataType::Void, {Src}));
    Header.Trees.push_back(
        IL.makeNode(ILOp::NullCheck, DataType::Void, {Dst}));
    Header.Trees.push_back(CopyNode);
    Header.Trees.push_back(FinalStore);
    Header.Trees.push_back(IL.makeNode(ILOp::Goto, DataType::Void));
    auto &WP = IL.block(C.Body).Preds;
    WP.erase(std::find(WP.begin(), WP.end(), C.Header));
    Header.Succs.clear();
    Header.Succs.push_back(C.Exit);
    Ctx.noteChange(TransformationKind::IdiomRecognition);
    Changed = true;
  }
  if (Changed)
    IL.computeReachability();
  return Changed;
}

//===----------------------------------------------------------------------===//
// Prefetch marking: strided element loads in loops get prefetch hints.
//===----------------------------------------------------------------------===//

bool jitml::runPrefetchInsertion(PassContext &Ctx) {
  MethodIL &IL = Ctx.il();
  const MethodIL &CIL = Ctx.cil();
  const LoopInfo &LI = Ctx.loopInfo();
  bool Changed = false;
  for (const Loop &L : LI.loops()) {
    CanonicalLoop C;
    if (!recognize(CIL, L, C))
      continue;
    const Block &WB = CIL.block(C.Body);
    for (NodeId Root : WB.Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        const Node &N = CIL.node(Id);
        Ctx.charge(1);
        if (N.Op == ILOp::LoadElem && N.B == 0) {
          const Node &Idx = CIL.node(N.Kids[1]);
          if (Idx.Op == ILOp::LoadLocal && Idx.A == C.IndVar) {
            IL.node(Id).B = 1; // codegen: sequential, prefetch-friendly
            Ctx.noteChange(TransformationKind::PrefetchInsertion);
            Changed = true;
          }
        }
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
  }
  return Changed;
}
