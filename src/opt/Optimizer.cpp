//===- opt/Optimizer.cpp --------------------------------------------------===//

#include "opt/Optimizer.h"

#include "opt/Passes.h"

using namespace jitml;

bool jitml::runTransformation(PassContext &Ctx, TransformationKind K) {
  switch (K) {
  case TransformationKind::ConstantFolding:
    return runConstantFolding(Ctx);
  case TransformationKind::ExpressionSimplification:
    return runExpressionSimplification(Ctx);
  case TransformationKind::StrengthReduction:
    return runStrengthReduction(Ctx);
  case TransformationKind::Reassociation:
    return runReassociation(Ctx);
  case TransformationKind::SignExtensionElimination:
    return runSignExtensionElimination(Ctx);
  case TransformationKind::FPSimplification:
    return runFPSimplification(Ctx);
  case TransformationKind::FPStrengthReduction:
    return runFPStrengthReduction(Ctx);
  case TransformationKind::BCDSimplification:
    return runBCDSimplification(Ctx);
  case TransformationKind::LongDoubleFastPath:
    return runLongDoubleFastPath(Ctx);
  case TransformationKind::LocalCopyPropagation:
    return runLocalCopyPropagation(Ctx);
  case TransformationKind::LocalValueNumbering:
    return runLocalValueNumbering(Ctx);
  case TransformationKind::RedundantLoadElimination:
    return runRedundantLoadElimination(Ctx);
  case TransformationKind::DeadTreeElimination:
    return runDeadTreeElimination(Ctx);
  case TransformationKind::DeadStoreElimination:
    return runDeadStoreElimination(Ctx);
  case TransformationKind::Rematerialization:
    return runRematerialization(Ctx);
  case TransformationKind::StoreSinking:
    return runStoreSinking(Ctx);
  case TransformationKind::GuardMerging:
    return runGuardMerging(Ctx);
  case TransformationKind::ThrowFastPathing:
    return runThrowFastPathing(Ctx);
  case TransformationKind::AllocationSinking:
    return runAllocationSinking(Ctx);
  case TransformationKind::GlobalCopyPropagation:
    return runGlobalCopyPropagation(Ctx);
  case TransformationKind::GlobalValueNumbering:
    return runGlobalValueNumbering(Ctx);
  case TransformationKind::GlobalDeadStoreElimination:
    return runGlobalDeadStoreElimination(Ctx);
  case TransformationKind::PartialRedundancyElimination:
    return runPartialRedundancyElimination(Ctx);
  case TransformationKind::UnreachableCodeElimination:
    return runUnreachableCodeElimination(Ctx);
  case TransformationKind::BlockMerging:
    return runBlockMerging(Ctx);
  case TransformationKind::BranchFolding:
    return runBranchFolding(Ctx);
  case TransformationKind::JumpThreading:
    return runJumpThreading(Ctx);
  case TransformationKind::TailDuplication:
    return runTailDuplication(Ctx);
  case TransformationKind::ColdBlockOutlining:
    return runColdBlockOutlining(Ctx);
  case TransformationKind::NullCheckElimination:
    return runNullCheckElimination(Ctx);
  case TransformationKind::BoundsCheckElimination:
    return runBoundsCheckElimination(Ctx);
  case TransformationKind::DivCheckElimination:
    return runDivCheckElimination(Ctx);
  case TransformationKind::CastCheckElimination:
    return runCastCheckElimination(Ctx);
  case TransformationKind::Devirtualization:
    return runDevirtualization(Ctx);
  case TransformationKind::InlineTrivial:
    return runInlining(Ctx, /*CalleeNodeBudget=*/12, /*GrowthBudget=*/64);
  case TransformationKind::InlineSmall:
    return runInlining(Ctx, /*CalleeNodeBudget=*/40, /*GrowthBudget=*/256);
  case TransformationKind::InlineAggressive:
    return runInlining(Ctx, /*CalleeNodeBudget=*/120, /*GrowthBudget=*/1024);
  case TransformationKind::EscapeAnalysis:
    return runEscapeAnalysis(Ctx);
  case TransformationKind::MonitorElision:
    return runMonitorElision(Ctx);
  case TransformationKind::LoopCanonicalization:
    return runLoopCanonicalization(Ctx);
  case TransformationKind::LoopInvariantCodeMotion:
    return runLoopInvariantCodeMotion(Ctx);
  case TransformationKind::LoopUnrolling:
    return runLoopUnrolling(Ctx, 2);
  case TransformationKind::LoopUnrollingAggressive:
    return runLoopUnrolling(Ctx, 4);
  case TransformationKind::LoopFullUnrolling:
    return runLoopUnrolling(Ctx, 0);
  case TransformationKind::LoopPeeling:
    return runLoopPeeling(Ctx);
  case TransformationKind::LoopBoundsVersioning:
    return runLoopBoundsVersioning(Ctx);
  case TransformationKind::LoopStrengthReduction:
    return runLoopStrengthReduction(Ctx);
  case TransformationKind::InductionVariableElimination:
    return runInductionVariableElimination(Ctx);
  case TransformationKind::EmptyLoopRemoval:
    return runEmptyLoopRemoval(Ctx);
  case TransformationKind::IdiomRecognition:
    return runIdiomRecognition(Ctx);
  case TransformationKind::PrefetchInsertion:
    return runPrefetchInsertion(Ctx);
  case TransformationKind::ImplicitExceptionChecks:
    return runImplicitExceptionChecks(Ctx);
  case TransformationKind::RegisterCoalescing:
  case TransformationKind::InstructionScheduling:
  case TransformationKind::PeepholeOptimization:
  case TransformationKind::ConstantEncoding:
  case TransformationKind::ProfileGuidedLayout:
  case TransformationKind::LeafRoutineOptimization:
    return false; // codegen-stage: handled by the code generator
  }
  return false;
}

OptimizeResult jitml::optimize(MethodIL &IL, const CompilationPlan &Plan,
                               const BitSet64 &EnabledMask) {
  assert(EnabledMask.width() == NumTransformations &&
         "modifier mask must cover all 58 transformations");
  OptimizeResult Result;
  PassContext Ctx(IL);
  for (TransformationKind K : Plan.Entries) {
    if (!EnabledMask.test((unsigned)K)) {
      ++Result.EntriesDisabled;
      continue;
    }
    const TransformationInfo &Info = transformationInfo(K);
    if (Info.Stage == TransformStage::Codegen) {
      // Codegen options are recorded once; repeated entries are free.
      if (!Result.CodegenOptions.contains(K)) {
        Result.CodegenOptions.insert(K);
        Ctx.charge(Info.BaseCost);
      }
      ++Result.EntriesRun;
      continue;
    }
    // "Before applying a transformation prescribed by a plan, the compiler
    // checks for method characteristics that might make the transformation
    // meaningless." The guard itself costs a cheap scan.
    Ctx.charge(IL.countLiveNodes() * 0.05);
    if (!transformationApplicable(K, IL)) {
      ++Result.EntriesSkippedInapplicable;
      continue;
    }
    Ctx.charge(Info.BaseCost + Info.CostPerNode * IL.countLiveNodes());
    runTransformation(Ctx, K);
    ++Result.EntriesRun;
  }
  Result.CompileCycles = Ctx.compileCycles();
  return Result;
}
