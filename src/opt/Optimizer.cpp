//===- opt/Optimizer.cpp --------------------------------------------------===//

#include "opt/Optimizer.h"

#include "opt/Passes.h"
#include "support/FaultInjection.h"
#include "verify/PassVerifier.h"

using namespace jitml;

namespace {

/// opt.pass.corrupt: structural damage the ILVerifier must catch — an
/// extra successor edge on the entry block breaks the terminator/arity
/// invariant without touching any tree.
void corruptIL(MethodIL &IL) {
  Block &Entry = IL.block(IL.entryBlock());
  Entry.Succs.push_back(IL.entryBlock());
}

/// opt.pass.miscompile: semantic damage that stays structurally valid —
/// bump the first integer constant in a reachable tree. The verifier
/// cannot see it; only differential execution can.
void miscompileIL(MethodIL &IL) {
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    for (NodeId Root : Blk.Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        Node &N = IL.node(Id);
        if (N.Op == ILOp::Const && isIntegerType(N.Type)) {
          ++N.ConstI;
          return;
        }
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
  }
}

} // namespace

bool jitml::runTransformation(PassContext &Ctx, TransformationKind K) {
  switch (K) {
  case TransformationKind::ConstantFolding:
    return runConstantFolding(Ctx);
  case TransformationKind::ExpressionSimplification:
    return runExpressionSimplification(Ctx);
  case TransformationKind::StrengthReduction:
    return runStrengthReduction(Ctx);
  case TransformationKind::Reassociation:
    return runReassociation(Ctx);
  case TransformationKind::SignExtensionElimination:
    return runSignExtensionElimination(Ctx);
  case TransformationKind::FPSimplification:
    return runFPSimplification(Ctx);
  case TransformationKind::FPStrengthReduction:
    return runFPStrengthReduction(Ctx);
  case TransformationKind::BCDSimplification:
    return runBCDSimplification(Ctx);
  case TransformationKind::LongDoubleFastPath:
    return runLongDoubleFastPath(Ctx);
  case TransformationKind::LocalCopyPropagation:
    return runLocalCopyPropagation(Ctx);
  case TransformationKind::LocalValueNumbering:
    return runLocalValueNumbering(Ctx);
  case TransformationKind::RedundantLoadElimination:
    return runRedundantLoadElimination(Ctx);
  case TransformationKind::DeadTreeElimination:
    return runDeadTreeElimination(Ctx);
  case TransformationKind::DeadStoreElimination:
    return runDeadStoreElimination(Ctx);
  case TransformationKind::Rematerialization:
    return runRematerialization(Ctx);
  case TransformationKind::StoreSinking:
    return runStoreSinking(Ctx);
  case TransformationKind::GuardMerging:
    return runGuardMerging(Ctx);
  case TransformationKind::ThrowFastPathing:
    return runThrowFastPathing(Ctx);
  case TransformationKind::AllocationSinking:
    return runAllocationSinking(Ctx);
  case TransformationKind::GlobalCopyPropagation:
    return runGlobalCopyPropagation(Ctx);
  case TransformationKind::GlobalValueNumbering:
    return runGlobalValueNumbering(Ctx);
  case TransformationKind::GlobalDeadStoreElimination:
    return runGlobalDeadStoreElimination(Ctx);
  case TransformationKind::PartialRedundancyElimination:
    return runPartialRedundancyElimination(Ctx);
  case TransformationKind::UnreachableCodeElimination:
    return runUnreachableCodeElimination(Ctx);
  case TransformationKind::BlockMerging:
    return runBlockMerging(Ctx);
  case TransformationKind::BranchFolding:
    return runBranchFolding(Ctx);
  case TransformationKind::JumpThreading:
    return runJumpThreading(Ctx);
  case TransformationKind::TailDuplication:
    return runTailDuplication(Ctx);
  case TransformationKind::ColdBlockOutlining:
    return runColdBlockOutlining(Ctx);
  case TransformationKind::NullCheckElimination:
    return runNullCheckElimination(Ctx);
  case TransformationKind::BoundsCheckElimination:
    return runBoundsCheckElimination(Ctx);
  case TransformationKind::DivCheckElimination:
    return runDivCheckElimination(Ctx);
  case TransformationKind::CastCheckElimination:
    return runCastCheckElimination(Ctx);
  case TransformationKind::Devirtualization:
    return runDevirtualization(Ctx);
  case TransformationKind::InlineTrivial:
    return runInlining(Ctx, /*CalleeNodeBudget=*/12, /*GrowthBudget=*/64);
  case TransformationKind::InlineSmall:
    return runInlining(Ctx, /*CalleeNodeBudget=*/40, /*GrowthBudget=*/256);
  case TransformationKind::InlineAggressive:
    return runInlining(Ctx, /*CalleeNodeBudget=*/120, /*GrowthBudget=*/1024);
  case TransformationKind::EscapeAnalysis:
    return runEscapeAnalysis(Ctx);
  case TransformationKind::MonitorElision:
    return runMonitorElision(Ctx);
  case TransformationKind::LoopCanonicalization:
    return runLoopCanonicalization(Ctx);
  case TransformationKind::LoopInvariantCodeMotion:
    return runLoopInvariantCodeMotion(Ctx);
  case TransformationKind::LoopUnrolling:
    return runLoopUnrolling(Ctx, 2);
  case TransformationKind::LoopUnrollingAggressive:
    return runLoopUnrolling(Ctx, 4);
  case TransformationKind::LoopFullUnrolling:
    return runLoopUnrolling(Ctx, 0);
  case TransformationKind::LoopPeeling:
    return runLoopPeeling(Ctx);
  case TransformationKind::LoopBoundsVersioning:
    return runLoopBoundsVersioning(Ctx);
  case TransformationKind::LoopStrengthReduction:
    return runLoopStrengthReduction(Ctx);
  case TransformationKind::InductionVariableElimination:
    return runInductionVariableElimination(Ctx);
  case TransformationKind::EmptyLoopRemoval:
    return runEmptyLoopRemoval(Ctx);
  case TransformationKind::IdiomRecognition:
    return runIdiomRecognition(Ctx);
  case TransformationKind::PrefetchInsertion:
    return runPrefetchInsertion(Ctx);
  case TransformationKind::ImplicitExceptionChecks:
    return runImplicitExceptionChecks(Ctx);
  case TransformationKind::RegisterCoalescing:
  case TransformationKind::InstructionScheduling:
  case TransformationKind::PeepholeOptimization:
  case TransformationKind::ConstantEncoding:
  case TransformationKind::ProfileGuidedLayout:
  case TransformationKind::LeafRoutineOptimization:
    return false; // codegen-stage: handled by the code generator
  }
  return false;
}

OptimizeResult jitml::optimize(MethodIL &IL, const CompilationPlan &Plan,
                               const BitSet64 &EnabledMask) {
  assert(EnabledMask.width() == NumTransformations &&
         "modifier mask must cover all 58 transformations");
  OptimizeResult Result;
  PassContext Ctx(IL);
  for (size_t EI = 0; EI < Plan.Entries.size(); ++EI) {
    TransformationKind K = Plan.Entries[EI];
    if (!EnabledMask.test((unsigned)K)) {
      ++Result.EntriesDisabled;
      continue;
    }
    const TransformationInfo &Info = transformationInfo(K);
    if (Info.Stage == TransformStage::Codegen) {
      // Codegen options are recorded once; repeated entries are free.
      if (!Result.CodegenOptions.contains(K)) {
        Result.CodegenOptions.insert(K);
        Ctx.charge(Info.BaseCost);
      }
      ++Result.EntriesRun;
      continue;
    }
    // "Before applying a transformation prescribed by a plan, the compiler
    // checks for method characteristics that might make the transformation
    // meaningless." The guard itself costs a cheap scan.
    Ctx.charge(IL.countLiveNodes() * 0.05);
    if (!transformationApplicable(K, IL)) {
      ++Result.EntriesSkippedInapplicable;
      continue;
    }
    Ctx.charge(Info.BaseCost + Info.CostPerNode * IL.countLiveNodes());
    if (runTransformation(Ctx, K)) {
      Result.ChangedPasses.insert(K);
      if (verify::coverageEnabled())
        verify::notePassCoverage((unsigned)Plan.Level, (unsigned)K);
    }
    ++Result.EntriesRun;
    // Chaos hooks: corrupt damages structure (the verifier must catch
    // it); miscompile damages semantics only (the fuzzer must catch it).
    if (JITML_FAULT_POINT("opt.pass.corrupt"))
      corruptIL(IL);
    if (JITML_FAULT_POINT("opt.pass.miscompile"))
      miscompileIL(IL);
    if (verify::verifyIlMode() != verify::VerifyIlMode::Off &&
        !verify::checkAfterPass(IL, Info.Name, (int)EI))
      break; // IL no longer trusted; feeding it to more passes can crash
  }
  Result.CompileCycles = Ctx.compileCycles();
  return Result;
}
