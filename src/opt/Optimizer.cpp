//===- opt/Optimizer.cpp --------------------------------------------------===//

#include "opt/Optimizer.h"

#include "opt/Passes.h"
#include "support/FaultInjection.h"
#include "support/Memo.h"
#include "support/Telemetry.h"
#include "verify/PassVerifier.h"

#include <array>
#include <vector>

using namespace jitml;

namespace {

/// opt.pass.corrupt: structural damage the ILVerifier must catch — an
/// extra successor edge on the entry block breaks the terminator/arity
/// invariant without touching any tree.
void corruptIL(MethodIL &IL) {
  Block &Entry = IL.block(IL.entryBlock());
  Entry.Succs.push_back(IL.entryBlock());
}

/// opt.pass.miscompile: semantic damage that stays structurally valid —
/// bump the first integer constant in a reachable tree. The verifier
/// cannot see it; only differential execution can.
void miscompileIL(MethodIL &IL) {
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    const Block &Blk = IL.block(B);
    if (!Blk.Reachable)
      continue;
    for (NodeId Root : Blk.Trees) {
      std::vector<NodeId> Stack{Root};
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        Node &N = IL.node(Id);
        if (N.Op == ILOp::Const && isIntegerType(N.Type)) {
          ++N.ConstI;
          return;
        }
        for (NodeId Kid : N.Kids)
          Stack.push_back(Kid);
      }
    }
  }
}

} // namespace

bool jitml::runTransformation(PassContext &Ctx, TransformationKind K) {
  switch (K) {
  case TransformationKind::ConstantFolding:
    return runConstantFolding(Ctx);
  case TransformationKind::ExpressionSimplification:
    return runExpressionSimplification(Ctx);
  case TransformationKind::StrengthReduction:
    return runStrengthReduction(Ctx);
  case TransformationKind::Reassociation:
    return runReassociation(Ctx);
  case TransformationKind::SignExtensionElimination:
    return runSignExtensionElimination(Ctx);
  case TransformationKind::FPSimplification:
    return runFPSimplification(Ctx);
  case TransformationKind::FPStrengthReduction:
    return runFPStrengthReduction(Ctx);
  case TransformationKind::BCDSimplification:
    return runBCDSimplification(Ctx);
  case TransformationKind::LongDoubleFastPath:
    return runLongDoubleFastPath(Ctx);
  case TransformationKind::LocalCopyPropagation:
    return runLocalCopyPropagation(Ctx);
  case TransformationKind::LocalValueNumbering:
    return runLocalValueNumbering(Ctx);
  case TransformationKind::RedundantLoadElimination:
    return runRedundantLoadElimination(Ctx);
  case TransformationKind::DeadTreeElimination:
    return runDeadTreeElimination(Ctx);
  case TransformationKind::DeadStoreElimination:
    return runDeadStoreElimination(Ctx);
  case TransformationKind::Rematerialization:
    return runRematerialization(Ctx);
  case TransformationKind::StoreSinking:
    return runStoreSinking(Ctx);
  case TransformationKind::GuardMerging:
    return runGuardMerging(Ctx);
  case TransformationKind::ThrowFastPathing:
    return runThrowFastPathing(Ctx);
  case TransformationKind::AllocationSinking:
    return runAllocationSinking(Ctx);
  case TransformationKind::GlobalCopyPropagation:
    return runGlobalCopyPropagation(Ctx);
  case TransformationKind::GlobalValueNumbering:
    return runGlobalValueNumbering(Ctx);
  case TransformationKind::GlobalDeadStoreElimination:
    return runGlobalDeadStoreElimination(Ctx);
  case TransformationKind::PartialRedundancyElimination:
    return runPartialRedundancyElimination(Ctx);
  case TransformationKind::UnreachableCodeElimination:
    return runUnreachableCodeElimination(Ctx);
  case TransformationKind::BlockMerging:
    return runBlockMerging(Ctx);
  case TransformationKind::BranchFolding:
    return runBranchFolding(Ctx);
  case TransformationKind::JumpThreading:
    return runJumpThreading(Ctx);
  case TransformationKind::TailDuplication:
    return runTailDuplication(Ctx);
  case TransformationKind::ColdBlockOutlining:
    return runColdBlockOutlining(Ctx);
  case TransformationKind::NullCheckElimination:
    return runNullCheckElimination(Ctx);
  case TransformationKind::BoundsCheckElimination:
    return runBoundsCheckElimination(Ctx);
  case TransformationKind::DivCheckElimination:
    return runDivCheckElimination(Ctx);
  case TransformationKind::CastCheckElimination:
    return runCastCheckElimination(Ctx);
  case TransformationKind::Devirtualization:
    return runDevirtualization(Ctx);
  case TransformationKind::InlineTrivial:
    return runInlining(Ctx, /*CalleeNodeBudget=*/12, /*GrowthBudget=*/64);
  case TransformationKind::InlineSmall:
    return runInlining(Ctx, /*CalleeNodeBudget=*/40, /*GrowthBudget=*/256);
  case TransformationKind::InlineAggressive:
    return runInlining(Ctx, /*CalleeNodeBudget=*/120, /*GrowthBudget=*/1024);
  case TransformationKind::EscapeAnalysis:
    return runEscapeAnalysis(Ctx);
  case TransformationKind::MonitorElision:
    return runMonitorElision(Ctx);
  case TransformationKind::LoopCanonicalization:
    return runLoopCanonicalization(Ctx);
  case TransformationKind::LoopInvariantCodeMotion:
    return runLoopInvariantCodeMotion(Ctx);
  case TransformationKind::LoopUnrolling:
    return runLoopUnrolling(Ctx, 2);
  case TransformationKind::LoopUnrollingAggressive:
    return runLoopUnrolling(Ctx, 4);
  case TransformationKind::LoopFullUnrolling:
    return runLoopUnrolling(Ctx, 0);
  case TransformationKind::LoopPeeling:
    return runLoopPeeling(Ctx);
  case TransformationKind::LoopBoundsVersioning:
    return runLoopBoundsVersioning(Ctx);
  case TransformationKind::LoopStrengthReduction:
    return runLoopStrengthReduction(Ctx);
  case TransformationKind::InductionVariableElimination:
    return runInductionVariableElimination(Ctx);
  case TransformationKind::EmptyLoopRemoval:
    return runEmptyLoopRemoval(Ctx);
  case TransformationKind::IdiomRecognition:
    return runIdiomRecognition(Ctx);
  case TransformationKind::PrefetchInsertion:
    return runPrefetchInsertion(Ctx);
  case TransformationKind::ImplicitExceptionChecks:
    return runImplicitExceptionChecks(Ctx);
  case TransformationKind::RegisterCoalescing:
  case TransformationKind::InstructionScheduling:
  case TransformationKind::PeepholeOptimization:
  case TransformationKind::ConstantEncoding:
  case TransformationKind::ProfileGuidedLayout:
  case TransformationKind::LeafRoutineOptimization:
    return false; // codegen-stage: handled by the code generator
  }
  return false;
}

namespace {

/// Per-kind record of a pass body that ran and made no change. Valid only
/// while the IL's modification epoch still equals Epoch: passes are
/// deterministic functions of the IL, so an unchanged epoch (byte-identical
/// IL) guarantees a rerun would again do nothing and charge the same
/// cycles. Epochs strictly increase, so a stale entry can never false-hit.
///
/// Charges holds the body's exact charge() sequence (run-length encoded).
/// A hit replays it addition-by-addition rather than adding one recorded
/// total: FP addition is not associative, so only the original sequence of
/// additions reproduces the memo-off CompileCycles figure to the last bit.
struct MemoEntry {
  uint64_t Epoch = 0;
  std::vector<ChargeRec> Charges;
  bool Valid = false;
};

struct MemoCounters {
  TelemetryCounter *Hits;
  TelemetryCounter *Misses;
  MemoCounters() {
    MetricRegistry &R = MetricRegistry::global();
    Hits = &R.counter("opt.memo.hits");
    Misses = &R.counter("opt.memo.misses");
  }
};

MemoCounters &memoCounters() {
  static MemoCounters C;
  return C;
}

} // namespace

OptimizeResult jitml::optimize(MethodIL &IL, const CompilationPlan &Plan,
                               const BitSet64 &EnabledMask) {
  assert(EnabledMask.width() == NumTransformations &&
         "modifier mask must cover all 58 transformations");
  OptimizeResult Result;
  PassContext Ctx(IL);
  // Plans repeat cleanup passes heavily (a scorching plan has 170+ entries
  // over 58 kinds); once a kind has run to no effect, later occurrences hit
  // here until something actually changes the IL. All charge() accounting
  // on the hit path replays exactly what a rerun would charge.
  std::array<MemoEntry, NumTransformations> Memo;
  std::vector<ChargeRec> ChargeScratch; ///< reused recording buffer
  for (size_t EI = 0; EI < Plan.Entries.size(); ++EI) {
    TransformationKind K = Plan.Entries[EI];
    if (!EnabledMask.test((unsigned)K)) {
      ++Result.EntriesDisabled;
      continue;
    }
    const TransformationInfo &Info = transformationInfo(K);
    if (Info.Stage == TransformStage::Codegen) {
      // Codegen options are recorded once; repeated entries are free.
      if (!Result.CodegenOptions.contains(K)) {
        Result.CodegenOptions.insert(K);
        Ctx.charge(Info.BaseCost);
      }
      ++Result.EntriesRun;
      continue;
    }
    // "Before applying a transformation prescribed by a plan, the compiler
    // checks for method characteristics that might make the transformation
    // meaningless." The guard itself costs a cheap scan.
    Ctx.charge(IL.countLiveNodes() * 0.05);
    if (!transformationApplicable(K, IL, Ctx.guardFacts())) {
      ++Result.EntriesSkippedInapplicable;
      continue;
    }
    Ctx.charge(Info.BaseCost + Info.CostPerNode * IL.countLiveNodes());
    MemoEntry &M = Memo[(unsigned)K];
    if (memoEnabled() && M.Valid && M.Epoch == IL.modEpoch()) {
      // The body ran at this exact IL state and did nothing: skip it and
      // replay its recorded charges one by one, so the accumulator sees
      // the same additions a rerun would make. No ChangedPasses/coverage
      // updates — the recorded run returned false.
      for (const ChargeRec &R : M.Charges)
        for (uint32_t I = 0; I < R.Count; ++I)
          Ctx.charge(R.Amount);
      memoCounters().Hits->add();
    } else {
      uint64_t EpochBefore = IL.modEpoch();
      bool Record = memoEnabled();
      if (Record) {
        ChargeScratch.clear();
        Ctx.setChargeLog(&ChargeScratch);
      }
      bool Changed = runTransformation(Ctx, K);
      if (Record)
        Ctx.setChargeLog(nullptr);
      memoCounters().Misses->add();
      if (Changed) {
        Result.ChangedPasses.insert(K);
        if (verify::coverageEnabled())
          verify::notePassCoverage((unsigned)Plan.Level, (unsigned)K);
      } else if (Record && IL.modEpoch() == EpochBefore) {
        // No report of change AND no possible write (the epoch also covers
        // mutable accessor handouts) — safe to skip identical reruns.
        M.Epoch = EpochBefore;
        M.Charges.swap(ChargeScratch);
        M.Valid = true;
      }
    }
    ++Result.EntriesRun;
    // Chaos hooks: corrupt damages structure (the verifier must catch
    // it); miscompile damages semantics only (the fuzzer must catch it).
    // Evaluated on memo hits too, keeping fault-point ordinals aligned
    // with a memo-off run.
    if (JITML_FAULT_POINT("opt.pass.corrupt"))
      corruptIL(IL);
    if (JITML_FAULT_POINT("opt.pass.miscompile"))
      miscompileIL(IL);
    if (verify::verifyIlMode() != verify::VerifyIlMode::Off &&
        !verify::checkAfterPass(IL, Info.Name, (int)EI))
      break; // IL no longer trusted; feeding it to more passes can crash
  }
  Result.CompileCycles = Ctx.compileCycles();
  return Result;
}
