//===- opt/Plan.h - Compilation plans for the five hotness levels -*-C++-*-===//
///
/// \file
/// "Each optimization level has an ordered set of code transformations (a
/// compilation plan) that are applied on the IL-tree of a method. A plan
/// may apply from 20 transformations (cold) to more than 170 (scorching),
/// including the multiple application of some transformations that are
/// used as cleanup steps." (paper section 2)
///
/// Plans are hand-tuned constants, exactly like Testarossa's: the modifier
/// mechanism may remove entries but never adds or reorders them.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_OPT_PLAN_H
#define JITML_OPT_PLAN_H

#include "opt/Transformation.h"

#include <cstdint>
#include <vector>

namespace jitml {

/// Testarossa's five adaptive optimization levels, "identified by
/// adjectives related to temperature".
enum class OptLevel : uint8_t {
  Cold = 0,
  Warm,
  Hot,
  VeryHot,
  Scorching,
};

constexpr unsigned NumOptLevels = 5;
const char *optLevelName(OptLevel L);

/// An ordered list of transformation applications (entries may repeat).
struct CompilationPlan {
  OptLevel Level = OptLevel::Cold;
  std::vector<TransformationKind> Entries;

  size_t size() const { return Entries.size(); }
};

/// The hand-tuned plan for each level. Sizes: cold 20, warm 45, hot 80,
/// veryHot 120, scorching 172 — matching the paper's 20..170+ span.
const CompilationPlan &planForLevel(OptLevel L);

} // namespace jitml

#endif // JITML_OPT_PLAN_H
