//===- opt/Transformation.h - The 58 controllable transformations -*-C++-*===//
///
/// \file
/// The catalog of code transformations the optimizer can apply. "In this
/// implementation, there are 58 distinct code transformations that are
/// controllable, leading to a search space of 2^58" (paper section 5).
/// A compilation-plan modifier is a 58-bit mask over this enum: a cleared
/// bit disables every occurrence of that transformation in the plan.
///
/// Each kind carries registry metadata: its engine stage (tree IL vs code
/// generation), a relative compile-cost coefficient (cycles charged per IL
/// node examined), and an applicability guard — "before applying a
/// transformation prescribed by a plan, the compiler checks for method
/// characteristics that might make the transformation meaningless", e.g.
/// loop transformations are never applied to loop-free methods.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_OPT_TRANSFORMATION_H
#define JITML_OPT_TRANSFORMATION_H

#include "support/BitSet64.h"

#include <cstdint>

namespace jitml {

class MethodIL;

enum class TransformationKind : uint8_t {
  // --- Expression-level (tree) transformations ---
  ConstantFolding = 0,
  ExpressionSimplification,
  StrengthReduction,
  Reassociation,
  SignExtensionElimination,
  FPSimplification,
  FPStrengthReduction,
  BCDSimplification,
  LongDoubleFastPath,
  // --- Local (block-scoped) transformations ---
  LocalCopyPropagation,
  LocalValueNumbering,
  RedundantLoadElimination,
  DeadTreeElimination,
  DeadStoreElimination,
  Rematerialization,
  StoreSinking,
  GuardMerging,
  ThrowFastPathing,
  AllocationSinking,
  // --- Control flow / global transformations ---
  GlobalCopyPropagation,
  GlobalValueNumbering,
  GlobalDeadStoreElimination,
  PartialRedundancyElimination,
  UnreachableCodeElimination,
  BlockMerging,
  BranchFolding,
  JumpThreading,
  TailDuplication,
  ColdBlockOutlining,
  // --- Check eliminations ---
  NullCheckElimination,
  BoundsCheckElimination,
  DivCheckElimination,
  CastCheckElimination,
  // --- Calls ---
  Devirtualization,
  InlineTrivial,
  InlineSmall,
  InlineAggressive,
  // --- Objects ---
  EscapeAnalysis,
  MonitorElision,
  // --- Loops ---
  LoopCanonicalization,
  LoopInvariantCodeMotion,
  LoopUnrolling,
  LoopUnrollingAggressive,
  LoopFullUnrolling,
  LoopPeeling,
  LoopBoundsVersioning,
  LoopStrengthReduction,
  InductionVariableElimination,
  EmptyLoopRemoval,
  IdiomRecognition,
  PrefetchInsertion,
  // --- Code-generation stage ---
  RegisterCoalescing,
  InstructionScheduling,
  PeepholeOptimization,
  ConstantEncoding,
  ProfileGuidedLayout,
  ImplicitExceptionChecks,
  LeafRoutineOptimization,
};

constexpr unsigned NumTransformations = 58;
static_assert((unsigned)TransformationKind::LeafRoutineOptimization ==
                  NumTransformations - 1,
              "the paper's search space is 2^58");

/// Where the transformation's engine runs.
enum class TransformStage : uint8_t {
  Tree,    ///< operates on the IL
  Codegen, ///< toggles behaviour inside the code generator
};

/// Registry metadata for one transformation kind.
struct TransformationInfo {
  const char *Name;
  TransformStage Stage;
  /// Compile cycles charged per live IL node when the pass runs; models the
  /// relative expense of the pass (inlining/global passes cost more than
  /// peephole rewrites).
  double CostPerNode;
  /// Fixed setup cost in compile cycles charged whenever the pass runs.
  double BaseCost;
};

const TransformationInfo &transformationInfo(TransformationKind K);
const char *transformationName(TransformationKind K);

/// The cheap method characteristics the applicability guards test, filled
/// by one scan over the IL. The optimizer caches one of these per IL epoch
/// in PassContext instead of rescanning the whole method before every plan
/// entry (scorching plans consult the guard 170+ times per compile).
struct GuardFacts {
  bool HasLoops = false;
  bool HasAllocation = false;
  bool HasMonitors = false;
  bool HasCalls = false;
  bool HasVirtualCalls = false;
  bool HasFP = false;
  bool HasDecimal = false;
  bool HasLongDouble = false;
  bool HasThrow = false;
  bool HasCasts = false;
  bool HasCheckCast = false;
  bool HasMemoryLoads = false;
  bool HasChecks = false;
  bool UsesUnsafe = false;
};

/// One scan of \p IL for the guard predicates above.
GuardFacts scanGuardFacts(const MethodIL &IL);

/// Applicability guard: true when running \p K on \p IL can possibly do
/// something (e.g. loop passes require loops). Inapplicable passes are
/// skipped without charging their full cost.
bool transformationApplicable(TransformationKind K, const MethodIL &IL);
/// Same, against pre-scanned facts for \p IL (avoids the full-method scan).
bool transformationApplicable(TransformationKind K, const MethodIL &IL,
                              const GuardFacts &F);

/// A set of transformation kinds as a 58-bit mask (used both for modifiers
/// and for the codegen option set).
class TransformSet {
public:
  TransformSet() : Bits(BitSet64::allZero(NumTransformations)) {}
  explicit TransformSet(BitSet64 B) : Bits(B) {}

  bool contains(TransformationKind K) const {
    return Bits.test((unsigned)K);
  }
  void insert(TransformationKind K) { Bits.set((unsigned)K); }
  void remove(TransformationKind K) { Bits.reset((unsigned)K); }
  const BitSet64 &bits() const { return Bits; }

private:
  BitSet64 Bits;
};

} // namespace jitml

#endif // JITML_OPT_TRANSFORMATION_H
