//===- opt/PassContext.cpp ------------------------------------------------===//

#include "opt/PassContext.h"

#include "support/Memo.h"

using namespace jitml;

const LoopInfo &PassContext::loopInfo() {
  uint64_t E = IL.modEpoch();
  if (!CachedLI || LIEpoch != E || !memoEnabled()) {
    CachedLI = std::make_unique<LoopInfo>(IL);
    LIEpoch = E; // analysis reads via const accessors: epoch unchanged
  }
  return *CachedLI;
}

const DominatorTree &PassContext::dominators() {
  uint64_t E = IL.modEpoch();
  if (!CachedDT || DTEpoch != E || !memoEnabled()) {
    CachedDT = std::make_unique<DominatorTree>(IL);
    DTEpoch = E;
  }
  return *CachedDT;
}

const GuardFacts &PassContext::guardFacts() {
  uint64_t E = IL.modEpoch();
  if (!CachedFacts || FactsEpoch != E || !memoEnabled()) {
    CachedFacts = std::make_unique<GuardFacts>(scanGuardFacts(IL));
    FactsEpoch = E;
  }
  return *CachedFacts;
}

void PassContext::rewriteToConstI(NodeId Id, DataType T, int64_t V) {
  Node &N = IL.node(Id);
  N.Op = ILOp::Const;
  N.Type = T;
  N.A = N.B = 0;
  N.ConstI = V;
  N.ConstF = 0.0;
  N.Kids.clear();
}

void PassContext::rewriteToConstF(NodeId Id, DataType T, double V) {
  Node &N = IL.node(Id);
  N.Op = ILOp::Const;
  N.Type = T;
  N.A = N.B = 0;
  N.ConstI = 0;
  N.ConstF = V;
  N.Kids.clear();
}

void PassContext::rewriteToLoadLocal(NodeId Id, DataType T, uint32_t Slot) {
  Node &N = IL.node(Id);
  N.Op = ILOp::LoadLocal;
  N.Type = T;
  N.A = (int32_t)Slot;
  N.B = 0;
  N.ConstI = 0;
  N.ConstF = 0.0;
  N.Kids.clear();
}

void PassContext::rewriteToCopyOf(NodeId Id, NodeId Source) {
  assert(Id != Source && "self-copy");
  // Snapshot the source first: the destination write below must not read
  // through a reference that aliases it, and the kid list must go through
  // setKids so a wide list gets its own pool storage (two nodes must never
  // share one overflow list).
  const Node &S = cil().node(Source);
  ILOp Op = S.Op;
  DataType Type = S.Type;
  int32_t A = S.A, B = S.B;
  int64_t CI = S.ConstI;
  double CF = S.ConstF;
  std::vector<NodeId> Kids(S.Kids.begin(), S.Kids.end());
  Node &N = IL.node(Id);
  N.Op = Op;
  N.Type = Type;
  N.A = A;
  N.B = B;
  N.ConstI = CI;
  N.ConstF = CF;
  IL.setKids(Id, Kids.data(), Kids.size());
}

NodeId PassContext::cloneTree(
    NodeId Root, const std::unordered_map<uint32_t, uint32_t> *LocalMap) {
  // Copy what the recursion needs up front: every recursive clone calls
  // makeNode, which may reallocate the node table and invalidate any
  // reference into it.
  ILOp Op = cil().node(Root).Op;
  DataType Type = cil().node(Root).Type;
  const KidList &RootKids = cil().node(Root).Kids;
  std::vector<NodeId> OldKids(RootKids.begin(), RootKids.end());
  std::vector<NodeId> Kids;
  Kids.reserve(OldKids.size());
  for (NodeId Kid : OldKids)
    Kids.push_back(cloneTree(Kid, LocalMap));
  NodeId Fresh = IL.makeNode(Op, Type, Kids);
  Node &F = IL.node(Fresh);
  const Node &Orig = cil().node(Root); // re-fetch: makeNode may reallocate
  F.A = Orig.A;
  F.B = Orig.B;
  F.ConstI = Orig.ConstI;
  F.ConstF = Orig.ConstF;
  if (LocalMap && (F.Op == ILOp::LoadLocal || F.Op == ILOp::StoreLocal)) {
    auto It = LocalMap->find((uint32_t)F.A);
    if (It != LocalMap->end())
      F.A = (int32_t)It->second;
  }
  return Fresh;
}

bool PassContext::isPure(NodeId Root) const {
  const Node &N = cil().node(Root);
  if (hasSideEffects(N.Op))
    return false;
  for (NodeId Kid : N.Kids)
    if (!isPure(Kid))
      return false;
  return true;
}

std::vector<uint32_t> jitml::computeRefCounts(const MethodIL &IL) {
  std::vector<uint32_t> Counts(IL.numNodes(), 0);
  // One count per referencing edge (treetop root or parent->child edge);
  // each node's own children are scanned exactly once.
  std::vector<bool> Expanded(IL.numNodes(), false);
  std::vector<NodeId> Stack;
  for (BlockId B = 0; B < IL.numBlocks(); ++B) {
    if (!IL.block(B).Reachable)
      continue;
    for (NodeId Root : IL.block(B).Trees) {
      ++Counts[Root];
      Stack.push_back(Root);
      while (!Stack.empty()) {
        NodeId Id = Stack.back();
        Stack.pop_back();
        if (Expanded[Id])
          continue;
        Expanded[Id] = true;
        for (NodeId Kid : IL.node(Id).Kids) {
          ++Counts[Kid];
          Stack.push_back(Kid);
        }
      }
    }
  }
  return Counts;
}

bool jitml::shallowEqualNodes(const Node &A, const Node &B) {
  return A.Op == B.Op && A.Type == B.Type && A.A == B.A && A.B == B.B &&
         A.ConstI == B.ConstI && A.ConstF == B.ConstF && A.Kids == B.Kids;
}

uint64_t jitml::shallowHashNode(const Node &N) {
  uint64_t H = (uint64_t)N.Op * 0x9e3779b97f4a7c15ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  Mix((uint64_t)N.Type);
  Mix((uint64_t)(uint32_t)N.A);
  Mix((uint64_t)(uint32_t)N.B);
  Mix((uint64_t)N.ConstI);
  uint64_t FBits;
  static_assert(sizeof(FBits) == sizeof(N.ConstF), "double is 64-bit");
  __builtin_memcpy(&FBits, &N.ConstF, sizeof(FBits));
  Mix(FBits);
  for (NodeId Kid : N.Kids)
    Mix(Kid);
  return H;
}

bool PassContext::isPureAndMemoryFree(NodeId Root) const {
  const Node &N = cil().node(Root);
  if (hasSideEffects(N.Op) || readsMemory(N.Op))
    return false;
  for (NodeId Kid : N.Kids)
    if (!isPureAndMemoryFree(Kid))
      return false;
  return true;
}
