//===- opt/Optimizer.h - Plan-driven optimizer ------------------*- C++ -*-===//
///
/// \file
/// The Optimizer of Figure 1: applies a compilation plan (possibly
/// restricted by a compilation-plan modifier) to a method's IL. "A modifier
/// does not change the order in which the transformations are applied":
/// the enabled-mask can only skip plan entries. The optimizer also tracks
/// compile effort — the C_i input of the ranking function — and collects
/// the set of codegen-stage options for the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef JITML_OPT_OPTIMIZER_H
#define JITML_OPT_OPTIMIZER_H

#include "opt/PassContext.h"
#include "opt/Plan.h"

namespace jitml {

/// Outcome of running the optimizer on one method.
struct OptimizeResult {
  /// Simulated compile cycles spent by the optimization stage.
  double CompileCycles = 0.0;
  /// Codegen-stage transformations that were enabled by the plan/modifier
  /// (consumed by codegen::CodeGenerator).
  TransformSet CodegenOptions;
  /// Plan entries actually executed / skipped by the applicability guard /
  /// disabled by the modifier.
  uint32_t EntriesRun = 0;
  uint32_t EntriesSkippedInapplicable = 0;
  uint32_t EntriesDisabled = 0;
  /// Tree-stage transformations that reported changing the IL at least
  /// once — the per-method coverage signal the differential fuzzer steers
  /// by (see verify/PassVerifier.h).
  TransformSet ChangedPasses;
};

/// Runs a single transformation engine (tree-stage only). Exposed for unit
/// tests; codegen-stage kinds are a no-op here.
bool runTransformation(PassContext &Ctx, TransformationKind K);

/// Applies \p Plan to \p IL. \p EnabledMask holds one bit per
/// TransformationKind (bit set = transformation enabled); pass
/// BitSet64::allOne(NumTransformations) for the unmodified plan.
OptimizeResult optimize(MethodIL &IL, const CompilationPlan &Plan,
                        const BitSet64 &EnabledMask);

} // namespace jitml

#endif // JITML_OPT_OPTIMIZER_H
